/**
 * @file
 * Element-wise GVML operations (paper Table 5).
 */

#include "gvml/gvml.hh"

#include <cmath>

#include "common/fixedpoint.hh"
#include "common/float16.hh"
#include "common/gsifloat.hh"
#include "common/trace.hh"

namespace cisram::gvml {

namespace {

int16_t
asS16(uint16_t v)
{
    return static_cast<int16_t>(v);
}

uint16_t
asU16(int16_t v)
{
    return static_cast<uint16_t>(v);
}

uint16_t
asU16(int32_t v)
{
    return static_cast<uint16_t>(static_cast<uint16_t>(v & 0xffff));
}

} // namespace

void
Gvml::ewise2(Vr dst, Vr a, Vr b, uint64_t cycles,
             uint16_t (*fn)(uint16_t, uint16_t))
{
    core_.chargeVectorOp(cycles);
    if (!core_.functional())
        return;
    auto &d = core_.vr()[dst.idx];
    const auto &x = core_.vr()[a.idx];
    const auto &y = core_.vr()[b.idx];
    for (size_t i = 0; i < d.size(); ++i)
        d[i] = fn(x[i], y[i]);
}

void
Gvml::ewise1(Vr dst, Vr a, uint64_t cycles, uint16_t (*fn)(uint16_t))
{
    core_.chargeVectorOp(cycles);
    if (!core_.functional())
        return;
    auto &d = core_.vr()[dst.idx];
    const auto &x = core_.vr()[a.idx];
    for (size_t i = 0; i < d.size(); ++i)
        d[i] = fn(x[i]);
}

void
Gvml::and16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.and16");
    ewise2(dst, a, b, core_.timing().compute.and16,
           [](uint16_t x, uint16_t y) -> uint16_t { return x & y; });
}

void
Gvml::or16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.or16");
    ewise2(dst, a, b, core_.timing().compute.or16,
           [](uint16_t x, uint16_t y) -> uint16_t { return x | y; });
}

void
Gvml::xor16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.xor16");
    ewise2(dst, a, b, core_.timing().compute.xor16,
           [](uint16_t x, uint16_t y) -> uint16_t { return x ^ y; });
}

void
Gvml::not16(Vr dst, Vr a)
{
    trace::OpScope traceOp_("gvml.not16");
    ewise1(dst, a, core_.timing().compute.not16,
           [](uint16_t x) -> uint16_t {
               return static_cast<uint16_t>(~x);
           });
}

void
Gvml::addU16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.addU16");
    ewise2(dst, a, b, core_.timing().compute.addU16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return static_cast<uint16_t>(x + y);
           });
}

void
Gvml::addS16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.addS16");
    ewise2(dst, a, b, core_.timing().compute.addS16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return asU16(static_cast<int32_t>(asS16(x)) + asS16(y));
           });
}

void
Gvml::subU16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.subU16");
    ewise2(dst, a, b, core_.timing().compute.subU16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return static_cast<uint16_t>(x - y);
           });
}

void
Gvml::subS16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.subS16");
    ewise2(dst, a, b, core_.timing().compute.subS16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return asU16(static_cast<int32_t>(asS16(x)) - asS16(y));
           });
}

void
Gvml::mulU16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.mulU16");
    ewise2(dst, a, b, core_.timing().compute.mulU16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return static_cast<uint16_t>(
                   static_cast<uint32_t>(x) * y);
           });
}

void
Gvml::mulS16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.mulS16");
    ewise2(dst, a, b, core_.timing().compute.mulS16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return asU16(static_cast<int32_t>(asS16(x)) * asS16(y));
           });
}

void
Gvml::divU16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.divU16");
    ewise2(dst, a, b, core_.timing().compute.divU16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return y == 0 ? 0xffff
                             : static_cast<uint16_t>(x / y);
           });
}

void
Gvml::divS16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.divS16");
    ewise2(dst, a, b, core_.timing().compute.divS16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               int16_t sx = asS16(x);
               int16_t sy = asS16(y);
               if (sy == 0)
                   return asU16(static_cast<int16_t>(-1));
               if (sx == INT16_MIN && sy == -1)
                   return asU16(INT16_MIN);
               return asU16(static_cast<int16_t>(sx / sy));
           });
}

void
Gvml::minU16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.minU16");
    ewise2(dst, a, b, core_.timing().compute.minU16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return x < y ? x : y;
           });
}

void
Gvml::maxU16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.maxU16");
    ewise2(dst, a, b, core_.timing().compute.maxU16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return x > y ? x : y;
           });
}

void
Gvml::minS16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.minS16");
    ewise2(dst, a, b, core_.timing().compute.minU16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return asS16(x) < asS16(y) ? x : y;
           });
}

void
Gvml::maxS16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.maxS16");
    ewise2(dst, a, b, core_.timing().compute.maxU16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return asS16(x) > asS16(y) ? x : y;
           });
}

void
Gvml::popcnt16(Vr dst, Vr a)
{
    trace::OpScope traceOp_("gvml.popcnt16");
    ewise1(dst, a, core_.timing().compute.popcnt16,
           [](uint16_t x) -> uint16_t {
               return static_cast<uint16_t>(__builtin_popcount(x));
           });
}

void
Gvml::ashImm16(Vr dst, Vr a, int sh)
{
    trace::OpScope traceOp_("gvml.ashImm16");
    core_.chargeVectorOp(core_.timing().compute.ashift);
    if (!core_.functional())
        return;
    auto &d = core_.vr()[dst.idx];
    const auto &x = core_.vr()[a.idx];
    for (size_t i = 0; i < d.size(); ++i) {
        int16_t v = asS16(x[i]);
        if (sh >= 0)
            d[i] = asU16(static_cast<int32_t>(v) << sh);
        else
            d[i] = asU16(static_cast<int16_t>(v >> (-sh)));
    }
}

void
Gvml::srImm16(Vr dst, Vr a, unsigned sh)
{
    trace::OpScope traceOp_("gvml.srImm16");
    core_.chargeVectorOp(core_.timing().compute.srImm);
    if (!core_.functional())
        return;
    auto &d = core_.vr()[dst.idx];
    const auto &x = core_.vr()[a.idx];
    for (size_t i = 0; i < d.size(); ++i)
        d[i] = static_cast<uint16_t>(x[i] >> sh);
}

void
Gvml::slImm16(Vr dst, Vr a, unsigned sh)
{
    trace::OpScope traceOp_("gvml.slImm16");
    core_.chargeVectorOp(core_.timing().compute.slImm);
    if (!core_.functional())
        return;
    auto &d = core_.vr()[dst.idx];
    const auto &x = core_.vr()[a.idx];
    for (size_t i = 0; i < d.size(); ++i)
        d[i] = static_cast<uint16_t>(x[i] << sh);
}

void
Gvml::recipU16(Vr dst, Vr a)
{
    trace::OpScope traceOp_("gvml.recipU16");
    ewise1(dst, a, core_.timing().compute.recipU16,
           [](uint16_t x) -> uint16_t {
               return x == 0 ? 0xffff
                             : static_cast<uint16_t>(65535u / x);
           });
}

void
Gvml::addF16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.addF16");
    // GVML prices f16 add like f16 multiply's cheaper sibling; the
    // public table lists only mul_f16, so reuse that cost class.
    ewise2(dst, a, b, core_.timing().compute.mulF16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return (Float16::fromBits(x) + Float16::fromBits(y))
                   .bits();
           });
}

void
Gvml::mulF16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.mulF16");
    ewise2(dst, a, b, core_.timing().compute.mulF16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return (Float16::fromBits(x) * Float16::fromBits(y))
                   .bits();
           });
}

void
Gvml::expF16(Vr dst, Vr a)
{
    trace::OpScope traceOp_("gvml.expF16");
    ewise1(dst, a, core_.timing().compute.expF16,
           [](uint16_t x) -> uint16_t {
               float v = Float16::fromBits(x).toFloat();
               return Float16::fromFloat(std::exp(v)).bits();
           });
}

void
Gvml::mulGf16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.mulGf16");
    ewise2(dst, a, b, core_.timing().compute.mulF16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return (GsiFloat16::fromBits(x) * GsiFloat16::fromBits(y))
                   .bits();
           });
}

void
Gvml::addGf16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.addGf16");
    ewise2(dst, a, b, core_.timing().compute.mulF16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return (GsiFloat16::fromBits(x) + GsiFloat16::fromBits(y))
                   .bits();
           });
}

void
Gvml::orderGf16(Vr dst, Vr src, Vr scratch, Vr scratch2)
{
    trace::OpScope traceOp_("gvml.orderGf16");
    // negative -> ~bits; non-negative -> bits | 0x8000.
    cpyImm16(scratch2, 0x8000);
    or16(dst, src, scratch2);       // non-negative image
    not16(scratch, src);            // negative image
    and16(scratch2, src, scratch2); // sign mark (0x8000 or 0)
    cpy16Msk(dst, scratch, scratch2);
}

void
Gvml::sinFx(Vr dst, Vr phase)
{
    trace::OpScope traceOp_("gvml.sinFx");
    ewise1(dst, phase, core_.timing().compute.sinFx,
           [](uint16_t x) -> uint16_t {
               return asU16(cisram::sinFx(x));
           });
}

void
Gvml::cosFx(Vr dst, Vr phase)
{
    trace::OpScope traceOp_("gvml.cosFx");
    ewise1(dst, phase, core_.timing().compute.cosFx,
           [](uint16_t x) -> uint16_t {
               return asU16(cisram::cosFx(x));
           });
}

void
Gvml::ewise2Msk(Vr dst, Vr a, Vr b, Vr mark, uint64_t cycles,
                uint16_t (*fn)(uint16_t, uint16_t))
{
    core_.chargeVectorOp(cycles + core_.timing().compute.selectMsk);
    if (!core_.functional())
        return;
    auto &d = core_.vr()[dst.idx];
    const auto &x = core_.vr()[a.idx];
    const auto &y = core_.vr()[b.idx];
    const auto &m = core_.vr()[mark.idx];
    for (size_t i = 0; i < d.size(); ++i)
        if (m[i])
            d[i] = fn(x[i], y[i]);
}

void
Gvml::addU16Msk(Vr dst, Vr a, Vr b, Vr mark)
{
    trace::OpScope traceOp_("gvml.addU16Msk");
    ewise2Msk(dst, a, b, mark, core_.timing().compute.addU16,
              [](uint16_t x, uint16_t y) -> uint16_t {
                  return static_cast<uint16_t>(x + y);
              });
}

void
Gvml::subU16Msk(Vr dst, Vr a, Vr b, Vr mark)
{
    trace::OpScope traceOp_("gvml.subU16Msk");
    ewise2Msk(dst, a, b, mark, core_.timing().compute.subU16,
              [](uint16_t x, uint16_t y) -> uint16_t {
                  return static_cast<uint16_t>(x - y);
              });
}

void
Gvml::mulU16Msk(Vr dst, Vr a, Vr b, Vr mark)
{
    trace::OpScope traceOp_("gvml.mulU16Msk");
    ewise2Msk(dst, a, b, mark, core_.timing().compute.mulU16,
              [](uint16_t x, uint16_t y) -> uint16_t {
                  return static_cast<uint16_t>(
                      static_cast<uint32_t>(x) * y);
              });
}

void
Gvml::minU16Msk(Vr dst, Vr a, Vr b, Vr mark)
{
    trace::OpScope traceOp_("gvml.minU16Msk");
    ewise2Msk(dst, a, b, mark, core_.timing().compute.minU16,
              [](uint16_t x, uint16_t y) -> uint16_t {
                  return x < y ? x : y;
              });
}

void
Gvml::maxU16Msk(Vr dst, Vr a, Vr b, Vr mark)
{
    trace::OpScope traceOp_("gvml.maxU16Msk");
    ewise2Msk(dst, a, b, mark, core_.timing().compute.maxU16,
              [](uint16_t x, uint16_t y) -> uint16_t {
                  return x > y ? x : y;
              });
}

void
Gvml::eq16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.eq16");
    ewise2(dst, a, b, core_.timing().compute.eq16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return x == y ? 1 : 0;
           });
}

void
Gvml::gtU16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.gtU16");
    ewise2(dst, a, b, core_.timing().compute.gtU16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return x > y ? 1 : 0;
           });
}

void
Gvml::ltU16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.ltU16");
    ewise2(dst, a, b, core_.timing().compute.ltU16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return x < y ? 1 : 0;
           });
}

void
Gvml::geU16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.geU16");
    ewise2(dst, a, b, core_.timing().compute.geU16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return x >= y ? 1 : 0;
           });
}

void
Gvml::leU16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.leU16");
    ewise2(dst, a, b, core_.timing().compute.leU16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return x <= y ? 1 : 0;
           });
}

void
Gvml::gtS16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.gtS16");
    ewise2(dst, a, b, core_.timing().compute.gtU16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return asS16(x) > asS16(y) ? 1 : 0;
           });
}

void
Gvml::ltS16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.ltS16");
    ewise2(dst, a, b, core_.timing().compute.ltU16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return asS16(x) < asS16(y) ? 1 : 0;
           });
}

void
Gvml::ltGf16(Vr dst, Vr a, Vr b)
{
    trace::OpScope traceOp_("gvml.ltGf16");
    ewise2(dst, a, b, core_.timing().compute.ltGf16,
           [](uint16_t x, uint16_t y) -> uint16_t {
               return GsiFloat16::fromBits(x) < GsiFloat16::fromBits(y)
                   ? 1 : 0;
           });
}

} // namespace cisram::gvml
