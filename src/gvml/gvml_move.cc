/**
 * @file
 * GVML copies, broadcasts, subgroup moves, and intra-VR shifts.
 */

#include "gvml/gvml.hh"

#include "common/bitutils.hh"
#include "common/trace.hh"

namespace cisram::gvml {

void
Gvml::cpy16(Vr dst, Vr src)
{
    trace::OpScope traceOp_("gvml.cpy16");
    core_.chargeVectorOp(core_.timing().move.cpy);
    if (core_.functional())
        core_.vr()[dst.idx] = core_.vr()[src.idx];
}

void
Gvml::cpyImm16(Vr dst, uint16_t imm)
{
    trace::OpScope traceOp_("gvml.cpyImm16");
    core_.chargeVectorOp(core_.timing().move.cpyImm);
    if (core_.functional()) {
        auto &d = core_.vr()[dst.idx];
        std::fill(d.begin(), d.end(), imm);
    }
}

void
Gvml::cpy16Msk(Vr dst, Vr src, Vr mark)
{
    trace::OpScope traceOp_("gvml.cpy16Msk");
    core_.chargeVectorOp(core_.timing().compute.selectMsk);
    if (!core_.functional())
        return;
    auto &d = core_.vr()[dst.idx];
    const auto &s = core_.vr()[src.idx];
    const auto &m = core_.vr()[mark.idx];
    for (size_t i = 0; i < d.size(); ++i)
        if (m[i])
            d[i] = s[i];
}

void
Gvml::cpyImm16Msk(Vr dst, uint16_t imm, Vr mark)
{
    trace::OpScope traceOp_("gvml.cpyImm16Msk");
    core_.chargeVectorOp(core_.timing().compute.selectMsk);
    if (!core_.functional())
        return;
    auto &d = core_.vr()[dst.idx];
    const auto &m = core_.vr()[mark.idx];
    for (size_t i = 0; i < d.size(); ++i)
        if (m[i])
            d[i] = imm;
}

void
Gvml::cpyImm16Nmsk(Vr dst, uint16_t imm, Vr mark)
{
    trace::OpScope traceOp_("gvml.cpyImm16Nmsk");
    // Same bit-processor select as the positive-mask form; the
    // negation is free in the per-lane select logic.
    core_.chargeVectorOp(core_.timing().compute.selectMsk);
    if (!core_.functional())
        return;
    auto &d = core_.vr()[dst.idx];
    const auto &m = core_.vr()[mark.idx];
    for (size_t i = 0; i < d.size(); ++i)
        if (!m[i])
            d[i] = imm;
}

uint32_t
Gvml::cpyFromMrk16(Vr dst, Vr src, Vr mark)
{
    trace::OpScope traceOp_("gvml.cpyFromMrk16");
    // The compaction runs on the bit processors with a prefix-count
    // network; priced like two masked copies.
    core_.chargeVectorOp(2 * core_.timing().compute.selectMsk);
    if (!core_.functional())
        return 0;
    const auto &s = core_.vr()[src.idx];
    const auto &m = core_.vr()[mark.idx];
    std::vector<uint16_t> out(length(), 0);
    uint32_t n = 0;
    for (size_t i = 0; i < length(); ++i)
        if (m[i])
            out[n++] = s[i];
    core_.vr()[dst.idx] = std::move(out);
    return n;
}

void
Gvml::cpySubgrp16Grp(Vr dst, Vr src, size_t grp, size_t subgrp,
                     size_t which)
{
    trace::OpScope traceOp_("gvml.cpySubgrp16Grp");
    cisram_assert(grp > 0 && subgrp > 0 && grp % subgrp == 0,
                  "subgroup must divide group");
    cisram_assert(length() % grp == 0, "group must divide VR length");
    cisram_assert(which < grp / subgrp, "subgroup index OOB");
    core_.chargeVectorOp(core_.timing().move.cpySubgrp);
    if (!core_.functional())
        return;
    auto &d = core_.vr()[dst.idx];
    const auto &s = core_.vr()[src.idx];
    std::vector<uint16_t> out(length());
    for (size_t g = 0; g < length(); g += grp)
        for (size_t i = 0; i < grp; ++i)
            out[g + i] = s[g + which * subgrp + (i % subgrp)];
    d = std::move(out);
}

void
Gvml::createGrpIndexU16(Vr dst, size_t grp)
{
    trace::OpScope traceOp_("gvml.createGrpIndexU16");
    cisram_assert(grp > 0 && length() % grp == 0);
    core_.chargeVectorOp(core_.timing().compute.createGrpIndex);
    if (!core_.functional())
        return;
    auto &d = core_.vr()[dst.idx];
    for (size_t i = 0; i < d.size(); ++i)
        d[i] = static_cast<uint16_t>(i % grp);
}

void
Gvml::createIndexU16(Vr dst)
{
    trace::OpScope traceOp_("gvml.createIndexU16");
    core_.chargeVectorOp(core_.timing().compute.createGrpIndex);
    if (!core_.functional())
        return;
    auto &d = core_.vr()[dst.idx];
    for (size_t i = 0; i < d.size(); ++i)
        d[i] = static_cast<uint16_t>(i);
}

void
Gvml::shiftE(Vr dst, Vr src, int64_t k)
{
    trace::OpScope traceOp_("gvml.shiftE");
    uint64_t mag = static_cast<uint64_t>(k < 0 ? -k : k);
    const auto &mv = core_.timing().move;
    uint64_t cost;
    if (mag == 0) {
        cost = mv.cpy;
    } else if (mag % 4 == 0) {
        // Intra-bank path: shift_e(4k) costs 8 + k (Table 4).
        cost = mv.shiftIntraBankBase + mag / 4;
    } else {
        // Generic element shift: 373 cycles per element step.
        cost = mv.shiftPerStep * mag;
    }
    core_.chargeVectorOp(cost);
    if (!core_.functional())
        return;
    const auto &s = core_.vr()[src.idx];
    std::vector<uint16_t> out(length(), 0);
    if (k >= 0) {
        for (size_t i = 0; i + mag < length(); ++i)
            out[i] = s[i + mag];
    } else {
        for (size_t i = mag; i < length(); ++i)
            out[i] = s[i - mag];
    }
    core_.vr()[dst.idx] = std::move(out);
}

} // namespace cisram::gvml
