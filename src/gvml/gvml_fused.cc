/**
 * @file
 * Fused retrieval primitives.
 *
 * The RAG kernels' distance loop issues, per staged embedding plane
 * and per query, a broadcast + multiply + accumulate triple. Issued
 * separately those are three full element passes with two scratch-VR
 * round-trips; fused they are one pass that reads the embedding plane
 * and updates the accumulator in place. The cycle ledger cannot tell
 * the difference: the fused forms charge the identical cycle costs
 * under the identical op labels in the identical order, and leave the
 * VR file in the identical state (tests/test_wordparallel.cc pins
 * both against the unfused sequence).
 */

#include "gvml/gvml.hh"

#include "common/gsifloat.hh"
#include "common/trace.hh"

namespace cisram::gvml {

namespace {

int16_t
asS16(uint16_t v)
{
    return static_cast<int16_t>(v);
}

uint16_t
asU16(int32_t v)
{
    return static_cast<uint16_t>(static_cast<uint16_t>(v & 0xffff));
}

} // namespace

void
Gvml::macImmS16(Vr emb, Vr scratch_q, Vr scratch_t, const Vr *accs,
                const uint16_t *imms, size_t n)
{
    const auto &t = core_.timing();
    bool fnl = core_.functional();
    for (size_t q = 0; q < n; ++q) {
        cisram_assert(accs[q].idx != emb.idx &&
                          accs[q].idx != scratch_q.idx &&
                          accs[q].idx != scratch_t.idx,
                      "fused MAC registers must be distinct");
        {
            trace::OpScope traceOp_("gvml.cpyImm16");
            core_.chargeVectorOp(t.move.cpyImm);
        }
        {
            trace::OpScope traceOp_("gvml.mulS16");
            core_.chargeVectorOp(t.compute.mulS16);
        }
        {
            trace::OpScope traceOp_("gvml.addS16");
            core_.chargeVectorOp(t.compute.addS16);
        }
        if (fnl) {
            const auto &e = core_.vr()[emb.idx];
            auto &a = core_.vr()[accs[q].idx];
            int16_t w = asS16(imms[q]);
            for (size_t i = 0; i < a.size(); ++i) {
                uint16_t prod = asU16(
                    static_cast<int32_t>(asS16(e[i])) * w);
                a[i] = asU16(static_cast<int32_t>(asS16(a[i])) +
                             asS16(prod));
            }
        }
    }
    if (fnl && n > 0) {
        // The last query's broadcast and product planes are what the
        // unfused sequence leaves behind in the scratch registers.
        auto &qv = core_.vr()[scratch_q.idx];
        std::fill(qv.begin(), qv.end(), imms[n - 1]);
        const auto &e = core_.vr()[emb.idx];
        auto &tv = core_.vr()[scratch_t.idx];
        int16_t w = asS16(imms[n - 1]);
        for (size_t i = 0; i < tv.size(); ++i)
            tv[i] =
                asU16(static_cast<int32_t>(asS16(e[i])) * w);
    }
}

void
Gvml::macImmGf16(Vr emb, Vr scratch_q, Vr scratch_t, Vr acc,
                 uint16_t imm)
{
    cisram_assert(acc.idx != emb.idx && acc.idx != scratch_q.idx &&
                      acc.idx != scratch_t.idx,
                  "fused MAC registers must be distinct");
    const auto &t = core_.timing();
    {
        trace::OpScope traceOp_("gvml.cpyImm16");
        core_.chargeVectorOp(t.move.cpyImm);
    }
    {
        trace::OpScope traceOp_("gvml.mulGf16");
        core_.chargeVectorOp(t.compute.mulF16);
    }
    {
        trace::OpScope traceOp_("gvml.addGf16");
        core_.chargeVectorOp(t.compute.mulF16);
    }
    if (!core_.functional())
        return;
    GsiFloat16 w = GsiFloat16::fromBits(imm);
    const auto &e = core_.vr()[emb.idx];
    auto &a = core_.vr()[acc.idx];
    auto &qv = core_.vr()[scratch_q.idx];
    auto &tv = core_.vr()[scratch_t.idx];
    for (size_t i = 0; i < a.size(); ++i) {
        uint16_t prod = (GsiFloat16::fromBits(e[i]) * w).bits();
        a[i] = (GsiFloat16::fromBits(a[i]) +
                GsiFloat16::fromBits(prod))
                   .bits();
        tv[i] = prod;
    }
    std::fill(qv.begin(), qv.end(), imm);
}

} // namespace cisram::gvml
