#include "gvml/microcode.hh"

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace cisram::gvml {

using apu::BitProcArray;
using apu::BoolOp;
using apu::LatchSrc;

namespace {

// ---------------------------------------------------------------
// Flattened micro-op plans.
//
// The routine bodies below are written once as templates over a
// "sink" with the BitProcArray operation interface. Instantiated
// with the real array they execute directly; instantiated with the
// recorder they append one McInsn per micro-op. mc* entry points
// look the plan up by (routine, args) and replay it.

struct McInsn
{
    enum class Op : uint8_t
    {
        RlFromImm,
        RlFromVr,
        RlFromVrAndVr,
        RlFromLatch,
        RlOpVr,
        RlOpLatch,
        WriteVr,
        LoadGvl,
    };
    Op op;
    uint16_t mask;
    uint8_t vr0 = 0, vr1 = 0;
    BoolOp bop = BoolOp::And;
    LatchSrc src = LatchSrc::RL;
    bool flag = false; // immediate value / negated write
};

struct McProgram
{
    std::vector<McInsn> insns;

    void
    run(BitProcArray &bp) const
    {
        for (const McInsn &in : insns) {
            switch (in.op) {
              case McInsn::Op::RlFromImm:
                bp.rlFromImmediate(in.mask, in.flag);
                break;
              case McInsn::Op::RlFromVr:
                bp.rlFromVr(in.mask, in.vr0);
                break;
              case McInsn::Op::RlFromVrAndVr:
                bp.rlFromVrAndVr(in.mask, in.vr0, in.vr1);
                break;
              case McInsn::Op::RlFromLatch:
                bp.rlFromLatch(in.mask, in.src);
                break;
              case McInsn::Op::RlOpVr:
                bp.rlOpVr(in.mask, in.bop, in.vr0);
                break;
              case McInsn::Op::RlOpLatch:
                bp.rlOpLatch(in.mask, in.bop, in.src);
                break;
              case McInsn::Op::WriteVr:
                bp.writeVrFromRl(in.mask, in.vr0, in.flag);
                break;
              case McInsn::Op::LoadGvl:
                bp.loadGvlFromRl(in.mask);
                break;
            }
        }
    }
};

/** Recording sink: one appended McInsn per micro-op. */
struct McRecorder
{
    std::vector<McInsn> insns;

    void
    rlFromImmediate(uint16_t mask, bool value)
    {
        insns.push_back({McInsn::Op::RlFromImm, mask, 0, 0,
                         BoolOp::And, LatchSrc::RL, value});
    }
    void
    rlFromVr(uint16_t mask, unsigned vr0)
    {
        insns.push_back({McInsn::Op::RlFromVr, mask,
                         static_cast<uint8_t>(vr0), 0, BoolOp::And,
                         LatchSrc::RL, false});
    }
    void
    rlFromVrAndVr(uint16_t mask, unsigned vr0, unsigned vr1)
    {
        insns.push_back({McInsn::Op::RlFromVrAndVr, mask,
                         static_cast<uint8_t>(vr0),
                         static_cast<uint8_t>(vr1), BoolOp::And,
                         LatchSrc::RL, false});
    }
    void
    rlFromLatch(uint16_t mask, LatchSrc src)
    {
        insns.push_back({McInsn::Op::RlFromLatch, mask, 0, 0,
                         BoolOp::And, src, false});
    }
    void
    rlOpVr(uint16_t mask, BoolOp op, unsigned vr0)
    {
        insns.push_back({McInsn::Op::RlOpVr, mask,
                         static_cast<uint8_t>(vr0), 0, op,
                         LatchSrc::RL, false});
    }
    void
    rlOpLatch(uint16_t mask, BoolOp op, LatchSrc src)
    {
        insns.push_back(
            {McInsn::Op::RlOpLatch, mask, 0, 0, op, src, false});
    }
    void
    writeVrFromRl(uint16_t mask, unsigned vr0, bool negate = false)
    {
        insns.push_back({McInsn::Op::WriteVr, mask,
                         static_cast<uint8_t>(vr0), 0, BoolOp::And,
                         LatchSrc::RL, negate});
    }
    void
    loadGvlFromRl(uint16_t mask)
    {
        insns.push_back({McInsn::Op::LoadGvl, mask, 0, 0,
                         BoolOp::And, LatchSrc::RL, false});
    }
};

// ---------------------------------------------------------------
// Routine bodies (shared by direct execution and recording).

template <typename BP>
void
emitAddU16(BP &bp, unsigned vr_dst, unsigned vr_a, unsigned vr_b,
           unsigned vr_carry, unsigned vr_prop, unsigned vr_gen)
{
    // Clear the carry chain: slice 0's carry-in is zero.
    bp.rlFromImmediate(BitProcArray::fullMask, false);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_carry);

    // Precompute propagate (a ^ b) and generate (a & b) bit-parallel:
    // all 16 slices in one micro-op each.
    bp.rlFromVr(BitProcArray::fullMask, vr_a);
    bp.rlOpVr(BitProcArray::fullMask, BoolOp::Xor, vr_b);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_prop);
    bp.rlFromVrAndVr(BitProcArray::fullMask, vr_a, vr_b);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_gen);

    // Ripple the carry: for each bit i, sum_i = p_i ^ c_i and
    // c_{i+1} = g_i | (p_i & c_i). The carry-out is computed in
    // slice i's RL and picked up by slice i+1 through the RL_S wire.
    for (unsigned i = 0; i < 16; ++i) {
        uint16_t m = static_cast<uint16_t>(1u << i);

        // sum bit: RL = p ^ c, write to dst.
        bp.rlFromVr(m, vr_prop);
        bp.rlOpVr(m, BoolOp::Xor, vr_carry);
        bp.writeVrFromRl(m, vr_dst);

        if (i == 15)
            break;

        // carry-out in slice i's RL: RL = (p & c) | g.
        bp.rlFromVrAndVr(m, vr_prop, vr_carry);
        bp.rlOpVr(m, BoolOp::Or, vr_gen);

        // slice i+1 grabs it via the south-neighbour wire.
        uint16_t m_next = static_cast<uint16_t>(1u << (i + 1));
        bp.rlFromLatch(m_next, LatchSrc::RL_S);
        bp.writeVrFromRl(m_next, vr_carry);
    }
}

template <typename BP>
void
emitXor16(BP &bp, unsigned vr_dst, unsigned vr_a, unsigned vr_b,
          unsigned vr_tmp)
{
    // a ^ b == (a | b) & ~(a & b), composed from the read logic's
    // native AND/OR plus a negated write through WBLB.
    bp.rlFromVrAndVr(BitProcArray::fullMask, vr_a, vr_b);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_tmp, /*negate=*/true);
    bp.rlFromVr(BitProcArray::fullMask, vr_a);
    bp.rlOpVr(BitProcArray::fullMask, BoolOp::Or, vr_b);
    bp.rlOpVr(BitProcArray::fullMask, BoolOp::And, vr_tmp);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_dst);
}

template <typename BP>
void
emitAllBitsSet(BP &bp, unsigned vr_dst, unsigned vr_a)
{
    bp.rlFromVr(BitProcArray::fullMask, vr_a);
    bp.loadGvlFromRl(BitProcArray::fullMask);
    bp.rlFromLatch(BitProcArray::fullMask, LatchSrc::GVL);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_dst);
}

template <typename BP>
void
emitSubU16(BP &bp, unsigned vr_dst, unsigned vr_a, unsigned vr_b,
           unsigned vr_carry, unsigned vr_prop, unsigned vr_gen,
           unsigned vr_nb)
{
    // ~b through the negated write bit-line.
    bp.rlFromVr(BitProcArray::fullMask, vr_b);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_nb, /*negate=*/true);

    // a + ~b with carry-in 1: seed slice 0's carry with ones.
    bp.rlFromImmediate(BitProcArray::fullMask, false);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_carry);
    bp.rlFromImmediate(0x0001, true);
    bp.writeVrFromRl(0x0001, vr_carry);

    bp.rlFromVr(BitProcArray::fullMask, vr_a);
    bp.rlOpVr(BitProcArray::fullMask, BoolOp::Xor, vr_nb);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_prop);
    bp.rlFromVrAndVr(BitProcArray::fullMask, vr_a, vr_nb);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_gen);

    for (unsigned i = 0; i < 16; ++i) {
        uint16_t m = static_cast<uint16_t>(1u << i);
        bp.rlFromVr(m, vr_prop);
        bp.rlOpVr(m, BoolOp::Xor, vr_carry);
        bp.writeVrFromRl(m, vr_dst);
        if (i == 15)
            break;
        bp.rlFromVrAndVr(m, vr_prop, vr_carry);
        bp.rlOpVr(m, BoolOp::Or, vr_gen);
        uint16_t m_next = static_cast<uint16_t>(1u << (i + 1));
        bp.rlFromLatch(m_next, LatchSrc::RL_S);
        bp.writeVrFromRl(m_next, vr_carry);
    }
}

template <typename BP>
void
emitMulU16(BP &bp, unsigned vr_dst, unsigned vr_a, unsigned vr_b,
           unsigned vr_mask, unsigned vr_partial, unsigned vr_carry,
           unsigned vr_prop, unsigned vr_gen)
{
    // dst = 0.
    bp.rlFromImmediate(BitProcArray::fullMask, false);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_dst);

    for (unsigned i = 0; i < 16; ++i) {
        // --- mask = b's bit i, replicated across all slices -------
        // Shift b's planes down i slices so bit i lands in slice 0,
        // isolate it there, then propagate upward by OR-ing the
        // south neighbour 15 times.
        bp.rlFromVr(BitProcArray::fullMask, vr_b);
        for (unsigned k = 0; k < i; ++k)
            bp.rlFromLatch(BitProcArray::fullMask, LatchSrc::RL_N);
        bp.writeVrFromRl(0x0001, vr_mask);
        bp.rlFromImmediate(0xfffe, false);
        bp.writeVrFromRl(0xfffe, vr_mask);
        for (unsigned k = 0; k < 15; ++k) {
            bp.rlFromVr(BitProcArray::fullMask, vr_mask);
            bp.rlOpLatch(BitProcArray::fullMask, BoolOp::Or,
                         LatchSrc::RL_S);
            bp.writeVrFromRl(BitProcArray::fullMask, vr_mask);
        }

        // --- partial = (a << i) & mask ----------------------------
        bp.rlFromVr(BitProcArray::fullMask, vr_a);
        for (unsigned k = 0; k < i; ++k)
            bp.rlFromLatch(BitProcArray::fullMask, LatchSrc::RL_S);
        bp.rlOpVr(BitProcArray::fullMask, BoolOp::And, vr_mask);
        bp.writeVrFromRl(BitProcArray::fullMask, vr_partial);

        // --- dst += partial ----------------------------------------
        emitAddU16(bp, vr_dst, vr_dst, vr_partial, vr_carry, vr_prop,
                   vr_gen);
    }
}

// ---------------------------------------------------------------
// Plan cache.

enum class Routine : uint8_t
{
    AddU16,
    Xor16,
    AllBitsSet,
    SubU16,
    MulU16,
};

struct PlanCache
{
    std::mutex mu;
    std::unordered_map<uint64_t, std::shared_ptr<const McProgram>>
        plans;
    McPlanCacheStats stats;
};

PlanCache &
planCache()
{
    static PlanCache cache;
    return cache;
}

/**
 * Pack (routine, up to 8 VR args) into the cache key. VR indices are
 * < 24, so 5 bits each suffice and the whole key fits one u64.
 */
uint64_t
planKey(Routine r, std::initializer_list<unsigned> args)
{
    uint64_t key = static_cast<uint64_t>(r);
    for (unsigned a : args) {
        cisram_assert(a < 32, "VR arg too large for plan key");
        key = (key << 5) | a;
    }
    return key;
}

template <typename EmitFn>
std::shared_ptr<const McProgram>
planFor(Routine r, std::initializer_list<unsigned> args,
        EmitFn &&emit)
{
    PlanCache &c = planCache();
    uint64_t key = planKey(r, args);
    {
        std::lock_guard<std::mutex> lock(c.mu);
        auto it = c.plans.find(key);
        if (it != c.plans.end()) {
            ++c.stats.hits;
            return it->second;
        }
        ++c.stats.misses;
    }
    // Record outside the lock (emission touches no shared state);
    // racing recorders produce identical programs, last one wins.
    McRecorder rec;
    emit(rec);
    auto prog = std::make_shared<const McProgram>(
        McProgram{std::move(rec.insns)});
    std::lock_guard<std::mutex> lock(c.mu);
    return c.plans.emplace(key, std::move(prog)).first->second;
}

} // namespace

McPlanCacheStats
mcPlanCacheStats()
{
    PlanCache &c = planCache();
    std::lock_guard<std::mutex> lock(c.mu);
    return c.stats;
}

void
mcPlanCacheClear()
{
    PlanCache &c = planCache();
    std::lock_guard<std::mutex> lock(c.mu);
    c.plans.clear();
    c.stats = McPlanCacheStats{};
}

uint64_t
mcAddU16(BitProcArray &bp, unsigned vr_dst, unsigned vr_a,
         unsigned vr_b, unsigned vr_carry, unsigned vr_prop,
         unsigned vr_gen)
{
    uint64_t start = bp.uopCount();
    auto plan = planFor(
        Routine::AddU16,
        {vr_dst, vr_a, vr_b, vr_carry, vr_prop, vr_gen},
        [&](McRecorder &r) {
            emitAddU16(r, vr_dst, vr_a, vr_b, vr_carry, vr_prop,
                       vr_gen);
        });
    plan->run(bp);
    return bp.uopCount() - start;
}

uint64_t
mcXor16(BitProcArray &bp, unsigned vr_dst, unsigned vr_a,
        unsigned vr_b, unsigned vr_tmp)
{
    uint64_t start = bp.uopCount();
    auto plan =
        planFor(Routine::Xor16, {vr_dst, vr_a, vr_b, vr_tmp},
                [&](McRecorder &r) {
                    emitXor16(r, vr_dst, vr_a, vr_b, vr_tmp);
                });
    plan->run(bp);
    return bp.uopCount() - start;
}

uint64_t
mcAllBitsSet(BitProcArray &bp, unsigned vr_dst, unsigned vr_a)
{
    uint64_t start = bp.uopCount();
    auto plan = planFor(Routine::AllBitsSet, {vr_dst, vr_a},
                        [&](McRecorder &r) {
                            emitAllBitsSet(r, vr_dst, vr_a);
                        });
    plan->run(bp);
    return bp.uopCount() - start;
}

uint64_t
mcSubU16(BitProcArray &bp, unsigned vr_dst, unsigned vr_a,
         unsigned vr_b, unsigned vr_carry, unsigned vr_prop,
         unsigned vr_gen, unsigned vr_nb)
{
    uint64_t start = bp.uopCount();
    auto plan = planFor(
        Routine::SubU16,
        {vr_dst, vr_a, vr_b, vr_carry, vr_prop, vr_gen, vr_nb},
        [&](McRecorder &r) {
            emitSubU16(r, vr_dst, vr_a, vr_b, vr_carry, vr_prop,
                       vr_gen, vr_nb);
        });
    plan->run(bp);
    return bp.uopCount() - start;
}

uint64_t
mcMulU16(BitProcArray &bp, unsigned vr_dst, unsigned vr_a,
         unsigned vr_b, unsigned vr_mask, unsigned vr_partial,
         unsigned vr_carry, unsigned vr_prop, unsigned vr_gen)
{
    uint64_t start = bp.uopCount();
    auto plan = planFor(
        Routine::MulU16,
        {vr_dst, vr_a, vr_b, vr_mask, vr_partial, vr_carry, vr_prop,
         vr_gen},
        [&](McRecorder &r) {
            emitMulU16(r, vr_dst, vr_a, vr_b, vr_mask, vr_partial,
                       vr_carry, vr_prop, vr_gen);
        });
    plan->run(bp);
    return bp.uopCount() - start;
}

} // namespace cisram::gvml
