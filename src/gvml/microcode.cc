#include "gvml/microcode.hh"

namespace cisram::gvml {

using apu::BitProcArray;
using apu::BoolOp;
using apu::LatchSrc;

uint64_t
mcAddU16(BitProcArray &bp, unsigned vr_dst, unsigned vr_a,
         unsigned vr_b, unsigned vr_carry, unsigned vr_prop,
         unsigned vr_gen)
{
    uint64_t start = bp.uopCount();

    // Clear the carry chain: slice 0's carry-in is zero.
    bp.rlFromImmediate(BitProcArray::fullMask, false);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_carry);

    // Precompute propagate (a ^ b) and generate (a & b) bit-parallel:
    // all 16 slices in one micro-op each.
    bp.rlFromVr(BitProcArray::fullMask, vr_a);
    bp.rlOpVr(BitProcArray::fullMask, BoolOp::Xor, vr_b);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_prop);
    bp.rlFromVrAndVr(BitProcArray::fullMask, vr_a, vr_b);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_gen);

    // Ripple the carry: for each bit i, sum_i = p_i ^ c_i and
    // c_{i+1} = g_i | (p_i & c_i). The carry-out is computed in
    // slice i's RL and picked up by slice i+1 through the RL_S wire.
    for (unsigned i = 0; i < 16; ++i) {
        uint16_t m = static_cast<uint16_t>(1u << i);

        // sum bit: RL = p ^ c, write to dst.
        bp.rlFromVr(m, vr_prop);
        bp.rlOpVr(m, BoolOp::Xor, vr_carry);
        bp.writeVrFromRl(m, vr_dst);

        if (i == 15)
            break;

        // carry-out in slice i's RL: RL = (p & c) | g.
        bp.rlFromVrAndVr(m, vr_prop, vr_carry);
        bp.rlOpVr(m, BoolOp::Or, vr_gen);

        // slice i+1 grabs it via the south-neighbour wire.
        uint16_t m_next = static_cast<uint16_t>(1u << (i + 1));
        bp.rlFromLatch(m_next, LatchSrc::RL_S);
        bp.writeVrFromRl(m_next, vr_carry);
    }

    return bp.uopCount() - start;
}

uint64_t
mcXor16(BitProcArray &bp, unsigned vr_dst, unsigned vr_a,
        unsigned vr_b, unsigned vr_tmp)
{
    uint64_t start = bp.uopCount();
    // a ^ b == (a | b) & ~(a & b), composed from the read logic's
    // native AND/OR plus a negated write through WBLB.
    bp.rlFromVrAndVr(BitProcArray::fullMask, vr_a, vr_b);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_tmp, /*negate=*/true);
    bp.rlFromVr(BitProcArray::fullMask, vr_a);
    bp.rlOpVr(BitProcArray::fullMask, BoolOp::Or, vr_b);
    bp.rlOpVr(BitProcArray::fullMask, BoolOp::And, vr_tmp);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_dst);
    return bp.uopCount() - start;
}

uint64_t
mcAllBitsSet(BitProcArray &bp, unsigned vr_dst, unsigned vr_a)
{
    uint64_t start = bp.uopCount();
    bp.rlFromVr(BitProcArray::fullMask, vr_a);
    bp.loadGvlFromRl(BitProcArray::fullMask);
    bp.rlFromLatch(BitProcArray::fullMask, LatchSrc::GVL);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_dst);
    return bp.uopCount() - start;
}

uint64_t
mcSubU16(BitProcArray &bp, unsigned vr_dst, unsigned vr_a,
         unsigned vr_b, unsigned vr_carry, unsigned vr_prop,
         unsigned vr_gen, unsigned vr_nb)
{
    uint64_t start = bp.uopCount();

    // ~b through the negated write bit-line.
    bp.rlFromVr(BitProcArray::fullMask, vr_b);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_nb, /*negate=*/true);

    // a + ~b with carry-in 1: seed slice 0's carry with ones.
    bp.rlFromImmediate(BitProcArray::fullMask, false);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_carry);
    bp.rlFromImmediate(0x0001, true);
    bp.writeVrFromRl(0x0001, vr_carry);

    bp.rlFromVr(BitProcArray::fullMask, vr_a);
    bp.rlOpVr(BitProcArray::fullMask, BoolOp::Xor, vr_nb);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_prop);
    bp.rlFromVrAndVr(BitProcArray::fullMask, vr_a, vr_nb);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_gen);

    for (unsigned i = 0; i < 16; ++i) {
        uint16_t m = static_cast<uint16_t>(1u << i);
        bp.rlFromVr(m, vr_prop);
        bp.rlOpVr(m, BoolOp::Xor, vr_carry);
        bp.writeVrFromRl(m, vr_dst);
        if (i == 15)
            break;
        bp.rlFromVrAndVr(m, vr_prop, vr_carry);
        bp.rlOpVr(m, BoolOp::Or, vr_gen);
        uint16_t m_next = static_cast<uint16_t>(1u << (i + 1));
        bp.rlFromLatch(m_next, LatchSrc::RL_S);
        bp.writeVrFromRl(m_next, vr_carry);
    }
    return bp.uopCount() - start;
}

uint64_t
mcMulU16(BitProcArray &bp, unsigned vr_dst, unsigned vr_a,
         unsigned vr_b, unsigned vr_mask, unsigned vr_partial,
         unsigned vr_carry, unsigned vr_prop, unsigned vr_gen)
{
    uint64_t start = bp.uopCount();

    // dst = 0.
    bp.rlFromImmediate(BitProcArray::fullMask, false);
    bp.writeVrFromRl(BitProcArray::fullMask, vr_dst);

    for (unsigned i = 0; i < 16; ++i) {
        // --- mask = b's bit i, replicated across all slices -------
        // Shift b's planes down i slices so bit i lands in slice 0,
        // isolate it there, then propagate upward by OR-ing the
        // south neighbour 15 times.
        bp.rlFromVr(BitProcArray::fullMask, vr_b);
        for (unsigned k = 0; k < i; ++k)
            bp.rlFromLatch(BitProcArray::fullMask, LatchSrc::RL_N);
        bp.writeVrFromRl(0x0001, vr_mask);
        bp.rlFromImmediate(0xfffe, false);
        bp.writeVrFromRl(0xfffe, vr_mask);
        for (unsigned k = 0; k < 15; ++k) {
            bp.rlFromVr(BitProcArray::fullMask, vr_mask);
            bp.rlOpLatch(BitProcArray::fullMask, BoolOp::Or,
                         LatchSrc::RL_S);
            bp.writeVrFromRl(BitProcArray::fullMask, vr_mask);
        }

        // --- partial = (a << i) & mask ----------------------------
        bp.rlFromVr(BitProcArray::fullMask, vr_a);
        for (unsigned k = 0; k < i; ++k)
            bp.rlFromLatch(BitProcArray::fullMask, LatchSrc::RL_S);
        bp.rlOpVr(BitProcArray::fullMask, BoolOp::And, vr_mask);
        bp.writeVrFromRl(BitProcArray::fullMask, vr_partial);

        // --- dst += partial ----------------------------------------
        mcAddU16(bp, vr_dst, vr_dst, vr_partial, vr_carry, vr_prop,
                 vr_gen);
    }
    return bp.uopCount() - start;
}

} // namespace cisram::gvml
