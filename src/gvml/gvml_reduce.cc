/**
 * @file
 * GVML reductions: hierarchical subgroup add, mark counting, and the
 * associative global max/min search.
 */

#include "gvml/gvml.hh"

#include "common/bitutils.hh"
#include "common/trace.hh"

namespace cisram::gvml {

void
Gvml::addSubgrpS16(Vr dst, Vr src, size_t grp, size_t subgrp)
{
    trace::OpScope traceOp_("gvml.addSubgrpS16");
    cisram_assert(isPow2(grp) && isPow2(subgrp),
                  "subgroup reduction requires power-of-two sizes");
    cisram_assert(subgrp <= grp && grp <= length(),
                  "invalid group/subgroup sizes");
    cisram_assert(length() % grp == 0, "group must divide VR length");

    if (grp == subgrp) {
        cpy16(dst, src);
        return;
    }

    // The device realizes this reduction with dedicated microcode:
    // log2(grp/subgrp) shift-and-add stages whose per-stage cost
    // grows quadratically with stage depth (wider alignment and
    // masking at each level). The total is therefore cubic in the
    // logarithms of the sizes, which is exactly the behaviour the
    // analytical framework's Eq. 1 models and fits.
    const auto &cp = core_.timing().compute;
    const auto &ct = core_.timing().control;

    std::vector<uint16_t> work;
    if (core_.functional())
        work = core_.vr()[src.idx];

    uint64_t ls = log2Floor(subgrp == 0 ? 1 : subgrp);
    for (size_t step = grp / 2; step >= subgrp; step /= 2) {
        uint64_t u = log2Floor(step == 0 ? 1 : step) + 1;
        uint64_t stage_cost = cp.sgStageBase + cp.sgStageLinear * u +
            cp.sgStageMask * ls * ls;
        core_.chargeVectorOp(stage_cost);
        core_.chargeVectorOp(cp.addS16);
        core_.chargeRaw(ct.vcuDecode); // mask re-arm between the pair

        if (core_.functional()) {
            for (size_t i = 0; i + step < work.size(); ++i) {
                int32_t sum = static_cast<int16_t>(work[i]) +
                              static_cast<int16_t>(work[i + step]);
                work[i] = static_cast<uint16_t>(sum & 0xffff);
            }
        }
    }

    if (core_.functional())
        core_.vr()[dst.idx] = std::move(work);
}

uint32_t
Gvml::countM(Vr mark)
{
    trace::OpScope traceOp_("gvml.countM");
    core_.chargeVectorOp(core_.timing().compute.countM);
    if (!core_.functional())
        return 0;
    const auto &m = core_.vr()[mark.idx];
    uint32_t n = 0;
    for (uint16_t v : m)
        if (v)
            ++n;
    return n;
}

namespace {

/** Cycles charged per refinement step of the associative search. */
uint64_t
searchStepCycles(const apu::TimingParams &t)
{
    // One read-AND against the candidate mark plus the wired-OR "any"
    // test on the global horizontal lines.
    return t.compute.and16 + t.compute.or16 + 4;
}

} // namespace

Gvml::MaxResult
Gvml::maxIndexU16(Vr src)
{
    trace::OpScope traceOp_("gvml.maxIndexU16");
    const auto &t = core_.timing();
    // 16 bit-serial refinement steps, then one serial index fetch.
    for (int b = 0; b < 16; ++b)
        core_.chargeVectorOp(searchStepCycles(t));
    core_.chargeRaw(t.move.pioStorePerElem);

    if (!core_.functional())
        return {0, 0};

    // The MSB-first associative refinement provably converges on the
    // maximum with its candidate set equal to exactly the elements
    // attaining it (every refinement keeps all elements whose probed
    // prefix matches, and a bit is kept iff some candidate has it),
    // so the whole 16-round search collapses to a single linear max
    // scan returning the first index of the maximum
    // (tests/test_wordparallel.cc pins this against a brute-force
    // reference).
    const auto &s = core_.vr()[src.idx];
    if (s.empty())
        cisram_panic("associative max search lost all candidates");
    uint16_t value = s[0];
    size_t index = 0;
    for (size_t i = 1; i < s.size(); ++i) {
        if (s[i] > value) {
            value = s[i];
            index = i;
        }
    }
    return {value, index};
}

Gvml::MaxResult
Gvml::minIndexU16(Vr src)
{
    trace::OpScope traceOp_("gvml.minIndexU16");
    const auto &t = core_.timing();
    for (int b = 0; b < 16; ++b)
        core_.chargeVectorOp(searchStepCycles(t));
    core_.chargeRaw(t.move.pioStorePerElem);

    if (!core_.functional())
        return {0, 0};

    // Minimum search: identical refinement on complemented bits, so
    // the same single-pass argument applies (see maxIndexU16) with
    // the comparison reversed.
    const auto &s = core_.vr()[src.idx];
    if (s.empty())
        cisram_panic("associative min search lost all candidates");
    uint16_t value = s[0];
    size_t index = 0;
    for (size_t i = 1; i < s.size(); ++i) {
        if (s[i] < value) {
            value = s[i];
            index = i;
        }
    }
    return {value, index};
}

} // namespace cisram::gvml
