/**
 * @file
 * GVML reductions: hierarchical subgroup add, mark counting, and the
 * associative global max/min search.
 */

#include "gvml/gvml.hh"

#include "common/bitutils.hh"
#include "common/trace.hh"

namespace cisram::gvml {

void
Gvml::addSubgrpS16(Vr dst, Vr src, size_t grp, size_t subgrp)
{
    trace::OpScope traceOp_("gvml.addSubgrpS16");
    cisram_assert(isPow2(grp) && isPow2(subgrp),
                  "subgroup reduction requires power-of-two sizes");
    cisram_assert(subgrp <= grp && grp <= length(),
                  "invalid group/subgroup sizes");
    cisram_assert(length() % grp == 0, "group must divide VR length");

    if (grp == subgrp) {
        cpy16(dst, src);
        return;
    }

    // The device realizes this reduction with dedicated microcode:
    // log2(grp/subgrp) shift-and-add stages whose per-stage cost
    // grows quadratically with stage depth (wider alignment and
    // masking at each level). The total is therefore cubic in the
    // logarithms of the sizes, which is exactly the behaviour the
    // analytical framework's Eq. 1 models and fits.
    const auto &cp = core_.timing().compute;
    const auto &ct = core_.timing().control;

    std::vector<uint16_t> work;
    if (core_.functional())
        work = core_.vr()[src.idx];

    uint64_t ls = log2Floor(subgrp == 0 ? 1 : subgrp);
    for (size_t step = grp / 2; step >= subgrp; step /= 2) {
        uint64_t u = log2Floor(step == 0 ? 1 : step) + 1;
        uint64_t stage_cost = cp.sgStageBase + cp.sgStageLinear * u +
            cp.sgStageMask * ls * ls;
        core_.chargeVectorOp(stage_cost);
        core_.chargeVectorOp(cp.addS16);
        core_.chargeRaw(ct.vcuDecode); // mask re-arm between the pair

        if (core_.functional()) {
            for (size_t i = 0; i + step < work.size(); ++i) {
                int32_t sum = static_cast<int16_t>(work[i]) +
                              static_cast<int16_t>(work[i + step]);
                work[i] = static_cast<uint16_t>(sum & 0xffff);
            }
        }
    }

    if (core_.functional())
        core_.vr()[dst.idx] = std::move(work);
}

uint32_t
Gvml::countM(Vr mark)
{
    trace::OpScope traceOp_("gvml.countM");
    core_.chargeVectorOp(core_.timing().compute.countM);
    if (!core_.functional())
        return 0;
    const auto &m = core_.vr()[mark.idx];
    uint32_t n = 0;
    for (uint16_t v : m)
        if (v)
            ++n;
    return n;
}

namespace {

/** Cycles charged per refinement step of the associative search. */
uint64_t
searchStepCycles(const apu::TimingParams &t)
{
    // One read-AND against the candidate mark plus the wired-OR "any"
    // test on the global horizontal lines.
    return t.compute.and16 + t.compute.or16 + 4;
}

} // namespace

Gvml::MaxResult
Gvml::maxIndexU16(Vr src)
{
    trace::OpScope traceOp_("gvml.maxIndexU16");
    const auto &t = core_.timing();
    // 16 bit-serial refinement steps, then one serial index fetch.
    for (int b = 0; b < 16; ++b)
        core_.chargeVectorOp(searchStepCycles(t));
    core_.chargeRaw(t.move.pioStorePerElem);

    if (!core_.functional())
        return {0, 0};

    const auto &s = core_.vr()[src.idx];
    std::vector<bool> cand(s.size(), true);
    uint16_t value = 0;
    for (int b = 15; b >= 0; --b) {
        uint16_t probe = static_cast<uint16_t>(value | (1u << b));
        bool any = false;
        for (size_t i = 0; i < s.size(); ++i) {
            if (cand[i] && (s[i] & probe) == probe) {
                any = true;
                break;
            }
        }
        if (any) {
            value = probe;
            for (size_t i = 0; i < s.size(); ++i)
                cand[i] = cand[i] && (s[i] & probe) == probe;
        }
    }
    for (size_t i = 0; i < s.size(); ++i)
        if (cand[i])
            return {value, i};
    cisram_panic("associative max search lost all candidates");
}

Gvml::MaxResult
Gvml::minIndexU16(Vr src)
{
    trace::OpScope traceOp_("gvml.minIndexU16");
    const auto &t = core_.timing();
    for (int b = 0; b < 16; ++b)
        core_.chargeVectorOp(searchStepCycles(t));
    core_.chargeRaw(t.move.pioStorePerElem);

    if (!core_.functional())
        return {0, 0};

    // Minimum search: identical refinement on complemented bits.
    const auto &s = core_.vr()[src.idx];
    std::vector<bool> cand(s.size(), true);
    uint16_t inv_value = 0;
    for (int b = 15; b >= 0; --b) {
        uint16_t probe = static_cast<uint16_t>(inv_value | (1u << b));
        bool any = false;
        for (size_t i = 0; i < s.size(); ++i) {
            uint16_t inv = static_cast<uint16_t>(~s[i]);
            if (cand[i] && (inv & probe) == probe) {
                any = true;
                break;
            }
        }
        if (any) {
            inv_value = probe;
            for (size_t i = 0; i < s.size(); ++i) {
                uint16_t inv = static_cast<uint16_t>(~s[i]);
                cand[i] = cand[i] && (inv & probe) == probe;
            }
        }
    }
    for (size_t i = 0; i < s.size(); ++i) {
        if (cand[i]) {
            return {static_cast<uint16_t>(~inv_value), i};
        }
    }
    cisram_panic("associative min search lost all candidates");
}

} // namespace cisram::gvml
