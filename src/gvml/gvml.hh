/**
 * @file
 * GVML: the vector math library of the simulated APU.
 *
 * Reimplements the API surface of the GSI Vector Math Library used by
 * the paper (Section 2.2.2, Tables 4 and 5): element-wise arithmetic,
 * logical and comparison operations, masked variants, copies and
 * broadcasts, intra-VR shifts, subgroup operations including the
 * hierarchical subgroup reduction, indexed lookup, and the DMA entry
 * points that device programs call (Figs. 5 and 6).
 *
 * Every operation charges its documented cycle cost to the owning
 * core's CycleStats and, in functional mode, computes real results.
 * Method names transliterate the C API (gvml_add_u16 -> addU16).
 */

#ifndef CISRAM_GVML_GVML_HH
#define CISRAM_GVML_GVML_HH

#include <cstdint>
#include <functional>

#include "apusim/apu.hh"

namespace cisram::gvml {

/** Strongly-typed vector register name (0..23). */
struct Vr
{
    explicit constexpr Vr(unsigned i) : idx(i) {}
    unsigned idx;
    bool operator==(const Vr &o) const { return idx == o.idx; }
};

/** Strongly-typed vector memory register (L1 slot) name (0..47). */
struct Vmr
{
    explicit constexpr Vmr(unsigned i) : idx(i) {}
    unsigned idx;
    bool operator==(const Vmr &o) const { return idx == o.idx; }
};

/**
 * The GVML interface bound to one APU core.
 *
 * Marks are ordinary VRs holding 0/1 per element; comparison ops
 * produce marks and masked ops consume them, mirroring GVML's marker
 * registers.
 */
class Gvml
{
  public:
    explicit Gvml(apu::ApuCore &core) : core_(core) {}

    apu::ApuCore &core() { return core_; }
    size_t length() const { return core_.vr().length(); }

    // ---- element-wise logical ------------------------------------
    void and16(Vr dst, Vr a, Vr b);
    void or16(Vr dst, Vr a, Vr b);
    void xor16(Vr dst, Vr a, Vr b);
    void not16(Vr dst, Vr a);

    // ---- element-wise integer arithmetic -------------------------
    void addU16(Vr dst, Vr a, Vr b);
    void addS16(Vr dst, Vr a, Vr b);
    void subU16(Vr dst, Vr a, Vr b);
    void subS16(Vr dst, Vr a, Vr b);
    void mulU16(Vr dst, Vr a, Vr b);
    void mulS16(Vr dst, Vr a, Vr b);
    void divU16(Vr dst, Vr a, Vr b);
    void divS16(Vr dst, Vr a, Vr b);
    void minU16(Vr dst, Vr a, Vr b);
    void maxU16(Vr dst, Vr a, Vr b);
    void minS16(Vr dst, Vr a, Vr b);
    void maxS16(Vr dst, Vr a, Vr b);

    /** Population count of each 16-bit element. */
    void popcnt16(Vr dst, Vr a);

    /**
     * Arithmetic shift by an immediate: positive `sh` shifts left,
     * negative shifts right (sign-extending), matching GVML's
     * ashift/sr/sl family.
     */
    void ashImm16(Vr dst, Vr a, int sh);

    /** Logical shift right by immediate. */
    void srImm16(Vr dst, Vr a, unsigned sh);

    /** Logical shift left by immediate. */
    void slImm16(Vr dst, Vr a, unsigned sh);

    /** Q0.16 reciprocal: dst = floor(65535 / a), dst = 0xffff if a==0. */
    void recipU16(Vr dst, Vr a);

    // ---- element-wise float16 ------------------------------------
    void addF16(Vr dst, Vr a, Vr b);
    void mulF16(Vr dst, Vr a, Vr b);
    void expF16(Vr dst, Vr a);

    /** GSI-float (1s/6e/9m) element-wise multiply. */
    void mulGf16(Vr dst, Vr a, Vr b);

    /** GSI-float element-wise add. */
    void addGf16(Vr dst, Vr a, Vr b);

    /**
     * Map GSI floats to an order-preserving u16 key (sign-magnitude
     * to biased): negative values invert all bits, non-negative set
     * the sign bit. Composite of element-wise ops; lets the
     * associative max search rank float scores.
     */
    void orderGf16(Vr dst, Vr src, Vr scratch, Vr scratch2);

    // ---- fixed-point trigonometry --------------------------------
    void sinFx(Vr dst, Vr phase);
    void cosFx(Vr dst, Vr phase);

    // ---- masked arithmetic (GVML's _msk family) -------------------
    // dst[i] = mark[i] ? a[i] op b[i] : dst[i]. The bit-slice array
    // executes everywhere and the write masks, so the cost matches
    // the unmasked op plus the mask arm.

    void addU16Msk(Vr dst, Vr a, Vr b, Vr mark);
    void subU16Msk(Vr dst, Vr a, Vr b, Vr mark);
    void mulU16Msk(Vr dst, Vr a, Vr b, Vr mark);
    void minU16Msk(Vr dst, Vr a, Vr b, Vr mark);
    void maxU16Msk(Vr dst, Vr a, Vr b, Vr mark);

    // ---- comparisons (produce 0/1 marks) -------------------------
    void eq16(Vr dst, Vr a, Vr b);
    void gtU16(Vr dst, Vr a, Vr b);
    void ltU16(Vr dst, Vr a, Vr b);
    void geU16(Vr dst, Vr a, Vr b);
    void leU16(Vr dst, Vr a, Vr b);
    void gtS16(Vr dst, Vr a, Vr b);
    void ltS16(Vr dst, Vr a, Vr b);
    void ltGf16(Vr dst, Vr a, Vr b);

    // ---- copies and broadcasts -----------------------------------
    void cpy16(Vr dst, Vr src);
    void cpyImm16(Vr dst, uint16_t imm);

    /** Masked copy: dst[i] = mark[i] ? src[i] : dst[i]. */
    void cpy16Msk(Vr dst, Vr src, Vr mark);

    /** Masked immediate: dst[i] = mark[i] ? imm : dst[i]. */
    void cpyImm16Msk(Vr dst, uint16_t imm, Vr mark);

    /**
     * Negated-mask immediate (GVML's _nmsk family):
     * dst[i] = mark[i] ? dst[i] : imm. Lets a predicate bitmask
     * knock *non-matching* lanes out in one op — the metadata-filter
     * AND in the retrieval path — without first inverting the mark.
     */
    void cpyImm16Nmsk(Vr dst, uint16_t imm, Vr mark);

    /**
     * Compacting copy (gvml_cpy_from_mrk_16_msk, used in Fig. 6):
     * the marked elements of src are written, in order, to the head
     * of dst; the tail is zero-filled. Returns the number of marked
     * elements (also available via countM).
     */
    uint32_t cpyFromMrk16(Vr dst, Vr src, Vr mark);

    /**
     * Subgroup broadcast: within each group of `grp` elements,
     * replicate the subgroup at index `which` (0-based, of the
     * grp/subgrp subgroups) to fill the group (paper Section 4.3,
     * Fig. 10 -- "subgroup copy can also target a portion of the
     * VR"). `subgrp` must divide `grp`, both must divide the VR
     * length.
     */
    void cpySubgrp16Grp(Vr dst, Vr src, size_t grp, size_t subgrp,
                        size_t which = 0);

    /** dst[i] = i % grp (index of the element within its group). */
    void createGrpIndexU16(Vr dst, size_t grp);

    /** dst[i] = i (global element index, low 16 bits). */
    void createIndexU16(Vr dst);

    // ---- intra-VR shifts -----------------------------------------

    /**
     * Shift elements toward the head by `k` (dst[i] = src[i+k]),
     * zero-filling the tail; negative `k` shifts toward the tail.
     * Multiples of 4 take the cheap intra-bank path (Table 4).
     */
    void shiftE(Vr dst, Vr src, int64_t k);

    // ---- reductions ----------------------------------------------

    /**
     * Hierarchical subgroup reduction (add_subgrp_s16): the VR is
     * split into groups of `grp` elements, each split into
     * subgroups of `subgrp` elements. The subgroups of each group
     * are summed element-wise; the result occupies the first
     * `subgrp` elements of each group (remaining elements hold
     * partial sums). Cost follows the staged shift-and-add
     * decomposition the device performs (modeled by Eq. 1).
     */
    void addSubgrpS16(Vr dst, Vr src, size_t grp, size_t subgrp);

    /** Count of non-zero (marked) elements; scalar to the CP. */
    uint32_t countM(Vr mark);

    // ---- fused retrieval primitives ------------------------------

    /**
     * Fused multiply-accumulate against per-query immediates: for
     * each q in [0, n),
     *
     *   cpyImm16(scratch_q, imms[q]);
     *   mulS16(scratch_t, emb, scratch_q);
     *   addS16(accs[q], accs[q], scratch_t);
     *
     * exactly as if the three ops were issued separately — the same
     * cycles are charged under the same op labels in the same order,
     * and the VR file ends in the same state (scratch_q / scratch_t
     * hold the last query's broadcast and products). Functionally,
     * though, each query's three element passes collapse into one
     * read-emb/update-acc pass, and the scratch registers are only
     * materialized once at the end. This is the inner loop of the
     * RAG retrieval kernels (one embedding plane against a batch of
     * query scalars); equivalence is pinned by
     * tests/test_wordparallel.cc.
     *
     * `emb`, `scratch_q`, `scratch_t`, and every `accs[q]` must be
     * distinct registers.
     */
    void macImmS16(Vr emb, Vr scratch_q, Vr scratch_t,
                   const Vr *accs, const uint16_t *imms, size_t n);

    /**
     * GSI-float variant of macImmS16 (cpyImm16 + mulGf16 + addGf16)
     * for a single accumulator.
     */
    void macImmGf16(Vr emb, Vr scratch_q, Vr scratch_t, Vr acc,
                    uint16_t imm);

    /**
     * Global maximum and its first index, found by the associative
     * bit-serial search the APU's GVL/GHL lines enable.
     */
    struct MaxResult
    {
        uint16_t value;
        size_t index;
    };
    MaxResult maxIndexU16(Vr src);

    /** Global minimum and its first index (u16). */
    MaxResult minIndexU16(Vr src);

    // ---- data movement entry points ------------------------------

    /** Fig. 5: direct_dma_l4_to_l1_32k. */
    void
    directDmaL4ToL1_32k(Vmr vmr, uint64_t l4_addr)
    {
        core_.dmaL4ToL1(vmr.idx, l4_addr);
    }

    /** Fig. 5: direct_dma_l1_to_l4_32k. */
    void
    directDmaL1ToL4_32k(uint64_t l4_addr, Vmr vmr)
    {
        core_.dmaL1ToL4(l4_addr, vmr.idx);
    }

    /** Fig. 6: fast_dma_l4_to_l2. */
    void
    fastDmaL4ToL2(uint64_t l4_addr, size_t l2_off, size_t bytes)
    {
        core_.dmaL4ToL2(l4_addr, l2_off, bytes);
    }

    /** Fig. 6: direct_dma_l2_to_l1_32k. */
    void
    directDmaL2ToL1_32k(Vmr vmr)
    {
        core_.dmaL2ToL1(vmr.idx);
    }

    /** Load a VR from a VMR (gvml_load_16). */
    void load16(Vr dst, Vmr src) { core_.loadVr(dst.idx, src.idx); }

    /** Store a VR to a VMR (gvml_store_16). */
    void store16(Vmr dst, Vr src) { core_.storeVr(dst.idx, src.idx); }

    /** Indexed lookup from an L3-resident u16 table. */
    void
    lookup16(Vr dst, Vr idx, size_t l3_off, size_t table_entries)
    {
        core_.lookup(dst.idx, idx.idx, l3_off, table_entries);
    }

    // ---- direct element access (tests / host glue) ---------------
    std::vector<uint16_t> &
    data(Vr v)
    {
        return core_.vr()[v.idx];
    }

    const std::vector<uint16_t> &
    data(Vr v) const
    {
        return core_.vr()[v.idx];
    }

  private:
    /** Apply a binary element-wise op with cost `cycles`. */
    void ewise2(Vr dst, Vr a, Vr b, uint64_t cycles,
                uint16_t (*fn)(uint16_t, uint16_t));

    /** Masked binary op: writes only where mark is non-zero. */
    void ewise2Msk(Vr dst, Vr a, Vr b, Vr mark, uint64_t cycles,
                   uint16_t (*fn)(uint16_t, uint16_t));

    /** Apply a unary element-wise op with cost `cycles`. */
    void ewise1(Vr dst, Vr a, uint64_t cycles,
                uint16_t (*fn)(uint16_t));

    apu::ApuCore &core_;
};

} // namespace cisram::gvml

#endif // CISRAM_GVML_GVML_HH
