/**
 * @file
 * Microcode-level programs on the bit-processor array.
 *
 * GVML itself is implemented from APU microcode instructions that
 * operate on the microarchitectural state of Table 2; programmers can
 * build alternative vector abstractions the same way (Section 2.2.2,
 * citing the RISC-V vector abstraction of Golden et al.). This module
 * provides reference microcode programs used to validate the
 * bit-processor engine against the word-level GVML semantics.
 */

#ifndef CISRAM_GVML_MICROCODE_HH
#define CISRAM_GVML_MICROCODE_HH

#include "apusim/bitproc.hh"

namespace cisram::gvml {

/**
 * Memoized micro-op plans.
 *
 * Every mc* routine's micro-op stream is a pure function of its
 * register arguments (the control flow never depends on data), so
 * the first call records the stream as a flat McProgram and later
 * calls with the same (routine, args) key replay it — a tight
 * decode-free dispatch loop instead of re-walking the emitting C++
 * (the mcMulU16 body alone re-derives ~2.8k micro-ops per call).
 * Replay issues the identical micro-op sequence, so results, RL/GHL
 * /GVL state, and uop counts are bit-identical to direct emission
 * (pinned by tests/test_wordparallel.cc).
 *
 * The cache is process-global and guarded by a mutex; programs are
 * immutable once recorded, so replays from concurrent cores share
 * them safely.
 */
struct McPlanCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
};

/** Snapshot of the plan-cache hit/miss counters. */
McPlanCacheStats mcPlanCacheStats();

/** Drop all cached plans and zero the counters (tests/bench). */
void mcPlanCacheClear();

/**
 * Bit-serial ripple-carry addition: vr_dst = vr_a + vr_b (mod 2^16).
 *
 * Uses three scratch VRs for the propagate, generate, and carry
 * chains. The carry ripples across bit-slices through the RL_S
 * neighbour wire, demonstrating inter-slice communication.
 *
 * @return Number of micro-operations issued.
 */
uint64_t mcAddU16(apu::BitProcArray &bp, unsigned vr_dst, unsigned vr_a,
                  unsigned vr_b, unsigned vr_carry, unsigned vr_prop,
                  unsigned vr_gen);

/**
 * Bit-parallel XOR via the read/write logic: vr_dst = vr_a ^ vr_b.
 * All 16 slices execute the same micro-op in one pass, showing the
 * bit-parallel boolean mode of the array.
 *
 * @return Number of micro-operations issued.
 */
uint64_t mcXor16(apu::BitProcArray &bp, unsigned vr_dst, unsigned vr_a,
                 unsigned vr_b, unsigned vr_tmp);

/**
 * Set vr_dst to the AND of all 16 bit planes of vr_a using the
 * global vertical latch (one bit per column), then broadcast that
 * bit back into every slice of vr_dst.
 *
 * @return Number of micro-operations issued.
 */
uint64_t mcAllBitsSet(apu::BitProcArray &bp, unsigned vr_dst,
                      unsigned vr_a);

/**
 * Bit-serial subtraction: vr_dst = vr_a - vr_b (mod 2^16), computed
 * as a + ~b + 1 with the borrow rippling through RL_S like the
 * adder's carry.
 *
 * @return Number of micro-operations issued.
 */
uint64_t mcSubU16(apu::BitProcArray &bp, unsigned vr_dst,
                  unsigned vr_a, unsigned vr_b, unsigned vr_carry,
                  unsigned vr_prop, unsigned vr_gen,
                  unsigned vr_nb);

/**
 * Bit-serial shift-and-add multiplication:
 * vr_dst = vr_a * vr_b (low 16 bits).
 *
 * For each bit i of the multiplier, a mask VR is built by
 * propagating b's i-th bit plane across all slices (neighbour-wire
 * traversal), the partial product (a << i) & mask is formed by
 * slice-shifting a, and the running sum accumulates through the
 * bit-serial adder. Demonstrates why mul_u16 costs an order of
 * magnitude more than the boolean operations (Table 5).
 *
 * Clobbers five scratch VRs; vr_dst must differ from vr_a / vr_b.
 *
 * @return Number of micro-operations issued.
 */
uint64_t mcMulU16(apu::BitProcArray &bp, unsigned vr_dst,
                  unsigned vr_a, unsigned vr_b, unsigned vr_mask,
                  unsigned vr_partial, unsigned vr_carry,
                  unsigned vr_prop, unsigned vr_gen);

} // namespace cisram::gvml

#endif // CISRAM_GVML_MICROCODE_HH
