#include "gdl/gdl.hh"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"
#include "fault/fault.hh"

namespace cisram::gdl {

namespace {

/** Context serial counter: the per-context fault-draw stream id. */
std::atomic<uint64_t> g_contextSerial{0};

/** Record a fault event into the (shard-aware) metrics registry. */
void
countFault(const char *series, const char *kind)
{
    metrics::Registry::get()
        .counter(series, {{"kind", kind}})
        .inc();
}

/**
 * Trace pid for host-side GDL activity (PCIe transfers, task
 * launches, resets). Its own process track because the timestamps
 * are simulated *microseconds* on the context's host timeline
 * (HostStats::totalSeconds), not device cycles.
 */
uint32_t
gdlTracePid()
{
    static uint32_t pid = trace::Tracer::get().registerProcess(
        "gdl host (simulated us)");
    return pid;
}

} // namespace

void
resetFaultStreams()
{
    g_contextSerial.store(0, std::memory_order_relaxed);
}

GdlContext::GdlContext(apu::ApuDevice &dev)
    : dev_(dev),
      faultStream_(
          g_contextSerial.fetch_add(1, std::memory_order_relaxed)),
      taskSerial_(dev.numCores(), 0),
      wedgedTask_(dev.numCores(), 0)
{
    fault::initFromEnv();
}

GdlContext::~GdlContext()
{
    if (owned_.empty())
        return;
    uint64_t bytes = 0;
    for (const auto &kv : owned_)
        bytes += kv.second;
#ifdef NDEBUG
    cisram_warn("GdlContext torn down with ", owned_.size(),
                " outstanding device allocation(s), ", bytes,
                " bytes leaked");
#else
    cisram_panic("GdlContext torn down with ", owned_.size(),
                 " outstanding device allocation(s), ", bytes,
                 " bytes leaked");
#endif
}

MemHandle
GdlContext::memAllocAligned(uint64_t bytes, uint64_t align)
{
    auto h = tryMemAllocAligned(bytes, align);
    cisram_assert(h.ok(), "memAllocAligned: ",
                  h.status().toString());
    return *h;
}

StatusOr<MemHandle>
GdlContext::tryMemAllocAligned(uint64_t bytes, uint64_t align)
{
    uint64_t serial = ++allocSerial_;
    if (const fault::FaultPlan *fp = fault::plan()) {
        if (fp->appliesTo(fault::Kind::DevOom, deviceHint_) &&
            fp->drawDevOom(faultStream_, serial)) {
            ++stats_.allocFailures;
            countFault("fault.injected", "dev_oom");
            return Status::resourceExhausted(
                detail::concat("injected device OOM on allocation #",
                               serial, " (", bytes, " bytes)"));
        }
    }
    auto base = dev_.allocator().tryAlloc(bytes, align);
    if (!base) {
        ++stats_.allocFailures;
        return Status::resourceExhausted(
            detail::concat("device DRAM exhausted: ", bytes,
                           " bytes requested, ",
                           dev_.allocator().used(), " of ",
                           dev_.l4().capacity(), " in use"));
    }
    owned_.emplace(*base, bytes);
    return MemHandle{*base};
}

void
GdlContext::memFree(MemHandle h)
{
    auto it = owned_.find(h.addr);
    if (it == owned_.end()) {
        // Name everything quarantine debugging needs: the session's
        // core, its live footprint, and — when the address points
        // *into* an owned allocation — the owning block and its
        // size, the classic freed-an-offset-handle bug.
        uint64_t held = 0;
        for (const auto &kv : owned_)
            held += kv.second;
        for (const auto &kv : owned_) {
            if (h.addr > kv.first && h.addr < kv.first + kv.second) {
                cisram_panic(
                    "GdlContext::memFree: device address ", h.addr,
                    " is not owned by this context (it points inside "
                    "the ", kv.second, "-byte allocation at ",
                    kv.first, " — freed with an offset handle?); "
                    "session core ", coreHint_, ", ", owned_.size(),
                    " outstanding allocation(s), ", held,
                    " bytes held");
            }
        }
        cisram_panic("GdlContext::memFree: device address ", h.addr,
                     " is not owned by this context (double-free, "
                     "or a handle from another context); session "
                     "core ", coreHint_, ", ", owned_.size(),
                     " outstanding allocation(s), ", held,
                     " bytes held");
    }
    owned_.erase(it);
    dev_.allocator().free(h.addr);
}

void
GdlContext::memCpyToDev(MemHandle dst, const void *src,
                        uint64_t bytes)
{
    Status st = tryMemCpyToDev(dst, src, bytes);
    cisram_assert(st.ok(), "memCpyToDev: ", st.toString());
}

void
GdlContext::memCpyFromDev(void *dst, MemHandle src, uint64_t bytes)
{
    Status st = tryMemCpyFromDev(dst, src, bytes);
    cisram_assert(st.ok(), "memCpyFromDev: ", st.toString());
}

Status
GdlContext::tryMemCpyToDev(MemHandle dst, const void *src,
                           uint64_t bytes)
{
    cisram_assert(src != nullptr || bytes == 0);
    bool traced = trace::active();
    double t0 = traced ? stats_.totalSeconds() : 0.0;
    const fault::FaultPlan *fp = fault::plan();
    if (wedgedLink_ ||
        (fp && fp->clause(fault::Kind::PcieCorrupt).enabled)) {
        Status st =
            pcieDeliverChecked(true, dst.addr, src, nullptr, bytes);
        if (!st.ok())
            return st;
    } else {
        dev_.l4().write(dst.addr, src, bytes);
        stats_.pcieSeconds += pcieLatency +
            static_cast<double>(bytes) / pcieBytesPerSec;
    }
    stats_.bytesToDevice += bytes;
    if (traced)
        trace::Tracer::get().complete(
            gdlTracePid(), traceTid(), "pcie.to_dev", "gdl.pcie",
            t0 * 1e6, (stats_.totalSeconds() - t0) * 1e6,
            static_cast<double>(bytes));
    return Status::okStatus();
}

Status
GdlContext::tryMemCpyFromDev(void *dst, MemHandle src,
                             uint64_t bytes)
{
    cisram_assert(dst != nullptr || bytes == 0);
    bool traced = trace::active();
    double t0 = traced ? stats_.totalSeconds() : 0.0;
    const fault::FaultPlan *fp = fault::plan();
    if (wedgedLink_ ||
        (fp && fp->clause(fault::Kind::PcieCorrupt).enabled)) {
        Status st =
            pcieDeliverChecked(false, src.addr, nullptr, dst, bytes);
        if (!st.ok())
            return st;
    } else {
        dev_.l4().read(src.addr, dst, bytes);
        stats_.pcieSeconds += pcieLatency +
            static_cast<double>(bytes) / pcieBytesPerSec;
    }
    stats_.bytesFromDevice += bytes;
    if (traced)
        trace::Tracer::get().complete(
            gdlTracePid(), traceTid(), "pcie.from_dev", "gdl.pcie",
            t0 * 1e6, (stats_.totalSeconds() - t0) * 1e6,
            static_cast<double>(bytes));
    return Status::okStatus();
}

Status
GdlContext::pcieDeliverChecked(bool to_dev, uint64_t dev_addr,
                               const void *src, void *dst,
                               uint64_t bytes)
{
    const fault::FaultPlan *fp = fault::plan();
    uint64_t xfer = xferSerial_++;
    double lane_seconds = pcieLatency +
        static_cast<double>(bytes) / pcieBytesPerSec;

    // A from-device read has to land somewhere before the CRC is
    // checked; stage it so a corrupted attempt never reaches the
    // caller's buffer.
    std::vector<uint8_t> staged;
    if (!to_dev)
        staged.resize(bytes);

    for (unsigned attempt = 0; attempt < pcieMaxAttempts;
         ++attempt) {
        if (attempt > 0) {
            // Bounded exponential backoff before the resend.
            stats_.pcieSeconds += pcieLatency *
                static_cast<double>(1u << std::min(attempt - 1, 6u));
        }
        stats_.pcieSeconds += lane_seconds;

        const uint8_t *payload;
        if (to_dev) {
            payload = static_cast<const uint8_t *>(src);
        } else {
            dev_.l4().read(dev_addr, staged.data(), bytes);
            payload = staged.data();
        }
        uint32_t sent_crc = fault::crc32(payload, bytes);

        bool corrupt = fp &&
            fp->appliesTo(fault::Kind::PcieCorrupt, deviceHint_) &&
            fp->drawPcieCorrupt(faultStream_, xfer, attempt);
        if (corrupt && fp->clause(fault::Kind::PcieCorrupt).sticky) {
            // Persistent link fault: from this draw on, every
            // transfer attempt corrupts until the session resets the
            // device (the latch models a wedged SerDes/retimer, not
            // a transient TLP hit).
            wedgedLink_ = true;
        }
        corrupt = corrupt || wedgedLink_;
        if (corrupt && bytes > 0) {
            // Flip one in-flight bit and let the link CRC catch it,
            // exactly as the receiver would.
            std::vector<uint8_t> wire(payload, payload + bytes);
            wire[xfer % bytes] ^= 0x40;
            uint32_t recv_crc = fault::crc32(wire.data(), bytes);
            cisram_assert(recv_crc != sent_crc,
                          "CRC-32 missed a single-bit error");
            countFault("fault.injected", "pcie_corrupt");
            countFault("fault.detected", "pcie_corrupt");
            metrics::Registry::get()
                .counter("fault.retries", {{"site", "pcie"}})
                .inc();
            ++stats_.pcieRetries;
            if (trace::active()) {
                trace::Tracer::get().instant(
                    dev_.tracePid(), 0, "fault.pcie_corrupt",
                    static_cast<double>(xfer));
            }
            continue;
        }

        // Clean delivery: commit the payload.
        if (to_dev)
            dev_.l4().write(dev_addr, src, bytes);
        else
            std::memcpy(dst, staged.data(), bytes);
        return Status::okStatus();
    }
    ++stats_.pcieErrors;
    return Status::dataCorruption(
        detail::concat("PCIe transfer #", xfer, " (", bytes,
                       " bytes ", to_dev ? "to" : "from",
                       " device) corrupted on all ",
                       pcieMaxAttempts, " attempts"));
}

int
GdlContext::runTask(const std::function<int(apu::ApuCore &)> &task)
{
    return runTaskOn(0, task);
}

int
GdlContext::runTaskOn(unsigned core_idx,
                      const std::function<int(apu::ApuCore &)> &task)
{
    apu::ApuCore &core = dev_.core(core_idx);
    double before = core.stats().cycles();
    int rc = task(core);
    double cycles = core.stats().cycles() - before;
    stats_.deviceSeconds += dev_.cyclesToSeconds(cycles);
    stats_.invokeSeconds += taskLaunchSeconds;
    ++stats_.tasksRun;
    if (rc != 0) {
        // A nonzero device status is never silent: it is logged,
        // counted, and returned for the caller to act on.
        ++stats_.tasksFailed;
        cisram_warn("device task on core ", core_idx,
                    " returned nonzero status ", rc);
    }
    return rc;
}

Status
GdlContext::runTaskTimeout(
    double deadline_seconds,
    const std::function<int(apu::ApuCore &)> &task)
{
    return runTaskTimeoutOn(0, deadline_seconds, task);
}

Status
GdlContext::runTaskTimeoutOn(
    unsigned core_idx, double deadline_seconds,
    const std::function<int(apu::ApuCore &)> &task)
{
    cisram_assert(deadline_seconds > 0.0,
                  "runTaskTimeout requires a positive deadline");
    apu::ApuCore &core = dev_.core(core_idx);
    uint64_t invocation = ++taskSerial_.at(core_idx);
    bool traced = trace::active();
    double launch = traced ? stats_.totalSeconds() : 0.0;

    if (wedgedTask_.at(core_idx)) {
        // A sticky task_hang already wedged this core: every launch
        // hangs until resetCore clears the latch. No draw — the
        // wedge is device state, not a new fault event.
        stats_.invokeSeconds += taskLaunchSeconds + deadline_seconds;
        ++stats_.tasksRun;
        ++stats_.tasksTimedOut;
        countFault("fault.detected", "task_hang");
        if (traced) {
            trace::Tracer::get().instant(
                dev_.tracePid(), core_idx, "fault.task_hang",
                core.stats().cycles());
            trace::Tracer::get().complete(
                gdlTracePid(), core_idx, "task.hang", "gdl.task",
                launch * 1e6,
                (stats_.totalSeconds() - launch) * 1e6);
        }
        return Status::deadlineExceeded(detail::concat(
            "task invocation #", invocation, " on wedged core ",
            core_idx, " hung past its ", deadline_seconds * 1e3,
            " ms deadline (core needs a reset)"));
    }

    if (const fault::FaultPlan *fp = fault::plan()) {
        if (fp->appliesTo(fault::Kind::TaskHang, deviceHint_) &&
            fp->drawTaskHang(core_idx, invocation)) {
            if (fp->clause(fault::Kind::TaskHang).sticky) {
                // Persistent fault: the core's task engine is now
                // wedged — every later launch hangs until the host
                // escalates to resetCore.
                wedgedTask_.at(core_idx) = 1;
            }
            // The device never retires the task: the host polls
            // until the timeout expires, then reports the loss.
            stats_.invokeSeconds +=
                taskLaunchSeconds + deadline_seconds;
            ++stats_.tasksRun;
            ++stats_.tasksTimedOut;
            countFault("fault.injected", "task_hang");
            countFault("fault.detected", "task_hang");
            if (traced) {
                trace::Tracer::get().instant(
                    dev_.tracePid(), core_idx, "fault.task_hang",
                    core.stats().cycles());
                trace::Tracer::get().complete(
                    gdlTracePid(), core_idx, "task.hang",
                    "gdl.task", launch * 1e6,
                    (stats_.totalSeconds() - launch) * 1e6);
            }
            return Status::deadlineExceeded(detail::concat(
                "task invocation #", invocation, " on core ",
                core_idx, " hung past its ",
                deadline_seconds * 1e3, " ms deadline"));
        }
    }

    double before = core.stats().cycles();
    int rc = task(core);
    double after = core.stats().cycles();
    // Kernels may reset the core ledger mid-task; fall back to the
    // absolute cycle count in that case.
    double cycles = after >= before ? after - before : after;
    double task_seconds = dev_.cyclesToSeconds(cycles);
    stats_.deviceSeconds += task_seconds;
    stats_.invokeSeconds += taskLaunchSeconds;
    ++stats_.tasksRun;
    if (traced)
        trace::Tracer::get().complete(
            gdlTracePid(), core_idx, "task.invoke", "gdl.task",
            launch * 1e6, (stats_.totalSeconds() - launch) * 1e6);

    if (task_seconds > deadline_seconds) {
        ++stats_.tasksTimedOut;
        return Status::deadlineExceeded(detail::concat(
            "task invocation #", invocation, " on core ", core_idx,
            " took ", task_seconds * 1e3, " ms against a ",
            deadline_seconds * 1e3, " ms deadline"));
    }
    if (rc != 0) {
        ++stats_.tasksFailed;
        cisram_warn("device task on core ", core_idx,
                    " returned nonzero status ", rc);
        return Status::deviceFault(detail::concat(
            "task invocation #", invocation, " on core ", core_idx,
            " returned status ", rc));
    }
    return Status::okStatus();
}

ResetOutcome
GdlContext::releaseAndRestage(double reinit_seconds,
                              uint64_t restage_bytes)
{
    ResetOutcome out;

    // The session footprint does not survive a reset: release every
    // allocation back through the DramAllocator. The allocator's
    // size-keyed free lists hand identical addresses back to the
    // re-allocations that follow, which is what keeps a replayed
    // batch bit-identical to the un-faulted run.
    for (const auto &kv : owned_) {
        out.freedBytes += kv.second;
        dev_.allocator().free(kv.first);
    }
    owned_.clear();

    out.seconds = reinit_seconds;
    stats_.resetSeconds += reinit_seconds;

    if (restage_bytes > 0) {
        // Re-stage the corpus shard over PCIe at the modeled link
        // rate — the dominant reset cost at paper-scale corpora.
        double stage_seconds = pcieLatency +
            static_cast<double>(restage_bytes) / pcieBytesPerSec;
        stats_.pcieSeconds += stage_seconds;
        stats_.bytesToDevice += restage_bytes;
        out.seconds += stage_seconds;
        out.restagedBytes = restage_bytes;
        metrics::Registry::get()
            .counter("recovery.restaged_bytes")
            .inc(static_cast<double>(restage_bytes));
    }
    return out;
}

ResetOutcome
GdlContext::resetCore(unsigned core_idx, uint64_t restage_bytes)
{
    cisram_assert(core_idx < wedgedTask_.size(),
                  "resetCore: core ", core_idx, " out of range");
    wedgedTask_.at(core_idx) = 0;
    wedgedLink_ = false;
    ++stats_.coreResets;
    metrics::Registry::get().counter("recovery.core_resets").inc();
    bool traced = trace::active();
    double t0 = traced ? stats_.totalSeconds() : 0.0;
    if (traced) {
        trace::Tracer::get().instant(
            dev_.tracePid(), core_idx, "recovery.core_reset",
            dev_.core(core_idx).stats().cycles());
    }
    ResetOutcome out = releaseAndRestage(coreResetSeconds,
                                         restage_bytes);
    if (traced)
        trace::Tracer::get().complete(
            gdlTracePid(), core_idx, "core.reset", "gdl.reset",
            t0 * 1e6, (stats_.totalSeconds() - t0) * 1e6,
            static_cast<double>(out.restagedBytes));
    return out;
}

ResetOutcome
GdlContext::resetDevice(uint64_t restage_bytes)
{
    std::fill(wedgedTask_.begin(), wedgedTask_.end(), 0);
    wedgedLink_ = false;
    ++stats_.deviceResets;
    metrics::Registry::get().counter("recovery.device_resets").inc();
    if (trace::active()) {
        trace::Tracer::get().instant(
            dev_.tracePid(), 0, "recovery.device_reset", 0.0);
    }
    return releaseAndRestage(deviceResetSeconds, restage_bytes);
}

} // namespace cisram::gdl
