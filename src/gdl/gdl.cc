#include "gdl/gdl.hh"

#include "common/logging.hh"

namespace cisram::gdl {

GdlContext::~GdlContext()
{
    if (owned_.empty())
        return;
    uint64_t bytes = 0;
    for (const auto &kv : owned_)
        bytes += kv.second;
#ifdef NDEBUG
    cisram_warn("GdlContext torn down with ", owned_.size(),
                " outstanding device allocation(s), ", bytes,
                " bytes leaked");
#else
    cisram_panic("GdlContext torn down with ", owned_.size(),
                 " outstanding device allocation(s), ", bytes,
                 " bytes leaked");
#endif
}

MemHandle
GdlContext::memAllocAligned(uint64_t bytes, uint64_t align)
{
    MemHandle h{dev_.allocator().alloc(bytes, align)};
    owned_.emplace(h.addr, bytes);
    return h;
}

void
GdlContext::memFree(MemHandle h)
{
    auto it = owned_.find(h.addr);
    cisram_assert(it != owned_.end(),
                  "memFree of a handle not allocated by this "
                  "context: ", h.addr);
    owned_.erase(it);
    dev_.allocator().free(h.addr);
}

void
GdlContext::memCpyToDev(MemHandle dst, const void *src,
                        uint64_t bytes)
{
    cisram_assert(src != nullptr || bytes == 0);
    dev_.l4().write(dst.addr, src, bytes);
    stats_.pcieSeconds +=
        pcieLatency + static_cast<double>(bytes) / pcieBytesPerSec;
    stats_.bytesToDevice += bytes;
}

void
GdlContext::memCpyFromDev(void *dst, MemHandle src, uint64_t bytes)
{
    cisram_assert(dst != nullptr || bytes == 0);
    dev_.l4().read(src.addr, dst, bytes);
    stats_.pcieSeconds +=
        pcieLatency + static_cast<double>(bytes) / pcieBytesPerSec;
    stats_.bytesFromDevice += bytes;
}

int
GdlContext::runTask(const std::function<int(apu::ApuCore &)> &task)
{
    return runTaskOn(0, task);
}

int
GdlContext::runTaskOn(unsigned core_idx,
                      const std::function<int(apu::ApuCore &)> &task)
{
    apu::ApuCore &core = dev_.core(core_idx);
    double before = core.stats().cycles();
    int rc = task(core);
    double cycles = core.stats().cycles() - before;
    stats_.deviceSeconds += dev_.cyclesToSeconds(cycles);
    stats_.invokeSeconds += taskLaunchSeconds;
    ++stats_.tasksRun;
    return rc;
}

} // namespace cisram::gdl
