#include "gdl/gdl.hh"

#include "common/logging.hh"

namespace cisram::gdl {

MemHandle
GdlContext::memAllocAligned(uint64_t bytes, uint64_t align)
{
    return MemHandle{dev_.allocator().alloc(bytes, align)};
}

void
GdlContext::memCpyToDev(MemHandle dst, const void *src,
                        uint64_t bytes)
{
    cisram_assert(src != nullptr || bytes == 0);
    dev_.l4().write(dst.addr, src, bytes);
    stats_.pcieSeconds +=
        pcieLatency + static_cast<double>(bytes) / pcieBytesPerSec;
    stats_.bytesToDevice += bytes;
}

void
GdlContext::memCpyFromDev(void *dst, MemHandle src, uint64_t bytes)
{
    cisram_assert(dst != nullptr || bytes == 0);
    dev_.l4().read(src.addr, dst, bytes);
    stats_.pcieSeconds +=
        pcieLatency + static_cast<double>(bytes) / pcieBytesPerSec;
    stats_.bytesFromDevice += bytes;
}

int
GdlContext::runTask(const std::function<int(apu::ApuCore &)> &task)
{
    apu::ApuCore &core = dev_.core(0);
    double before = core.stats().cycles();
    int rc = task(core);
    double cycles = core.stats().cycles() - before;
    stats_.deviceSeconds += dev_.cyclesToSeconds(cycles);
    stats_.invokeSeconds += taskLaunchSeconds;
    ++stats_.tasksRun;
    return rc;
}

} // namespace cisram::gdl
