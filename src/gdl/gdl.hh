/**
 * @file
 * GDL: the host-side device library (paper Section 2.2.1).
 *
 * The paper's host programs manage kernel invocation, device-DRAM
 * allocation, and host<->device transfers through GSI's GDL library
 * (Fig. 5a: gdl_mem_alloc_aligned, gdl_mem_cpy_to_dev,
 * gdl_run_task_timeout). This module reproduces that API surface on
 * the simulator, including PCIe transfer timing and task-invocation
 * overhead, so host programs read like the paper's.
 *
 * Error-handling contract (DESIGN.md "Fault model"): API misuse
 * (freeing a foreign handle, OOB addresses) dies loudly via
 * cisram_assert, while *environmental* faults — device task hangs
 * bounded by runTaskTimeout, PCIe corruption caught by the
 * CRC-checked transfer retry loop, device-memory exhaustion — are
 * reported as cisram::Status through the try/timeout variants so a
 * serving loop can retry or degrade. The unchecked void/returning
 * variants remain for programs that treat any device failure as
 * fatal. Faults only occur when a cisram::fault plan is armed; an
 * unarmed run pays one relaxed atomic load per call.
 *
 * Allocation discipline: every memAllocAligned must be balanced by a
 * memFree on the same context (or wrapped in a DeviceBuffer, which
 * does it for you). A context that is torn down with outstanding
 * allocations panics in debug builds and warns in release builds —
 * the real library leaks device DRAM silently in this case, which is
 * exactly the serving-loop bug this check exists to catch.
 */

#ifndef CISRAM_GDL_GDL_HH
#define CISRAM_GDL_GDL_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "apusim/apu.hh"
#include "common/status.hh"

namespace cisram::gdl {

/**
 * Reset the process-global fault-draw stream serial (tests only).
 *
 * Each GdlContext takes the next serial as its fault-draw stream id,
 * so an armed scenario replayed *within one process* would otherwise
 * see different draws the second time. Tests that compare two
 * replays (e.g. serial vs threaded serving) call this before each
 * run so both assign identical streams.
 */
void resetFaultStreams();

/** Opaque device-memory handle (a device address, as in GDL). */
struct MemHandle
{
    uint64_t addr = 0;

    MemHandle
    offset(uint64_t bytes) const
    {
        return MemHandle{addr + bytes};
    }
};

/** Host-observed timing of GDL activity. */
struct HostStats
{
    double pcieSeconds = 0;   ///< host<->device copy time
    double invokeSeconds = 0; ///< task launch/retire overhead
    double deviceSeconds = 0; ///< device cycles during tasks
    uint64_t bytesToDevice = 0;
    uint64_t bytesFromDevice = 0;
    unsigned tasksRun = 0;

    // Failure accounting (all zero unless a fault plan is armed or a
    // device task misbehaves).
    unsigned tasksFailed = 0;   ///< nonzero task return values
    unsigned tasksTimedOut = 0; ///< runTaskTimeout deadline misses
    unsigned pcieRetries = 0;   ///< transfers resent after CRC error
    unsigned pcieErrors = 0;    ///< transfers abandoned after retry
    unsigned allocFailures = 0; ///< device-OOM allocation failures

    // Recovery accounting (resetCore / resetDevice).
    double resetSeconds = 0;    ///< device re-init time (excl. PCIe)
    unsigned coreResets = 0;    ///< resetCore calls
    unsigned deviceResets = 0;  ///< resetDevice calls

    double
    totalSeconds() const
    {
        return pcieSeconds + invokeSeconds + deviceSeconds +
            resetSeconds;
    }
};

/** What one resetCore / resetDevice call cost and released. */
struct ResetOutcome
{
    /** Total simulated seconds: re-init plus shard re-staging. */
    double seconds = 0;

    /** Device bytes this session held and lost to the reset. */
    uint64_t freedBytes = 0;

    /** Corpus-shard bytes re-staged over PCIe. */
    uint64_t restagedBytes = 0;
};

/**
 * One host "calling context" bound to a device, mirroring the GDL
 * session the paper's host code initializes.
 *
 * A context is single-threaded (its stats are unsynchronized);
 * concurrent host threads should each hold their own context, as
 * concurrent processes each hold a GDL session on the real device.
 */
class GdlContext
{
  public:
    explicit GdlContext(apu::ApuDevice &dev);

    /** Checks the allocation ledger; see file comment. */
    ~GdlContext();

    GdlContext(const GdlContext &) = delete;
    GdlContext &operator=(const GdlContext &) = delete;

    apu::ApuDevice &device() { return dev_; }

    /** gdl_mem_alloc_aligned: allocate device DRAM. */
    MemHandle memAllocAligned(uint64_t bytes, uint64_t align = 512);

    /**
     * memAllocAligned that reports device-memory exhaustion (real or
     * injected) as ResourceExhausted instead of dying, so serving
     * loops can shed load instead of crashing.
     */
    StatusOr<MemHandle> tryMemAllocAligned(uint64_t bytes,
                                           uint64_t align = 512);

    /** gdl_mem_free: release device DRAM obtained from this context. */
    void memFree(MemHandle h);

    /** Allocations obtained from this context and not yet freed. */
    size_t outstandingAllocs() const { return owned_.size(); }

    /**
     * Tag this session with the device core it serves so diagnostics
     * (memFree panics, reset traces) can name the owning core. A
     * serving shard sets this to its core index; -1 means untagged.
     */
    void setCoreHint(int core) { coreHint_ = core; }
    int coreHint() const { return coreHint_; }

    /**
     * Tag this session with the fleet device it drives so `device=N`
     * fault clauses scope correctly. Standalone single-device code
     * keeps the default index 0 (an unscoped clause behaves
     * identically either way).
     */
    void setDeviceHint(unsigned device) { deviceHint_ = device; }
    unsigned deviceHint() const { return deviceHint_; }

    /** Trace tid for this session's host-side spans. */
    uint32_t traceTid() const
    {
        return coreHint_ >= 0 ? static_cast<uint32_t>(coreHint_)
                              : 0u;
    }

    /** gdl_mem_cpy_to_dev: host -> device DRAM over PCIe. */
    void memCpyToDev(MemHandle dst, const void *src, uint64_t bytes);

    /** gdl_mem_cpy_from_dev: device DRAM -> host over PCIe. */
    void memCpyFromDev(void *dst, MemHandle src, uint64_t bytes);

    /**
     * CRC-checked memCpyToDev: each transfer attempt is verified
     * with a link-layer CRC-32; a corrupted attempt (injected
     * pcie_corrupt fault) is detected, charged, and resent with
     * bounded exponential backoff, up to pcieMaxAttempts. Returns
     * DataCorruption once retries are exhausted; device memory is
     * only written by a clean attempt.
     */
    Status tryMemCpyToDev(MemHandle dst, const void *src,
                          uint64_t bytes);

    /** CRC-checked memCpyFromDev; see tryMemCpyToDev. */
    Status tryMemCpyFromDev(void *dst, MemHandle src,
                            uint64_t bytes);

    /**
     * gdl_run_task_timeout: invoke a device program on core 0. The
     * task body receives the core; its charged cycles are folded
     * into the host stats along with the launch overhead.
     *
     * @return The task's return value (0 for success by GDL
     *         convention).
     */
    int runTask(const std::function<int(apu::ApuCore &)> &task);

    /** runTask pinned to a specific core (multi-core serving). */
    int runTaskOn(unsigned core_idx,
                  const std::function<int(apu::ApuCore &)> &task);

    /**
     * gdl_run_task_timeout: invoke a device program with a bound on
     * how long the host will wait (simulated seconds). Outcomes:
     *
     *  - OK: the task retired within the deadline with status 0.
     *  - DeadlineExceeded: the task hung (injected task_hang fault —
     *    the host waits out the full deadline) or its simulated
     *    runtime exceeded the deadline.
     *  - DeviceFault: the task retired with a nonzero status.
     *
     * The device core is left in whatever state the task reached;
     * a caller that retries is responsible for re-staging inputs.
     */
    Status runTaskTimeout(double deadline_seconds,
                          const std::function<int(apu::ApuCore &)> &task);

    /** runTaskTimeout pinned to a specific core. */
    Status runTaskTimeoutOn(unsigned core_idx, double deadline_seconds,
                            const std::function<int(apu::ApuCore &)> &task);

    /**
     * Reset one device core — the escalation step above retry when a
     * fault is *persistent* (a sticky task_hang wedge, a sticky PCIe
     * link wedge). Models what a real reset costs the session:
     *
     *  - Every allocation this context still holds is lost and
     *    released back through the DramAllocator (the session's
     *    L1–L4 footprint does not survive a reset); the caller
     *    re-allocates and re-stages what it needs.
     *  - The core's sticky fault latches (wedged task engine, wedged
     *    link) are cleared — that is what a reset is *for*.
     *  - The host pays `coreResetSeconds` of re-init plus the PCIe
     *    time to re-stage `restage_bytes` of corpus shard (charged
     *    to pcieSeconds at the modeled link rate, like any staging
     *    transfer).
     *
     * Deterministic: no draws, and the fault-draw serials keep
     * counting across the reset, so a reset never replays old draws.
     */
    ResetOutcome resetCore(unsigned core_idx,
                           uint64_t restage_bytes = 0);

    /**
     * Full device reset: clears every core's latches and this
     * session's footprint, at `deviceResetSeconds` re-init cost plus
     * the shard re-stage. The bigger hammer behind resetCore.
     */
    ResetOutcome resetDevice(uint64_t restage_bytes = 0);

    /** True if a sticky task_hang has wedged this core (unreset). */
    bool
    coreWedged(unsigned core_idx) const
    {
        return wedgedTask_.at(core_idx) != 0;
    }

    /** True if a sticky pcie_corrupt has wedged the session's link. */
    bool linkWedged() const { return wedgedLink_; }

    const HostStats &stats() const { return stats_; }
    void resetStats() { stats_ = HostStats{}; }

    // Transfer/launch model parameters (PCIe 3.0 x16 effective).
    double pcieBytesPerSec = 12.0e9;
    double pcieLatency = 5.0e-6;
    double taskLaunchSeconds = 30.0e-6;

    /** Transfer attempts before tryMemCpy* reports DataCorruption. */
    unsigned pcieMaxAttempts = 4;

    // Reset model parameters: firmware re-init of one core vs the
    // whole device (the dominant reset cost is usually the PCIe
    // re-stage of the corpus shard, charged separately).
    double coreResetSeconds = 2.0e-3;
    double deviceResetSeconds = 10.0e-3;

  private:
    /** One CRC-checked PCIe delivery with retry (fault plan armed). */
    Status pcieDeliverChecked(bool to_dev, uint64_t dev_addr,
                              const void *src, void *dst,
                              uint64_t bytes);

    apu::ApuDevice &dev_;
    HostStats stats_;
    std::unordered_map<uint64_t, uint64_t> owned_; ///< addr -> bytes
    int coreHint_ = -1; ///< serving core this session is bound to
    unsigned deviceHint_ = 0; ///< fleet device (fault clause scope)

    // Deterministic fault-draw coordinates: a per-context stream id
    // plus per-context serials, so injected faults are independent
    // of host thread interleaving (each context is single-threaded).
    uint64_t faultStream_;
    uint64_t xferSerial_ = 0;
    uint64_t allocSerial_ = 0;
    std::vector<uint64_t> taskSerial_; ///< per-core invocations

    // Persistent-fault latches (sticky clauses): a wedged core hangs
    // every task, a wedged link corrupts every transfer, until
    // resetCore/resetDevice clears the latch. Draws stay pure — the
    // latch is device-model state, set the moment a sticky draw
    // fires, and deterministic like everything else on this
    // (single-threaded) session.
    std::vector<uint8_t> wedgedTask_; ///< per-core task-engine wedge
    bool wedgedLink_ = false;         ///< session PCIe link wedge

    /** Shared teardown of the session footprint for the resets. */
    ResetOutcome releaseAndRestage(double reinit_seconds,
                                   uint64_t restage_bytes);
};

/**
 * RAII device allocation: memAllocAligned in the constructor,
 * memFree in the destructor. The context must outlive the buffer.
 */
class DeviceBuffer
{
  public:
    DeviceBuffer(GdlContext &ctx, uint64_t bytes, uint64_t align = 512)
        : ctx_(ctx), handle_(ctx.memAllocAligned(bytes, align)),
          bytes_(bytes)
    {}

    ~DeviceBuffer() { ctx_.memFree(handle_); }

    DeviceBuffer(const DeviceBuffer &) = delete;
    DeviceBuffer &operator=(const DeviceBuffer &) = delete;

    MemHandle handle() const { return handle_; }
    uint64_t addr() const { return handle_.addr; }
    uint64_t size() const { return bytes_; }

    void
    toDev(const void *src, uint64_t bytes)
    {
        ctx_.memCpyToDev(handle_, src, bytes);
    }

    void
    fromDev(void *dst, uint64_t bytes) const
    {
        ctx_.memCpyFromDev(dst, handle_, bytes);
    }

  private:
    GdlContext &ctx_;
    MemHandle handle_;
    uint64_t bytes_;
};

} // namespace cisram::gdl

#endif // CISRAM_GDL_GDL_HH
