/**
 * @file
 * GDL: the host-side device library (paper Section 2.2.1).
 *
 * The paper's host programs manage kernel invocation, device-DRAM
 * allocation, and host<->device transfers through GSI's GDL library
 * (Fig. 5a: gdl_mem_alloc_aligned, gdl_mem_cpy_to_dev,
 * gdl_run_task_timeout). This module reproduces that API surface on
 * the simulator, including PCIe transfer timing and task-invocation
 * overhead, so host programs read like the paper's.
 */

#ifndef CISRAM_GDL_GDL_HH
#define CISRAM_GDL_GDL_HH

#include <cstdint>
#include <functional>

#include "apusim/apu.hh"

namespace cisram::gdl {

/** Opaque device-memory handle (a device address, as in GDL). */
struct MemHandle
{
    uint64_t addr = 0;

    MemHandle
    offset(uint64_t bytes) const
    {
        return MemHandle{addr + bytes};
    }
};

/** Host-observed timing of GDL activity. */
struct HostStats
{
    double pcieSeconds = 0;   ///< host<->device copy time
    double invokeSeconds = 0; ///< task launch/retire overhead
    double deviceSeconds = 0; ///< device cycles during tasks
    uint64_t bytesToDevice = 0;
    uint64_t bytesFromDevice = 0;
    unsigned tasksRun = 0;

    double
    totalSeconds() const
    {
        return pcieSeconds + invokeSeconds + deviceSeconds;
    }
};

/**
 * One host "calling context" bound to a device, mirroring the GDL
 * session the paper's host code initializes.
 */
class GdlContext
{
  public:
    explicit GdlContext(apu::ApuDevice &dev) : dev_(dev) {}

    apu::ApuDevice &device() { return dev_; }

    /** gdl_mem_alloc_aligned: allocate device DRAM. */
    MemHandle memAllocAligned(uint64_t bytes, uint64_t align = 512);

    /** gdl_mem_cpy_to_dev: host -> device DRAM over PCIe. */
    void memCpyToDev(MemHandle dst, const void *src, uint64_t bytes);

    /** gdl_mem_cpy_from_dev: device DRAM -> host over PCIe. */
    void memCpyFromDev(void *dst, MemHandle src, uint64_t bytes);

    /**
     * gdl_run_task_timeout: invoke a device program on core 0. The
     * task body receives the core; its charged cycles are folded
     * into the host stats along with the launch overhead.
     *
     * @return The task's return value (0 for success by GDL
     *         convention).
     */
    int runTask(const std::function<int(apu::ApuCore &)> &task);

    const HostStats &stats() const { return stats_; }
    void resetStats() { stats_ = HostStats{}; }

    // Transfer/launch model parameters (PCIe 3.0 x16 effective).
    double pcieBytesPerSec = 12.0e9;
    double pcieLatency = 5.0e-6;
    double taskLaunchSeconds = 30.0e-6;

  private:
    apu::ApuDevice &dev_;
    HostStats stats_;
};

} // namespace cisram::gdl

#endif // CISRAM_GDL_GDL_HH
