/**
 * @file
 * Umbrella header: the public API of the cisram library.
 *
 * Downstream users can include this single header and link the
 * aggregate `cisram` CMake target. Individual module headers remain
 * available for finer-grained inclusion.
 */

#ifndef CISRAM_CISRAM_HH
#define CISRAM_CISRAM_HH

// Device simulator and programming model.
#include "apusim/apu.hh"
#include "apusim/multicore.hh"
#include "gdl/gdl.hh"
#include "gvml/gvml.hh"
#include "gvml/microcode.hh"
#include "rvv/rvv.hh"

// Off-chip memory and energy.
#include "dramsim/dram_sim.hh"
#include "energy/energy.hh"

// Analytical framework.
#include "model/cost_table.hh"
#include "model/dse.hh"
#include "model/latency_estimator.hh"
#include "model/roofline.hh"
#include "model/sg_model.hh"

// Optimization layer.
#include "core/bmm_model.hh"
#include "core/dma_plan.hh"
#include "core/layout.hh"
#include "core/planner.hh"

// Workloads and baselines.
#include "baseline/faisslite.hh"
#include "baseline/phoenix_cpu.hh"
#include "baseline/timing_models.hh"
#include "baseline/workloads.hh"
#include "kernels/bmm.hh"
#include "kernels/phoenix_apu.hh"
#include "kernels/phoenix_model.hh"
#include "kernels/rag.hh"
#include "kernels/rag_model.hh"
#include "kernels/sort.hh"
#include "kernels/topk.hh"

#endif // CISRAM_CISRAM_HH
