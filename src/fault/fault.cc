#include "fault/fault.hh"

#include <array>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "common/logging.hh"

namespace cisram::fault {

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::PcieCorrupt:
        return "pcie_corrupt";
      case Kind::TaskHang:
        return "task_hang";
      case Kind::DramFlip:
        return "dram_flip";
      case Kind::DramFlip2:
        return "dram_flip2";
      case Kind::DevOom:
        return "dev_oom";
      case Kind::LinkDrop:
        return "link_drop";
      case Kind::LinkCorrupt:
        return "link_corrupt";
      case Kind::kCount:
        break;
    }
    return "?";
}

namespace {

/** SplitMix64 finalizer: the per-coordinate mixing step. */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

StatusOr<double>
parseNumber(const std::string &clause, const std::string &text)
{
    const char *begin = text.c_str();
    char *end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin || *end != '\0') {
        return Status::invalidArgument(
            "fault spec clause '" + clause + "': bad number '" +
            text + "'");
    }
    return v;
}

} // namespace

StatusOr<FaultPlan>
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    bool seed_seen = false;
    std::stringstream clauses(spec);
    std::string clause;
    while (std::getline(clauses, clause, ';')) {
        if (clause.empty())
            continue;
        size_t colon = clause.find(':');
        std::string name = clause.substr(0, colon);
        std::string params =
            colon == std::string::npos ? "" : clause.substr(colon + 1);

        if (name == "seed") {
            if (seed_seen) {
                return Status::invalidArgument(
                    "fault spec: duplicate clause 'seed'");
            }
            seed_seen = true;
            auto v = parseNumber(clause, params);
            if (!v.ok())
                return v.status();
            plan.seed_ = static_cast<uint64_t>(*v);
            continue;
        }

        Kind kind = Kind::kCount;
        for (unsigned k = 0;
             k < static_cast<unsigned>(Kind::kCount); ++k) {
            if (name == kindName(static_cast<Kind>(k)))
                kind = static_cast<Kind>(k);
        }
        if (kind == Kind::kCount) {
            return Status::invalidArgument(
                "fault spec: unknown fault kind '" + name + "'");
        }

        Clause &c = plan.clauses_[static_cast<unsigned>(kind)];
        if (c.enabled) {
            // Two clauses for one kind would silently merge into a
            // campaign nobody wrote down; make the typo loud.
            return Status::invalidArgument(
                "fault spec: duplicate clause '" + name + "'");
        }
        c.enabled = true;
        bool device_seen = false;
        std::stringstream kvs(params);
        std::string kv;
        while (std::getline(kvs, kv, ',')) {
            if (kv.empty())
                continue;
            size_t eq = kv.find('=');
            if (eq == std::string::npos) {
                return Status::invalidArgument(
                    "fault spec clause '" + clause +
                    "': expected key=value, got '" + kv + "'");
            }
            std::string key = kv.substr(0, eq);
            auto v = parseNumber(clause, kv.substr(eq + 1));
            if (!v.ok())
                return v.status();
            if (key == "device") {
                // Two device scopes in one clause would silently
                // narrow to whichever parsed last; make it loud,
                // like a duplicate clause.
                if (device_seen) {
                    return Status::invalidArgument(
                        "fault spec clause '" + clause +
                        "': duplicate key '" + kv + "'");
                }
                device_seen = true;
                if (*v < 0.0 ||
                    *v != static_cast<double>(
                              static_cast<int>(*v)) ||
                    *v >= static_cast<double>(kMaxFaultDevices)) {
                    return Status::invalidArgument(
                        "fault spec clause '" + clause +
                        "': device '" + kv.substr(eq + 1) +
                        "' out of range [0, " +
                        std::to_string(kMaxFaultDevices) + ")");
                }
                c.device = static_cast<int>(*v);
            } else if (key == "p") {
                if (*v < 0.0 || *v > 1.0) {
                    return Status::invalidArgument(
                        "fault spec clause '" + clause +
                        "': p must be in [0, 1]");
                }
                c.p = *v;
            } else if (key == "core") {
                c.core = static_cast<int>(*v);
            } else if (key == "nth") {
                if (*v < 1.0) {
                    return Status::invalidArgument(
                        "fault spec clause '" + clause +
                        "': nth is 1-based");
                }
                c.nth = static_cast<int64_t>(*v);
            } else if (key == "sticky") {
                c.sticky = *v != 0.0;
            } else {
                return Status::invalidArgument(
                    "fault spec clause '" + clause +
                    "': unknown key '" + key + "'");
            }
        }
    }
    return plan;
}

bool
FaultPlan::any() const
{
    for (const Clause &c : clauses_)
        if (c.enabled)
            return true;
    return false;
}

double
FaultPlan::uniform(Kind k, uint64_t a, uint64_t b, uint64_t c) const
{
    uint64_t h = mix(seed_ ^
                     (static_cast<uint64_t>(k) *
                      0xd6e8feb86659fd93ull));
    h = mix(h ^ a);
    h = mix(h ^ b);
    h = mix(h ^ c);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool
FaultPlan::drawPcieCorrupt(uint64_t stream, uint64_t xfer,
                           uint64_t attempt) const
{
    const Clause &c = clause(Kind::PcieCorrupt);
    if (!c.enabled)
        return false;
    if (c.nth >= 0 && attempt == 0 &&
        xfer + 1 == static_cast<uint64_t>(c.nth))
        return true;
    return c.p > 0.0 &&
        uniform(Kind::PcieCorrupt, stream, xfer, attempt) < c.p;
}

bool
FaultPlan::drawTaskHang(unsigned core, uint64_t invocation) const
{
    const Clause &c = clause(Kind::TaskHang);
    if (!c.enabled)
        return false;
    if (c.core >= 0 && static_cast<unsigned>(c.core) != core)
        return false;
    if (c.nth >= 0 && invocation == static_cast<uint64_t>(c.nth))
        return true;
    return c.p > 0.0 &&
        uniform(Kind::TaskHang, core, invocation, 0) < c.p;
}

unsigned
FaultPlan::drawDramFlips(uint64_t stream, uint64_t codeword,
                         double scale, unsigned device) const
{
    double p1 = appliesTo(Kind::DramFlip, device)
        ? clause(Kind::DramFlip).p * scale : 0.0;
    double p2 = appliesTo(Kind::DramFlip2, device)
        ? clause(Kind::DramFlip2).p * scale : 0.0;
    if (p1 <= 0.0 && p2 <= 0.0)
        return 0;
    double u = uniform(Kind::DramFlip, stream, codeword, 0);
    if (u < p2)
        return 2;
    if (u < p2 + p1)
        return 1;
    return 0;
}

bool
FaultPlan::drawDevOom(uint64_t stream, uint64_t alloc_index) const
{
    const Clause &c = clause(Kind::DevOom);
    if (!c.enabled)
        return false;
    if (c.nth >= 0 && alloc_index == static_cast<uint64_t>(c.nth))
        return true;
    return c.p > 0.0 &&
        uniform(Kind::DevOom, stream, alloc_index, 0) < c.p;
}

bool
FaultPlan::drawLinkDrop(unsigned device, uint64_t msg,
                        uint64_t attempt) const
{
    const Clause &c = clause(Kind::LinkDrop);
    if (!c.enabled)
        return false;
    if (c.device >= 0 && static_cast<unsigned>(c.device) != device)
        return false;
    if (c.nth >= 0 && attempt == 0 &&
        msg + 1 == static_cast<uint64_t>(c.nth))
        return true;
    return c.p > 0.0 &&
        uniform(Kind::LinkDrop, device, msg, attempt) < c.p;
}

bool
FaultPlan::drawLinkCorrupt(unsigned device, uint64_t msg,
                           uint64_t attempt) const
{
    const Clause &c = clause(Kind::LinkCorrupt);
    if (!c.enabled)
        return false;
    if (c.device >= 0 && static_cast<unsigned>(c.device) != device)
        return false;
    if (c.nth >= 0 && attempt == 0 &&
        msg + 1 == static_cast<uint64_t>(c.nth))
        return true;
    return c.p > 0.0 &&
        uniform(Kind::LinkCorrupt, device, msg, attempt) < c.p;
}

std::string
FaultPlan::toString() const
{
    std::ostringstream out;
    bool first = true;
    for (unsigned k = 0; k < static_cast<unsigned>(Kind::kCount);
         ++k) {
        const Clause &c = clauses_[k];
        if (!c.enabled)
            continue;
        if (!first)
            out << ';';
        first = false;
        out << kindName(static_cast<Kind>(k)) << ":p=" << c.p;
        if (c.core >= 0)
            out << ",core=" << c.core;
        if (c.device >= 0)
            out << ",device=" << c.device;
        if (c.nth >= 0)
            out << ",nth=" << c.nth;
        if (c.sticky)
            out << ",sticky=1";
    }
    if (!first)
        out << ";seed:" << seed_;
    return out.str();
}

namespace detail {
std::atomic<const FaultPlan *> g_plan{nullptr};
} // namespace detail

namespace {
std::mutex g_armMu;
FaultPlan g_armed; ///< storage behind detail::g_plan
} // namespace

void
armPlan(const FaultPlan &plan)
{
    std::lock_guard<std::mutex> lk(g_armMu);
    detail::g_plan.store(nullptr, std::memory_order_release);
    g_armed = plan;
    detail::g_plan.store(&g_armed, std::memory_order_release);
}

void
disarm()
{
    std::lock_guard<std::mutex> lk(g_armMu);
    detail::g_plan.store(nullptr, std::memory_order_release);
}

void
initFromEnv()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const char *spec = std::getenv("CISRAM_FAULT_SPEC");
        if (!spec || !*spec)
            return;
        auto plan = FaultPlan::parse(spec);
        if (!plan.ok()) {
            cisram_fatal("CISRAM_FAULT_SPEC: ",
                         plan.status().toString());
        }
        armPlan(*plan);
        cisram_inform("fault plan armed: ", plan->toString());
    });
}

uint32_t
crc32(const void *data, size_t n)
{
    static const auto table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c >> 1) ^ ((c & 1u) ? 0xedb88320u : 0u);
            t[i] = c;
        }
        return t;
    }();
    uint32_t crc = 0xffffffffu;
    const auto *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < n; ++i)
        crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xffu];
    return crc ^ 0xffffffffu;
}

} // namespace cisram::fault
