/**
 * @file
 * Deterministic fault injection for the simulated device stack.
 *
 * The real GDL API the paper's host code programs against exposes
 * failure as a first-class outcome (`gdl_run_task_timeout`, Fig. 5a):
 * production devices hang, PCIe links corrupt TLPs, DRAM cells flip.
 * This module injects those *environmental* faults into the
 * simulator on demand so the recovery machinery above it — timeouts,
 * CRC-checked transfers with retry, SECDED ECC, circuit breakers —
 * can be exercised and tested deterministically.
 *
 * A FaultPlan is armed process-wide, either programmatically
 * (fault::armPlan) or from the CISRAM_FAULT_SPEC environment
 * variable. The spec grammar is `clause(;clause)*` with
 * `clause = kind(:key=value(,key=value)*)?`:
 *
 *   pcie_corrupt:p=1e-3           corrupt host<->device transfers
 *   task_hang:core=2,nth=5        hang the 5th task on core 2
 *   task_hang:p=0.01              hang tasks with probability p
 *   task_hang:core=1,nth=3,sticky=1  ...and wedge the core: every
 *                                 later task on it hangs until the
 *                                 host resets the core (gdl resetCore)
 *   dram_flip:p=1e-6              single-bit flip per ECC codeword
 *   dram_flip2:p=1e-9             double-bit flip per ECC codeword
 *   dev_oom:nth=3                 fail the 3rd device allocation
 *   link_drop:device=2,p=0.1      drop fabric messages to device 2
 *   link_corrupt:p=1e-3           corrupt fabric payloads (any link)
 *   seed:42                       seed for all probability draws
 *
 * Any clause may carry `device=N` to scope it to one fleet device
 * (default: all devices). The fleet fabric honors it for the link
 * kinds and the per-device GDL/DRAM owners honor it for the rest. A
 * negative, non-integral, or out-of-range device (>= 64 at parse
 * time; >= the fleet size once a router validates the plan) is
 * rejected as InvalidArgument naming the token, as is a duplicate
 * `device=` key within one clause.
 *
 * A clause may appear at most once; a duplicate clause (or a second
 * seed) is rejected as InvalidArgument naming the repeated token —
 * silently merging two task_hang clauses would measure a different
 * campaign than the one written down.
 *
 * `sticky=1` marks a *persistent* fault: the draw decides when the
 * fault first fires, and the injected component then stays broken —
 * a wedged core keeps hanging, a wedged PCIe link corrupts every
 * transfer — until the owning layer performs a device reset. The
 * latch lives with the component model (GdlContext), not here: the
 * plan stays immutable and the draws stay pure.
 *
 * e.g. CISRAM_FAULT_SPEC="pcie_corrupt:p=1e-3;task_hang:core=2,nth=5"
 *
 * Every draw is a pure hash of (seed, kind, stream, index, attempt):
 * there is no shared RNG state, so outcomes are independent of host
 * thread interleaving and identical for any CISRAM_SIM_THREADS.
 * Streams are per-owner counters (a GdlContext's transfer serial, a
 * DramSystem's codeword serial), each owned by exactly one simulated
 * core, which keeps the injected fault sequence reproducible
 * bit-for-bit.
 *
 * Cost contract: when no plan is armed, every hook in the stack is a
 * single relaxed atomic load plus a null test (`fault::plan()`), and
 * all simulated timing is bit-identical to a build without the
 * subsystem — bench_fault_overhead pins <1% wall overhead.
 * Arm/disarm is not synchronized against in-flight draws; arm the
 * plan before the workload starts (main(), test SetUp).
 */

#ifndef CISRAM_FAULT_FAULT_HH
#define CISRAM_FAULT_FAULT_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.hh"

namespace cisram::fault {

/** Fault kinds a plan can inject. */
enum class Kind : unsigned
{
    PcieCorrupt = 0, ///< host<->device transfer corrupted in flight
    TaskHang,        ///< device task never retires
    DramFlip,        ///< transient single-bit flip in a codeword
    DramFlip2,       ///< transient double-bit flip in a codeword
    DevOom,          ///< device-memory allocation failure
    LinkDrop,        ///< fabric message lost (timeout, retransmit)
    LinkCorrupt,     ///< fabric payload corrupted (CRC, retransmit)
    kCount,
};

/**
 * Upper bound a `device=` clause is validated against at parse time
 * (a fleet-size-aware bound is applied later by the fleet router,
 * which knows how many devices actually exist).
 */
constexpr int kMaxFaultDevices = 64;

/** Spec-grammar name of a fault kind ("pcie_corrupt", ...). */
const char *kindName(Kind k);

/** One armed clause of a plan. */
struct Clause
{
    bool enabled = false;
    double p = 0.0;   ///< per-event probability (0 = never by draw)
    int core = -1;    ///< restrict to one core (-1 = any)
    int device = -1;  ///< restrict to one fleet device (-1 = all)
    int64_t nth = -1; ///< fire on the nth occurrence (1-based)

    /**
     * Persistent fault: once a draw fires, the faulted component
     * stays broken until a device reset clears it (the latch is
     * owned by the component model; see file comment).
     */
    bool sticky = false;
};

/**
 * An immutable, seed-driven injection plan. Thread-safe: all query
 * methods are const and stateless (callers own their counters).
 */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /**
     * Parse the CISRAM_FAULT_SPEC grammar (see file comment).
     * Unknown kinds, keys, or malformed numbers return
     * InvalidArgument — a mistyped spec must never silently run the
     * happy path.
     */
    static StatusOr<FaultPlan> parse(const std::string &spec);

    const Clause &
    clause(Kind k) const
    {
        return clauses_[static_cast<unsigned>(k)];
    }

    uint64_t seed() const { return seed_; }

    /** True if any clause is armed. */
    bool any() const;

    /**
     * True when `k`'s clause is armed and in scope for `device`
     * (clauses without a `device=` key apply everywhere). Component
     * owners that belong to one fleet device gate their draws on
     * this; standalone single-device code passes its default device
     * index 0.
     */
    bool
    appliesTo(Kind k, unsigned device) const
    {
        const Clause &c = clause(k);
        return c.enabled &&
            (c.device < 0 ||
             static_cast<unsigned>(c.device) == device);
    }

    /**
     * Corrupt attempt `attempt` of transfer `xfer` on stream
     * `stream`? Retries pass increasing attempts, so a p < 1 fault
     * clears after a finite number of retries.
     */
    bool drawPcieCorrupt(uint64_t stream, uint64_t xfer,
                         uint64_t attempt) const;

    /** Hang invocation `invocation` (1-based) on `core`? */
    bool drawTaskHang(unsigned core, uint64_t invocation) const;

    /**
     * Number of flipped bits (0, 1, or 2) in codeword `codeword` of
     * stream `stream`: 1 with clause(DramFlip).p, 2 with
     * clause(DramFlip2).p. `scale` multiplies both probabilities so
     * a caller covering `scale` codewords with one draw (rare-event
     * aggregation, valid while scale*p << 1) keeps the same expected
     * flip count per codeword. `device` is the owning fleet device:
     * a flip clause scoped elsewhere contributes probability zero.
     */
    unsigned drawDramFlips(uint64_t stream, uint64_t codeword,
                           double scale = 1.0,
                           unsigned device = 0) const;

    /** Fail allocation `alloc_index` (1-based) on `stream`? */
    bool drawDevOom(uint64_t stream, uint64_t alloc_index) const;

    /**
     * Drop attempt `attempt` of fabric message `msg` on the link to
     * `device`? Like the PCIe draw, retries pass increasing attempts
     * so a p < 1 fault clears after a finite number of retransmits;
     * `nth` fires on the nth message's first attempt.
     */
    bool drawLinkDrop(unsigned device, uint64_t msg,
                      uint64_t attempt) const;

    /** Corrupt attempt `attempt` of message `msg` to `device`? */
    bool drawLinkCorrupt(unsigned device, uint64_t msg,
                         uint64_t attempt) const;

    /** Canonical spec string of the armed clauses. */
    std::string toString() const;

  private:
    /** Deterministic uniform in [0, 1) from the draw coordinates. */
    double uniform(Kind k, uint64_t a, uint64_t b, uint64_t c) const;

    Clause clauses_[static_cast<unsigned>(Kind::kCount)];
    uint64_t seed_ = 1;
};

namespace detail {
extern std::atomic<const FaultPlan *> g_plan;
} // namespace detail

/**
 * The armed plan, or nullptr. This is the hot-path gate: a relaxed
 * atomic load, nothing else.
 */
inline const FaultPlan *
plan()
{
    return detail::g_plan.load(std::memory_order_relaxed);
}

/** Arm `plan` process-wide (copied; replaces any armed plan). */
void armPlan(const FaultPlan &plan);

/** Disarm: subsequent plan() calls return nullptr. */
void disarm();

/**
 * Read CISRAM_FAULT_SPEC once and arm it if set. Idempotent and
 * thread-safe; called from GdlContext / DramSystem construction so
 * env-var usage needs no code. A malformed spec is fatal (a typo'd
 * injection campaign must not silently measure the happy path).
 */
void initFromEnv();

/**
 * CRC-32 (IEEE 802.3, reflected) of `n` bytes — the link-layer
 * checksum the PCIe retry path verifies transfers with.
 */
uint32_t crc32(const void *data, size_t n);

} // namespace cisram::fault

#endif // CISRAM_FAULT_FAULT_HH
