/**
 * @file
 * Shared scaffolding for APU kernels: device/core handles, L4
 * staging, functional-vs-timing work splitting, and stat collection.
 * Internal to src/kernels.
 */

#ifndef CISRAM_KERNELS_KERNEL_CTX_HH
#define CISRAM_KERNELS_KERNEL_CTX_HH

#include <cstdint>
#include <vector>

#include "apusim/apu.hh"
#include "common/bitutils.hh"
#include "gvml/gvml.hh"

namespace cisram::kernels {

class KernelCtx
{
  public:
    explicit KernelCtx(apu::ApuDevice &dev)
        : dev(dev), core(dev.core(0)), g(core),
          fnl(core.functional()), l(dev.spec().vrLength)
    {
        core.stats().reset();
    }

    /** Allocate an L4 region; write `data` in functional mode. */
    uint64_t
    stage(const void *data, size_t bytes)
    {
        uint64_t addr = dev.allocator().alloc(
            std::max<size_t>(bytes, 1), 512);
        if (fnl && data && bytes)
            dev.l4().write(addr, data, bytes);
        return addr;
    }

    /**
     * Tiles processed by the critical-path core: all of them in
     * functional mode, a quarter (4-core split) in timing mode.
     */
    size_t
    coreShare(size_t tiles) const
    {
        return fnl ? tiles
                   : divCeil(tiles, dev.spec().numCores);
    }

    /**
     * Run `n` shape-invariant iterations: all in functional mode,
     * one accounted iteration scaled by n otherwise.
     */
    template <typename Fn>
    void
    timedLoop(size_t n, Fn fn)
    {
        if (n == 0)
            return;
        if (fnl) {
            for (size_t i = 0; i < n; ++i)
                fn(i);
        } else {
            apu::ScopedRepeat rep(core.stats(),
                                  static_cast<double>(n));
            fn(0);
        }
    }

    double cycles() const { return core.stats().cycles(); }
    double uops() const { return core.stats().uops(); }

    apu::ApuDevice &dev;
    apu::ApuCore &core;
    gvml::Gvml g;
    bool fnl;
    size_t l;
};

} // namespace cisram::kernels

#endif // CISRAM_KERNELS_KERNEL_CTX_HH
