/**
 * @file
 * Analytical-framework model programs for the Phoenix suite
 * (paper Table 7).
 *
 * Each function transliterates the corresponding all-opts APU kernel
 * into a LatencyEstimator program, exactly as Fig. 6 does for
 * Histogram with the paper's Python library. The framework predicts
 * from the analytical cost table (Tables 4/5 fits plus the
 * calibrated Eq. 1 model); the simulator measures with its
 * decomposed timing; Table 7 compares the two.
 */

#ifndef CISRAM_KERNELS_PHOENIX_MODEL_HH
#define CISRAM_KERNELS_PHOENIX_MODEL_HH

#include "baseline/timing_models.hh"
#include "kernels/phoenix_apu.hh"
#include "model/latency_estimator.hh"

namespace cisram::kernels {

/**
 * Predicted critical-path-core cycles of one application's all-opts
 * kernel at the paper's (Table 6) input scale. The estimator must
 * carry a calibrated subgroup-reduction model.
 */
double predictPhoenixCycles(model::LatencyEstimator &est,
                            baseline::PhoenixApp app);

} // namespace cisram::kernels

#endif // CISRAM_KERNELS_PHOENIX_MODEL_HH
