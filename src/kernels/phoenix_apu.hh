/**
 * @file
 * The Phoenix benchmark suite on the simulated APU (paper
 * Section 5.2, Fig. 13, Tables 6 and 7).
 *
 * Each application is implemented at several optimization levels:
 *
 *  - Baseline: naive mapping; spatial reductions, PIO for scattered
 *    outputs, unpacked data, row-major broadcast tables.
 *  - Opt1 (communication-aware reduction mapping): temporal
 *    reductions and DMA for contiguous outputs.
 *  - Opt2 (DMA coalescing): input packing (two bytes per element)
 *    and reuse-VR duplication via subgroup copies.
 *  - Opt3 (broadcast-friendly layout): minimal lookup windows /
 *    CP-immediate broadcasts.
 *  - AllOpts: all applicable optimizations.
 *
 * Not every optimization applies to every application, matching the
 * paper's per-app analysis (Section 5.2.1): opt2 packing is the
 * lever for linear regression and histogram, opt2 coalescing for
 * matmul, opt1 for string match / word count / reverse index, opt3
 * for k-means. Inapplicable variants fall back to the nearest
 * applicable level, so their bars sit at the baseline as in Fig. 13.
 *
 * Kernels run functionally at test scale (exact against the CPU
 * reference implementations in src/baseline) and in timing-only mode
 * at paper scale, where tiles are split across the four cores and
 * the reported cycles are the critical path. The paper's MapReduce
 * split applies: the APU executes the data-parallel map/combine
 * phase, the host the final reduce (e.g. k-means centroid updates
 * between kernel invocations); reported cycles cover the APU kernel
 * including device-memory data movement, as in the paper.
 */

#ifndef CISRAM_KERNELS_PHOENIX_APU_HH
#define CISRAM_KERNELS_PHOENIX_APU_HH

#include <cstdint>
#include <vector>

#include "apusim/apu.hh"
#include "baseline/phoenix_cpu.hh"
#include "baseline/timing_models.hh"

namespace cisram::kernels {

enum class PhoenixVariant { Baseline, Opt1, Opt2, Opt3, AllOpts };

const char *phoenixVariantName(PhoenixVariant v);

/** Cycle/uop accounting of one kernel run (critical-path core). */
struct PhoenixStats
{
    double cycles = 0;
    double uops = 0;

    double
    ms(const apu::ApuSpec &spec) const
    {
        return cycles / spec.clockHz * 1e3;
    }
};

// ---- per-application kernels ------------------------------------
// Functional mode: pass the input; the result is exact against the
// CPU reference. Timing mode: pass nullptr and the paper-scale
// element count via the size parameters.

baseline::HistogramResult
histogramApu(apu::ApuDevice &dev, const baseline::HistogramInput *in,
             double input_bytes, PhoenixVariant v,
             PhoenixStats &stats);

baseline::LinRegResult
linRegApu(apu::ApuDevice &dev, const baseline::LinRegInput *in,
          double input_bytes, PhoenixVariant v, PhoenixStats &stats);

/**
 * Dense s16 matrix multiply (results must fit in int16; the paper's
 * Phoenix matmul keeps its inner-product structure, which is why the
 * application stays intra-VR bound).
 */
std::vector<int16_t>
matmulApu(apu::ApuDevice &dev, const std::vector<int16_t> *a,
          const std::vector<int16_t> *b, size_t m, size_t n, size_t k,
          PhoenixVariant v, PhoenixStats &stats);

/**
 * K-means assignment kernel (the MapReduce map phase); centroid
 * recomputation runs on the host between iterations.
 * @return final assignment per point (functional mode).
 */
std::vector<uint32_t>
kmeansApu(apu::ApuDevice &dev, const baseline::KmeansInput *in,
          size_t num_points, size_t dim, size_t k,
          unsigned iterations, PhoenixVariant v, PhoenixStats &stats);

baseline::StringMatchResult
stringMatchApu(apu::ApuDevice &dev,
               const baseline::StringMatchInput *in,
               double input_bytes, PhoenixVariant v,
               PhoenixStats &stats);

/** Word-id histogram via in-VR sort + compress. */
std::vector<std::pair<uint16_t, uint64_t>>
wordCountApu(apu::ApuDevice &dev,
             const std::vector<uint16_t> *word_ids, double num_words,
             PhoenixVariant v, PhoenixStats &stats);

/** Reverse index over a link-id stream; doc = position / 16. */
baseline::RevIndexResult
reverseIndexApu(apu::ApuDevice &dev,
                const std::vector<uint16_t> *links, double num_links,
                size_t links_per_doc, PhoenixVariant v,
                PhoenixStats &stats);

// ---- paper-scale harness -----------------------------------------

/** The Table 6 input configurations, shared by the timed harness
 * and the analytical-framework model programs. */
struct PhoenixPaperScale
{
    double histogramBytes = 1.5e9;
    double linregBytes = 512.0e6;
    size_t matmulDim = 1024;
    size_t kmeansPoints = 131072;
    size_t kmeansDim = 8;
    size_t kmeansK = 32;
    unsigned kmeansIters = 12;
    double revIndexLinks = 50.0e6;
    size_t revIndexLpd = 16;
    double stringMatchBytes = 512.0e6;
    double wordCountWords = 2.0e6;
};

const PhoenixPaperScale &phoenixPaperScale();

/** Paper-scale (Table 6) timing-only run of one app and variant. */
PhoenixStats runPhoenixApuTimed(apu::ApuDevice &dev,
                                baseline::PhoenixApp app,
                                PhoenixVariant v);

/** Tokenize words to u16 ids for the APU word-count kernel. */
std::vector<uint16_t>
tokenizeWords(const std::vector<std::string> &words);

} // namespace cisram::kernels

#endif // CISRAM_KERNELS_PHOENIX_APU_HH
