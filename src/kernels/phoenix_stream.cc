/**
 * @file
 * Streaming Phoenix applications on the APU: histogram, linear
 * regression, and string match.
 */

#include "kernels/phoenix_apu.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "kernels/kernel_ctx.hh"

namespace cisram::kernels {

using apu::ApuDevice;
using baseline::HistogramInput;
using baseline::HistogramResult;
using baseline::LinRegInput;
using baseline::LinRegResult;
using baseline::StringMatchInput;
using baseline::StringMatchResult;
using gvml::Vmr;
using gvml::Vr;

const char *
phoenixVariantName(PhoenixVariant v)
{
    switch (v) {
      case PhoenixVariant::Baseline:
        return "baseline";
      case PhoenixVariant::Opt1:
        return "opt1";
      case PhoenixVariant::Opt2:
        return "opt2";
      case PhoenixVariant::Opt3:
        return "opt3";
      case PhoenixVariant::AllOpts:
        return "all-opts";
    }
    return "?";
}

// =================================================================
// Histogram
// =================================================================

HistogramResult
histogramApu(ApuDevice &dev, const HistogramInput *in,
             double input_bytes, PhoenixVariant v,
             PhoenixStats &stats)
{
    KernelCtx ctx(dev);
    auto &g = ctx.g;
    size_t l = ctx.l;

    // Opt2 packs two 8-bit pixels into each 16-bit element, halving
    // the streamed volume; other optimizations don't apply here
    // (Section 5.2.1: histogram remains intra-VR limited).
    bool packed =
        v == PhoenixVariant::Opt2 || v == PhoenixVariant::AllOpts;

    double vals_per_channel = input_bytes / 3.0;
    double elems_per_channel =
        packed ? vals_per_channel / 2.0 : vals_per_channel;
    size_t tiles_per_channel = static_cast<size_t>(
        divCeil(static_cast<uint64_t>(elems_per_channel), l));

    // Functional staging: planar per-channel images.
    uint64_t plane_addr[3] = {0, 0, 0};
    size_t pad_zero_bytes[3] = {0, 0, 0};
    if (ctx.fnl) {
        size_t npix = in->pixels.size() / 3;
        tiles_per_channel = divCeil(packed ? divCeil(npix, 2) : npix,
                                    l);
        for (int ch = 0; ch < 3; ++ch) {
            std::vector<uint16_t> plane(tiles_per_channel * l, 0);
            for (size_t p = 0; p < npix; ++p) {
                uint8_t val = in->pixels[3 * p + ch];
                if (packed) {
                    plane[p / 2] |= static_cast<uint16_t>(val)
                        << (8 * (p % 2));
                } else {
                    plane[p] = val;
                }
            }
            // Padding contributes zero-valued byte lanes that the
            // host subtracts from bin 0 afterwards.
            pad_zero_bytes[ch] =
                (packed ? 2 : 1) * tiles_per_channel * l - npix;
            plane_addr[ch] =
                ctx.stage(plane.data(), plane.size() * 2);
        }
    }

    constexpr Vr vrSrc{0}, vrLo{1}, vrHi{2}, vrBin{3}, vrM{4},
        vrMaskFF{5};
    constexpr Vmr vmIn{0};

    g.cpyImm16(vrMaskFF, 0x00ff);

    HistogramResult out;
    uint32_t *bins[3] = {out.r.data(), out.g.data(), out.b.data()};

    size_t total_tiles = 3 * tiles_per_channel;
    size_t share = ctx.coreShare(total_tiles);
    ctx.timedLoop(share, [&](size_t t) {
        int ch = ctx.fnl
            ? static_cast<int>(t / tiles_per_channel)
            : 0;
        size_t tile = ctx.fnl ? t % tiles_per_channel : 0;
        ctx.core.dmaL4ToL1(vmIn.idx,
                           plane_addr[ch] + tile * l * 2);
        g.load16(vrSrc, vmIn);
        if (packed) {
            g.and16(vrLo, vrSrc, vrMaskFF);
            g.srImm16(vrHi, vrSrc, 8);
        }
        for (unsigned b = 0; b < 256; ++b) {
            g.cpyImm16(vrBin, static_cast<uint16_t>(b));
            if (packed) {
                g.eq16(vrM, vrLo, vrBin);
                uint32_t c = g.countM(vrM);
                g.eq16(vrM, vrHi, vrBin);
                c += g.countM(vrM);
                if (ctx.fnl)
                    bins[ch][b] += c;
            } else {
                g.eq16(vrM, vrSrc, vrBin);
                uint32_t c = g.countM(vrM);
                if (ctx.fnl)
                    bins[ch][b] += c;
            }
        }
    });

    if (ctx.fnl) {
        for (int ch = 0; ch < 3; ++ch) {
            cisram_assert(bins[ch][0] >=
                          pad_zero_bytes[ch]);
            bins[ch][0] -= static_cast<uint32_t>(
                pad_zero_bytes[ch]);
        }
    }
    stats = {ctx.cycles(), ctx.uops()};
    return out;
}

// =================================================================
// Linear regression
// =================================================================

namespace {

/** 32-bit accumulate: lo += v with carry into hi. */
void
acc32(gvml::Gvml &g, Vr lo, Vr hi, Vr v, Vr carry)
{
    g.addU16(lo, lo, v);
    g.ltU16(carry, lo, v); // wrapped iff result < addend
    g.addU16(hi, hi, carry);
}

} // namespace

LinRegResult
linRegApu(ApuDevice &dev, const LinRegInput *in, double input_bytes,
          PhoenixVariant v, PhoenixStats &stats)
{
    KernelCtx ctx(dev);
    auto &g = ctx.g;
    size_t l = ctx.l;

    // Opt2 keeps the natural (x, y) byte-pair packing; the baseline
    // splits into two byte-per-element planes (twice the traffic).
    // Opt1 switches the naive eager per-tile spatial reduction +
    // PIO partials to temporal per-lane accumulators drained once by
    // DMA.
    bool packed =
        v == PhoenixVariant::Opt2 || v == PhoenixVariant::AllOpts;
    bool temporal =
        v == PhoenixVariant::Opt1 || v == PhoenixVariant::AllOpts;

    double points = input_bytes / 2.0;
    size_t tiles = static_cast<size_t>(
        divCeil(static_cast<uint64_t>(points), l));

    uint64_t x_addr = 0, y_addr = 0, packed_addr = 0,
             partial_addr = 0;
    size_t npoints = 0;
    if (ctx.fnl) {
        npoints = in->points.size() / 2;
        tiles = divCeil(npoints, l);
        if (packed) {
            // One element per point: x | y << 8.
            std::vector<uint16_t> img(tiles * l, 0);
            for (size_t p = 0; p < npoints; ++p)
                img[p] = static_cast<uint16_t>(
                    in->points[2 * p] |
                    (in->points[2 * p + 1] << 8));
            packed_addr = ctx.stage(img.data(), img.size() * 2);
        } else {
            std::vector<uint16_t> xs(tiles * l, 0), ys(tiles * l, 0);
            for (size_t p = 0; p < npoints; ++p) {
                xs[p] = in->points[2 * p];
                ys[p] = in->points[2 * p + 1];
            }
            x_addr = ctx.stage(xs.data(), xs.size() * 2);
            y_addr = ctx.stage(ys.data(), ys.size() * 2);
        }
    }
    // Partial-sum output region for the eager (spatial) path:
    // per tile, 5 quantities x 2 byte-halves x (l/256) group sums.
    size_t groups = l / 256;
    if (!temporal)
        partial_addr = dev.allocator().alloc(
            std::max<size_t>(tiles, 1) * 5 * 2 * groups * 2, 512);

    constexpr Vr vrX{0}, vrY{1}, vrV{2}, vrC{3}, vrMaskFF{4},
        vrT{5}, vrLoB{6}, vrHiB{7};
    // Temporal accumulators: lo/hi for sx, sy, sxx, syy, sxy.
    constexpr unsigned accBase = 8; // VRs 8..17
    constexpr Vmr vmIn{0}, vmIn2{1}, vmOut{2};

    g.cpyImm16(vrMaskFF, 0x00ff);
    if (temporal) {
        for (unsigned q = 0; q < 10; ++q)
            g.cpyImm16(Vr(accBase + q), 0);
    }

    uint64_t sums[5] = {0, 0, 0, 0, 0}; // sx, sy, sxx, syy, sxy

    auto quantity = [&](unsigned q, Vr dst) {
        // q: 0 sx, 1 sy, 2 sxx, 3 syy, 4 sxy.
        switch (q) {
          case 0:
            g.cpy16(dst, vrX);
            break;
          case 1:
            g.cpy16(dst, vrY);
            break;
          case 2:
            g.mulU16(dst, vrX, vrX);
            break;
          case 3:
            g.mulU16(dst, vrY, vrY);
            break;
          default:
            g.mulU16(dst, vrX, vrY);
            break;
        }
    };

    size_t share = ctx.coreShare(tiles);
    ctx.timedLoop(share, [&](size_t tile) {
        if (packed) {
            ctx.core.dmaL4ToL1(vmIn.idx, packed_addr + tile * l * 2);
            g.load16(vrT, vmIn);
            g.and16(vrX, vrT, vrMaskFF);
            g.srImm16(vrY, vrT, 8);
        } else {
            ctx.core.dmaL4ToL1(vmIn.idx, x_addr + tile * l * 2);
            ctx.core.dmaL4ToL1(vmIn2.idx, y_addr + tile * l * 2);
            g.load16(vrX, vmIn);
            g.load16(vrY, vmIn2);
        }
        for (unsigned q = 0; q < 5; ++q) {
            quantity(q, vrV);
            if (temporal) {
                acc32(g, Vr(accBase + 2 * q),
                      Vr(accBase + 2 * q + 1), vrV, vrC);
            } else {
                // Eager spatial reduction: split bytes so 256-wide
                // group sums stay within u16, then PIO the group
                // heads out as partials.
                g.and16(vrLoB, vrV, vrMaskFF);
                g.srImm16(vrHiB, vrV, 8);
                g.addSubgrpS16(vrLoB, vrLoB, 256, 1);
                g.addSubgrpS16(vrHiB, vrHiB, 256, 1);
                uint64_t base = partial_addr +
                    (tile * 5 + q) * 2 * groups * 2;
                ctx.core.pioStore(base, 2, vrLoB.idx, 0, 256,
                                  groups);
                ctx.core.pioStore(base + groups * 2, 2, vrHiB.idx,
                                  0, 256, groups);
            }
        }
    });

    if (temporal) {
        // Drain the accumulators by DMA; the host combines lanes.
        uint64_t acc_addr = dev.allocator().alloc(10 * l * 2, 512);
        for (unsigned q = 0; q < 10; ++q) {
            g.store16(vmOut, Vr(accBase + q));
            ctx.core.dmaL1ToL4(acc_addr + q * l * 2, vmOut.idx);
        }
        ctx.core.chargeRaw(4.0 * 10 * static_cast<double>(l));
        if (ctx.fnl) {
            std::vector<uint16_t> lo(l), hi(l);
            for (unsigned q = 0; q < 5; ++q) {
                dev.l4().read(acc_addr + (2 * q) * l * 2, lo.data(),
                              l * 2);
                dev.l4().read(acc_addr + (2 * q + 1) * l * 2,
                              hi.data(), l * 2);
                for (size_t i = 0; i < l; ++i)
                    sums[q] += (static_cast<uint64_t>(hi[i]) << 16) +
                        lo[i];
            }
        }
    } else {
        // Host combines the PIO'd per-tile group partials.
        ctx.core.chargeRaw(4.0 * static_cast<double>(share) * 5 * 2 *
                           static_cast<double>(groups));
        if (ctx.fnl) {
            std::vector<uint16_t> part(groups);
            for (size_t tile = 0; tile < tiles; ++tile) {
                for (unsigned q = 0; q < 5; ++q) {
                    uint64_t base = partial_addr +
                        (tile * 5 + q) * 2 * groups * 2;
                    dev.l4().read(base, part.data(), groups * 2);
                    for (auto p : part)
                        sums[q] += p;
                    dev.l4().read(base + groups * 2, part.data(),
                                  groups * 2);
                    for (auto p : part)
                        sums[q] += static_cast<uint64_t>(p) << 8;
                }
            }
        }
    }

    stats = {ctx.cycles(), ctx.uops()};

    LinRegResult out{};
    if (ctx.fnl) {
        out.n = npoints;
        out.sx = sums[0];
        out.sy = sums[1];
        out.sxx = sums[2];
        out.syy = sums[3];
        out.sxy = sums[4];
        double dn = static_cast<double>(out.n);
        double denom = dn * static_cast<double>(out.sxx) -
            static_cast<double>(out.sx) * static_cast<double>(out.sx);
        if (denom != 0.0) {
            out.b = (dn * static_cast<double>(out.sxy) -
                     static_cast<double>(out.sx) *
                         static_cast<double>(out.sy)) /
                denom;
            out.a = (static_cast<double>(out.sy) -
                     out.b * static_cast<double>(out.sx)) /
                dn;
        }
    }
    return out;
}

// =================================================================
// String match
// =================================================================

namespace {

constexpr size_t recordBytes = 16;
constexpr size_t recordElems = recordBytes / 2;

/** Pack a string into a fixed 16-byte record (NUL padded). */
void
packRecord(const std::string &s, uint16_t *out)
{
    uint8_t bytes[recordBytes] = {};
    std::memcpy(bytes, s.data(), std::min(s.size(), recordBytes));
    for (size_t e = 0; e < recordElems; ++e)
        out[e] = static_cast<uint16_t>(bytes[2 * e] |
                                       (bytes[2 * e + 1] << 8));
}

/** The in-VR "encryption" transform: rotl3 then xor 0x5a5a. */
void
encrypt(gvml::Gvml &g, Vr dst, Vr src, Vr t1, Vr t2, Vr key)
{
    g.slImm16(t1, src, 3);
    g.srImm16(t2, src, 13);
    g.or16(dst, t1, t2);
    g.xor16(dst, dst, key);
}

} // namespace

StringMatchResult
stringMatchApu(ApuDevice &dev, const StringMatchInput *in,
               double input_bytes, PhoenixVariant v,
               PhoenixStats &stats)
{
    KernelCtx ctx(dev);
    auto &g = ctx.g;
    size_t l = ctx.l;
    size_t rec_per_tile = l / recordElems;

    // Opt1 maps the per-record match reduction to subgroup ops and
    // counts matches with count_m; the baseline PIOs per-record
    // match flags back (the fine-grained element access the paper
    // calls out). Opt2/opt3 have nothing to coalesce or broadcast.
    bool pio_flags = !(v == PhoenixVariant::Opt1 ||
                       v == PhoenixVariant::AllOpts);

    size_t num_keys = ctx.fnl ? in->keys.size() : 4;
    double records = input_bytes / recordBytes;
    size_t tiles = static_cast<size_t>(
        divCeil(static_cast<uint64_t>(records), rec_per_tile));

    uint64_t stream_addr = 0, keys_addr = 0, flags_addr = 0;
    size_t nrec = 0;
    if (ctx.fnl) {
        nrec = in->words.size();
        tiles = divCeil(nrec, rec_per_tile);
        std::vector<uint16_t> img(tiles * l, 0xffff); // pad != keys
        for (size_t r = 0; r < nrec; ++r)
            packRecord(in->words[r], img.data() + r * recordElems);
        stream_addr = ctx.stage(img.data(), img.size() * 2);
        std::vector<uint16_t> kimg(num_keys * recordElems);
        for (size_t k = 0; k < num_keys; ++k)
            packRecord(in->keys[k], kimg.data() + k * recordElems);
        keys_addr = ctx.stage(kimg.data(), kimg.size() * 2);
    }
    if (pio_flags)
        flags_addr = dev.allocator().alloc(
            std::max<size_t>(tiles, 1) * rec_per_tile * 2, 512);

    constexpr Vr vrS{0}, vrE{1}, vrM{2}, vrM2{3}, vrT1{4}, vrT2{5},
        vrXorKey{6}, vrConst8{7}, vrHead{8}, vrFlags{9};
    constexpr unsigned keyPatBase = 10; // VRs 10..13
    constexpr Vmr vmIn{0};

    // Kernel-wide constants and encrypted key patterns.
    g.cpyImm16(vrXorKey, 0x5a5a);
    g.cpyImm16(vrConst8, static_cast<uint16_t>(recordElems));
    g.createGrpIndexU16(vrHead, recordElems);
    g.cpyImm16(vrT1, 0);
    g.eq16(vrHead, vrHead, vrT1); // head-lane mask
    for (size_t k = 0; k < num_keys; ++k) {
        Vr pat(keyPatBase + static_cast<unsigned>(k));
        ctx.core.pioLoad(pat.idx, 0, 1, keys_addr + k * recordBytes,
                         2, recordElems);
        g.cpySubgrp16Grp(pat, pat, l, recordElems, 0);
        encrypt(g, pat, pat, vrT1, vrT2, vrXorKey);
    }

    std::vector<uint64_t> counts(num_keys, 0);

    size_t share = ctx.coreShare(tiles);
    ctx.timedLoop(share, [&](size_t tile) {
        ctx.core.dmaL4ToL1(vmIn.idx, stream_addr + tile * l * 2);
        g.load16(vrS, vmIn);
        encrypt(g, vrE, vrS, vrT1, vrT2, vrXorKey);
        if (pio_flags)
            g.cpyImm16(vrFlags, 0);
        for (size_t k = 0; k < num_keys; ++k) {
            Vr pat(keyPatBase + static_cast<unsigned>(k));
            g.eq16(vrM, vrE, pat);
            g.addSubgrpS16(vrM, vrM, recordElems, 1);
            g.eq16(vrM2, vrM, vrConst8);
            g.and16(vrM2, vrM2, vrHead);
            uint32_t c = g.countM(vrM2);
            if (ctx.fnl)
                counts[k] += c;
            if (pio_flags)
                g.or16(vrFlags, vrFlags, vrM2);
        }
        if (pio_flags) {
            // Naive path: per-record flags leave one by one.
            ctx.core.pioStore(flags_addr + tile * rec_per_tile * 2,
                              2, vrFlags.idx, 0, recordElems,
                              rec_per_tile);
        }
    });

    stats = {ctx.cycles(), ctx.uops()};
    return counts;
}

} // namespace cisram::kernels
