/**
 * @file
 * Analytical-framework model of the RAG retrieval kernel — the
 * framework-validation methodology of Table 7 extended to the
 * paper's headline workload. Predicts the on-device stages (query
 * load, distance computation, top-k, return); the embedding-load
 * stage belongs to the off-chip HBM model, exactly as Table 8
 * separates it.
 */

#ifndef CISRAM_KERNELS_RAG_MODEL_HH
#define CISRAM_KERNELS_RAG_MODEL_HH

#include "baseline/workloads.hh"
#include "kernels/rag.hh"
#include "model/latency_estimator.hh"

namespace cisram::kernels {

/**
 * Predicted on-device cycles (everything but the HBM embedding
 * stream) of one retrieval at the given corpus scale. Supported
 * variants: NoOpt, Opt1, AllOpts.
 */
double predictRagCycles(model::LatencyEstimator &est,
                        const baseline::RagCorpusSpec &corpus,
                        RagVariant variant, size_t top_k = 5);

} // namespace cisram::kernels

#endif // CISRAM_KERNELS_RAG_MODEL_HH
