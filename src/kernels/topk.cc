#include "kernels/topk.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cisram::kernels {

using baseline::Hit;
using gvml::Gvml;
using gvml::Vr;

namespace {

void
sortHits(std::vector<Hit> &hits)
{
    std::sort(hits.begin(), hits.end(), [](const Hit &a,
                                           const Hit &b) {
        if (a.score != b.score)
            return a.score > b.score;
        return a.id < b.id;
    });
}

} // namespace

std::vector<Hit>
topKIterative(Gvml &g, Vr scores, size_t k)
{
    auto &core = g.core();
    std::vector<Hit> out;
    for (size_t i = 0; i < k; ++i) {
        auto mx = g.maxIndexU16(scores);
        core.rspSet(scores.idx, core.functional() ? mx.index : 0, 0);
        if (core.functional())
            out.push_back({static_cast<float>(mx.value), mx.index});
    }
    sortHits(out);
    return out;
}

std::vector<Hit>
topKThreshold(Gvml &g, Vr scores, size_t k, Vr scratch_a,
              Vr scratch_b, Vr scratch_idx)
{
    auto &core = g.core();
    cisram_assert(k >= 1 && k <= g.length(), "k out of range");

    // Binary search the threshold: largest t with
    // |{score >= t}| >= k. 16 probes independent of k.
    uint16_t t = 0;
    for (int bit = 15; bit >= 0; --bit) {
        uint16_t probe = static_cast<uint16_t>(t | (1u << bit));
        g.cpyImm16(scratch_a, probe);
        g.geU16(scratch_b, scores, scratch_a);
        uint32_t c = g.countM(scratch_b);
        if (core.functional() && c >= k)
            t = probe;
    }

    std::vector<Hit> out;
    // Strict winners (> t), then threshold-equal entries by index.
    g.cpyImm16(scratch_a, t);
    g.gtU16(scratch_b, scores, scratch_a);
    uint32_t n_gt = g.countM(scratch_b);
    g.createIndexU16(scratch_idx);
    g.cpyFromMrk16(scratch_idx, scratch_idx, scratch_b);
    for (uint32_t i = 0; core.functional() && i < n_gt; ++i) {
        size_t idx = g.core().rspGet(scratch_idx.idx, i);
        out.push_back(
            {static_cast<float>(core.vr()[scores.idx][idx]), idx});
    }

    size_t remaining = core.functional()
        ? k - std::min<size_t>(k, n_gt)
        : k;
    g.cpyImm16(scratch_a, t);
    g.eq16(scratch_b, scores, scratch_a);
    g.createIndexU16(scratch_idx);
    g.cpyFromMrk16(scratch_idx, scratch_idx, scratch_b);
    for (size_t i = 0; i < remaining; ++i) {
        // Timing mode charges the k fetches; functional reads them.
        uint16_t idx = core.rspGet(scratch_idx.idx,
                                   core.functional() ? i : 0);
        if (core.functional())
            out.push_back({static_cast<float>(t), idx});
    }

    sortHits(out);
    if (out.size() > k)
        out.resize(k);
    return out;
}

} // namespace cisram::kernels
