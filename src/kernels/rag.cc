#include "kernels/rag.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/gsifloat.hh"
#include "common/logging.hh"
#include "gvml/gvml.hh"

namespace cisram::kernels {

using apu::ApuCore;
using apu::ApuDevice;
using apu::ScopedRepeat;
using baseline::Hit;
using baseline::RagCorpusSpec;
using gvml::Gvml;
using gvml::Vmr;
using gvml::Vr;

const char *
ragVariantName(RagVariant v)
{
    switch (v) {
      case RagVariant::NoOpt:
        return "no-opt";
      case RagVariant::Opt1:
        return "opt1";
      case RagVariant::Opt2:
        return "opt2";
      case RagVariant::Opt3:
        return "opt3";
      case RagVariant::AllOpts:
        return "all-opts";
    }
    return "?";
}

namespace {

constexpr Vr vrEmb{0}, vrQ{1}, vrT{2}, vrAcc{3}, vrBias{4},
    vrQfull{5}, vrAdmit{6};
constexpr Vmr vmStage{0}, vmAdmit{1};

/** Fixed CP/host cost of returning the top-k over the RSP FIFO. */
constexpr double returnTopkCycles = 7000.0;

/** CP merge cost per score-VR candidate set. */
constexpr double mergeCyclesPerVr = 100.0;

/**
 * On-chip ingest handshake for one streamed 64 KiB tile: DMA chain
 * setup plus the L2 -> L1 wide move. The stream itself runs at the
 * simulated HBM rate (timed separately); coalesced descriptor
 * chains (opt2) amortize the chain setup over two tiles.
 */
double
ingestCycles(const apu::TimingParams &t, bool coalesce)
{
    double init = static_cast<double>(t.move.dmaL4L2Init);
    if (coalesce)
        init /= 2.0;
    return init + t.control.dmaDescriptor + t.move.dmaL2L1;
}

/** Run a shape-invariant loop: all iterations in Functional mode,
 * one accounted iteration times n otherwise. */
template <typename Fn>
void
timedLoop(ApuCore &core, size_t n, Fn fn)
{
    if (n == 0)
        return;
    if (core.functional()) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
    } else {
        ScopedRepeat rep(core.stats(), static_cast<double>(n));
        fn(0);
    }
}

/** Stage timing helper: capture cycle deltas. */
struct StageTimer
{
    explicit StageTimer(ApuCore &core) : core(core) {}

    double
    lap()
    {
        double now = core.stats().cycles();
        double delta = now - last;
        last = now;
        return delta;
    }

    ApuCore &core;
    double last = 0.0;
};

/** Merge per-VR candidates into the global top-k. */
std::vector<Hit>
mergeHits(std::vector<Hit> all, size_t k)
{
    std::sort(all.begin(), all.end(), [](const Hit &a, const Hit &b) {
        if (a.score != b.score)
            return a.score > b.score;
        return a.id < b.id;
    });
    if (all.size() > k)
        all.resize(k);
    return all;
}

/** Biased-u16 score back to a signed dot product. */
float
unbias(uint16_t biased)
{
    return static_cast<float>(
        static_cast<int16_t>(biased ^ 0x8000));
}

/**
 * Extract the top-k of the score VR (biased u16) with the
 * associative max search, clearing each winner. Returns candidates
 * with VR-local indices; charges accrue to the caller's ledger.
 */
std::vector<Hit>
extractTopK(Gvml &g, ApuCore &core, Vr score, size_t k,
            size_t valid_elems)
{
    std::vector<Hit> out;
    for (size_t i = 0; i < k; ++i) {
        auto mx = g.maxIndexU16(score);
        core.rspSet(score.idx, core.functional() ? mx.index : 0, 0);
        if (core.functional() && mx.index < valid_elems &&
            mx.value != 0) {
            out.push_back({unbias(mx.value), mx.index});
        }
    }
    core.chargeRaw(mergeCyclesPerVr);
    return out;
}

/**
 * Seconds of the embedding stream hidden by double-buffered
 * streaming (RagBatchOptions::overlapStream) over an n-supertile
 * pass. With per-supertile stream time ps = stream/n and compute
 * pc = calc/n, the overlapped schedule costs
 *   stream/n + (n-1)*max(ps, pc) + calc/n + n*sync
 * so the hidden portion is
 *   hidden = stream + calc - overlapped
 *          = (n-1)*min(ps, pc) - n*sync       (clamped at 0).
 * Bound — why RagStageLatency::total()'s unclamped subtraction is
 * safe at any n: (n-1)*min(ps, pc) <= (n-1)*ps < n*ps = stream, and
 * symmetrically < calc; subtracting the sync term only shrinks it.
 * In particular a single ragged supertile (n = 1, the common case
 * for IVF's short probe-restricted streams) hides exactly 0.
 */
double
overlapHiddenSeconds(ApuDevice &dev, const apu::TimingParams &t,
                     double stream_s, double calc_s,
                     size_t supertiles)
{
    if (supertiles == 0)
        return 0.0;
    double n = static_cast<double>(supertiles);
    double per_stream = stream_s / n;
    double per_calc = calc_s / n;
    double sync =
        dev.cyclesToSeconds(
            static_cast<double>(t.move.pipeSyncL4L1)) *
        n;
    double overlapped = per_stream +
        (n - 1.0) * std::max(per_stream, per_calc) + per_calc +
        sync;
    double hidden = std::max(0.0, stream_s + calc_s - overlapped);
    cisram_assert(hidden <= stream_s && hidden <= calc_s,
                  "overlap hides more than a stage it overlaps");
    return hidden;
}

} // namespace

RagRetriever::RagRetriever(ApuDevice &dev, dram::DramSystem &hbm,
                           RagCorpusSpec corpus, size_t top_k,
                           unsigned core_idx)
    : dev(dev), hbm(hbm), corpus_(corpus), topK(top_k),
      coreIdx_(core_idx)
{
    cisram_assert(top_k >= 1 && top_k <= 64, "unreasonable top-k");
    cisram_assert(isPow2(dev.spec().vrLength));
    cisram_assert(core_idx < dev.numCores(), "core index OOB");
    // The return-topk stage stages result ids here (one slot per
    // batch lane) for the host to read back over PCIe.
    idsAddr_ = dev.allocator().alloc(
        8 * topK * sizeof(uint32_t), 512);
}

RagRetriever::~RagRetriever()
{
    dev.allocator().free(idsAddr_);
}

void
RagRetriever::publishTopkIds(RagRunResult &res, size_t slot)
{
    res.topkIdsAddr =
        idsAddr_ + slot * topK * sizeof(uint32_t);
    res.topkIdsCount = res.hits.size();
    if (res.hits.empty())
        return;
    std::vector<uint32_t> ids(res.hits.size());
    for (size_t i = 0; i < res.hits.size(); ++i)
        ids[i] = static_cast<uint32_t>(res.hits[i].id);
    dev.l4().write(res.topkIdsAddr, ids.data(),
                   ids.size() * sizeof(uint32_t));
}

RagRunResult
RagRetriever::retrieve(const std::vector<int16_t> &query,
                       RagVariant variant, uint64_t corpus_seed)
{
    cisram_assert(query.size() == corpus_.dim, "query dim mismatch");
    cisram_assert(corpus_.epochView == nullptr,
                  "epoch-overlaid corpora serve via retrieveBatch");
    switch (variant) {
      case RagVariant::NoOpt:
        return retrieveSpatial(query, false, false, corpus_seed);
      case RagVariant::Opt2:
        return retrieveSpatial(query, true, false, corpus_seed);
      case RagVariant::Opt3:
        return retrieveSpatial(query, false, true, corpus_seed);
      case RagVariant::Opt1:
        return retrieveTemporal(query, false, false, corpus_seed);
      case RagVariant::AllOpts:
        return retrieveTemporal(query, true, true, corpus_seed);
    }
    cisram_panic("unknown variant");
}

RagRunResult
RagRetriever::retrieveGf16(const std::vector<int16_t> &query,
                           uint64_t corpus_seed)
{
    cisram_assert(query.size() == corpus_.dim, "query dim mismatch");
    cisram_assert(corpus_.epochView == nullptr,
                  "epoch-overlaid corpora serve via retrieveBatch");
    ApuCore &core = dev.core(coreIdx_);
    Gvml g(core);
    const auto &t = dev.timing();
    size_t l = dev.spec().vrLength;
    size_t dim = corpus_.dim;
    size_t chunks = corpus_.numChunks;
    size_t supertiles = divCeil(chunks, l);
    bool fnl = core.functional();

    RagRunResult res;
    res.dramBytes = static_cast<double>(chunks) *
        static_cast<double>(dim) * 2.0;
    res.cacheBytes = 2.0 * res.dramBytes;
    res.stages.loadEmbedding = hbm.streamReadSeconds(
        0, static_cast<uint64_t>(res.dramBytes));

    // Dimension-major gf16 planes.
    uint64_t emb_addr = 0;
    if (fnl) {
        cisram_assert(chunks <= (size_t(1) << 21),
                      "functional corpus too large");
        emb_addr =
            dev.allocator().alloc(supertiles * dim * l * 2, 512);
        std::vector<uint16_t> plane(l);
        for (size_t st = 0; st < supertiles; ++st) {
            for (size_t d = 0; d < dim; ++d) {
                std::fill(plane.begin(), plane.end(), 0);
                size_t valid = std::min(l, chunks - st * l);
                for (size_t j = 0; j < valid; ++j) {
                    int16_t v = baseline::embeddingValueFor(
                        corpus_, corpus_.firstChunk + st * l + j, d,
                        corpus_seed);
                    plane[j] = GsiFloat16::fromFloat(
                                   static_cast<float>(v))
                                   .bits();
                }
                dev.l4().write(emb_addr + (st * dim + d) * l * 2,
                               plane.data(), l * 2);
            }
        }
    }

    core.stats().reset();
    StageTimer timer(core);

    core.dmaL4ToL3(0, 0, dim * 2); // bf query layout in L3
    res.stages.loadQuery = dev.cyclesToSeconds(timer.lap());

    const Vr vrOrd{6}, vrS1{7}, vrS2{8};
    std::vector<Hit> candidates;
    double topk_cycles = 0.0;
    for (size_t st = 0; st < (fnl ? supertiles : size_t(1)); ++st) {
        double st_factor =
            fnl ? 1.0 : static_cast<double>(supertiles);
        ScopedRepeat strep(core.stats(), st_factor);

        g.cpyImm16(vrAcc, 0); // gf16 +0.0
        timedLoop(core, dim, [&](size_t d) {
            core.chargeRaw(ingestCycles(t, true));
            if (fnl) {
                auto &slot = core.l1().slot(vmStage.idx);
                dev.l4().read(emb_addr + (st * dim + d) * l * 2,
                              slot.data(), l * 2);
            }
            g.load16(vrEmb, vmStage);
            g.macImmGf16(vrEmb, vrQ, vrT, vrAcc,
                         GsiFloat16::fromFloat(
                             static_cast<float>(query[d]))
                             .bits());
        });
        g.orderGf16(vrOrd, vrAcc, vrS1, vrS2);

        double before = core.stats().cycles();
        size_t valid = fnl ? std::min(l, chunks - st * l) : l;
        // Extract against the ordered keys; recover the gf16 score
        // from the accumulator at the winning index.
        for (size_t k = 0; k < topK; ++k) {
            auto mx = g.maxIndexU16(vrOrd);
            core.rspSet(vrOrd.idx, fnl ? mx.index : 0, 0);
            if (fnl && mx.index < valid) {
                uint16_t bits = core.vr()[vrAcc.idx][mx.index];
                candidates.push_back(
                    {GsiFloat16::fromBits(bits).toFloat(),
                     st * l + mx.index});
            }
        }
        core.chargeRaw(mergeCyclesPerVr);
        topk_cycles += core.stats().cycles() - before;
    }
    double calc_total = timer.lap();
    res.stages.calcDistance =
        dev.cyclesToSeconds(calc_total - topk_cycles);
    res.stages.topkAggregation = dev.cyclesToSeconds(topk_cycles);
    res.computeSeconds = res.stages.calcDistance;
    core.chargeRaw(returnTopkCycles);
    res.stages.returnTopk = dev.cyclesToSeconds(timer.lap());

    if (fnl) {
        res.hits = mergeHits(std::move(candidates), topK);
        dev.allocator().free(emb_addr);
    }
    publishTopkIds(res, 0);
    res.status = hbm.takeFaultStatus();
    return res;
}

std::vector<RagRunResult>
RagRetriever::retrieveBatch(
    const std::vector<std::vector<int16_t>> &queries,
    uint64_t corpus_seed, RagBatchOptions opts)
{
    size_t batch = queries.size();
    cisram_assert(batch >= 1 && batch <= 8,
                  "batch size must be 1..8 (one accumulator VR per "
                  "query)");
    for (const auto &q : queries)
        cisram_assert(q.size() == corpus_.dim, "query dim mismatch");

    if (opts.ivf != nullptr && opts.search.nprobe > 0)
        return retrieveIvfBatch(queries, corpus_seed, opts);

    ApuCore &core = dev.core(coreIdx_);
    Gvml g(core);
    const auto &t = dev.timing();
    size_t l = dev.spec().vrLength;
    size_t dim = corpus_.dim;
    size_t chunks = corpus_.numChunks;
    size_t supertiles = divCeil(chunks, l);
    bool fnl = core.functional();
    uint16_t filter = opts.search.filterMask;
    bool filtered = filter != baseline::kFilterAll;
    bool mutated = corpus_.epochView != nullptr;
    if (mutated) {
        cisram_assert(chunks == corpus_.epochView->baseChunks +
                                    corpus_.epochView->inserted.size(),
                      "epoch view / spec chunk count mismatch");
    }

    // Accumulators live in VRs 8..15; working registers below.
    auto acc = [](size_t q2) {
        return Vr(8 + static_cast<unsigned>(q2));
    };

    std::vector<RagRunResult> results(batch);
    // The predicate bitmask plane (one u16 mark per chunk) streams
    // alongside the corpus when a filter is armed: 1/dim of the
    // embedding bytes — the "nearly free" part of filtered search.
    // An epoch-overlaid corpus streams a tombstone plane of the same
    // shape, so masking deletes costs the same near-nothing.
    double shared_dram = static_cast<double>(chunks) *
        (static_cast<double>(dim) + (filtered ? 1.0 : 0.0) +
         (mutated ? 1.0 : 0.0)) * 2.0;

    // One pass over the corpus serves the whole batch.
    dram::DramSystem &mem = hbm;
    double load_emb = mem.streamReadSeconds(
        0, static_cast<uint64_t>(shared_dram));

    uint64_t emb_addr = 0, adm_addr = 0;
    if (fnl) {
        cisram_assert(chunks <= (size_t(1) << 21),
                      "functional corpus too large");
        emb_addr =
            dev.allocator().alloc(supertiles * dim * l * 2, 512);
        adm_addr = dev.allocator().alloc(supertiles * l * 2, 512);
        std::vector<uint16_t> plane(l);
        for (size_t st = 0; st < supertiles; ++st) {
            size_t valid = std::min(l, chunks - st * l);
            for (size_t d = 0; d < dim; ++d) {
                std::fill(plane.begin(), plane.end(), 0);
                for (size_t j = 0; j < valid; ++j)
                    plane[j] = static_cast<uint16_t>(
                        baseline::embeddingValueFor(
                            corpus_, corpus_.globalChunk(st * l + j),
                            d, corpus_seed));
                dev.l4().write(emb_addr + (st * dim + d) * l * 2,
                               plane.data(), l * 2);
            }
            // Admit marks: lane validity AND the metadata predicate
            // AND epoch liveness (tombstoned chunks keep their staged
            // position but never match). Padding lanes are knocked
            // out here so a ragged tail can never outrank real
            // (possibly negative) scores with its biased-zero dot
            // products.
            std::fill(plane.begin(), plane.end(), 0);
            for (size_t j = 0; j < valid; ++j) {
                uint64_t chunk = corpus_.globalChunk(st * l + j);
                plane[j] =
                    (corpus_.chunkLive(st * l + j) &&
                     (!filtered ||
                      baseline::passesFilter(
                          filter,
                          baseline::chunkLabel(chunk, corpus_seed))))
                    ? 1
                    : 0;
            }
            dev.l4().write(adm_addr + st * l * 2, plane.data(),
                           l * 2);
        }
    }

    core.stats().reset();
    StageTimer timer(core);

    // Queries staged into the CP's L3 (broadcast-friendly layout).
    core.dmaL4ToL3(0, 0, batch * dim * 2);
    double load_query = dev.cyclesToSeconds(timer.lap());

    // The bias constant prepares the score transform, not the query
    // transfer: it charges to calc-distance (the next lap), keeping
    // load-query a pure measure of staging the query vectors.
    g.cpyImm16(vrBias, 0x8000);

    std::vector<std::vector<Hit>> candidates(batch);
    double topk_cycles = 0.0;
    for (size_t st = 0; st < (fnl ? supertiles : size_t(1)); ++st) {
        double st_factor =
            fnl ? 1.0 : static_cast<double>(supertiles);
        ScopedRepeat strep(core.stats(), st_factor);

        for (size_t q2 = 0; q2 < batch; ++q2)
            g.cpyImm16(acc(q2), 0);
        std::vector<Vr> accs;
        accs.reserve(batch);
        for (size_t q2 = 0; q2 < batch; ++q2)
            accs.push_back(acc(q2));
        timedLoop(core, dim, [&](size_t d) {
            core.chargeRaw(ingestCycles(t, true));
            if (fnl) {
                auto &slot = core.l1().slot(vmStage.idx);
                dev.l4().read(emb_addr + (st * dim + d) * l * 2,
                              slot.data(), l * 2);
            }
            g.load16(vrEmb, vmStage);
            uint16_t imms[8];
            for (size_t q2 = 0; q2 < batch; ++q2)
                imms[q2] =
                    static_cast<uint16_t>(queries[q2][d]);
            g.macImmS16(vrEmb, vrQ, vrT, accs.data(), imms,
                        batch);
        });

        // AND the admit plane (validity + metadata predicate) into
        // the match mask: one negated-mask select per score VR
        // writes the masked-out sentinel (biased 0x0000, a dot of
        // -32768 no int16 embedding can produce) into excluded
        // lanes, which extractTopK already skips.
        core.chargeRaw(ingestCycles(t, true));
        if (fnl) {
            auto &slot = core.l1().slot(vmAdmit.idx);
            dev.l4().read(adm_addr + st * l * 2, slot.data(),
                          l * 2);
        }
        g.load16(vrAdmit, vmAdmit);

        double before = core.stats().cycles();
        size_t valid = fnl ? std::min(l, chunks - st * l) : l;
        for (size_t q2 = 0; q2 < batch; ++q2) {
            g.xor16(acc(q2), acc(q2), vrBias);
            g.cpyImm16Nmsk(acc(q2), 0x0000, vrAdmit);
            auto part = extractTopK(g, core, acc(q2), topK, valid);
            for (auto &h : part)
                h.id += st * l;
            candidates[q2].insert(candidates[q2].end(),
                                  part.begin(), part.end());
        }
        topk_cycles += core.stats().cycles() - before;
    }
    double calc_total = timer.lap();
    core.chargeRaw(returnTopkCycles * static_cast<double>(batch));
    double return_total = dev.cyclesToSeconds(timer.lap());
    double calc_s = dev.cyclesToSeconds(calc_total - topk_cycles);

    // Overlapped corpus streaming: with both DMA engines active, the
    // HBM stream for supertile st+1 lands in the spare L4 buffer
    // while the VXU scores supertile st. The stage latencies keep
    // their full (sequential) attribution; only overlapHidden — the
    // portion of the stream the pipeline hides, provably bounded by
    // both loadEmbedding and calcDistance (see overlapHiddenSeconds)
    // — feeds back into total().
    double overlap_hidden = 0.0;
    if (opts.overlapStream)
        overlap_hidden = overlapHiddenSeconds(dev, t, load_emb,
                                              calc_s, supertiles);

    double b = static_cast<double>(batch);
    for (size_t q2 = 0; q2 < batch; ++q2) {
        auto &r = results[q2];
        r.stages.loadEmbedding = load_emb / b;
        r.stages.loadQuery = load_query / b;
        r.stages.calcDistance = calc_s / b;
        r.stages.topkAggregation =
            dev.cyclesToSeconds(topk_cycles) / b;
        r.stages.returnTopk = return_total / b;
        r.stages.overlapHidden = overlap_hidden / b;
        r.computeSeconds = r.stages.calcDistance;
        r.dramBytes = shared_dram / b;
        r.cacheBytes = 2.0 * shared_dram / b;
        if (fnl)
            r.hits = mergeHits(std::move(candidates[q2]), topK);
        publishTopkIds(r, q2);
    }
    if (fnl) {
        dev.allocator().free(emb_addr);
        dev.allocator().free(adm_addr);
    }
    // One corpus pass serves the whole batch, so an uncorrectable
    // ECC error taints every result in it.
    Status ecc = hbm.takeFaultStatus();
    if (!ecc.ok())
        for (auto &r : results)
            r.status = ecc;
    return results;
}

std::vector<RagRunResult>
RagRetriever::retrieveIvfBatch(
    const std::vector<std::vector<int16_t>> &queries,
    uint64_t corpus_seed, const RagBatchOptions &opts)
{
    const baseline::IvfClustering &cl = *opts.ivf;
    size_t batch = queries.size();
    ApuCore &core = dev.core(coreIdx_);
    Gvml g(core);
    const auto &t = dev.timing();
    size_t l = dev.spec().vrLength;
    size_t dim = corpus_.dim;
    size_t K = cl.numLists();
    size_t nprobe = std::min(opts.search.nprobe, K);
    uint16_t filter = opts.search.filterMask;
    bool filtered = filter != baseline::kFilterAll;
    bool fnl = core.functional();

    cisram_assert(cl.dim() == dim, "clustering dim mismatch");
    cisram_assert(corpus_.epochView == nullptr,
                  "IVF probing over an epoch-overlaid corpus is not "
                  "supported");
    cisram_assert(cl.numChunks() == corpus_.numChunks,
                  "clustering built for a different corpus");
    cisram_assert(K <= l, "centroid table exceeds one VR");

    auto acc = [](size_t q2) {
        return Vr(8 + static_cast<unsigned>(q2));
    };

    // CP-side probe selection mirror of the golden index. The
    // device's coarse pass below runs the same selection on the VXU;
    // in functional mode the two are asserted identical, which is
    // what makes the device-vs-golden bit-compare meaningful.
    std::vector<std::vector<uint32_t>> probes(batch);
    for (size_t q2 = 0; q2 < batch; ++q2)
        probes[q2] = cl.selectProbes(queries[q2].data(), nprobe);

    // Union of probed lists in ascending list order; each list
    // streams once per batch and only its probing queries extract.
    std::vector<std::vector<size_t>> byList(K);
    for (size_t q2 = 0; q2 < batch; ++q2)
        for (uint32_t list : probes[q2])
            byList[list].push_back(q2);
    std::vector<uint32_t> lists;
    for (uint32_t j = 0; j < K; ++j)
        if (!byList[j].empty())
            lists.push_back(j);

    const auto &offsets = cl.listOffsets();
    const auto &order = cl.order();
    uint64_t probed_chunks = 0;
    size_t total_supertiles = 0;
    for (uint32_t list : lists) {
        probed_chunks += cl.listSize(list);
        total_supertiles += divCeil(cl.listSize(list), l);
    }

    std::vector<RagRunResult> results(batch);
    // Stream budget: centroid table + the probed lists' embeddings,
    // plus their predicate planes when a filter is armed. The
    // exhaustive pass streams chunks*dim*2; the ratio is the scan
    // reduction bench_ivf_recall reports.
    double shared_dram =
        (static_cast<double>(K) * dim +
         static_cast<double>(probed_chunks) *
             (static_cast<double>(dim) + (filtered ? 1.0 : 0.0))) *
        2.0;
    double load_emb = hbm.streamReadSeconds(
        0, static_cast<uint64_t>(shared_dram));

    // Functional staging: centroid planes (+ a lane-validity plane
    // for the coarse pass), then each probed list's ragged supertile
    // planes with admit marks. Chunk j of supertile st of a list is
    // order[offsets[list] + st*l + j] — ascending within the list,
    // which keeps per-supertile tie extraction exact.
    uint64_t cent_addr = 0, cval_addr = 0, emb_addr = 0,
             adm_addr = 0;
    if (fnl) {
        cisram_assert(corpus_.numChunks <= (size_t(1) << 21),
                      "functional corpus too large");
        cent_addr = dev.allocator().alloc(dim * l * 2, 512);
        cval_addr = dev.allocator().alloc(l * 2, 512);
        std::vector<uint16_t> plane(l);
        const auto &cents = cl.centroids();
        for (size_t d = 0; d < dim; ++d) {
            std::fill(plane.begin(), plane.end(), 0);
            for (size_t j = 0; j < K; ++j)
                plane[j] = static_cast<uint16_t>(cents[j * dim + d]);
            dev.l4().write(cent_addr + d * l * 2, plane.data(),
                           l * 2);
        }
        std::fill(plane.begin(), plane.end(), 0);
        for (size_t j = 0; j < K; ++j)
            plane[j] = 1;
        dev.l4().write(cval_addr, plane.data(), l * 2);

        size_t st_alloc = std::max<size_t>(1, total_supertiles);
        emb_addr =
            dev.allocator().alloc(st_alloc * dim * l * 2, 512);
        adm_addr = dev.allocator().alloc(st_alloc * l * 2, 512);
        size_t gst = 0;
        std::vector<int16_t> rows;
        for (uint32_t list : lists) {
            size_t lsz = cl.listSize(list);
            for (size_t st = 0; st < divCeil(lsz, l); ++st, ++gst) {
                size_t valid = std::min(l, lsz - st * l);
                rows.resize(valid * dim);
                for (size_t j = 0; j < valid; ++j)
                    baseline::genEmbeddingRow(
                        corpus_,
                        corpus_.firstChunk +
                            order[offsets[list] + st * l + j],
                        corpus_seed, rows.data() + j * dim);
                for (size_t d = 0; d < dim; ++d) {
                    std::fill(plane.begin(), plane.end(), 0);
                    for (size_t j = 0; j < valid; ++j)
                        plane[j] = static_cast<uint16_t>(
                            rows[j * dim + d]);
                    dev.l4().write(
                        emb_addr + (gst * dim + d) * l * 2,
                        plane.data(), l * 2);
                }
                std::fill(plane.begin(), plane.end(), 0);
                for (size_t j = 0; j < valid; ++j) {
                    uint64_t chunk = corpus_.firstChunk +
                        order[offsets[list] + st * l + j];
                    plane[j] =
                        (!filtered ||
                         baseline::passesFilter(
                             filter, baseline::chunkLabel(
                                         chunk, corpus_seed)))
                        ? 1
                        : 0;
                }
                dev.l4().write(adm_addr + gst * l * 2,
                               plane.data(), l * 2);
            }
        }
    }

    core.stats().reset();
    StageTimer timer(core);

    core.dmaL4ToL3(0, 0, batch * dim * 2);
    double load_query = dev.cyclesToSeconds(timer.lap());

    g.cpyImm16(vrBias, 0x8000);

    std::vector<Vr> accsAll;
    accsAll.reserve(batch);
    for (size_t q2 = 0; q2 < batch; ++q2)
        accsAll.push_back(acc(q2));
    std::vector<std::vector<Hit>> candidates(batch);
    double topk_cycles = 0.0;

    // ---- coarse centroid pass --------------------------------------
    // The centroid table (K x dim int16, ~46 KiB at K = 64) stages
    // through L3/L4 and streams as dim K-wide planes: one mini
    // supertile scoring lists instead of chunks, reusing the exact
    // MAC/bias/extract machinery of the main loop.
    for (size_t q2 = 0; q2 < batch; ++q2)
        g.cpyImm16(acc(q2), 0);
    timedLoop(core, dim, [&](size_t d) {
        core.chargeRaw(ingestCycles(t, true));
        if (fnl) {
            auto &slot = core.l1().slot(vmStage.idx);
            dev.l4().read(cent_addr + d * l * 2, slot.data(),
                          l * 2);
        }
        g.load16(vrEmb, vmStage);
        uint16_t imms[8];
        for (size_t q2 = 0; q2 < batch; ++q2)
            imms[q2] = static_cast<uint16_t>(queries[q2][d]);
        g.macImmS16(vrEmb, vrQ, vrT, accsAll.data(), imms, batch);
    });
    core.chargeRaw(ingestCycles(t, true));
    if (fnl) {
        auto &slot = core.l1().slot(vmAdmit.idx);
        dev.l4().read(cval_addr, slot.data(), l * 2);
    }
    g.load16(vrAdmit, vmAdmit);
    {
        double before = core.stats().cycles();
        for (size_t q2 = 0; q2 < batch; ++q2) {
            g.xor16(acc(q2), acc(q2), vrBias);
            g.cpyImm16Nmsk(acc(q2), 0x0000, vrAdmit);
            std::vector<uint32_t> dev_probes;
            for (size_t p = 0; p < nprobe; ++p) {
                auto mx = g.maxIndexU16(acc(q2));
                core.rspSet(acc(q2).idx, fnl ? mx.index : 0, 0);
                if (fnl && mx.index < K && mx.value != 0)
                    dev_probes.push_back(
                        static_cast<uint32_t>(mx.index));
            }
            if (fnl)
                cisram_assert(
                    dev_probes == probes[q2],
                    "device coarse pass diverged from golden "
                    "probe selection");
        }
        core.chargeRaw(mergeCyclesPerVr);
        topk_cycles += core.stats().cycles() - before;
    }

    // ---- probe-restricted streaming --------------------------------
    size_t gst = 0;
    for (uint32_t list : lists) {
        const auto &qset = byList[list];
        size_t lsz = cl.listSize(list);
        std::vector<Vr> accs;
        accs.reserve(qset.size());
        for (size_t q2 : qset)
            accs.push_back(acc(q2));
        for (size_t st = 0; st < divCeil(lsz, l); ++st, ++gst) {
            for (size_t q2 : qset)
                g.cpyImm16(acc(q2), 0);
            timedLoop(core, dim, [&](size_t d) {
                core.chargeRaw(ingestCycles(t, true));
                if (fnl) {
                    auto &slot = core.l1().slot(vmStage.idx);
                    dev.l4().read(
                        emb_addr + (gst * dim + d) * l * 2,
                        slot.data(), l * 2);
                }
                g.load16(vrEmb, vmStage);
                uint16_t imms[8];
                for (size_t i = 0; i < qset.size(); ++i)
                    imms[i] = static_cast<uint16_t>(
                        queries[qset[i]][d]);
                g.macImmS16(vrEmb, vrQ, vrT, accs.data(), imms,
                            qset.size());
            });
            core.chargeRaw(ingestCycles(t, true));
            if (fnl) {
                auto &slot = core.l1().slot(vmAdmit.idx);
                dev.l4().read(adm_addr + gst * l * 2, slot.data(),
                              l * 2);
            }
            g.load16(vrAdmit, vmAdmit);

            double before = core.stats().cycles();
            size_t valid = fnl ? std::min(l, lsz - st * l) : l;
            for (size_t q2 : qset) {
                g.xor16(acc(q2), acc(q2), vrBias);
                g.cpyImm16Nmsk(acc(q2), 0x0000, vrAdmit);
                auto part =
                    extractTopK(g, core, acc(q2), topK, valid);
                for (auto &h : part)
                    h.id = order[offsets[list] + st * l + h.id];
                candidates[q2].insert(candidates[q2].end(),
                                      part.begin(), part.end());
            }
            topk_cycles += core.stats().cycles() - before;
        }
    }
    double calc_total = timer.lap();
    core.chargeRaw(returnTopkCycles * static_cast<double>(batch));
    double return_total = dev.cyclesToSeconds(timer.lap());
    double calc_s = dev.cyclesToSeconds(calc_total - topk_cycles);

    double overlap_hidden = 0.0;
    if (opts.overlapStream)
        overlap_hidden = overlapHiddenSeconds(
            dev, t, load_emb, calc_s, total_supertiles);

    double b = static_cast<double>(batch);
    for (size_t q2 = 0; q2 < batch; ++q2) {
        auto &r = results[q2];
        r.stages.loadEmbedding = load_emb / b;
        r.stages.loadQuery = load_query / b;
        r.stages.calcDistance = calc_s / b;
        r.stages.topkAggregation =
            dev.cyclesToSeconds(topk_cycles) / b;
        r.stages.returnTopk = return_total / b;
        r.stages.overlapHidden = overlap_hidden / b;
        r.computeSeconds = r.stages.calcDistance;
        r.dramBytes = shared_dram / b;
        r.cacheBytes = 2.0 * shared_dram / b;
        if (fnl)
            r.hits = mergeHits(std::move(candidates[q2]), topK);
        publishTopkIds(r, q2);
    }
    if (fnl) {
        dev.allocator().free(cent_addr);
        dev.allocator().free(cval_addr);
        dev.allocator().free(emb_addr);
        dev.allocator().free(adm_addr);
    }
    Status ecc = hbm.takeFaultStatus();
    if (!ecc.ok())
        for (auto &r : results)
            r.status = ecc;
    return results;
}

RagRunResult
RagRetriever::retrieveSpatial(const std::vector<int16_t> &query,
                              bool coalesce, bool bf_query,
                              uint64_t corpus_seed)
{
    ApuCore &core = dev.core(coreIdx_);
    Gvml g(core);
    const auto &t = dev.timing();
    size_t l = dev.spec().vrLength;
    size_t pad = size_t(1) << log2Ceil(corpus_.dim);
    size_t cpt = l / pad; // chunks per tile
    size_t chunks = corpus_.numChunks;
    size_t full_tiles = chunks / cpt;
    size_t rem = chunks % cpt;
    size_t score_vrs = divCeil(chunks, l);

    RagRunResult res;
    res.dramBytes =
        static_cast<double>(chunks) * static_cast<double>(pad) * 2.0;
    res.cacheBytes = 2.0 * res.dramBytes;

    // Off-chip embedding stream, timed by the HBM simulator.
    res.stages.loadEmbedding = hbm.streamReadSeconds(
        0, static_cast<uint64_t>(res.dramBytes));

    // Functional staging: padded chunk-major embeddings + query.
    uint64_t emb_addr = 0, q_addr = 0;
    bool fnl = core.functional();
    if (fnl) {
        cisram_assert(chunks <= (size_t(1) << 21),
                      "functional corpus too large");
        emb_addr = dev.allocator().alloc(
            divCeil(chunks, cpt) * l * 2, 512);
        std::vector<uint16_t> tile(l);
        for (size_t tl = 0; tl < divCeil(chunks, cpt); ++tl) {
            std::fill(tile.begin(), tile.end(), 0);
            for (size_t c = 0; c < cpt; ++c) {
                size_t chunk = tl * cpt + c;
                if (chunk >= chunks)
                    break;
                for (size_t d = 0; d < corpus_.dim; ++d)
                    tile[c * pad + d] = static_cast<uint16_t>(
                        baseline::embeddingValueFor(
                            corpus_, corpus_.firstChunk + chunk, d,
                            corpus_seed));
            }
            dev.l4().write(emb_addr + tl * l * 2, tile.data(),
                           l * 2);
        }
        q_addr = dev.allocator().alloc(pad * 2, 512);
        std::vector<uint16_t> qpad(pad, 0);
        for (size_t d = 0; d < corpus_.dim; ++d)
            qpad[d] = static_cast<uint16_t>(query[d]);
        dev.l4().write(q_addr, qpad.data(), pad * 2);
    }

    core.stats().reset();
    StageTimer timer(core);

    // ---- load query ------------------------------------------------
    core.dmaL4ToL2(q_addr, 0, pad * 2);
    core.dmaL2ToL1(vmStage.idx);
    g.load16(vrQ, vmStage);
    g.cpySubgrp16Grp(vrQ, vrQ, l, pad, 0);
    (void)bf_query; // no standalone effect on the spatial base
    res.stages.loadQuery = dev.cyclesToSeconds(timer.lap());
    // Bias setup charges to calc-distance (see retrieveBatch).
    g.cpyImm16(vrBias, 0x8000);

    // ---- distance calculation --------------------------------------
    // Group-head scores are scattered in the tile VR; the RSP FIFO
    // moves them one element at a time into the resident score VR
    // (the fine-grained element access the paper attributes to the
    // unoptimized mapping). When the score VR fills, its top-k is
    // extracted in place (charged to the aggregation stage).
    std::vector<Hit> candidates;
    double topk_cycles = 0.0;
    const Vr vrScore{6};
    size_t score_fill = 0; // elements in the current score VR
    size_t score_base = 0; // first chunk of the current score VR

    auto drain_scores = [&](bool force) {
        if (score_fill == 0 || (!force && score_fill < l))
            return;
        double before = core.stats().cycles();
        auto part = extractTopK(g, core, vrScore, topK, score_fill);
        for (auto &h : part)
            h.id += score_base;
        candidates.insert(candidates.end(), part.begin(),
                          part.end());
        // Clear the drained VR so stale scores never leak into the
        // next fill's partial extraction.
        g.cpyImm16(vrScore, 0);
        topk_cycles += core.stats().cycles() - before;
        score_base += score_fill;
        score_fill = 0;
    };

    auto do_tile = [&](size_t tile_idx, size_t chunk_count) {
        core.chargeRaw(ingestCycles(t, coalesce));
        if (fnl) {
            auto &slot = core.l1().slot(vmStage.idx);
            dev.l4().read(emb_addr + tile_idx * l * 2, slot.data(),
                          l * 2);
        }
        g.load16(vrEmb, vmStage);
        g.mulS16(vrT, vrEmb, vrQ);
        g.addSubgrpS16(vrT, vrT, pad, 1);
        g.xor16(vrT, vrT, vrBias);
        // One RSP transfer per produced score.
        core.chargeRaw(static_cast<double>(chunk_count) *
                       t.move.pioStorePerElem);
        if (fnl) {
            auto &score = core.vr()[vrScore.idx];
            const auto &tvals = core.vr()[vrT.idx];
            for (size_t c = 0; c < chunk_count; ++c)
                score[(tile_idx * cpt + c) % l] = tvals[c * pad];
        }
    };

    if (fnl) {
        // Score VRs fill every l/cpt tiles; drain as they fill.
        for (size_t i = 0; i < full_tiles; ++i) {
            do_tile(i, cpt);
            score_fill += cpt;
            drain_scores(false);
        }
        if (rem) {
            do_tile(full_tiles, rem);
            score_fill += rem;
        }
        drain_scores(true);
    } else {
        timedLoop(core, full_tiles,
                  [&](size_t i) { do_tile(i, cpt); });
        if (rem)
            do_tile(full_tiles, rem);
        // One extraction pass per (possibly partial) score VR.
        double before = core.stats().cycles();
        {
            apu::ScopedRepeat rep(core.stats(),
                                  static_cast<double>(score_vrs));
            extractTopK(g, core, vrScore, topK, l);
        }
        topk_cycles += core.stats().cycles() - before;
    }

    double calc_total = timer.lap();
    res.stages.calcDistance =
        dev.cyclesToSeconds(calc_total - topk_cycles);
    res.stages.topkAggregation = dev.cyclesToSeconds(topk_cycles);
    res.computeSeconds = res.stages.calcDistance;

    // ---- return -------------------------------------------------------
    core.chargeRaw(returnTopkCycles);
    res.stages.returnTopk = dev.cyclesToSeconds(timer.lap());

    if (fnl) {
        res.hits = mergeHits(std::move(candidates), topK);
        dev.allocator().free(emb_addr);
        dev.allocator().free(q_addr);
    }
    publishTopkIds(res, 0);
    res.status = hbm.takeFaultStatus();
    return res;
}

RagRunResult
RagRetriever::retrieveTemporal(const std::vector<int16_t> &query,
                               bool coalesce, bool bf_query,
                               uint64_t corpus_seed)
{
    ApuCore &core = dev.core(coreIdx_);
    Gvml g(core);
    const auto &t = dev.timing();
    size_t l = dev.spec().vrLength;
    size_t dim = corpus_.dim;
    size_t chunks = corpus_.numChunks;
    size_t supertiles = divCeil(chunks, l);

    RagRunResult res;
    res.dramBytes = static_cast<double>(chunks) *
        static_cast<double>(dim) * 2.0;
    res.cacheBytes = 2.0 * res.dramBytes;
    res.stages.loadEmbedding = hbm.streamReadSeconds(
        0, static_cast<uint64_t>(res.dramBytes));

    // Functional staging: dimension-major planes per super-tile.
    uint64_t emb_addr = 0, q_addr = 0;
    bool fnl = core.functional();
    if (fnl) {
        cisram_assert(chunks <= (size_t(1) << 21),
                      "functional corpus too large");
        emb_addr =
            dev.allocator().alloc(supertiles * dim * l * 2, 512);
        std::vector<uint16_t> plane(l);
        for (size_t st = 0; st < supertiles; ++st) {
            for (size_t d = 0; d < dim; ++d) {
                std::fill(plane.begin(), plane.end(), 0);
                size_t valid = std::min(l, chunks - st * l);
                for (size_t j = 0; j < valid; ++j)
                    plane[j] = static_cast<uint16_t>(
                        baseline::embeddingValueFor(
                            corpus_, corpus_.firstChunk + st * l + j,
                            d, corpus_seed));
                dev.l4().write(emb_addr + (st * dim + d) * l * 2,
                               plane.data(), l * 2);
            }
        }
        q_addr = dev.allocator().alloc(l * 2, 512);
        std::vector<uint16_t> qv(l, 0);
        for (size_t d = 0; d < dim; ++d)
            qv[d] = static_cast<uint16_t>(query[d]);
        dev.l4().write(q_addr, qv.data(), l * 2);
    }

    core.stats().reset();
    StageTimer timer(core);

    // ---- load query -------------------------------------------------
    core.dmaL4ToL2(q_addr, 0, dim * 2);
    core.dmaL2ToL1(vmStage.idx);
    g.load16(vrQfull, vmStage);
    if (bf_query) {
        // Broadcast-friendly layout: the query is staged into the
        // CP's L3 so scalars broadcast as immediates.
        core.dmaL4ToL3(q_addr, 0, dim * 2);
    }
    res.stages.loadQuery = dev.cyclesToSeconds(timer.lap());
    // Bias setup charges to calc-distance (see retrieveBatch).
    g.cpyImm16(vrBias, 0x8000);

    // ---- distance calculation ----------------------------------------
    std::vector<Hit> candidates;
    double topk_cycles = 0.0;
    for (size_t st = 0; st < (fnl ? supertiles : size_t(1)); ++st) {
        double st_factor =
            fnl ? 1.0 : static_cast<double>(supertiles);
        ScopedRepeat strep(core.stats(), st_factor);

        g.cpyImm16(vrAcc, 0);
        timedLoop(core, dim, [&](size_t d) {
            core.chargeRaw(ingestCycles(t, coalesce));
            if (fnl) {
                auto &slot = core.l1().slot(vmStage.idx);
                dev.l4().read(emb_addr + (st * dim + d) * l * 2,
                              slot.data(), l * 2);
            }
            g.load16(vrEmb, vmStage);
            if (bf_query) {
                uint16_t imm = static_cast<uint16_t>(query[d]);
                g.macImmS16(vrEmb, vrQ, vrT, &vrAcc, &imm, 1);
            } else {
                g.cpySubgrp16Grp(vrQ, vrQfull, l, 1, d);
                g.mulS16(vrT, vrEmb, vrQ);
                g.addS16(vrAcc, vrAcc, vrT);
            }
        });
        g.xor16(vrAcc, vrAcc, vrBias);

        // Inline per-super-tile top-k (scores stay resident);
        // cycles re-attributed to the aggregation stage below.
        double before = core.stats().cycles();
        size_t valid = fnl ? std::min(l, chunks - st * l) : l;
        auto part = extractTopK(g, core, vrAcc, topK, valid);
        for (auto &h : part)
            h.id += st * l;
        candidates.insert(candidates.end(), part.begin(),
                          part.end());
        topk_cycles += core.stats().cycles() - before;
    }
    double calc_total = timer.lap();
    res.stages.calcDistance =
        dev.cyclesToSeconds(calc_total - topk_cycles);
    res.stages.topkAggregation = dev.cyclesToSeconds(topk_cycles);
    res.computeSeconds = res.stages.calcDistance;

    // ---- return -------------------------------------------------------
    core.chargeRaw(returnTopkCycles);
    res.stages.returnTopk = dev.cyclesToSeconds(timer.lap());

    if (fnl) {
        res.hits = mergeHits(std::move(candidates), topK);
        dev.allocator().free(emb_addr);
        dev.allocator().free(q_addr);
    }
    publishTopkIds(res, 0);
    res.status = hbm.takeFaultStatus();
    return res;
}

} // namespace cisram::kernels
