#include "kernels/rag.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/gsifloat.hh"
#include "common/logging.hh"
#include "gvml/gvml.hh"

namespace cisram::kernels {

using apu::ApuCore;
using apu::ApuDevice;
using apu::ScopedRepeat;
using baseline::Hit;
using baseline::RagCorpusSpec;
using gvml::Gvml;
using gvml::Vmr;
using gvml::Vr;

const char *
ragVariantName(RagVariant v)
{
    switch (v) {
      case RagVariant::NoOpt:
        return "no-opt";
      case RagVariant::Opt1:
        return "opt1";
      case RagVariant::Opt2:
        return "opt2";
      case RagVariant::Opt3:
        return "opt3";
      case RagVariant::AllOpts:
        return "all-opts";
    }
    return "?";
}

namespace {

constexpr Vr vrEmb{0}, vrQ{1}, vrT{2}, vrAcc{3}, vrBias{4},
    vrQfull{5};
constexpr Vmr vmStage{0};

/** Fixed CP/host cost of returning the top-k over the RSP FIFO. */
constexpr double returnTopkCycles = 7000.0;

/** CP merge cost per score-VR candidate set. */
constexpr double mergeCyclesPerVr = 100.0;

/**
 * On-chip ingest handshake for one streamed 64 KiB tile: DMA chain
 * setup plus the L2 -> L1 wide move. The stream itself runs at the
 * simulated HBM rate (timed separately); coalesced descriptor
 * chains (opt2) amortize the chain setup over two tiles.
 */
double
ingestCycles(const apu::TimingParams &t, bool coalesce)
{
    double init = static_cast<double>(t.move.dmaL4L2Init);
    if (coalesce)
        init /= 2.0;
    return init + t.control.dmaDescriptor + t.move.dmaL2L1;
}

/** Run a shape-invariant loop: all iterations in Functional mode,
 * one accounted iteration times n otherwise. */
template <typename Fn>
void
timedLoop(ApuCore &core, size_t n, Fn fn)
{
    if (n == 0)
        return;
    if (core.functional()) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
    } else {
        ScopedRepeat rep(core.stats(), static_cast<double>(n));
        fn(0);
    }
}

/** Stage timing helper: capture cycle deltas. */
struct StageTimer
{
    explicit StageTimer(ApuCore &core) : core(core) {}

    double
    lap()
    {
        double now = core.stats().cycles();
        double delta = now - last;
        last = now;
        return delta;
    }

    ApuCore &core;
    double last = 0.0;
};

/** Merge per-VR candidates into the global top-k. */
std::vector<Hit>
mergeHits(std::vector<Hit> all, size_t k)
{
    std::sort(all.begin(), all.end(), [](const Hit &a, const Hit &b) {
        if (a.score != b.score)
            return a.score > b.score;
        return a.id < b.id;
    });
    if (all.size() > k)
        all.resize(k);
    return all;
}

/** Biased-u16 score back to a signed dot product. */
float
unbias(uint16_t biased)
{
    return static_cast<float>(
        static_cast<int16_t>(biased ^ 0x8000));
}

/**
 * Extract the top-k of the score VR (biased u16) with the
 * associative max search, clearing each winner. Returns candidates
 * with VR-local indices; charges accrue to the caller's ledger.
 */
std::vector<Hit>
extractTopK(Gvml &g, ApuCore &core, Vr score, size_t k,
            size_t valid_elems)
{
    std::vector<Hit> out;
    for (size_t i = 0; i < k; ++i) {
        auto mx = g.maxIndexU16(score);
        core.rspSet(score.idx, core.functional() ? mx.index : 0, 0);
        if (core.functional() && mx.index < valid_elems &&
            mx.value != 0) {
            out.push_back({unbias(mx.value), mx.index});
        }
    }
    core.chargeRaw(mergeCyclesPerVr);
    return out;
}

} // namespace

RagRetriever::RagRetriever(ApuDevice &dev, dram::DramSystem &hbm,
                           RagCorpusSpec corpus, size_t top_k,
                           unsigned core_idx)
    : dev(dev), hbm(hbm), corpus_(corpus), topK(top_k),
      coreIdx_(core_idx)
{
    cisram_assert(top_k >= 1 && top_k <= 64, "unreasonable top-k");
    cisram_assert(isPow2(dev.spec().vrLength));
    cisram_assert(core_idx < dev.numCores(), "core index OOB");
    // The return-topk stage stages result ids here (one slot per
    // batch lane) for the host to read back over PCIe.
    idsAddr_ = dev.allocator().alloc(
        8 * topK * sizeof(uint32_t), 512);
}

RagRetriever::~RagRetriever()
{
    dev.allocator().free(idsAddr_);
}

void
RagRetriever::publishTopkIds(RagRunResult &res, size_t slot)
{
    res.topkIdsAddr =
        idsAddr_ + slot * topK * sizeof(uint32_t);
    res.topkIdsCount = res.hits.size();
    if (res.hits.empty())
        return;
    std::vector<uint32_t> ids(res.hits.size());
    for (size_t i = 0; i < res.hits.size(); ++i)
        ids[i] = static_cast<uint32_t>(res.hits[i].id);
    dev.l4().write(res.topkIdsAddr, ids.data(),
                   ids.size() * sizeof(uint32_t));
}

RagRunResult
RagRetriever::retrieve(const std::vector<int16_t> &query,
                       RagVariant variant, uint64_t corpus_seed)
{
    cisram_assert(query.size() == corpus_.dim, "query dim mismatch");
    switch (variant) {
      case RagVariant::NoOpt:
        return retrieveSpatial(query, false, false, corpus_seed);
      case RagVariant::Opt2:
        return retrieveSpatial(query, true, false, corpus_seed);
      case RagVariant::Opt3:
        return retrieveSpatial(query, false, true, corpus_seed);
      case RagVariant::Opt1:
        return retrieveTemporal(query, false, false, corpus_seed);
      case RagVariant::AllOpts:
        return retrieveTemporal(query, true, true, corpus_seed);
    }
    cisram_panic("unknown variant");
}

RagRunResult
RagRetriever::retrieveGf16(const std::vector<int16_t> &query,
                           uint64_t corpus_seed)
{
    cisram_assert(query.size() == corpus_.dim, "query dim mismatch");
    ApuCore &core = dev.core(coreIdx_);
    Gvml g(core);
    const auto &t = dev.timing();
    size_t l = dev.spec().vrLength;
    size_t dim = corpus_.dim;
    size_t chunks = corpus_.numChunks;
    size_t supertiles = divCeil(chunks, l);
    bool fnl = core.functional();

    RagRunResult res;
    res.dramBytes = static_cast<double>(chunks) *
        static_cast<double>(dim) * 2.0;
    res.cacheBytes = 2.0 * res.dramBytes;
    res.stages.loadEmbedding = hbm.streamReadSeconds(
        0, static_cast<uint64_t>(res.dramBytes));

    // Dimension-major gf16 planes.
    uint64_t emb_addr = 0;
    if (fnl) {
        cisram_assert(chunks <= (size_t(1) << 21),
                      "functional corpus too large");
        emb_addr =
            dev.allocator().alloc(supertiles * dim * l * 2, 512);
        std::vector<uint16_t> plane(l);
        for (size_t st = 0; st < supertiles; ++st) {
            for (size_t d = 0; d < dim; ++d) {
                std::fill(plane.begin(), plane.end(), 0);
                size_t valid = std::min(l, chunks - st * l);
                for (size_t j = 0; j < valid; ++j) {
                    int16_t v = baseline::embeddingValue(
                        corpus_.firstChunk + st * l + j, d,
                        corpus_seed);
                    plane[j] = GsiFloat16::fromFloat(
                                   static_cast<float>(v))
                                   .bits();
                }
                dev.l4().write(emb_addr + (st * dim + d) * l * 2,
                               plane.data(), l * 2);
            }
        }
    }

    core.stats().reset();
    StageTimer timer(core);

    core.dmaL4ToL3(0, 0, dim * 2); // bf query layout in L3
    res.stages.loadQuery = dev.cyclesToSeconds(timer.lap());

    const Vr vrOrd{6}, vrS1{7}, vrS2{8};
    std::vector<Hit> candidates;
    double topk_cycles = 0.0;
    for (size_t st = 0; st < (fnl ? supertiles : size_t(1)); ++st) {
        double st_factor =
            fnl ? 1.0 : static_cast<double>(supertiles);
        ScopedRepeat strep(core.stats(), st_factor);

        g.cpyImm16(vrAcc, 0); // gf16 +0.0
        timedLoop(core, dim, [&](size_t d) {
            core.chargeRaw(ingestCycles(t, true));
            if (fnl) {
                auto &slot = core.l1().slot(vmStage.idx);
                dev.l4().read(emb_addr + (st * dim + d) * l * 2,
                              slot.data(), l * 2);
            }
            g.load16(vrEmb, vmStage);
            g.macImmGf16(vrEmb, vrQ, vrT, vrAcc,
                         GsiFloat16::fromFloat(
                             static_cast<float>(query[d]))
                             .bits());
        });
        g.orderGf16(vrOrd, vrAcc, vrS1, vrS2);

        double before = core.stats().cycles();
        size_t valid = fnl ? std::min(l, chunks - st * l) : l;
        // Extract against the ordered keys; recover the gf16 score
        // from the accumulator at the winning index.
        for (size_t k = 0; k < topK; ++k) {
            auto mx = g.maxIndexU16(vrOrd);
            core.rspSet(vrOrd.idx, fnl ? mx.index : 0, 0);
            if (fnl && mx.index < valid) {
                uint16_t bits = core.vr()[vrAcc.idx][mx.index];
                candidates.push_back(
                    {GsiFloat16::fromBits(bits).toFloat(),
                     st * l + mx.index});
            }
        }
        core.chargeRaw(mergeCyclesPerVr);
        topk_cycles += core.stats().cycles() - before;
    }
    double calc_total = timer.lap();
    res.stages.calcDistance =
        dev.cyclesToSeconds(calc_total - topk_cycles);
    res.stages.topkAggregation = dev.cyclesToSeconds(topk_cycles);
    res.computeSeconds = res.stages.calcDistance;
    core.chargeRaw(returnTopkCycles);
    res.stages.returnTopk = dev.cyclesToSeconds(timer.lap());

    if (fnl) {
        res.hits = mergeHits(std::move(candidates), topK);
        dev.allocator().free(emb_addr);
    }
    publishTopkIds(res, 0);
    res.status = hbm.takeFaultStatus();
    return res;
}

std::vector<RagRunResult>
RagRetriever::retrieveBatch(
    const std::vector<std::vector<int16_t>> &queries,
    uint64_t corpus_seed, RagBatchOptions opts)
{
    size_t batch = queries.size();
    cisram_assert(batch >= 1 && batch <= 8,
                  "batch size must be 1..8 (one accumulator VR per "
                  "query)");
    for (const auto &q : queries)
        cisram_assert(q.size() == corpus_.dim, "query dim mismatch");

    ApuCore &core = dev.core(coreIdx_);
    Gvml g(core);
    const auto &t = dev.timing();
    size_t l = dev.spec().vrLength;
    size_t dim = corpus_.dim;
    size_t chunks = corpus_.numChunks;
    size_t supertiles = divCeil(chunks, l);
    bool fnl = core.functional();

    // Accumulators live in VRs 8..15; working registers below.
    auto acc = [](size_t q2) {
        return Vr(8 + static_cast<unsigned>(q2));
    };

    std::vector<RagRunResult> results(batch);
    double shared_dram = static_cast<double>(chunks) *
        static_cast<double>(dim) * 2.0;

    // One pass over the corpus serves the whole batch.
    dram::DramSystem &mem = hbm;
    double load_emb = mem.streamReadSeconds(
        0, static_cast<uint64_t>(shared_dram));

    uint64_t emb_addr = 0;
    if (fnl) {
        cisram_assert(chunks <= (size_t(1) << 21),
                      "functional corpus too large");
        emb_addr =
            dev.allocator().alloc(supertiles * dim * l * 2, 512);
        std::vector<uint16_t> plane(l);
        for (size_t st = 0; st < supertiles; ++st) {
            for (size_t d = 0; d < dim; ++d) {
                std::fill(plane.begin(), plane.end(), 0);
                size_t valid = std::min(l, chunks - st * l);
                for (size_t j = 0; j < valid; ++j)
                    plane[j] = static_cast<uint16_t>(
                        baseline::embeddingValue(
                            corpus_.firstChunk + st * l + j, d,
                            corpus_seed));
                dev.l4().write(emb_addr + (st * dim + d) * l * 2,
                               plane.data(), l * 2);
            }
        }
    }

    core.stats().reset();
    StageTimer timer(core);

    // Queries staged into the CP's L3 (broadcast-friendly layout).
    core.dmaL4ToL3(0, 0, batch * dim * 2);
    double load_query = dev.cyclesToSeconds(timer.lap());

    // The bias constant prepares the score transform, not the query
    // transfer: it charges to calc-distance (the next lap), keeping
    // load-query a pure measure of staging the query vectors.
    g.cpyImm16(vrBias, 0x8000);

    std::vector<std::vector<Hit>> candidates(batch);
    double topk_cycles = 0.0;
    for (size_t st = 0; st < (fnl ? supertiles : size_t(1)); ++st) {
        double st_factor =
            fnl ? 1.0 : static_cast<double>(supertiles);
        ScopedRepeat strep(core.stats(), st_factor);

        for (size_t q2 = 0; q2 < batch; ++q2)
            g.cpyImm16(acc(q2), 0);
        std::vector<Vr> accs;
        accs.reserve(batch);
        for (size_t q2 = 0; q2 < batch; ++q2)
            accs.push_back(acc(q2));
        timedLoop(core, dim, [&](size_t d) {
            core.chargeRaw(ingestCycles(t, true));
            if (fnl) {
                auto &slot = core.l1().slot(vmStage.idx);
                dev.l4().read(emb_addr + (st * dim + d) * l * 2,
                              slot.data(), l * 2);
            }
            g.load16(vrEmb, vmStage);
            uint16_t imms[8];
            for (size_t q2 = 0; q2 < batch; ++q2)
                imms[q2] =
                    static_cast<uint16_t>(queries[q2][d]);
            g.macImmS16(vrEmb, vrQ, vrT, accs.data(), imms,
                        batch);
        });

        double before = core.stats().cycles();
        size_t valid = fnl ? std::min(l, chunks - st * l) : l;
        for (size_t q2 = 0; q2 < batch; ++q2) {
            g.xor16(acc(q2), acc(q2), vrBias);
            auto part = extractTopK(g, core, acc(q2), topK, valid);
            for (auto &h : part)
                h.id += st * l;
            candidates[q2].insert(candidates[q2].end(),
                                  part.begin(), part.end());
        }
        topk_cycles += core.stats().cycles() - before;
    }
    double calc_total = timer.lap();
    core.chargeRaw(returnTopkCycles * static_cast<double>(batch));
    double return_total = dev.cyclesToSeconds(timer.lap());
    double calc_s = dev.cyclesToSeconds(calc_total - topk_cycles);

    // Overlapped corpus streaming: with both DMA engines active, the
    // HBM stream for supertile st+1 lands in the spare L4 buffer
    // while the VXU scores supertile st. Supertile 0's stream and the
    // last supertile's compute cannot be hidden, each hand-off costs
    // one L4->L1 pipeline sync, and every steady-state supertile runs
    // at the slower of its two halves:
    //   overlapped = stream/n + (n-1)*max(stream/n, calc/n)
    //              + calc/n + n*sync
    // The stage latencies keep their full (sequential) attribution;
    // only overlapHidden — the portion of the stream the pipeline
    // hides, clamped so overlap never charges more than sequential —
    // feeds back into total().
    double overlap_hidden = 0.0;
    if (opts.overlapStream) {
        double n = static_cast<double>(supertiles);
        double per_stream = load_emb / n;
        double per_calc = calc_s / n;
        double sync =
            dev.cyclesToSeconds(
                static_cast<double>(t.move.pipeSyncL4L1)) *
            n;
        double overlapped = per_stream +
            (n - 1.0) * std::max(per_stream, per_calc) + per_calc +
            sync;
        overlap_hidden =
            std::max(0.0, load_emb + calc_s - overlapped);
    }

    double b = static_cast<double>(batch);
    for (size_t q2 = 0; q2 < batch; ++q2) {
        auto &r = results[q2];
        r.stages.loadEmbedding = load_emb / b;
        r.stages.loadQuery = load_query / b;
        r.stages.calcDistance = calc_s / b;
        r.stages.topkAggregation =
            dev.cyclesToSeconds(topk_cycles) / b;
        r.stages.returnTopk = return_total / b;
        r.stages.overlapHidden = overlap_hidden / b;
        r.computeSeconds = r.stages.calcDistance;
        r.dramBytes = shared_dram / b;
        r.cacheBytes = 2.0 * shared_dram / b;
        if (fnl)
            r.hits = mergeHits(std::move(candidates[q2]), topK);
        publishTopkIds(r, q2);
    }
    if (fnl)
        dev.allocator().free(emb_addr);
    // One corpus pass serves the whole batch, so an uncorrectable
    // ECC error taints every result in it.
    Status ecc = hbm.takeFaultStatus();
    if (!ecc.ok())
        for (auto &r : results)
            r.status = ecc;
    return results;
}

RagRunResult
RagRetriever::retrieveSpatial(const std::vector<int16_t> &query,
                              bool coalesce, bool bf_query,
                              uint64_t corpus_seed)
{
    ApuCore &core = dev.core(coreIdx_);
    Gvml g(core);
    const auto &t = dev.timing();
    size_t l = dev.spec().vrLength;
    size_t pad = size_t(1) << log2Ceil(corpus_.dim);
    size_t cpt = l / pad; // chunks per tile
    size_t chunks = corpus_.numChunks;
    size_t full_tiles = chunks / cpt;
    size_t rem = chunks % cpt;
    size_t score_vrs = divCeil(chunks, l);

    RagRunResult res;
    res.dramBytes =
        static_cast<double>(chunks) * static_cast<double>(pad) * 2.0;
    res.cacheBytes = 2.0 * res.dramBytes;

    // Off-chip embedding stream, timed by the HBM simulator.
    res.stages.loadEmbedding = hbm.streamReadSeconds(
        0, static_cast<uint64_t>(res.dramBytes));

    // Functional staging: padded chunk-major embeddings + query.
    uint64_t emb_addr = 0, q_addr = 0;
    bool fnl = core.functional();
    if (fnl) {
        cisram_assert(chunks <= (size_t(1) << 21),
                      "functional corpus too large");
        emb_addr = dev.allocator().alloc(
            divCeil(chunks, cpt) * l * 2, 512);
        std::vector<uint16_t> tile(l);
        for (size_t tl = 0; tl < divCeil(chunks, cpt); ++tl) {
            std::fill(tile.begin(), tile.end(), 0);
            for (size_t c = 0; c < cpt; ++c) {
                size_t chunk = tl * cpt + c;
                if (chunk >= chunks)
                    break;
                for (size_t d = 0; d < corpus_.dim; ++d)
                    tile[c * pad + d] = static_cast<uint16_t>(
                        baseline::embeddingValue(
                            corpus_.firstChunk + chunk, d,
                            corpus_seed));
            }
            dev.l4().write(emb_addr + tl * l * 2, tile.data(),
                           l * 2);
        }
        q_addr = dev.allocator().alloc(pad * 2, 512);
        std::vector<uint16_t> qpad(pad, 0);
        for (size_t d = 0; d < corpus_.dim; ++d)
            qpad[d] = static_cast<uint16_t>(query[d]);
        dev.l4().write(q_addr, qpad.data(), pad * 2);
    }

    core.stats().reset();
    StageTimer timer(core);

    // ---- load query ------------------------------------------------
    core.dmaL4ToL2(q_addr, 0, pad * 2);
    core.dmaL2ToL1(vmStage.idx);
    g.load16(vrQ, vmStage);
    g.cpySubgrp16Grp(vrQ, vrQ, l, pad, 0);
    (void)bf_query; // no standalone effect on the spatial base
    res.stages.loadQuery = dev.cyclesToSeconds(timer.lap());
    // Bias setup charges to calc-distance (see retrieveBatch).
    g.cpyImm16(vrBias, 0x8000);

    // ---- distance calculation --------------------------------------
    // Group-head scores are scattered in the tile VR; the RSP FIFO
    // moves them one element at a time into the resident score VR
    // (the fine-grained element access the paper attributes to the
    // unoptimized mapping). When the score VR fills, its top-k is
    // extracted in place (charged to the aggregation stage).
    std::vector<Hit> candidates;
    double topk_cycles = 0.0;
    const Vr vrScore{6};
    size_t score_fill = 0; // elements in the current score VR
    size_t score_base = 0; // first chunk of the current score VR

    auto drain_scores = [&](bool force) {
        if (score_fill == 0 || (!force && score_fill < l))
            return;
        double before = core.stats().cycles();
        auto part = extractTopK(g, core, vrScore, topK, score_fill);
        for (auto &h : part)
            h.id += score_base;
        candidates.insert(candidates.end(), part.begin(),
                          part.end());
        // Clear the drained VR so stale scores never leak into the
        // next fill's partial extraction.
        g.cpyImm16(vrScore, 0);
        topk_cycles += core.stats().cycles() - before;
        score_base += score_fill;
        score_fill = 0;
    };

    auto do_tile = [&](size_t tile_idx, size_t chunk_count) {
        core.chargeRaw(ingestCycles(t, coalesce));
        if (fnl) {
            auto &slot = core.l1().slot(vmStage.idx);
            dev.l4().read(emb_addr + tile_idx * l * 2, slot.data(),
                          l * 2);
        }
        g.load16(vrEmb, vmStage);
        g.mulS16(vrT, vrEmb, vrQ);
        g.addSubgrpS16(vrT, vrT, pad, 1);
        g.xor16(vrT, vrT, vrBias);
        // One RSP transfer per produced score.
        core.chargeRaw(static_cast<double>(chunk_count) *
                       t.move.pioStorePerElem);
        if (fnl) {
            auto &score = core.vr()[vrScore.idx];
            const auto &tvals = core.vr()[vrT.idx];
            for (size_t c = 0; c < chunk_count; ++c)
                score[(tile_idx * cpt + c) % l] = tvals[c * pad];
        }
    };

    if (fnl) {
        // Score VRs fill every l/cpt tiles; drain as they fill.
        for (size_t i = 0; i < full_tiles; ++i) {
            do_tile(i, cpt);
            score_fill += cpt;
            drain_scores(false);
        }
        if (rem) {
            do_tile(full_tiles, rem);
            score_fill += rem;
        }
        drain_scores(true);
    } else {
        timedLoop(core, full_tiles,
                  [&](size_t i) { do_tile(i, cpt); });
        if (rem)
            do_tile(full_tiles, rem);
        // One extraction pass per (possibly partial) score VR.
        double before = core.stats().cycles();
        {
            apu::ScopedRepeat rep(core.stats(),
                                  static_cast<double>(score_vrs));
            extractTopK(g, core, vrScore, topK, l);
        }
        topk_cycles += core.stats().cycles() - before;
    }

    double calc_total = timer.lap();
    res.stages.calcDistance =
        dev.cyclesToSeconds(calc_total - topk_cycles);
    res.stages.topkAggregation = dev.cyclesToSeconds(topk_cycles);
    res.computeSeconds = res.stages.calcDistance;

    // ---- return -------------------------------------------------------
    core.chargeRaw(returnTopkCycles);
    res.stages.returnTopk = dev.cyclesToSeconds(timer.lap());

    if (fnl) {
        res.hits = mergeHits(std::move(candidates), topK);
        dev.allocator().free(emb_addr);
        dev.allocator().free(q_addr);
    }
    publishTopkIds(res, 0);
    res.status = hbm.takeFaultStatus();
    return res;
}

RagRunResult
RagRetriever::retrieveTemporal(const std::vector<int16_t> &query,
                               bool coalesce, bool bf_query,
                               uint64_t corpus_seed)
{
    ApuCore &core = dev.core(coreIdx_);
    Gvml g(core);
    const auto &t = dev.timing();
    size_t l = dev.spec().vrLength;
    size_t dim = corpus_.dim;
    size_t chunks = corpus_.numChunks;
    size_t supertiles = divCeil(chunks, l);

    RagRunResult res;
    res.dramBytes = static_cast<double>(chunks) *
        static_cast<double>(dim) * 2.0;
    res.cacheBytes = 2.0 * res.dramBytes;
    res.stages.loadEmbedding = hbm.streamReadSeconds(
        0, static_cast<uint64_t>(res.dramBytes));

    // Functional staging: dimension-major planes per super-tile.
    uint64_t emb_addr = 0, q_addr = 0;
    bool fnl = core.functional();
    if (fnl) {
        cisram_assert(chunks <= (size_t(1) << 21),
                      "functional corpus too large");
        emb_addr =
            dev.allocator().alloc(supertiles * dim * l * 2, 512);
        std::vector<uint16_t> plane(l);
        for (size_t st = 0; st < supertiles; ++st) {
            for (size_t d = 0; d < dim; ++d) {
                std::fill(plane.begin(), plane.end(), 0);
                size_t valid = std::min(l, chunks - st * l);
                for (size_t j = 0; j < valid; ++j)
                    plane[j] = static_cast<uint16_t>(
                        baseline::embeddingValue(
                            corpus_.firstChunk + st * l + j, d,
                            corpus_seed));
                dev.l4().write(emb_addr + (st * dim + d) * l * 2,
                               plane.data(), l * 2);
            }
        }
        q_addr = dev.allocator().alloc(l * 2, 512);
        std::vector<uint16_t> qv(l, 0);
        for (size_t d = 0; d < dim; ++d)
            qv[d] = static_cast<uint16_t>(query[d]);
        dev.l4().write(q_addr, qv.data(), l * 2);
    }

    core.stats().reset();
    StageTimer timer(core);

    // ---- load query -------------------------------------------------
    core.dmaL4ToL2(q_addr, 0, dim * 2);
    core.dmaL2ToL1(vmStage.idx);
    g.load16(vrQfull, vmStage);
    if (bf_query) {
        // Broadcast-friendly layout: the query is staged into the
        // CP's L3 so scalars broadcast as immediates.
        core.dmaL4ToL3(q_addr, 0, dim * 2);
    }
    res.stages.loadQuery = dev.cyclesToSeconds(timer.lap());
    // Bias setup charges to calc-distance (see retrieveBatch).
    g.cpyImm16(vrBias, 0x8000);

    // ---- distance calculation ----------------------------------------
    std::vector<Hit> candidates;
    double topk_cycles = 0.0;
    for (size_t st = 0; st < (fnl ? supertiles : size_t(1)); ++st) {
        double st_factor =
            fnl ? 1.0 : static_cast<double>(supertiles);
        ScopedRepeat strep(core.stats(), st_factor);

        g.cpyImm16(vrAcc, 0);
        timedLoop(core, dim, [&](size_t d) {
            core.chargeRaw(ingestCycles(t, coalesce));
            if (fnl) {
                auto &slot = core.l1().slot(vmStage.idx);
                dev.l4().read(emb_addr + (st * dim + d) * l * 2,
                              slot.data(), l * 2);
            }
            g.load16(vrEmb, vmStage);
            if (bf_query) {
                uint16_t imm = static_cast<uint16_t>(query[d]);
                g.macImmS16(vrEmb, vrQ, vrT, &vrAcc, &imm, 1);
            } else {
                g.cpySubgrp16Grp(vrQ, vrQfull, l, 1, d);
                g.mulS16(vrT, vrEmb, vrQ);
                g.addS16(vrAcc, vrAcc, vrT);
            }
        });
        g.xor16(vrAcc, vrAcc, vrBias);

        // Inline per-super-tile top-k (scores stay resident);
        // cycles re-attributed to the aggregation stage below.
        double before = core.stats().cycles();
        size_t valid = fnl ? std::min(l, chunks - st * l) : l;
        auto part = extractTopK(g, core, vrAcc, topK, valid);
        for (auto &h : part)
            h.id += st * l;
        candidates.insert(candidates.end(), part.begin(),
                          part.end());
        topk_cycles += core.stats().cycles() - before;
    }
    double calc_total = timer.lap();
    res.stages.calcDistance =
        dev.cyclesToSeconds(calc_total - topk_cycles);
    res.stages.topkAggregation = dev.cyclesToSeconds(topk_cycles);
    res.computeSeconds = res.stages.calcDistance;

    // ---- return -------------------------------------------------------
    core.chargeRaw(returnTopkCycles);
    res.stages.returnTopk = dev.cyclesToSeconds(timer.lap());

    if (fnl) {
        res.hits = mergeHits(std::move(candidates), topK);
        dev.allocator().free(emb_addr);
        dev.allocator().free(q_addr);
    }
    publishTopkIds(res, 0);
    res.status = hbm.takeFaultStatus();
    return res;
}

} // namespace cisram::kernels
