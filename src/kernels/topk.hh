/**
 * @file
 * In-VR top-k selection algorithms.
 *
 * Two associative-computing strategies over a VR of u16 scores
 * (higher is better):
 *
 *  - Iterative extraction: k rounds of the bit-serial global-max
 *    search (gvml::maxIndexU16), each clearing the winner. Cost
 *    ~k * 470 cycles; exact order, returns indices.
 *  - Threshold counting: binary-search the k-th score with count_m
 *    (16 probes regardless of k), then extract only the survivors.
 *    Cost ~16 * (eq-family + count_m) + k extraction; wins for
 *    large k because the search phase is k-independent.
 *
 * Both return hits best-first with ascending-index tie-breaks,
 * matching FAISS-lite semantics.
 */

#ifndef CISRAM_KERNELS_TOPK_HH
#define CISRAM_KERNELS_TOPK_HH

#include <vector>

#include "baseline/faisslite.hh"
#include "gvml/gvml.hh"

namespace cisram::kernels {

/**
 * Iterative max-extraction top-k. Destroys `scores` (winners are
 * cleared to zero). Hit scores are the raw u16 keys.
 */
std::vector<baseline::Hit>
topKIterative(gvml::Gvml &g, gvml::Vr scores, size_t k);

/**
 * Threshold-counting top-k: binary search for the smallest
 * threshold with |{score >= t}| <= k, then extract the survivors
 * (plus enough threshold-equal entries to fill k, lowest indices
 * first). Needs three scratch VRs; preserves `scores`.
 */
std::vector<baseline::Hit>
topKThreshold(gvml::Gvml &g, gvml::Vr scores, size_t k,
              gvml::Vr scratch_a, gvml::Vr scratch_b,
              gvml::Vr scratch_idx);

} // namespace cisram::kernels

#endif // CISRAM_KERNELS_TOPK_HH
