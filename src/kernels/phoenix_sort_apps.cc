/**
 * @file
 * Sort-and-compress Phoenix applications on the APU: word count and
 * reverse index, plus the paper-scale harness.
 */

#include "kernels/phoenix_apu.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "kernels/kernel_ctx.hh"
#include "kernels/sort.hh"

namespace cisram::kernels {

using apu::ApuDevice;
using baseline::PhoenixApp;
using baseline::RevIndexResult;
using gvml::Vmr;
using gvml::Vr;

std::vector<uint16_t>
tokenizeWords(const std::vector<std::string> &words)
{
    // The generators emit "w<id>" tokens; parsing the id gives a
    // stable, collision-free vocabulary mapping.
    std::vector<uint16_t> ids;
    ids.reserve(words.size());
    for (const auto &w : words) {
        cisram_assert(w.size() >= 2 && w[0] == 'w',
                      "unexpected token: ", w);
        unsigned long id = std::stoul(w.substr(1));
        cisram_assert(id < 0xffff, "vocabulary overflow");
        ids.push_back(static_cast<uint16_t>(id));
    }
    return ids;
}

namespace {

constexpr uint16_t padSentinel = 0xffff;

/** Registers shared by the two sort-based apps. */
constexpr Vr vrKey{0}, vrPay{1}, vrPrev{2}, vrPrev2{3}, vrMark{4},
    vrMark2{5}, vrIds{6}, vrAux{7}, vrOne{8}, vrFirst{9}, vrIdx{10},
    vrDoc{11};
constexpr Vmr vmIn{0}, vmOut1{1}, vmOut2{2};

/** Mark run boundaries of the sorted key VR into vrMark. */
void
markBoundaries(gvml::Gvml &g)
{
    g.shiftE(vrPrev, vrKey, -1);
    g.eq16(vrMark, vrKey, vrPrev);
    g.xor16(vrMark, vrMark, vrOne); // not-equal
    g.or16(vrMark, vrMark, vrFirst);
}

} // namespace

// =================================================================
// Word count
// =================================================================

std::vector<std::pair<uint16_t, uint64_t>>
wordCountApu(ApuDevice &dev, const std::vector<uint16_t> *word_ids,
             double num_words, PhoenixVariant v,
             PhoenixStats &stats)
{
    KernelCtx ctx(dev);
    auto &g = ctx.g;
    size_t l = ctx.l;

    // Opt1 drains the compressed (id, position) runs by DMA; the
    // baseline PIOs them element by element. Opt2/opt3 do not apply.
    bool dma_out =
        v == PhoenixVariant::Opt1 || v == PhoenixVariant::AllOpts;

    size_t tiles = static_cast<size_t>(
        divCeil(static_cast<uint64_t>(num_words), l));
    size_t nwords = 0;
    uint64_t in_addr = 0;
    if (ctx.fnl) {
        nwords = word_ids->size();
        tiles = divCeil(nwords, l);
        std::vector<uint16_t> img(tiles * l, padSentinel);
        std::copy(word_ids->begin(), word_ids->end(), img.begin());
        in_addr = ctx.stage(img.data(), img.size() * 2);
    }
    uint64_t out_addr = dev.allocator().alloc(
        std::max<size_t>(tiles, 1) * 2 * l * 2, 512);

    g.cpyImm16(vrOne, 1);
    g.createIndexU16(vrIdx);
    g.cpyImm16(vrPrev, 0);
    g.eq16(vrFirst, vrIdx, vrPrev); // lane-0 mask

    /// Expected distinct runs per tile for the timing estimate of
    /// the naive PIO drain (the generator's vocabulary size).
    constexpr size_t timingRuns = 4096;

    std::map<uint16_t, uint64_t> counts;
    SortScratch scratch = SortScratch::standard();

    size_t share = ctx.coreShare(tiles);
    ctx.timedLoop(share, [&](size_t tile) {
        ctx.core.dmaL4ToL1(vmIn.idx, in_addr + tile * l * 2);
        g.load16(vrKey, vmIn);
        bitonicSortU16(g, vrKey, false, vrPay, scratch);
        // The sort clobbers the shared idx/one scratch; our
        // boundary constants live in low VRs and survive.
        markBoundaries(g);
        uint32_t runs = g.countM(vrMark);
        g.cpyFromMrk16(vrIds, vrKey, vrMark);
        g.cpyFromMrk16(vrAux, vrIdx, vrMark);
        if (dma_out) {
            // The compressed runs occupy only the VR head: stage
            // through L2 and move just the live prefix.
            size_t live = (ctx.fnl ? runs : timingRuns) * 2;
            g.store16(vmOut1, vrIds);
            ctx.core.dmaL1ToL2(vmOut1.idx);
            ctx.core.dmaL2ToL4(out_addr + (tile * 2) * l * 2, 0,
                               live);
            g.store16(vmOut2, vrAux);
            ctx.core.dmaL1ToL2(vmOut2.idx);
            ctx.core.dmaL2ToL4(out_addr + (tile * 2 + 1) * l * 2, 0,
                               live);
        } else {
            size_t n = ctx.fnl ? runs : timingRuns;
            ctx.core.pioStore(out_addr + (tile * 2) * l * 2, 2,
                              vrIds.idx, 0, 1, n);
            ctx.core.pioStore(out_addr + (tile * 2 + 1) * l * 2, 2,
                              vrAux.idx, 0, 1, n);
        }
        ctx.core.chargeRaw(4.0 * (ctx.fnl ? runs : timingRuns));
        if (ctx.fnl) {
            // Host reduce: run lengths from boundary positions.
            std::vector<uint16_t> ids(l), pos(l);
            dev.l4().read(out_addr + (tile * 2) * l * 2, ids.data(),
                          l * 2);
            dev.l4().read(out_addr + (tile * 2 + 1) * l * 2,
                          pos.data(), l * 2);
            for (uint32_t r = 0; r < runs; ++r) {
                if (ids[r] == padSentinel)
                    break;
                uint64_t end =
                    (r + 1 < runs) ? pos[r + 1] : l;
                counts[ids[r]] += end - pos[r];
            }
        }
    });

    stats = {ctx.cycles(), ctx.uops()};

    std::vector<std::pair<uint16_t, uint64_t>> out;
    if (ctx.fnl) {
        // Remove sentinel-padding artifacts: pads were cut off by
        // the sentinel break above; counts hold only real words.
        out.assign(counts.begin(), counts.end());
        std::sort(out.begin(), out.end(),
                  [](const auto &a, const auto &b) {
                      if (a.second != b.second)
                          return a.second > b.second;
                      return a.first < b.first;
                  });
    }
    return out;
}

// =================================================================
// Reverse index
// =================================================================

RevIndexResult
reverseIndexApu(ApuDevice &dev, const std::vector<uint16_t> *links,
                double num_links, size_t links_per_doc,
                PhoenixVariant v, PhoenixStats &stats)
{
    KernelCtx ctx(dev);
    auto &g = ctx.g;
    size_t l = ctx.l;
    cisram_assert(isPow2(links_per_doc) && links_per_doc <= l);
    unsigned lg_lpd = log2Floor(links_per_doc);

    bool dma_out =
        v == PhoenixVariant::Opt1 || v == PhoenixVariant::AllOpts;

    size_t tiles = static_cast<size_t>(
        divCeil(static_cast<uint64_t>(num_links), l));
    size_t nlinks = 0;
    uint64_t in_addr = 0;
    if (ctx.fnl) {
        nlinks = links->size();
        tiles = divCeil(nlinks, l);
        std::vector<uint16_t> img(tiles * l, padSentinel);
        std::copy(links->begin(), links->end(), img.begin());
        in_addr = ctx.stage(img.data(), img.size() * 2);
    }
    uint64_t out_addr = dev.allocator().alloc(
        std::max<size_t>(tiles, 1) * 2 * l * 2, 512);

    g.cpyImm16(vrOne, 1);
    g.createIndexU16(vrIdx);
    g.cpyImm16(vrPrev, 0);
    g.eq16(vrFirst, vrIdx, vrPrev);

    RevIndexResult result;
    SortScratch scratch = SortScratch::standard();

    size_t share = ctx.coreShare(tiles);
    ctx.timedLoop(share, [&](size_t tile) {
        ctx.core.dmaL4ToL1(vmIn.idx, in_addr + tile * l * 2);
        g.load16(vrKey, vmIn);
        g.cpy16(vrPay, vrIdx);
        bitonicSortU16(g, vrKey, true, vrPay, scratch);
        // Boundary on link change or document change.
        g.srImm16(vrDoc, vrPay, lg_lpd);
        g.shiftE(vrPrev, vrKey, -1);
        g.eq16(vrMark, vrKey, vrPrev);
        g.shiftE(vrPrev2, vrDoc, -1);
        g.eq16(vrMark2, vrDoc, vrPrev2);
        g.and16(vrMark, vrMark, vrMark2); // same link and same doc
        g.xor16(vrMark, vrMark, vrOne);
        g.or16(vrMark, vrMark, vrFirst);
        uint32_t runs = g.countM(vrMark);
        g.cpyFromMrk16(vrIds, vrKey, vrMark);
        g.cpyFromMrk16(vrAux, vrDoc, vrMark);
        if (dma_out) {
            g.store16(vmOut1, vrIds);
            ctx.core.dmaL1ToL4(out_addr + (tile * 2) * l * 2,
                               vmOut1.idx);
            g.store16(vmOut2, vrAux);
            ctx.core.dmaL1ToL4(out_addr + (tile * 2 + 1) * l * 2,
                               vmOut2.idx);
        } else {
            size_t n = ctx.fnl ? runs : l;
            ctx.core.pioStore(out_addr + (tile * 2) * l * 2, 2,
                              vrIds.idx, 0, 1, n);
            ctx.core.pioStore(out_addr + (tile * 2 + 1) * l * 2, 2,
                              vrAux.idx, 0, 1, n);
        }
        ctx.core.chargeRaw(4.0 * (ctx.fnl ? runs : l));
        if (ctx.fnl) {
            std::vector<uint16_t> ids(l), docs(l);
            dev.l4().read(out_addr + (tile * 2) * l * 2, ids.data(),
                          l * 2);
            dev.l4().read(out_addr + (tile * 2 + 1) * l * 2,
                          docs.data(), l * 2);
            uint32_t doc_base = static_cast<uint32_t>(
                tile * l / links_per_doc);
            for (uint32_t r = 0; r < runs; ++r) {
                if (ids[r] == padSentinel)
                    continue;
                result[ids[r]].push_back(doc_base + docs[r]);
            }
        }
    });

    stats = {ctx.cycles(), ctx.uops()};

    if (ctx.fnl) {
        // Tile-sorted insertion already orders docs ascending per
        // link; entries are unique by construction.
        for (auto &[link, docs] : result)
            cisram_assert(
                std::is_sorted(docs.begin(), docs.end()),
                "reverse index docs out of order");
    }
    return result;
}

// =================================================================
// Paper-scale harness
// =================================================================

const PhoenixPaperScale &
phoenixPaperScale()
{
    static const PhoenixPaperScale scale{};
    return scale;
}

PhoenixStats
runPhoenixApuTimed(ApuDevice &dev, PhoenixApp app, PhoenixVariant v)
{
    const auto &s = phoenixPaperScale();
    auto &core = dev.core(0);
    auto saved = core.mode();
    core.setMode(apu::ExecMode::TimingOnly);
    PhoenixStats stats;
    switch (app) {
      case PhoenixApp::Histogram:
        histogramApu(dev, nullptr, s.histogramBytes, v, stats);
        break;
      case PhoenixApp::LinearRegression:
        linRegApu(dev, nullptr, s.linregBytes, v, stats);
        break;
      case PhoenixApp::MatrixMultiply:
        matmulApu(dev, nullptr, nullptr, s.matmulDim, s.matmulDim,
                  s.matmulDim, v, stats);
        break;
      case PhoenixApp::Kmeans:
        kmeansApu(dev, nullptr, s.kmeansPoints, s.kmeansDim,
                  s.kmeansK, s.kmeansIters, v, stats);
        break;
      case PhoenixApp::ReverseIndex:
        reverseIndexApu(dev, nullptr, s.revIndexLinks,
                        s.revIndexLpd, v, stats);
        break;
      case PhoenixApp::StringMatch:
        stringMatchApu(dev, nullptr, s.stringMatchBytes, v, stats);
        break;
      case PhoenixApp::WordCount:
        wordCountApu(dev, nullptr, s.wordCountWords, v, stats);
        break;
    }
    core.setMode(saved);
    return stats;
}

} // namespace cisram::kernels
