#include "kernels/phoenix_model.hh"

#include <cmath>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace cisram::kernels {

using baseline::PhoenixApp;
using model::LatencyEstimator;

namespace {

constexpr double cores = 4.0;

double
share(double tiles)
{
    return std::ceil(tiles / cores);
}

/** Model program for the bitonic sort composite (kernels/sort.cc). */
void
modelBitonicSort(LatencyEstimator &e, bool payload)
{
    size_t n = e.table().vrLength;
    e.gvmlCreateGrpIndexU16();
    e.gvmlCpyImm16();
    for (size_t k = 2; k <= n; k <<= 1) {
        for (size_t j = k >> 1; j > 0; j >>= 1) {
            e.gvmlSrImm16();
            e.gvmlAnd16();
            if (log2Floor(k) < 16) {
                e.gvmlSrImm16();
                e.gvmlAnd16();
                e.gvmlXor16();
            } else {
                e.gvmlCpy16();
            }
            e.gvmlShiftE(static_cast<double>(j));
            e.gvmlShiftE(static_cast<double>(j));
            e.gvmlCpy16Msk();
            if (payload) {
                e.gvmlShiftE(static_cast<double>(j));
                e.gvmlShiftE(static_cast<double>(j));
                e.gvmlCpy16Msk();
            }
            e.gvmlLtU16();
            if (payload) {
                e.gvmlEq16();
                e.gvmlLtU16();
                e.gvmlAnd16();
                e.gvmlOr16();
            }
            e.gvmlXor16();
            e.gvmlCpy16Msk();
            if (payload)
                e.gvmlCpy16Msk();
        }
    }
}

void
modelHistogram(LatencyEstimator &e, const PhoenixPaperScale &s)
{
    double l = static_cast<double>(e.table().vrLength);
    double tiles_per_channel =
        std::ceil(s.histogramBytes / 3.0 / 2.0 / l);
    e.gvmlCpyImm16();
    e.repeat(share(3.0 * tiles_per_channel), [&] {
        e.directDmaL4ToL1_32k();
        e.gvmlLoad16();
        e.gvmlAnd16();
        e.gvmlSrImm16();
        e.repeat(256, [&] {
            e.gvmlCpyImm16();
            e.gvmlEq16();
            e.gvmlCountM();
            e.gvmlEq16();
            e.gvmlCountM();
        });
    });
}

void
modelLinReg(LatencyEstimator &e, const PhoenixPaperScale &s)
{
    double l = static_cast<double>(e.table().vrLength);
    double tiles = std::ceil(s.linregBytes / 2.0 / l);
    e.gvmlCpyImm16();
    e.repeat(10, [&] { e.gvmlCpyImm16(); });
    e.repeat(share(tiles), [&] {
        e.directDmaL4ToL1_32k();
        e.gvmlLoad16();
        e.gvmlAnd16();
        e.gvmlSrImm16();
        // sx, sy: copies; sxx, syy, sxy: multiplies.
        e.repeat(2, [&] { e.gvmlCpy16(); });
        e.repeat(3, [&] { e.gvmlMulU16(); });
        e.repeat(5, [&] {
            e.gvmlAddU16();
            e.gvmlLtU16();
            e.gvmlAddU16();
        });
    });
    e.repeat(10, [&] {
        e.gvmlStore16();
        e.directDmaL1ToL4_32k();
    });
    e.charge(4.0 * 10 * l);
}

void
modelMatmul(LatencyEstimator &e, const PhoenixPaperScale &s)
{
    double l = static_cast<double>(e.table().vrLength);
    double dim = static_cast<double>(s.matmulDim);
    double per_vr = l / dim; // rows or columns per VR
    double row_groups = std::ceil(dim / per_vr);
    double col_groups = std::ceil(dim / per_vr);
    e.repeat(share(row_groups),
             [&] { e.directDmaL4ToL1_32k(); });
    e.repeat(share(dim), [&] {
        e.gvmlLoad16();
        e.gvmlCpySubgrp16Grp();
        e.repeat(col_groups, [&] {
            e.directDmaL4ToL1_32k();
            e.gvmlLoad16();
            e.gvmlMulS16();
            e.gvmlAddSubgrpS16(s.matmulDim, 1);
            e.pioSt(per_vr);
        });
    });
}

void
modelKmeans(LatencyEstimator &e, const PhoenixPaperScale &s)
{
    double l = static_cast<double>(e.table().vrLength);
    double tiles = std::ceil(static_cast<double>(s.kmeansPoints) / l);
    double planes = tiles * static_cast<double>(s.kmeansDim);
    e.gvmlCpyImm16();
    e.repeat(share(planes), [&] { e.directDmaL4ToL1_32k(); });
    e.repeat(s.kmeansIters, [&] {
        e.repeat(share(tiles), [&] {
            e.gvmlCpyImm16();
            e.gvmlCpyImm16();
            e.repeat(static_cast<double>(s.kmeansK), [&] {
                e.gvmlCpyImm16();
                e.repeat(static_cast<double>(s.kmeansDim), [&] {
                    e.gvmlCpyImm16(); // CP-immediate broadcast
                    e.gvmlLoad16();
                    e.gvmlSubS16();
                    e.gvmlLtU16();
                    e.gvmlSubS16();
                    e.gvmlCpy16Msk();
                    e.gvmlMulU16();
                    e.gvmlAddU16();
                });
                e.gvmlLtU16();
                e.gvmlCpy16Msk();
                e.gvmlCpyImm16Msk();
            });
            e.gvmlStore16();
            e.directDmaL1ToL4_32k();
        });
    });
}

void
modelStringMatch(LatencyEstimator &e, const PhoenixPaperScale &s)
{
    double l = static_cast<double>(e.table().vrLength);
    double rec_per_tile = l / 8.0;
    double tiles = std::ceil(s.stringMatchBytes / 16.0 /
                             rec_per_tile);
    // Setup: constants, head mask, four encrypted key patterns.
    e.repeat(3, [&] { e.gvmlCpyImm16(); });
    e.gvmlCreateGrpIndexU16();
    e.gvmlEq16();
    e.repeat(4, [&] {
        e.pioLd(8);
        e.gvmlCpySubgrp16Grp();
        e.gvmlSlImm16();
        e.gvmlSrImm16();
        e.gvmlOr16();
        e.gvmlXor16();
    });
    e.repeat(share(tiles), [&] {
        e.directDmaL4ToL1_32k();
        e.gvmlLoad16();
        e.gvmlSlImm16();
        e.gvmlSrImm16();
        e.gvmlOr16();
        e.gvmlXor16();
        e.repeat(4, [&] {
            e.gvmlEq16();
            e.gvmlAddSubgrpS16(8, 1);
            e.gvmlEq16();
            e.gvmlAnd16();
            e.gvmlCountM();
        });
    });
}

void
modelWordCount(LatencyEstimator &e, const PhoenixPaperScale &s)
{
    double l = static_cast<double>(e.table().vrLength);
    double tiles = std::ceil(s.wordCountWords / l);
    constexpr double runs = 4096.0;
    e.repeat(2, [&] { e.gvmlCpyImm16(); });
    e.gvmlCreateGrpIndexU16();
    e.gvmlEq16();
    e.repeat(share(tiles), [&] {
        e.directDmaL4ToL1_32k();
        e.gvmlLoad16();
        modelBitonicSort(e, false);
        e.gvmlShiftE(1);
        e.gvmlEq16();
        e.gvmlXor16();
        e.gvmlOr16();
        e.gvmlCountM();
        e.gvmlCpyFromMrk16();
        e.gvmlCpyFromMrk16();
        e.repeat(2, [&] {
            e.gvmlStore16();
            e.directDmaL1ToL2_32k();
            e.fastDmaL2ToL4(runs * 2.0);
        });
        e.charge(4.0 * runs);
    });
}

void
modelReverseIndex(LatencyEstimator &e, const PhoenixPaperScale &s)
{
    double l = static_cast<double>(e.table().vrLength);
    double tiles = std::ceil(s.revIndexLinks / l);
    e.repeat(2, [&] { e.gvmlCpyImm16(); });
    e.gvmlCreateGrpIndexU16();
    e.gvmlEq16();
    e.repeat(share(tiles), [&] {
        e.directDmaL4ToL1_32k();
        e.gvmlLoad16();
        e.gvmlCpy16();
        modelBitonicSort(e, true);
        e.gvmlSrImm16();
        e.gvmlShiftE(1);
        e.gvmlEq16();
        e.gvmlShiftE(1);
        e.gvmlEq16();
        e.gvmlAnd16();
        e.gvmlXor16();
        e.gvmlOr16();
        e.gvmlCountM();
        e.gvmlCpyFromMrk16();
        e.gvmlCpyFromMrk16();
        e.repeat(2, [&] {
            e.gvmlStore16();
            e.directDmaL1ToL4_32k();
        });
        e.charge(4.0 * l);
    });
}

} // namespace

double
predictPhoenixCycles(LatencyEstimator &est, PhoenixApp app)
{
    cisram_assert(est.sgModel().fitted(),
                  "estimator needs a calibrated Eq. 1 model");
    const auto &s = phoenixPaperScale();
    est.reset();
    switch (app) {
      case PhoenixApp::Histogram:
        modelHistogram(est, s);
        break;
      case PhoenixApp::LinearRegression:
        modelLinReg(est, s);
        break;
      case PhoenixApp::MatrixMultiply:
        modelMatmul(est, s);
        break;
      case PhoenixApp::Kmeans:
        modelKmeans(est, s);
        break;
      case PhoenixApp::ReverseIndex:
        modelReverseIndex(est, s);
        break;
      case PhoenixApp::StringMatch:
        modelStringMatch(est, s);
        break;
      case PhoenixApp::WordCount:
        modelWordCount(est, s);
        break;
    }
    return est.cycles();
}

} // namespace cisram::kernels
