#include "kernels/serving.hh"

#include <algorithm>
#include <utility>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/metrics.hh"

namespace cisram::kernels {

using baseline::IndexFlatI16;
using baseline::RagCorpusSpec;

const char *
breakerStateName(BreakerState s)
{
    switch (s) {
      case BreakerState::Closed:   return "closed";
      case BreakerState::Open:     return "open";
      case BreakerState::HalfOpen: return "half-open";
    }
    cisram_panic("unknown breaker state");
}

bool
CircuitBreaker::allowRequest()
{
    switch (state_) {
      case BreakerState::Closed:
        return true;
      case BreakerState::HalfOpen:
        // One probe at a time: further queries fall back until the
        // probe's outcome is recorded.
        return false;
      case BreakerState::Open:
        // Exactly `cooldown_` fallback queries pass while Open; the
        // next call admits the probe.
        if (remainingCooldown_ > 0) {
            --remainingCooldown_;
            return false;
        }
        state_ = BreakerState::HalfOpen;
        return true; // this query is the probe
    }
    cisram_panic("unknown breaker state");
}

void
CircuitBreaker::recordSuccess()
{
    if (state_ == BreakerState::HalfOpen) {
        metrics::Registry::get()
            .counter("breaker.probe_success")
            .inc();
    }
    consecutive_ = 0;
    state_ = BreakerState::Closed;
}

void
CircuitBreaker::recordFailure()
{
    if (state_ == BreakerState::HalfOpen) {
        metrics::Registry::get()
            .counter("breaker.probe_failure")
            .inc();
        trip(); // failed probe: back to Open, cooldown restarts
        return;
    }
    ++consecutive_;
    if (state_ == BreakerState::Closed && consecutive_ >= threshold_)
        trip();
}

void
CircuitBreaker::trip()
{
    state_ = BreakerState::Open;
    remainingCooldown_ = cooldown_;
    ++trips_;
    metrics::Registry::get().counter("fault.breaker_trips").inc();
}

// ---------------------------------------------------------------------
// BatchFormer

BatchFormer::BatchFormer(BatchPolicy policy) : policy_(policy)
{
    cisram_assert(policy_.maxBatch >= 1 && policy_.maxBatch <= 8,
                  "maxBatch must be 1..8 (one accumulator VR per "
                  "query in retrieveBatch)");
}

void
BatchFormer::admit(PendingQuery q)
{
    queue_.push_back(Entry{std::move(q), ++admissions_});
}

bool
BatchFormer::batchReady() const
{
    if (queue_.empty())
        return false;
    if (queue_.size() >= policy_.maxBatch)
        return true;
    return admissions_ - queue_.front().serial >=
        policy_.maxLingerAdmissions;
}

bool
BatchFormer::batchReadyAt(double now) const
{
    if (batchReady())
        return true;
    // Time-based close-out: admission-count linger never fires for
    // the tail of a sparse trace (the later admissions simply never
    // arrive), so the oldest pending query also ships once the
    // observed arrival clock has moved maxLingerSeconds past it.
    return policy_.maxLingerSeconds > 0 && !queue_.empty() &&
        now - queue_.front().query.admitSeconds >=
            policy_.maxLingerSeconds;
}

double
BatchFormer::frontAdmitSeconds() const
{
    cisram_assert(!queue_.empty(),
                  "frontAdmitSeconds on an empty queue");
    return queue_.front().query.admitSeconds;
}

std::vector<PendingQuery>
BatchFormer::takeBatch()
{
    // A device batch shares one coarse pass and one filter plane,
    // so only the maximal FIFO prefix with the *front* query's
    // search params ships together. Never reorder around a param
    // boundary: FIFO fairness beats batch fullness.
    size_t n = std::min(queue_.size(), policy_.maxBatch);
    size_t take = 0;
    while (take < n &&
           queue_[take].query.search == queue_.front().query.search)
        ++take;
    std::vector<PendingQuery> out;
    out.reserve(take);
    for (size_t i = 0; i < take; ++i) {
        out.push_back(std::move(queue_.front().query));
        queue_.pop_front();
    }
    if (take > 0)
        ++batches_;
    return out;
}

// ---------------------------------------------------------------------
// DeviceServer

DeviceServer::DeviceServer(apu::ApuDevice &dev, RagCorpusSpec spec,
                           unsigned core, const IndexFlatI16 *golden,
                           uint64_t corpus_seed, ServerConfig cfg)
    : dev_(dev), spec_(spec), core_(core), golden_(golden),
      corpusSeed_(corpus_seed), cfg_(cfg),
      breaker_(cfg.breakerThreshold, cfg.breakerCooldown),
      hbm_(dram::hbm2eConfig()),
      retriever_(std::make_unique<RagRetriever>(dev, hbm_, spec,
                                                cfg.topK, core)),
      host_(dev),
      qbuf_(std::in_place, host_,
            cfg.batch.maxBatch * spec.dim * 2),
      former_(cfg.batch),
      health_(core, cfg.health, cfg.deviceIndex),
      flight_(core, cfg.flight)
{
    host_.setCoreHint(static_cast<int>(core));
    host_.setDeviceHint(cfg.deviceIndex);
    hbm_.setScrubConfig(cfg.scrub);
    hbm_.setDeviceIndex(cfg.deviceIndex);
    if (cfg_.ivf.enabled) {
        // Host state: trained once per shard, survives core resets
        // (only the device-side centroid staging is re-paid, inside
        // retrieveIvfBatch).
        clustering_ = std::make_unique<baseline::IvfClustering>(
            baseline::IvfClustering::build(spec_, corpusSeed_,
                                           cfg_.ivf.build));
        if (golden_)
            goldenIvf_ = std::make_unique<baseline::IndexIvfI16>(
                *golden_, *clustering_, spec_, corpusSeed_);
    }
}

Status
DeviceServer::enqueue(uint64_t id, std::vector<int16_t> embedding,
                      RagSearchParams search, AdmitClass cls)
{
    return enqueueAt(id, std::move(embedding), busySeconds_,
                     search, std::move(cls));
}

Status
DeviceServer::enqueueAt(uint64_t id, std::vector<int16_t> embedding,
                        double admit_seconds,
                        RagSearchParams search, AdmitClass cls)
{
    cisram_assert(embedding.size() == spec_.dim,
                  "query dim mismatch");
    cisram_assert(search.nprobe == 0 || cfg_.ivf.enabled,
                  "query #", id, " requests nprobe=", search.nprobe,
                  " but the server has no IVF clustering "
                  "(ServerConfig::ivf.enabled)");
    auto &reg = metrics::Registry::get();
    auto shed_labels = [&](const char *reason) {
        return metrics::Labels{
            {"device", std::to_string(cfg_.deviceIndex)},
            {"core", std::to_string(core_)},
            {"reason", reason},
            {"tenant", cls.tenant},
            {"slo_class", std::to_string(cls.sloClass)}};
    };

    if (cfg_.health.enabled &&
        health_.state() == recovery::CoreState::Quarantined) {
        if (health_.observeShed() && resets_ < cfg_.maxResets) {
            // The quarantine has aged out: pay the reset now, then
            // admit — the core comes back Healthy.
            performReset();
        } else {
            reg.counter("recovery.shed", shed_labels("quarantine"))
                .inc();
            flight_.recordShed(id, busySeconds_, "quarantine");
            return Status::resourceExhausted(detail::concat(
                "core ", core_, " is quarantined: query #", id,
                " shed (re-route or retry later)"));
        }
    }

    // Per-class cap scaling (AdmissionPolicy::sloClasses): class c
    // keeps (C-c)/C of each budget, so under overload the lowest
    // class hits its tighter caps — and sheds — first.
    unsigned n_cls = cfg_.admission.sloClasses;
    unsigned c = n_cls > 1
        ? std::min(cls.sloClass, n_cls - 1)
        : 0;
    double cls_share = n_cls > 1
        ? static_cast<double>(n_cls - c) / n_cls
        : 1.0;
    size_t depth_cap = static_cast<size_t>(
        static_cast<double>(cfg_.admission.maxQueueDepth) *
        cls_share);
    double delay_cap =
        cfg_.admission.maxQueueDelaySeconds * cls_share;

    if (cfg_.admission.maxQueueDepth > 0 &&
        former_.depth() >= depth_cap) {
        reg.counter("recovery.shed", shed_labels("depth")).inc();
        flight_.recordShed(id, busySeconds_, "depth");
        return Status::resourceExhausted(detail::concat(
            "core ", core_, " admission queue full: ",
            former_.depth(), " pending at the ", depth_cap,
            "-query cap (class ", cls.sloClass, "), query #", id,
            " shed"));
    }
    if (cfg_.admission.maxQueueDelaySeconds > 0 &&
        batchSecondsEwma_ > 0) {
        // Predicted wait = queued-batches x the service-time EWMA
        // (DESIGN.md section 7): the `depth` queries ahead of this
        // one drain in ceil(depth / maxBatch) batches. The previous
        // floor-plus-one form overcounted a full batch whenever the
        // depth was an exact multiple of maxBatch — including
        // shedding on an idle server (depth 0) whose EWMA alone
        // exceeded the budget.
        double batches_ahead = static_cast<double>(
            divCeil(former_.depth(), cfg_.batch.maxBatch));
        double predicted = batches_ahead * batchSecondsEwma_;
        if (predicted > delay_cap) {
            reg.counter("recovery.shed", shed_labels("deadline"))
                .inc();
            flight_.recordShed(id, busySeconds_, "deadline");
            return Status::resourceExhausted(detail::concat(
                "core ", core_, " predicted queue delay ",
                predicted * 1e3, " ms exceeds the ",
                delay_cap * 1e3, " ms admission budget (class ",
                cls.sloClass, "), query #", id, " shed"));
        }
    }

    journal_.admit(id, QueryPayload{embedding, search, cls},
                   admit_seconds);
    flight_.recordAdmit(id, admit_seconds);
    former_.admit(PendingQuery{id, std::move(embedding),
                               admit_seconds, search,
                               std::move(cls)});
    return Status::okStatus();
}

void
DeviceServer::advanceClock(double t)
{
    busySeconds_ = std::max(busySeconds_, t);
}

std::vector<recovery::JournalEntry<QueryPayload>>
DeviceServer::evacuate()
{
    auto handed = journal_.handOffPending();
    former_ = BatchFormer(cfg_.batch);
    auto &shed = metrics::Registry::get().counter(
        "recovery.evacuated",
        {{"device", std::to_string(cfg_.deviceIndex)},
         {"core", std::to_string(core_)}});
    for (const auto &e : handed) {
        shed.inc();
        flight_.recordShed(e.id, busySeconds_, "failover");
    }
    return handed;
}

void
DeviceServer::forceQuarantine()
{
    cisram_assert(cfg_.health.enabled,
                  "forceQuarantine needs an enabled health policy");
    health_.forceQuarantine();
}

std::vector<ServeOutcome>
DeviceServer::pump()
{
    std::vector<ServeOutcome> served;
    while (former_.batchReady()) {
        auto outs = serveBatch(former_.takeBatch(), true, true);
        served.insert(served.end(),
                      std::make_move_iterator(outs.begin()),
                      std::make_move_iterator(outs.end()));
    }
    return served;
}

std::vector<ServeOutcome>
DeviceServer::drain()
{
    std::vector<ServeOutcome> served = pump();
    // Escalation loop: serve the queue; if parked work remains on a
    // quarantined core, reset + replay (bounded); past the reset
    // budget, force the remainder through the CPU fallback. Every
    // journaled query gets exactly one outcome before we return.
    while (true) {
        bool allow_park =
            cfg_.health.enabled && resets_ < cfg_.maxResets;
        while (!former_.empty()) {
            auto outs =
                serveBatch(former_.takeBatch(), true, allow_park);
            served.insert(served.end(),
                          std::make_move_iterator(outs.begin()),
                          std::make_move_iterator(outs.end()));
            if (allow_park &&
                health_.state() ==
                    recovery::CoreState::Quarantined)
                break; // stop feeding a quarantined core
        }
        if (journal_.outstanding() == 0)
            return served;
        if (cfg_.health.enabled &&
            health_.state() == recovery::CoreState::Quarantined &&
            resets_ < cfg_.maxResets) {
            performReset(); // re-admits the parked queries
            continue;
        }
        // Reset budget exhausted (or health disabled): re-admit
        // whatever is still parked and serve it without parking —
        // the CPU fallback guarantees delivery.
        auto pend = journal_.pending();
        former_ = BatchFormer(cfg_.batch);
        for (const auto *e : pend)
            former_.admit(PendingQuery{e->id, e->payload.embedding,
                                       e->admitSeconds,
                                       e->payload.search,
                                       e->payload.cls});
    }
}

std::vector<ServeOutcome>
DeviceServer::pumpUntil(double now)
{
    std::vector<ServeOutcome> served;
    while (former_.batchReadyAt(now)) {
        if (!former_.batchReady()) {
            // Time-based close-out: service starts at the close-out
            // instant, never earlier — otherwise served latency
            // would depend on how often the driver polls.
            advanceClock(std::min(
                now, former_.frontAdmitSeconds() +
                         cfg_.batch.maxLingerSeconds));
        }
        auto outs = serveBatch(former_.takeBatch(), true, true);
        served.insert(served.end(),
                      std::make_move_iterator(outs.begin()),
                      std::make_move_iterator(outs.end()));
    }
    return served;
}

std::vector<ServeOutcome>
DeviceServer::applyMutation(const RagCorpusSpec &epoch_spec,
                            uint64_t new_epoch, uint64_t delta_bytes)
{
    cisram_assert(!cfg_.ivf.enabled,
                  "corpus mutation is not supported with IVF "
                  "serving (the clustering would need a rebuild)");
    cisram_assert(new_epoch == epoch_ + 1, "epoch must advance by 1 "
                  "(have ", epoch_, ", asked for ", new_epoch, ")");
    cisram_assert(epoch_spec.dim == spec_.dim,
                  "mutation cannot change embedding dim");
    cisram_assert(epoch_spec.epochView != nullptr &&
                      epoch_spec.epochView->epoch == new_epoch,
                  "epoch spec must carry the new epoch's view");

    // Epoch barrier: everything admitted under the old epoch is
    // served against the old snapshot first — snapshot consistency
    // is per-admission, never per-service-time.
    std::vector<ServeOutcome> served = drain();

    // Incremental re-stage, in the reset choreography's teardown /
    // rebuild order so the DramAllocator hands identical addresses
    // back and post-mutation batches replay bit-identically.
    qbuf_.reset();
    retriever_.reset();
    spec_ = epoch_spec;
    if (delta_bytes > 0) {
        // Charge the delta transfer (inserted rows + refreshed
        // tombstone plane) over PCIe through a bounce buffer. The
        // staged content itself is hash-generated on demand, so a
        // CRC-exhausted transfer costs time but cannot corrupt the
        // corpus; bounded retries, then proceed.
        gdl::HostStats before = host_.stats();
        gdl::DeviceBuffer stage(host_, delta_bytes);
        std::vector<uint8_t> zeros(delta_bytes, 0);
        for (unsigned a = 0; a < 3; ++a) {
            Status st = host_.tryMemCpyToDev(
                stage.handle(), zeros.data(), delta_bytes);
            if (st.ok())
                break;
        }
        busySeconds_ +=
            host_.stats().pcieSeconds - before.pcieSeconds;
    }
    hbm_.clearLatents(); // freshly re-encoded delta
    retriever_ = std::make_unique<RagRetriever>(dev_, hbm_, spec_,
                                                cfg_.topK, core_);
    qbuf_.emplace(host_, cfg_.batch.maxBatch * spec_.dim * 2);
    epoch_ = new_epoch;
    metrics::Registry::get()
        .counter("mutation.epochs_applied",
                 {{"device", std::to_string(cfg_.deviceIndex)},
                  {"core", std::to_string(core_)}})
        .inc();
    metrics::Registry::get()
        .counter("mutation.restaged_bytes",
                 {{"device", std::to_string(cfg_.deviceIndex)},
                  {"core", std::to_string(core_)}})
        .inc(static_cast<double>(delta_bytes));
    return served;
}

ServeOutcome
DeviceServer::serve(const std::vector<int16_t> &query,
                    RagSearchParams search)
{
    cisram_assert(query.size() == spec_.dim, "query dim mismatch");
    cisram_assert(search.nprobe == 0 || cfg_.ivf.enabled,
                  "serve() requests nprobe=", search.nprobe,
                  " but the server has no IVF clustering");
    std::vector<PendingQuery> one;
    one.push_back(PendingQuery{0, query, busySeconds_, search});
    return serveBatch(std::move(one), false, false)[0];
}

uint64_t
DeviceServer::restageBytes() const
{
    uint64_t cores = dev_.numCores();
    uint64_t shard = spec_.embeddingBytes() / cores;
    uint64_t resident = dev_.l4().capacity() / (4 * cores);
    return std::min(shard, resident);
}

gdl::ResetOutcome
DeviceServer::performReset()
{
    if (cfg_.health.enabled) {
        if (health_.state() != recovery::CoreState::Quarantined)
            health_.forceQuarantine();
        health_.beginReset();
    }
    auto pend = journal_.pending();
    double resetStart = busySeconds_;

    // Tear down the device footprint in reverse allocation order,
    // then rebuild in the original order: the DramAllocator's
    // size-keyed free lists hand the same addresses back, so the
    // replayed batches run against a bit-identical layout.
    qbuf_.reset();
    retriever_.reset();
    gdl::ResetOutcome out = host_.resetCore(core_, restageBytes());
    busySeconds_ += out.seconds;
    hbm_.clearLatents(); // the re-staged shard is freshly encoded
    retriever_ = std::make_unique<RagRetriever>(dev_, hbm_, spec_,
                                                cfg_.topK, core_);
    qbuf_.emplace(host_, cfg_.batch.maxBatch * spec_.dim * 2);

    // A reset core has no failure history: fresh breaker, and the
    // parked queries go back through batch formation with their
    // original admission timestamps (exactly-once: they are still
    // journaled, and only delivery completes them).
    breaker_ = CircuitBreaker(cfg_.breakerThreshold,
                              cfg_.breakerCooldown);
    former_ = BatchFormer(cfg_.batch);
    for (const auto *e : pend)
        former_.admit(PendingQuery{e->id, e->payload.embedding,
                                   e->admitSeconds,
                                   e->payload.search,
                                   e->payload.cls});
    replayed_ += pend.size();
    ++resets_;
    if (flight_.enabled()) {
        // Reset time is charged to the core clock, not to any one
        // query's served latency — it surfaces as queue wait in the
        // replayed queries' final rounds. The flow arrows tie each
        // replay back to the reset that caused it.
        std::vector<uint64_t> ids;
        ids.reserve(pend.size());
        for (const auto *e : pend)
            ids.push_back(e->id);
        flight_.recordReset(resets_, resetStart, out.seconds, ids);
    }
    metrics::Registry::get()
        .counter("recovery.replayed_queries",
                 {{"device", std::to_string(cfg_.deviceIndex)},
                  {"core", std::to_string(core_)}})
        .inc(static_cast<double>(pend.size()));
    if (cfg_.health.enabled)
        health_.completeReset();
    return out;
}

gdl::ResetOutcome
DeviceServer::forceReset()
{
    return performReset();
}

std::vector<ServeOutcome>
DeviceServer::serveBatch(std::vector<PendingQuery> batch,
                         bool journaled, bool allow_park)
{
    size_t b = batch.size();
    cisram_assert(b >= 1, "serveBatch needs at least one query");
    for (size_t q = 1; q < b; ++q)
        cisram_assert(batch[q].search == batch[0].search,
                      "serveBatch: mixed search params in one batch "
                      "(the batch former must split on them)");
    std::vector<ServeOutcome> outs(b);
    double start = busySeconds_;
    auto &reg = metrics::Registry::get();

    bool quarantined =
        cfg_.health.enabled &&
        health_.state() == recovery::CoreState::Quarantined;
    if (quarantined && journaled && allow_park) {
        // The core is already known-bad: park the whole batch
        // untouched (it stays outstanding in the journal) and let
        // drain() escalate to the reset instead of burning retry
        // deadlines or the slow CPU path.
        reg.counter("recovery.parked_batches",
                    {{"device", std::to_string(cfg_.deviceIndex)},
                     {"core", std::to_string(core_)}})
            .inc();
        return {};
    }

    reg.histogram("serving.batch_size")
        .observe(static_cast<double>(b));
    for (size_t q = 0; q < b; ++q) {
        outs[q].id = batch[q].id;
        outs[q].batchSize = b;
        outs[q].cls = batch[q].cls;
        outs[q].queueWaitSeconds = start - batch[q].admitSeconds;
        reg.histogram("serving.queue_wait_seconds")
            .observe(outs[q].queueWaitSeconds);
    }
    bool record = journaled && flight_.enabled();
    if (record) {
        // One service round per query; the recorded wait duration is
        // the exact double assigned to queueWaitSeconds above, so the
        // ledger reconciles bit-for-bit (see obs/flight.hh).
        for (size_t q = 0; q < b; ++q) {
            flight_.beginRound(outs[q].id, start);
            flight_.span(outs[q].id, obs::Stage::QueueWait, 0,
                         batch[q].admitSeconds,
                         outs[q].queueWaitSeconds);
        }
    }
    bool device_ok = false;
    bool parked = false;
    if (!quarantined && breaker_.allowRequest()) {
        for (unsigned a = 0; a < cfg_.retry.maxAttempts; ++a) {
            for (auto &o : outs)
                ++o.attempts;
            gdl::HostStats before = host_.stats();
            uint64_t ecc_before = hbm_.eccStats().doubleDetected;
            Status st = tryDeviceBatch(batch, outs);
            if (st.ok()) {
                breaker_.recordSuccess();
                double pcie =
                    host_.stats().pcieSeconds - before.pcieSeconds;
                double retrieval = 0;
                for (const auto &o : outs)
                    retrieval += o.run.stages.total();
                if (record) {
                    // hostSeconds so far = prior failed attempts;
                    // this attempt's PCIe staging starts there.
                    double tA = start + outs[0].hostSeconds;
                    double tC = tA + pcie;
                    RagStageLatency sum;
                    for (const auto &o : outs) {
                        sum.loadEmbedding +=
                            o.run.stages.loadEmbedding;
                        sum.loadQuery += o.run.stages.loadQuery;
                        sum.calcDistance +=
                            o.run.stages.calcDistance;
                        sum.topkAggregation +=
                            o.run.stages.topkAggregation;
                        sum.returnTopk += o.run.stages.returnTopk;
                        sum.overlapHidden +=
                            o.run.stages.overlapHidden;
                    }
                    for (const auto &o : outs) {
                        flight_.span(o.id, obs::Stage::PcieStage,
                                     a + 1, tA, pcie);
                        flight_.span(o.id, obs::Stage::DeviceCompute,
                                     a + 1, tC, retrieval);
                        // Table 8 stage shares as children of the
                        // compute span (whole-batch pass: every
                        // query waits for all of it). Laid out
                        // end-to-end; overlap_hidden is the slice
                        // the double-buffer hid (total() subtracts
                        // it).
                        double tS = tC;
                        auto child = [&](const char *dname,
                                         double dur) {
                            flight_.span(o.id,
                                         obs::Stage::ComputeDetail,
                                         0, tS, dur, dname);
                            tS += dur;
                        };
                        child("load_embedding", sum.loadEmbedding);
                        child("load_query", sum.loadQuery);
                        child("calc_distance", sum.calcDistance);
                        child("topk_aggregation",
                              sum.topkAggregation);
                        child("return_topk", sum.returnTopk);
                        child("overlap_hidden", sum.overlapHidden);
                    }
                }
                for (auto &o : outs) {
                    o.ok = true;
                    o.fromDevice = true;
                    // Every query in the batch waits for the whole
                    // batch's corpus pass.
                    o.retrievalSeconds = retrieval;
                    o.hostSeconds += pcie;
                }
                device_ok = true;
                break;
            }
            // Failed attempt: charge the simulated time the attempt
            // actually consumed — PCIe transfers (including CRC
            // retries), launch overhead, and device cycles capped at
            // the deadline (the host abandons the task there, so
            // only DeadlineExceeded attempts pay the full deadline;
            // an immediate CRC mismatch or device OOM costs
            // microseconds, not the 0.5 s budget).
            const gdl::HostStats &hs = host_.stats();
            double attempt =
                (hs.pcieSeconds - before.pcieSeconds) +
                (hs.invokeSeconds - before.invokeSeconds) +
                std::min(hs.deviceSeconds - before.deviceSeconds,
                         cfg_.retry.deadlineSeconds);
            if (record) {
                double tA = start + outs[0].hostSeconds;
                for (const auto &o : outs)
                    flight_.span(o.id, obs::Stage::DeviceAttempt,
                                 a + 1, tA, attempt, st.toString());
            }
            for (auto &o : outs) {
                o.lastError = st.toString();
                o.hostSeconds += attempt;
            }
            reg.counter("fault.retries", {{"site", "query"}}).inc();

            // Feed the watchdog this attempt's fault ledger delta;
            // if it quarantines the core mid-retry, stop burning
            // deadline budget on a wedged device.
            if (cfg_.health.enabled) {
                recovery::FaultLedgerDelta d;
                d.taskTimeouts =
                    hs.tasksTimedOut - before.tasksTimedOut;
                d.pcieExhausted =
                    hs.pcieErrors - before.pcieErrors;
                d.eccDoubles = static_cast<unsigned>(
                    hbm_.eccStats().doubleDetected - ecc_before);
                health_.observeFaults(d);
                if (health_.state() ==
                        recovery::CoreState::Quarantined &&
                    journaled && allow_park) {
                    parked = true;
                    break;
                }
            }
        }
        if (!device_ok && !parked)
            breaker_.recordFailure();
    }

    if (parked) {
        // The batch stays outstanding in the journal; drain() will
        // reset the core and replay it. Charge the time the failed
        // attempts consumed — the clock must agree between the
        // faulted run and its replayed continuation.
        busySeconds_ = start + outs[0].hostSeconds;
        if (record)
            // The round's charges die with the park: the replay
            // builds a fresh outcome. Keep the spans (abandoned) for
            // the timeline, drop them from reconciliation.
            for (const auto &o : outs)
                flight_.park(o.id, busySeconds_);
        reg.counter("recovery.parked_batches",
                    {{"device", std::to_string(cfg_.deviceIndex)},
                     {"core", std::to_string(core_)}})
            .inc();
        return {};
    }

    double elapsed = outs[0].hostSeconds;
    if (device_ok) {
        elapsed += outs[0].retrievalSeconds;
    } else {
        // The CPU serves the batch's queries one after another.
        for (size_t q = 0; q < b; ++q) {
            double tF = start + elapsed;
            cpuFallback(batch[q].embedding, batch[q].search,
                        outs[q]);
            elapsed += outs[q].retrievalSeconds;
            if (record)
                flight_.span(outs[q].id, obs::Stage::CpuFallback, 0,
                             tF, outs[q].retrievalSeconds);
        }
    }
    busySeconds_ = start + elapsed;
    // Feed the admission-delay predictor: an EWMA of the batch
    // service time, updated only from served batches (parked ones
    // return above), so the enqueue-time delay estimate is a pure
    // function of the admission/served sequence.
    batchSecondsEwma_ = batchSecondsEwma_ == 0.0
        ? elapsed
        : 0.75 * batchSecondsEwma_ + 0.25 * elapsed;

    if (journaled) {
        for (const auto &o : outs)
            journal_.complete(o.id);
    }
    if (record)
        for (const auto &o : outs)
            flight_.complete(o.id,
                             obs::FlightCompletion{
                                 busySeconds_, o.fromDevice,
                                 o.attempts, o.batchSize,
                                 o.servedSeconds()});
    health_.observeQueries(static_cast<unsigned>(b));

    reg.counter("serving.batches").inc();
    for (const auto &o : outs)
        reg.histogram("serving.served_seconds")
            .observe(o.servedSeconds());
    return outs;
}

Status
DeviceServer::tryDeviceBatch(const std::vector<PendingQuery> &batch,
                             std::vector<ServeOutcome> &outs)
{
    size_t b = batch.size();
    size_t dim = spec_.dim;

    // Stage the batch's query vectors contiguously over PCIe.
    std::vector<int16_t> staged(b * dim);
    for (size_t q = 0; q < b; ++q)
        std::copy(batch[q].embedding.begin(),
                  batch[q].embedding.end(),
                  staged.begin() + q * dim);
    Status st = host_.tryMemCpyToDev(qbuf_->handle(), staged.data(),
                                     b * dim * 2);
    if (!st.ok())
        return st;

    std::vector<std::vector<int16_t>> queries(b);
    for (size_t q = 0; q < b; ++q)
        queries[q] = batch[q].embedding;

    RagBatchOptions opts;
    opts.overlapStream = cfg_.overlapStream;
    opts.search = batch[0].search;
    opts.ivf = clustering_.get();

    std::vector<RagRunResult> rs;
    st = host_.runTaskTimeoutOn(
        core_, cfg_.retry.deadlineSeconds, [&](apu::ApuCore &) {
            rs = retriever_->retrieveBatch(queries, corpusSeed_,
                                           opts);
            return 0;
        });
    if (!st.ok())
        return st;
    // One corpus pass serves the whole batch, so an uncorrectable
    // ECC error taints every result in it.
    for (const auto &r : rs)
        if (!r.status.ok())
            return r.status;

    // Read the staged ids back: the exact staged count in
    // functional mode (0 is a real answer — an empty metadata
    // filter yields no survivors, and reading topK anyway would
    // surface stale buffer contents as ids), fixed-size in timing
    // mode (no functional results exist to count).
    bool functional = dev_.core(core_).functional();
    for (size_t q = 0; q < b; ++q) {
        size_t n = functional ? rs[q].topkIdsCount : cfg_.topK;
        outs[q].ids.assign(n, 0);
        if (n > 0) {
            st = host_.tryMemCpyFromDev(
                outs[q].ids.data(),
                gdl::MemHandle{rs[q].topkIdsAddr},
                n * sizeof(uint32_t));
            if (!st.ok())
                return st;
        }
        outs[q].run = rs[q];
    }
    return Status::okStatus();
}

void
DeviceServer::cpuFallback(const std::vector<int16_t> &query,
                          const RagSearchParams &search,
                          ServeOutcome &out)
{
    metrics::Registry::get().counter("fault.fallbacks").inc();
    if (golden_) {
        // Same params, same clustering as the device path, so the
        // fallback's functional answer bit-compares with the device
        // answer the query would otherwise have gotten.
        std::vector<baseline::Hit> hits;
        if (spec_.epochView)
            // The static golden index predates the overlay; scan
            // the epoch view directly (tombstones skipped, inserts
            // at their overlay positions) so the fallback answers
            // from exactly this server's staged snapshot.
            hits = baseline::searchEpochFlat(spec_, corpusSeed_,
                                             query.data(), cfg_.topK,
                                             search.filterMask);
        else if (search.nprobe > 0 && goldenIvf_)
            hits = goldenIvf_->search(query.data(), cfg_.topK,
                                      search.nprobe,
                                      search.filterMask);
        else if (search.filterMask != baseline::kFilterAll)
            hits = baseline::searchFilteredFlat(
                *golden_, spec_, corpusSeed_, query.data(),
                cfg_.topK, search.filterMask);
        else
            hits = golden_->search(query.data(), cfg_.topK);
        out.ids.clear();
        for (const auto &h : hits)
            out.ids.push_back(static_cast<uint32_t>(h.id));
        out.run.hits = std::move(hits);
    }
    // Xeon cost scales with the bytes actually scanned: a probe-
    // restricted query reads only its lists' share of the shard.
    double bytes =
        static_cast<double>(spec_.embeddingBytes());
    if (search.nprobe > 0 && clustering_) {
        uint64_t probed = 0;
        auto probes = clustering_->selectProbes(query.data(),
                                                search.nprobe);
        for (uint32_t list : probes)
            probed += clustering_->listSize(list);
        bytes = bytes *
            (static_cast<double>(probed) /
             static_cast<double>(
                 std::max<size_t>(1, clustering_->numChunks())));
    }
    out.retrievalSeconds = xeon_.ennsRetrievalMs(bytes) * 1e-3;
    out.ok = true;
    out.fromDevice = false;
}

} // namespace cisram::kernels
