#include "kernels/serving.hh"

#include "common/logging.hh"
#include "common/metrics.hh"

namespace cisram::kernels {

const char *
breakerStateName(BreakerState s)
{
    switch (s) {
      case BreakerState::Closed:   return "closed";
      case BreakerState::Open:     return "open";
      case BreakerState::HalfOpen: return "half-open";
    }
    cisram_panic("unknown breaker state");
}

bool
CircuitBreaker::allowRequest()
{
    switch (state_) {
      case BreakerState::Closed:
        return true;
      case BreakerState::HalfOpen:
        // One probe at a time: further queries fall back until the
        // probe's outcome is recorded.
        return false;
      case BreakerState::Open:
        if (remainingCooldown_ > 1) {
            --remainingCooldown_;
            return false;
        }
        remainingCooldown_ = 0;
        state_ = BreakerState::HalfOpen;
        return true; // this query is the probe
    }
    cisram_panic("unknown breaker state");
}

void
CircuitBreaker::recordSuccess()
{
    consecutive_ = 0;
    state_ = BreakerState::Closed;
}

void
CircuitBreaker::recordFailure()
{
    if (state_ == BreakerState::HalfOpen) {
        trip(); // failed probe: back to Open, cooldown restarts
        return;
    }
    ++consecutive_;
    if (state_ == BreakerState::Closed && consecutive_ >= threshold_)
        trip();
}

void
CircuitBreaker::trip()
{
    state_ = BreakerState::Open;
    remainingCooldown_ = cooldown_ > 0 ? cooldown_ : 1;
    ++trips_;
    metrics::Registry::get().counter("fault.breaker_trips").inc();
}

} // namespace cisram::kernels
