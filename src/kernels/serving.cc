#include "kernels/serving.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "common/metrics.hh"

namespace cisram::kernels {

using baseline::IndexFlatI16;
using baseline::RagCorpusSpec;

const char *
breakerStateName(BreakerState s)
{
    switch (s) {
      case BreakerState::Closed:   return "closed";
      case BreakerState::Open:     return "open";
      case BreakerState::HalfOpen: return "half-open";
    }
    cisram_panic("unknown breaker state");
}

bool
CircuitBreaker::allowRequest()
{
    switch (state_) {
      case BreakerState::Closed:
        return true;
      case BreakerState::HalfOpen:
        // One probe at a time: further queries fall back until the
        // probe's outcome is recorded.
        return false;
      case BreakerState::Open:
        // Exactly `cooldown_` fallback queries pass while Open; the
        // next call admits the probe.
        if (remainingCooldown_ > 0) {
            --remainingCooldown_;
            return false;
        }
        state_ = BreakerState::HalfOpen;
        return true; // this query is the probe
    }
    cisram_panic("unknown breaker state");
}

void
CircuitBreaker::recordSuccess()
{
    consecutive_ = 0;
    state_ = BreakerState::Closed;
}

void
CircuitBreaker::recordFailure()
{
    if (state_ == BreakerState::HalfOpen) {
        trip(); // failed probe: back to Open, cooldown restarts
        return;
    }
    ++consecutive_;
    if (state_ == BreakerState::Closed && consecutive_ >= threshold_)
        trip();
}

void
CircuitBreaker::trip()
{
    state_ = BreakerState::Open;
    remainingCooldown_ = cooldown_;
    ++trips_;
    metrics::Registry::get().counter("fault.breaker_trips").inc();
}

// ---------------------------------------------------------------------
// BatchFormer

BatchFormer::BatchFormer(BatchPolicy policy) : policy_(policy)
{
    cisram_assert(policy_.maxBatch >= 1 && policy_.maxBatch <= 8,
                  "maxBatch must be 1..8 (one accumulator VR per "
                  "query in retrieveBatch)");
}

void
BatchFormer::admit(PendingQuery q)
{
    queue_.push_back(Entry{std::move(q), ++admissions_});
}

bool
BatchFormer::batchReady() const
{
    if (queue_.empty())
        return false;
    if (queue_.size() >= policy_.maxBatch)
        return true;
    return admissions_ - queue_.front().serial >=
        policy_.maxLingerAdmissions;
}

std::vector<PendingQuery>
BatchFormer::takeBatch()
{
    size_t n = std::min(queue_.size(), policy_.maxBatch);
    std::vector<PendingQuery> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        out.push_back(std::move(queue_.front().query));
        queue_.pop_front();
    }
    if (n > 0)
        ++batches_;
    return out;
}

// ---------------------------------------------------------------------
// DeviceServer

DeviceServer::DeviceServer(apu::ApuDevice &dev, RagCorpusSpec spec,
                           unsigned core, const IndexFlatI16 *golden,
                           uint64_t corpus_seed, ServerConfig cfg)
    : spec_(spec), core_(core), golden_(golden),
      corpusSeed_(corpus_seed), cfg_(cfg),
      breaker_(cfg.breakerThreshold, cfg.breakerCooldown),
      hbm_(dram::hbm2eConfig()),
      retriever_(dev, hbm_, spec, cfg.topK, core), host_(dev),
      qbuf_(host_, cfg.batch.maxBatch * spec.dim * 2),
      former_(cfg.batch)
{}

void
DeviceServer::enqueue(uint64_t id, std::vector<int16_t> embedding)
{
    cisram_assert(embedding.size() == spec_.dim,
                  "query dim mismatch");
    former_.admit(PendingQuery{id, std::move(embedding),
                               busySeconds_});
}

std::vector<ServeOutcome>
DeviceServer::pump()
{
    std::vector<ServeOutcome> served;
    while (former_.batchReady()) {
        auto outs = serveBatch(former_.takeBatch());
        served.insert(served.end(),
                      std::make_move_iterator(outs.begin()),
                      std::make_move_iterator(outs.end()));
    }
    return served;
}

std::vector<ServeOutcome>
DeviceServer::drain()
{
    std::vector<ServeOutcome> served = pump();
    while (!former_.empty()) {
        auto outs = serveBatch(former_.takeBatch());
        served.insert(served.end(),
                      std::make_move_iterator(outs.begin()),
                      std::make_move_iterator(outs.end()));
    }
    return served;
}

ServeOutcome
DeviceServer::serve(const std::vector<int16_t> &query)
{
    cisram_assert(query.size() == spec_.dim, "query dim mismatch");
    std::vector<PendingQuery> one;
    one.push_back(PendingQuery{0, query, busySeconds_});
    return serveBatch(std::move(one))[0];
}

std::vector<ServeOutcome>
DeviceServer::serveBatch(std::vector<PendingQuery> batch)
{
    size_t b = batch.size();
    cisram_assert(b >= 1, "serveBatch needs at least one query");
    std::vector<ServeOutcome> outs(b);
    double start = busySeconds_;
    auto &reg = metrics::Registry::get();
    reg.histogram("serving.batch_size")
        .observe(static_cast<double>(b));
    for (size_t q = 0; q < b; ++q) {
        outs[q].id = batch[q].id;
        outs[q].batchSize = b;
        outs[q].queueWaitSeconds = start - batch[q].admitSeconds;
        reg.histogram("serving.queue_wait_seconds")
            .observe(outs[q].queueWaitSeconds);
    }

    bool device_ok = false;
    if (breaker_.allowRequest()) {
        for (unsigned a = 0; a < cfg_.retry.maxAttempts; ++a) {
            for (auto &o : outs)
                ++o.attempts;
            gdl::HostStats before = host_.stats();
            Status st = tryDeviceBatch(batch, outs);
            if (st.ok()) {
                breaker_.recordSuccess();
                double pcie =
                    host_.stats().pcieSeconds - before.pcieSeconds;
                double retrieval = 0;
                for (const auto &o : outs)
                    retrieval += o.run.stages.total();
                for (auto &o : outs) {
                    o.ok = true;
                    o.fromDevice = true;
                    // Every query in the batch waits for the whole
                    // batch's corpus pass.
                    o.retrievalSeconds = retrieval;
                    o.hostSeconds += pcie;
                }
                device_ok = true;
                break;
            }
            // Failed attempt: charge the simulated time the attempt
            // actually consumed — PCIe transfers (including CRC
            // retries), launch overhead, and device cycles capped at
            // the deadline (the host abandons the task there, so
            // only DeadlineExceeded attempts pay the full deadline;
            // an immediate CRC mismatch or device OOM costs
            // microseconds, not the 0.5 s budget).
            const gdl::HostStats &hs = host_.stats();
            double attempt =
                (hs.pcieSeconds - before.pcieSeconds) +
                (hs.invokeSeconds - before.invokeSeconds) +
                std::min(hs.deviceSeconds - before.deviceSeconds,
                         cfg_.retry.deadlineSeconds);
            for (auto &o : outs) {
                o.lastError = st.toString();
                o.hostSeconds += attempt;
            }
            metrics::Registry::get()
                .counter("fault.retries", {{"site", "query"}})
                .inc();
        }
        if (!device_ok)
            breaker_.recordFailure();
    }

    double elapsed = outs[0].hostSeconds;
    if (device_ok) {
        elapsed += outs[0].retrievalSeconds;
    } else {
        // The CPU serves the batch's queries one after another.
        for (size_t q = 0; q < b; ++q) {
            cpuFallback(batch[q].embedding, outs[q]);
            elapsed += outs[q].retrievalSeconds;
        }
    }
    busySeconds_ = start + elapsed;

    auto &reg2 = metrics::Registry::get();
    reg2.counter("serving.batches").inc();
    for (const auto &o : outs)
        reg2.histogram("serving.served_seconds")
            .observe(o.servedSeconds());
    return outs;
}

Status
DeviceServer::tryDeviceBatch(const std::vector<PendingQuery> &batch,
                             std::vector<ServeOutcome> &outs)
{
    size_t b = batch.size();
    size_t dim = spec_.dim;

    // Stage the batch's query vectors contiguously over PCIe.
    std::vector<int16_t> staged(b * dim);
    for (size_t q = 0; q < b; ++q)
        std::copy(batch[q].embedding.begin(),
                  batch[q].embedding.end(),
                  staged.begin() + q * dim);
    Status st = host_.tryMemCpyToDev(qbuf_.handle(), staged.data(),
                                     b * dim * 2);
    if (!st.ok())
        return st;

    std::vector<std::vector<int16_t>> queries(b);
    for (size_t q = 0; q < b; ++q)
        queries[q] = batch[q].embedding;

    std::vector<RagRunResult> rs;
    st = host_.runTaskTimeoutOn(
        core_, cfg_.retry.deadlineSeconds, [&](apu::ApuCore &) {
            rs = retriever_.retrieveBatch(
                queries, corpusSeed_,
                RagBatchOptions{cfg_.overlapStream});
            return 0;
        });
    if (!st.ok())
        return st;
    // One corpus pass serves the whole batch, so an uncorrectable
    // ECC error taints every result in it.
    for (const auto &r : rs)
        if (!r.status.ok())
            return r.status;

    // Read the staged ids back (fixed-size in timing mode).
    for (size_t q = 0; q < b; ++q) {
        size_t n =
            rs[q].topkIdsCount ? rs[q].topkIdsCount : cfg_.topK;
        outs[q].ids.assign(n, 0);
        st = host_.tryMemCpyFromDev(
            outs[q].ids.data(), gdl::MemHandle{rs[q].topkIdsAddr},
            n * sizeof(uint32_t));
        if (!st.ok())
            return st;
        outs[q].run = rs[q];
    }
    return Status::okStatus();
}

void
DeviceServer::cpuFallback(const std::vector<int16_t> &query,
                          ServeOutcome &out)
{
    metrics::Registry::get().counter("fault.fallbacks").inc();
    if (golden_) {
        auto hits = golden_->search(query.data(), cfg_.topK);
        out.ids.clear();
        for (const auto &h : hits)
            out.ids.push_back(static_cast<uint32_t>(h.id));
    }
    out.retrievalSeconds =
        xeon_.ennsRetrievalMs(spec_.embeddingBytes()) * 1e-3;
    out.ok = true;
    out.fromDevice = false;
}

} // namespace cisram::kernels
