#include "kernels/bmm.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "gvml/gvml.hh"

namespace cisram::kernels {

using apu::ApuCore;
using apu::ApuDevice;
using apu::ExecMode;
using apu::ScopedTag;
using core::BmmShape;
using core::BmmVariant;
using gvml::Gvml;
using gvml::Vmr;
using gvml::Vr;

BmmData
genBmmData(const BmmShape &shape, uint64_t seed)
{
    Rng rng(seed);
    BmmData d;
    d.a.resize(shape.m * shape.kWords());
    d.b.resize(shape.kWords() * shape.n);
    for (auto &w : d.a)
        w = rng.nextU16();
    for (auto &w : d.b)
        w = rng.nextU16();
    return d;
}

std::vector<int16_t>
bmmReference(const BmmShape &shape, const BmmData &data)
{
    size_t kw = shape.kWords();
    std::vector<int16_t> c(shape.m * shape.n);
    for (size_t i = 0; i < shape.m; ++i) {
        for (size_t j = 0; j < shape.n; ++j) {
            int32_t acc = 0;
            for (size_t w = 0; w < kw; ++w) {
                uint16_t x = data.a[i * kw + w] ^ data.b[w * shape.n + j];
                acc += 16 - 2 * __builtin_popcount(x);
            }
            c[i * shape.n + j] = static_cast<int16_t>(acc);
        }
    }
    return c;
}

namespace {

/** Register allocation shared by the variants. */
constexpr Vr vrA{0}, vrB{1}, vrT{2}, vrAcc{3}, vrIdx{4}, vrBcast{5},
    vrBsrc{6}, vrConst{7}, vrTmp{8};
constexpr Vmr vmA{0}, vmOut{1};
constexpr unsigned vmBBase = 2;

struct Ctx
{
    ApuDevice &dev;
    ApuCore &core;
    Gvml g;
    const BmmShape &shape;
    const BmmData *data;
    size_t l, kw;

    Ctx(ApuDevice &dev, const BmmShape &shape, const BmmData *data)
        : dev(dev), core(dev.core(0)), g(core), shape(shape),
          data(data), l(dev.spec().vrLength), kw(shape.kWords())
    {}

    bool functional() const { return core.functional(); }

    /** Allocate an L4 region and optionally fill it. */
    uint64_t
    stage(const std::vector<uint16_t> &content, size_t bytes)
    {
        uint64_t addr = dev.allocator().alloc(bytes, 512);
        if (functional() && !content.empty())
            dev.l4().write(addr, content.data(),
                           std::min(bytes, content.size() * 2));
        return addr;
    }

    /**
     * Work share of the row/tile loop. The Section 5.1
     * microbenchmark is a single-core kernel (the paper's absolute
     * latencies match one core's throughput), so the whole problem
     * runs on core 0 in both modes.
     */
    size_t share(size_t total) const { return total; }
};

/** Collect the stage breakdown from a core's ledger. */
BmmRunResult
collect(ApuCore &core)
{
    BmmRunResult r;
    r.cycles.ldLhs = core.stats().taggedCycles("ld_lhs");
    r.cycles.ldRhs = core.stats().taggedCycles("ld_rhs");
    r.cycles.vrOps = core.stats().taggedCycles("vr_ops");
    r.cycles.store = core.stats().taggedCycles("st");
    r.uops = core.stats().uops();
    return r;
}

BmmRunResult
runBaseline(Ctx &ctx)
{
    const BmmShape &s = ctx.shape;
    size_t l = ctx.l, kw = ctx.kw;
    size_t dup = l / kw;
    size_t b_vrs = divCeil(s.n, dup);
    cisram_assert(b_vrs + vmBBase <= ctx.dev.spec().numVmrs,
                  "B does not fit in L1");

    // --- host-side staging (uncharged initialization) -------------
    // Per-row duplicated image: row repeated floor(l/kw) times.
    std::vector<uint16_t> a_dup;
    if (ctx.functional()) {
        a_dup.resize(s.m * l, 0);
        for (size_t i = 0; i < s.m; ++i)
            for (size_t c = 0; c < dup; ++c)
                for (size_t w = 0; w < kw; ++w)
                    a_dup[i * l + c * kw + w] =
                        ctx.data->a[i * kw + w];
    }
    uint64_t a_addr = ctx.stage(a_dup, s.m * l * 2);

    // Column-major B, padded to whole VR loads.
    std::vector<uint16_t> b_col;
    if (ctx.functional()) {
        b_col.resize(b_vrs * l, 0);
        for (size_t j = 0; j < s.n; ++j)
            for (size_t w = 0; w < kw; ++w)
                b_col[j * kw + w] = ctx.data->b[w * s.n + j];
    }
    uint64_t b_addr = ctx.stage(b_col, b_vrs * l * 2);
    uint64_t c_addr = ctx.dev.allocator().alloc(s.m * s.n * 2, 512);

    // --- device kernel --------------------------------------------
    Gvml &g = ctx.g;
    ApuCore &core = ctx.core;
    core.stats().reset();

    {
        ScopedTag tag(core.stats(), "ld_rhs");
        for (size_t gvr = 0; gvr < b_vrs; ++gvr)
            core.dmaL4ToL1(vmBBase + gvr, b_addr + gvr * l * 2);
    }
    {
        ScopedTag tag(core.stats(), "vr_ops");
        g.cpyImm16(vrConst, 16);
    }

    size_t rows = ctx.share(s.m);
    for (size_t i = 0; i < rows; ++i) {
        {
            ScopedTag tag(core.stats(), "ld_lhs");
            // Chunk-programmed DMA fills a VR with the duplicated
            // row, staged through L2.
            core.dmaL4ToL2(a_addr + i * l * 2, 0, l * 2);
            core.dmaL2ToL1(vmA.idx);
            g.load16(vrA, vmA);
        }
        for (size_t gvr = 0; gvr < b_vrs; ++gvr) {
            size_t cols = std::min(dup, s.n - gvr * dup);
            {
                ScopedTag tag(core.stats(), "vr_ops");
                g.load16(vrB, Vmr(vmBBase +
                                  static_cast<unsigned>(gvr)));
                g.xor16(vrT, vrA, vrB);
                g.popcnt16(vrT, vrT);
                g.ashImm16(vrT, vrT, 1);
                g.subS16(vrT, vrConst, vrT);
                g.addSubgrpS16(vrT, vrT, kw, 1);
            }
            {
                ScopedTag tag(core.stats(), "st");
                // Scattered per-column results: PIO, one element at
                // a time (Eq. 5).
                core.pioStore(c_addr + (i * s.n + gvr * dup) * 2, 2,
                              vrT.idx, 0, kw, cols);
            }
        }
    }

    BmmRunResult r = collect(core);
    if (ctx.functional()) {
        r.c.resize(s.m * s.n);
        ctx.dev.l4().read(c_addr, r.c.data(), r.c.size() * 2);
    }
    return r;
}

BmmRunResult
runOpt(Ctx &ctx, bool coalesce, bool bf_layout)
{
    const BmmShape &s = ctx.shape;
    size_t l = ctx.l, kw = ctx.kw;
    cisram_assert(isPow2(s.n) && s.n <= l, "N must be pow2 <= l");
    size_t rpv = l / s.n;
    size_t tiles = divCeil(s.m, rpv);
    size_t b_vrs = divCeil(kw * s.n, l);

    // --- staging ---------------------------------------------------
    // A tiles in L3 layout: row-major keeps the original matrix;
    // broadcast-friendly transposes each tile (entry k*rpv + r).
    std::vector<uint16_t> a_img;
    if (ctx.functional()) {
        a_img.resize(tiles * rpv * kw, 0);
        for (size_t t = 0; t < tiles; ++t) {
            for (size_t r = 0; r < rpv; ++r) {
                size_t row = t * rpv + r;
                if (row >= s.m)
                    break;
                for (size_t k = 0; k < kw; ++k) {
                    size_t off = bf_layout ? (k * rpv + r)
                                           : (r * kw + k);
                    a_img[t * rpv * kw + off] =
                        ctx.data->a[row * kw + k];
                }
            }
        }
    }
    uint64_t a_addr = ctx.stage(a_img, tiles * rpv * kw * 2);

    // B row-major, padded to whole VRs (for coalesced loads), plus a
    // per-k duplicated staging image for the uncoalesced path.
    std::vector<uint16_t> b_img;
    if (ctx.functional()) {
        b_img.resize(b_vrs * l, 0);
        std::copy(ctx.data->b.begin(), ctx.data->b.end(),
                  b_img.begin());
    }
    uint64_t b_addr = ctx.stage(b_img, b_vrs * l * 2);

    uint64_t bdup_addr = 0;
    if (!coalesce) {
        std::vector<uint16_t> b_dup;
        if (ctx.functional()) {
            b_dup.resize(kw * l, 0);
            for (size_t k = 0; k < kw; ++k)
                for (size_t c = 0; c < rpv; ++c)
                    for (size_t j = 0; j < s.n; ++j)
                        b_dup[k * l + c * s.n + j] =
                            ctx.data->b[k * s.n + j];
        }
        bdup_addr = ctx.stage(b_dup, kw * l * 2);
    }

    uint64_t c_addr = ctx.dev.allocator().alloc(tiles * l * 2, 512);

    // --- device kernel ----------------------------------------------
    Gvml &g = ctx.g;
    ApuCore &core = ctx.core;
    core.stats().reset();

    if (coalesce) {
        ScopedTag tag(core.stats(), "ld_rhs");
        cisram_assert(vmBBase + b_vrs <= ctx.dev.spec().numVmrs,
                      "B reuse VRs exceed L1");
        for (size_t gvr = 0; gvr < b_vrs; ++gvr)
            core.dmaL4ToL1(vmBBase + gvr, b_addr + gvr * l * 2);
    }

    size_t tile_share = ctx.share(tiles);
    for (size_t t = 0; t < tile_share; ++t) {
        {
            ScopedTag tag(core.stats(), "ld_lhs");
            core.dmaL4ToL3(a_addr + t * rpv * kw * 2, 0,
                           rpv * kw * 2);
        }
        {
            ScopedTag tag(core.stats(), "vr_ops");
            // Row index of each element: e / n.
            g.createIndexU16(vrIdx);
            g.srImm16(vrIdx, vrIdx, log2Floor(s.n));
            if (!bf_layout) {
                // Row-major table: row base r * kw.
                g.slImm16(vrIdx, vrIdx, log2Floor(kw));
            }
            g.cpyImm16(vrConst, 16);
            g.cpyImm16(vrAcc, 0);
        }
        for (size_t k = 0; k < kw; ++k) {
            {
                ScopedTag tag(core.stats(), "ld_lhs");
                if (bf_layout) {
                    // Window of rpv entries at offset k * rpv.
                    core.lookup(vrBcast.idx, vrIdx.idx, k * rpv * 2,
                                rpv);
                } else {
                    // idx = r * kw + k against the whole tile table.
                    g.cpyImm16(vrTmp, static_cast<uint16_t>(k));
                    g.addU16(vrTmp, vrIdx, vrTmp);
                    core.lookup(vrBcast.idx, vrTmp.idx, 0, rpv * kw);
                }
            }
            if (coalesce) {
                ScopedTag tag(core.stats(), "vr_ops");
                size_t vmr = (k * s.n) / l;
                size_t which = (k * s.n) % l / s.n;
                g.load16(vrBsrc,
                         Vmr(vmBBase + static_cast<unsigned>(vmr)));
                g.cpySubgrp16Grp(vrBsrc, vrBsrc, l, s.n, which);
            } else {
                ScopedTag tag(core.stats(), "ld_rhs");
                core.dmaL4ToL2(bdup_addr + k * l * 2, 0, l * 2);
                core.dmaL2ToL1(vmA.idx);
                g.load16(vrBsrc, vmA);
            }
            {
                ScopedTag tag(core.stats(), "vr_ops");
                g.xor16(vrT, vrBcast, vrBsrc);
                g.popcnt16(vrT, vrT);
                g.ashImm16(vrT, vrT, 1);
                g.subS16(vrT, vrConst, vrT);
                g.addS16(vrAcc, vrAcc, vrT);
            }
        }
        {
            ScopedTag tag(core.stats(), "st");
            g.store16(vmOut, vrAcc);
            core.dmaL1ToL4(c_addr + t * l * 2, vmOut.idx);
        }
    }

    BmmRunResult r = collect(core);
    if (ctx.functional()) {
        // C tile t holds rows [t*rpv, t*rpv+rpv) packed r*n + j.
        r.c.resize(s.m * s.n);
        std::vector<int16_t> tile(l);
        for (size_t t = 0; t < tiles; ++t) {
            ctx.dev.l4().read(c_addr + t * l * 2, tile.data(),
                              l * 2);
            for (size_t r2 = 0; r2 < rpv; ++r2) {
                size_t row = t * rpv + r2;
                if (row >= s.m)
                    break;
                std::copy(tile.begin() +
                              static_cast<long>(r2 * s.n),
                          tile.begin() +
                              static_cast<long>((r2 + 1) * s.n),
                          r.c.begin() +
                              static_cast<long>(row * s.n));
            }
        }
    }
    return r;
}

} // namespace

BmmRunResult
runBmmApu(ApuDevice &dev, const BmmShape &shape, BmmVariant variant,
          const BmmData *data)
{
    cisram_assert(isPow2(shape.kWords()) && shape.kWords() >= 1,
                  "kWords must be a power of two");
    cisram_assert(shape.kBits % 16 == 0, "kBits must pack into u16");
    if (dev.core(0).functional())
        cisram_assert(data != nullptr,
                      "functional run requires operands");

    Ctx ctx(dev, shape, data);
    switch (variant) {
      case BmmVariant::Baseline:
        return runBaseline(ctx);
      case BmmVariant::Opt1:
        return runOpt(ctx, false, false);
      case BmmVariant::Opt1Opt2:
        return runOpt(ctx, true, false);
      case BmmVariant::Opt1Opt3:
        return runOpt(ctx, false, true);
      case BmmVariant::AllOpts:
        return runOpt(ctx, true, true);
    }
    cisram_panic("unknown variant");
}

} // namespace cisram::kernels
