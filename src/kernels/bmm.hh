/**
 * @file
 * Binary matrix multiplication on the simulated APU (paper
 * Section 4, Fig. 12): the motivating example, implemented at every
 * optimization level.
 *
 * C(M, N) = A(M, kBits) x B(kBits, N) over {-1, +1} entries
 * bit-packed into u16 words along K: C[i][j] = kBits - 2 *
 * sum_w popcount(A[i][w] XOR B[w][j]).
 *
 * Variants (core/bmm_model.hh enums):
 *  - Baseline: inner-product mapping. Each A row is duplicated
 *    across a VR by a chunk-programmed DMA; B columns stream in
 *    column-major; reductions are spatial (add_subgrp_s16) and the
 *    scattered results leave by PIO.
 *  - Opt1: temporal SVP mapping. C tiles of floor(l/N) rows live in
 *    the VR; A scalars broadcast by indexed lookup from L3
 *    (row-major table); B rows are duplicated by chunked DMA per k;
 *    contiguous results leave by DMA.
 *  - Opt1+2: B is loaded once into reuse VMRs and broadcast per k by
 *    subgroup copy (coalesced DMA).
 *  - Opt1+3: the L3 A-tile uses the broadcast-friendly layout, so
 *    each lookup reads a window-sized table.
 *  - AllOpts: all three.
 *
 * In Functional mode the kernel computes real results on one core
 * (validated against bmmReference). In TimingOnly mode it accounts
 * the four-core parallel execution: tiles are split across cores and
 * the reported cycles are the critical path (largest share).
 */

#ifndef CISRAM_KERNELS_BMM_HH
#define CISRAM_KERNELS_BMM_HH

#include <cstdint>
#include <vector>

#include "apusim/apu.hh"
#include "core/bmm_model.hh"

namespace cisram::kernels {

/** Bit-packed operands. */
struct BmmData
{
    std::vector<uint16_t> a; ///< m x kWords, row-major
    std::vector<uint16_t> b; ///< kWords x n, row-major
};

/** Deterministic random +-1 matrices, bit-packed. */
BmmData genBmmData(const core::BmmShape &shape, uint64_t seed);

/** Scalar reference result. */
std::vector<int16_t> bmmReference(const core::BmmShape &shape,
                                  const BmmData &data);

/** Result of one APU run. */
struct BmmRunResult
{
    /** Per-stage cycles of the critical-path core. */
    core::StageBreakdown cycles;

    /** Microcode instruction estimate (Table 6 accounting). */
    double uops = 0;

    /** Functional mode only: the computed C (m x n, row-major). */
    std::vector<int16_t> c;
};

/**
 * Run one variant.
 *
 * @param data Functional mode: operands (results are computed and
 *        returned). TimingOnly mode: may be null.
 */
BmmRunResult runBmmApu(apu::ApuDevice &dev,
                       const core::BmmShape &shape,
                       core::BmmVariant variant, const BmmData *data);

} // namespace cisram::kernels

#endif // CISRAM_KERNELS_BMM_HH
