#include "kernels/rag_model.hh"

#include <cmath>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace cisram::kernels {

using baseline::RagCorpusSpec;
using model::LatencyEstimator;

namespace {

/** The kernel's fixed CP costs (kernels/rag.cc). */
constexpr double returnTopkCycles = 7000.0;
constexpr double mergeCyclesPerVr = 100.0;

/** Per-tile ingest handshake as the framework models it. */
double
ingest(const model::CostTable &t, bool coalesce)
{
    double init = t.dmaL4L2Init;
    if (coalesce)
        init /= 2.0;
    return init + 14.0 + t.dmaL2L1;
}

/** One per-score-VR top-k extraction pass. */
void
modelTopk(LatencyEstimator &e, size_t top_k)
{
    e.repeat(static_cast<double>(top_k), [&] {
        e.gvmlMaxIndexU16();
        e.pioLd(1); // RSP clear of the winner
    });
    e.charge(mergeCyclesPerVr);
}

} // namespace

double
predictRagCycles(LatencyEstimator &e, const RagCorpusSpec &corpus,
                 RagVariant variant, size_t top_k)
{
    const auto &t = e.table();
    double l = static_cast<double>(t.vrLength);
    double chunks = static_cast<double>(corpus.numChunks);
    double dim = static_cast<double>(corpus.dim);
    e.reset();

    if (variant == RagVariant::NoOpt) {
        double pad = static_cast<double>(
            size_t(1) << log2Ceil(corpus.dim));
        double cpt = l / pad;
        double tiles = std::ceil(chunks / cpt);
        double score_vrs = std::ceil(chunks / l);

        // Load query.
        e.fastDmaL4ToL2(pad * 2);
        e.directDmaL2ToL1_32k();
        e.gvmlLoad16();
        e.gvmlCpySubgrp16Grp();
        e.gvmlCpyImm16();

        // Distance per tile.
        e.repeat(tiles, [&] {
            e.charge(ingest(t, false));
            e.gvmlLoad16();
            e.gvmlMulS16();
            e.gvmlAddSubgrpS16(static_cast<size_t>(pad), 1);
            e.gvmlXor16();
            e.pioSt(cpt); // RSP drain of the group-head scores
        });

        // Top-k per score VR plus the post-drain clear.
        e.repeat(score_vrs, [&] {
            modelTopk(e, top_k);
            e.gvmlCpyImm16();
        });
        e.charge(returnTopkCycles);
        return e.cycles();
    }

    cisram_assert(variant == RagVariant::Opt1 ||
                      variant == RagVariant::AllOpts,
                  "unsupported variant for the RAG model");
    bool bf = variant == RagVariant::AllOpts;
    bool coalesce = variant == RagVariant::AllOpts;
    double supertiles = std::ceil(chunks / l);

    // Load query (the broadcast-friendly layout stages into L3).
    e.fastDmaL4ToL2(dim * 2);
    e.directDmaL2ToL1_32k();
    e.gvmlLoad16();
    if (bf)
        e.dmaL4ToL3(dim * 2);
    e.gvmlCpyImm16();

    e.repeat(supertiles, [&] {
        e.gvmlCpyImm16();
        e.repeat(dim, [&] {
            e.charge(ingest(t, coalesce));
            e.gvmlLoad16();
            if (bf)
                e.gvmlCpyImm16();
            else
                e.gvmlCpySubgrp16Grp();
            e.gvmlMulS16();
            e.gvmlAddS16();
        });
        e.gvmlXor16();
        modelTopk(e, top_k);
    });
    e.charge(returnTopkCycles);
    return e.cycles();
}

} // namespace cisram::kernels
