/**
 * @file
 * In-VR bitonic sort composites.
 *
 * The sort-and-compress idiom underlies the APU implementations of
 * word count and reverse index: a bitonic network whose exchanges are
 * realized with intra-VR shifts (cheap intra-bank path for distances
 * that are multiples of 4, Table 4) and masked min/max selection.
 * Cycle costs accrue naturally through the GVML component operations.
 */

#ifndef CISRAM_KERNELS_SORT_HH
#define CISRAM_KERNELS_SORT_HH

#include "gvml/gvml.hh"

namespace cisram::kernels {

/**
 * Scratch registers the sort clobbers. Callers provide eight VRs
 * distinct from key/payload.
 */
struct SortScratch
{
    gvml::Vr partnerKey; ///< exchange-partner keys
    gvml::Vr partnerPay; ///< exchange-partner payloads
    gvml::Vr maskJ;      ///< upper-of-pair mask
    gvml::Vr choice;     ///< keep-max mask
    gvml::Vr t1;         ///< temporary
    gvml::Vr t2;         ///< temporary
    gvml::Vr idx;        ///< element indices (persistent)
    gvml::Vr one;        ///< constant 1 (persistent)

    /** Default allocation in the upper VR file. */
    static SortScratch
    standard()
    {
        return {gvml::Vr(16), gvml::Vr(17), gvml::Vr(18),
                gvml::Vr(19), gvml::Vr(20), gvml::Vr(21),
                gvml::Vr(22), gvml::Vr(23)};
    }
};

/**
 * Sort the whole VR ascending by `key` (u16). With a payload, the
 * payload VR is permuted alongside the keys and ties break by
 * ascending payload (lexicographic order), making the sort
 * deterministic; without one, equal keys may exchange freely.
 */
void bitonicSortU16(gvml::Gvml &g, gvml::Vr key, bool has_payload,
                    gvml::Vr payload, const SortScratch &scratch);

} // namespace cisram::kernels

#endif // CISRAM_KERNELS_SORT_HH
