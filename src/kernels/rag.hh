/**
 * @file
 * Exact nearest-neighbour RAG retrieval on the simulated APU
 * (paper Section 5.3): the end-to-end workload behind Fig. 14,
 * Table 8, and Fig. 15.
 *
 * Corpus embeddings (368-dim int16) reside in the device's off-chip
 * memory, modeled as simulated HBM2e (src/dramsim) per the paper's
 * methodology: the embedding-load stage is timed by the HBM
 * simulator, everything else by the APU cycle model.
 *
 * Variants:
 *  - NoOpt: spatial mapping. Chunks are padded to 512 elements for
 *    subgroup alignment (this padding is why the unoptimized
 *    embedding load streams more bytes: 8.2 ms vs 6.1 ms at 200 GB
 *    in the paper), dot products reduce with add_subgrp_s16, and
 *    the scattered per-chunk scores leave the VR by PIO.
 *  - Opt1: communication-aware reduction mapping. Embeddings are
 *    stored dimension-major; each VR lane accumulates one chunk's
 *    dot product temporally, one element-wise MAC per dimension,
 *    with the query scalar broadcast by subgroup copy.
 *  - Opt2 (on either base): coalesced DMA descriptor chains for the
 *    streamed planes/tiles.
 *  - Opt3: broadcast-friendly query layout: the CP broadcasts query
 *    scalars as immediates instead of subgroup copies.
 *  - AllOpts: Opt1 + Opt2 + Opt3.
 *
 * Top-k uses the associative global-max search per score VR; the CP
 * merges per-VR candidates.
 */

#ifndef CISRAM_KERNELS_RAG_HH
#define CISRAM_KERNELS_RAG_HH

#include <cstdint>
#include <vector>

#include "apusim/apu.hh"
#include "baseline/faisslite.hh"
#include "baseline/ivf.hh"
#include "baseline/workloads.hh"
#include "dramsim/dram_sim.hh"

namespace cisram::kernels {

enum class RagVariant { NoOpt, Opt1, Opt2, Opt3, AllOpts };

const char *ragVariantName(RagVariant v);

/**
 * Per-query index parameters, routed with the query through
 * admission, batching, sharding, and replay. Queries only share a
 * device batch when their params are identical (the batch former
 * enforces this), so one RagSearchParams describes a whole batch.
 */
struct RagSearchParams
{
    /**
     * Inverted lists to probe. 0 = exhaustive scan (no coarse
     * quantization). Values >= the clustering's list count probe
     * every list, which scans the same chunk set as the exhaustive
     * path and must bit-compare with it (the nprobe=K identity
     * invariant; gated by tests).
     */
    size_t nprobe = 0;

    /**
     * Metadata predicate: bitmask of admitted chunk labels
     * (baseline::chunkLabel); kFilterAll = unfiltered. On-device the
     * predicate plane is ANDed into the match mask — one masked
     * select per score VR, nearly free next to the dim-long MAC
     * loop. The CPU golden applies the identical predicate.
     */
    uint16_t filterMask = baseline::kFilterAll;

    bool
    operator==(const RagSearchParams &o) const
    {
        return nprobe == o.nprobe && filterMask == o.filterMask;
    }

    bool
    operator!=(const RagSearchParams &o) const
    {
        return !(*this == o);
    }
};

/** Options for retrieveBatch. */
struct RagBatchOptions
{
    /**
     * Double-buffer the per-supertile HBM embedding stream behind
     * distance compute on the other DMA engine: while the VXU scores
     * supertile st, the stream for supertile st+1 lands in the spare
     * L4 buffer. Costed as max(stream, compute) per steady-state
     * supertile plus one pipeSyncL4L1 per supertile, instead of
     * stream + compute (see DESIGN.md "Overlapped corpus
     * streaming"). Functional results are unaffected — only the
     * timing ledger changes.
     */
    bool overlapStream = false;

    /** Index parameters shared by every query in the batch. */
    RagSearchParams search;

    /**
     * Coarse quantizer backing search.nprobe > 0. Host-built once
     * per corpus (baseline::IvfClustering::build) and resident
     * across batches; its centroid table stages into L3/L4 for the
     * device's coarse pass. Null forces the exhaustive path
     * regardless of nprobe.
     */
    const baseline::IvfClustering *ivf = nullptr;
};

/** Table 8 stage latencies, in seconds. */
struct RagStageLatency
{
    double loadEmbedding = 0; ///< simulated HBM stream
    double loadQuery = 0;
    double calcDistance = 0;
    double topkAggregation = 0;
    double returnTopk = 0;

    /**
     * Seconds of the embedding stream hidden behind distance compute
     * when the overlapped streaming mode is on (0 otherwise). Stage
     * latencies above keep their full per-stage attribution so Table
     * 8 breakdowns stay comparable across modes; total() subtracts
     * the hidden portion to yield the critical-path latency
     * max(stream, compute) + pipeline syncs instead of their sum.
     */
    double overlapHidden = 0;

    double
    total() const
    {
        return loadEmbedding + loadQuery + calcDistance +
            topkAggregation + returnTopk - overlapHidden;
    }
};

struct RagRunResult
{
    RagStageLatency stages;

    /** Functional mode: the exact top-k hits (score = int dot). */
    std::vector<baseline::Hit> hits;

    /**
     * Device address of the staged top-k result ids (u32 each, in
     * rank order) for the return-topk stage. Host code reads the
     * ids back from *this* buffer over PCIe — not from the query
     * buffer. topkIdsCount is 0 in TimingOnly mode (no functional
     * results exist to stage).
     */
    uint64_t topkIdsAddr = 0;
    size_t topkIdsCount = 0;

    // Activity for the energy model (Fig. 15).
    double computeSeconds = 0; ///< VXU-active time
    double dramBytes = 0;      ///< off-chip bytes streamed
    double cacheBytes = 0;     ///< bytes through L2/L1

    /**
     * OK unless the embedding stream hit an uncorrectable DRAM ECC
     * error (injected dram_flip2 fault), in which case the scores
     * derived from it cannot be trusted and the serving loop should
     * retry or fall back. Single-bit flips are corrected inline by
     * SECDED and never surface here.
     */
    Status status = Status::okStatus();
};

class RagRetriever
{
  public:
    /**
     * @param hbm The off-chip memory model used for embedding
     *        streaming (typically hbm2eConfig()).
     * @param core_idx The device core this retriever executes on.
     *        A serving loop sharded with runOnAllCores constructs
     *        one retriever per core; retrievers on distinct cores
     *        may run concurrently (each needs its own DramSystem —
     *        the HBM model is stateful).
     */
    RagRetriever(apu::ApuDevice &dev, dram::DramSystem &hbm,
                 baseline::RagCorpusSpec corpus, size_t top_k = 5,
                 unsigned core_idx = 0);

    ~RagRetriever();

    RagRetriever(const RagRetriever &) = delete;
    RagRetriever &operator=(const RagRetriever &) = delete;

    /**
     * Serve one query.
     *
     * Functional mode (device core 0 in Functional mode): the corpus
     * must be small enough to materialize; embeddings are generated
     * from `corpus_seed` and real hits are returned.
     * TimingOnly mode: stages are timed at any corpus scale.
     */
    RagRunResult retrieve(const std::vector<int16_t> &query,
                          RagVariant variant, uint64_t corpus_seed);

    /**
     * Batched retrieval (throughput extension): serve up to eight
     * queries in one pass over the corpus, amortizing the embedding
     * stream and the per-plane ingest across the batch. Uses the
     * fully optimized (AllOpts) mapping; one accumulator VR per
     * query.
     *
     * @return Per-query results; each carries the whole batch's
     *         stage latencies divided evenly (throughput view).
     */
    std::vector<RagRunResult>
    retrieveBatch(const std::vector<std::vector<int16_t>> &queries,
                  uint64_t corpus_seed, RagBatchOptions opts = {});

    /**
     * GSI-float-scored retrieval (extension): embeddings and query
     * are converted to the device's native gf16 (1s/6e/9m) format
     * and distances accumulate with mul_gf16/add_gf16, whose 77-
     * cycle latency undercuts mul_s16's 201 (Table 5). Scores rank
     * through the order-preserving bias transform; hits report the
     * gf16 dot products. Uses the AllOpts mapping.
     */
    RagRunResult retrieveGf16(const std::vector<int16_t> &query,
                              uint64_t corpus_seed);

    const baseline::RagCorpusSpec &corpus() const { return corpus_; }

  private:
    struct StageCycles;

    RagRunResult retrieveSpatial(const std::vector<int16_t> &query,
                                 bool coalesce, bool bf_query,
                                 uint64_t corpus_seed);
    RagRunResult retrieveTemporal(const std::vector<int16_t> &query,
                                  bool coalesce, bool bf_query,
                                  uint64_t corpus_seed);

    /**
     * Probe-restricted batch: coarse centroid pass on-device, then
     * stream only the probed inverted lists (each list as its own
     * ragged supertile run). Called by retrieveBatch when opts
     * carry a clustering and nprobe > 0.
     */
    std::vector<RagRunResult>
    retrieveIvfBatch(const std::vector<std::vector<int16_t>> &queries,
                     uint64_t corpus_seed,
                     const RagBatchOptions &opts);

    /** Stage res.hits' ids into the device id buffer (slot 0..7). */
    void publishTopkIds(RagRunResult &res, size_t slot);

    apu::ApuDevice &dev;
    dram::DramSystem &hbm;
    baseline::RagCorpusSpec corpus_;
    size_t topK;
    unsigned coreIdx_;
    uint64_t idsAddr_; ///< 8 batch slots of topK u32 ids each
};

} // namespace cisram::kernels

#endif // CISRAM_KERNELS_RAG_HH
