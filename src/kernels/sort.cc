#include "kernels/sort.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace cisram::kernels {

using gvml::Gvml;
using gvml::Vr;

void
bitonicSortU16(Gvml &g, Vr key, bool has_payload, Vr payload,
               const SortScratch &s)
{
    size_t n = g.length();
    cisram_assert(isPow2(n), "bitonic sort needs pow2 length");

    // Persistent per-sort state: element indices and an all-ones
    // mask bit for the bit tests (n <= 65536 so indices fit u16).
    g.createIndexU16(s.idx);
    g.cpyImm16(s.one, 1);

    for (size_t k = 2; k <= n; k <<= 1) {
        unsigned lg_k = log2Floor(k);
        for (size_t j = k >> 1; j > 0; j >>= 1) {
            unsigned lg_j = log2Floor(j);

            // maskJ = (i & j) != 0 : the element is the upper of
            // its exchange pair.
            g.srImm16(s.maskJ, s.idx, lg_j);
            g.and16(s.maskJ, s.maskJ, s.one);
            // choice = maskJ ^ ((i & k) != 0): 1 -> keep max.
            // For k == n the k-bit of every index is 0.
            if (lg_k < 16) {
                g.srImm16(s.choice, s.idx, lg_k);
                g.and16(s.choice, s.choice, s.one);
                g.xor16(s.choice, s.choice, s.maskJ);
            } else {
                g.cpy16(s.choice, s.maskJ);
            }

            // Partner key: key[i + j] for lower elements, key[i - j]
            // for upper ones.
            g.shiftE(s.partnerKey, key,
                     static_cast<int64_t>(j));
            g.shiftE(s.t1, key, -static_cast<int64_t>(j));
            g.cpy16Msk(s.partnerKey, s.t1, s.maskJ);
            if (has_payload) {
                g.shiftE(s.partnerPay, payload,
                         static_cast<int64_t>(j));
                g.shiftE(s.t1, payload, -static_cast<int64_t>(j));
                g.cpy16Msk(s.partnerPay, s.t1, s.maskJ);
            }

            // take = (partner <_lex self) ^ choice.
            g.ltU16(s.t1, s.partnerKey, key);
            if (has_payload) {
                g.eq16(s.t2, s.partnerKey, key);
                g.ltU16(s.maskJ, s.partnerPay, payload);
                g.and16(s.t2, s.t2, s.maskJ);
                g.or16(s.t1, s.t1, s.t2);
            }
            g.xor16(s.t1, s.t1, s.choice);

            g.cpy16Msk(key, s.partnerKey, s.t1);
            if (has_payload)
                g.cpy16Msk(payload, s.partnerPay, s.t1);
        }
    }
}

} // namespace cisram::kernels
