/**
 * @file
 * Fault-tolerant serving primitives for the RAG loop.
 *
 * A production serving loop in front of the accelerator cannot treat
 * a device fault as fatal: a hung task, a corrupted PCIe transfer, or
 * an uncorrectable ECC error on one core must degrade that query, not
 * the service. The pieces here encode the standard pattern:
 *
 *  - RetryPolicy: how many times to re-issue a failed device attempt
 *    before giving up on the device for this query.
 *  - CircuitBreaker (one per device core): after `failureThreshold`
 *    consecutive query failures the breaker trips Open and queries
 *    route straight to the CPU fallback without touching the device;
 *    after `cooldownQueries` fallback queries it goes HalfOpen and
 *    the next query probes the device once — success re-closes the
 *    breaker, failure re-opens it and the cooldown restarts.
 *
 * Both are deterministic (no wall-clock anywhere: the cooldown is
 * counted in queries, not seconds), so a serving run under an armed
 * fault plan is reproducible bit-for-bit.
 */

#ifndef CISRAM_KERNELS_SERVING_HH
#define CISRAM_KERNELS_SERVING_HH

namespace cisram::kernels {

/** Circuit-breaker state (DESIGN.md "Fault model"). */
enum class BreakerState { Closed, Open, HalfOpen };

const char *breakerStateName(BreakerState s);

/** Per-query device retry budget. */
struct RetryPolicy
{
    /** Device attempts per query before falling back to CPU. */
    unsigned maxAttempts = 3;

    /** Per-attempt device deadline, simulated seconds. */
    double deadlineSeconds = 0.1;
};

/**
 * One core's breaker. Not thread-safe: each serving shard owns the
 * breaker of the core it drives, matching the one-session-per-core
 * structure of the serving loop.
 */
class CircuitBreaker
{
  public:
    explicit CircuitBreaker(unsigned failure_threshold = 3,
                            unsigned cooldown_queries = 4)
        : threshold_(failure_threshold), cooldown_(cooldown_queries)
    {}

    /**
     * Gate one query: true to try the device (Closed, or the single
     * HalfOpen probe), false to go straight to the CPU fallback.
     * While Open, each call counts down the cooldown; the call that
     * exhausts it transitions to HalfOpen and admits the probe.
     */
    bool allowRequest();

    /** The admitted device query succeeded: close the breaker. */
    void recordSuccess();

    /**
     * The admitted device query failed (after its retry budget).
     * Closed: counts toward the trip threshold. HalfOpen: the probe
     * failed, re-open and restart the cooldown.
     */
    void recordFailure();

    BreakerState state() const { return state_; }
    unsigned consecutiveFailures() const { return consecutive_; }

    /** Times the breaker tripped Closed/HalfOpen -> Open. */
    unsigned trips() const { return trips_; }

  private:
    void trip();

    unsigned threshold_;
    unsigned cooldown_;
    BreakerState state_ = BreakerState::Closed;
    unsigned consecutive_ = 0;
    unsigned remainingCooldown_ = 0;
    unsigned trips_ = 0;
};

} // namespace cisram::kernels

#endif // CISRAM_KERNELS_SERVING_HH
