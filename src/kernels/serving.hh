/**
 * @file
 * Serving primitives for the RAG loop: fault tolerance plus the
 * asynchronous batched pipeline.
 *
 * A production serving loop in front of the accelerator cannot treat
 * a device fault as fatal: a hung task, a corrupted PCIe transfer, or
 * an uncorrectable ECC error on one core must degrade that query, not
 * the service. And it cannot afford to run one query per corpus pass:
 * `RagRetriever::retrieveBatch` amortizes the dominant embedding
 * stream over up to eight queries, so the serving loop's job is to
 * *form* those batches from an admission queue. The pieces here
 * encode both patterns:
 *
 *  - RetryPolicy: how many times to re-issue a failed device attempt
 *    before giving up on the device for this query/batch.
 *  - CircuitBreaker (one per device core): after `failureThreshold`
 *    consecutive query failures the breaker trips Open and queries
 *    route straight to the CPU fallback without touching the device;
 *    after `cooldownQueries` fallback queries it goes HalfOpen and
 *    the next query probes the device once — success re-closes the
 *    breaker, failure re-opens it and the cooldown restarts.
 *  - BatchFormer: a FIFO admission queue plus a deterministic batch
 *    former. A batch ships when `maxBatch` queries are pending, or
 *    when the oldest pending query has seen `maxLingerAdmissions`
 *    later admissions (the linger bound is counted in admissions,
 *    like the breaker's cooldown is counted in queries — no wall
 *    clock anywhere).
 *  - DeviceServer (one per device core): the full serving shard.
 *    Owns the core's retriever, HBM model, GDL session, breaker, and
 *    batch former; serves formed batches through one `retrieveBatch`
 *    call under the retry/breaker/fallback policy, with queue wait
 *    counted into each query's served latency. With a
 *    recovery::HealthPolicy enabled it also owns the escalation
 *    ladder above retry: a recovery::HealthMonitor quarantines a
 *    persistently faulting core, admissions are shed
 *    (ResourceExhausted) while quarantined, and drain() escalates to
 *    a gdl core reset — re-allocate, re-stage the shard, replay the
 *    admission journal with exactly-once outcomes (DESIGN.md
 *    "Escalation ladder").
 *
 * Everything is deterministic (no wall clock: cooldowns and linger
 * are counted in queries, waits in simulated seconds), so a serving
 * run — even under an armed fault plan, even threaded — is
 * reproducible bit-for-bit.
 */

#ifndef CISRAM_KERNELS_SERVING_HH
#define CISRAM_KERNELS_SERVING_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apusim/apu.hh"
#include "baseline/faisslite.hh"
#include "baseline/timing_models.hh"
#include "baseline/workloads.hh"
#include "dramsim/dram_sim.hh"
#include "gdl/gdl.hh"
#include "kernels/rag.hh"
#include "obs/flight.hh"
#include "recovery/health.hh"
#include "recovery/journal.hh"

namespace cisram::kernels {

/** Circuit-breaker state (DESIGN.md "Fault model"). */
enum class BreakerState { Closed, Open, HalfOpen };

const char *breakerStateName(BreakerState s);

/** Per-query device retry budget. */
struct RetryPolicy
{
    /** Device attempts per query before falling back to CPU. */
    unsigned maxAttempts = 3;

    /**
     * Per-attempt device deadline, simulated seconds. For batched
     * serving this bounds one whole-batch attempt, so size it for a
     * full corpus pass at the configured batch size.
     */
    double deadlineSeconds = 0.1;
};

/**
 * One core's breaker. Not thread-safe: each serving shard owns the
 * breaker of the core it drives, matching the one-session-per-core
 * structure of the serving loop.
 */
class CircuitBreaker
{
  public:
    explicit CircuitBreaker(unsigned failure_threshold = 3,
                            unsigned cooldown_queries = 4)
        : threshold_(failure_threshold), cooldown_(cooldown_queries)
    {}

    /**
     * Gate one query: true to try the device (Closed, or the single
     * HalfOpen probe), false to go straight to the CPU fallback.
     * While Open, exactly `cooldownQueries` calls fall back (each
     * counting down the cooldown); the following call transitions to
     * HalfOpen and admits the probe.
     */
    bool allowRequest();

    /** The admitted device query succeeded: close the breaker. */
    void recordSuccess();

    /**
     * The admitted device query failed (after its retry budget).
     * Closed: counts toward the trip threshold. HalfOpen: the probe
     * failed, re-open and restart the cooldown.
     */
    void recordFailure();

    BreakerState state() const { return state_; }
    unsigned consecutiveFailures() const { return consecutive_; }

    /** Times the breaker tripped Closed/HalfOpen -> Open. */
    unsigned trips() const { return trips_; }

  private:
    void trip();

    unsigned threshold_;
    unsigned cooldown_;
    BreakerState state_ = BreakerState::Closed;
    unsigned consecutive_ = 0;
    unsigned remainingCooldown_ = 0;
    unsigned trips_ = 0;
};

// ---------------------------------------------------------------------
// Batched serving pipeline.

/**
 * Admission identity of a query: which tenant sent it and which SLO
 * class it bought. Carried from admission through the journal to the
 * outcome so shedding, failover replay, and per-class SLO windows all
 * see the same identity. Class numbering: 0 is the *highest* class;
 * larger numbers shed first under overload. The defaults ("-", 0)
 * keep single-tenant callers label-stable.
 */
struct AdmitClass
{
    std::string tenant = "-";
    unsigned sloClass = 0;

    bool
    operator==(const AdmitClass &o) const
    {
        return tenant == o.tenant && sloClass == o.sloClass;
    }
};

/** One admitted query awaiting batch formation. */
struct PendingQuery
{
    /** Caller-assigned id, carried through to the outcome. */
    uint64_t id = 0;

    std::vector<int16_t> embedding;

    /**
     * Core-local simulated time at admission (set by
     * DeviceServer::enqueue); the batch former itself never reads
     * it. Queue wait = service start time - this.
     */
    double admitSeconds = 0;

    /**
     * Per-query index parameters (nprobe, metadata filter). One
     * retrieveBatch call shares a single RagSearchParams, so the
     * batch former only coalesces queries whose params are equal.
     */
    RagSearchParams search;

    /** Tenant + SLO class this query admitted under. */
    AdmitClass cls;
};

/**
 * Journal payload for one admitted query: everything a replay (core
 * reset) or a failover hand-off needs to re-serve it identically —
 * the embedding *and* its index params. A replayed filtered IVF
 * query must probe the same lists under the same predicate, or the
 * replay is not bit-identical to the un-faulted run.
 */
struct QueryPayload
{
    std::vector<int16_t> embedding;
    RagSearchParams search;

    /**
     * Admission identity, preserved across replay/failover so a
     * replayed query sheds, labels, and windows exactly like the
     * original admission would have.
     */
    AdmitClass cls;
};

/** Deterministic batch-formation policy (no wall clock). */
struct BatchPolicy
{
    /** Queries coalesced into one retrieveBatch call (1..8). */
    size_t maxBatch = 8;

    /**
     * A pending query ships after at most this many *later*
     * admissions, even if the batch is not full — the query-counted
     * analogue of a batching timeout. 0 means every admission ships
     * immediately (sequential serving).
     */
    size_t maxLingerAdmissions = 8;

    /**
     * Close-out bound for open-loop traffic, simulated seconds
     * (0 = disabled). Admission-count linger alone is unbounded
     * under a sparse arrival trace: the tail query of a burst waits
     * forever for batch-mates that never arrive. With this set, a
     * pending batch also ships once the *observed arrival clock*
     * (DeviceServer::pumpUntil's `now`) reaches the oldest pending
     * admission plus this bound. Still deterministic: the clock is
     * simulated, derived from the arrival trace, never wall time.
     */
    double maxLingerSeconds = 0;
};

/**
 * Admission queue + batch former. FIFO, deterministic: batch
 * boundaries depend only on the admission sequence, never on time or
 * thread interleaving.
 */
class BatchFormer
{
  public:
    explicit BatchFormer(BatchPolicy policy = {});

    void admit(PendingQuery q);

    /**
     * True when a batch should ship now: `maxBatch` queries are
     * pending, or the oldest pending query has lingered through
     * `maxLingerAdmissions` later admissions.
     */
    bool batchReady() const;

    /**
     * batchReady() plus the time-based close-out: also true when
     * `maxLingerSeconds` is set and the oldest pending query has
     * been waiting since before `now - maxLingerSeconds`. `now` is
     * the caller's observed simulated clock (the latest arrival the
     * open-loop driver has revealed), not this core's busy clock.
     */
    bool batchReadyAt(double now) const;

    /** Admission timestamp of the oldest pending query. */
    double frontAdmitSeconds() const;

    /**
     * Pop the next batch: the maximal FIFO prefix (up to `maxBatch`
     * queries) whose search params all equal the front query's — a
     * device batch runs one coarse pass and one filter plane, so
     * mixed-params queries cannot share it. FIFO order is never
     * reordered around a param boundary (no starvation, no
     * priority inversion); a mixed queue just ships more, smaller
     * batches. Also used to flush the tail: callable regardless of
     * batchReady(); returns an empty vector when nothing is pending.
     */
    std::vector<PendingQuery> takeBatch();

    size_t depth() const { return queue_.size(); }
    bool empty() const { return queue_.empty(); }
    const BatchPolicy &policy() const { return policy_; }

    uint64_t admitted() const { return admissions_; }
    uint64_t batchesFormed() const { return batches_; }

  private:
    struct Entry
    {
        PendingQuery query;
        uint64_t serial; ///< admission count when enqueued
    };

    BatchPolicy policy_;
    std::deque<Entry> queue_;
    uint64_t admissions_ = 0;
    uint64_t batches_ = 0;
};

/** How one query was answered. */
struct ServeOutcome
{
    uint64_t id = 0;           ///< PendingQuery id (0 for serve())
    bool ok = false;
    bool fromDevice = false;
    unsigned attempts = 0;     ///< device attempts made (per batch)
    size_t batchSize = 1;      ///< queries in the batch it shipped in
    std::vector<uint32_t> ids; ///< host-visible top-k ids

    /**
     * Device result. In functional mode `run.hits` carries the exact
     * scored top-k from *either* path (the device pass fills it; the
     * CPU fallback copies the golden index's hits into it) so a
     * scatter-gather merge can re-rank shard results by score
     * without caring how the shard was answered.
     */
    RagRunResult run;

    double queueWaitSeconds = 0; ///< simulated admission-queue wait
    double retrievalSeconds = 0; ///< device or CPU retrieval (whole
                                 ///< batch: the query waits for it)
    double hostSeconds = 0;      ///< PCIe staging + failed attempts
    std::string lastError;       ///< last device failure, if any

    /** Tenant + SLO class the query admitted under. */
    AdmitClass cls;

    /** End-to-end served latency of this query, simulated seconds. */
    double
    servedSeconds() const
    {
        return queueWaitSeconds + retrievalSeconds + hostSeconds;
    }
};

/**
 * Bounded-admission policy: overload is shed at the door with
 * ResourceExhausted — never a silent drop — so a quarantined core's
 * redirected load cannot collapse its siblings. Both bounds default
 * to 0 (disabled): a server without an explicit policy admits
 * everything, exactly as before this subsystem existed.
 */
struct AdmissionPolicy
{
    /** Pending queries the queue will hold (0 = unbounded). */
    size_t maxQueueDepth = 0;

    /**
     * Shed an admission whose predicted queue delay (pending batches
     * ahead x the EWMA batch service time, simulated seconds)
     * exceeds this (0 = disabled). Deterministic: the estimate is a
     * pure function of the admission sequence and served batches.
     */
    double maxQueueDelaySeconds = 0;

    /**
     * SLO classes sharing this server (0 or 1 = classless, the caps
     * above apply uniformly). With C > 1 classes, class c (clamped
     * to C-1) sees the caps scaled by (C-c)/C: class 0 keeps the
     * full budget, the lowest class gets 1/C of it — so under
     * overload the lowest class deterministically sheds first and
     * the highest sheds last, with no reordering and no preemption.
     */
    unsigned sloClasses = 0;
};

/** Per-core serving configuration. */
struct ServerConfig
{
    size_t topK = 5;

    /**
     * Fleet device this shard belongs to, carried on every recovery
     * metric series (shed/parked/replayed/transitions) and into the
     * GDL session + HBM model for `device=N` fault clause scoping.
     * 0 for standalone single-device serving.
     */
    unsigned deviceIndex = 0;
    RetryPolicy retry{3, 0.5};
    unsigned breakerThreshold = 2;
    unsigned breakerCooldown = 2;
    BatchPolicy batch;

    /** Double-buffer the HBM embedding stream behind compute. */
    bool overlapStream = true;

    /** Escalation-ladder policy (disabled by default). */
    recovery::HealthPolicy health;

    /** Admission bounds (disabled by default). */
    AdmissionPolicy admission;

    /** Patrol-scrub cadence for this core's HBM (off by default). */
    dram::ScrubConfig scrub;

    /**
     * Flight-recorder enablement (obs/flight.hh). Auto (default)
     * records only when CISRAM_TRACE armed tracing before the server
     * was built; On forces the attribution ledger even without a
     * trace sink (tests, attribution studies). Recording never
     * charges simulated time.
     */
    obs::FlightConfig flight;

    /**
     * Core resets drain() may perform before it stops escalating and
     * forces the remaining parked queries through the CPU fallback.
     */
    unsigned maxResets = 2;

    /**
     * IVF-lite serving (DESIGN.md section 11). When enabled the
     * server trains a coarse quantizer over its corpus shard at
     * construction (host-side; it survives core resets — the
     * clustering is host state, only the centroid staging is
     * re-paid) and honours per-query `nprobe`/`filterMask` params.
     * Disabled (default): params with nprobe > 0 are a
     * configuration error.
     */
    struct IvfServingConfig
    {
        bool enabled = false;
        baseline::IvfBuildConfig build;
    } ivf;
};

/**
 * One core's serving shard: admission queue, batch former, retriever,
 * and the retry/breaker/fallback machinery, all core-private (the
 * HBM model is stateful and a GDL session is single-threaded, so
 * each core owns one of each). Driven by exactly one shard thread.
 *
 * Pipeline usage:
 *   server.enqueue(id, embedding);     // admit
 *   for (auto &o : server.pump()) ...  // serve ready batches
 *   for (auto &o : server.drain()) ... // flush the tail
 *
 * serve() is the synchronous single-query path (no queue), used by
 * probes and tests.
 */
class DeviceServer
{
  public:
    /**
     * @param golden Exact CPU index for fallback answers; may be
     *        null (timing-only serving), in which case fallbacks
     *        return no ids but still charge CPU latency.
     */
    DeviceServer(apu::ApuDevice &dev, baseline::RagCorpusSpec spec,
                 unsigned core, const baseline::IndexFlatI16 *golden,
                 uint64_t corpus_seed, ServerConfig cfg = {});

    /**
     * Admit one query into this core's queue. OK on admission;
     * ResourceExhausted when the admission policy sheds it (queue
     * full, predicted delay over budget) or the core is Quarantined
     * — the caller re-routes or reports, but the query is never
     * silently dropped. With the default (disabled) health and
     * admission policies every call returns OK. `search` carries the
     * query's index params (nprobe > 0 requires cfg.ivf.enabled).
     * `cls` is the tenant + SLO class the query admits under; with
     * AdmissionPolicy::sloClasses set, lower classes see tighter
     * caps and shed first.
     */
    Status enqueue(uint64_t id, std::vector<int16_t> embedding,
                   RagSearchParams search = {}, AdmitClass cls = {});

    /**
     * Admit with an explicit admission timestamp instead of this
     * core's current busy clock — the failover path replays
     * journaled queries on a replica with their *original* admit
     * times, so queue-wait math (and therefore served latency) is
     * identical to the run that never lost the device. Callers must
     * advanceClock() past `admit_seconds` first if the replica's
     * clock is behind the originating device's.
     */
    Status enqueueAt(uint64_t id, std::vector<int16_t> embedding,
                     double admit_seconds,
                     RagSearchParams search = {},
                     AdmitClass cls = {});

    /**
     * Ratchet this core's busy clock forward to `t` (no-op if it is
     * already past). The fleet router uses this to model the arrival
     * of work dispatched at fabric time `t`: a replica that was idle
     * until a failover cannot start serving before the hand-off
     * reaches it.
     */
    void advanceClock(double t);

    /**
     * Evacuate every admitted-but-unserved query for replay
     * elsewhere: pending journal entries (id, payload = embedding +
     * search params, original admitSeconds) are handed off in
     * admission order, the batch queue is cleared, and each
     * evacuation is recorded as a non-silent shed (metrics + flight
     * ledger). The caller owns re-admission under a fresh
     * namespaced id.
     */
    std::vector<recovery::JournalEntry<QueryPayload>> evacuate();

    /**
     * Quarantine this core now (fleet kill switch / chaos tooling):
     * subsequent admissions shed until drain() escalates to a reset
     * or the router evacuates. Requires an enabled health policy.
     */
    void forceQuarantine();

    /** Serve every currently ready batch; outcomes in query order. */
    std::vector<ServeOutcome> pump();

    /**
     * pump() for open-loop traffic: also ships batches whose oldest
     * pending query has aged past BatchPolicy::maxLingerSeconds as
     * of the observed arrival clock `now`. Service of a lingered
     * batch cannot start before its close-out instant (the core's
     * clock is ratcheted there first), so served latency is
     * independent of how often the driver polls.
     */
    std::vector<ServeOutcome> pumpUntil(double now);

    /**
     * Swap in the next corpus epoch: an epoch-overlaid spec (same
     * dim, same shard range; numChunks grown by the overlay's
     * inserts) whose CorpusEpochView the caller keeps alive. The
     * epoch barrier is a drain(): every query admitted under the
     * old epoch is served against it first — the returned outcomes
     * — then the device footprint is torn down and rebuilt in the
     * reset choreography's allocation order and `delta_bytes` of
     * incremental re-staging (inserted rows + refreshed tombstone
     * plane) is charged over PCIe. Queries admitted afterwards
     * observe exactly the new epoch. Not supported with IVF serving
     * (the clustering would need a rebuild; retrieveIvfBatch asserts
     * it never sees an overlay).
     */
    std::vector<ServeOutcome>
    applyMutation(const baseline::RagCorpusSpec &epoch_spec,
                  uint64_t new_epoch, uint64_t delta_bytes);

    /** Epoch of the corpus snapshot this server currently serves. */
    uint64_t corpusEpoch() const { return epoch_; }

    /**
     * Serve everything still pending, escalating as needed: parked
     * batches on a Quarantined core trigger a core reset + journal
     * replay (up to `maxResets`), after which anything still
     * undelivered is forced through the CPU fallback. On return the
     * admission journal is empty — every admitted query has exactly
     * one outcome.
     */
    std::vector<ServeOutcome> drain();

    /** Synchronous single-query serve (bypasses the queue). */
    ServeOutcome serve(const std::vector<int16_t> &query,
                       RagSearchParams search = {});

    /**
     * Cumulative simulated seconds this core has spent serving
     * (device attempts, PCIe, CPU fallbacks). Queue waits are
     * measured against this clock; aggregate QPS = queries / the
     * busiest core's busySeconds.
     */
    double busySeconds() const { return busySeconds_; }

    CircuitBreaker &breaker() { return breaker_; }
    const BatchFormer &former() const { return former_; }
    gdl::GdlContext &host() { return host_; }
    const dram::DramSystem &hbm() const { return hbm_; }
    const ServerConfig &config() const { return cfg_; }

    /** This shard's coarse quantizer (null unless cfg.ivf.enabled). */
    const baseline::IvfClustering *clustering() const
    {
        return clustering_.get();
    }

    /** This core's health watchdog (ladder state, transitions). */
    const recovery::HealthMonitor &health() const { return health_; }

    /**
     * This core's query-lifecycle flight recorder (span ledger for
     * every journaled admission; see obs/flight.hh). Disabled unless
     * cfg.flight says otherwise.
     */
    const obs::FlightRecorder &flightRecorder() const
    {
        return flight_;
    }

    /** Core resets performed so far. */
    unsigned resets() const { return resets_; }

    /** Journaled queries replayed across resets so far. */
    uint64_t replayedQueries() const { return replayed_; }

    /** Admitted queries whose outcome has not been delivered yet. */
    size_t journalOutstanding() const
    {
        return journal_.outstanding();
    }

    /**
     * Reset this core now (bench/chaos tooling): quarantine it if
     * the health policy is enabled, then run the full reset +
     * re-stage + replay choreography regardless.
     */
    gdl::ResetOutcome forceReset();

    /**
     * Corpus-shard bytes a reset must re-stage over PCIe: the core's
     * slice of the embedding matrix, capped at its share of device
     * DRAM (only the resident slice is lost — the stream beyond it
     * was never device-resident).
     */
    uint64_t restageBytes() const;

  private:
    /**
     * Serve one formed batch through the fault-tolerant path.
     * `journaled` marks queries tracked in the admission journal
     * (pipeline path); `allow_park` lets the batch park un-served
     * when the core quarantines mid-retry (drain() escalates it).
     * A parked batch returns no outcomes.
     */
    std::vector<ServeOutcome>
    serveBatch(std::vector<PendingQuery> batch, bool journaled,
               bool allow_park);

    /** The reset + re-stage + journal-replay choreography. */
    gdl::ResetOutcome performReset();

    /**
     * One whole-batch device attempt: stage the queries over PCIe,
     * run retrieveBatch under the deadline, read the staged top-k
     * ids back. On success fills outs[*].{ids,run}.
     */
    Status tryDeviceBatch(const std::vector<PendingQuery> &batch,
                          std::vector<ServeOutcome> &outs);

    /**
     * Exact CPU retrieval at Xeon latency; always succeeds. Honours
     * the query's search params: IVF params go through the IVF
     * golden (same clustering the device probes, so functional
     * answers bit-compare), a bare filter through the filtered flat
     * scan.
     */
    void cpuFallback(const std::vector<int16_t> &query,
                     const RagSearchParams &search,
                     ServeOutcome &out);

    apu::ApuDevice &dev_;
    baseline::RagCorpusSpec spec_;
    unsigned core_;
    const baseline::IndexFlatI16 *golden_;
    uint64_t corpusSeed_;
    ServerConfig cfg_;
    CircuitBreaker breaker_;
    baseline::XeonTimingModel xeon_;
    dram::DramSystem hbm_;

    // Rebuilt by performReset (a reset loses the device footprint);
    // unique_ptr/optional so teardown and re-construction run in the
    // original allocation order, which the DramAllocator's free-list
    // recycling turns into identical addresses — the replay
    // bit-identity hinges on that.
    std::unique_ptr<RagRetriever> retriever_;
    gdl::GdlContext host_;
    std::optional<gdl::DeviceBuffer> qbuf_; ///< maxBatch query stage

    // Host-side IVF state (cfg.ivf.enabled): the coarse quantizer
    // for this shard and, when a golden index exists, its IVF twin.
    // Both survive core resets — a reset loses the device footprint,
    // not the host's clustering.
    std::unique_ptr<baseline::IvfClustering> clustering_;
    std::unique_ptr<baseline::IndexIvfI16> goldenIvf_;

    BatchFormer former_;
    recovery::HealthMonitor health_;
    recovery::ReplayJournal<QueryPayload> journal_;
    obs::FlightRecorder flight_;
    double busySeconds_ = 0;
    double batchSecondsEwma_ = 0; ///< admission-delay predictor
    unsigned resets_ = 0;
    uint64_t replayed_ = 0;
    uint64_t epoch_ = 0; ///< corpus epoch currently staged
};

} // namespace cisram::kernels

#endif // CISRAM_KERNELS_SERVING_HH
