/**
 * @file
 * Compute-heavy Phoenix applications on the APU: dense matrix
 * multiply (inner-product structure) and k-means assignment.
 */

#include "kernels/phoenix_apu.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "kernels/kernel_ctx.hh"

namespace cisram::kernels {

using apu::ApuDevice;
using baseline::KmeansInput;
using gvml::Vmr;
using gvml::Vr;

// =================================================================
// Dense matrix multiply
// =================================================================

std::vector<int16_t>
matmulApu(ApuDevice &dev, const std::vector<int16_t> *a,
          const std::vector<int16_t> *b, size_t m, size_t n,
          size_t k, PhoenixVariant v, PhoenixStats &stats)
{
    KernelCtx ctx(dev);
    auto &g = ctx.g;
    size_t l = ctx.l;
    cisram_assert(isPow2(k) && k <= l, "inner dim must be pow2 <= l");
    size_t cols_per_vr = l / k;
    size_t col_groups = divCeil(n, cols_per_vr);
    size_t rows_per_avr = l / k;
    size_t row_groups = divCeil(m, rows_per_avr);

    // The Phoenix matmul keeps its inner-product structure
    // (Section 5.2.1), so reductions stay spatial and results leave
    // by PIO; B streams per pass. Opt2 coalesces the A-row
    // duplication (resident A group + subgroup copy) instead of a
    // duplicated chunk DMA per row.
    bool coalesce_a =
        v == PhoenixVariant::Opt2 || v == PhoenixVariant::AllOpts;

    uint64_t a_addr = 0, adup_addr = 0, b_addr = 0, c_addr = 0;
    if (ctx.fnl) {
        cisram_assert(a && b && a->size() == m * k &&
                      b->size() == k * n);
        if (coalesce_a) {
            std::vector<uint16_t> img(row_groups * l, 0);
            for (size_t i = 0; i < m * k; ++i)
                img[i] = static_cast<uint16_t>((*a)[i]);
            a_addr = ctx.stage(img.data(), img.size() * 2);
        } else {
            std::vector<uint16_t> img(m * l, 0);
            for (size_t row = 0; row < m; ++row)
                for (size_t c = 0; c < cols_per_vr; ++c)
                    for (size_t w = 0; w < k; ++w)
                        img[row * l + c * k + w] =
                            static_cast<uint16_t>(
                                (*a)[row * k + w]);
            adup_addr = ctx.stage(img.data(), img.size() * 2);
        }
        std::vector<uint16_t> bimg(col_groups * l, 0);
        for (size_t j = 0; j < n; ++j)
            for (size_t w = 0; w < k; ++w)
                bimg[j * k + w] =
                    static_cast<uint16_t>((*b)[w * n + j]);
        b_addr = ctx.stage(bimg.data(), bimg.size() * 2);
    }
    c_addr = dev.allocator().alloc(
        std::max<size_t>(m * n * 2, 2), 512);

    constexpr Vr vrA{0}, vrArows{1}, vrB{2}, vrT{3};
    constexpr Vmr vmA{0}, vmB{1}, vmStage{2};

    auto do_row = [&](size_t row) {
        if (coalesce_a) {
            g.load16(vrArows, vmA);
            g.cpySubgrp16Grp(vrA, vrArows, l, k,
                             ctx.fnl ? row % rows_per_avr : 0);
        } else {
            ctx.core.dmaL4ToL2(adup_addr + row * l * 2, 0, l * 2);
            ctx.core.dmaL2ToL1(vmStage.idx);
            g.load16(vrA, vmStage);
        }
        for (size_t cg = 0; cg < col_groups; ++cg) {
            ctx.core.dmaL4ToL1(vmB.idx, b_addr + cg * l * 2);
            g.load16(vrB, vmB);
            g.mulS16(vrT, vrA, vrB);
            g.addSubgrpS16(vrT, vrT, k, 1);
            size_t cols = std::min(cols_per_vr, n - cg * cols_per_vr);
            ctx.core.pioStore(
                c_addr + (row * n + cg * cols_per_vr) * 2, 2,
                vrT.idx, 0, k, cols);
        }
    };

    if (ctx.fnl) {
        for (size_t rg = 0; rg < row_groups; ++rg) {
            if (coalesce_a)
                ctx.core.dmaL4ToL1(vmA.idx, a_addr + rg * l * 2);
            size_t hi = std::min(m, (rg + 1) * rows_per_avr);
            for (size_t row = rg * rows_per_avr; row < hi; ++row)
                do_row(row);
        }
    } else {
        if (coalesce_a) {
            ctx.timedLoop(ctx.coreShare(row_groups), [&](size_t) {
                ctx.core.dmaL4ToL1(vmA.idx, 0);
            });
        }
        ctx.timedLoop(ctx.coreShare(m),
                      [&](size_t) { do_row(0); });
    }

    stats = {ctx.cycles(), ctx.uops()};
    std::vector<int16_t> out;
    if (ctx.fnl) {
        out.resize(m * n);
        dev.l4().read(c_addr, out.data(), out.size() * 2);
    }
    return out;
}

// =================================================================
// K-means assignment
// =================================================================

namespace {

/** Round-to-int centroid values from double means. */
uint16_t
centroidU16(double v)
{
    return static_cast<uint16_t>(
        static_cast<int16_t>(std::lround(v)));
}

} // namespace

std::vector<uint32_t>
kmeansApu(ApuDevice &dev, const KmeansInput *in, size_t num_points,
          size_t dim, size_t k, unsigned iterations,
          PhoenixVariant v, PhoenixStats &stats)
{
    KernelCtx ctx(dev);
    auto &g = ctx.g;
    size_t l = ctx.l;
    cisram_assert(isPow2(dim), "dim must be pow2");

    // Variant mapping (Section 5.2.1: k-means gains from opt1's
    // temporal distances and opt3's broadcast-friendly centroid
    // layout, which mostly pays off on top of opt1):
    //  - Baseline/Opt2: spatial groups-of-dim mapping, row-major
    //    centroid lookup table, PIO'd assignments.
    //  - Opt3: spatial + window-sized lookup tables.
    //  - Opt1: temporal planes + row-major lookup broadcasts.
    //  - AllOpts: temporal + CP-immediate centroid broadcasts.
    bool temporal =
        v == PhoenixVariant::Opt1 || v == PhoenixVariant::AllOpts;
    bool bf = v == PhoenixVariant::Opt3 || v == PhoenixVariant::AllOpts;

    if (ctx.fnl) {
        cisram_assert(in && in->numPoints == num_points &&
                      in->dim == dim && in->k == k);
        cisram_assert(num_points <= (size_t(1) << 18),
                      "functional k-means input too large");
    }

    size_t tiles = temporal
        ? divCeil(num_points, l)
        : divCeil(num_points, l / dim);
    size_t pts_per_tile = temporal ? l : l / dim;

    // Functional staging: dimension planes (temporal) or grouped
    // points (spatial); assignment output region.
    uint64_t pts_addr = 0, assign_addr = 0, cent_addr = 0;
    if (ctx.fnl) {
        std::vector<uint16_t> img(tiles * (temporal ? dim : 1) * l,
                                  0);
        if (temporal) {
            for (size_t p = 0; p < num_points; ++p)
                for (size_t d = 0; d < dim; ++d)
                    img[(p / l * dim + d) * l + p % l] =
                        static_cast<uint16_t>(
                            in->points[p * dim + d]);
        } else {
            for (size_t p = 0; p < num_points; ++p)
                for (size_t d = 0; d < dim; ++d)
                    img[p * dim + d] = static_cast<uint16_t>(
                        in->points[p * dim + d]);
        }
        pts_addr = ctx.stage(img.data(), img.size() * 2);
    }
    assign_addr = dev.allocator().alloc(
        std::max<size_t>(tiles, 1) * pts_per_tile * 2, 512);
    cent_addr = dev.allocator().alloc(k * dim * 2, 512);

    // Host-side centroid state (the MapReduce reduce step).
    std::vector<double> centroids(k * dim, 0.0);
    if (ctx.fnl)
        for (size_t c = 0; c < k; ++c)
            for (size_t d = 0; d < dim; ++d)
                centroids[c * dim + d] = in->points[c * dim + d];

    constexpr Vr vrP{0}, vrC{1}, vrDiff{2}, vrSq{3}, vrD{4},
        vrBest{5}, vrAssign{6}, vrM{7}, vrZero{8}, vrNeg{9},
        vrIdx{10}, vrHead{11}, vrT{12};
    constexpr Vmr vmStage{0};
    constexpr unsigned planeVmrBase = 1;

    g.cpyImm16(vrZero, 0);
    if (!temporal) {
        g.createGrpIndexU16(vrIdx, dim);
        g.eq16(vrHead, vrIdx, vrZero);
    }

    // Temporal planes stay resident in L1 across iterations.
    if (temporal) {
        size_t planes = tiles * dim;
        cisram_assert(!ctx.fnl ||
                          planes + planeVmrBase <=
                              dev.spec().numVmrs,
                      "planes exceed L1 for functional run");
        if (ctx.fnl) {
            for (size_t pl = 0; pl < planes; ++pl)
                ctx.core.dmaL4ToL1(
                    planeVmrBase + static_cast<unsigned>(pl),
                    pts_addr + pl * l * 2);
        } else {
            ctx.timedLoop(ctx.coreShare(planes), [&](size_t) {
                ctx.core.dmaL4ToL1(planeVmrBase, 0);
            });
        }
    }

    auto broadcast = [&](size_t c, size_t d) {
        if (temporal) {
            if (bf) {
                // CP-immediate broadcast (broadcast-friendly).
                g.cpyImm16(vrC, ctx.fnl
                                    ? centroidU16(
                                          centroids[c * dim + d])
                                    : 0);
            } else {
                // Scalar lookup against the row-major L3 table.
                g.cpyImm16(vrT, static_cast<uint16_t>(c * dim + d));
                ctx.core.lookup(vrC.idx, vrT.idx, 0, k * dim);
            }
        } else {
            // Spatial: broadcast centroid c's dim-vector pattern.
            if (bf) {
                ctx.core.lookup(vrC.idx, vrIdx.idx, c * dim * 2,
                                dim);
            } else {
                g.cpyImm16(vrT, static_cast<uint16_t>(c * dim));
                g.addU16(vrT, vrIdx, vrT);
                ctx.core.lookup(vrC.idx, vrT.idx, 0, k * dim);
            }
        }
    };

    auto squaredTerm = [&](Vr point) {
        g.subS16(vrDiff, point, vrC);
        g.ltS16(vrM, vrDiff, vrZero);
        g.subS16(vrNeg, vrZero, vrDiff);
        g.cpy16Msk(vrDiff, vrNeg, vrM);
        g.mulU16(vrSq, vrDiff, vrDiff);
    };

    auto do_tile = [&](size_t tile) {
        g.cpyImm16(vrBest, 0xffff);
        g.cpyImm16(vrAssign, 0);
        if (!temporal) {
            ctx.core.dmaL4ToL1(vmStage.idx, pts_addr + tile * l * 2);
            g.load16(vrP, vmStage);
        }
        for (size_t c = 0; c < k; ++c) {
            if (temporal) {
                g.cpyImm16(vrD, 0);
                for (size_t d = 0; d < dim; ++d) {
                    broadcast(c, d);
                    unsigned vmr = planeVmrBase +
                        static_cast<unsigned>(
                            ctx.fnl ? tile * dim + d : 0);
                    g.load16(vrP, Vmr(vmr));
                    squaredTerm(vrP);
                    g.addU16(vrD, vrD, vrSq);
                }
            } else {
                broadcast(c, 0);
                squaredTerm(vrP);
                g.addSubgrpS16(vrD, vrSq, dim, 1);
            }
            // Min-update; spatial results live at group heads.
            g.ltU16(vrM, vrD, vrBest);
            if (!temporal)
                g.and16(vrM, vrM, vrHead);
            g.cpy16Msk(vrBest, vrD, vrM);
            g.cpyImm16Msk(vrAssign, static_cast<uint16_t>(c), vrM);
        }
        // Assignment extraction: contiguous DMA (temporal) vs PIO
        // of scattered group heads (spatial).
        if (temporal) {
            g.store16(vmStage, vrAssign);
            ctx.core.dmaL1ToL4(assign_addr + tile * l * 2,
                               vmStage.idx);
        } else {
            ctx.core.pioStore(assign_addr + tile * pts_per_tile * 2,
                              2, vrAssign.idx, 0, dim,
                              pts_per_tile);
        }
    };

    std::vector<uint32_t> assignment(ctx.fnl ? num_points : 0, 0);

    // Centroid lookups read L3 in every configuration except the
    // fully broadcast-friendly temporal one (CP immediates).
    bool uses_lookup = !(temporal && bf);
    for (unsigned iter = 0; iter < iterations; ++iter) {
        if (uses_lookup) {
            // Ship the centroid table to L3 for lookups.
            if (ctx.fnl) {
                std::vector<uint16_t> tbl(k * dim);
                for (size_t i = 0; i < k * dim; ++i)
                    tbl[i] = centroidU16(centroids[i]);
                dev.l4().write(cent_addr, tbl.data(),
                               tbl.size() * 2);
            }
            ctx.core.dmaL4ToL3(cent_addr, 0, k * dim * 2);
        }
        ctx.timedLoop(ctx.coreShare(tiles), do_tile);

        if (ctx.fnl) {
            // Host reduce: read assignments, recompute centroids.
            std::vector<uint16_t> avr(pts_per_tile);
            for (size_t tile = 0; tile < tiles; ++tile) {
                dev.l4().read(assign_addr +
                                  tile * pts_per_tile * 2,
                              avr.data(), pts_per_tile * 2);
                for (size_t i = 0; i < pts_per_tile; ++i) {
                    size_t p = tile * pts_per_tile + i;
                    if (p < num_points)
                        assignment[p] = avr[i];
                }
            }
            std::vector<double> sums(k * dim, 0.0);
            std::vector<size_t> counts(k, 0);
            for (size_t p = 0; p < num_points; ++p) {
                size_t c = assignment[p];
                cisram_assert(c < k, "assignment out of range");
                ++counts[c];
                for (size_t d = 0; d < dim; ++d)
                    sums[c * dim + d] += in->points[p * dim + d];
            }
            for (size_t c = 0; c < k; ++c) {
                if (counts[c] == 0)
                    continue;
                for (size_t d = 0; d < dim; ++d)
                    centroids[c * dim + d] = std::round(
                        sums[c * dim + d] /
                        static_cast<double>(counts[c]));
            }
        }
    }

    stats = {ctx.cycles(), ctx.uops()};
    return assignment;
}

} // namespace cisram::kernels
