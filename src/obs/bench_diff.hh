/**
 * @file
 * Bench snapshot diffing: the engine behind the `bench_compare`
 * regression gate.
 *
 * A BENCH_<name>.json snapshot (bench/bench_report) carries scalars
 * plus the full metrics dump, whose histogram summaries now include
 * count and sum alongside p50/p95/p99. diffBenchReports() compares
 * two snapshots key by key, classifies each key's *direction* from
 * its name (latency seconds are lower-better, QPS is higher-better,
 * wall-clock keys are informational — the simulator's simulated
 * scalars are deterministic, host wall time is not), and flags any
 * delta beyond the threshold in the bad direction as a regression.
 * Keys present in only one snapshot are reported but never gate:
 * the schema grows across PRs and a new metric must not fail the
 * gate retroactively.
 *
 * degradeBenchReport() manufactures a snapshot that is uniformly
 * `pct` percent worse in every gated direction — the fixture the
 * ctest gate uses to prove the comparator actually fires (a gate
 * that has never failed is a gate you know nothing about).
 */

#ifndef CISRAM_OBS_BENCH_DIFF_HH
#define CISRAM_OBS_BENCH_DIFF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"

namespace cisram::obs {

/** How a metric's delta maps to better/worse. */
enum class MetricDirection
{
    LowerIsBetter,
    HigherIsBetter,
    Informational, ///< reported, never gated
};

const char *directionName(MetricDirection d);

/**
 * Classify a scalar key by name tokens. Wall-clock and host-rate
 * keys are informational; latency/energy/failure keys gate lower;
 * throughput/quality keys gate higher; anything unrecognized is
 * informational (gates must not guess).
 */
MetricDirection scalarDirection(const std::string &key);

/** Classify a histogram series key (gates only latency-like ones). */
MetricDirection histogramDirection(const std::string &key);

/** One compared key. */
struct BenchDelta
{
    std::string key; ///< scalar name, or "<series>/p99" for hists
    double base = 0;
    double current = 0;
    double deltaPct = 0; ///< (current − base) / base × 100
    MetricDirection direction = MetricDirection::Informational;
    uint64_t weight = 1; ///< min histogram count, 1 for scalars
    bool regression = false;
    bool improvement = false;
    bool onlyBase = false;    ///< key missing from current
    bool onlyCurrent = false; ///< key missing from base
};

struct BenchDiffOptions
{
    /** Gate at |delta| ≥ this, in the bad direction (percent). */
    double thresholdPct = 10.0;
    /** Skip histogram percentiles with fewer samples than this. */
    uint64_t minHistogramCount = 2;
    /**
     * When non-empty, only scalar keys and histogram series whose
     * name starts with this prefix are compared; everything else is
     * dropped from the diff entirely (not even reported as
     * only-base/only-current). Lets a multi-phase bench gate one
     * phase at a time, e.g. `--only sat.` for the saturation sweep.
     */
    std::string onlyPrefix;
};

struct BenchDiffResult
{
    std::string bench; ///< snapshot's "bench" field, if present
    std::vector<BenchDelta> deltas;
    size_t compared = 0;
    size_t regressions = 0;
    size_t improvements = 0;

    bool ok() const { return regressions == 0; }
};

/**
 * Diff two parsed BENCH_<name>.json documents (base = the checked-in
 * snapshot, current = this run).
 */
BenchDiffResult diffBenchReports(const json::Value &base,
                                 const json::Value &current,
                                 const BenchDiffOptions &opt = {});

/**
 * Return a copy of `base` degraded by `pct` percent in every gated
 * direction: lower-is-better values scaled up, higher-is-better
 * values scaled down, histogram value summaries (not counts) scaled
 * up where latency-like. Informational keys pass through untouched.
 */
json::Value degradeBenchReport(const json::Value &base, double pct);

} // namespace cisram::obs

#endif // CISRAM_OBS_BENCH_DIFF_HH
