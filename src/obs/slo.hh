/**
 * @file
 * Tumbling-window SLO monitor over served query latency.
 *
 * An SLO here is "at least `objective` of queries in a class finish
 * within `targetSeconds`". The monitor evaluates it over tumbling
 * windows of a fixed *query count* — the same deterministic
 * windowing discipline as recovery::HealthMonitor — so window
 * boundaries, burn rates, and breach events are bit-identical for
 * any CISRAM_SIM_THREADS and never depend on wall-clock time.
 *
 * Per closed window the monitor reports the violation fraction and
 * its **burn rate**: violationFraction / (1 − objective), i.e. how
 * many times faster than "exactly on budget" the error budget is
 * being consumed. Burn rate 1.0 means the window spent exactly its
 * allowance; 2.0 means at this pace half the allowed violations
 * remain after half the period; a breach (burn > 1) raises a trace
 * instant and bumps the `slo.breached_windows` counter so serving
 * benches can gate on it. Each window also carries its own
 * metrics::Histogram, so per-window p50/p95/p99 come for free —
 * exactly the windowed per-class telemetry ROADMAP items 4
 * (autotuner) and 5 (open-loop SLO curves) block on.
 */

#ifndef CISRAM_OBS_SLO_HH
#define CISRAM_OBS_SLO_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/metrics.hh"

namespace cisram::obs {

/** One latency class and its objective. */
struct SloClass
{
    std::string name;          ///< e.g. "interactive", "batch"
    double targetSeconds = 0;  ///< per-query latency target
    double objective = 0.99;   ///< fraction that must meet target
};

/** Monitor-wide policy. */
struct SloPolicy
{
    /** Queries per tumbling window (per class). */
    uint64_t windowQueries = 64;
    std::vector<SloClass> classes;
};

/** One closed (or flushed-partial) window's verdict. */
struct SloWindow
{
    std::string cls;
    uint64_t index = 0; ///< per-class window serial, from 0
    uint64_t queries = 0;
    uint64_t violations = 0;
    double violationFraction = 0;
    double burnRate = 0; ///< fraction / (1 − objective)
    bool breached = false;
    bool partial = false; ///< closed early by flush()
    double p50 = 0, p95 = 0, p99 = 0, max = 0;
};

/**
 * The monitor. Single-threaded: callers observe served latencies in
 * a deterministic order (e.g. completion order on the main thread),
 * which makes the emitted window sequence deterministic too.
 */
class SloMonitor
{
  public:
    explicit SloMonitor(SloPolicy policy);

    /**
     * Record one served query. `cls` must name a configured class
     * (dying otherwise — a typo here would silently exempt traffic
     * from its objective).
     */
    void observe(const std::string &cls, double servedSeconds);

    /**
     * Close any partially filled windows (marked partial) so
     * end-of-run totals include the tail. Idempotent until the next
     * observe().
     */
    void flush();

    /**
     * Close a window for EVERY configured class, even ones that saw
     * no traffic since the last close. Use at epoch boundaries: the
     * window sequence then tiles the run 1:1 with epochs, and a
     * silent class still gets its verdict on record. A zero-query
     * window has violation fraction 0, burn rate 0, and is never
     * breached — no traffic spends no error budget — and its
     * quantiles are all 0. Windows closed this way are `partial`.
     */
    void flushAll();

    /** All closed windows, in close order. */
    const std::vector<SloWindow> &windows() const
    {
        return windows_;
    }

    const SloPolicy &policy() const { return policy_; }

    uint64_t observed(const std::string &cls) const;
    uint64_t violations(const std::string &cls) const;

    /** Worst burn rate over all closed windows (0 if none). */
    double worstBurnRate() const;

    /** Closed windows with burnRate > 1. */
    uint64_t breachedWindows() const;

    /** Summary + per-window table, for bench reports. */
    json::Value toJson() const;

  private:
    struct ClassState
    {
        SloClass cls;
        uint64_t total = 0;
        uint64_t totalViolations = 0;
        uint64_t nextIndex = 0;
        uint64_t windowCount = 0;
        uint64_t windowViolations = 0;
        double lastSeconds = 0; ///< latest observation (trace ts)
        metrics::Histogram window;
    };

    void closeWindow(ClassState &st, bool partial);

    SloPolicy policy_;
    std::map<std::string, ClassState> classes_;
    std::vector<SloWindow> windows_;
};

} // namespace cisram::obs

#endif // CISRAM_OBS_SLO_HH
