#include "obs/slo.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/trace.hh"
#include "obs/flight.hh"

namespace cisram::obs {

SloMonitor::SloMonitor(SloPolicy policy)
    : policy_(std::move(policy))
{
    cisram_assert(policy_.windowQueries > 0,
                  "slo: windowQueries must be positive");
    for (const SloClass &c : policy_.classes) {
        cisram_assert(!c.name.empty(), "slo: unnamed class");
        cisram_assert(c.targetSeconds > 0,
                      "slo: class '", c.name,
                      "' needs a positive latency target");
        cisram_assert(c.objective > 0 && c.objective < 1,
                      "slo: class '", c.name,
                      "' objective must be in (0, 1)");
        auto [it, fresh] = classes_.emplace(c.name, ClassState{});
        cisram_assert(fresh, "slo: duplicate class '", c.name, "'");
        it->second.cls = c;
    }
}

void
SloMonitor::observe(const std::string &cls, double servedSeconds)
{
    auto it = classes_.find(cls);
    cisram_assert(it != classes_.end(),
                  "slo: observation for unconfigured class '", cls,
                  "'");
    ClassState &st = it->second;
    st.total++;
    st.windowCount++;
    st.lastSeconds = servedSeconds;
    st.window.observe(servedSeconds);
    if (servedSeconds > st.cls.targetSeconds) {
        st.totalViolations++;
        st.windowViolations++;
    }
    if (st.windowCount >= policy_.windowQueries)
        closeWindow(st, /*partial=*/false);
}

void
SloMonitor::closeWindow(ClassState &st, bool partial)
{
    SloWindow w;
    w.cls = st.cls.name;
    w.index = st.nextIndex++;
    w.queries = st.windowCount;
    w.violations = st.windowViolations;
    w.violationFraction =
        w.queries ? static_cast<double>(w.violations) /
                        static_cast<double>(w.queries)
                  : 0.0;
    w.burnRate = w.violationFraction / (1.0 - st.cls.objective);
    w.breached = w.burnRate > 1.0;
    w.partial = partial;
    w.p50 = st.window.quantile(0.50);
    w.p95 = st.window.quantile(0.95);
    w.p99 = st.window.quantile(0.99);
    w.max = st.window.max();

    auto &reg = metrics::Registry::get();
    metrics::Labels labels{{"class", st.cls.name}};
    reg.counter("slo.windows", labels).inc();
    reg.counter("slo.violations", labels).inc(
        static_cast<double>(w.violations));
    reg.gauge("slo.burn_rate", labels).set(w.burnRate);
    if (w.breached) {
        reg.counter("slo.breached_windows", labels).inc();
        // Stamped with the last served latency in the window — the
        // monitor has no clock of its own, and that is when the
        // breach became observable.
        if (trace::active())
            trace::Tracer::get().instant(servingTracePid(), 0,
                                         "slo.window_breach",
                                         st.lastSeconds * 1e6);
    }

    windows_.push_back(std::move(w));
    st.windowCount = 0;
    st.windowViolations = 0;
    st.window.zero();
}

void
SloMonitor::flush()
{
    for (auto &[name, st] : classes_)
        if (st.windowCount > 0)
            closeWindow(st, /*partial=*/true);
}

void
SloMonitor::flushAll()
{
    for (auto &[name, st] : classes_)
        closeWindow(st, /*partial=*/true);
}

uint64_t
SloMonitor::observed(const std::string &cls) const
{
    auto it = classes_.find(cls);
    return it == classes_.end() ? 0 : it->second.total;
}

uint64_t
SloMonitor::violations(const std::string &cls) const
{
    auto it = classes_.find(cls);
    return it == classes_.end() ? 0 : it->second.totalViolations;
}

double
SloMonitor::worstBurnRate() const
{
    double worst = 0.0;
    for (const SloWindow &w : windows_)
        worst = std::max(worst, w.burnRate);
    return worst;
}

uint64_t
SloMonitor::breachedWindows() const
{
    uint64_t n = 0;
    for (const SloWindow &w : windows_)
        if (w.breached)
            ++n;
    return n;
}

json::Value
SloMonitor::toJson() const
{
    json::Value root;
    root["window_queries"] = policy_.windowQueries;
    json::Array classes;
    for (const auto &[name, st] : classes_) {
        json::Value c;
        c["class"] = name;
        c["target_seconds"] = st.cls.targetSeconds;
        c["objective"] = st.cls.objective;
        c["queries"] = st.total;
        c["violations"] = st.totalViolations;
        classes.push_back(std::move(c));
    }
    root["classes"] = json::Value(std::move(classes));
    json::Array windows;
    for (const SloWindow &w : windows_) {
        json::Value v;
        v["class"] = w.cls;
        v["index"] = w.index;
        v["queries"] = w.queries;
        v["violations"] = w.violations;
        v["burn_rate"] = w.burnRate;
        v["breached"] = w.breached;
        if (w.partial)
            v["partial"] = true;
        v["p50_seconds"] = w.p50;
        v["p95_seconds"] = w.p95;
        v["p99_seconds"] = w.p99;
        v["max_seconds"] = w.max;
        windows.push_back(std::move(v));
    }
    root["windows"] = json::Value(std::move(windows));
    root["breached_windows"] = breachedWindows();
    root["worst_burn_rate"] = worstBurnRate();
    return root;
}

} // namespace cisram::obs
