/**
 * @file
 * Query-lifecycle flight recorder: per-query causal span trees over
 * the serving pipeline, reconciled bit-exactly against served
 * latency.
 *
 * The serving stack grew deep — admission queue, batch former,
 * staged PCIe, retry, breaker, CPU fallback, quarantine, reset,
 * exactly-once replay — and the aggregate p50/p95/p99 histograms
 * cannot answer "where did *this* query's nanoseconds go". The
 * flight recorder can: every journaled admission opens a flight, and
 * every simulated-clock charge the DeviceServer makes on the query's
 * behalf lands as a span in that flight:
 *
 *   admit ─ queue_wait ─┬─ device_attempt(1..n failed, each charged
 *                       │   what it actually cost)
 *                       ├─ pcie_stage + device_compute (success), or
 *                       ├─ cpu_fallback (breaker / retry-exhausted /
 *                       │   post-reset forced delivery), or
 *                       └─ park → reset → replay (a fresh round,
 *                           flow-linked to the abandoning reset)
 *
 * Spans are grouped into *rounds*: a batch parked mid-retry by the
 * health watchdog abandons its round (those charges never reach the
 * delivered outcome — the fresh `ServeOutcome` built at replay time
 * starts from zero), and the round recorded at delivery is the
 * attribution of record. The **reconciliation invariant** (pinned by
 * tests/test_obs.cc, serial and threaded, under armed fault plans):
 * for every delivered query, the final round's span durations — one
 * wait span, the host spans summed in record order, one retrieval
 * span — reproduce `ServeOutcome::servedSeconds()` *bit-exactly*,
 * because the recorder stores the very doubles the server added and
 * `reconciledSeconds()` re-adds them in the same order. No epsilon,
 * no drift: if the ledger and the served latency ever disagree, one
 * of them is lying about where the time went.
 *
 * Everything is stamped on the owning core's deterministic simulated
 * busy clock, so ledgers are bit-identical for any
 * CISRAM_SIM_THREADS. When tracing is armed (CISRAM_TRACE), each
 * flight additionally exports as a Chrome-trace *async* span
 * ('b'/'e' paired by query id on the "serving" process, timestamps
 * in simulated microseconds), its stages as nested 'X' slices, and
 * each reset→replay hand-off as a flow arrow — the per-query
 * timeline behind the paper's Table 8 / Fig. 14 decomposition,
 * viewable in Perfetto.
 *
 * Cost: a disabled recorder (the default when CISRAM_TRACE is
 * unset) rejects every call on one inline bool — measured alongside
 * the unarmed fault hooks in bench_fault_overhead and held to the
 * same <=1e-3 % budget. The recorder never charges simulated time:
 * enabling it cannot change any latency it reports.
 */

#ifndef CISRAM_OBS_FLIGHT_HH
#define CISRAM_OBS_FLIGHT_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json.hh"

namespace cisram::obs {

/** Span kinds in a query's lifecycle (see file comment). */
enum class Stage : unsigned
{
    QueueWait,     ///< admission → service start (wait category)
    DeviceAttempt, ///< one *failed* device attempt's actual cost
    PcieStage,     ///< successful batch's PCIe staging + readback
    DeviceCompute, ///< the batch's corpus pass on the device
    CpuFallback,   ///< exact CPU retrieval at Xeon latency
    ComputeDetail, ///< child of DeviceCompute: Table 8 stage share

    // Fleet-router stages (the router owns its own recorder; the
    // same reconciliation invariant holds against the router-level
    // latency: (wait + gather) + merge/failover).
    ShardGather,   ///< slowest shard's send+serve+return path
    TopkMerge,     ///< scatter-gather top-k merge on the router
    Failover,      ///< re-route charge when a replica takes over
    ShardPath,     ///< child detail: one shard replica's full path
};

const char *stageName(Stage s);

/**
 * Reconciliation category of a stage. Wait/Host/Retrieval spans sum
 * (per category, in record order) to the outcome's queueWaitSeconds
 * / hostSeconds / retrievalSeconds; Detail spans are children of the
 * compute span and never enter the sums.
 */
enum class SpanCategory { Wait, Host, Retrieval, Detail };

SpanCategory stageCategory(Stage s);

/** One recorded span, on the owning core's simulated clock. */
struct Span
{
    Stage stage;
    unsigned attempt;       ///< 1-based device attempt, 0 if n/a
    double startSeconds;    ///< core busy-clock at span start
    double durationSeconds; ///< the exact double the server charged
    std::string detail;     ///< stage name / failure status, or ""
};

/** Where an admitted query currently stands. */
enum class FlightState { Admitted, Shed, Completed };

const char *flightStateName(FlightState s);

/** The full recorded lifecycle of one admitted query. */
struct QueryFlight
{
    uint64_t id = 0;
    unsigned core = 0;
    double admitSeconds = 0;
    FlightState state = FlightState::Admitted;
    std::string shedReason; ///< last shed reason, if ever shed
    unsigned sheds = 0;     ///< admission attempts shed at the door

    /**
     * One service round's spans. A round abandoned by a mid-retry
     * park keeps its spans for the timeline but is excluded from
     * reconciliation — the delivered outcome restarts from zero.
     */
    struct Round
    {
        std::vector<Span> spans;
        bool abandoned = false;
    };

    std::vector<Round> rounds;
    unsigned replays = 0; ///< reset-replay re-admissions

    // Filled at completion.
    bool delivered = false;
    bool fromDevice = false;
    unsigned attempts = 0;
    size_t batchSize = 0;
    double servedSeconds = 0; ///< as reported by the ServeOutcome
    double endSeconds = 0;    ///< core busy-clock at delivery

    /**
     * Re-derive the served latency from the final round's spans:
     * per-category sums in record order, combined as
     * (wait + retrieval) + host — the exact float-addition sequence
     * `ServeOutcome::servedSeconds()` performs, so a correct ledger
     * matches bit-for-bit.
     */
    double reconciledSeconds() const;

    /** Final (non-abandoned) round, or nullptr before any round. */
    const Round *finalRound() const;
};

/** Recorder enablement. */
struct FlightConfig
{
    enum class Mode
    {
        Auto, ///< follow trace::active() at server construction
        On,   ///< always record (tests, attribution studies)
        Off,  ///< never record
    };

    Mode mode = Mode::Auto;
};

/** Completion summary handed to FlightRecorder::complete(). */
struct FlightCompletion
{
    double endSeconds = 0;
    bool fromDevice = false;
    unsigned attempts = 0;
    size_t batchSize = 0;
    double servedSeconds = 0;
};

/**
 * Per-core flight recorder. Single-threaded by design, like the
 * DeviceServer shard that owns it; cross-core determinism comes from
 * stamping the core's own simulated clock. All record calls are
 * no-ops while disabled (one inline bool test).
 */
class FlightRecorder
{
  public:
    FlightRecorder(unsigned core, FlightConfig cfg);

    bool enabled() const { return enabled_; }
    unsigned core() const { return core_; }

    /** Record an admission (opens the flight, emits the async 'b'). */
    void recordAdmit(uint64_t id, double t);

    /** Record a shed admission attempt (never silently dropped). */
    void recordShed(uint64_t id, double t, const char *reason);

    /**
     * Open a service round for `id` at busy-clock `start`. Emits the
     * pending reset→replay flow arrow if this round is a replay.
     */
    void beginRound(uint64_t id, double start);

    /** Record one span into the query's current round. */
    void span(uint64_t id, Stage stage, unsigned attempt,
              double start, double duration,
              std::string detail = {});

    /**
     * The current round was parked (health watchdog quarantined the
     * core mid-retry): abandon it — its charges never reach the
     * delivered outcome.
     */
    void park(uint64_t id, double t);

    /** The query's outcome was delivered exactly once. */
    void complete(uint64_t id, const FlightCompletion &done);

    /**
     * Record a core reset that replays `replayedIds`: a reset span
     * on the core track plus one flow arrow per replayed query,
     * finished by that query's next beginRound().
     */
    void recordReset(unsigned reset_index, double start,
                     double duration,
                     const std::vector<uint64_t> &replayedIds);

    const std::vector<QueryFlight> &flights() const
    {
        return flights_;
    }

    /** Lookup by query id; nullptr if never admitted here. */
    const QueryFlight *flight(uint64_t id) const;

    size_t completedCount() const;

    /**
     * Delivered flights whose reconciledSeconds() equals their
     * servedSeconds bit-exactly (== on the doubles, no epsilon).
     */
    size_t reconciledCount() const;

    /**
     * Aggregate attribution across delivered flights' final rounds:
     * seconds per stage key ("queue_wait", "device_attempt",
     * "pcie_stage", "device_compute", "cpu_fallback", and
     * "device_compute.<table8 stage>" details). Feeds the
     * EXPERIMENTS.md per-stage table and BenchReport::breakdown.
     */
    std::map<std::string, double> attribution() const;

    /** The machine-readable per-query attribution ledger. */
    json::Value ledgerJson() const;

  private:
    QueryFlight &flightRef(uint64_t id);

    unsigned core_;
    bool enabled_;
    std::vector<QueryFlight> flights_;
    std::unordered_map<uint64_t, size_t> byId_;
    /** Replayed ids awaiting their flow-finish at next beginRound. */
    std::unordered_map<uint64_t, uint64_t> pendingFlow_;
};

/**
 * Trace pid of the "serving" process track (registered on first
 * use). Serving-layer timestamps are simulated *microseconds* (1 us
 * in the viewer = 1 us of simulated time), unlike the device tracks,
 * whose unit is core cycles.
 */
uint32_t servingTracePid();

} // namespace cisram::obs

#endif // CISRAM_OBS_FLIGHT_HH
