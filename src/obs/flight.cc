#include "obs/flight.hh"

#include "common/logging.hh"
#include "common/trace.hh"

namespace cisram::obs {

namespace {

// Serving-layer timestamps are simulated seconds; trace ts fields on
// the "serving" process are simulated microseconds.
constexpr double kSecToUs = 1e6;

const char *
categoryCat(SpanCategory c)
{
    switch (c) {
    case SpanCategory::Wait:
        return "serving.wait";
    case SpanCategory::Host:
        return "serving.host";
    case SpanCategory::Retrieval:
        return "serving.retrieval";
    case SpanCategory::Detail:
        return "serving.detail";
    }
    return "serving";
}

} // namespace

const char *
stageName(Stage s)
{
    switch (s) {
    case Stage::QueueWait:
        return "queue_wait";
    case Stage::DeviceAttempt:
        return "device_attempt";
    case Stage::PcieStage:
        return "pcie_stage";
    case Stage::DeviceCompute:
        return "device_compute";
    case Stage::CpuFallback:
        return "cpu_fallback";
    case Stage::ComputeDetail:
        return "compute_detail";
    case Stage::ShardGather:
        return "shard_gather";
    case Stage::TopkMerge:
        return "topk_merge";
    case Stage::Failover:
        return "failover";
    case Stage::ShardPath:
        return "shard_path";
    }
    return "unknown";
}

SpanCategory
stageCategory(Stage s)
{
    switch (s) {
    case Stage::QueueWait:
        return SpanCategory::Wait;
    case Stage::DeviceAttempt:
    case Stage::PcieStage:
    case Stage::TopkMerge:
    case Stage::Failover:
        return SpanCategory::Host;
    case Stage::DeviceCompute:
    case Stage::CpuFallback:
    case Stage::ShardGather:
        return SpanCategory::Retrieval;
    case Stage::ComputeDetail:
    case Stage::ShardPath:
        return SpanCategory::Detail;
    }
    return SpanCategory::Detail;
}

const char *
flightStateName(FlightState s)
{
    switch (s) {
    case FlightState::Admitted:
        return "admitted";
    case FlightState::Shed:
        return "shed";
    case FlightState::Completed:
        return "completed";
    }
    return "unknown";
}

uint32_t
servingTracePid()
{
    static uint32_t pid = trace::Tracer::get().registerProcess(
        "serving (simulated us)");
    return pid;
}

double
QueryFlight::reconciledSeconds() const
{
    const Round *round = finalRound();
    if (!round)
        return 0.0;
    // Mirror the server's accumulation exactly: queueWaitSeconds and
    // retrievalSeconds are single assignments, hostSeconds is a
    // left-to-right += chain, and servedSeconds() evaluates
    // wait + retrieval + host left-to-right. Re-adding the recorded
    // doubles in the same order reproduces the same rounding.
    double wait = 0.0;
    double host = 0.0;
    double retrieval = 0.0;
    for (const Span &s : round->spans) {
        switch (stageCategory(s.stage)) {
        case SpanCategory::Wait:
            wait += s.durationSeconds;
            break;
        case SpanCategory::Host:
            host += s.durationSeconds;
            break;
        case SpanCategory::Retrieval:
            retrieval += s.durationSeconds;
            break;
        case SpanCategory::Detail:
            break;
        }
    }
    return wait + retrieval + host;
}

const QueryFlight::Round *
QueryFlight::finalRound() const
{
    if (rounds.empty())
        return nullptr;
    return &rounds.back();
}

FlightRecorder::FlightRecorder(unsigned core, FlightConfig cfg)
    : core_(core)
{
    switch (cfg.mode) {
    case FlightConfig::Mode::On:
        enabled_ = true;
        break;
    case FlightConfig::Mode::Off:
        enabled_ = false;
        break;
    case FlightConfig::Mode::Auto:
    default:
        enabled_ = trace::active();
        break;
    }
}

QueryFlight &
FlightRecorder::flightRef(uint64_t id)
{
    auto it = byId_.find(id);
    cisram_assert(it != byId_.end(),
                  "flight recorder: span for unadmitted query ", id,
                  " on core ", core_);
    return flights_[it->second];
}

void
FlightRecorder::recordAdmit(uint64_t id, double t)
{
    if (!enabled_)
        return;
    auto it = byId_.find(id);
    if (it != byId_.end()) {
        // A previously shed query retrying admission on the same
        // core: reopen the existing flight.
        QueryFlight &qf = flights_[it->second];
        cisram_assert(qf.state == FlightState::Shed,
                      "flight recorder: duplicate admission of "
                      "query ",
                      id, " on core ", core_);
        qf.state = FlightState::Admitted;
        qf.admitSeconds = t;
    } else {
        QueryFlight qf;
        qf.id = id;
        qf.core = core_;
        qf.admitSeconds = t;
        qf.state = FlightState::Admitted;
        byId_.emplace(id, flights_.size());
        flights_.push_back(std::move(qf));
    }
    if (trace::active())
        trace::Tracer::get().async('b', servingTracePid(), core_,
                                   "query", "serving.query",
                                   t * kSecToUs, id);
}

void
FlightRecorder::recordShed(uint64_t id, double t, const char *reason)
{
    if (!enabled_)
        return;
    auto it = byId_.find(id);
    if (it != byId_.end()) {
        QueryFlight &qf = flights_[it->second];
        qf.state = FlightState::Shed;
        qf.shedReason = reason;
        qf.sheds++;
    } else {
        QueryFlight qf;
        qf.id = id;
        qf.core = core_;
        qf.admitSeconds = t;
        qf.state = FlightState::Shed;
        qf.shedReason = reason;
        qf.sheds = 1;
        byId_.emplace(id, flights_.size());
        flights_.push_back(std::move(qf));
    }
    if (trace::active())
        trace::Tracer::get().instant(servingTracePid(), core_,
                                     "query.shed", t * kSecToUs);
}

void
FlightRecorder::beginRound(uint64_t id, double start)
{
    if (!enabled_)
        return;
    QueryFlight &qf = flightRef(id);
    cisram_assert(qf.state == FlightState::Admitted,
                  "flight recorder: round for query ", id,
                  " in state ", flightStateName(qf.state));
    qf.rounds.push_back({});
    auto flow = pendingFlow_.find(id);
    if (flow != pendingFlow_.end()) {
        qf.replays++;
        if (trace::active())
            trace::Tracer::get().async(
                'f', servingTracePid(), core_, "reset.replay",
                "serving.flow", start * kSecToUs, flow->second);
        pendingFlow_.erase(flow);
    }
}

void
FlightRecorder::span(uint64_t id, Stage stage, unsigned attempt,
                     double start, double duration,
                     std::string detail)
{
    if (!enabled_)
        return;
    QueryFlight &qf = flightRef(id);
    cisram_assert(!qf.rounds.empty(),
                  "flight recorder: span before beginRound for "
                  "query ",
                  id);
    if (trace::active())
        trace::Tracer::get().complete(
            servingTracePid(), core_,
            detail.empty() ? stageName(stage) : detail.c_str(),
            categoryCat(stageCategory(stage)), start * kSecToUs,
            duration * kSecToUs);
    qf.rounds.back().spans.push_back({stage, attempt, start,
                                      duration, std::move(detail)});
}

void
FlightRecorder::park(uint64_t id, double t)
{
    if (!enabled_)
        return;
    QueryFlight &qf = flightRef(id);
    cisram_assert(!qf.rounds.empty(),
                  "flight recorder: park before beginRound for "
                  "query ",
                  id);
    qf.rounds.back().abandoned = true;
    if (trace::active())
        trace::Tracer::get().instant(servingTracePid(), core_,
                                     "query.parked", t * kSecToUs);
}

void
FlightRecorder::complete(uint64_t id, const FlightCompletion &done)
{
    if (!enabled_)
        return;
    QueryFlight &qf = flightRef(id);
    cisram_assert(qf.state == FlightState::Admitted,
                  "flight recorder: completion of query ", id,
                  " in state ", flightStateName(qf.state));
    cisram_assert(!qf.rounds.empty() && !qf.rounds.back().abandoned,
                  "flight recorder: completion of query ", id,
                  " without a live round");
    qf.state = FlightState::Completed;
    qf.delivered = true;
    qf.fromDevice = done.fromDevice;
    qf.attempts = done.attempts;
    qf.batchSize = done.batchSize;
    qf.servedSeconds = done.servedSeconds;
    qf.endSeconds = done.endSeconds;
    if (trace::active())
        trace::Tracer::get().async('e', servingTracePid(), core_,
                                   "query", "serving.query",
                                   done.endSeconds * kSecToUs, id);
}

void
FlightRecorder::recordReset(unsigned reset_index, double start,
                            double duration,
                            const std::vector<uint64_t> &replayedIds)
{
    if (!enabled_)
        return;
    // Any live round of a replayed query is now abandoned: the
    // journal replay re-serves it from a fresh outcome.
    for (uint64_t id : replayedIds) {
        auto it = byId_.find(id);
        if (it == byId_.end())
            continue;
        QueryFlight &qf = flights_[it->second];
        if (!qf.rounds.empty())
            qf.rounds.back().abandoned = true;
        // Flow arrow id: unique per (reset, query) pair.
        uint64_t flowId =
            (static_cast<uint64_t>(reset_index + 1) << 48) ^ id;
        pendingFlow_[id] = flowId;
        if (trace::active())
            trace::Tracer::get().async(
                's', servingTracePid(), core_, "reset.replay",
                "serving.flow", (start + duration) * kSecToUs,
                flowId);
    }
    if (trace::active())
        trace::Tracer::get().complete(
            servingTracePid(), core_, "core.reset", "serving.reset",
            start * kSecToUs, duration * kSecToUs);
}

const QueryFlight *
FlightRecorder::flight(uint64_t id) const
{
    auto it = byId_.find(id);
    if (it == byId_.end())
        return nullptr;
    return &flights_[it->second];
}

size_t
FlightRecorder::completedCount() const
{
    size_t n = 0;
    for (const auto &qf : flights_)
        if (qf.state == FlightState::Completed)
            ++n;
    return n;
}

size_t
FlightRecorder::reconciledCount() const
{
    size_t n = 0;
    for (const auto &qf : flights_)
        if (qf.state == FlightState::Completed &&
            qf.reconciledSeconds() == qf.servedSeconds)
            ++n;
    return n;
}

std::map<std::string, double>
FlightRecorder::attribution() const
{
    std::map<std::string, double> out;
    for (const auto &qf : flights_) {
        if (qf.state != FlightState::Completed)
            continue;
        const QueryFlight::Round *round = qf.finalRound();
        if (!round)
            continue;
        for (const Span &s : round->spans) {
            std::string key = stageName(s.stage);
            if (s.stage == Stage::ComputeDetail)
                key = std::string("device_compute.") + s.detail;
            out[key] += s.durationSeconds;
        }
    }
    return out;
}

json::Value
FlightRecorder::ledgerJson() const
{
    json::Value root;
    root["core"] = core_;
    root["completed"] = static_cast<uint64_t>(completedCount());
    root["reconciled"] = static_cast<uint64_t>(reconciledCount());
    json::Array queries;
    for (const auto &qf : flights_) {
        json::Value q;
        q["id"] = qf.id;
        q["state"] = flightStateName(qf.state);
        q["admit_seconds"] = qf.admitSeconds;
        if (qf.sheds > 0) {
            q["sheds"] = qf.sheds;
            q["shed_reason"] = qf.shedReason;
        }
        if (qf.replays > 0)
            q["replays"] = qf.replays;
        if (qf.state == FlightState::Completed) {
            q["end_seconds"] = qf.endSeconds;
            q["served_seconds"] = qf.servedSeconds;
            q["reconciled_seconds"] = qf.reconciledSeconds();
            q["exact"] = qf.reconciledSeconds() == qf.servedSeconds;
            q["from_device"] = qf.fromDevice;
            q["attempts"] = qf.attempts;
            q["batch"] = static_cast<uint64_t>(qf.batchSize);
        }
        json::Array rounds;
        for (const auto &round : qf.rounds) {
            json::Value r;
            r["abandoned"] = round.abandoned;
            json::Array spans;
            for (const Span &s : round.spans) {
                json::Value sp;
                sp["stage"] = stageName(s.stage);
                if (s.attempt > 0)
                    sp["attempt"] = s.attempt;
                sp["start_seconds"] = s.startSeconds;
                sp["duration_seconds"] = s.durationSeconds;
                if (!s.detail.empty())
                    sp["detail"] = s.detail;
                spans.push_back(std::move(sp));
            }
            r["spans"] = json::Value(std::move(spans));
            rounds.push_back(std::move(r));
        }
        q["rounds"] = json::Value(std::move(rounds));
        queries.push_back(std::move(q));
    }
    root["queries"] = json::Value(std::move(queries));
    return root;
}

} // namespace cisram::obs
