#include "obs/bench_diff.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace cisram::obs {

namespace {

std::string
lowered(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
hasToken(const std::string &key, const char *token)
{
    return key.find(token) != std::string::npos;
}

bool
hasAny(const std::string &key,
       std::initializer_list<const char *> tokens)
{
    for (const char *t : tokens)
        if (hasToken(key, t))
            return true;
    return false;
}

double
relativeDeltaPct(double base, double current)
{
    if (base == current)
        return 0.0;
    if (base == 0.0)
        // A metric appearing from zero has no finite relative
        // delta; ±inf still orders correctly against any threshold.
        return current > 0
                   ? std::numeric_limits<double>::infinity()
                   : -std::numeric_limits<double>::infinity();
    return (current - base) / std::fabs(base) * 100.0;
}

/** Percentile summary fields of a histogram JSON object. */
constexpr const char *kHistPercentiles[] = {"p50", "p95", "p99"};

/** Value-typed histogram summary fields scaled by degrade(). */
constexpr const char *kHistValueFields[] = {
    "sum", "min", "max", "mean", "p50", "p95", "p99"};

const json::Value *
findSection(const json::Value &doc, const char *a,
            const char *b = nullptr)
{
    if (!doc.isObject())
        return nullptr;
    const json::Value *v = doc.asObject().find(a);
    if (v && b) {
        if (!v->isObject())
            return nullptr;
        v = v->asObject().find(b);
    }
    return v;
}

void
classifyDelta(BenchDelta &d, double thresholdPct)
{
    if (d.direction == MetricDirection::Informational)
        return;
    bool worse = d.direction == MetricDirection::LowerIsBetter
                     ? d.deltaPct > 0
                     : d.deltaPct < 0;
    if (std::fabs(d.deltaPct) < thresholdPct)
        return;
    if (worse)
        d.regression = true;
    else
        d.improvement = true;
}

bool
matchesPrefix(const std::string &key,
              const BenchDiffOptions &opt)
{
    return opt.onlyPrefix.empty() ||
           key.compare(0, opt.onlyPrefix.size(), opt.onlyPrefix) ==
               0;
}

} // namespace

const char *
directionName(MetricDirection d)
{
    switch (d) {
    case MetricDirection::LowerIsBetter:
        return "lower";
    case MetricDirection::HigherIsBetter:
        return "higher";
    case MetricDirection::Informational:
        return "info";
    }
    return "info";
}

MetricDirection
scalarDirection(const std::string &key)
{
    std::string k = lowered(key);
    // Host wall-clock and machine-shape numbers vary run to run and
    // machine to machine; only simulated quantities gate.
    if (hasAny(k, {"wall", "ns_per", "host", "hardware", "schema",
                   "threads"}))
        return MetricDirection::Informational;
    // "degradation" wins over any embedded throughput token: more
    // degradation is worse whatever was degraded.
    if (hasToken(k, "degradation"))
        return MetricDirection::LowerIsBetter;
    if (hasAny(k, {"seconds", "latency", "_ms", "p50", "p95", "p99",
                   "joule", "energy", "timeout", "retries", "errors",
                   "shed", "fallback", "violation", "burn_rate",
                   "wait", "breached"}))
        return MetricDirection::LowerIsBetter;
    if (hasAny(k, {"qps", "throughput", "speedup", "gflop", "gop",
                   "recall", "bandwidth", "efficiency",
                   "exactly_once", "identity", "delivered",
                   "reconciled", "hit_rate"}))
        return MetricDirection::HigherIsBetter;
    return MetricDirection::Informational;
}

MetricDirection
histogramDirection(const std::string &key)
{
    std::string k = lowered(key);
    if (hasAny(k, {"seconds", "latency", "wait", "cycles"}))
        return MetricDirection::LowerIsBetter;
    return MetricDirection::Informational;
}

BenchDiffResult
diffBenchReports(const json::Value &base, const json::Value &current,
                 const BenchDiffOptions &opt)
{
    BenchDiffResult out;
    if (const json::Value *name = findSection(base, "bench"))
        if (name->isString())
            out.bench = name->asString();

    // --- Scalars -------------------------------------------------
    const json::Value *bs = findSection(base, "scalars");
    const json::Value *cs = findSection(current, "scalars");
    if (bs && bs->isObject()) {
        for (const auto &[key, bval] : bs->asObject()) {
            if (!bval.isNumber() || !matchesPrefix(key, opt))
                continue;
            BenchDelta d;
            d.key = key;
            d.base = bval.asNumber();
            d.direction = scalarDirection(key);
            const json::Value *cval =
                cs && cs->isObject() ? cs->asObject().find(key)
                                     : nullptr;
            if (!cval || !cval->isNumber()) {
                d.onlyBase = true;
                out.deltas.push_back(std::move(d));
                continue;
            }
            d.current = cval->asNumber();
            d.deltaPct = relativeDeltaPct(d.base, d.current);
            classifyDelta(d, opt.thresholdPct);
            out.compared++;
            out.deltas.push_back(std::move(d));
        }
    }
    if (cs && cs->isObject()) {
        for (const auto &[key, cval] : cs->asObject()) {
            if (!cval.isNumber() || !matchesPrefix(key, opt))
                continue;
            if (bs && bs->isObject() && bs->asObject().contains(key))
                continue;
            BenchDelta d;
            d.key = key;
            d.current = cval.asNumber();
            d.direction = scalarDirection(key);
            d.onlyCurrent = true;
            out.deltas.push_back(std::move(d));
        }
    }

    // --- Histogram percentiles ----------------------------------
    const json::Value *bh =
        findSection(base, "metrics", "histograms");
    const json::Value *ch =
        findSection(current, "metrics", "histograms");
    if (bh && bh->isObject() && ch && ch->isObject()) {
        for (const auto &[series, bsum] : bh->asObject()) {
            if (!matchesPrefix(series, opt))
                continue;
            const json::Value *csum = ch->asObject().find(series);
            if (!csum || !csum->isObject() || !bsum.isObject())
                continue;
            const json::Value *bc = bsum.asObject().find("count");
            const json::Value *cc = csum->asObject().find("count");
            if (!bc || !cc || !bc->isNumber() || !cc->isNumber())
                continue;
            uint64_t bn = static_cast<uint64_t>(bc->asNumber());
            uint64_t cn = static_cast<uint64_t>(cc->asNumber());
            // Percentiles of a near-empty histogram are noise;
            // count/sum still show up via the scalar-style rows of
            // any bench that promotes them.
            if (bn < opt.minHistogramCount ||
                cn < opt.minHistogramCount)
                continue;
            MetricDirection dir = histogramDirection(series);
            for (const char *p : kHistPercentiles) {
                const json::Value *bp = bsum.asObject().find(p);
                const json::Value *cp = csum->asObject().find(p);
                if (!bp || !cp || !bp->isNumber() ||
                    !cp->isNumber())
                    continue;
                BenchDelta d;
                d.key = series + std::string("/") + p;
                d.base = bp->asNumber();
                d.current = cp->asNumber();
                d.direction = dir;
                d.weight = std::min(bn, cn);
                d.deltaPct = relativeDeltaPct(d.base, d.current);
                classifyDelta(d, opt.thresholdPct);
                out.compared++;
                out.deltas.push_back(std::move(d));
            }
        }
    }

    for (const BenchDelta &d : out.deltas) {
        if (d.regression)
            out.regressions++;
        if (d.improvement)
            out.improvements++;
    }
    return out;
}

json::Value
degradeBenchReport(const json::Value &base, double pct)
{
    cisram_assert(pct > 0, "degrade: percentage must be positive");
    double factor = 1.0 + pct / 100.0;
    json::Value out = base;

    if (out.isObject() && out.asObject().contains("scalars")) {
        json::Value &scalars = out["scalars"];
        // Rebuild from the source object: Object iteration is
        // const, mutation goes through operator[] key writes.
        if (const json::Value *src = findSection(base, "scalars")) {
            for (const auto &[key, val] : src->asObject()) {
                if (!val.isNumber())
                    continue;
                switch (scalarDirection(key)) {
                case MetricDirection::LowerIsBetter:
                    scalars[key] = val.asNumber() * factor;
                    break;
                case MetricDirection::HigherIsBetter:
                    scalars[key] = val.asNumber() / factor;
                    break;
                case MetricDirection::Informational:
                    break;
                }
            }
        }
    }

    const json::Value *src =
        findSection(base, "metrics", "histograms");
    if (src && src->isObject()) {
        json::Value &hists = out["metrics"]["histograms"];
        for (const auto &[series, summary] : src->asObject()) {
            if (!summary.isObject())
                continue;
            if (histogramDirection(series) !=
                MetricDirection::LowerIsBetter)
                continue;
            json::Value &dst = hists[series];
            for (const char *field : kHistValueFields) {
                const json::Value *v =
                    summary.asObject().find(field);
                if (v && v->isNumber())
                    dst[field] = v->asNumber() * factor;
            }
        }
    }
    return out;
}

} // namespace cisram::obs
