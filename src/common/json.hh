/**
 * @file
 * Minimal JSON document model, writer, and parser.
 *
 * The observability layer (trace export, metrics dumps, BENCH_*.json
 * stats files) needs machine-readable output, and the tests need to
 * read it back; this module provides both without any external
 * dependency. It supports the full JSON grammar except for exotic
 * number forms (NaN/Inf are serialized as null, matching the Chrome
 * trace-event consumers).
 */

#ifndef CISRAM_COMMON_JSON_HH
#define CISRAM_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace cisram::json {

class Value;

using Array = std::vector<Value>;

/** Object preserving insertion order (stable, diffable output). */
class Object
{
  public:
    Value &operator[](const std::string &key);

    /** Null-like reference semantics: nullptr if absent. */
    const Value *find(const std::string &key) const;

    bool contains(const std::string &key) const
    {
        return find(key) != nullptr;
    }

    size_t size() const { return items_.size(); }
    bool empty() const { return items_.empty(); }

    auto begin() const { return items_.begin(); }
    auto end() const { return items_.end(); }

  private:
    std::vector<std::pair<std::string, Value>> items_;
};

/** One JSON value: null, bool, number, string, array, or object. */
class Value
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Value() : type_(Type::Null) {}
    Value(std::nullptr_t) : type_(Type::Null) {}
    Value(bool b) : type_(Type::Bool), bool_(b) {}
    Value(double n) : type_(Type::Number), num_(n) {}
    Value(int n) : type_(Type::Number), num_(n) {}
    Value(unsigned n) : type_(Type::Number), num_(n) {}
    Value(int64_t n)
        : type_(Type::Number), num_(static_cast<double>(n))
    {}
    Value(uint64_t n)
        : type_(Type::Number), num_(static_cast<double>(n))
    {}
    Value(const char *s) : type_(Type::String), str_(s) {}
    Value(std::string s) : type_(Type::String), str_(std::move(s)) {}
    Value(Array a) : type_(Type::Array), arr_(std::move(a)) {}
    Value(Object o) : type_(Type::Object), obj_(std::move(o)) {}

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed accessors; panic on type mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Mutable access, converting a Null in place. */
    Array &makeArray();
    Object &makeObject();

    /** Convenience: obj()[key] on object values. */
    Value &operator[](const std::string &key)
    {
        return makeObject()[key];
    }

    /** Serialize. `indent` < 0 renders compact single-line JSON. */
    std::string dump(int indent = -1) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;
};

/** Append `s` JSON-escaped (with surrounding quotes) to `out`. */
void appendQuoted(std::string &out, const std::string &s);

/**
 * Parse a JSON document.
 *
 * @param text  The document.
 * @param error If non-null, receives a message on failure.
 * @return The parsed value, or std::nullopt-like Null + error set.
 */
bool parse(const std::string &text, Value &out,
           std::string *error = nullptr);

/** Parse-or-panic wrapper for trusted inputs (tests). */
Value parseOrDie(const std::string &text);

} // namespace cisram::json

#endif // CISRAM_COMMON_JSON_HH
