/**
 * @file
 * Bit-manipulation helpers and a dense bit vector.
 *
 * The bit-slice simulator in src/apusim represents one bit position of
 * 32768 vector elements as a BitVector; micro-operations on the read
 * latch / global lines become word-wide boolean operations here.
 */

#ifndef CISRAM_COMMON_BITUTILS_HH
#define CISRAM_COMMON_BITUTILS_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace cisram {

/** True if x is a power of two (and non-zero). */
constexpr bool
isPow2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Floor of log base 2; log2Floor(0) is undefined (asserts). */
inline unsigned
log2Floor(uint64_t x)
{
    cisram_assert(x != 0);
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/** Ceiling of log base 2; log2Ceil(1) == 0. */
inline unsigned
log2Ceil(uint64_t x)
{
    cisram_assert(x != 0);
    return x == 1 ? 0 : log2Floor(x - 1) + 1;
}

/** Round x up to the next multiple of align (align must be pow2). */
constexpr uint64_t
roundUpPow2(uint64_t x, uint64_t align)
{
    return (x + align - 1) & ~(align - 1);
}

/** Ceiling division. */
constexpr uint64_t
divCeil(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Extract bit `pos` of a 16-bit word. */
constexpr bool
bit16(uint16_t v, unsigned pos)
{
    return (v >> pos) & 1u;
}

/**
 * Dense fixed-length bit vector backed by 64-bit words.
 *
 * Supports the boolean operations the APU bit processors perform on
 * read latches and global lines. Length is fixed at construction.
 */
class BitVector
{
  public:
    BitVector() = default;

    /** Construct with `n` bits, all initialized to `value`. */
    explicit BitVector(size_t n, bool value = false)
        : numBits(n), words((n + 63) / 64, value ? ~0ull : 0ull)
    {
        trimTail();
    }

    size_t size() const { return numBits; }
    size_t numWords() const { return words.size(); }

    bool
    get(size_t i) const
    {
        cisram_assert(i < numBits);
        return (words[i / 64] >> (i % 64)) & 1ull;
    }

    void
    set(size_t i, bool v)
    {
        cisram_assert(i < numBits);
        uint64_t mask = 1ull << (i % 64);
        if (v)
            words[i / 64] |= mask;
        else
            words[i / 64] &= ~mask;
    }

    /** Set all bits to `v`. */
    void
    fill(bool v)
    {
        for (auto &w : words)
            w = v ? ~0ull : 0ull;
        trimTail();
    }

    /** Count of set bits. */
    size_t
    popcount() const
    {
        size_t n = 0;
        for (auto w : words)
            n += static_cast<size_t>(std::popcount(w));
        return n;
    }

    /** True if any bit is set. */
    bool
    any() const
    {
        for (auto w : words)
            if (w)
                return true;
        return false;
    }

    /** True if every bit is set. */
    bool
    all() const
    {
        BitVector tmp(numBits, true);
        for (size_t i = 0; i < words.size(); ++i)
            if (words[i] != tmp.words[i])
                return false;
        return true;
    }

    /** Index of the first set bit, or size() if none. */
    size_t
    firstSet() const
    {
        for (size_t i = 0; i < words.size(); ++i) {
            if (words[i]) {
                return i * 64 +
                    static_cast<size_t>(std::countr_zero(words[i]));
            }
        }
        return numBits;
    }

    /** Raw word access for fast word-parallel operations. */
    uint64_t word(size_t i) const { return words[i]; }
    void
    setWord(size_t i, uint64_t v)
    {
        words[i] = v;
        if (i == words.size() - 1)
            trimTail();
    }

    BitVector &
    operator&=(const BitVector &o)
    {
        checkSameSize(o);
        for (size_t i = 0; i < words.size(); ++i)
            words[i] &= o.words[i];
        return *this;
    }

    BitVector &
    operator|=(const BitVector &o)
    {
        checkSameSize(o);
        for (size_t i = 0; i < words.size(); ++i)
            words[i] |= o.words[i];
        return *this;
    }

    BitVector &
    operator^=(const BitVector &o)
    {
        checkSameSize(o);
        for (size_t i = 0; i < words.size(); ++i)
            words[i] ^= o.words[i];
        return *this;
    }

    /** In-place bitwise complement. */
    void
    invert()
    {
        for (auto &w : words)
            w = ~w;
        trimTail();
    }

    friend BitVector
    operator&(BitVector a, const BitVector &b)
    {
        a &= b;
        return a;
    }

    friend BitVector
    operator|(BitVector a, const BitVector &b)
    {
        a |= b;
        return a;
    }

    friend BitVector
    operator^(BitVector a, const BitVector &b)
    {
        a ^= b;
        return a;
    }

    bool
    operator==(const BitVector &o) const
    {
        return numBits == o.numBits && words == o.words;
    }

    /**
     * Shift bits toward higher indices (logical shift left across the
     * vector) by `k`, filling vacated low positions with zero.
     */
    BitVector shiftedUp(size_t k) const;

    /** Shift bits toward lower indices by `k`, zero-filling the tail. */
    BitVector shiftedDown(size_t k) const;

  private:
    void
    checkSameSize(const BitVector &o) const
    {
        cisram_assert(numBits == o.numBits, "BitVector size mismatch");
    }

    /** Clear the unused bits of the last word. */
    void
    trimTail()
    {
        if (numBits % 64 != 0 && !words.empty())
            words.back() &= (1ull << (numBits % 64)) - 1;
    }

    size_t numBits = 0;
    std::vector<uint64_t> words;
};

} // namespace cisram

#endif // CISRAM_COMMON_BITUTILS_HH
