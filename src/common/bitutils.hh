/**
 * @file
 * Bit-manipulation helpers and a dense bit vector.
 *
 * The bit-slice simulator in src/apusim represents one bit position of
 * 32768 vector elements as a BitVector; micro-operations on the read
 * latch / global lines become word-wide boolean operations here.
 */

#ifndef CISRAM_COMMON_BITUTILS_HH
#define CISRAM_COMMON_BITUTILS_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace cisram {

/** True if x is a power of two (and non-zero). */
constexpr bool
isPow2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Floor of log base 2; log2Floor(0) is undefined (asserts). */
inline unsigned
log2Floor(uint64_t x)
{
    cisram_assert(x != 0);
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/** Ceiling of log base 2; log2Ceil(1) == 0. */
inline unsigned
log2Ceil(uint64_t x)
{
    cisram_assert(x != 0);
    return x == 1 ? 0 : log2Floor(x - 1) + 1;
}

/** Round x up to the next multiple of align (align must be pow2). */
constexpr uint64_t
roundUpPow2(uint64_t x, uint64_t align)
{
    return (x + align - 1) & ~(align - 1);
}

/** Ceiling division. */
constexpr uint64_t
divCeil(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Extract bit `pos` of a 16-bit word. */
constexpr bool
bit16(uint16_t v, unsigned pos)
{
    return (v >> pos) & 1u;
}

/**
 * Mask of the bits of 64-bit word `w` (covering bit indices
 * [w*64, w*64+64)) that fall inside the half-open range [begin, end).
 * Zero when the word and the range are disjoint.
 */
inline uint64_t
rangeWordMask(size_t w, size_t begin, size_t end)
{
    size_t word_lo = w * 64;
    size_t word_hi = word_lo + 64;
    size_t lo = begin > word_lo ? begin : word_lo;
    size_t hi = end < word_hi ? end : word_hi;
    if (lo >= hi)
        return 0;
    size_t n = hi - lo;
    uint64_t mask = n >= 64 ? ~0ull : ((1ull << n) - 1);
    return mask << (lo - word_lo);
}

/**
 * In-place transpose of a 16x16 bit matrix: on return, bit j of
 * x[i] holds what bit i of x[j] held on entry. Applying it twice is
 * the identity, so the same routine packs element words into bit
 * planes and unpacks planes back into element words (the hot
 * conversion between the VR file's word-major storage and the
 * bit-slice engine's plane-major view).
 */
inline void
transpose16x16(uint16_t x[16])
{
    // Hacker's-Delight style recursive block swap: exchange the
    // off-diagonal 8x8, 4x4, 2x2, 1x1 sub-blocks.
    uint16_t m = 0x00ff;
    for (unsigned j = 8; j != 0; j >>= 1, m ^= m << j) {
        for (unsigned k = 0; k < 16; k = (k + j + 1) & ~j) {
            uint16_t t =
                static_cast<uint16_t>(((x[k] >> j) ^ x[k + j]) & m);
            x[k + j] = static_cast<uint16_t>(x[k + j] ^ t);
            x[k] = static_cast<uint16_t>(x[k] ^ (t << j));
        }
    }
}

/**
 * Dense fixed-length bit vector backed by 64-bit words.
 *
 * Supports the boolean operations the APU bit processors perform on
 * read latches and global lines. Length is fixed at construction.
 */
class BitVector
{
  public:
    BitVector() = default;

    /** Construct with `n` bits, all initialized to `value`. */
    explicit BitVector(size_t n, bool value = false)
        : numBits(n), words((n + 63) / 64, value ? ~0ull : 0ull)
    {
        trimTail();
    }

    size_t size() const { return numBits; }
    size_t numWords() const { return words.size(); }

    bool
    get(size_t i) const
    {
        cisram_assert(i < numBits);
        return (words[i / 64] >> (i % 64)) & 1ull;
    }

    void
    set(size_t i, bool v)
    {
        cisram_assert(i < numBits);
        uint64_t mask = 1ull << (i % 64);
        if (v)
            words[i / 64] |= mask;
        else
            words[i / 64] &= ~mask;
    }

    /** Set all bits to `v`. */
    void
    fill(bool v)
    {
        for (auto &w : words)
            w = v ? ~0ull : 0ull;
        trimTail();
    }

    /** Count of set bits. */
    size_t
    popcount() const
    {
        size_t n = 0;
        for (auto w : words)
            n += static_cast<size_t>(std::popcount(w));
        return n;
    }

    /** True if any bit is set. */
    bool
    any() const
    {
        for (auto w : words)
            if (w)
                return true;
        return false;
    }

    /** True if every bit is set. */
    bool
    all() const
    {
        BitVector tmp(numBits, true);
        for (size_t i = 0; i < words.size(); ++i)
            if (words[i] != tmp.words[i])
                return false;
        return true;
    }

    /** Index of the first set bit, or size() if none. */
    size_t
    firstSet() const
    {
        for (size_t i = 0; i < words.size(); ++i) {
            if (words[i]) {
                return i * 64 +
                    static_cast<size_t>(std::countr_zero(words[i]));
            }
        }
        return numBits;
    }

    /** Raw word access for fast word-parallel operations. */
    uint64_t word(size_t i) const { return words[i]; }
    void
    setWord(size_t i, uint64_t v)
    {
        words[i] = v;
        if (i == words.size() - 1)
            trimTail();
    }

    /** Set every bit of the half-open range [begin, end) to `v`. */
    void
    setRange(size_t begin, size_t end, bool v)
    {
        cisram_assert(begin <= end && end <= numBits,
                      "BitVector range OOB");
        if (begin == end)
            return;
        size_t fw = begin / 64;
        size_t lw = (end - 1) / 64;
        for (size_t w = fw; w <= lw; ++w) {
            uint64_t m = rangeWordMask(w, begin, end);
            if (v)
                words[w] |= m;
            else
                words[w] &= ~m;
        }
    }

    /** True if any bit in the half-open range [begin, end) is set. */
    bool
    anyInRange(size_t begin, size_t end) const
    {
        cisram_assert(begin <= end && end <= numBits,
                      "BitVector range OOB");
        if (begin == end)
            return false;
        size_t fw = begin / 64;
        size_t lw = (end - 1) / 64;
        for (size_t w = fw; w <= lw; ++w)
            if (words[w] & rangeWordMask(w, begin, end))
                return true;
        return false;
    }

    BitVector &
    operator&=(const BitVector &o)
    {
        checkSameSize(o);
        for (size_t i = 0; i < words.size(); ++i)
            words[i] &= o.words[i];
        return *this;
    }

    BitVector &
    operator|=(const BitVector &o)
    {
        checkSameSize(o);
        for (size_t i = 0; i < words.size(); ++i)
            words[i] |= o.words[i];
        return *this;
    }

    BitVector &
    operator^=(const BitVector &o)
    {
        checkSameSize(o);
        for (size_t i = 0; i < words.size(); ++i)
            words[i] ^= o.words[i];
        return *this;
    }

    /** In-place bitwise complement. */
    void
    invert()
    {
        for (auto &w : words)
            w = ~w;
        trimTail();
    }

    friend BitVector
    operator&(BitVector a, const BitVector &b)
    {
        a &= b;
        return a;
    }

    friend BitVector
    operator|(BitVector a, const BitVector &b)
    {
        a |= b;
        return a;
    }

    friend BitVector
    operator^(BitVector a, const BitVector &b)
    {
        a ^= b;
        return a;
    }

    bool
    operator==(const BitVector &o) const
    {
        return numBits == o.numBits && words == o.words;
    }

    /**
     * Shift bits toward higher indices (logical shift left across the
     * vector) by `k`, filling vacated low positions with zero.
     */
    BitVector shiftedUp(size_t k) const;

    /** Shift bits toward lower indices by `k`, zero-filling the tail. */
    BitVector shiftedDown(size_t k) const;

  private:
    void
    checkSameSize(const BitVector &o) const
    {
        cisram_assert(numBits == o.numBits, "BitVector size mismatch");
    }

    /** Clear the unused bits of the last word. */
    void
    trimTail()
    {
        if (numBits % 64 != 0 && !words.empty())
            words.back() &= (1ull << (numBits % 64)) - 1;
    }

    size_t numBits = 0;
    std::vector<uint64_t> words;
};

} // namespace cisram

#endif // CISRAM_COMMON_BITUTILS_HH
