#include "common/trace.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/json.hh"
#include "common/logging.hh"

namespace cisram::trace {

namespace detail {
std::atomic<bool> g_active{false};
} // namespace detail

namespace {

// Current op annotation (see OpScope). Thread-local: each host
// thread (and therefore each concurrently simulated core) carries
// its own annotation stack.
thread_local const char *t_op = nullptr;
thread_local double t_bytes = -1.0;
thread_local int t_engines = 0;

// Per-thread event sink redirect (see EventSinkScope).
thread_local std::vector<Event> *t_sink = nullptr;

} // namespace

OpScope::OpScope(const char *op, double bytes, int engines)
    : prevOp_(t_op), prevBytes_(t_bytes), prevEngines_(t_engines)
{
    t_op = op;
    t_bytes = bytes;
    t_engines = engines;
}

OpScope::~OpScope()
{
    t_op = prevOp_;
    t_bytes = prevBytes_;
    t_engines = prevEngines_;
}

const char *
currentOp()
{
    return t_op;
}

double
currentBytes()
{
    return t_bytes;
}

int
currentEngines()
{
    return t_engines;
}

EventSinkScope::EventSinkScope(std::vector<Event> *sink)
    : prev_(t_sink)
{
    t_sink = sink;
}

EventSinkScope::~EventSinkScope()
{
    t_sink = prev_;
}

Tracer::Tracer()
{
    processes_.push_back("sim");
    const char *env = std::getenv("CISRAM_TRACE");
    if (env && *env)
        enable(env);
}

Tracer::~Tracer()
{
    if (active() && !path().empty())
        write();
}

Tracer &
Tracer::get()
{
    static Tracer instance;
    return instance;
}

void
Tracer::enable(const std::string &path)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        path_ = path;
    }
    detail::g_active.store(true, std::memory_order_release);
    cisram_debug("trace: recording to ", path);
}

void
Tracer::disable()
{
    detail::g_active.store(false, std::memory_order_release);
    std::lock_guard<std::mutex> lk(mu_);
    events_.clear();
    path_.clear();
}

std::string
Tracer::path() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return path_;
}

uint32_t
Tracer::registerProcess(const std::string &label)
{
    std::lock_guard<std::mutex> lk(mu_);
    processes_.push_back(label);
    return static_cast<uint32_t>(processes_.size() - 1);
}

void
Tracer::noteTid(uint32_t tid)
{
    // Caller holds mu_.
    if (tid > maxTid_)
        maxTid_ = tid;
}

void
Tracer::complete(uint32_t pid, uint32_t tid, const char *name,
                 const char *cat, double ts, double dur, double bytes,
                 double repeat, int engines)
{
    if (!active())
        return;
    Event e{'X', pid, tid, ts, dur, name, cat, bytes, repeat,
            engines};
    if (t_sink) {
        t_sink->push_back(std::move(e));
        return;
    }
    std::lock_guard<std::mutex> lk(mu_);
    noteTid(tid);
    events_.push_back(std::move(e));
}

void
Tracer::instant(uint32_t pid, uint32_t tid, const char *name,
                double ts)
{
    if (!active())
        return;
    Event e{'i', pid, tid, ts, 0.0, name, "instant", -1.0, 1.0, 0};
    if (t_sink) {
        t_sink->push_back(std::move(e));
        return;
    }
    std::lock_guard<std::mutex> lk(mu_);
    noteTid(tid);
    events_.push_back(std::move(e));
}

void
Tracer::async(char phase, uint32_t pid, uint32_t tid,
              const char *name, const char *cat, double ts,
              uint64_t id)
{
    if (!active())
        return;
    cisram_assert(phase == 'b' || phase == 'e' || phase == 'n' ||
                      phase == 's' || phase == 'f',
                  "async: phase must be one of b/e/n/s/f");
    Event e{phase, pid, tid, ts, 0.0, name, cat, -1.0, 1.0, 0, id};
    if (t_sink) {
        t_sink->push_back(std::move(e));
        return;
    }
    std::lock_guard<std::mutex> lk(mu_);
    noteTid(tid);
    events_.push_back(std::move(e));
}

void
Tracer::mergeEvents(std::vector<Event> &&events)
{
    if (events.empty())
        return;
    std::lock_guard<std::mutex> lk(mu_);
    for (auto &e : events) {
        noteTid(e.tid);
        events_.push_back(std::move(e));
    }
    events.clear();
}

size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return events_.size();
}

std::vector<Event>
Tracer::events() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return events_;
}

namespace {

void
appendEventJson(std::string &out, const Event &e)
{
    char buf[96];
    out += "{\"name\":";
    json::appendQuoted(out, e.name);
    out += ",\"cat\":";
    json::appendQuoted(out, e.cat);
    std::snprintf(buf, sizeof(buf),
                  ",\"ph\":\"%c\",\"pid\":%u,\"tid\":%u,\"ts\":%.3f",
                  e.phase, e.pid, e.tid, e.ts);
    out += buf;
    if (e.phase == 'X') {
        std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", e.dur);
        out += buf;
    }
    if (e.phase == 'b' || e.phase == 'e' || e.phase == 'n' ||
        e.phase == 's' || e.phase == 'f') {
        std::snprintf(buf, sizeof(buf), ",\"id\":\"0x%llx\"",
                      static_cast<unsigned long long>(e.id));
        out += buf;
        // Bind a flow finish to the enclosing slice so the arrow
        // lands on the consuming span, not the track header.
        if (e.phase == 'f')
            out += ",\"bp\":\"e\"";
    }
    out += ",\"args\":{";
    bool first = true;
    // A non-finite bytes/repeat would print "inf"/"nan" through the
    // raw printf formats and corrupt the whole trace document; emit
    // null instead, matching json::appendNumber.
    if (e.bytes >= 0) {
        if (std::isfinite(e.bytes))
            std::snprintf(buf, sizeof(buf), "\"bytes\":%.0f",
                          e.bytes);
        else
            std::snprintf(buf, sizeof(buf), "\"bytes\":null");
        out += buf;
        first = false;
    }
    if (e.repeat != 1.0) {
        if (std::isfinite(e.repeat))
            std::snprintf(buf, sizeof(buf), "%s\"repeat\":%g",
                          first ? "" : ",", e.repeat);
        else
            std::snprintf(buf, sizeof(buf), "%s\"repeat\":null",
                          first ? "" : ",");
        out += buf;
        first = false;
    }
    if (e.engines > 0) {
        std::snprintf(buf, sizeof(buf), "%s\"engines\":%d",
                      first ? "" : ",", e.engines);
        out += buf;
    }
    out += "}}";
}

void
appendMetaJson(std::string &out, const char *kind, uint32_t pid,
               int tid, const std::string &name)
{
    char buf[64];
    out += "{\"name\":\"";
    out += kind;
    out += "\",\"ph\":\"M\",\"pid\":";
    std::snprintf(buf, sizeof(buf), "%u", pid);
    out += buf;
    if (tid >= 0) {
        std::snprintf(buf, sizeof(buf), ",\"tid\":%d", tid);
        out += buf;
    }
    out += ",\"args\":{\"name\":";
    json::appendQuoted(out, name);
    out += "}}";
}

} // namespace

std::string
Tracer::renderJson() const
{
    std::vector<Event> sorted;
    std::vector<std::string> processes;
    uint32_t maxTid;
    {
        std::lock_guard<std::mutex> lk(mu_);
        sorted = events_;
        processes = processes_;
        maxTid = maxTid_;
    }
    // Deterministic export order regardless of how recording threads
    // interleaved; stable so same-timestamp events keep their merged
    // (core-order) relative order.
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Event &a, const Event &b) {
                         if (a.pid != b.pid)
                             return a.pid < b.pid;
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         return a.ts < b.ts;
                     });

    std::string out;
    out.reserve(sorted.size() * 120 + 1024);
    out += "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
    bool first = true;
    for (uint32_t pid = 0; pid < processes.size(); ++pid) {
        if (!first)
            out += ",\n";
        first = false;
        appendMetaJson(out, "process_name", pid, -1, processes[pid]);
        for (uint32_t tid = 0; tid <= maxTid; ++tid) {
            out += ",\n";
            appendMetaJson(out, "thread_name", pid,
                           static_cast<int>(tid),
                           "core" + std::to_string(tid));
        }
    }
    for (const auto &e : sorted) {
        if (!first)
            out += ",\n";
        first = false;
        appendEventJson(out, e);
    }
    out += "\n],\n\"otherData\":{\"tool\":\"cisram\","
           "\"timestampUnit\":\"device cycles\"}}\n";
    return out;
}

void
Tracer::write()
{
    std::string sink = path();
    cisram_assert(!sink.empty(), "trace write without a sink path");
    std::string doc = renderJson();
    // Write-then-rename, like BenchReport: a crash mid-write can
    // never leave a truncated, unparseable trace document behind.
    // An unwritable CISRAM_TRACE target is fatal — a silently
    // dropped trace is exactly the artifact someone armed the
    // recorder to get.
    std::string tmp = sink + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f)
        cisram_fatal("trace: cannot open '", tmp,
                     "' for writing — CISRAM_TRACE must name a "
                     "creatable file in an existing directory");
    size_t put = std::fwrite(doc.data(), 1, doc.size(), f);
    bool flushed = std::fclose(f) == 0 && put == doc.size();
    if (!flushed || std::rename(tmp.c_str(), sink.c_str()) != 0) {
        std::remove(tmp.c_str());
        cisram_fatal("trace: failed to finalize '", sink,
                     "' (disk full or target not writable)");
    }
    size_t n;
    {
        std::lock_guard<std::mutex> lk(mu_);
        n = events_.size();
        events_.clear();
    }
    cisram_inform("trace: wrote ", n, " events to ", sink);
}

} // namespace cisram::trace
