#include "common/trace.hh"

#include <cstdio>
#include <cstdlib>

#include "common/json.hh"
#include "common/logging.hh"

namespace cisram::trace {

namespace detail {
bool g_active = false;
} // namespace detail

namespace {

// Current op annotation (see OpScope). The simulator is
// single-threaded by design, so plain globals suffice.
const char *g_op = nullptr;
double g_bytes = -1.0;
int g_engines = 0;

} // namespace

OpScope::OpScope(const char *op, double bytes, int engines)
    : prevOp_(g_op), prevBytes_(g_bytes), prevEngines_(g_engines)
{
    g_op = op;
    g_bytes = bytes;
    g_engines = engines;
}

OpScope::~OpScope()
{
    g_op = prevOp_;
    g_bytes = prevBytes_;
    g_engines = prevEngines_;
}

const char *
currentOp()
{
    return g_op;
}

double
currentBytes()
{
    return g_bytes;
}

int
currentEngines()
{
    return g_engines;
}

Tracer::Tracer()
{
    processes_.push_back("sim");
    const char *env = std::getenv("CISRAM_TRACE");
    if (env && *env)
        enable(env);
}

Tracer::~Tracer()
{
    if (detail::g_active && !path_.empty())
        write();
}

Tracer &
Tracer::get()
{
    static Tracer instance;
    return instance;
}

void
Tracer::enable(const std::string &path)
{
    path_ = path;
    detail::g_active = true;
    cisram_debug("trace: recording to ", path_);
}

void
Tracer::disable()
{
    detail::g_active = false;
    events_.clear();
    path_.clear();
}

uint32_t
Tracer::registerProcess(const std::string &label)
{
    processes_.push_back(label);
    return static_cast<uint32_t>(processes_.size() - 1);
}

void
Tracer::complete(uint32_t pid, uint32_t tid, const char *name,
                 const char *cat, double ts, double dur, double bytes,
                 double repeat, int engines)
{
    if (!detail::g_active)
        return;
    if (tid > maxTid_)
        maxTid_ = tid;
    events_.push_back(Event{'X', pid, tid, ts, dur, name, cat, bytes,
                            repeat, engines});
}

void
Tracer::instant(uint32_t pid, uint32_t tid, const char *name,
                double ts)
{
    if (!detail::g_active)
        return;
    if (tid > maxTid_)
        maxTid_ = tid;
    events_.push_back(Event{'i', pid, tid, ts, 0.0, name, "instant",
                            -1.0, 1.0, 0});
}

namespace {

void
appendEventJson(std::string &out, const Event &e)
{
    char buf[96];
    out += "{\"name\":";
    json::appendQuoted(out, e.name);
    out += ",\"cat\":";
    json::appendQuoted(out, e.cat);
    std::snprintf(buf, sizeof(buf),
                  ",\"ph\":\"%c\",\"pid\":%u,\"tid\":%u,\"ts\":%.3f",
                  e.phase, e.pid, e.tid, e.ts);
    out += buf;
    if (e.phase == 'X') {
        std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", e.dur);
        out += buf;
    }
    out += ",\"args\":{";
    bool first = true;
    if (e.bytes >= 0) {
        std::snprintf(buf, sizeof(buf), "\"bytes\":%.0f", e.bytes);
        out += buf;
        first = false;
    }
    if (e.repeat != 1.0) {
        std::snprintf(buf, sizeof(buf), "%s\"repeat\":%g",
                      first ? "" : ",", e.repeat);
        out += buf;
        first = false;
    }
    if (e.engines > 0) {
        std::snprintf(buf, sizeof(buf), "%s\"engines\":%d",
                      first ? "" : ",", e.engines);
        out += buf;
    }
    out += "}}";
}

void
appendMetaJson(std::string &out, const char *kind, uint32_t pid,
               int tid, const std::string &name)
{
    char buf[64];
    out += "{\"name\":\"";
    out += kind;
    out += "\",\"ph\":\"M\",\"pid\":";
    std::snprintf(buf, sizeof(buf), "%u", pid);
    out += buf;
    if (tid >= 0) {
        std::snprintf(buf, sizeof(buf), ",\"tid\":%d", tid);
        out += buf;
    }
    out += ",\"args\":{\"name\":";
    json::appendQuoted(out, name);
    out += "}}";
}

} // namespace

std::string
Tracer::renderJson() const
{
    std::string out;
    out.reserve(events_.size() * 120 + 1024);
    out += "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
    bool first = true;
    for (uint32_t pid = 0; pid < processes_.size(); ++pid) {
        if (!first)
            out += ",\n";
        first = false;
        appendMetaJson(out, "process_name", pid, -1, processes_[pid]);
        for (uint32_t tid = 0; tid <= maxTid_; ++tid) {
            out += ",\n";
            appendMetaJson(out, "thread_name", pid,
                           static_cast<int>(tid),
                           "core" + std::to_string(tid));
        }
    }
    for (const auto &e : events_) {
        if (!first)
            out += ",\n";
        first = false;
        appendEventJson(out, e);
    }
    out += "\n],\n\"otherData\":{\"tool\":\"cisram\","
           "\"timestampUnit\":\"device cycles\"}}\n";
    return out;
}

void
Tracer::write()
{
    cisram_assert(!path_.empty(), "trace write without a sink path");
    std::string doc = renderJson();
    std::FILE *f = std::fopen(path_.c_str(), "w");
    if (!f) {
        cisram_warn("trace: cannot open ", path_, " for writing");
        return;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    cisram_inform("trace: wrote ", events_.size(), " events to ",
                  path_);
    events_.clear();
}

} // namespace cisram::trace
