/**
 * @file
 * Global metrics registry: counters, gauges, and histograms with
 * labeled series.
 *
 * Subsystems register named series (e.g. "dram.row_hits" or
 * "sim.op.cycles{op=gvml.addU16}") and bump them as the simulation
 * runs; a whole run can then be serialized to JSON by the stats sink
 * (bench/bench_report) or inspected programmatically.
 *
 * Cost model: obtaining a series reference does a map lookup, so hot
 * paths hold the returned reference (or use opCounters(), which
 * caches by string-literal identity). Bumping a held series is a
 * single add. Per-charge instrumentation in the simulator is further
 * gated behind metrics::enabled() so a run that never opts in pays
 * only a relaxed atomic-bool test.
 *
 * Threading model: the registry itself is not locked. Instead, each
 * worker thread in the multi-core pool runs under a ShardScope — a
 * thread-local redirect that makes Registry::get() return a private
 * shard registry — and the pool merges the shards into the global
 * registry *in core order* after the join (see apusim/multicore.hh).
 * Merging in a fixed order makes every float accumulation sequence
 * identical between serial and threaded runs, so snapshots are
 * bit-identical for any CISRAM_SIM_THREADS. Code that holds a series
 * reference across a shard boundary must re-resolve it per call
 * (references into a shard die with the shard).
 */

#ifndef CISRAM_COMMON_METRICS_HH
#define CISRAM_COMMON_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/json.hh"

namespace cisram::metrics {

/** Ordered label set rendered into the series key. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Monotonically increasing sum. */
class Counter
{
  public:
    void inc(double d = 1.0) { value_ += d; }
    double value() const { return value_; }
    void zero() { value_ = 0.0; }
    void mergeFrom(const Counter &o) { value_ += o.value_; }

  private:
    double value_ = 0.0;
};

/** Last-written value. */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void zero() { value_ = 0.0; }
    /** Merge = adopt the shard's value (last writer wins). */
    void mergeFrom(const Gauge &o) { value_ = o.value_; }

  private:
    double value_ = 0.0;
};

/**
 * Distribution summary: count/sum/min/max plus base-2 exponential
 * buckets. Bucket i (for i >= 1) counts observations in
 * [2^(minExp+i-1), 2^(minExp+i)); bucket 0 catches everything below
 * 2^minExp (including zero and negatives). With minExp = -32 the
 * resolved range spans ~2.3e-10 .. 2^31, which covers both
 * sub-second latencies (the serving pipeline observes seconds) and
 * cycle counts, at factor-of-two resolution.
 */
class Histogram
{
  public:
    static constexpr int numBuckets = 64;

    /** Exponent of bucket 1's lower bound (see class comment). */
    static constexpr int minExp = -32;

    void observe(double v);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /**
     * Approximate quantile (q in [0, 1]) from the exponential
     * buckets, interpolating linearly inside the bracketing bucket
     * and clamping to the observed [min, max]. Exact at q=0 and q=1;
     * elsewhere accurate to the bucket's factor-of-two width. Fully
     * deterministic: shard merges sum the same buckets in the same
     * order, so p50/p95/p99 are thread-count independent.
     *
     * Edge cases, pinned by tests/test_obs.cc (bench snapshots and
     * the regression gate depend on them staying put): an empty
     * histogram returns 0.0 for every q, and a single-sample
     * histogram returns that sample for every q (the [min, max]
     * clamp collapses the bucket interpolation to the one value).
     * When q * count lands exactly on a cumulative-count bucket
     * boundary, the quantile belongs to the *lower* bucket with
     * interpolation fraction 1 — i.e. it returns that bucket's upper
     * edge (clamped to max), never a value from the next bucket's
     * range (pinned by tests/test_wordparallel.cc).
     */
    double quantile(double q) const;

    uint64_t bucketCount(int i) const { return buckets_[i]; }

    void zero();

    /** Fold another histogram's observations into this one. */
    void mergeFrom(const Histogram &o);

    /**
     * Aggregation entry for cross-device rollups (the fleet router
     * merges per-device latency histograms into one fleet series).
     * Buckets add and moments combine, so the merged histogram's
     * quantiles are identical to observing the pooled samples into
     * one histogram directly — no bucket precision is lost
     * (merged-vs-pooled equivalence is pinned in test_obs).
     */
    void merge(const Histogram &o) { mergeFrom(o); }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    uint64_t buckets_[numBuckets] = {};
};

/** Per-op counter bundle used by the cycle-charging hot path. */
struct OpCounters
{
    Counter &issues; ///< times the op was charged
    Counter &cycles; ///< total (repeat-scaled) cycles
    Counter &bytes;  ///< total bytes moved (DMA/PIO ops)
};

class Registry
{
  public:
    /**
     * The registry for the calling thread: the installed shard when
     * running under a ShardScope, else the process-wide instance.
     */
    static Registry &get();

    /** The process-wide instance, ignoring any shard redirect. */
    static Registry &global();

    /**
     * A fresh private registry for one worker's observations; merge
     * it into the global registry with mergeFrom() once the worker
     * has joined. Shards are plain registries: series references
     * resolved against a shard are valid only for its lifetime.
     */
    static std::unique_ptr<Registry> makeShard();

    Counter &counter(const std::string &name,
                     const Labels &labels = {});
    Gauge &gauge(const std::string &name, const Labels &labels = {});
    Histogram &histogram(const std::string &name,
                         const Labels &labels = {});

    /**
     * Cached per-op bundle keyed by the string literal's identity;
     * `op` must be a pointer that stays valid for the process
     * lifetime (string literals qualify). The cache is per registry
     * instance, so shard bundles never leak across shards.
     */
    OpCounters &opCounters(const char *op);

    /**
     * Fold every series of `other` into this registry: counters add,
     * gauges adopt the shard value, histograms merge moments and
     * buckets. Call in a deterministic order (core 0, 1, ...) so
     * float accumulation is reproducible.
     */
    void mergeFrom(const Registry &other);

    /**
     * Zero every registered series. References handed out earlier
     * remain valid (series are never destroyed).
     */
    void zeroAll();

    /**
     * Snapshot as JSON: {"counters": {...}, "gauges": {...},
     * "histograms": {key: {count, sum, min, max, mean, p50, p95,
     * p99}}}. `count` and `sum` are exported so downstream diffing
     * (bench_compare) can weight percentile deltas by sample count
     * and detect coverage loss, not just latency shifts.
     */
    json::Value toJson() const;

    /** Series key as rendered into the JSON dump. */
    static std::string seriesKey(const std::string &name,
                                 const Labels &labels);

  private:
    Registry() = default;

    template <typename T>
    T &series(std::map<std::string, std::unique_ptr<T>> &store,
              const std::string &name, const Labels &labels);

    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::unordered_map<const void *, std::unique_ptr<OpCounters>>
        opCache_;
};

/**
 * RAII redirect: while alive, Registry::get() on *this thread*
 * resolves to `shard`. The multi-core pool installs one per core
 * task so workers never touch the global registry concurrently; the
 * shards are merged in core order after the join.
 */
class ShardScope
{
  public:
    explicit ShardScope(Registry *shard);
    ~ShardScope();

    ShardScope(const ShardScope &) = delete;
    ShardScope &operator=(const ShardScope &) = delete;

  private:
    Registry *prev_;
};

namespace detail {
extern std::atomic<bool> g_enabled;
} // namespace detail

/**
 * True when detailed (per-charge) metric collection is on. Off by
 * default; enabled by CISRAM_METRICS=1, by the bench stats sink, or
 * programmatically. Coarse per-call metrics (DRAM trace summaries,
 * energy breakdowns) are recorded unconditionally. Inline (a single
 * relaxed atomic load) so the charge hot path stays fully
 * inlineable.
 */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turn detailed collection on or off for the rest of the process. */
void setEnabled(bool on);

/**
 * Read CISRAM_METRICS once and apply it. Idempotent and thread-safe;
 * called by the subsystem constructors so plain env-var usage needs
 * no code.
 */
void initFromEnv();

} // namespace cisram::metrics

#endif // CISRAM_COMMON_METRICS_HH
