/**
 * @file
 * Global metrics registry: counters, gauges, and histograms with
 * labeled series.
 *
 * Subsystems register named series (e.g. "dram.row_hits" or
 * "sim.op.cycles{op=gvml.addU16}") and bump them as the simulation
 * runs; a whole run can then be serialized to JSON by the stats sink
 * (bench/bench_report) or inspected programmatically.
 *
 * Cost model: obtaining a series reference does a map lookup, so hot
 * paths hold the returned reference (or use opCounters(), which
 * caches by string-literal identity). Bumping a held series is a
 * single add. Per-charge instrumentation in the simulator is further
 * gated behind metrics::enabled() so a run that never opts in pays
 * only a global bool test. The simulator is single-threaded by
 * design (see apusim/multicore.hh); the registry is not locked.
 */

#ifndef CISRAM_COMMON_METRICS_HH
#define CISRAM_COMMON_METRICS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/json.hh"

namespace cisram::metrics {

/** Ordered label set rendered into the series key. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Monotonically increasing sum. */
class Counter
{
  public:
    void inc(double d = 1.0) { value_ += d; }
    double value() const { return value_; }
    void zero() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Last-written value. */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void zero() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * Distribution summary: count/sum/min/max plus base-2 exponential
 * buckets (bucket i counts observations in [2^(i-1), 2^i), bucket 0
 * counts values < 1).
 */
class Histogram
{
  public:
    static constexpr int numBuckets = 64;

    void observe(double v);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    uint64_t bucketCount(int i) const { return buckets_[i]; }

    void zero();

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    uint64_t buckets_[numBuckets] = {};
};

/** Per-op counter bundle used by the cycle-charging hot path. */
struct OpCounters
{
    Counter &issues; ///< times the op was charged
    Counter &cycles; ///< total (repeat-scaled) cycles
    Counter &bytes;  ///< total bytes moved (DMA/PIO ops)
};

class Registry
{
  public:
    static Registry &get();

    Counter &counter(const std::string &name,
                     const Labels &labels = {});
    Gauge &gauge(const std::string &name, const Labels &labels = {});
    Histogram &histogram(const std::string &name,
                         const Labels &labels = {});

    /**
     * Cached per-op bundle keyed by the string literal's identity;
     * `op` must be a pointer that stays valid for the process
     * lifetime (string literals qualify).
     */
    OpCounters &opCounters(const char *op);

    /**
     * Zero every registered series. References handed out earlier
     * remain valid (series are never destroyed).
     */
    void zeroAll();

    /**
     * Snapshot as JSON: {"counters": {...}, "gauges": {...},
     * "histograms": {key: {count, sum, min, max, mean}}}.
     */
    json::Value toJson() const;

    /** Series key as rendered into the JSON dump. */
    static std::string seriesKey(const std::string &name,
                                 const Labels &labels);

  private:
    Registry() = default;

    template <typename T>
    T &series(std::map<std::string, std::unique_ptr<T>> &store,
              const std::string &name, const Labels &labels);

    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::unordered_map<const void *, std::unique_ptr<OpCounters>>
        opCache_;
};

namespace detail {
extern bool g_enabled;
} // namespace detail

/**
 * True when detailed (per-charge) metric collection is on. Off by
 * default; enabled by CISRAM_METRICS=1, by the bench stats sink, or
 * programmatically. Coarse per-call metrics (DRAM trace summaries,
 * energy breakdowns) are recorded unconditionally. Inline (a single
 * global load) so the charge hot path stays fully inlineable.
 */
inline bool
enabled()
{
    return detail::g_enabled;
}

/** Turn detailed collection on or off for the rest of the process. */
void setEnabled(bool on);

/**
 * Read CISRAM_METRICS once and apply it. Idempotent; called by the
 * subsystem constructors so plain env-var usage needs no code.
 */
void initFromEnv();

} // namespace cisram::metrics

#endif // CISRAM_COMMON_METRICS_HH
