/**
 * @file
 * Fixed-point helpers for the APU's sin_fx / cos_fx operations.
 *
 * The GVML fixed-point trigonometric functions operate on Q1.15
 * phase inputs (one full turn == 2^16 counts, i.e. the uint16 phase
 * wraps naturally) and produce Q1.15 outputs in [-1, 1).
 */

#ifndef CISRAM_COMMON_FIXEDPOINT_HH
#define CISRAM_COMMON_FIXEDPOINT_HH

#include <cstdint>

namespace cisram {

/**
 * Sine of a binary angle.
 *
 * @param phase Angle where 0x0000 == 0 rad and 0x10000 == 2*pi rad.
 * @return sin(angle) in Q1.15 (32767 ~= +1.0, -32768 == -1.0).
 */
int16_t sinFx(uint16_t phase);

/** Cosine of a binary angle; same conventions as sinFx(). */
int16_t cosFx(uint16_t phase);

/** Convert Q1.15 to double (for tests and reference checks). */
constexpr double
q15ToDouble(int16_t v)
{
    return static_cast<double>(v) / 32768.0;
}

/** Convert a radian angle to the binary phase convention. */
uint16_t radiansToPhase(double radians);

} // namespace cisram

#endif // CISRAM_COMMON_FIXEDPOINT_HH
