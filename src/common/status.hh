/**
 * @file
 * Recoverable-error reporting: cisram::Status and StatusOr<T>.
 *
 * The repo draws a hard line between two failure classes (see
 * DESIGN.md "Fault model and error-handling contract"):
 *
 *  - API *misuse* — out-of-bounds indices, shape mismatches,
 *    double-frees — stays a loud death via cisram_assert/panic.
 *    Those are bugs in the calling program; continuing would
 *    corrupt simulation results silently.
 *  - *Environmental* faults — a device task that hangs past its
 *    deadline, a PCIe transfer corrupted in flight, an uncorrectable
 *    DRAM ECC error, device-memory exhaustion under load — are
 *    conditions a production host must detect, report, retry, and
 *    degrade around. Those travel as Status values.
 *
 * Status mirrors the shape of absl::Status / gdl_status_t without
 * the dependency: a small code plus a human-readable message.
 * StatusOr<T> carries either a value or the error that prevented
 * producing one.
 */

#ifndef CISRAM_COMMON_STATUS_HH
#define CISRAM_COMMON_STATUS_HH

#include <optional>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace cisram {

/** Failure classes a recoverable operation can report. */
enum class StatusCode : uint8_t
{
    Ok = 0,
    DeadlineExceeded,  ///< device task ran past its timeout
    DataCorruption,    ///< CRC/ECC detected an unrecoverable error
    DeviceFault,       ///< device task returned a nonzero status
    ResourceExhausted, ///< device memory (or similar) unavailable
    InvalidArgument,   ///< malformed configuration (fault spec)
    Unavailable,       ///< transient refusal; retrying may succeed
};

/** Stable upper-case name, e.g. "DEADLINE_EXCEEDED". */
const char *statusCodeName(StatusCode code);

class Status
{
  public:
    /** Default: OK. */
    Status() = default;

    Status(StatusCode code, std::string msg)
        : code_(code), msg_(std::move(msg))
    {}

    static Status okStatus() { return Status(); }

    static Status
    deadlineExceeded(std::string msg)
    {
        return {StatusCode::DeadlineExceeded, std::move(msg)};
    }

    static Status
    dataCorruption(std::string msg)
    {
        return {StatusCode::DataCorruption, std::move(msg)};
    }

    static Status
    deviceFault(std::string msg)
    {
        return {StatusCode::DeviceFault, std::move(msg)};
    }

    static Status
    resourceExhausted(std::string msg)
    {
        return {StatusCode::ResourceExhausted, std::move(msg)};
    }

    static Status
    invalidArgument(std::string msg)
    {
        return {StatusCode::InvalidArgument, std::move(msg)};
    }

    static Status
    unavailable(std::string msg)
    {
        return {StatusCode::Unavailable, std::move(msg)};
    }

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return msg_; }

    /** "DATA_CORRUPTION: <message>" (or "OK"). */
    std::string toString() const;

    bool
    operator==(const Status &o) const
    {
        return code_ == o.code_ && msg_ == o.msg_;
    }

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string msg_;
};

/**
 * Either a T or the Status explaining its absence. Constructing from
 * an OK status is a caller bug (there would be no value) and panics.
 */
template <typename T>
class StatusOr
{
  public:
    StatusOr(Status status) : status_(std::move(status))
    {
        cisram_assert(!status_.ok(),
                      "StatusOr constructed from OK status without "
                      "a value");
    }

    StatusOr(T value) : value_(std::move(value)) {}

    bool ok() const { return status_.ok(); }
    const Status &status() const { return status_; }

    T &
    value()
    {
        cisram_assert(status_.ok(), "StatusOr::value on error: ",
                      status_.toString());
        return *value_;
    }

    const T &
    value() const
    {
        cisram_assert(status_.ok(), "StatusOr::value on error: ",
                      status_.toString());
        return *value_;
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace cisram

#endif // CISRAM_COMMON_STATUS_HH
