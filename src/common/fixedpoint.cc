#include "common/fixedpoint.hh"

#include <cmath>

namespace cisram {

namespace {

/**
 * Quarter-wave sine table, 256 entries + endpoint, Q1.15.
 *
 * A table-plus-interpolation implementation mirrors how GVML realizes
 * trigonometric functions on the device (lookup against L3 plus
 * element-wise fixup), and keeps the functional result deterministic.
 */
struct QuarterWaveTable
{
    int32_t entries[257];

    QuarterWaveTable()
    {
        for (int i = 0; i <= 256; ++i) {
            double angle = (static_cast<double>(i) / 256.0) * M_PI / 2.0;
            entries[i] =
                static_cast<int32_t>(std::lround(std::sin(angle) * 32767.0));
        }
    }
};

const QuarterWaveTable quarterWave;

/** Sine over the first quadrant with linear interpolation. */
int32_t
quarterSin(uint32_t idx14)
{
    // idx14 is a position within the closed quadrant [0, 0x4000].
    if (idx14 >= 0x4000)
        return quarterWave.entries[256];
    uint32_t hi = idx14 >> 6;         // table index, 0..255
    uint32_t lo = idx14 & 0x3f;       // interpolation fraction, 6 bits
    int32_t a = quarterWave.entries[hi];
    int32_t b = quarterWave.entries[hi + 1];
    return a + (((b - a) * static_cast<int32_t>(lo)) >> 6);
}

} // namespace

int16_t
sinFx(uint16_t phase)
{
    uint32_t quadrant = phase >> 14;
    uint32_t idx = phase & 0x3fff;
    int32_t v;
    switch (quadrant) {
      case 0:
        v = quarterSin(idx);
        break;
      case 1:
        v = quarterSin(0x4000 - idx);
        break;
      case 2:
        v = -quarterSin(idx);
        break;
      default:
        v = -quarterSin(0x4000 - idx);
        break;
    }
    if (v > 32767)
        v = 32767;
    if (v < -32768)
        v = -32768;
    return static_cast<int16_t>(v);
}

int16_t
cosFx(uint16_t phase)
{
    return sinFx(static_cast<uint16_t>(phase + 0x4000));
}

uint16_t
radiansToPhase(double radians)
{
    double turns = radians / (2.0 * M_PI);
    turns -= std::floor(turns);
    return static_cast<uint16_t>(
        std::lround(turns * 65536.0)) /* wraps mod 2^16 naturally */;
}

} // namespace cisram
