/**
 * @file
 * Software IEEE 754 binary16 (half precision).
 *
 * The APU natively operates on 16-bit IEEE floating point; the
 * functional simulator needs bit-exact conversions and arithmetic that
 * rounds to half precision after every operation (round-to-nearest-
 * even), matching a hardware FP16 datapath.
 */

#ifndef CISRAM_COMMON_FLOAT16_HH
#define CISRAM_COMMON_FLOAT16_HH

#include <cstdint>

namespace cisram {

/**
 * IEEE binary16 value held as its 16-bit encoding.
 *
 * 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
 */
class Float16
{
  public:
    Float16() = default;

    /** Reinterpret a raw 16-bit encoding. */
    static Float16
    fromBits(uint16_t b)
    {
        Float16 f;
        f.bits_ = b;
        return f;
    }

    /** Convert from single precision, round-to-nearest-even. */
    static Float16 fromFloat(float v);

    /** Widen to single precision (exact). */
    float toFloat() const;

    uint16_t bits() const { return bits_; }

    bool isNan() const;
    bool isInf() const;
    bool isZero() const;
    bool signBit() const { return (bits_ >> 15) & 1; }

    /** Arithmetic: computed in float, rounded back to half. */
    friend Float16
    operator+(Float16 a, Float16 b)
    {
        return fromFloat(a.toFloat() + b.toFloat());
    }

    friend Float16
    operator-(Float16 a, Float16 b)
    {
        return fromFloat(a.toFloat() - b.toFloat());
    }

    friend Float16
    operator*(Float16 a, Float16 b)
    {
        return fromFloat(a.toFloat() * b.toFloat());
    }

    friend Float16
    operator/(Float16 a, Float16 b)
    {
        return fromFloat(a.toFloat() / b.toFloat());
    }

    /** IEEE comparison semantics (NaN compares false). */
    friend bool
    operator<(Float16 a, Float16 b)
    {
        return a.toFloat() < b.toFloat();
    }

    friend bool
    operator==(Float16 a, Float16 b)
    {
        return a.toFloat() == b.toFloat();
    }

  private:
    uint16_t bits_ = 0;
};

} // namespace cisram

#endif // CISRAM_COMMON_FLOAT16_HH
