#include "common/threadpool.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace cisram {

namespace {

/** Worker-context flag: nested parallelFor calls run inline. */
thread_local bool t_inWorker = false;

std::atomic<int> g_threadOverride{-1}; // -1 = use the environment

unsigned
threadsFromEnv()
{
    const char *env = std::getenv("CISRAM_SIM_THREADS");
    if (!env || !*env)
        return 0;
    char *end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 0) {
        cisram_warn("ignoring malformed CISRAM_SIM_THREADS '", env,
                    "' (expected a non-negative integer)");
        return 0;
    }
    return static_cast<unsigned>(v);
}

} // namespace

unsigned
simThreads()
{
    int ov = g_threadOverride.load(std::memory_order_acquire);
    if (ov >= 0)
        return static_cast<unsigned>(ov);
    static const unsigned fromEnv = threadsFromEnv();
    return fromEnv;
}

void
setSimThreads(unsigned n)
{
    g_threadOverride.store(static_cast<int>(n),
                           std::memory_order_release);
}

SimThreadPool &
SimThreadPool::get()
{
    static SimThreadPool pool;
    return pool;
}

SimThreadPool::~SimThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cvWork_.notify_all();
    for (auto &w : workers_)
        w.join();
}

unsigned
SimThreadPool::workerCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return static_cast<unsigned>(workers_.size());
}

void
SimThreadPool::ensureWorkers(unsigned count)
{
    // Caller holds mu_.
    while (workers_.size() < count)
        workers_.emplace_back([this] { workerLoop(); });
}

void
SimThreadPool::runTasks(Job &job)
{
    size_t i;
    while ((i = job.next.fetch_add(1, std::memory_order_relaxed)) <
           job.n) {
        try {
            (*job.fn)(i);
        } catch (...) {
            job.errors[i] = std::current_exception();
        }
        if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            job.n) {
            std::lock_guard<std::mutex> lk(mu_);
            cvDone_.notify_all();
        }
    }
}

void
SimThreadPool::workerLoop()
{
    t_inWorker = true;
    uint64_t seen = 0;
    for (;;) {
        Job *job = nullptr;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cvWork_.wait(lk, [&] {
                return stop_ || (job_ != nullptr && jobGen_ != seen);
            });
            if (stop_)
                return;
            seen = jobGen_;
            job = job_;
            ++job->refs; // keep the batch alive while we touch it
        }
        runTasks(*job);
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (--job->refs == 0)
                cvDone_.notify_all();
        }
    }
}

void
SimThreadPool::parallelFor(size_t n,
                           const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;

    unsigned setting = simThreads();
    size_t threads = setting == 0 ? n : setting;
    if (threads > n)
        threads = n;

    // Serial mode, single task, or a nested call from inside a
    // worker: run inline (exceptions propagate naturally).
    if (threads <= 1 || t_inWorker) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    Job job;
    job.fn = &fn;
    job.n = n;
    job.errors.resize(n);

    {
        std::unique_lock<std::mutex> lk(mu_);
        cisram_assert(job_ == nullptr,
                      "concurrent parallelFor batches on one pool");
        ensureWorkers(static_cast<unsigned>(threads) - 1);
        job_ = &job;
        ++jobGen_;
    }
    cvWork_.notify_all();

    // The calling thread works the same queue. It is batch context
    // for the duration: a nested parallelFor from a task it executes
    // must run inline, exactly as it would on a worker, rather than
    // trying to submit a second concurrent batch.
    t_inWorker = true;
    runTasks(job);
    t_inWorker = false;

    {
        std::unique_lock<std::mutex> lk(mu_);
        // Wait for every task to finish AND for every worker that
        // picked up the batch pointer to let go of it; the Job lives
        // on this stack frame.
        cvDone_.wait(lk, [&] {
            return job.done.load(std::memory_order_acquire) == n &&
                job.refs == 0;
        });
        job_ = nullptr;
    }

    for (size_t i = 0; i < n; ++i)
        if (job.errors[i])
            std::rethrow_exception(job.errors[i]);
}

} // namespace cisram
