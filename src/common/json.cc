#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"

namespace cisram::json {

Value &
Object::operator[](const std::string &key)
{
    for (auto &kv : items_)
        if (kv.first == key)
            return kv.second;
    items_.emplace_back(key, Value{});
    return items_.back().second;
}

const Value *
Object::find(const std::string &key) const
{
    for (const auto &kv : items_)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

bool
Value::asBool() const
{
    cisram_assert(type_ == Type::Bool, "JSON value is not a bool");
    return bool_;
}

double
Value::asNumber() const
{
    cisram_assert(type_ == Type::Number, "JSON value is not a number");
    return num_;
}

const std::string &
Value::asString() const
{
    cisram_assert(type_ == Type::String, "JSON value is not a string");
    return str_;
}

const Array &
Value::asArray() const
{
    cisram_assert(type_ == Type::Array, "JSON value is not an array");
    return arr_;
}

const Object &
Value::asObject() const
{
    cisram_assert(type_ == Type::Object, "JSON value is not an object");
    return obj_;
}

Array &
Value::makeArray()
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    cisram_assert(type_ == Type::Array, "JSON value is not an array");
    return arr_;
}

Object &
Value::makeObject()
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    cisram_assert(type_ == Type::Object, "JSON value is not an object");
    return obj_;
}

void
appendQuoted(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

namespace {

void
appendNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    // Integers (the common case for counters and cycle counts) print
    // without an exponent or trailing zeros.
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        out += buf;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

void
indentTo(std::string &out, int indent, int depth)
{
    if (indent < 0)
        return;
    out += '\n';
    out.append(static_cast<size_t>(indent) * depth, ' ');
}

} // namespace

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    switch (type_) {
    case Type::Null:
        out += "null";
        break;
    case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
    case Type::Number:
        appendNumber(out, num_);
        break;
    case Type::String:
        appendQuoted(out, str_);
        break;
    case Type::Array: {
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        bool first = true;
        for (const auto &v : arr_) {
            if (!first)
                out += ',';
            first = false;
            indentTo(out, indent, depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        indentTo(out, indent, depth);
        out += ']';
        break;
    }
    case Type::Object: {
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        bool first = true;
        for (const auto &kv : obj_) {
            if (!first)
                out += ',';
            first = false;
            indentTo(out, indent, depth + 1);
            appendQuoted(out, kv.first);
            out += indent < 0 ? ":" : ": ";
            kv.second.dumpTo(out, indent, depth + 1);
        }
        indentTo(out, indent, depth);
        out += '}';
        break;
    }
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// ---------------------------------------------------------------------
// Parser: recursive descent over the document.

namespace {

struct Parser
{
    const char *p;
    const char *end;
    std::string err;

    bool
    fail(const std::string &msg)
    {
        if (err.empty())
            err = msg;
        return false;
    }

    void
    skipWs()
    {
        while (p < end &&
               (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
            ++p;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word, size_t len)
    {
        if (static_cast<size_t>(end - p) < len ||
            std::memcmp(p, word, len) != 0)
            return fail(std::string("expected '") + word + "'");
        p += len;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (p >= end || *p != '"')
            return fail("expected string");
        ++p;
        out.clear();
        while (p < end && *p != '"') {
            char c = *p++;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p >= end)
                return fail("truncated escape");
            char e = *p++;
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (end - p < 4)
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = *p++;
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs
                // are passed through as two 3-byte sequences, which
                // round-trips our own writer's output).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
            }
            default:
                return fail("bad escape character");
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p; // closing quote
        return true;
    }

    bool
    parseValue(Value &out)
    {
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
        case 'n':
            if (!literal("null", 4))
                return false;
            out = Value{};
            return true;
        case 't':
            if (!literal("true", 4))
                return false;
            out = Value{true};
            return true;
        case 'f':
            if (!literal("false", 5))
                return false;
            out = Value{false};
            return true;
        case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value{std::move(s)};
            return true;
        }
        case '[': {
            ++p;
            Array arr;
            skipWs();
            if (consume(']')) {
                out = Value{std::move(arr)};
                return true;
            }
            while (true) {
                Value v;
                if (!parseValue(v))
                    return false;
                arr.push_back(std::move(v));
                if (consume(']'))
                    break;
                if (!consume(','))
                    return fail("expected ',' or ']'");
            }
            out = Value{std::move(arr)};
            return true;
        }
        case '{': {
            ++p;
            Object obj;
            skipWs();
            if (consume('}')) {
                out = Value{std::move(obj)};
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                Value v;
                if (!parseValue(v))
                    return false;
                obj[key] = std::move(v);
                if (consume('}'))
                    break;
                if (!consume(','))
                    return fail("expected ',' or '}'");
            }
            out = Value{std::move(obj)};
            return true;
        }
        default: {
            char *num_end = nullptr;
            double v = std::strtod(p, &num_end);
            if (num_end == p)
                return fail("unexpected character");
            p = num_end;
            out = Value{v};
            return true;
        }
        }
    }
};

} // namespace

bool
parse(const std::string &text, Value &out, std::string *error)
{
    Parser parser{text.data(), text.data() + text.size(), {}};
    if (!parser.parseValue(out)) {
        if (error)
            *error = parser.err;
        return false;
    }
    parser.skipWs();
    if (parser.p != parser.end) {
        if (error)
            *error = "trailing characters after document";
        return false;
    }
    return true;
}

Value
parseOrDie(const std::string &text)
{
    Value v;
    std::string err;
    if (!parse(text, v, &err))
        cisram_panic("JSON parse failed: ", err);
    return v;
}

} // namespace cisram::json
