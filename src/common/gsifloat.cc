#include "common/gsifloat.hh"

#include <bit>

namespace cisram {

GsiFloat16
GsiFloat16::fromFloat(float v)
{
    uint32_t f = std::bit_cast<uint32_t>(v);
    uint32_t sign = (f >> 16) & 0x8000u;
    int32_t exp = static_cast<int32_t>((f >> 23) & 0xff) - 127;
    uint32_t frac = f & 0x7fffffu;

    constexpr int drop = 23 - manBits; // 14 mantissa bits discarded
    constexpr int emax = 63 - expBias; // largest normal exponent + 1

    uint16_t out;
    if (exp == 128) {
        out = static_cast<uint16_t>(
            sign | (0x3fu << manBits) |
            (frac ? (0x100 | (frac >> drop)) : 0));
    } else if (exp >= emax) {
        out = static_cast<uint16_t>(sign | (0x3fu << manBits));
    } else if (exp >= 1 - expBias) {
        uint32_t mant = frac >> drop;
        uint32_t rem = frac & ((1u << drop) - 1);
        uint32_t half = 1u << (drop - 1);
        if (rem > half || (rem == half && (mant & 1)))
            ++mant;
        uint32_t biased = static_cast<uint32_t>(exp + expBias);
        out = static_cast<uint16_t>(sign | ((biased << manBits) + mant));
    } else if (exp >= -expBias - manBits) {
        // Subnormal: k = (2^23 + frac) * 2^(exp + expBias - 1 - drop),
        // computed as a right shift with nearest-even rounding.
        uint32_t full = 0x800000u | frac;
        uint32_t shift =
            static_cast<uint32_t>(drop + (1 - expBias) - exp);
        if (shift >= 32) {
            out = static_cast<uint16_t>(sign);
        } else {
            uint32_t keep = full >> shift;
            uint32_t rem = full & ((1u << shift) - 1);
            uint32_t half = 1u << (shift - 1);
            if (rem > half || (rem == half && (keep & 1)))
                ++keep;
            out = static_cast<uint16_t>(sign | keep);
        }
    } else {
        out = static_cast<uint16_t>(sign);
    }
    return fromBits(out);
}

float
GsiFloat16::toFloat() const
{
    uint32_t sign = static_cast<uint32_t>(bits_ & 0x8000) << 16;
    uint32_t exp = (bits_ >> manBits) & 0x3f;
    uint32_t frac = bits_ & ((1u << manBits) - 1);

    constexpr int widen = 23 - manBits;

    uint32_t out;
    if (exp == 0x3f) {
        out = sign | 0x7f800000u | (frac << widen);
    } else if (exp == 0) {
        if (frac == 0) {
            out = sign;
        } else {
            int shift = 0;
            while (!(frac & (1u << manBits))) {
                frac <<= 1;
                ++shift;
            }
            frac &= (1u << manBits) - 1;
            uint32_t e =
                static_cast<uint32_t>(127 - (expBias - 1) - shift);
            out = sign | (e << 23) | (frac << widen);
        }
    } else {
        out = sign | ((exp - expBias + 127) << 23) | (frac << widen);
    }
    return std::bit_cast<float>(out);
}

bool
GsiFloat16::isNan() const
{
    return ((bits_ >> manBits) & 0x3f) == 0x3f &&
        (bits_ & ((1u << manBits) - 1)) != 0;
}

bool
GsiFloat16::isInf() const
{
    return ((bits_ >> manBits) & 0x3f) == 0x3f &&
        (bits_ & ((1u << manBits) - 1)) == 0;
}

} // namespace cisram
