/**
 * @file
 * Simulator worker-thread pool.
 *
 * The device's cores are independent engines sharing only L4, so a
 * data-parallel kernel sharded across them can also be *executed* in
 * parallel on the host without changing any cycle accounting: each
 * core's ledger, register files, and SRAM levels are private, and the
 * observability layer shards per core and merges deterministically
 * (see apusim/multicore.hh).
 *
 * Concurrency is controlled by CISRAM_SIM_THREADS:
 *   unset / 0  -> one host thread per task (default: device cores)
 *   1          -> serial execution on the calling thread
 *   N > 1      -> at most N host threads run tasks concurrently
 * and can be overridden programmatically with setSimThreads() (used
 * by the determinism tests to compare serial and threaded runs in
 * one process).
 *
 * parallelFor() never deadlocks on nesting: a parallelFor issued
 * from inside a worker task runs inline on that worker. Exceptions
 * thrown by tasks are captured per index and the lowest-index one is
 * rethrown on the calling thread after every task has finished, so
 * failure behavior is deterministic regardless of interleaving.
 */

#ifndef CISRAM_COMMON_THREADPOOL_HH
#define CISRAM_COMMON_THREADPOOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cisram {

/**
 * Effective thread setting: CISRAM_SIM_THREADS (cached on first use)
 * unless overridden by setSimThreads(). 0 means "one thread per
 * task".
 */
unsigned simThreads();

/** Override the thread count for the rest of the process. */
void setSimThreads(unsigned n);

class SimThreadPool
{
  public:
    /** The process-wide pool (workers are spawned on demand). */
    static SimThreadPool &get();

    /**
     * Run `fn(0) .. fn(n-1)` with at most simThreads() host threads
     * (the calling thread participates). Returns after every task
     * has finished; rethrows the lowest-index captured exception.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /** Workers currently spawned (for tests / introspection). */
    unsigned workerCount() const;

    ~SimThreadPool();

    SimThreadPool(const SimThreadPool &) = delete;
    SimThreadPool &operator=(const SimThreadPool &) = delete;

  private:
    SimThreadPool() = default;

    struct Job
    {
        const std::function<void(size_t)> *fn = nullptr;
        size_t n = 0;
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
        size_t refs = 0; ///< workers holding the job (guarded by mu_)
        std::vector<std::exception_ptr> errors;
    };

    void workerLoop();
    void runTasks(Job &job);
    void ensureWorkers(unsigned count);

    mutable std::mutex mu_;
    std::condition_variable cvWork_;
    std::condition_variable cvDone_;
    std::vector<std::thread> workers_;
    Job *job_ = nullptr;       ///< current batch, null when idle
    uint64_t jobGen_ = 0;      ///< bumped per batch so workers wake once
    bool stop_ = false;
};

} // namespace cisram

#endif // CISRAM_COMMON_THREADPOOL_HH
