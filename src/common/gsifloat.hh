/**
 * @file
 * The custom GSI 16-bit floating-point format.
 *
 * The GSI APU supports a proprietary 16-bit float with a 6-bit
 * exponent and a 9-bit mantissa (paper Section 2.1.1). The wider
 * exponent (bias 31) trades one bit of precision for 2x the dynamic
 * range of IEEE half, which benefits distance computations over
 * quantized embeddings.
 */

#ifndef CISRAM_COMMON_GSIFLOAT_HH
#define CISRAM_COMMON_GSIFLOAT_HH

#include <cstdint>

namespace cisram {

/**
 * GSI float16: 1 sign bit, 6 exponent bits (bias 31), 9 mantissa bits.
 *
 * Encoding mirrors IEEE conventions: exponent 0 holds zero and
 * subnormals, exponent 63 holds Inf/NaN.
 */
class GsiFloat16
{
  public:
    static constexpr int expBits = 6;
    static constexpr int manBits = 9;
    static constexpr int expBias = 31;

    GsiFloat16() = default;

    static GsiFloat16
    fromBits(uint16_t b)
    {
        GsiFloat16 f;
        f.bits_ = b;
        return f;
    }

    /** Convert from single precision, round-to-nearest-even. */
    static GsiFloat16 fromFloat(float v);

    /** Widen to single precision (exact). */
    float toFloat() const;

    uint16_t bits() const { return bits_; }

    bool isNan() const;
    bool isInf() const;
    bool isZero() const { return (bits_ & 0x7fff) == 0; }
    bool signBit() const { return (bits_ >> 15) & 1; }

    friend GsiFloat16
    operator+(GsiFloat16 a, GsiFloat16 b)
    {
        return fromFloat(a.toFloat() + b.toFloat());
    }

    friend GsiFloat16
    operator*(GsiFloat16 a, GsiFloat16 b)
    {
        return fromFloat(a.toFloat() * b.toFloat());
    }

    friend bool
    operator<(GsiFloat16 a, GsiFloat16 b)
    {
        return a.toFloat() < b.toFloat();
    }

    friend bool
    operator==(GsiFloat16 a, GsiFloat16 b)
    {
        return a.toFloat() == b.toFloat();
    }

  private:
    uint16_t bits_ = 0;
};

} // namespace cisram

#endif // CISRAM_COMMON_GSIFLOAT_HH
