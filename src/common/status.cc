#include "common/status.hh"

namespace cisram {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "OK";
      case StatusCode::DeadlineExceeded:
        return "DEADLINE_EXCEEDED";
      case StatusCode::DataCorruption:
        return "DATA_CORRUPTION";
      case StatusCode::DeviceFault:
        return "DEVICE_FAULT";
      case StatusCode::ResourceExhausted:
        return "RESOURCE_EXHAUSTED";
      case StatusCode::InvalidArgument:
        return "INVALID_ARGUMENT";
      case StatusCode::Unavailable:
        return "UNAVAILABLE";
    }
    return "?";
}

std::string
Status::toString() const
{
    if (ok())
        return "OK";
    std::string out = statusCodeName(code_);
    if (!msg_.empty()) {
        out += ": ";
        out += msg_;
    }
    return out;
}

} // namespace cisram
