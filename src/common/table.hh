/**
 * @file
 * ASCII table rendering for benchmark output.
 *
 * Every bench binary reproduces one of the paper's tables or figures;
 * this helper prints aligned rows so the output can be compared
 * against the paper directly (and diffed between runs).
 */

#ifndef CISRAM_COMMON_TABLE_HH
#define CISRAM_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace cisram {

/** Column-aligned ASCII table with a header row and separators. */
class AsciiTable
{
  public:
    /** @param headers Column titles; fixes the column count. */
    explicit AsciiTable(std::vector<std::string> headers);

    /** Append a data row; must match the header column count. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render to a string, one line per row, columns padded. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    struct Row
    {
        bool separator;
        std::vector<std::string> cells;
    };
    std::vector<Row> rows_;
};

/** printf-style float formatting into std::string. */
std::string formatDouble(double v, int precision = 2);

/** Format a cycle count as engineering-notation time at a clock. */
std::string formatTime(double seconds);

/** Format a byte count using binary units (KiB/MiB/GiB). */
std::string formatBytes(double bytes);

} // namespace cisram

#endif // CISRAM_COMMON_TABLE_HH
