#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/logging.hh"

namespace cisram {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    cisram_assert(!headers_.empty());
}

void
AsciiTable::addRow(std::vector<std::string> cells)
{
    cisram_assert(cells.size() == headers_.size(),
                  "row has ", cells.size(), " cells, expected ",
                  headers_.size());
    rows_.push_back({false, std::move(cells)});
}

void
AsciiTable::addSeparator()
{
    rows_.push_back({true, {}});
}

std::string
AsciiTable::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        if (row.separator)
            continue;
        for (size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    auto renderLine = [&](const std::vector<std::string> &cells) {
        std::string line = "|";
        for (size_t c = 0; c < cells.size(); ++c) {
            line += " " + cells[c];
            line += std::string(widths[c] - cells[c].size(), ' ');
            line += " |";
        }
        return line + "\n";
    };
    auto renderSep = [&]() {
        std::string line = "+";
        for (size_t c = 0; c < widths.size(); ++c)
            line += std::string(widths[c] + 2, '-') + "+";
        return line + "\n";
    };

    std::string out = renderSep() + renderLine(headers_) + renderSep();
    for (const auto &row : rows_)
        out += row.separator ? renderSep() : renderLine(row.cells);
    out += renderSep();
    return out;
}

void
AsciiTable::print() const
{
    std::cout << render() << std::flush;
}

std::string
formatDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
formatTime(double seconds)
{
    char buf[64];
    if (seconds >= 1.0)
        std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
    else if (seconds >= 1e-3)
        std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
    else if (seconds >= 1e-6)
        std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
    else
        std::snprintf(buf, sizeof(buf), "%.3f ns", seconds * 1e9);
    return buf;
}

std::string
formatBytes(double bytes)
{
    char buf[64];
    if (bytes >= 1024.0 * 1024.0 * 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.2f GiB",
                      bytes / (1024.0 * 1024.0 * 1024.0));
    } else if (bytes >= 1024.0 * 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.2f MiB",
                      bytes / (1024.0 * 1024.0));
    } else if (bytes >= 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.2f KiB", bytes / 1024.0);
    } else {
        std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
    }
    return buf;
}

} // namespace cisram
