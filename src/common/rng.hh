/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * All synthetic workload generators use this xoshiro256** engine so
 * that every experiment is reproducible bit-for-bit across runs and
 * machines, independent of the standard library's distributions.
 */

#ifndef CISRAM_COMMON_RNG_HH
#define CISRAM_COMMON_RNG_HH

#include <cstdint>

namespace cisram {

/** xoshiro256** by Blackman & Vigna; public-domain reference design. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding to spread a small seed across state.
        uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    uint64_t
    next()
    {
        uint64_t result = rotl(state[1] * 5, 7) * 9;
        uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). */
    uint64_t
    nextBelow(uint64_t bound)
    {
        // Multiplicative range reduction (Lemire); bias is negligible
        // for the bounds used by workload generators.
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform 16-bit value. */
    uint16_t nextU16() { return static_cast<uint16_t>(next()); }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [lo, hi). */
    float
    nextFloat(float lo, float hi)
    {
        return lo + static_cast<float>(nextDouble()) * (hi - lo);
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state[4];
};

} // namespace cisram

#endif // CISRAM_COMMON_RNG_HH
