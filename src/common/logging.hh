/**
 * @file
 * Error-reporting and assertion utilities.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (simulator bugs), fatal() is for user errors (bad
 * configuration or arguments), warn()/inform()/debug() are status
 * messages filtered by a runtime log level.
 *
 * The level comes from the CISRAM_LOG_LEVEL environment variable
 * (quiet | warn | info | debug; default info) and can be overridden
 * programmatically with setLogLevel(). panic/fatal always print.
 */

#ifndef CISRAM_COMMON_LOGGING_HH
#define CISRAM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace cisram {

/** Terminate with an error message: internal invariant violated. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminate with an error message: unrecoverable user error. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr; execution continues. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr; execution continues. */
void informImpl(const std::string &msg);

/** Print a debug diagnostic to stderr; execution continues. */
void debugImpl(const std::string &msg);

/** Message severity, ordered so higher values print more. */
enum class LogLevel { Quiet = 0, Warn = 1, Info = 2, Debug = 3 };

/** Current level (CISRAM_LOG_LEVEL, cached on first use). */
LogLevel logLevel();

/** Override the level for the rest of the process. */
void setLogLevel(LogLevel level);

/** True if messages of `level` currently print. */
inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(logLevel()) >= static_cast<int>(level);
}

namespace detail {

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace cisram

#define cisram_panic(...) \
    ::cisram::panicImpl(__FILE__, __LINE__, \
                        ::cisram::detail::concat(__VA_ARGS__))

#define cisram_fatal(...) \
    ::cisram::fatalImpl(__FILE__, __LINE__, \
                        ::cisram::detail::concat(__VA_ARGS__))

#define cisram_warn(...) \
    ::cisram::warnImpl(::cisram::detail::concat(__VA_ARGS__))

#define cisram_inform(...) \
    ::cisram::informImpl(::cisram::detail::concat(__VA_ARGS__))

/**
 * Debug diagnostic: compiled in, but the (potentially expensive)
 * message formatting only runs when the level admits it.
 */
#define cisram_debug(...) \
    do { \
        if (::cisram::logEnabled(::cisram::LogLevel::Debug)) { \
            ::cisram::debugImpl( \
                ::cisram::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

/**
 * Assertion that stays enabled in release builds. Simulator
 * correctness depends on these invariants; the cost is negligible
 * relative to functional simulation work.
 */
#define cisram_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::cisram::panicImpl(__FILE__, __LINE__, \
                ::cisram::detail::concat("assertion failed: " #cond " ", \
                                         ##__VA_ARGS__)); \
        } \
    } while (0)

#endif // CISRAM_COMMON_LOGGING_HH
