/**
 * @file
 * Error-reporting and assertion utilities.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (simulator bugs), fatal() is for user errors (bad
 * configuration or arguments), warn()/inform() are status messages.
 */

#ifndef CISRAM_COMMON_LOGGING_HH
#define CISRAM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace cisram {

/** Terminate with an error message: internal invariant violated. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminate with an error message: unrecoverable user error. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr; execution continues. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr; execution continues. */
void informImpl(const std::string &msg);

namespace detail {

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace cisram

#define cisram_panic(...) \
    ::cisram::panicImpl(__FILE__, __LINE__, \
                        ::cisram::detail::concat(__VA_ARGS__))

#define cisram_fatal(...) \
    ::cisram::fatalImpl(__FILE__, __LINE__, \
                        ::cisram::detail::concat(__VA_ARGS__))

#define cisram_warn(...) \
    ::cisram::warnImpl(::cisram::detail::concat(__VA_ARGS__))

#define cisram_inform(...) \
    ::cisram::informImpl(::cisram::detail::concat(__VA_ARGS__))

/**
 * Assertion that stays enabled in release builds. Simulator
 * correctness depends on these invariants; the cost is negligible
 * relative to functional simulation work.
 */
#define cisram_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::cisram::panicImpl(__FILE__, __LINE__, \
                ::cisram::detail::concat("assertion failed: " #cond " ", \
                                         ##__VA_ARGS__)); \
        } \
    } while (0)

#endif // CISRAM_COMMON_LOGGING_HH
