#include "common/logging.hh"

#include <atomic>
#include <cstring>
#include <exception>
#include <iostream>
#include <mutex>

namespace cisram {

namespace {

// Serializes message emission so lines from concurrent simulator
// workers never interleave mid-line.
std::mutex g_logMu;

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("CISRAM_LOG_LEVEL");
    if (!env || !*env)
        return LogLevel::Info;
    if (std::strcmp(env, "quiet") == 0)
        return LogLevel::Quiet;
    if (std::strcmp(env, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "info") == 0)
        return LogLevel::Info;
    if (std::strcmp(env, "debug") == 0)
        return LogLevel::Debug;
    std::cerr << "warn: unknown CISRAM_LOG_LEVEL '" << env
              << "' (expected quiet|warn|info|debug); using info"
              << std::endl;
    return LogLevel::Info;
}

std::atomic<LogLevel> &
currentLevel()
{
    static std::atomic<LogLevel> level{levelFromEnv()};
    return level;
}

} // namespace

LogLevel
logLevel()
{
    return currentLevel().load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    currentLevel().store(level, std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lk(g_logMu);
        std::cerr << "panic: " << msg << "\n  at " << file << ":"
                  << line << std::endl;
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lk(g_logMu);
        std::cerr << "fatal: " << msg << "\n  at " << file << ":"
                  << line << std::endl;
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!logEnabled(LogLevel::Warn))
        return;
    std::lock_guard<std::mutex> lk(g_logMu);
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!logEnabled(LogLevel::Info))
        return;
    std::lock_guard<std::mutex> lk(g_logMu);
    std::cerr << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lk(g_logMu);
    std::cerr << "debug: " << msg << std::endl;
}

} // namespace cisram
