#include "common/metrics.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace cisram::metrics {

namespace detail {

bool g_enabled = false;

} // namespace detail

void
setEnabled(bool on)
{
    detail::g_enabled = on;
}

void
initFromEnv()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    const char *env = std::getenv("CISRAM_METRICS");
    if (env && *env && *env != '0')
        detail::g_enabled = true;
}

void
Histogram::observe(double v)
{
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_)
        min_ = v;
    if (count_ == 1 || v > max_)
        max_ = v;
    int bucket = 0;
    if (v >= 1.0) {
        bucket = std::ilogb(v) + 1;
        if (bucket >= numBuckets)
            bucket = numBuckets - 1;
    }
    ++buckets_[bucket];
}

void
Histogram::zero()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
    for (auto &b : buckets_)
        b = 0;
}

Registry &
Registry::get()
{
    static Registry instance;
    initFromEnv();
    return instance;
}

std::string
Registry::seriesKey(const std::string &name, const Labels &labels)
{
    if (labels.empty())
        return name;
    std::string key = name;
    key += '{';
    bool first = true;
    for (const auto &kv : labels) {
        if (!first)
            key += ',';
        first = false;
        key += kv.first;
        key += '=';
        key += kv.second;
    }
    key += '}';
    return key;
}

template <typename T>
T &
Registry::series(std::map<std::string, std::unique_ptr<T>> &store,
                 const std::string &name, const Labels &labels)
{
    std::string key = seriesKey(name, labels);
    auto it = store.find(key);
    if (it == store.end())
        it = store.emplace(std::move(key), std::make_unique<T>())
                 .first;
    return *it->second;
}

Counter &
Registry::counter(const std::string &name, const Labels &labels)
{
    return series(counters_, name, labels);
}

Gauge &
Registry::gauge(const std::string &name, const Labels &labels)
{
    return series(gauges_, name, labels);
}

Histogram &
Registry::histogram(const std::string &name, const Labels &labels)
{
    return series(histograms_, name, labels);
}

OpCounters &
Registry::opCounters(const char *op)
{
    auto it = opCache_.find(op);
    if (it != opCache_.end())
        return *it->second;
    Labels labels{{"op", op}};
    auto bundle = std::make_unique<OpCounters>(OpCounters{
        counter("sim.op.issues", labels),
        counter("sim.op.cycles", labels),
        counter("sim.op.bytes", labels)});
    auto *ptr = bundle.get();
    opCache_.emplace(op, std::move(bundle));
    return *ptr;
}

void
Registry::zeroAll()
{
    for (auto &kv : counters_)
        kv.second->zero();
    for (auto &kv : gauges_)
        kv.second->zero();
    for (auto &kv : histograms_)
        kv.second->zero();
}

json::Value
Registry::toJson() const
{
    json::Object root;
    json::Object counters;
    for (const auto &kv : counters_)
        counters[kv.first] = kv.second->value();
    root["counters"] = json::Value{std::move(counters)};

    json::Object gauges;
    for (const auto &kv : gauges_)
        gauges[kv.first] = kv.second->value();
    root["gauges"] = json::Value{std::move(gauges)};

    json::Object histograms;
    for (const auto &kv : histograms_) {
        const Histogram &h = *kv.second;
        json::Object summary;
        summary["count"] = static_cast<double>(h.count());
        summary["sum"] = h.sum();
        summary["min"] = h.min();
        summary["max"] = h.max();
        summary["mean"] = h.mean();
        histograms[kv.first] = json::Value{std::move(summary)};
    }
    root["histograms"] = json::Value{std::move(histograms)};
    return json::Value{std::move(root)};
}

} // namespace cisram::metrics
