#include "common/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <mutex>

#include "common/logging.hh"

namespace cisram::metrics {

namespace detail {

std::atomic<bool> g_enabled{false};

} // namespace detail

namespace {

/** Shard redirect installed by ShardScope; see Registry::get(). */
thread_local Registry *t_shard = nullptr;

} // namespace

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_release);
}

void
initFromEnv()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const char *env = std::getenv("CISRAM_METRICS");
        if (env && *env && *env != '0')
            setEnabled(true);
    });
}

void
Histogram::observe(double v)
{
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_)
        min_ = v;
    if (count_ == 1 || v > max_)
        max_ = v;
    int bucket = 0;
    if (v >= std::ldexp(1.0, minExp)) {
        bucket = std::ilogb(v) - minExp + 1;
        if (bucket >= numBuckets)
            bucket = numBuckets - 1;
    }
    ++buckets_[bucket];
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    if (q <= 0.0)
        return min_;
    if (q >= 1.0)
        return max_;
    double target = q * static_cast<double>(count_);
    double cum = 0.0;
    for (int i = 0; i < numBuckets; ++i) {
        if (buckets_[i] == 0)
            continue;
        double next = cum + static_cast<double>(buckets_[i]);
        if (target <= next) {
            double frac =
                (target - cum) / static_cast<double>(buckets_[i]);
            // Bucket bounds, tightened by the observed extrema (the
            // edge buckets are open-ended).
            double lo = i == 0 ? min_
                               : std::ldexp(1.0, minExp + i - 1);
            double hi = i == numBuckets - 1
                ? max_
                : std::ldexp(1.0, minExp + i);
            lo = std::max(lo, min_);
            hi = std::min(hi, max_);
            if (hi < lo)
                return lo;
            return lo + (hi - lo) * frac;
        }
        cum = next;
    }
    return max_;
}

void
Histogram::zero()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
    for (auto &b : buckets_)
        b = 0;
}

void
Histogram::mergeFrom(const Histogram &o)
{
    if (o.count_ == 0)
        return;
    if (count_ == 0 || o.min_ < min_)
        min_ = o.min_;
    if (count_ == 0 || o.max_ > max_)
        max_ = o.max_;
    count_ += o.count_;
    sum_ += o.sum_;
    for (int i = 0; i < numBuckets; ++i)
        buckets_[i] += o.buckets_[i];
}

Registry &
Registry::global()
{
    static Registry instance;
    initFromEnv();
    return instance;
}

Registry &
Registry::get()
{
    if (t_shard)
        return *t_shard;
    return global();
}

std::unique_ptr<Registry>
Registry::makeShard()
{
    return std::unique_ptr<Registry>(new Registry());
}

ShardScope::ShardScope(Registry *shard) : prev_(t_shard)
{
    t_shard = shard;
}

ShardScope::~ShardScope()
{
    t_shard = prev_;
}

std::string
Registry::seriesKey(const std::string &name, const Labels &labels)
{
    if (labels.empty())
        return name;
    std::string key = name;
    key += '{';
    bool first = true;
    for (const auto &kv : labels) {
        if (!first)
            key += ',';
        first = false;
        key += kv.first;
        key += '=';
        key += kv.second;
    }
    key += '}';
    return key;
}

template <typename T>
T &
Registry::series(std::map<std::string, std::unique_ptr<T>> &store,
                 const std::string &name, const Labels &labels)
{
    std::string key = seriesKey(name, labels);
    auto it = store.find(key);
    if (it == store.end())
        it = store.emplace(std::move(key), std::make_unique<T>())
                 .first;
    return *it->second;
}

Counter &
Registry::counter(const std::string &name, const Labels &labels)
{
    return series(counters_, name, labels);
}

Gauge &
Registry::gauge(const std::string &name, const Labels &labels)
{
    return series(gauges_, name, labels);
}

Histogram &
Registry::histogram(const std::string &name, const Labels &labels)
{
    return series(histograms_, name, labels);
}

OpCounters &
Registry::opCounters(const char *op)
{
    auto it = opCache_.find(op);
    if (it != opCache_.end())
        return *it->second;
    Labels labels{{"op", op}};
    auto bundle = std::make_unique<OpCounters>(OpCounters{
        counter("sim.op.issues", labels),
        counter("sim.op.cycles", labels),
        counter("sim.op.bytes", labels)});
    auto *ptr = bundle.get();
    opCache_.emplace(op, std::move(bundle));
    return *ptr;
}

namespace {

template <typename T>
void
mergeStore(std::map<std::string, std::unique_ptr<T>> &into,
           const std::map<std::string, std::unique_ptr<T>> &from)
{
    for (const auto &kv : from) {
        auto it = into.find(kv.first);
        if (it == into.end())
            it = into.emplace(kv.first, std::make_unique<T>()).first;
        it->second->mergeFrom(*kv.second);
    }
}

} // namespace

void
Registry::mergeFrom(const Registry &other)
{
    mergeStore(counters_, other.counters_);
    mergeStore(gauges_, other.gauges_);
    mergeStore(histograms_, other.histograms_);
}

void
Registry::zeroAll()
{
    for (auto &kv : counters_)
        kv.second->zero();
    for (auto &kv : gauges_)
        kv.second->zero();
    for (auto &kv : histograms_)
        kv.second->zero();
}

json::Value
Registry::toJson() const
{
    json::Object root;
    json::Object counters;
    for (const auto &kv : counters_)
        counters[kv.first] = kv.second->value();
    root["counters"] = json::Value{std::move(counters)};

    json::Object gauges;
    for (const auto &kv : gauges_)
        gauges[kv.first] = kv.second->value();
    root["gauges"] = json::Value{std::move(gauges)};

    json::Object histograms;
    for (const auto &kv : histograms_) {
        const Histogram &h = *kv.second;
        json::Object summary;
        summary["count"] = static_cast<double>(h.count());
        summary["sum"] = h.sum();
        summary["min"] = h.min();
        summary["max"] = h.max();
        summary["mean"] = h.mean();
        summary["p50"] = h.quantile(0.50);
        summary["p95"] = h.quantile(0.95);
        summary["p99"] = h.quantile(0.99);
        histograms[kv.first] = json::Value{std::move(summary)};
    }
    root["histograms"] = json::Value{std::move(histograms)};
    return json::Value{std::move(root)};
}

} // namespace cisram::metrics
