#include "common/bitutils.hh"

namespace cisram {

BitVector
BitVector::shiftedUp(size_t k) const
{
    BitVector out(numBits);
    if (k >= numBits)
        return out;
    size_t word_shift = k / 64;
    size_t bit_shift = k % 64;
    for (size_t i = words.size(); i-- > 0;) {
        uint64_t v = 0;
        if (i >= word_shift) {
            v = words[i - word_shift] << bit_shift;
            if (bit_shift != 0 && i > word_shift)
                v |= words[i - word_shift - 1] >> (64 - bit_shift);
        }
        out.words[i] = v;
    }
    out.trimTail();
    return out;
}

BitVector
BitVector::shiftedDown(size_t k) const
{
    BitVector out(numBits);
    if (k >= numBits)
        return out;
    size_t word_shift = k / 64;
    size_t bit_shift = k % 64;
    for (size_t i = 0; i < words.size(); ++i) {
        uint64_t v = 0;
        if (i + word_shift < words.size()) {
            v = words[i + word_shift] >> bit_shift;
            if (bit_shift != 0 && i + word_shift + 1 < words.size())
                v |= words[i + word_shift + 1] << (64 - bit_shift);
        }
        out.words[i] = v;
    }
    out.trimTail();
    return out;
}

} // namespace cisram
