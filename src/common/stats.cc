#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace cisram {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        cisram_assert(x > 0.0, "geomean requires positive inputs");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
maxOf(const std::vector<double> &xs)
{
    cisram_assert(!xs.empty());
    return *std::max_element(xs.begin(), xs.end());
}

double
minOf(const std::vector<double> &xs)
{
    cisram_assert(!xs.empty());
    return *std::min_element(xs.begin(), xs.end());
}

std::vector<double>
leastSquares(const std::vector<std::vector<double>> &x,
             const std::vector<double> &y)
{
    cisram_assert(!x.empty() && x.size() == y.size(),
                  "design matrix / observation size mismatch");
    size_t n = x.size();
    size_t k = x[0].size();
    cisram_assert(n >= k, "under-determined least squares system");

    // Build the normal equations A = X^T X, b = X^T y.
    std::vector<std::vector<double>> a(k, std::vector<double>(k, 0.0));
    std::vector<double> b(k, 0.0);
    for (size_t r = 0; r < n; ++r) {
        cisram_assert(x[r].size() == k, "ragged design matrix");
        for (size_t i = 0; i < k; ++i) {
            b[i] += x[r][i] * y[r];
            for (size_t j = 0; j < k; ++j)
                a[i][j] += x[r][i] * x[r][j];
        }
    }

    // Gaussian elimination with partial pivoting.
    for (size_t col = 0; col < k; ++col) {
        size_t pivot = col;
        for (size_t r = col + 1; r < k; ++r)
            if (std::fabs(a[r][col]) > std::fabs(a[pivot][col]))
                pivot = r;
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        cisram_assert(std::fabs(a[col][col]) > 1e-12,
                      "singular normal equations");
        for (size_t r = col + 1; r < k; ++r) {
            double factor = a[r][col] / a[col][col];
            for (size_t c = col; c < k; ++c)
                a[r][c] -= factor * a[col][c];
            b[r] -= factor * b[col];
        }
    }
    std::vector<double> beta(k, 0.0);
    for (size_t row = k; row-- > 0;) {
        double acc = b[row];
        for (size_t c = row + 1; c < k; ++c)
            acc -= a[row][c] * beta[c];
        beta[row] = acc / a[row][row];
    }
    return beta;
}

double
rSquared(const std::vector<double> &predicted,
         const std::vector<double> &observed)
{
    cisram_assert(predicted.size() == observed.size() &&
                  !observed.empty());
    double mu = mean(observed);
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (size_t i = 0; i < observed.size(); ++i) {
        double r = observed[i] - predicted[i];
        double t = observed[i] - mu;
        ss_res += r * r;
        ss_tot += t * t;
    }
    if (ss_tot == 0.0)
        return ss_res == 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

} // namespace cisram
