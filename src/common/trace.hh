/**
 * @file
 * Structured event tracing with Chrome trace-event JSON export.
 *
 * Every cycle charged in the simulator can be recorded as a timed
 * span: op name, device (pid) and core (tid), the active CycleStats
 * tag, cycles charged (duration), bytes moved, and the DMA engine
 * count. The resulting file loads directly in Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing, giving the per-stage
 * timeline behind the paper's Fig. 12 / Table 8 breakdowns.
 *
 * Timestamps are *device cycles* of the owning core, reported in the
 * trace's microsecond field (i.e. 1 us in the viewer = 1 simulated
 * cycle). Repeat scopes compress time exactly as they compress the
 * cycle ledger, so span totals per category always match CycleStats
 * tag totals.
 *
 * Threading model: the op annotation (OpScope) is thread-local, so
 * concurrent cores never see each other's annotations. Recording
 * threads either append to the shared buffer (mutex-guarded; the
 * cold single-threaded path) or, inside the multi-core pool, to a
 * per-core buffer installed with EventSinkScope and merged in core
 * order afterwards (see apusim/multicore.hh). Exports additionally
 * sort events by (pid, tid, timestamp), so the rendered trace is
 * bit-identical run-to-run regardless of CISRAM_SIM_THREADS or how
 * the host scheduler interleaved the workers.
 *
 * Cost: off by default; the per-charge hook is a single relaxed
 * atomic-bool test (see cycle_stats.hh). Enable by setting
 * CISRAM_TRACE=out.json in the environment (activated when the first
 * ApuDevice/DramSystem is constructed) or programmatically via
 * Tracer::enable(). The file is written when the process exits or on
 * an explicit write().
 */

#ifndef CISRAM_COMMON_TRACE_HH
#define CISRAM_COMMON_TRACE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cisram::trace {

namespace detail {
extern std::atomic<bool> g_active;
} // namespace detail

/** True when events are being recorded (hot-path gate). */
inline bool
active()
{
    return detail::g_active.load(std::memory_order_relaxed);
}

/**
 * One recorded event. Phases follow the Chrome trace-event format:
 * 'X' complete span, 'i' instant, 'b'/'e' async span begin/end (the
 * flight recorder's query-lifecycle spans; paired by `id` within a
 * category), 'n' async instant, and 's'/'f' flow start/finish (the
 * causal arrows linking a replayed query back to its original
 * admission).
 */
struct Event
{
    char phase;       ///< 'X', 'i', 'b', 'e', 'n', 's', or 'f'
    uint32_t pid;     ///< device serial (0 = default/global)
    uint32_t tid;     ///< core id within the device
    double ts;        ///< start, in core cycles
    double dur;       ///< span length, in cycles ('X' only)
    std::string name; ///< op name (or tag for untagged charges)
    std::string cat;  ///< active CycleStats tag, or "untagged"
    double bytes;     ///< bytes moved, or < 0 if not applicable
    double repeat;    ///< repeat-scope factor when charged
    int engines;      ///< DMA engines involved, or 0
    uint64_t id = 0;  ///< async/flow correlation id ('b'/'e'/'n'/'s'/'f')
};

class Tracer
{
  public:
    /**
     * The process-wide tracer. First call reads CISRAM_TRACE; if set
     * and non-empty, recording starts with that output path.
     */
    static Tracer &get();

    /** Idempotent touch so env-var configuration takes effect. */
    static void init() { get(); }

    /** Start recording to `path` (replaces any previous sink). */
    void enable(const std::string &path);

    /** Stop recording and drop buffered events without writing. */
    void disable();

    bool isEnabled() const { return active(); }
    std::string path() const;

    /** Register a traced process (one per ApuDevice); returns pid. */
    uint32_t registerProcess(const std::string &label);

    /** Record a complete span. */
    void complete(uint32_t pid, uint32_t tid, const char *name,
                  const char *cat, double ts, double dur,
                  double bytes = -1.0, double repeat = 1.0,
                  int engines = 0);

    /** Record an instant event. */
    void instant(uint32_t pid, uint32_t tid, const char *name,
                 double ts);

    /**
     * Record an async-span or flow event (phase 'b', 'e', 'n', 's',
     * or 'f'). Async spans with the same (cat, id) pair nest into
     * one named track in Perfetto; flow events with the same id draw
     * a causal arrow between the enclosing slices. The flight
     * recorder (src/obs) uses both: one async span per query
     * lifetime, flow arrows from a reset to each replayed query.
     */
    void async(char phase, uint32_t pid, uint32_t tid,
               const char *name, const char *cat, double ts,
               uint64_t id);

    /**
     * Append a batch of externally buffered events (a per-core shard
     * recorded under EventSinkScope). Shards must be merged in core
     * order for run-to-run determinism; runOnAllCores does this.
     */
    void mergeEvents(std::vector<Event> &&events);

    size_t eventCount() const;

    /** Snapshot of the buffered events, in merged order. */
    std::vector<Event> events() const;

    /**
     * Serialize buffered events as a Chrome trace JSON document
     * (object form, "traceEvents" array plus metadata). Events are
     * emitted sorted by (pid, tid, ts) — deterministic for any
     * thread count.
     */
    std::string renderJson() const;

    /** Write renderJson() to `path_` and clear the buffer. */
    void write();

    ~Tracer();

  private:
    Tracer();

    void noteTid(uint32_t tid);

    mutable std::mutex mu_;
    std::string path_;
    std::vector<Event> events_;
    std::vector<std::string> processes_;
    uint32_t maxTid_ = 0;
};

/**
 * RAII redirect: while alive, events recorded *by this thread* are
 * appended to `sink` instead of the tracer's shared buffer. The
 * multi-core pool installs one per core task and merges the buffers
 * in core order after the join, which keeps the merged stream
 * independent of the host thread interleaving.
 */
class EventSinkScope
{
  public:
    explicit EventSinkScope(std::vector<Event> *sink);
    ~EventSinkScope();

    EventSinkScope(const EventSinkScope &) = delete;
    EventSinkScope &operator=(const EventSinkScope &) = delete;

  private:
    std::vector<Event> *prev_;
};

/**
 * RAII op annotation: while alive, cycles charged to any CycleStats
 * carry this op name (and byte/engine attribution). Nested scopes
 * override and restore, so composite ops attribute their inner
 * charges to the innermost op. The annotation is thread-local:
 * worker threads running different cores never observe each other's
 * scopes. Cheap enough to leave unconditional: constructor and
 * destructor are a few thread-local stores.
 */
class OpScope
{
  public:
    explicit OpScope(const char *op, double bytes = -1.0,
                     int engines = 0);
    ~OpScope();

    OpScope(const OpScope &) = delete;
    OpScope &operator=(const OpScope &) = delete;

  private:
    const char *prevOp_;
    double prevBytes_;
    int prevEngines_;
};

/** Current op annotation (nullptr if none); see OpScope. */
const char *currentOp();
double currentBytes();
int currentEngines();

} // namespace cisram::trace

#endif // CISRAM_COMMON_TRACE_HH
