/**
 * @file
 * Structured event tracing with Chrome trace-event JSON export.
 *
 * Every cycle charged in the simulator can be recorded as a timed
 * span: op name, device (pid) and core (tid), the active CycleStats
 * tag, cycles charged (duration), bytes moved, and the DMA engine
 * count. The resulting file loads directly in Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing, giving the per-stage
 * timeline behind the paper's Fig. 12 / Table 8 breakdowns.
 *
 * Timestamps are *device cycles* of the owning core, reported in the
 * trace's microsecond field (i.e. 1 us in the viewer = 1 simulated
 * cycle). Repeat scopes compress time exactly as they compress the
 * cycle ledger, so span totals per category always match CycleStats
 * tag totals.
 *
 * Cost: off by default; the per-charge hook is a single global bool
 * test (see cycle_stats.hh). Enable by setting CISRAM_TRACE=out.json
 * in the environment (activated when the first ApuDevice/DramSystem
 * is constructed) or programmatically via Tracer::enable(). The file
 * is written when the process exits or on an explicit write().
 */

#ifndef CISRAM_COMMON_TRACE_HH
#define CISRAM_COMMON_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cisram::trace {

namespace detail {
extern bool g_active;
} // namespace detail

/** True when events are being recorded (hot-path gate). */
inline bool
active()
{
    return detail::g_active;
}

/** One recorded event (complete span or instant). */
struct Event
{
    char phase;       ///< 'X' complete span, 'i' instant
    uint32_t pid;     ///< device serial (0 = default/global)
    uint32_t tid;     ///< core id within the device
    double ts;        ///< start, in core cycles
    double dur;       ///< span length, in cycles ('X' only)
    std::string name; ///< op name (or tag for untagged charges)
    std::string cat;  ///< active CycleStats tag, or "untagged"
    double bytes;     ///< bytes moved, or < 0 if not applicable
    double repeat;    ///< repeat-scope factor when charged
    int engines;      ///< DMA engines involved, or 0
};

class Tracer
{
  public:
    /**
     * The process-wide tracer. First call reads CISRAM_TRACE; if set
     * and non-empty, recording starts with that output path.
     */
    static Tracer &get();

    /** Idempotent touch so env-var configuration takes effect. */
    static void init() { get(); }

    /** Start recording to `path` (replaces any previous sink). */
    void enable(const std::string &path);

    /** Stop recording and drop buffered events without writing. */
    void disable();

    bool isEnabled() const { return detail::g_active; }
    const std::string &path() const { return path_; }

    /** Register a traced process (one per ApuDevice); returns pid. */
    uint32_t registerProcess(const std::string &label);

    /** Record a complete span. */
    void complete(uint32_t pid, uint32_t tid, const char *name,
                  const char *cat, double ts, double dur,
                  double bytes = -1.0, double repeat = 1.0,
                  int engines = 0);

    /** Record an instant event. */
    void instant(uint32_t pid, uint32_t tid, const char *name,
                 double ts);

    size_t eventCount() const { return events_.size(); }
    const std::vector<Event> &events() const { return events_; }

    /**
     * Serialize buffered events as a Chrome trace JSON document
     * (object form, "traceEvents" array plus metadata).
     */
    std::string renderJson() const;

    /** Write renderJson() to `path_` and clear the buffer. */
    void write();

    ~Tracer();

  private:
    Tracer();

    std::string path_;
    std::vector<Event> events_;
    std::vector<std::string> processes_;
    uint32_t maxTid_ = 0;
};

/**
 * RAII op annotation: while alive, cycles charged to any CycleStats
 * carry this op name (and byte/engine attribution). Nested scopes
 * override and restore, so composite ops attribute their inner
 * charges to the innermost op. Cheap enough to leave unconditional:
 * constructor and destructor are a few stores.
 */
class OpScope
{
  public:
    explicit OpScope(const char *op, double bytes = -1.0,
                     int engines = 0);
    ~OpScope();

    OpScope(const OpScope &) = delete;
    OpScope &operator=(const OpScope &) = delete;

  private:
    const char *prevOp_;
    double prevBytes_;
    int prevEngines_;
};

/** Current op annotation (nullptr if none); see OpScope. */
const char *currentOp();
double currentBytes();
int currentEngines();

} // namespace cisram::trace

#endif // CISRAM_COMMON_TRACE_HH
