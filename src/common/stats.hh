/**
 * @file
 * Small statistics helpers used by benches and the evaluation harness
 * (mean, geometric mean, linear least squares for model calibration).
 */

#ifndef CISRAM_COMMON_STATS_HH
#define CISRAM_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace cisram {

/** Arithmetic mean; returns 0 for an empty input. */
double mean(const std::vector<double> &xs);

/** Geometric mean; all inputs must be positive. */
double geomean(const std::vector<double> &xs);

/** Maximum value; asserts on empty input. */
double maxOf(const std::vector<double> &xs);

/** Minimum value; asserts on empty input. */
double minOf(const std::vector<double> &xs);

/**
 * Ordinary least squares fit of y ~= X * beta.
 *
 * Solves the normal equations with Gaussian elimination and partial
 * pivoting; adequate for the small, well-conditioned systems used to
 * calibrate analytical-model coefficients (at most a handful of
 * unknowns).
 *
 * @param x Row-major design matrix, rows.size() == y.size().
 * @param y Observations.
 * @return Coefficient vector beta.
 */
std::vector<double> leastSquares(const std::vector<std::vector<double>> &x,
                                 const std::vector<double> &y);

/** Coefficient of determination (R^2) of predictions vs observations. */
double rSquared(const std::vector<double> &predicted,
                const std::vector<double> &observed);

} // namespace cisram

#endif // CISRAM_COMMON_STATS_HH
