#include "common/float16.hh"

#include <bit>
#include <cmath>

namespace cisram {

Float16
Float16::fromFloat(float v)
{
    uint32_t f = std::bit_cast<uint32_t>(v);
    uint32_t sign = (f >> 16) & 0x8000u;
    int32_t exp = static_cast<int32_t>((f >> 23) & 0xff) - 127;
    uint32_t frac = f & 0x7fffffu;

    uint16_t out;
    if (exp == 128) {
        // Inf or NaN. Preserve NaN-ness with a quiet mantissa bit.
        out = static_cast<uint16_t>(
            sign | 0x7c00 | (frac ? (0x0200 | (frac >> 13)) : 0));
    } else if (exp > 15) {
        // Overflow to infinity.
        out = static_cast<uint16_t>(sign | 0x7c00);
    } else if (exp >= -14) {
        // Normal range. Round the mantissa to 10 bits, nearest-even;
        // a mantissa carry-out correctly bumps the exponent field.
        uint32_t mant = frac >> 13;
        uint32_t rem = frac & 0x1fff;
        if (rem > 0x1000 || (rem == 0x1000 && (mant & 1)))
            ++mant;
        uint32_t biased = static_cast<uint32_t>(exp + 15);
        out = static_cast<uint16_t>(sign | ((biased << 10) + mant));
    } else if (exp >= -25) {
        // Subnormal half: encoding k such that |v| ~= k * 2^-24,
        // i.e. k = (2^23 + frac) * 2^(exp+1), rounded nearest-even.
        // A round-up from k = 0x3ff yields the smallest normal, whose
        // encoding is still (sign | 0x400), so no special case needed.
        uint32_t full = 0x800000u | frac;
        uint32_t shift = static_cast<uint32_t>(-1 - exp);
        uint32_t keep = full >> shift;
        uint32_t rem = full & ((1u << shift) - 1);
        uint32_t half = 1u << (shift - 1);
        if (rem > half || (rem == half && (keep & 1)))
            ++keep;
        out = static_cast<uint16_t>(sign | keep);
    } else {
        // Underflow to signed zero.
        out = static_cast<uint16_t>(sign);
    }
    return fromBits(out);
}

float
Float16::toFloat() const
{
    uint32_t sign = static_cast<uint32_t>(bits_ & 0x8000) << 16;
    uint32_t exp = (bits_ >> 10) & 0x1f;
    uint32_t frac = bits_ & 0x3ff;

    uint32_t out;
    if (exp == 0x1f) {
        out = sign | 0x7f800000u | (frac << 13);
    } else if (exp == 0) {
        if (frac == 0) {
            out = sign;
        } else {
            // Normalize a subnormal.
            int shift = 0;
            while (!(frac & 0x400)) {
                frac <<= 1;
                ++shift;
            }
            frac &= 0x3ff;
            uint32_t e = static_cast<uint32_t>(127 - 14 - shift);
            out = sign | (e << 23) | (frac << 13);
        }
    } else {
        out = sign | ((exp - 15 + 127) << 23) | (frac << 13);
    }
    return std::bit_cast<float>(out);
}

bool
Float16::isNan() const
{
    return ((bits_ >> 10) & 0x1f) == 0x1f && (bits_ & 0x3ff) != 0;
}

bool
Float16::isInf() const
{
    return ((bits_ >> 10) & 0x1f) == 0x1f && (bits_ & 0x3ff) == 0;
}

bool
Float16::isZero() const
{
    return (bits_ & 0x7fff) == 0;
}

} // namespace cisram
