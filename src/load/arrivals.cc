#include "load/arrivals.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace cisram::load {

const char *
arrivalShapeName(ArrivalShape s)
{
    switch (s) {
    case ArrivalShape::Poisson:
        return "poisson";
    case ArrivalShape::Burst:
        return "burst";
    case ArrivalShape::Diurnal:
        return "diurnal";
    }
    return "poisson";
}

double
arrivalRateAt(const TrafficConfig &cfg, double t)
{
    double lam = cfg.ratePerSecond;
    switch (cfg.shape) {
    case ArrivalShape::Poisson:
        return lam;
    case ArrivalShape::Burst: {
        double period = cfg.burstPeriodSeconds;
        double phase = std::fmod(t, period);
        if (phase < cfg.burstDuty * period)
            return lam * cfg.burstFactor;
        // Off-burst rate chosen so the mean over a period stays λ;
        // clamps to zero (burst-then-silence) once the bursts alone
        // carry the whole mean.
        double off = lam *
            (1.0 - cfg.burstDuty * cfg.burstFactor) /
            (1.0 - cfg.burstDuty);
        return std::max(0.0, off);
    }
    case ArrivalShape::Diurnal: {
        // Triangle over the run: (1−amp)·λ at the edges, (1+amp)·λ
        // at mid-run, mean exactly λ.
        double x = t / cfg.durationSeconds;
        double tri = 1.0 - std::fabs(2.0 * x - 1.0); // 0..1..0
        return lam *
            (1.0 - cfg.diurnalAmplitude +
             2.0 * cfg.diurnalAmplitude * tri);
    }
    }
    return lam;
}

namespace {

double
peakRateOf(const TrafficConfig &cfg)
{
    switch (cfg.shape) {
    case ArrivalShape::Poisson:
        return cfg.ratePerSecond;
    case ArrivalShape::Burst:
        return cfg.ratePerSecond * cfg.burstFactor;
    case ArrivalShape::Diurnal:
        return cfg.ratePerSecond * (1.0 + cfg.diurnalAmplitude);
    }
    return cfg.ratePerSecond;
}

} // namespace

ArrivalTrace
genArrivalTrace(const TrafficConfig &cfg)
{
    cisram_assert(cfg.ratePerSecond > 0,
                  "load: arrival rate must be positive");
    cisram_assert(cfg.durationSeconds > 0,
                  "load: trace duration must be positive");
    if (cfg.shape == ArrivalShape::Burst) {
        cisram_assert(cfg.burstFactor >= 1 && cfg.burstDuty > 0 &&
                          cfg.burstDuty < 1 &&
                          cfg.burstPeriodSeconds > 0,
                      "load: malformed burst shape");
    }
    if (cfg.shape == ArrivalShape::Diurnal)
        cisram_assert(cfg.diurnalAmplitude > 0 &&
                          cfg.diurnalAmplitude < 1,
                      "load: diurnal amplitude must be in (0, 1)");

    ArrivalTrace trace;
    trace.cfg = cfg;
    if (trace.cfg.tenants.empty())
        trace.cfg.tenants.push_back(TenantSpec{"-", 1.0, 0, 1});
    double total_weight = 0;
    for (const TenantSpec &t : trace.cfg.tenants) {
        cisram_assert(!t.name.empty(), "load: unnamed tenant");
        cisram_assert(t.weight > 0, "load: tenant '", t.name,
                      "' needs positive weight");
        cisram_assert(t.users > 0, "load: tenant '", t.name,
                      "' needs at least one user");
        total_weight += t.weight;
    }

    trace.peakRate = peakRateOf(trace.cfg);
    // Slot width 1/(8·peak): acceptance probability ≤ 1/8 per slot,
    // where the Bernoulli grid's deviation from a true Poisson
    // process is negligible next to the service-time noise it
    // drives.
    double dt = 1.0 / (8.0 * trace.peakRate);
    uint64_t slots = static_cast<uint64_t>(
        cfg.durationSeconds / dt);

    Rng rng(cfg.seed ^ 0x6f70656e6c6f6f70ull); // "openloop"
    uint64_t id = 0;
    for (uint64_t i = 0; i < slots; ++i) {
        double t = (static_cast<double>(i) + 0.5) * dt;
        double p = arrivalRateAt(trace.cfg, t) * dt;
        if (rng.nextDouble() >= p)
            continue;

        Arrival a;
        a.seconds = t;
        a.id = ++id;
        // Fleet journal ids pack the query id into the low 32 bits.
        cisram_assert(a.id < (1ull << 32),
                      "load: trace exceeds 2^32 arrivals");
        double w = rng.nextDouble() * total_weight;
        unsigned tenant = 0;
        for (; tenant + 1 < trace.cfg.tenants.size(); ++tenant) {
            w -= trace.cfg.tenants[tenant].weight;
            if (w < 0)
                break;
        }
        a.tenant = tenant;
        a.sloClass = trace.cfg.tenants[tenant].sloClass;
        a.user = rng.nextBelow(trace.cfg.tenants[tenant].users);
        a.querySeed = rng.next();
        trace.arrivals.push_back(std::move(a));
    }
    return trace;
}

} // namespace cisram::load
