/**
 * @file
 * Deterministic open-loop arrival traces.
 *
 * A closed-loop harness (admit, drain, repeat) measures service
 * time; it can never see queueing collapse because offered load
 * falls whenever the system slows down. The paper's saturation
 * story needs *open-loop* traffic: arrivals timestamped by an
 * external clock that does not care whether the fleet is keeping
 * up. This module generates those timestamps.
 *
 * Everything is seeded and simulated-clock-only. Arrivals come off
 * a Bernoulli grid: time is cut into slots of width 1 / (8 ·
 * peakRate) and each slot independently admits at most one arrival
 * with probability rate(t) · dt — a discretized Poisson process
 * that needs no logarithms or trigonometry from libm, so the trace
 * (and every timing metric derived from it, which the bench gates
 * against checked-in baselines) is bit-identical on every machine.
 *
 * Shapes:
 *  - Poisson: constant rate.
 *  - Burst: rate · burstFactor for the first burstDuty fraction of
 *    every burstPeriodSeconds, rescaled off-burst so the mean rate
 *    stays `ratePerSecond` (with burstFactor · burstDuty ≥ 1 the
 *    off-burst rate clamps to zero: burst-then-silence).
 *  - Diurnal: triangular wave over the run — rate ramps linearly
 *    from (1 − amp) · λ up to (1 + amp) · λ at mid-run and back,
 *    mean λ. (A triangle, not a sine: piecewise-linear arithmetic
 *    is exactly reproducible; libm's sin need not be.)
 *
 * Each arrival is also assigned a tenant (weighted draw), a
 * simulated user within that tenant, the tenant's SLO class, and a
 * fresh query seed — enough to regenerate the exact query vector
 * later for golden comparison without storing it.
 */

#ifndef CISRAM_LOAD_ARRIVALS_HH
#define CISRAM_LOAD_ARRIVALS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cisram::load {

enum class ArrivalShape
{
    Poisson,
    Burst,
    Diurnal,
};

const char *arrivalShapeName(ArrivalShape s);

/** One tenant population sharing an SLO class. */
struct TenantSpec
{
    std::string name;
    double weight = 1.0;   ///< share of arrivals (relative)
    unsigned sloClass = 0; ///< 0 = highest; larger sheds first
    uint64_t users = 1;    ///< simulated users behind this tenant
};

struct TrafficConfig
{
    ArrivalShape shape = ArrivalShape::Poisson;
    double ratePerSecond = 100.0; ///< mean arrival rate λ
    double durationSeconds = 1.0;
    uint64_t seed = 1;

    /** Empty ⇒ one anonymous tenant "-", class 0, one user. */
    std::vector<TenantSpec> tenants;

    /** Burst shape knobs (see file comment). */
    double burstFactor = 4.0;
    double burstDuty = 0.25;
    double burstPeriodSeconds = 0.25;

    /** Diurnal amplitude in (0, 1): swing around the mean. */
    double diurnalAmplitude = 0.5;
};

/** One open-loop arrival. Ids are 1-based and dense. */
struct Arrival
{
    double seconds = 0;
    uint64_t id = 0;
    unsigned tenant = 0;   ///< index into trace cfg.tenants
    unsigned sloClass = 0;
    uint64_t user = 0;     ///< user index within the tenant
    uint64_t querySeed = 0;
};

struct ArrivalTrace
{
    TrafficConfig cfg; ///< with tenants defaulted if none given
    std::vector<Arrival> arrivals; ///< ascending in seconds
    double peakRate = 0; ///< max of rate(t) over the run

    const std::string &tenantName(const Arrival &a) const
    {
        return cfg.tenants[a.tenant].name;
    }
};

/** Instantaneous target rate at time `t` (exposed for tests). */
double arrivalRateAt(const TrafficConfig &cfg, double t);

/**
 * Generate the full trace. Deterministic in `cfg` alone: same
 * config ⇒ bit-identical timestamps, tenants, users, and query
 * seeds, on any machine and thread count.
 */
ArrivalTrace genArrivalTrace(const TrafficConfig &cfg);

} // namespace cisram::load

#endif // CISRAM_LOAD_ARRIVALS_HH
