/**
 * @file
 * Deterministic live-corpus mutation plans.
 *
 * A MutationPlan scripts the corpus's life over an open-loop run: a
 * fixed schedule of insert/delete batches, each advancing the
 * corpus one epoch. The plan owns every epoch's overlay
 * (baseline::CorpusEpochView) — whole-corpus views for golden
 * comparison and per-shard views for the fleet — and keeps them
 * alive for as long as any spec points at them.
 *
 * Identity rules (the whole snapshot-consistency story rests on
 * them):
 *  - Inserts are fresh global chunk ids appended past everything
 *    ever allocated. The corpus is pure-hash, so an id *is* the
 *    data; nothing is stored.
 *  - Deletes are tombstones. A deleted chunk's position survives in
 *    every later epoch (masked by the admit plane at retrieval), so
 *    chunk positions are stable across epochs and a journal replay
 *    under any epoch is bit-identical.
 *  - A batch deletes only chunks live *before* its own inserts, and
 *    draws them by seeded swap-erase from the live set — the plan
 *    is a pure function of (base spec, shard count, config).
 *
 * Sharding: an inserted id g lives on shard g mod S; a base id on
 * the contiguous range shard that owns it (fleet::shardChunkRange).
 * Per-shard views carry only their own inserts/deletes, so the
 * union over shards of any epoch's per-shard view partitions the
 * whole-corpus view exactly (pinned in test_load).
 */

#ifndef CISRAM_LOAD_MUTATION_HH
#define CISRAM_LOAD_MUTATION_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "baseline/workloads.hh"
#include "fleet/fleet.hh"

namespace cisram::load {

struct MutationConfig
{
    unsigned batches = 3;
    double startSeconds = 0.25;    ///< first batch's apply time
    double intervalSeconds = 0.25; ///< spacing between batches
    uint64_t insertsPerBatch = 96;
    uint64_t deletesPerBatch = 48;
    uint64_t seed = 1;
};

/** One scheduled mutation batch (epoch `epoch` begins here). */
struct MutationBatch
{
    uint64_t epoch = 0; ///< 1-based; epoch 0 is the base corpus
    double atSeconds = 0;
    std::vector<uint64_t> inserts; ///< fresh global ids, ascending
    std::vector<uint64_t> deletes; ///< global ids tombstoned here
};

class MutationPlan
{
  public:
    /**
     * Script `cfg.batches` batches against `base` for a fleet of
     * `shards` shards. `base.epochView` must be null (the plan
     * defines the overlays) and `base.firstChunk` 0 (whole corpus).
     */
    MutationPlan(const baseline::RagCorpusSpec &base,
                 unsigned shards, MutationConfig cfg);

    const MutationConfig &config() const { return cfg_; }
    const std::vector<MutationBatch> &batches() const
    {
        return batches_;
    }

    /** Highest epoch the plan reaches (== batches().size()). */
    uint64_t epochs() const { return batches_.size(); }

    /**
     * Whole-corpus spec at `epoch` (0 = the unmodified base). For
     * epoch ≥ 1 its epochView points at a view this plan owns —
     * valid for the plan's lifetime. This is the spec per-epoch
     * goldens (faisslite::searchEpochFlat) run against.
     */
    const baseline::RagCorpusSpec &specAt(uint64_t epoch) const;

    /**
     * The fleet hand-off for advancing to `epoch` (≥ 1): one update
     * per shard — every shard advances every epoch (servers insist
     * on epoch steps of one); an untouched shard carries zero delta
     * bytes. Feed straight to fleet::Router::applyMutation.
     */
    std::vector<fleet::Router::ShardEpochUpdate>
    shardUpdates(uint64_t epoch) const;

    /** Live (non-tombstoned) chunks at `epoch`. */
    uint64_t liveChunksAt(uint64_t epoch) const;

  private:
    MutationConfig cfg_;
    unsigned shards_;
    std::vector<MutationBatch> batches_;

    /** Index e: epoch e's state; index 0 is the base (null view). */
    std::vector<std::shared_ptr<const baseline::CorpusEpochView>>
        views_;
    std::vector<baseline::RagCorpusSpec> specs_;
    std::vector<uint64_t> liveCounts_;

    /** [epoch − 1][shard] views + re-stage bytes for the fleet. */
    std::vector<std::vector<
        std::shared_ptr<const baseline::CorpusEpochView>>>
        shardViews_;
    std::vector<std::vector<uint64_t>> shardDeltaBytes_;
};

} // namespace cisram::load

#endif // CISRAM_LOAD_MUTATION_HH
