#include "load/openloop.hh"

#include <limits>
#include <memory>
#include <unordered_set>

#include "common/logging.hh"

namespace cisram::load {

std::string
sloClassName(unsigned cls)
{
    return "class" + std::to_string(cls);
}

OpenLoopResult
runOpenLoop(fleet::Router &router, const ArrivalTrace &trace,
            const baseline::RagCorpusSpec &base,
            const OpenLoopOptions &opts)
{
    cisram_assert(router.corpusEpoch() == 0,
                  "load: open-loop runs start at epoch 0");

    OpenLoopResult res;
    obs::SloMonitor *monitor = nullptr;
    std::unique_ptr<obs::SloMonitor> monitor_owner;
    std::unordered_set<std::string> monitored;
    if (!opts.slo.classes.empty()) {
        monitor_owner =
            std::make_unique<obs::SloMonitor>(opts.slo);
        monitor = monitor_owner.get();
        for (const obs::SloClass &c : opts.slo.classes)
            monitored.insert(c.name);
    }

    auto record = [&](std::vector<fleet::FleetOutcome> outs) {
        for (fleet::FleetOutcome &o : outs) {
            if (o.ok) {
                ++res.delivered;
                res.latency.observe(o.latencySeconds);
                if (monitor) {
                    std::string cname =
                        sloClassName(o.cls.sloClass);
                    if (monitored.count(cname))
                        monitor->observe(cname,
                                         o.latencySeconds);
                }
            }
            res.outcomes.push_back(std::move(o));
        }
    };

    constexpr double kNever =
        std::numeric_limits<double>::infinity();
    const std::vector<MutationBatch> *batches =
        opts.plan ? &opts.plan->batches() : nullptr;
    size_t ai = 0, mi = 0;
    bool kill_pending = opts.killAtSeconds >= 0;

    while (ai < trace.arrivals.size() ||
           (batches && mi < batches->size()) || kill_pending) {
        double ta = ai < trace.arrivals.size()
                        ? trace.arrivals[ai].seconds
                        : kNever;
        double tm = batches && mi < batches->size()
                        ? (*batches)[mi].atSeconds
                        : kNever;
        double tk = kill_pending ? opts.killAtSeconds : kNever;

        if (tm <= ta && tm <= tk) {
            const MutationBatch &b = (*batches)[mi++];
            record(router.applyMutation(
                b.epoch, opts.plan->shardUpdates(b.epoch)));
            ++res.epochsApplied;
            // Epoch boundary: close a window for every class so
            // the SLO curve tiles the run 1:1 with epochs.
            if (monitor)
                monitor->flushAll();
            continue;
        }
        if (tk <= ta) {
            // Mid-stream kill; evacuation + replica replay keeps
            // the in-flight queries exactly-once.
            router.killDevice(opts.killDevice);
            kill_pending = false;
            continue;
        }

        const Arrival &a = trace.arrivals[ai++];
        ++res.offered;
        kernels::AdmitClass cls{trace.tenantName(a), a.sloClass};
        Status st = router.admit(
            a.id, baseline::genQuery(base.dim, a.querySeed),
            a.seconds, opts.search, cls);
        if (st.ok()) {
            ++res.admitted;
        } else {
            ++res.shedByTenant[trace.tenantName(a)];
            ++res.shedByClass[a.sloClass];
        }
        record(router.pumpUntil(a.seconds));
    }

    record(router.drain());
    if (monitor) {
        monitor->flush();
        res.sloWindows = monitor->windows();
        res.breachedWindows = monitor->breachedWindows();
        res.worstBurnRate = monitor->worstBurnRate();
    }
    return res;
}

uint64_t
countGoldenMismatches(const std::vector<fleet::FleetOutcome> &outs,
                      const ArrivalTrace &trace,
                      const baseline::RagCorpusSpec &base,
                      uint64_t corpus_seed,
                      const MutationPlan *plan, size_t topK,
                      kernels::RagSearchParams search)
{
    uint64_t mismatches = 0;
    for (const fleet::FleetOutcome &o : outs) {
        if (!o.ok)
            continue;
        cisram_assert(o.id >= 1 && o.id <= trace.arrivals.size(),
                      "load: outcome #", o.id,
                      " is not from this trace");
        const Arrival &a = trace.arrivals[o.id - 1];
        cisram_assert(a.id == o.id,
                      "load: trace ids are dense and 1-based");
        cisram_assert(o.epoch == 0 || plan,
                      "load: outcome pinned to epoch ", o.epoch,
                      " but no mutation plan was given");

        const baseline::RagCorpusSpec &spec =
            o.epoch == 0 ? base : plan->specAt(o.epoch);
        std::vector<int16_t> q =
            baseline::genQuery(base.dim, a.querySeed);
        std::vector<baseline::Hit> golden =
            baseline::searchEpochFlat(spec, corpus_seed, q.data(),
                                      topK, search.filterMask);
        bool bad = golden.size() != o.hits.size();
        for (size_t i = 0; !bad && i < golden.size(); ++i) {
            // Golden ids are spec-local; the fleet globalizes
            // through the same epoch view, so globalize here too.
            uint64_t gid = spec.globalChunk(golden[i].id);
            bad = gid != o.hits[i].id ||
                golden[i].score != o.hits[i].score;
        }
        if (bad)
            ++mismatches;
    }
    return mismatches;
}

} // namespace cisram::load
