/**
 * @file
 * Open-loop fleet driver: arrivals, mutation, chaos, SLO curves.
 *
 * runOpenLoop() replays an ArrivalTrace against a fleet::Router on
 * the simulated clock, interleaving three event streams in time
 * order:
 *
 *  - arrivals: admitted with their tenant's AdmitClass at their
 *    trace timestamp, whether or not the fleet is keeping up (the
 *    open-loop property); after each admission the router pumps
 *    with the observed arrival clock so lingering batches close
 *    out;
 *  - corpus mutation: each MutationPlan batch advances the fleet
 *    one epoch via Router::applyMutation (a fleet-wide drain
 *    barrier) and closes an SLO window for every class
 *    (SloMonitor::flushAll) so SLO curves tile 1:1 with epochs;
 *  - chaos: at most one killDevice() at a scripted time.
 *
 * Every delivered outcome carries the epoch it admitted under;
 * countGoldenMismatches() regenerates each query from its trace
 * seed and bit-compares ids *and* scores against that epoch's
 * whole-corpus golden (faisslite::searchEpochFlat) — the
 * snapshot-consistency proof the bench gates on.
 */

#ifndef CISRAM_LOAD_OPENLOOP_HH
#define CISRAM_LOAD_OPENLOOP_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.hh"
#include "fleet/fleet.hh"
#include "load/arrivals.hh"
#include "load/mutation.hh"
#include "obs/slo.hh"

namespace cisram::load {

/** Canonical SLO-class name: "class0", "class1", ... */
std::string sloClassName(unsigned cls);

struct OpenLoopOptions
{
    /** Mutation schedule; null runs against a static corpus. */
    const MutationPlan *plan = nullptr;

    /** Kill `killDevice` at this time; negative = no chaos. */
    double killAtSeconds = -1.0;
    unsigned killDevice = 0;

    /**
     * Per-class SLO monitoring. Classes must be named with
     * sloClassName(); traffic in a class the policy does not
     * configure is simply not monitored. Empty = no monitoring.
     */
    obs::SloPolicy slo;

    /** Per-query search params every arrival carries. */
    kernels::RagSearchParams search;
};

struct OpenLoopResult
{
    /** Every merged outcome, in completion order. */
    std::vector<fleet::FleetOutcome> outcomes;

    uint64_t offered = 0;   ///< arrivals presented to the router
    uint64_t admitted = 0;  ///< accepted past quota + admission
    uint64_t delivered = 0; ///< outcomes with ok == true
    uint64_t epochsApplied = 0;

    /** Router/admission sheds (quota, depth, deadline) by origin. */
    std::map<std::string, uint64_t> shedByTenant;
    std::map<unsigned, uint64_t> shedByClass;

    /** Latency of delivered queries (simulated seconds). */
    metrics::Histogram latency;

    /** Closed SLO windows, close order (empty if not monitored). */
    std::vector<obs::SloWindow> sloWindows;
    uint64_t breachedWindows = 0;
    double worstBurnRate = 0;
};

/**
 * Drive `router` with `trace`. `base` is the whole-corpus spec the
 * router was built from (queries are generated at its dim). The
 * router must be freshly at epoch 0.
 */
OpenLoopResult runOpenLoop(fleet::Router &router,
                           const ArrivalTrace &trace,
                           const baseline::RagCorpusSpec &base,
                           const OpenLoopOptions &opts = {});

/**
 * Bit-compare every delivered outcome against its admission
 * epoch's golden: ids and scores both, against searchEpochFlat on
 * the epoch's whole-corpus spec (epoch 0 = `base`). Returns the
 * number of mismatching queries; 0 is the snapshot-consistency
 * certificate.
 */
uint64_t
countGoldenMismatches(const std::vector<fleet::FleetOutcome> &outs,
                      const ArrivalTrace &trace,
                      const baseline::RagCorpusSpec &base,
                      uint64_t corpus_seed, const MutationPlan *plan,
                      size_t topK,
                      kernels::RagSearchParams search = {});

} // namespace cisram::load

#endif // CISRAM_LOAD_OPENLOOP_HH
