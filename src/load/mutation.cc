#include "load/mutation.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "fleet/placement.hh"

namespace cisram::load {

namespace {

unsigned
owningShard(uint64_t global, uint64_t base_chunks, unsigned shards)
{
    if (global >= base_chunks)
        return static_cast<unsigned>(global % shards);
    for (unsigned s = 0; s < shards; ++s) {
        fleet::ShardRange r =
            fleet::shardChunkRange(base_chunks, shards, s);
        if (global >= r.firstChunk &&
            global < r.firstChunk + r.numChunks)
            return s;
    }
    cisram_panic("load: base chunk ", global,
                 " owned by no shard");
}

} // namespace

MutationPlan::MutationPlan(const baseline::RagCorpusSpec &base,
                           unsigned shards, MutationConfig cfg)
    : cfg_(cfg), shards_(shards)
{
    cisram_assert(base.epochView == nullptr,
                  "load: mutation plans start from a static corpus");
    cisram_assert(base.firstChunk == 0,
                  "load: mutation plans cover the whole corpus");
    cisram_assert(shards_ > 0, "load: need at least one shard");
    cisram_assert(cfg_.batches > 0, "load: empty mutation plan");
    cisram_assert(cfg_.deletesPerBatch * cfg_.batches <
                      base.numChunks,
                  "load: plan would tombstone the entire corpus");

    // Epoch 0: the base corpus, no overlay.
    views_.push_back(nullptr);
    specs_.push_back(base);
    liveCounts_.push_back(base.numChunks);

    Rng rng(cfg_.seed ^ 0x6d75746174655f31ull); // "mutate_1"
    std::vector<uint64_t> live(base.numChunks);
    for (uint64_t i = 0; i < base.numChunks; ++i)
        live[i] = i;
    uint64_t next_global = base.numChunks;

    std::vector<uint64_t> cum_inserted;
    std::unordered_set<uint64_t> cum_deleted;
    std::vector<std::vector<uint64_t>> shard_inserted(shards_);

    for (unsigned b = 1; b <= cfg_.batches; ++b) {
        MutationBatch batch;
        batch.epoch = b;
        batch.atSeconds = cfg_.startSeconds +
            static_cast<double>(b - 1) * cfg_.intervalSeconds;

        // Deletes draw from chunks live before this batch's own
        // inserts, by seeded swap-erase — distinct by construction.
        for (uint64_t d = 0; d < cfg_.deletesPerBatch; ++d) {
            uint64_t idx = rng.nextBelow(live.size());
            batch.deletes.push_back(live[idx]);
            live[idx] = live.back();
            live.pop_back();
        }
        std::sort(batch.deletes.begin(), batch.deletes.end());

        for (uint64_t i = 0; i < cfg_.insertsPerBatch; ++i) {
            batch.inserts.push_back(next_global);
            live.push_back(next_global);
            ++next_global;
        }

        cum_inserted.insert(cum_inserted.end(),
                            batch.inserts.begin(),
                            batch.inserts.end());
        for (uint64_t d : batch.deletes)
            cum_deleted.insert(d);

        auto view = std::make_shared<baseline::CorpusEpochView>();
        view->epoch = b;
        view->baseChunks = base.numChunks;
        view->inserted = cum_inserted;
        view->deleted = cum_deleted;
        views_.push_back(view);

        baseline::RagCorpusSpec spec = base;
        spec.numChunks = base.numChunks + cum_inserted.size();
        spec.corpusBytes = base.corpusBytes *
            (static_cast<double>(spec.numChunks) /
             static_cast<double>(base.numChunks));
        spec.epochView = views_.back().get();
        specs_.push_back(spec);
        liveCounts_.push_back(live.size());

        // Per-shard slices of the same epoch. Every shard advances
        // every epoch (servers insist on epoch steps of one), an
        // untouched shard just carries zero delta bytes.
        std::vector<uint64_t> delta(shards_, 0);
        std::vector<
            std::shared_ptr<const baseline::CorpusEpochView>>
            sviews;
        for (uint64_t g : batch.inserts) {
            unsigned s = owningShard(g, base.numChunks, shards_);
            shard_inserted[s].push_back(g);
            delta[s] += base.dim * sizeof(int16_t);
        }
        for (unsigned s = 0; s < shards_; ++s) {
            auto sv =
                std::make_shared<baseline::CorpusEpochView>();
            sv->epoch = b;
            sv->baseChunks =
                fleet::shardChunkRange(base.numChunks, shards_, s)
                    .numChunks;
            sv->inserted = shard_inserted[s];
            for (uint64_t d : cum_deleted)
                if (owningShard(d, base.numChunks, shards_) == s)
                    sv->deleted.insert(d);
            sviews.push_back(std::move(sv));
        }
        shardViews_.push_back(std::move(sviews));
        shardDeltaBytes_.push_back(std::move(delta));
        batches_.push_back(std::move(batch));
    }
}

const baseline::RagCorpusSpec &
MutationPlan::specAt(uint64_t epoch) const
{
    cisram_assert(epoch < specs_.size(), "load: epoch ", epoch,
                  " past the plan's ", epochs(), " batches");
    return specs_[epoch];
}

std::vector<fleet::Router::ShardEpochUpdate>
MutationPlan::shardUpdates(uint64_t epoch) const
{
    cisram_assert(epoch >= 1 && epoch <= epochs(),
                  "load: no shard updates for epoch ", epoch);
    std::vector<fleet::Router::ShardEpochUpdate> out;
    for (unsigned s = 0; s < shards_; ++s) {
        fleet::Router::ShardEpochUpdate u;
        u.shard = s;
        u.view = shardViews_[epoch - 1][s];
        u.numChunks = u.view->baseChunks + u.view->inserted.size();
        u.deltaBytes = shardDeltaBytes_[epoch - 1][s];
        out.push_back(std::move(u));
    }
    return out;
}

uint64_t
MutationPlan::liveChunksAt(uint64_t epoch) const
{
    cisram_assert(epoch < liveCounts_.size(), "load: epoch ",
                  epoch, " past the plan's ", epochs(), " batches");
    return liveCounts_[epoch];
}

} // namespace cisram::load
