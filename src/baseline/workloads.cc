#include "baseline/workloads.hh"

namespace cisram::baseline {

const std::vector<RagCorpusSpec> &
ragCorpora()
{
    static const std::vector<RagCorpusSpec> corpora = {
        {"10GB", 10.0e9, 163000, 368},
        {"50GB", 50.0e9, 819000, 368},
        {"200GB", 200.0e9, 3300000, 368},
    };
    return corpora;
}

namespace {

/** SplitMix64 finalizer: a high-quality stateless mixer. */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

// Salts keep the clustered model's streams (topic assignment,
// centers, noise, labels) independent of each other and of the
// plain embedding hash under the same corpus seed.
constexpr uint64_t kTopicSalt = 0xc2b2ae3d27d4eb4full;
constexpr uint64_t kCenterSalt = 0x165667b19e3779f9ull;
constexpr uint64_t kNoiseSalt = 0x27d4eb2f165667c5ull;
constexpr uint64_t kLabelSalt = 0x9e3779b97f4a7c15ull;

/** Topic-center element in [-5, 5]. */
int16_t
topicCenter(uint64_t topic, uint64_t d, uint64_t seed)
{
    uint64_t h =
        mix(seed ^ kCenterSalt ^ mix(topic * 0x100000001b3ull + d));
    return static_cast<int16_t>(static_cast<int64_t>(h % 11) - 5);
}

} // namespace

int16_t
embeddingValue(uint64_t chunk, uint64_t d, uint64_t seed)
{
    uint64_t h = mix(seed ^ mix(chunk * 0x100000001b3ull + d));
    return static_cast<int16_t>(static_cast<int64_t>(h % 15) - 7);
}

size_t
chunkTopic(uint64_t chunk, uint64_t seed, size_t topics)
{
    return static_cast<size_t>(mix(seed ^ kTopicSalt ^ mix(chunk)) %
                               topics);
}

namespace {

/**
 * Clustered-model element with the topic already resolved. Center in
 * [-5, 5] plus noise in [-2, 2]: the sum stays inside the
 * quantization range [-7, 7], so the int16 dot-product budget
 * (368 * 7 * 7 < 2^15) holds for clustered corpora too.
 */
int16_t
clusteredValue(uint64_t chunk, uint64_t d, uint64_t seed,
               size_t topic)
{
    uint64_t h = mix(seed ^ kNoiseSalt ^
                     mix(chunk * 0x100000001b3ull + d));
    int16_t noise =
        static_cast<int16_t>(static_cast<int64_t>(h % 5) - 2);
    return static_cast<int16_t>(topicCenter(topic, d, seed) + noise);
}

} // namespace

int16_t
embeddingValueFor(const RagCorpusSpec &spec, uint64_t chunk,
                  uint64_t d, uint64_t seed)
{
    if (spec.topics == 0)
        return embeddingValue(chunk, d, seed);
    return clusteredValue(chunk, d, seed,
                          chunkTopic(chunk, seed, spec.topics));
}

uint16_t
chunkLabel(uint64_t chunk, uint64_t seed)
{
    return static_cast<uint16_t>(mix(seed ^ kLabelSalt ^ mix(chunk)) %
                                 kNumChunkLabels);
}

void
genEmbeddingRow(const RagCorpusSpec &spec, uint64_t chunk,
                uint64_t seed, int16_t *out)
{
    if (spec.topics == 0) {
        for (uint64_t d = 0; d < spec.dim; ++d)
            out[d] = embeddingValue(chunk, d, seed);
        return;
    }
    size_t topic = chunkTopic(chunk, seed, spec.topics);
    for (uint64_t d = 0; d < spec.dim; ++d)
        out[d] = clusteredValue(chunk, d, seed, topic);
}

std::vector<int16_t>
genEmbeddings(const RagCorpusSpec &spec, uint64_t first,
              uint64_t count, uint64_t seed)
{
    std::vector<int16_t> out(count * spec.dim);
    for (uint64_t c = 0; c < count; ++c)
        genEmbeddingRow(spec, first + c, seed,
                        out.data() + c * spec.dim);
    return out;
}

std::vector<int16_t>
genQuery(size_t dim, uint64_t seed)
{
    std::vector<int16_t> q(dim);
    for (size_t d = 0; d < dim; ++d) {
        uint64_t h = mix(seed * 0x9e3779b97f4a7c15ull + d);
        q[d] = static_cast<int16_t>(static_cast<int64_t>(h % 15) - 7);
    }
    return q;
}

std::vector<int16_t>
genQueryForTopic(const RagCorpusSpec &spec, size_t topic,
                 uint64_t seed, uint64_t corpus_seed)
{
    std::vector<int16_t> q(spec.dim);
    if (spec.topics == 0)
        return genQuery(spec.dim, seed);
    // Jitter in [-1, 1]: tighter than the chunks' own noise, so the
    // query's true neighbours concentrate in `topic` but boundary
    // chunks still occasionally rank into other clusters — that is
    // what gives the recall curve its shape below nprobe = K.
    for (size_t d = 0; d < spec.dim; ++d) {
        uint64_t h = mix(seed * 0x9e3779b97f4a7c15ull + d);
        int16_t jitter =
            static_cast<int16_t>(static_cast<int64_t>(h % 3) - 1);
        q[d] = static_cast<int16_t>(
            topicCenter(topic % spec.topics, d, corpus_seed) +
            jitter);
    }
    return q;
}

} // namespace cisram::baseline
