#include "baseline/workloads.hh"

namespace cisram::baseline {

const std::vector<RagCorpusSpec> &
ragCorpora()
{
    static const std::vector<RagCorpusSpec> corpora = {
        {"10GB", 10.0e9, 163000, 368},
        {"50GB", 50.0e9, 819000, 368},
        {"200GB", 200.0e9, 3300000, 368},
    };
    return corpora;
}

namespace {

/** SplitMix64 finalizer: a high-quality stateless mixer. */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

int16_t
embeddingValue(uint64_t chunk, uint64_t d, uint64_t seed)
{
    uint64_t h = mix(seed ^ mix(chunk * 0x100000001b3ull + d));
    return static_cast<int16_t>(static_cast<int64_t>(h % 15) - 7);
}

std::vector<int16_t>
genEmbeddings(const RagCorpusSpec &spec, uint64_t first,
              uint64_t count, uint64_t seed)
{
    std::vector<int16_t> out(count * spec.dim);
    for (uint64_t c = 0; c < count; ++c)
        for (uint64_t d = 0; d < spec.dim; ++d)
            out[c * spec.dim + d] =
                embeddingValue(first + c, d, seed);
    return out;
}

std::vector<int16_t>
genQuery(size_t dim, uint64_t seed)
{
    std::vector<int16_t> q(dim);
    for (size_t d = 0; d < dim; ++d) {
        uint64_t h = mix(seed * 0x9e3779b97f4a7c15ull + d);
        q[d] = static_cast<int16_t>(static_cast<int64_t>(h % 15) - 7);
    }
    return q;
}

} // namespace cisram::baseline
