#include <atomic>
#include "baseline/phoenix_cpu.hh"

#include <algorithm>
#include <cmath>
#include <thread>
#include <unordered_map>

#include "common/logging.hh"
#include "common/rng.hh"

namespace cisram::baseline {

namespace {

/** Run fn(t, lo, hi) over `threads` contiguous shards of [0, n). */
template <typename Fn>
void
shard(size_t n, unsigned threads, Fn fn)
{
    if (threads <= 1 || n == 0) {
        fn(0u, size_t(0), n);
        return;
    }
    unsigned nt = std::min<unsigned>(threads,
                                     static_cast<unsigned>(
                                         std::max<size_t>(1, n)));
    size_t stride = (n + nt - 1) / nt;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < nt; ++t) {
        size_t lo = t * stride;
        size_t hi = std::min(n, lo + stride);
        workers.emplace_back([=] { fn(t, lo, hi); });
    }
    for (auto &w : workers)
        w.join();
}

/** Deterministic word list: "wNNN" drawn from a Zipf-ish pool. */
std::vector<std::string>
genWords(size_t bytes, uint64_t seed, size_t pool)
{
    Rng rng(seed);
    std::vector<std::string> words;
    size_t used = 0;
    while (used < bytes) {
        // Zipf-ish: square the uniform draw to bias toward low ids.
        double u = rng.nextDouble();
        size_t id = static_cast<size_t>(u * u * static_cast<double>(
                                                    pool));
        std::string w = "w" + std::to_string(id);
        used += w.size() + 1;
        words.push_back(std::move(w));
    }
    return words;
}

} // namespace

// ---- Histogram -------------------------------------------------

HistogramInput
genHistogramInput(size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    HistogramInput in;
    in.pixels.resize(bytes - bytes % 3);
    for (auto &p : in.pixels)
        p = static_cast<uint8_t>(rng.next());
    return in;
}

HistogramResult
histogramSeq(const HistogramInput &in)
{
    HistogramResult out;
    for (size_t i = 0; i + 2 < in.pixels.size(); i += 3) {
        ++out.r[in.pixels[i]];
        ++out.g[in.pixels[i + 1]];
        ++out.b[in.pixels[i + 2]];
    }
    return out;
}

HistogramResult
histogramPar(const HistogramInput &in, unsigned threads)
{
    size_t npix = in.pixels.size() / 3;
    std::vector<HistogramResult> parts(std::max(1u, threads));
    shard(npix, threads, [&](unsigned t, size_t lo, size_t hi) {
        auto &part = parts[t];
        for (size_t p = lo; p < hi; ++p) {
            ++part.r[in.pixels[3 * p]];
            ++part.g[in.pixels[3 * p + 1]];
            ++part.b[in.pixels[3 * p + 2]];
        }
    });
    HistogramResult out;
    for (const auto &part : parts) {
        for (int v = 0; v < 256; ++v) {
            out.r[v] += part.r[v];
            out.g[v] += part.g[v];
            out.b[v] += part.b[v];
        }
    }
    return out;
}

// ---- Linear regression -----------------------------------------

LinRegInput
genLinRegInput(size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    LinRegInput in;
    in.points.resize(bytes - bytes % 2);
    // y correlated with x so the fit is non-degenerate.
    for (size_t i = 0; i + 1 < in.points.size(); i += 2) {
        uint8_t x = static_cast<uint8_t>(rng.next());
        uint8_t noise = static_cast<uint8_t>(rng.nextBelow(64));
        in.points[i] = x;
        in.points[i + 1] = static_cast<uint8_t>(x / 2 + noise);
    }
    return in;
}

namespace {

LinRegResult
finishLinReg(uint64_t n, uint64_t sx, uint64_t sy, uint64_t sxx,
             uint64_t syy, uint64_t sxy)
{
    LinRegResult out{n, sx, sy, sxx, syy, sxy, 0.0, 0.0};
    double dn = static_cast<double>(n);
    double denom = dn * static_cast<double>(sxx) -
        static_cast<double>(sx) * static_cast<double>(sx);
    if (denom != 0.0) {
        out.b = (dn * static_cast<double>(sxy) -
                 static_cast<double>(sx) * static_cast<double>(sy)) /
            denom;
        out.a = (static_cast<double>(sy) -
                 out.b * static_cast<double>(sx)) /
            dn;
    }
    return out;
}

} // namespace

LinRegResult
linRegSeq(const LinRegInput &in)
{
    uint64_t n = in.points.size() / 2;
    uint64_t sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    for (size_t i = 0; i < n; ++i) {
        uint64_t x = in.points[2 * i];
        uint64_t y = in.points[2 * i + 1];
        sx += x;
        sy += y;
        sxx += x * x;
        syy += y * y;
        sxy += x * y;
    }
    return finishLinReg(n, sx, sy, sxx, syy, sxy);
}

LinRegResult
linRegPar(const LinRegInput &in, unsigned threads)
{
    size_t n = in.points.size() / 2;
    struct Sums
    {
        uint64_t sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    };
    std::vector<Sums> parts(std::max(1u, threads));
    shard(n, threads, [&](unsigned t, size_t lo, size_t hi) {
        auto &p = parts[t];
        for (size_t i = lo; i < hi; ++i) {
            uint64_t x = in.points[2 * i];
            uint64_t y = in.points[2 * i + 1];
            p.sx += x;
            p.sy += y;
            p.sxx += x * x;
            p.syy += y * y;
            p.sxy += x * y;
        }
    });
    Sums total;
    for (const auto &p : parts) {
        total.sx += p.sx;
        total.sy += p.sy;
        total.sxx += p.sxx;
        total.syy += p.syy;
        total.sxy += p.sxy;
    }
    return finishLinReg(n, total.sx, total.sy, total.sxx, total.syy,
                        total.sxy);
}

// ---- Matrix multiply -------------------------------------------

std::vector<int16_t>
genMatrix(size_t rows, size_t cols, uint64_t seed, int16_t max_abs)
{
    Rng rng(seed);
    std::vector<int16_t> m(rows * cols);
    for (auto &v : m) {
        v = static_cast<int16_t>(
            static_cast<int64_t>(rng.nextBelow(2 * max_abs + 1)) -
            max_abs);
    }
    return m;
}

std::vector<int32_t>
matmulSeq(const std::vector<int16_t> &a, const std::vector<int16_t> &b,
          size_t m, size_t n, size_t k)
{
    cisram_assert(a.size() == m * k && b.size() == k * n,
                  "matmul shape mismatch");
    std::vector<int32_t> c(m * n, 0);
    for (size_t i = 0; i < m; ++i) {
        for (size_t kk = 0; kk < k; ++kk) {
            int32_t av = a[i * k + kk];
            if (av == 0)
                continue;
            for (size_t j = 0; j < n; ++j)
                c[i * n + j] += av * b[kk * n + j];
        }
    }
    return c;
}

std::vector<int32_t>
matmulPar(const std::vector<int16_t> &a, const std::vector<int16_t> &b,
          size_t m, size_t n, size_t k, unsigned threads)
{
    cisram_assert(a.size() == m * k && b.size() == k * n,
                  "matmul shape mismatch");
    std::vector<int32_t> c(m * n, 0);
    shard(m, threads, [&](unsigned, size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
            for (size_t kk = 0; kk < k; ++kk) {
                int32_t av = a[i * k + kk];
                if (av == 0)
                    continue;
                for (size_t j = 0; j < n; ++j)
                    c[i * n + j] += av * b[kk * n + j];
            }
        }
    });
    return c;
}

// ---- K-means ----------------------------------------------------

KmeansInput
genKmeansInput(size_t num_points, size_t dim, size_t k,
               uint64_t seed)
{
    Rng rng(seed);
    KmeansInput in{num_points, dim, k, {}};
    in.points.resize(num_points * dim);
    // Clustered blobs so Lloyd iterations converge meaningfully.
    // Coordinate ranges are sized so squared distances over up to 8
    // dimensions stay within u16 (max diff 88 -> 8 * 88^2 = 61952),
    // letting the APU kernel compute distances natively.
    std::vector<int32_t> centers(k * dim);
    for (auto &c : centers)
        c = static_cast<int32_t>(rng.nextBelow(73)) - 36;
    for (size_t p = 0; p < num_points; ++p) {
        size_t c = rng.nextBelow(k);
        for (size_t d = 0; d < dim; ++d) {
            int32_t v = centers[c * dim + d] +
                static_cast<int32_t>(rng.nextBelow(17)) - 8;
            in.points[p * dim + d] = static_cast<int16_t>(
                std::clamp<int32_t>(v, -32768, 32767));
        }
    }
    return in;
}

namespace {

KmeansResult
kmeansImpl(const KmeansInput &in, unsigned max_iters,
           unsigned threads)
{
    KmeansResult out;
    out.assignment.assign(in.numPoints, 0);
    out.centroids.assign(in.k * in.dim, 0.0);
    // Deterministic init: first k points.
    for (size_t c = 0; c < in.k; ++c)
        for (size_t d = 0; d < in.dim; ++d)
            out.centroids[c * in.dim + d] = in.points[c * in.dim + d];

    out.iterations = 0;
    for (unsigned iter = 0; iter < max_iters; ++iter) {
        ++out.iterations;
        std::atomic<bool> changed{false};
        shard(in.numPoints, threads,
              [&](unsigned, size_t lo, size_t hi) {
                  for (size_t p = lo; p < hi; ++p) {
                      double best = 0;
                      uint32_t best_c = 0;
                      for (size_t c = 0; c < in.k; ++c) {
                          double dist = 0;
                          for (size_t d = 0; d < in.dim; ++d) {
                              double diff =
                                  in.points[p * in.dim + d] -
                                  out.centroids[c * in.dim + d];
                              dist += diff * diff;
                          }
                          if (c == 0 || dist < best) {
                              best = dist;
                              best_c = static_cast<uint32_t>(c);
                          }
                      }
                      if (out.assignment[p] != best_c) {
                          out.assignment[p] = best_c;
                          changed.store(true,
                                        std::memory_order_relaxed);
                      }
                  }
              });
        // Recompute centroids (sequential: k*dim is small).
        std::vector<double> sums(in.k * in.dim, 0.0);
        std::vector<size_t> counts(in.k, 0);
        for (size_t p = 0; p < in.numPoints; ++p) {
            size_t c = out.assignment[p];
            ++counts[c];
            for (size_t d = 0; d < in.dim; ++d)
                sums[c * in.dim + d] += in.points[p * in.dim + d];
        }
        for (size_t c = 0; c < in.k; ++c) {
            if (counts[c] == 0)
                continue;
            // Centroids round to integers (fixed-point Lloyd), so
            // integer-arithmetic implementations (the APU kernel)
            // iterate identically.
            for (size_t d = 0; d < in.dim; ++d)
                out.centroids[c * in.dim + d] = std::round(
                    sums[c * in.dim + d] /
                    static_cast<double>(counts[c]));
        }
        if (!changed.load())
            break;
    }
    return out;
}

} // namespace

KmeansResult
kmeansSeq(const KmeansInput &in, unsigned max_iters)
{
    return kmeansImpl(in, max_iters, 1);
}

KmeansResult
kmeansPar(const KmeansInput &in, unsigned max_iters, unsigned threads)
{
    return kmeansImpl(in, max_iters, threads);
}

// ---- Reverse index ----------------------------------------------

RevIndexInput
genRevIndexInput(size_t num_docs, size_t links_per_doc,
                 uint32_t num_links, uint64_t seed)
{
    Rng rng(seed);
    RevIndexInput in;
    in.numLinks = num_links;
    in.docLinks.resize(num_docs);
    for (auto &doc : in.docLinks) {
        doc.resize(links_per_doc);
        for (auto &l : doc)
            l = static_cast<uint32_t>(rng.nextBelow(num_links));
    }
    return in;
}

RevIndexResult
reverseIndexSeq(const RevIndexInput &in)
{
    RevIndexResult out;
    for (uint32_t doc = 0; doc < in.docLinks.size(); ++doc) {
        for (uint32_t link : in.docLinks[doc]) {
            auto &lst = out[link];
            // Each (link, doc) pair appears once.
            if (lst.empty() || lst.back() != doc)
                lst.push_back(doc);
        }
    }
    return out;
}

// ---- String match -----------------------------------------------

StringMatchInput
genStringMatchInput(size_t bytes, uint64_t seed)
{
    StringMatchInput in;
    in.words = genWords(bytes, seed, 50000);
    in.keys = {"w3", "w17", "w123", "w4096"};
    return in;
}

StringMatchResult
stringMatchSeq(const StringMatchInput &in)
{
    StringMatchResult counts(in.keys.size(), 0);
    for (const auto &w : in.words)
        for (size_t k = 0; k < in.keys.size(); ++k)
            if (w == in.keys[k])
                ++counts[k];
    return counts;
}

StringMatchResult
stringMatchPar(const StringMatchInput &in, unsigned threads)
{
    std::vector<StringMatchResult> parts(
        std::max(1u, threads), StringMatchResult(in.keys.size(), 0));
    shard(in.words.size(), threads,
          [&](unsigned t, size_t lo, size_t hi) {
              for (size_t i = lo; i < hi; ++i)
                  for (size_t k = 0; k < in.keys.size(); ++k)
                      if (in.words[i] == in.keys[k])
                          ++parts[t][k];
          });
    StringMatchResult out(in.keys.size(), 0);
    for (const auto &p : parts)
        for (size_t k = 0; k < out.size(); ++k)
            out[k] += p[k];
    return out;
}

// ---- Word count --------------------------------------------------

WordCountInput
genWordCountInput(size_t bytes, uint64_t seed)
{
    return {genWords(bytes, seed, 5000)};
}

namespace {

std::vector<WordCountEntry>
topN(const std::unordered_map<std::string, uint64_t> &counts,
     size_t top_n)
{
    std::vector<WordCountEntry> all;
    all.reserve(counts.size());
    for (const auto &[w, c] : counts)
        all.push_back({w, c});
    std::sort(all.begin(), all.end(),
              [](const WordCountEntry &a, const WordCountEntry &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  // Shortlex tie-break: numeric order for the
                  // generators' "w<id>" tokens.
                  if (a.word.size() != b.word.size())
                      return a.word.size() < b.word.size();
                  return a.word < b.word;
              });
    if (all.size() > top_n)
        all.resize(top_n);
    return all;
}

} // namespace

std::vector<WordCountEntry>
wordCountSeq(const WordCountInput &in, size_t top_n)
{
    std::unordered_map<std::string, uint64_t> counts;
    for (const auto &w : in.words)
        ++counts[w];
    return topN(counts, top_n);
}

std::vector<WordCountEntry>
wordCountPar(const WordCountInput &in, size_t top_n,
             unsigned threads)
{
    std::vector<std::unordered_map<std::string, uint64_t>> parts(
        std::max(1u, threads));
    shard(in.words.size(), threads,
          [&](unsigned t, size_t lo, size_t hi) {
              for (size_t i = lo; i < hi; ++i)
                  ++parts[t][in.words[i]];
          });
    std::unordered_map<std::string, uint64_t> counts;
    for (const auto &p : parts)
        for (const auto &[w, c] : p)
            counts[w] += c;
    return topN(counts, top_n);
}

} // namespace cisram::baseline
