#include "baseline/ivf.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace cisram::baseline {

namespace {

/** int32-exact dot of two int16 rows. */
int64_t
rowDot(const int16_t *a, const int16_t *b, size_t dim)
{
    int64_t s = 0;
    for (size_t d = 0; d < dim; ++d)
        s += static_cast<int32_t>(a[d]) * b[d];
    return s;
}

/** argmax_j dot(row, centroid_j); ties to the lowest j. */
size_t
bestList(const int16_t *row, const std::vector<int16_t> &centroids,
         size_t k, size_t dim)
{
    size_t best = 0;
    int64_t bestScore = rowDot(row, centroids.data(), dim);
    for (size_t j = 1; j < k; ++j) {
        int64_t s = rowDot(row, centroids.data() + j * dim, dim);
        if (s > bestScore) { // strict: ties keep the lower id
            bestScore = s;
            best = j;
        }
    }
    return best;
}

} // namespace

IvfClustering
IvfClustering::build(const RagCorpusSpec &spec, uint64_t seed,
                     const IvfBuildConfig &cfg)
{
    cisram_assert(spec.numChunks > 0, "empty corpus");
    size_t dim = spec.dim;
    size_t k = std::max<size_t>(
        1, std::min(cfg.numLists, spec.numChunks));

    // Fixed-stride training sample: deterministic and spread across
    // the whole id range (topics are hash-assigned, so a stride is as
    // unbiased as a shuffle without needing RNG state).
    size_t sampleCount =
        std::max(k, std::min(cfg.trainSample, spec.numChunks));
    sampleCount = std::min(sampleCount, spec.numChunks);
    size_t stride = spec.numChunks / sampleCount;
    std::vector<int16_t> sample(sampleCount * dim);
    for (size_t i = 0; i < sampleCount; ++i)
        genEmbeddingRow(spec, spec.firstChunk + i * stride, seed,
                        sample.data() + i * dim);

    // Init: evenly strided sample rows as the first centroids.
    IvfClustering cl;
    cl.dim_ = dim;
    cl.centroids_.resize(k * dim);
    for (size_t j = 0; j < k; ++j) {
        const int16_t *row =
            sample.data() + (j * sampleCount / k) * dim;
        std::copy(row, row + dim, cl.centroids_.begin() + j * dim);
    }

    // Lloyd: max-IP assignment (the Phoenix kmeansApu idiom — the
    // device scores candidates by inner product, so training with the
    // same affinity keeps probe selection aligned with what the
    // distance kernel will actually compute), rounded-mean update.
    std::vector<size_t> assign(sampleCount);
    std::vector<int64_t> sums(k * dim);
    std::vector<size_t> counts(k);
    for (size_t it = 0; it < cfg.iterations; ++it) {
        std::fill(sums.begin(), sums.end(), 0);
        std::fill(counts.begin(), counts.end(), 0);
        for (size_t i = 0; i < sampleCount; ++i) {
            const int16_t *row = sample.data() + i * dim;
            size_t j = bestList(row, cl.centroids_, k, dim);
            assign[i] = j;
            ++counts[j];
            for (size_t d = 0; d < dim; ++d)
                sums[j * dim + d] += row[d];
        }
        for (size_t j = 0; j < k; ++j) {
            if (counts[j] == 0)
                continue; // empty list keeps its old centroid
            for (size_t d = 0; d < dim; ++d)
                cl.centroids_[j * dim + d] =
                    static_cast<int16_t>(std::llround(
                        static_cast<double>(sums[j * dim + d]) /
                        static_cast<double>(counts[j])));
        }
    }

    // Final assignment of every chunk, then list arrays. Scanning
    // chunks in ascending id order makes ids ascend within each
    // list — the device path's per-supertile top-k extraction is
    // only tie-exact under that ordering.
    cl.assign_.resize(spec.numChunks);
    std::vector<uint64_t> listCounts(k, 0);
    std::vector<int16_t> row(dim);
    for (size_t c = 0; c < spec.numChunks; ++c) {
        genEmbeddingRow(spec, spec.firstChunk + c, seed, row.data());
        uint32_t j = static_cast<uint32_t>(
            bestList(row.data(), cl.centroids_, k, dim));
        cl.assign_[c] = j;
        ++listCounts[j];
    }
    cl.offsets_.assign(k + 1, 0);
    for (size_t j = 0; j < k; ++j)
        cl.offsets_[j + 1] = cl.offsets_[j] + listCounts[j];
    cl.order_.resize(spec.numChunks);
    std::vector<uint64_t> cursor(cl.offsets_.begin(),
                                 cl.offsets_.end() - 1);
    for (size_t c = 0; c < spec.numChunks; ++c)
        cl.order_[cursor[cl.assign_[c]]++] =
            static_cast<uint32_t>(c);
    return cl;
}

int64_t
IvfClustering::centroidDot(const int16_t *query, size_t list) const
{
    cisram_assert(list < numLists(), "list id OOB");
    return rowDot(query, centroids_.data() + list * dim_, dim_);
}

std::vector<uint32_t>
IvfClustering::selectProbes(const int16_t *query,
                            size_t nprobe) const
{
    size_t k = numLists();
    nprobe = std::min(nprobe, k);
    if (nprobe == 0)
        return {};
    // Hit's tie rule (score desc, id asc) is exactly the probe
    // ordering contract; centroid dots fit a float exactly
    // (|dot| <= 368 * 7 * 7 < 2^24).
    std::vector<Hit> scored;
    scored.reserve(k);
    for (size_t j = 0; j < k; ++j)
        scored.push_back(
            {static_cast<float>(centroidDot(query, j)), j});
    hitFinalize(scored);
    std::vector<uint32_t> probes(nprobe);
    for (size_t j = 0; j < nprobe; ++j)
        probes[j] = static_cast<uint32_t>(scored[j].id);
    return probes;
}

std::vector<Hit>
searchFilteredFlat(const IndexFlatI16 &flat,
                   const RagCorpusSpec &spec, uint64_t seed,
                   const int16_t *query, size_t k,
                   uint16_t filter_mask)
{
    std::vector<Hit> heap;
    heap.reserve(k + 1);
    for (size_t id = 0; id < flat.size(); ++id) {
        if (filter_mask != kFilterAll &&
            !passesFilter(filter_mask,
                          chunkLabel(spec.firstChunk + id, seed)))
            continue;
        hitHeapPush(heap, k,
                    {static_cast<float>(flat.dot(query, id)), id});
    }
    hitFinalize(heap);
    return heap;
}

std::vector<Hit>
IndexIvfI16::search(const int16_t *query, size_t k, size_t nprobe,
                    uint16_t filter_mask) const
{
    if (nprobe == 0) // exhaustive mode: no coarse quantization
        return searchFilteredFlat(flat_, spec_, seed_, query, k,
                                  filter_mask);
    cisram_assert(flat_.size() == clustering_.numChunks(),
                  "clustering / index size mismatch");
    auto probes = clustering_.selectProbes(query, nprobe);
    std::vector<Hit> heap;
    heap.reserve(k + 1);
    const auto &offsets = clustering_.listOffsets();
    const auto &order = clustering_.order();
    for (uint32_t list : probes) {
        for (uint64_t p = offsets[list]; p < offsets[list + 1]; ++p) {
            size_t id = order[p];
            if (filter_mask != kFilterAll &&
                !passesFilter(filter_mask,
                              chunkLabel(spec_.firstChunk + id,
                                         seed_)))
                continue;
            hitHeapPush(
                heap, k,
                {static_cast<float>(flat_.dot(query, id)), id});
        }
    }
    hitFinalize(heap);
    return heap;
}

} // namespace cisram::baseline
