/**
 * @file
 * Calibrated latency/throughput models of the comparison platforms.
 *
 * This container's CPU is not the paper's Xeon Gold 6230R and no
 * A6000 GPU is present, so the comparison axis is provided by
 * calibrated models:
 *
 *  - XeonTimingModel: per-application Phoenix latencies (single- and
 *    16-thread) and FAISS ENNS retrieval latency, calibrated once
 *    against the paper's reported measurements and frozen. These are
 *    inputs to the reproduction, not results; what the reproduction
 *    demonstrates is the APU side, which our simulator derives from
 *    the device's documented operation costs.
 *  - GpuTimingModel: A6000 retrieval as a bandwidth-roofline scan
 *    plus a fixed launch/sync overhead.
 *  - LlmGenerationModel: Llama3.1-8B time-to-first-token as a
 *    FLOPs/throughput prefill model on a dedicated GPU; consistent
 *    with the paper's Fig. 14 (the retrieval shares imply a ~545 ms
 *    generation-side TTFT at every corpus size).
 */

#ifndef CISRAM_BASELINE_TIMING_MODELS_HH
#define CISRAM_BASELINE_TIMING_MODELS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cisram::baseline {

/** The seven Phoenix applications (paper Table 6 order). */
enum class PhoenixApp
{
    Histogram,
    LinearRegression,
    MatrixMultiply,
    Kmeans,
    ReverseIndex,
    StringMatch,
    WordCount,
};

const char *phoenixAppName(PhoenixApp app);

/** Static per-app facts from the paper's Table 6 + calibration. */
struct PhoenixAppSpec
{
    PhoenixApp app;
    const char *name;
    const char *inputSize;   ///< as printed in Table 6
    double inputBytes;       ///< reference input size
    double cpuInstructions;  ///< Table 6, Valgrind count
    double cpu1tMs;          ///< calibrated single-thread latency
    double cpu16tMs;         ///< calibrated 16-thread latency
};

/** All seven application specs, Table 6 order. */
const std::vector<PhoenixAppSpec> &phoenixSpecs();

/** Spec lookup by app id. */
const PhoenixAppSpec &phoenixSpec(PhoenixApp app);

class XeonTimingModel
{
  public:
    /**
     * Phoenix latency in ms at an arbitrary input scale (linear in
     * input size from the calibrated reference point).
     */
    double phoenixMs(PhoenixApp app, bool multithread,
                     double input_bytes) const;

    /** Latency at the paper's reference input size. */
    double
    phoenixMs(PhoenixApp app, bool multithread) const
    {
        const auto &s = phoenixSpec(app);
        return phoenixMs(app, multithread, s.inputBytes);
    }

    /**
     * FAISS IndexFlat exact inner-product retrieval latency (ms) for
     * an embedding table of `bytes`, interpolated between the
     * paper's calibrated corpus points (120 MB / 600 MB / 2.4 GB ->
     * 24.6 / 98.9 / 555.7 ms, from Table 8 and the reported
     * retrieval speedups).
     */
    double ennsRetrievalMs(double bytes) const;
};

class GpuTimingModel
{
  public:
    /** A6000 device memory bandwidth (B/s). */
    double memBandwidth = 768.0e9;

    /** Streaming efficiency of the fused scan + k-select kernels. */
    double scanEfficiency = 0.65;

    /** Per-query launch, sync, and transfer overhead (s). */
    double launchOverhead = 1.2e-3;

    /** ENNS retrieval latency (s) over `bytes` of embeddings. */
    double
    ennsRetrievalSeconds(double bytes) const
    {
        return launchOverhead +
            bytes / (scanEfficiency * memBandwidth);
    }
};

class LlmGenerationModel
{
  public:
    double paramCount = 8.0e9;        ///< Llama3.1-8B
    double gpuPeakFlops = 155.0e12;   ///< A6000 FP16 tensor peak
    double mfu = 0.39;                ///< model FLOPs utilization
    double promptTokens = 2048;       ///< query + retrieved chunks

    /** Prefill (time-to-first-token) seconds on the dedicated GPU. */
    double
    ttftSeconds() const
    {
        return 2.0 * paramCount * promptTokens /
            (gpuPeakFlops * mfu);
    }
};

} // namespace cisram::baseline

#endif // CISRAM_BASELINE_TIMING_MODELS_HH
