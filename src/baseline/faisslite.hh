/**
 * @file
 * FAISS-lite: exact nearest-neighbour search on the CPU.
 *
 * The paper's CPU baseline runs FAISS IndexFlat exact inner-product
 * search with AVX512 and OpenMP (Section 5.3.2). This module
 * reimplements that functionality: a flat index over dense vectors
 * with exact top-k inner-product (and L2) search, single-threaded or
 * partitioned across std::thread workers with per-thread heaps and a
 * final merge. It serves as the golden reference for the APU
 * retrieval kernels and as the functional CPU baseline.
 */

#ifndef CISRAM_BASELINE_FAISSLITE_HH
#define CISRAM_BASELINE_FAISSLITE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "baseline/workloads.hh"

namespace cisram::baseline {

/** One search hit. */
struct Hit
{
    float score;
    size_t id;

    bool
    operator==(const Hit &o) const
    {
        return score == o.score && id == o.id;
    }
};

/** Similarity metric. */
enum class Metric { InnerProduct, L2 };

/**
 * The one tie rule every answer producer must share: higher score is
 * better; on equal scores the *smaller* id wins. Exposed (rather than
 * file-local) so the IVF index, the fleet k-way merge, and tests all
 * compare against the same boundary behaviour — a divergent tie rule
 * only becomes observable once probing changes which ties reach the
 * k boundary, which is exactly when bit-compare gates must not lie.
 */
bool hitWorseThan(const Hit &a, const Hit &b);

/** Push into a bounded best-k heap ordered by hitWorseThan. */
void hitHeapPush(std::vector<Hit> &heap, size_t k, Hit h);

/** Sort hits best-first (score desc, id asc on ties). */
void hitFinalize(std::vector<Hit> &hits);

/** Merge several bounded heaps into one top-k list. */
std::vector<Hit> mergeHitHeaps(std::vector<std::vector<Hit>> &parts,
                               size_t k);

/**
 * Flat (brute-force, exact) index over dense float vectors.
 *
 * Deterministic tie-breaking: equal scores order by ascending id.
 */
class IndexFlat
{
  public:
    IndexFlat(size_t dim, Metric metric = Metric::InnerProduct)
        : dim_(dim), metric_(metric)
    {}

    size_t dim() const { return dim_; }
    size_t size() const { return count; }
    Metric metric() const { return metric_; }

    /** Append `n` vectors (row-major, n x dim). */
    void add(const float *vecs, size_t n);

    /** Exact top-k for one query; k is clamped to size(). */
    std::vector<Hit> search(const float *query, size_t k,
                            unsigned threads = 1) const;

    /** Raw score of one stored vector against a query. */
    float score(const float *query, size_t id) const;

  private:
    /** Scan ids [lo, hi) into a caller-provided heap vector. */
    void scanRange(const float *query, size_t k, size_t lo, size_t hi,
                   std::vector<Hit> &heap) const;

    size_t dim_;
    Metric metric_;
    size_t count = 0;
    std::vector<float> data;
};

/**
 * Flat index over int16 embeddings (the APU's native format),
 * scoring in int32 and reporting float scores. Used to cross-check
 * the APU retrieval kernel bit-for-bit.
 */
class IndexFlatI16
{
  public:
    explicit IndexFlatI16(size_t dim) : dim_(dim) {}

    size_t dim() const { return dim_; }
    size_t size() const { return count; }

    void add(const int16_t *vecs, size_t n);

    /** Exact top-k by int32 inner product; ties by ascending id. */
    std::vector<Hit> search(const int16_t *query, size_t k,
                            unsigned threads = 1) const;

    /** int32 inner product of a stored vector against a query. */
    int64_t dot(const int16_t *query, size_t id) const;

    const std::vector<int16_t> &raw() const { return data; }

  private:
    size_t dim_;
    size_t count = 0;
    std::vector<int16_t> data;
};

/**
 * Exact top-k over a (possibly epoch-overlaid) hash-generated corpus
 * slice, regenerating each row on the fly instead of materializing
 * the index. This is the golden twin of the device's epoch-aware
 * retrieval: tombstoned chunks are skipped, inserted chunks scanned
 * at their overlay positions, and ids returned spec-LOCAL (matching
 * searchFilteredFlat; local == global when firstChunk is 0 and no
 * view is armed). Scores are int32 inner products reported as float,
 * tie rule hitWorseThan — so hits bit-compare against the APU path.
 */
std::vector<Hit> searchEpochFlat(const RagCorpusSpec &spec,
                                 uint64_t corpus_seed,
                                 const int16_t *query, size_t k,
                                 uint16_t filter_mask = kFilterAll);

} // namespace cisram::baseline

#endif // CISRAM_BASELINE_FAISSLITE_HH
