/**
 * @file
 * CPU implementations of the Phoenix benchmark suite (paper
 * Section 5.2, Table 6): histogram, linear regression, matrix
 * multiply, k-means, reverse index, string match, and word count.
 *
 * Each application provides a sequential implementation and, where
 * the original suite parallelizes, a std::thread MapReduce-style
 * implementation. These are functional golden references for the APU
 * kernels; latency comparisons against the paper's Xeon use the
 * calibrated timing models in baseline/timing_models.hh (this
 * container's CPU is not a Xeon Gold 6230R).
 */

#ifndef CISRAM_BASELINE_PHOENIX_CPU_HH
#define CISRAM_BASELINE_PHOENIX_CPU_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cisram::baseline {

// ---------------------------------------------------------------
// Histogram: per-channel 256-bin histograms of an RGB bitmap.
// ---------------------------------------------------------------

struct HistogramInput
{
    std::vector<uint8_t> pixels; ///< RGB triplets, size % 3 == 0
};

struct HistogramResult
{
    std::array<uint32_t, 256> r{}, g{}, b{};

    bool
    operator==(const HistogramResult &o) const
    {
        return r == o.r && g == o.g && b == o.b;
    }
};

HistogramInput genHistogramInput(size_t bytes, uint64_t seed);
HistogramResult histogramSeq(const HistogramInput &in);
HistogramResult histogramPar(const HistogramInput &in,
                             unsigned threads);

// ---------------------------------------------------------------
// Linear regression: least-squares line over (x, y) byte pairs.
// ---------------------------------------------------------------

struct LinRegInput
{
    std::vector<uint8_t> points; ///< interleaved x,y; size % 2 == 0
};

struct LinRegResult
{
    uint64_t n, sx, sy, sxx, syy, sxy;
    double a, b; ///< y ~= a + b x

    bool
    operator==(const LinRegResult &o) const
    {
        return n == o.n && sx == o.sx && sy == o.sy && sxx == o.sxx &&
            syy == o.syy && sxy == o.sxy;
    }
};

LinRegInput genLinRegInput(size_t bytes, uint64_t seed);
LinRegResult linRegSeq(const LinRegInput &in);
LinRegResult linRegPar(const LinRegInput &in, unsigned threads);

// ---------------------------------------------------------------
// Matrix multiply: dense int16 x int16 -> int32, row-major.
// ---------------------------------------------------------------

std::vector<int32_t> matmulSeq(const std::vector<int16_t> &a,
                               const std::vector<int16_t> &b,
                               size_t m, size_t n, size_t k);
std::vector<int32_t> matmulPar(const std::vector<int16_t> &a,
                               const std::vector<int16_t> &b,
                               size_t m, size_t n, size_t k,
                               unsigned threads);
std::vector<int16_t> genMatrix(size_t rows, size_t cols,
                               uint64_t seed, int16_t max_abs = 64);

// ---------------------------------------------------------------
// K-means over int16 points with Lloyd iterations.
// ---------------------------------------------------------------

struct KmeansInput
{
    size_t numPoints;
    size_t dim;
    size_t k;
    std::vector<int16_t> points; ///< numPoints x dim
};

struct KmeansResult
{
    std::vector<double> centroids; ///< k x dim
    std::vector<uint32_t> assignment;
    unsigned iterations;
};

KmeansInput genKmeansInput(size_t num_points, size_t dim, size_t k,
                           uint64_t seed);
KmeansResult kmeansSeq(const KmeansInput &in, unsigned max_iters);
KmeansResult kmeansPar(const KmeansInput &in, unsigned max_iters,
                       unsigned threads);

// ---------------------------------------------------------------
// Reverse index: documents reference links; build link -> docs.
// ---------------------------------------------------------------

struct RevIndexInput
{
    std::vector<std::vector<uint32_t>> docLinks;
    uint32_t numLinks;
};

using RevIndexResult = std::map<uint32_t, std::vector<uint32_t>>;

RevIndexInput genRevIndexInput(size_t num_docs,
                               size_t links_per_doc,
                               uint32_t num_links, uint64_t seed);
RevIndexResult reverseIndexSeq(const RevIndexInput &in);

// ---------------------------------------------------------------
// String match: count occurrences of each key among the words of a
// corpus (Phoenix matches hashed keys word by word).
// ---------------------------------------------------------------

struct StringMatchInput
{
    std::vector<std::string> words;
    std::vector<std::string> keys;
};

using StringMatchResult = std::vector<uint64_t>; // per-key counts

StringMatchInput genStringMatchInput(size_t bytes, uint64_t seed);
StringMatchResult stringMatchSeq(const StringMatchInput &in);
StringMatchResult stringMatchPar(const StringMatchInput &in,
                                 unsigned threads);

// ---------------------------------------------------------------
// Word count: frequency of every word; top-N by count.
// ---------------------------------------------------------------

struct WordCountInput
{
    std::vector<std::string> words;
};

struct WordCountEntry
{
    std::string word;
    uint64_t count;

    bool
    operator==(const WordCountEntry &o) const
    {
        return word == o.word && count == o.count;
    }
};

WordCountInput genWordCountInput(size_t bytes, uint64_t seed);
std::vector<WordCountEntry> wordCountSeq(const WordCountInput &in,
                                         size_t top_n);
std::vector<WordCountEntry> wordCountPar(const WordCountInput &in,
                                         size_t top_n,
                                         unsigned threads);

} // namespace cisram::baseline

#endif // CISRAM_BASELINE_PHOENIX_CPU_HH
