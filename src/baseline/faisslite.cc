#include "baseline/faisslite.hh"

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/logging.hh"

namespace cisram::baseline {

/** Heap ordering: keep the k *best*; worst-of-the-best at the top. */
bool
hitWorseThan(const Hit &a, const Hit &b)
{
    if (a.score != b.score)
        return a.score < b.score;
    return a.id > b.id; // larger id is worse on ties
}

/** Push into a bounded max-k heap. */
void
hitHeapPush(std::vector<Hit> &heap, size_t k, Hit h)
{
    auto cmp = [](const Hit &a, const Hit &b) {
        return !hitWorseThan(a, b); // min-heap on "goodness"
    };
    if (heap.size() < k) {
        heap.push_back(h);
        std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (hitWorseThan(heap.front(), h)) {
        std::pop_heap(heap.begin(), heap.end(), cmp);
        heap.back() = h;
        std::push_heap(heap.begin(), heap.end(), cmp);
    }
}

/** Sort hits best-first with deterministic tie-breaking. */
void
hitFinalize(std::vector<Hit> &hits)
{
    std::sort(hits.begin(), hits.end(), [](const Hit &a, const Hit &b) {
        return hitWorseThan(b, a);
    });
}

/** Merge per-thread heaps into one top-k list. */
std::vector<Hit>
mergeHitHeaps(std::vector<std::vector<Hit>> &parts, size_t k)
{
    std::vector<Hit> all;
    for (auto &p : parts)
        all.insert(all.end(), p.begin(), p.end());
    hitFinalize(all);
    if (all.size() > k)
        all.resize(k);
    return all;
}

void
IndexFlat::add(const float *vecs, size_t n)
{
    data.insert(data.end(), vecs, vecs + n * dim_);
    count += n;
}

float
IndexFlat::score(const float *query, size_t id) const
{
    cisram_assert(id < count, "vector id OOB");
    const float *v = data.data() + id * dim_;
    if (metric_ == Metric::InnerProduct) {
        float s = 0.0f;
        for (size_t d = 0; d < dim_; ++d)
            s += query[d] * v[d];
        return s;
    }
    float s = 0.0f;
    for (size_t d = 0; d < dim_; ++d) {
        float diff = query[d] - v[d];
        s += diff * diff;
    }
    return -s; // higher is better, uniformly
}

void
IndexFlat::scanRange(const float *query, size_t k, size_t lo,
                     size_t hi, std::vector<Hit> &heap) const
{
    for (size_t id = lo; id < hi; ++id)
        hitHeapPush(heap, k, {score(query, id), id});
}

std::vector<Hit>
IndexFlat::search(const float *query, size_t k,
                  unsigned threads) const
{
    k = std::min(k, count);
    if (k == 0)
        return {};
    if (threads <= 1) {
        std::vector<Hit> heap;
        heap.reserve(k + 1);
        scanRange(query, k, 0, count, heap);
        hitFinalize(heap);
        return heap;
    }
    unsigned nt = std::min<unsigned>(
        threads, static_cast<unsigned>(std::max<size_t>(1, count)));
    std::vector<std::vector<Hit>> parts(nt);
    std::vector<std::thread> workers;
    size_t stride = (count + nt - 1) / nt;
    for (unsigned t = 0; t < nt; ++t) {
        size_t lo = t * stride;
        size_t hi = std::min(count, lo + stride);
        workers.emplace_back([&, t, lo, hi] {
            parts[t].reserve(k + 1);
            scanRange(query, k, lo, hi, parts[t]);
        });
    }
    for (auto &w : workers)
        w.join();
    return mergeHitHeaps(parts, k);
}

void
IndexFlatI16::add(const int16_t *vecs, size_t n)
{
    data.insert(data.end(), vecs, vecs + n * dim_);
    count += n;
}

int64_t
IndexFlatI16::dot(const int16_t *query, size_t id) const
{
    cisram_assert(id < count, "vector id OOB");
    const int16_t *v = data.data() + id * dim_;
    int64_t s = 0;
    for (size_t d = 0; d < dim_; ++d)
        s += static_cast<int32_t>(query[d]) * v[d];
    return s;
}

std::vector<Hit>
IndexFlatI16::search(const int16_t *query, size_t k,
                     unsigned threads) const
{
    k = std::min(k, count);
    if (k == 0)
        return {};
    auto scan = [&](size_t lo, size_t hi, std::vector<Hit> &heap) {
        for (size_t id = lo; id < hi; ++id) {
            hitHeapPush(heap, k,
                     {static_cast<float>(dot(query, id)), id});
        }
    };
    if (threads <= 1) {
        std::vector<Hit> heap;
        heap.reserve(k + 1);
        scan(0, count, heap);
        hitFinalize(heap);
        return heap;
    }
    unsigned nt = std::min<unsigned>(
        threads, static_cast<unsigned>(std::max<size_t>(1, count)));
    std::vector<std::vector<Hit>> parts(nt);
    std::vector<std::thread> workers;
    size_t stride = (count + nt - 1) / nt;
    for (unsigned t = 0; t < nt; ++t) {
        size_t lo = t * stride;
        size_t hi = std::min(count, lo + stride);
        workers.emplace_back(
            [&, t, lo, hi] { scan(lo, hi, parts[t]); });
    }
    for (auto &w : workers)
        w.join();
    return mergeHitHeaps(parts, k);
}

std::vector<Hit>
searchEpochFlat(const RagCorpusSpec &spec, uint64_t corpus_seed,
                const int16_t *query, size_t k, uint16_t filter_mask)
{
    if (spec.epochView) {
        cisram_assert(spec.numChunks ==
                          spec.epochView->baseChunks +
                              spec.epochView->inserted.size(),
                      "epoch view / spec chunk count mismatch");
    }
    std::vector<Hit> heap;
    heap.reserve(k + 1);
    std::vector<int16_t> row(spec.dim);
    for (size_t local = 0; local < spec.numChunks; ++local) {
        if (!spec.chunkLive(local))
            continue;
        uint64_t chunk = spec.globalChunk(local);
        if (filter_mask != kFilterAll &&
            !passesFilter(filter_mask, chunkLabel(chunk, corpus_seed)))
            continue;
        genEmbeddingRow(spec, chunk, corpus_seed, row.data());
        int64_t s = 0;
        for (size_t d = 0; d < spec.dim; ++d)
            s += static_cast<int32_t>(query[d]) * row[d];
        hitHeapPush(heap, k, {static_cast<float>(s), local});
    }
    hitFinalize(heap);
    return heap;
}

} // namespace cisram::baseline
