#include "baseline/timing_models.hh"

#include "common/logging.hh"

namespace cisram::baseline {

const char *
phoenixAppName(PhoenixApp app)
{
    return phoenixSpec(app).name;
}

const std::vector<PhoenixAppSpec> &
phoenixSpecs()
{
    // cpu1tMs / cpu16tMs calibration: chosen so that, against the
    // paper's measured APU latencies (Table 7), the reported
    // aggregate speedups of Fig. 13 are reproduced:
    //   vs 1T : mean 41.8x, geomean 14.4x, peak 128.3x
    //   vs 16T: mean 12.5x, geomean 2.6x,  max 68.1x
    // and the win/loss pattern matches Section 5.2.1 (the APU beats
    // the 16-thread CPU on linear regression, k-means, string match
    // and word count; loses on histogram, matmul, reverse index).
    static const std::vector<PhoenixAppSpec> specs = {
        {PhoenixApp::Histogram, "histogram", "1.5GB", 1.5e9, 4.8e9,
         3289.6, 740.2},
        {PhoenixApp::LinearRegression, "linear_regression", "512MB",
         512.0e6, 3.8e9, 10891.4, 1153.8},
        {PhoenixApp::MatrixMultiply, "matrix_multiply", "1024x1024",
         2.0 * 1024 * 1024 * 2, 22.6e9, 5392.6, 337.0},
        {PhoenixApp::Kmeans, "kmeans", "128k", 128.0e3 * 2 * 2,
         0.4e9, 36.8, 5.8},
        {PhoenixApp::ReverseIndex, "reverse_index", "100MB", 100.0e6,
         4.8e9, 436.8, 91.0},
        {PhoenixApp::StringMatch, "string_match", "512MB", 512.0e6,
         101.8e9, 11662.5, 6190.3},
        {PhoenixApp::WordCount, "word_count", "10MB", 10.0e6, 0.7e9,
         19.5, 5.0},
    };
    return specs;
}

const PhoenixAppSpec &
phoenixSpec(PhoenixApp app)
{
    for (const auto &s : phoenixSpecs())
        if (s.app == app)
            return s;
    cisram_panic("unknown Phoenix app");
}

double
XeonTimingModel::phoenixMs(PhoenixApp app, bool multithread,
                           double input_bytes) const
{
    const auto &s = phoenixSpec(app);
    double base = multithread ? s.cpu16tMs : s.cpu1tMs;
    return base * (input_bytes / s.inputBytes);
}

double
XeonTimingModel::ennsRetrievalMs(double bytes) const
{
    // Piecewise-linear calibration through the paper-derived points;
    // linear extrapolation beyond the last segment.
    struct Point
    {
        double bytes, ms;
    };
    static const Point pts[] = {
        {0.0, 0.0},
        {120.0e6, 24.6},
        {600.0e6, 98.9},
        {2400.0e6, 555.7},
    };
    constexpr size_t n = sizeof(pts) / sizeof(pts[0]);
    for (size_t i = 1; i < n; ++i) {
        if (bytes <= pts[i].bytes || i == n - 1) {
            double t = (bytes - pts[i - 1].bytes) /
                (pts[i].bytes - pts[i - 1].bytes);
            return pts[i - 1].ms + t * (pts[i].ms - pts[i - 1].ms);
        }
    }
    cisram_panic("unreachable");
}

} // namespace cisram::baseline
