/**
 * @file
 * IVF-lite: a k-means-lite coarse quantizer + inverted chunk lists.
 *
 * Exhaustive ENNS (the paper's only regime) scans every chunk; no
 * production vector service at 3.3 M chunks does that. This module
 * adds the classic IVF recipe in miniature: K centroids trained by a
 * few Lloyd iterations of max-inner-product k-means (the assignment
 * idiom mirrors the Phoenix k-means kernel in
 * src/kernels/phoenix_compute.cc), every chunk assigned to its
 * best-scoring centroid, and per-list chunk id arrays so a query
 * scans only the `nprobe` most promising lists.
 *
 * Determinism contract (everything here is pure function of
 * (spec, seed, config)):
 *  - training sample = fixed-stride subset of the corpus;
 *  - init centroids = evenly strided sample rows;
 *  - assignment ties go to the lowest centroid id;
 *  - empty lists keep their previous centroid;
 *  - list arrays are built scanning chunks in ascending id order, so
 *    ids *within* each list are ascending — the device path depends
 *    on this for exact per-supertile tie behaviour.
 *
 * Max inner product is used for both training assignment and probe
 * selection because it is exactly what the device distance kernel
 * computes; on the clustered corpus model (workloads.hh, topics > 0)
 * it separates topics cleanly.
 *
 * The `nprobe = numLists` identity invariant: probing every list
 * scans exactly the same chunk set as the exhaustive path, so the
 * answers must bit-compare — on the CPU golden and on the APU,
 * filtered or not. Tests gate on it.
 */

#ifndef CISRAM_BASELINE_IVF_HH
#define CISRAM_BASELINE_IVF_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "baseline/faisslite.hh"
#include "baseline/workloads.hh"

namespace cisram::baseline {

/** Coarse-quantizer training knobs (all deterministic). */
struct IvfBuildConfig
{
    size_t numLists = 64;      ///< K: centroid / inverted-list count
    size_t trainSample = 16384; ///< max chunks sampled for Lloyd
    size_t iterations = 8;     ///< fixed Lloyd iteration count
};

/**
 * The trained coarse quantizer + inverted lists for one corpus spec.
 * Holds spec-local chunk ids; a fleet shard builds its own clustering
 * over its slice and the router's merge stays exact because
 * `nprobe >= numLists` per shard degenerates to exhaustive per shard.
 */
class IvfClustering
{
  public:
    /** Train centroids and assign every chunk. Pure in its inputs. */
    static IvfClustering build(const RagCorpusSpec &spec,
                               uint64_t seed,
                               const IvfBuildConfig &cfg = {});

    size_t numLists() const { return offsets_.size() - 1; }
    size_t dim() const { return dim_; }
    size_t numChunks() const { return assign_.size(); }

    /** Centroid table, numLists x dim, int16 (device-stageable). */
    const std::vector<int16_t> &centroids() const { return centroids_; }

    /** int32-exact inner product of `query` with list's centroid. */
    int64_t centroidDot(const int16_t *query, size_t list) const;

    /**
     * The `nprobe` list ids to scan for `query`, ordered by centroid
     * score descending (ties: lower list id first). `nprobe` is
     * clamped to numLists; nprobe == 0 returns an empty selection
     * (callers treat 0 as "exhaustive, don't probe").
     */
    std::vector<uint32_t> selectProbes(const int16_t *query,
                                       size_t nprobe) const;

    /** List extents: list l owns order()[offsets[l] .. offsets[l+1]). */
    const std::vector<uint64_t> &listOffsets() const { return offsets_; }

    /** Spec-local chunk ids, list-major, ascending within a list. */
    const std::vector<uint32_t> &order() const { return order_; }

    /** List owning spec-local chunk id `local`. */
    uint32_t listOf(uint32_t local) const { return assign_[local]; }

    size_t
    listSize(size_t list) const
    {
        return static_cast<size_t>(offsets_[list + 1] -
                                   offsets_[list]);
    }

  private:
    size_t dim_ = 0;
    std::vector<int16_t> centroids_; ///< numLists x dim
    std::vector<uint64_t> offsets_;  ///< numLists + 1
    std::vector<uint32_t> order_;    ///< numChunks permutation
    std::vector<uint32_t> assign_;   ///< chunk -> list
};

/**
 * Exhaustive filtered scan over a flat index: top-k among chunks
 * whose metadata label passes `filter_mask` (kFilterAll = no
 * filtering). Hit ids are spec-local; labels are keyed by global
 * chunk id (spec.firstChunk + local), matching the device path.
 */
std::vector<Hit> searchFilteredFlat(const IndexFlatI16 &flat,
                                    const RagCorpusSpec &spec,
                                    uint64_t seed,
                                    const int16_t *query, size_t k,
                                    uint16_t filter_mask = kFilterAll);

/**
 * IVF search over an existing flat index: the CPU golden twin of the
 * device's probe-restricted path. Scans only the chunks in the
 * `nprobe` selected lists (nprobe == 0 means exhaustive), applying
 * the same metadata filter as the device mask-AND. Same tie rule as
 * every other producer (hitWorseThan), so `nprobe = numLists`
 * answers bit-compare with searchFilteredFlat.
 */
class IndexIvfI16
{
  public:
    IndexIvfI16(const IndexFlatI16 &flat,
                const IvfClustering &clustering,
                const RagCorpusSpec &spec, uint64_t seed)
        : flat_(flat), clustering_(clustering), spec_(spec),
          seed_(seed)
    {}

    const IvfClustering &clustering() const { return clustering_; }

    std::vector<Hit> search(const int16_t *query, size_t k,
                            size_t nprobe,
                            uint16_t filter_mask = kFilterAll) const;

  private:
    const IndexFlatI16 &flat_;
    const IvfClustering &clustering_;
    const RagCorpusSpec &spec_;
    uint64_t seed_;
};

} // namespace cisram::baseline

#endif // CISRAM_BASELINE_IVF_HH
