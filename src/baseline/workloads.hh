/**
 * @file
 * RAG workload generation (paper Section 5.3.1).
 *
 * The paper retrieves over 10 / 50 / 200 GB corpora chunked into
 * 16,384-token segments: 163 K / 819 K / 3.3 M chunks with 120 MB /
 * 600 MB / 2.4 GB of embeddings, i.e. 368-dimensional 16-bit
 * embeddings. Since ENNS latency depends only on embedding geometry,
 * we generate deterministic synthetic embeddings; values are
 * quantized to [-7, 7] (4-bit-scale quantization) so that a
 * 368-element inner product fits in the APU's native int16.
 *
 * Generation is stateless (hash of chunk, dim, seed), so any subset
 * of a paper-scale corpus can be materialized without storing it.
 */

#ifndef CISRAM_BASELINE_WORKLOADS_HH
#define CISRAM_BASELINE_WORKLOADS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cisram::baseline {

/** One evaluated corpus configuration. */
struct RagCorpusSpec
{
    const char *label;    ///< "10GB" etc.
    double corpusBytes;   ///< raw text corpus size
    size_t numChunks;     ///< 16,384-token segments
    size_t dim;           ///< embedding dimensionality

    /**
     * Global index of this spec's first chunk. 0 for a whole corpus;
     * a fleet shard covering chunks [F, F+numChunks) of a larger
     * corpus sets F so generation stays keyed by *global* chunk
     * identity — the shard's embeddings are bit-identical to the
     * same slice of the unsharded corpus, which is what makes a
     * scatter-gather top-k merge reproduce the single-device answer
     * exactly. Retrieval hit ids remain spec-local; the router adds
     * firstChunk back when merging.
     */
    size_t firstChunk = 0;

    double
    embeddingBytes() const
    {
        return static_cast<double>(numChunks) * dim * 2.0;
    }
};

/** The paper's three corpus sizes. */
const std::vector<RagCorpusSpec> &ragCorpora();

/** Deterministic embedding element in [-7, 7]. */
int16_t embeddingValue(uint64_t chunk, uint64_t d, uint64_t seed);

/** Materialize embeddings for chunks [first, first+count). */
std::vector<int16_t> genEmbeddings(const RagCorpusSpec &spec,
                                   uint64_t first, uint64_t count,
                                   uint64_t seed);

/** Deterministic query vector in [-7, 7]. */
std::vector<int16_t> genQuery(size_t dim, uint64_t seed);

} // namespace cisram::baseline

#endif // CISRAM_BASELINE_WORKLOADS_HH
