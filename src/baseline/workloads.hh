/**
 * @file
 * RAG workload generation (paper Section 5.3.1).
 *
 * The paper retrieves over 10 / 50 / 200 GB corpora chunked into
 * 16,384-token segments: 163 K / 819 K / 3.3 M chunks with 120 MB /
 * 600 MB / 2.4 GB of embeddings, i.e. 368-dimensional 16-bit
 * embeddings. Since ENNS latency depends only on embedding geometry,
 * we generate deterministic synthetic embeddings; values are
 * quantized to [-7, 7] (4-bit-scale quantization) so that a
 * 368-element inner product fits in the APU's native int16.
 *
 * Generation is stateless (hash of chunk, dim, seed), so any subset
 * of a paper-scale corpus can be materialized without storing it.
 */

#ifndef CISRAM_BASELINE_WORKLOADS_HH
#define CISRAM_BASELINE_WORKLOADS_HH

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace cisram::baseline {

/**
 * One immutable snapshot of a live (mutating) corpus.
 *
 * The corpus is append-only at the id level: the base corpus owns
 * global ids [0, baseChunks) and every insert mints a fresh global id
 * above everything allocated before it (ids are never reused), so an
 * embedding row keyed by global id means the same vector in every
 * epoch that can see it. Deletes are tombstones — the chunk keeps its
 * staged position and is masked out of the admit plane at query time,
 * never compacted. That keeps local positions stable across an epoch
 * bump, which is what makes journal replay after a mid-mutation reset
 * bit-identical: a replayed query re-executes against exactly the
 * epoch view it admitted under.
 *
 * A spec's local positions map to global ids as
 *   local <  baseChunks : firstChunk + local
 *   local >= baseChunks : inserted[local - baseChunks]
 * with `inserted` sorted ascending, so local order agrees with global
 * order and the shared tie rule (score desc, id asc) ranks identically
 * in either id space.
 */
struct CorpusEpochView
{
    uint64_t epoch = 0;       ///< 0 is the unmutated base corpus
    uint64_t baseChunks = 0;  ///< chunks staged before any mutation
    std::vector<uint64_t> inserted;        ///< ascending global ids
    std::unordered_set<uint64_t> deleted;  ///< tombstoned global ids
};

/** One evaluated corpus configuration. */
struct RagCorpusSpec
{
    const char *label;    ///< "10GB" etc.
    double corpusBytes;   ///< raw text corpus size
    size_t numChunks;     ///< 16,384-token segments
    size_t dim;           ///< embedding dimensionality

    /**
     * Global index of this spec's first chunk. 0 for a whole corpus;
     * a fleet shard covering chunks [F, F+numChunks) of a larger
     * corpus sets F so generation stays keyed by *global* chunk
     * identity — the shard's embeddings are bit-identical to the
     * same slice of the unsharded corpus, which is what makes a
     * scatter-gather top-k merge reproduce the single-device answer
     * exactly. Retrieval hit ids remain spec-local; the router adds
     * firstChunk back when merging.
     */
    size_t firstChunk = 0;

    /**
     * Topic count for the clustered corpus model. 0 (default) keeps
     * the original i.i.d. hash embeddings — correct for latency
     * characterization, but structureless, so no coarse quantizer
     * can beat a random partition on it. With T > 0 each chunk
     * belongs to a hash-assigned topic and its embedding is that
     * topic's center plus per-element noise (still in [-7, 7], so
     * dot products keep the int16 budget). Queries drawn near a
     * topic center then have their true neighbours concentrated in
     * one cluster, which is what gives an IVF index a real
     * recall-vs-scan trade-off to measure.
     */
    size_t topics = 0;

    /**
     * Epoch overlay for a live corpus (null = static corpus, the
     * common case). When set, numChunks must equal
     * epochView->baseChunks + epochView->inserted.size() for this
     * spec's slice, and retrieval masks tombstoned chunks via the
     * admit plane. Non-owning: whoever arms the view (the mutation
     * plan / router) keeps it alive for the spec's lifetime.
     */
    const CorpusEpochView *epochView = nullptr;

    /** Global chunk id of local position `local` under the view. */
    uint64_t
    globalChunk(uint64_t local) const
    {
        if (!epochView || local < epochView->baseChunks)
            return firstChunk + local;
        return epochView->inserted[local - epochView->baseChunks];
    }

    /** False iff the chunk at `local` is tombstoned in this epoch. */
    bool
    chunkLive(uint64_t local) const
    {
        if (!epochView || epochView->deleted.empty())
            return true;
        return !epochView->deleted.count(globalChunk(local));
    }

    double
    embeddingBytes() const
    {
        return static_cast<double>(numChunks) * dim * 2.0;
    }
};

/** The paper's three corpus sizes. */
const std::vector<RagCorpusSpec> &ragCorpora();

/** Deterministic embedding element in [-7, 7]. */
int16_t embeddingValue(uint64_t chunk, uint64_t d, uint64_t seed);

/** Topic of `chunk` under the clustered model (spec.topics > 0). */
size_t chunkTopic(uint64_t chunk, uint64_t seed, size_t topics);

/**
 * Deterministic embedding element honoring the spec's corpus model:
 * the plain hash for topics == 0, topic center + noise otherwise.
 * `chunk` is a *global* chunk id (spec.firstChunk already applied).
 */
int16_t embeddingValueFor(const RagCorpusSpec &spec, uint64_t chunk,
                          uint64_t d, uint64_t seed);

/**
 * Metadata labels for filtered search: every chunk carries one
 * deterministic label in [0, kNumChunkLabels). A filter is a 16-bit
 * mask of admitted labels; kFilterAll (all bits set) means
 * unfiltered. Labels are keyed by global chunk id, so a shard sees
 * the same labels as the unsharded corpus.
 */
constexpr size_t kNumChunkLabels = 8;
constexpr uint16_t kFilterAll = 0xffff;

uint16_t chunkLabel(uint64_t chunk, uint64_t seed);

inline bool
passesFilter(uint16_t filter_mask, uint16_t label)
{
    return (filter_mask >> label) & 1u;
}

/**
 * Materialize one chunk's embedding row into `out` (dim elements).
 * `chunk` is global. Equivalent to dim calls of embeddingValueFor but
 * hoists the per-chunk topic lookup, which matters when an index
 * build or ground-truth scan walks millions of chunks.
 */
void genEmbeddingRow(const RagCorpusSpec &spec, uint64_t chunk,
                     uint64_t seed, int16_t *out);

/** Materialize embeddings for chunks [first, first+count). */
std::vector<int16_t> genEmbeddings(const RagCorpusSpec &spec,
                                   uint64_t first, uint64_t count,
                                   uint64_t seed);

/** Deterministic query vector in [-7, 7]. */
std::vector<int16_t> genQuery(size_t dim, uint64_t seed);

/**
 * Query drawn near `topic`'s center (clustered corpus model):
 * center plus small per-element jitter keyed by `seed`. Its exact
 * nearest neighbours concentrate in that topic's chunks.
 */
std::vector<int16_t> genQueryForTopic(const RagCorpusSpec &spec,
                                      size_t topic, uint64_t seed,
                                      uint64_t corpus_seed);

} // namespace cisram::baseline

#endif // CISRAM_BASELINE_WORKLOADS_HH
