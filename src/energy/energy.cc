#include "energy/energy.hh"

#include "common/logging.hh"
#include "common/metrics.hh"

namespace cisram::energy {

double
EnergyBreakdown::share(double rail) const
{
    double t = totalJ();
    return t > 0 ? 100.0 * rail / t : 0.0;
}

EnergyBreakdown
ApuPowerModel::energy(const ApuActivity &a) const
{
    cisram_assert(a.computeSeconds <= a.totalSeconds + 1e-12,
                  "compute time exceeds window");
    EnergyBreakdown e;
    e.staticJ = cfg.staticWatts * a.totalSeconds;
    e.computeJ = cfg.computeActiveWatts * a.computeSeconds;
    e.dramJ = cfg.dramPjPerBit * 8.0 * a.dramBytes * 1e-12;
    e.cacheJ = cfg.cachePjPerByte * a.cacheBytes * 1e-12;
    e.otherJ = cfg.otherWatts * a.totalSeconds;
    if (metrics::enabled()) {
        auto &reg = metrics::Registry::get();
        auto rail = [&](const char *name) -> metrics::Counter & {
            return reg.counter("energy.rail_joules",
                               {{"rail", name}});
        };
        rail("static").inc(e.staticJ);
        rail("compute").inc(e.computeJ);
        rail("dram").inc(e.dramJ);
        rail("cache").inc(e.cacheJ);
        rail("other").inc(e.otherJ);
        reg.histogram("energy.window_seconds").observe(a.totalSeconds);
    }
    return e;
}

} // namespace cisram::energy
