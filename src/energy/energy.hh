/**
 * @file
 * APU power and energy accounting (paper Section 5, Fig. 15).
 *
 * The paper profiles energy with a TI UCD9090 voltage monitor and
 * Renesas ISL8273M point-of-load modules, attributing energy to five
 * rails: static, compute, DRAM, cache, and other. This module
 * reproduces that methodology on top of the simulator's cycle and
 * byte counters. Rail power/energy coefficients are calibrated so
 * that the 200 GB RAG retrieval reproduces the paper's measured
 * breakdown (static 71.4%, compute 24.7%, DRAM 2.7%, other 1.1%,
 * cache 0.005%); the calibration is an input documented in
 * EXPERIMENTS.md, the per-size breakdowns and ratios are outputs.
 */

#ifndef CISRAM_ENERGY_ENERGY_HH
#define CISRAM_ENERGY_ENERGY_HH

#include <cstdint>
#include <string>

namespace cisram::energy {

/** Rail coefficients of the APU board power model. */
struct ApuPowerConfig
{
    /** Always-on power while the device is active (W). */
    double staticWatts = 24.1;

    /** Power of the bit-processor array while computing (W). */
    double computeActiveWatts = 9.42;

    /** Device-DRAM interface energy per bit moved (pJ/bit). */
    double dramPjPerBit = 4.0;

    /** On-chip SRAM (L1/L2/L3) energy per byte moved (pJ/B). */
    double cachePjPerByte = 0.05;

    /** Control processor, PCIe and board overhead (W). */
    double otherWatts = 0.37;
};

/** Activity observed for one measured window. */
struct ApuActivity
{
    double totalSeconds = 0;   ///< wall-clock window
    double computeSeconds = 0; ///< time the VXU was active
    double dramBytes = 0;      ///< bytes moved over the DRAM pins
    double cacheBytes = 0;     ///< bytes moved within L1/L2/L3
};

/** Per-rail energy in joules. */
struct EnergyBreakdown
{
    double staticJ = 0;
    double computeJ = 0;
    double dramJ = 0;
    double cacheJ = 0;
    double otherJ = 0;

    double
    totalJ() const
    {
        return staticJ + computeJ + dramJ + cacheJ + otherJ;
    }

    /** Share of one rail in percent of the total. */
    double share(double rail) const;
};

/** Point-of-load energy model for the APU board. */
class ApuPowerModel
{
  public:
    explicit ApuPowerModel(ApuPowerConfig cfg = ApuPowerConfig{})
        : cfg(cfg)
    {}

    EnergyBreakdown energy(const ApuActivity &activity) const;

    const ApuPowerConfig &config() const { return cfg; }

  private:
    ApuPowerConfig cfg;
};

/**
 * GPU retrieval energy as measured by nvidia-smi sampling
 * (Section 5.3.5). Coarse power sampling over a multi-query window
 * charges far more than kernel-latency x power for millisecond
 * kernels; the effective model calibrated against the paper's
 * reported ratios is a fixed per-query sampling overhead plus a
 * per-byte streaming term.
 */
struct GpuEnergyConfig
{
    double sampledWatts = 285.0;   ///< average sampled board power
    double overheadSeconds = 0.027;///< per-query sampling overhead
    double effBytesPerSec = 4.75e9;///< effective energy-charged rate
};

class GpuEnergyModel
{
  public:
    explicit GpuEnergyModel(GpuEnergyConfig cfg = GpuEnergyConfig{})
        : cfg(cfg)
    {}

    /** Energy charged to one top-k retrieval over `bytes` (J). */
    double
    retrievalEnergy(double bytes) const
    {
        double window =
            cfg.overheadSeconds + bytes / cfg.effBytesPerSec;
        return cfg.sampledWatts * window;
    }

    const GpuEnergyConfig &config() const { return cfg; }

  private:
    GpuEnergyConfig cfg;
};

} // namespace cisram::energy

#endif // CISRAM_ENERGY_ENERGY_HH
