/**
 * @file
 * A virtual RISC-V vector abstraction on APU microcode.
 *
 * The paper notes that programmers can build alternative vector
 * abstractions directly from microcode, citing Golden et al.'s
 * RISC-V vector mapping on this device (Section 2.2.2). This module
 * demonstrates it: a small RVV-flavoured instruction set (vle/vse,
 * vadd/vsub, logical ops, compares, shifts, merge) implemented
 * purely in terms of the bit-processor micro-operations of Table 2 —
 * no GVML word-level shortcuts on the datapath — with cycle costs
 * derived from the issued micro-op counts.
 *
 * Vector registers map 1:1 onto the APU's VRs; VLEN is the device's
 * 32768 x 16-bit geometry (SEW=16, LMUL=1).
 */

#ifndef CISRAM_RVV_RVV_HH
#define CISRAM_RVV_RVV_HH

#include <cstdint>

#include "apusim/apu.hh"

namespace cisram::rvv {

/**
 * The virtual vector unit, bound to one APU core.
 *
 * Registers v0..v15 are available to the program; v16..v23 are the
 * unit's microcode scratch (carry/propagate/generate chains and
 * mask staging), mirroring how a real mapping reserves VRs.
 */
class RvvUnit
{
  public:
    static constexpr unsigned numRegs = 16;

    explicit RvvUnit(apu::ApuCore &core);

    /** VLEN in elements (SEW = 16 bits). */
    size_t vl() const { return core_.vr().length(); }

    // ---- loads / stores (unit stride, via L1) --------------------
    /** vle16.v vd, (vmr): load a full vector register from L1. */
    void vle16(unsigned vd, unsigned vmr);

    /** vse16.v vs, (vmr): store a full vector register to L1. */
    void vse16(unsigned vmr, unsigned vs);

    // ---- integer arithmetic (bit-serial microcode) ----------------
    void vadd_vv(unsigned vd, unsigned vs1, unsigned vs2);
    void vsub_vv(unsigned vd, unsigned vs1, unsigned vs2);
    void vmul_vv(unsigned vd, unsigned vs1, unsigned vs2);

    // ---- logical (bit-parallel microcode) --------------------------
    void vand_vv(unsigned vd, unsigned vs1, unsigned vs2);
    void vor_vv(unsigned vd, unsigned vs1, unsigned vs2);
    void vxor_vv(unsigned vd, unsigned vs1, unsigned vs2);
    void vnot_v(unsigned vd, unsigned vs);

    // ---- shifts by immediate (slice moves) -------------------------
    void vsll_vi(unsigned vd, unsigned vs, unsigned shamt);
    void vsrl_vi(unsigned vd, unsigned vs, unsigned shamt);

    // ---- compares (mask result: all-ones / all-zeros) --------------
    /** vmseq.vv: vd = (vs1 == vs2) ? 0xffff : 0. */
    void vmseq_vv(unsigned vd, unsigned vs1, unsigned vs2);

    /** vmsltu.vv: vd = (vs1 < vs2 unsigned) ? 0xffff : 0. */
    void vmsltu_vv(unsigned vd, unsigned vs1, unsigned vs2);

    // ---- merge ------------------------------------------------------
    /** vmerge: vd = mask ? vs1 : vs2 (mask all-ones/all-zeros). */
    void vmerge_vvm(unsigned vd, unsigned vs1, unsigned vs2,
                    unsigned vmask);

    /** vmv.v.v */
    void vmv_v(unsigned vd, unsigned vs);

    // ---- accounting -------------------------------------------------
    /** Micro-ops issued by this unit so far. */
    uint64_t uops() const { return uopsIssued; }

    /** Direct element access for tests/host glue. */
    std::vector<uint16_t> &
    data(unsigned v)
    {
        checkReg(v);
        return core_.vr()[v];
    }

  private:
    void checkReg(unsigned v) const;

    /** Charge the cycles of a microcode sequence (1 cycle/uop). */
    void
    charge(uint64_t uops)
    {
        uopsIssued += uops;
        core_.chargeRaw(uops);
    }

    // Scratch register assignments (v16..v23).
    static constexpr unsigned sCarry = 16, sProp = 17, sGen = 18,
                              sNb = 19, sMask = 20, sPartial = 21,
                              sT0 = 22, sT1 = 23;

    apu::ApuCore &core_;
    apu::BitProcArray &bp;
    uint64_t uopsIssued = 0;
};

} // namespace cisram::rvv

#endif // CISRAM_RVV_RVV_HH
