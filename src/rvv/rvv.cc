#include "rvv/rvv.hh"

#include "common/logging.hh"
#include "gvml/microcode.hh"

namespace cisram::rvv {

using apu::BitProcArray;
using apu::BoolOp;
using apu::LatchSrc;

RvvUnit::RvvUnit(apu::ApuCore &core)
    : core_(core), bp(core.bitproc())
{
    cisram_assert(core.vr().numVrs() >= 24,
                  "RVV mapping needs 24 VRs");
}

void
RvvUnit::checkReg(unsigned v) const
{
    cisram_assert(v < numRegs, "vector register OOB: v", v);
}

void
RvvUnit::vle16(unsigned vd, unsigned vmr)
{
    checkReg(vd);
    core_.loadVr(vd, vmr);
}

void
RvvUnit::vse16(unsigned vmr, unsigned vs)
{
    checkReg(vs);
    core_.storeVr(vmr, vs);
}

void
RvvUnit::vadd_vv(unsigned vd, unsigned vs1, unsigned vs2)
{
    checkReg(vd);
    checkReg(vs1);
    checkReg(vs2);
    charge(gvml::mcAddU16(bp, vd, vs1, vs2, sCarry, sProp, sGen));
}

void
RvvUnit::vsub_vv(unsigned vd, unsigned vs1, unsigned vs2)
{
    checkReg(vd);
    checkReg(vs1);
    checkReg(vs2);
    charge(gvml::mcSubU16(bp, vd, vs1, vs2, sCarry, sProp, sGen,
                          sNb));
}

void
RvvUnit::vmul_vv(unsigned vd, unsigned vs1, unsigned vs2)
{
    checkReg(vd);
    checkReg(vs1);
    checkReg(vs2);
    cisram_assert(vd != vs1 && vd != vs2,
                  "vmul destination must not alias a source");
    charge(gvml::mcMulU16(bp, vd, vs1, vs2, sMask, sPartial, sCarry,
                          sProp, sGen));
}

void
RvvUnit::vand_vv(unsigned vd, unsigned vs1, unsigned vs2)
{
    checkReg(vd);
    checkReg(vs1);
    checkReg(vs2);
    uint64_t start = bp.uopCount();
    bp.rlFromVrAndVr(BitProcArray::fullMask, vs1, vs2);
    bp.writeVrFromRl(BitProcArray::fullMask, vd);
    charge(bp.uopCount() - start);
}

void
RvvUnit::vor_vv(unsigned vd, unsigned vs1, unsigned vs2)
{
    checkReg(vd);
    checkReg(vs1);
    checkReg(vs2);
    uint64_t start = bp.uopCount();
    bp.rlFromVr(BitProcArray::fullMask, vs1);
    bp.rlOpVr(BitProcArray::fullMask, BoolOp::Or, vs2);
    bp.writeVrFromRl(BitProcArray::fullMask, vd);
    charge(bp.uopCount() - start);
}

void
RvvUnit::vxor_vv(unsigned vd, unsigned vs1, unsigned vs2)
{
    checkReg(vd);
    checkReg(vs1);
    checkReg(vs2);
    charge(gvml::mcXor16(bp, vd, vs1, vs2, sT0));
}

void
RvvUnit::vnot_v(unsigned vd, unsigned vs)
{
    checkReg(vd);
    checkReg(vs);
    uint64_t start = bp.uopCount();
    bp.rlFromVr(BitProcArray::fullMask, vs);
    bp.writeVrFromRl(BitProcArray::fullMask, vd, /*negate=*/true);
    charge(bp.uopCount() - start);
}

void
RvvUnit::vsll_vi(unsigned vd, unsigned vs, unsigned shamt)
{
    checkReg(vd);
    checkReg(vs);
    cisram_assert(shamt < 16, "shift amount OOB");
    uint64_t start = bp.uopCount();
    bp.rlFromVr(BitProcArray::fullMask, vs);
    for (unsigned k = 0; k < shamt; ++k)
        bp.rlFromLatch(BitProcArray::fullMask, LatchSrc::RL_S);
    bp.writeVrFromRl(BitProcArray::fullMask, vd);
    charge(bp.uopCount() - start);
}

void
RvvUnit::vsrl_vi(unsigned vd, unsigned vs, unsigned shamt)
{
    checkReg(vd);
    checkReg(vs);
    cisram_assert(shamt < 16, "shift amount OOB");
    uint64_t start = bp.uopCount();
    bp.rlFromVr(BitProcArray::fullMask, vs);
    for (unsigned k = 0; k < shamt; ++k)
        bp.rlFromLatch(BitProcArray::fullMask, LatchSrc::RL_N);
    bp.writeVrFromRl(BitProcArray::fullMask, vd);
    charge(bp.uopCount() - start);
}

void
RvvUnit::vmseq_vv(unsigned vd, unsigned vs1, unsigned vs2)
{
    checkReg(vd);
    checkReg(vs1);
    checkReg(vs2);
    uint64_t start = bp.uopCount();
    gvml::mcXor16(bp, sT1, vs1, vs2, sT0);
    bp.rlFromVr(BitProcArray::fullMask, sT1);
    bp.writeVrFromRl(BitProcArray::fullMask, sT1, /*negate=*/true);
    gvml::mcAllBitsSet(bp, vd, sT1);
    charge(bp.uopCount() - start);
}

void
RvvUnit::vmsltu_vv(unsigned vd, unsigned vs1, unsigned vs2)
{
    checkReg(vd);
    checkReg(vs1);
    checkReg(vs2);
    uint64_t start = bp.uopCount();

    // a - b with carry-out: carry_out == 0  <=>  a < b.
    bp.rlFromVr(BitProcArray::fullMask, vs2);
    bp.writeVrFromRl(BitProcArray::fullMask, sNb, true);
    bp.rlFromImmediate(BitProcArray::fullMask, false);
    bp.writeVrFromRl(BitProcArray::fullMask, sCarry);
    bp.rlFromImmediate(0x0001, true);
    bp.writeVrFromRl(0x0001, sCarry);
    bp.rlFromVr(BitProcArray::fullMask, vs1);
    bp.rlOpVr(BitProcArray::fullMask, BoolOp::Xor, sNb);
    bp.writeVrFromRl(BitProcArray::fullMask, sProp);
    bp.rlFromVrAndVr(BitProcArray::fullMask, vs1, sNb);
    bp.writeVrFromRl(BitProcArray::fullMask, sGen);

    // Clear the staging register; only slice 15 will be written.
    bp.rlFromImmediate(BitProcArray::fullMask, false);
    bp.writeVrFromRl(BitProcArray::fullMask, sT0);

    // Ripple carries upward; the loop leaves each slice's carry-out
    // in sCarry's next slice, and materializes the final carry-out
    // (of slice 15) in slice 15 of sT0.
    for (unsigned i = 0; i < 16; ++i) {
        uint16_t m = static_cast<uint16_t>(1u << i);
        bp.rlFromVrAndVr(m, sProp, sCarry);
        bp.rlOpVr(m, BoolOp::Or, sGen);
        if (i < 15) {
            uint16_t m_next = static_cast<uint16_t>(1u << (i + 1));
            bp.rlFromLatch(m_next, LatchSrc::RL_S);
            bp.writeVrFromRl(m_next, sCarry);
        } else {
            bp.writeVrFromRl(0x8000, sT0);
        }
    }

    // Broadcast slice 15's carry-out down to every slice, invert:
    // vd = ~carry_out replicated (all-ones iff a < b).
    bp.rlFromVr(BitProcArray::fullMask, sT0);
    for (unsigned k = 0; k < 15; ++k)
        bp.rlOpLatch(BitProcArray::fullMask, BoolOp::Or,
                     LatchSrc::RL_N);
    bp.writeVrFromRl(BitProcArray::fullMask, vd, /*negate=*/true);
    charge(bp.uopCount() - start);
}

void
RvvUnit::vmerge_vvm(unsigned vd, unsigned vs1, unsigned vs2,
                    unsigned vmask)
{
    checkReg(vd);
    checkReg(vs1);
    checkReg(vs2);
    checkReg(vmask);
    uint64_t start = bp.uopCount();
    bp.rlFromVrAndVr(BitProcArray::fullMask, vs1, vmask);
    bp.writeVrFromRl(BitProcArray::fullMask, sT0);
    bp.rlFromVr(BitProcArray::fullMask, vmask);
    bp.writeVrFromRl(BitProcArray::fullMask, sT1, /*negate=*/true);
    bp.rlFromVrAndVr(BitProcArray::fullMask, vs2, sT1);
    bp.rlOpVr(BitProcArray::fullMask, BoolOp::Or, sT0);
    bp.writeVrFromRl(BitProcArray::fullMask, vd);
    charge(bp.uopCount() - start);
}

void
RvvUnit::vmv_v(unsigned vd, unsigned vs)
{
    checkReg(vd);
    checkReg(vs);
    uint64_t start = bp.uopCount();
    bp.rlFromVr(BitProcArray::fullMask, vs);
    bp.writeVrFromRl(BitProcArray::fullMask, vd);
    charge(bp.uopCount() - start);
}

} // namespace cisram::rvv
