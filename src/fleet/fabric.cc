#include "fleet/fabric.hh"

#include <string>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "fault/fault.hh"

namespace cisram::fleet {

Fabric::Fabric(unsigned devices, FabricConfig cfg)
    : cfg_(cfg), links_(devices), msgSerial_(devices, 0),
      wedgedDrop_(devices, 0), wedgedCorrupt_(devices, 0),
      severed_(devices, 0)
{
    cisram_assert(devices > 0, "fabric needs at least one link");
    cisram_assert(cfg_.bytesPerSec > 0 && cfg_.maxAttempts > 0,
                  "fabric config must be positive");
    fault::initFromEnv();
}

double
Fabric::attemptSeconds(uint64_t bytes) const
{
    return cfg_.latencySeconds +
        static_cast<double>(bytes) / cfg_.bytesPerSec;
}

bool
Fabric::wedged(unsigned device) const
{
    cisram_assert(device < devices(), "fabric link index OOB");
    return severed_[device] != 0 || wedgedDrop_[device] != 0 ||
        wedgedCorrupt_[device] != 0;
}

void
Fabric::sever(unsigned device)
{
    cisram_assert(device < devices(), "fabric link index OOB");
    severed_[device] = 1;
}

void
Fabric::resetLink(unsigned device)
{
    cisram_assert(device < devices(), "fabric link index OOB");
    severed_[device] = 0;
    wedgedDrop_[device] = 0;
    wedgedCorrupt_[device] = 0;
}

const LinkStats &
Fabric::stats(unsigned device) const
{
    cisram_assert(device < devices(), "fabric link index OOB");
    return links_[device];
}

StatusOr<double>
Fabric::transfer(unsigned device, uint64_t bytes)
{
    cisram_assert(device < devices(), "fabric link index OOB");
    LinkStats &ls = links_[device];
    ++ls.messages;
    auto &reg = metrics::Registry::get();
    const std::string dev_label = std::to_string(device);
    reg.counter("fleet.link.messages", {{"device", dev_label}})
        .inc();

    const fault::FaultPlan *fp = fault::plan();
    uint64_t msg = msgSerial_[device]++;
    double charged = 0;
    bool last_was_drop = false;

    for (unsigned attempt = 0; attempt < cfg_.maxAttempts;
         ++attempt) {
        ++ls.attempts;

        // A severed link never acks: the sender times out. Checked
        // before the draws so a kill does not consume draw
        // coordinates the clean run would have used.
        bool drop = severed_[device] != 0 ||
            wedgedDrop_[device] != 0;
        if (!drop && fp &&
            fp->drawLinkDrop(device, msg, attempt)) {
            drop = true;
            if (fp->clause(fault::Kind::LinkDrop).sticky)
                wedgedDrop_[device] = 1;
        }
        if (drop) {
            ++ls.drops;
            last_was_drop = true;
            charged += cfg_.dropTimeoutSeconds;
            ls.busySeconds += cfg_.dropTimeoutSeconds;
            reg.counter("fleet.link.faults",
                        {{"device", dev_label},
                         {"kind", "link_drop"}})
                .inc();
            continue;
        }

        bool corrupt = wedgedCorrupt_[device] != 0;
        if (!corrupt && fp &&
            fp->drawLinkCorrupt(device, msg, attempt)) {
            corrupt = true;
            if (fp->clause(fault::Kind::LinkCorrupt).sticky)
                wedgedCorrupt_[device] = 1;
        }

        // A corrupted payload still crosses the wire in full before
        // the receiver's CRC rejects it; a clean attempt pays the
        // same and delivers.
        double t = attemptSeconds(bytes);
        charged += t;
        ls.busySeconds += t;
        if (corrupt) {
            ++ls.corrupts;
            last_was_drop = false;
            reg.counter("fleet.link.faults",
                        {{"device", dev_label},
                         {"kind", "link_corrupt"}})
                .inc();
            continue;
        }
        if (attempt > 0)
            reg.counter("fleet.link.retries",
                        {{"device", dev_label}})
                .inc(static_cast<double>(attempt));
        return charged;
    }

    ++ls.failures;
    reg.counter("fleet.link.exhausted", {{"device", dev_label}})
        .inc();
    // Report the failure mode of the final attempt: a drop-dominated
    // exhaustion reads as an unreachable device, a CRC-dominated one
    // as a corrupting link.
    if (last_was_drop) {
        return Status::unavailable(detail::concat(
            "fabric link to device ", device, " dropped message #",
            msg, " ", cfg_.maxAttempts,
            " times (link down or severed)"));
    }
    return Status::dataCorruption(detail::concat(
        "fabric link to device ", device, " corrupted message #",
        msg, " on all ", cfg_.maxAttempts, " attempts"));
}

} // namespace cisram::fleet
