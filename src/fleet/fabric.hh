/**
 * @file
 * Deterministic host-to-device fabric model for the fleet router.
 *
 * Every scatter (query out) and gather (result back) crosses one
 * point-to-point link between the router host and a device; the
 * fabric charges that crossing on the simulated clock:
 *
 *   attempt = latencySeconds + bytes / bytesPerSec
 *
 * and injects the two fleet-level fault kinds of the
 * CISRAM_FAULT_SPEC grammar:
 *
 *   link_corrupt  payload CRC mismatch at the receiver: the attempt
 *                 is charged in full and retransmitted, up to
 *                 maxAttempts, then DataCorruption.
 *   link_drop     message lost in flight: the sender burns
 *                 dropTimeoutSeconds waiting for the ack, then
 *                 retransmits, up to maxAttempts, then Unavailable.
 *
 * Both honor `device=N` scoping (default: all links) and `sticky=1`
 * — a wedged link fails every later attempt until resetLink(), which
 * models the link retraining a device reset performs. A severed link
 * (sever(); the fleet kill switch) behaves like a sticky drop that
 * no draw preceded.
 *
 * Draws are pure hashes of (seed, kind, device, message, attempt),
 * exactly like the PCIe model in gdl: per-link message serials are
 * owned by the single-threaded router, so the injected sequence is
 * bit-identical for any CISRAM_SIM_THREADS.
 */

#ifndef CISRAM_FLEET_FABRIC_HH
#define CISRAM_FLEET_FABRIC_HH

#include <cstdint>
#include <vector>

#include "common/status.hh"

namespace cisram::fleet {

/** Per-link timing/retry parameters. */
struct FabricConfig
{
    /** One-way message latency, seconds (NIC + switch hop). */
    double latencySeconds = 2e-6;

    /** Link bandwidth, bytes per second (~PCIe Gen4 x16 fabric). */
    double bytesPerSec = 24e9;

    /** Delivery attempts before the transfer is abandoned. */
    unsigned maxAttempts = 4;

    /** Ack-timeout charged per dropped attempt, seconds. */
    double dropTimeoutSeconds = 50e-6;
};

/** One link's delivery ledger. */
struct LinkStats
{
    uint64_t messages = 0; ///< transfers requested
    uint64_t attempts = 0; ///< delivery attempts (>= messages)
    uint64_t drops = 0;    ///< attempts lost to link_drop
    uint64_t corrupts = 0; ///< attempts lost to link_corrupt
    uint64_t failures = 0; ///< transfers abandoned after retries
    double busySeconds = 0; ///< total simulated link time charged
};

/**
 * The router's N links, one per device. Single-threaded by design
 * (the router owns it); all timing is simulated seconds.
 */
class Fabric
{
  public:
    explicit Fabric(unsigned devices, FabricConfig cfg = {});

    unsigned devices() const
    {
        return static_cast<unsigned>(links_.size());
    }

    /**
     * Deliver `bytes` across the link to `device`. Returns the
     * simulated seconds the delivery cost (including every failed
     * attempt's charge), or Unavailable / DataCorruption once
     * maxAttempts are exhausted — the failed attempts' time is
     * still accounted in stats(device).busySeconds.
     */
    StatusOr<double> transfer(unsigned device, uint64_t bytes);

    /** True when a sticky fault (or sever) has wedged the link. */
    bool wedged(unsigned device) const;

    /**
     * Cut the link outright (fleet kill switch / chaos tooling):
     * every transfer fails immediately as Unavailable, charging one
     * ack timeout, until resetLink().
     */
    void sever(unsigned device);

    /**
     * Re-train the link: clears the severed state and any sticky
     * fault latch, the way a device reset re-enumerates its links.
     * Message serials keep counting — fault draws never rewind.
     */
    void resetLink(unsigned device);

    const LinkStats &stats(unsigned device) const;

  private:
    double attemptSeconds(uint64_t bytes) const;

    FabricConfig cfg_;
    std::vector<LinkStats> links_;
    std::vector<uint64_t> msgSerial_;
    std::vector<uint8_t> wedgedDrop_;    ///< sticky link_drop latch
    std::vector<uint8_t> wedgedCorrupt_; ///< sticky link_corrupt
    std::vector<uint8_t> severed_;       ///< kill-switch cut
};

} // namespace cisram::fleet

#endif // CISRAM_FLEET_FABRIC_HH
