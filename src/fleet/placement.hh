/**
 * @file
 * Consistent-hash shard placement for the fleet router.
 *
 * The router fronts N simulated APU devices and splits the corpus
 * into S contiguous chunk-range shards; each shard is staged on R
 * devices (its replica list). Placement must be:
 *
 *  - *deterministic*: a pure function of (S, N, R, config) — no RNG
 *    state, no iteration-order dependence — so every run and every
 *    CISRAM_SIM_THREADS count computes the identical map, and a
 *    bench snapshot taken today gates tomorrow's build;
 *  - *stable*: adding or removing one device moves only ~S/N shard
 *    primaries (pinned in test_fleet), because a re-placed shard is
 *    a re-staged shard — `restageBytes` of PCIe traffic each;
 *  - *balanced*: QPS is set by the busiest device, so the max
 *    primary load must stay near the S/N mean. Virtual nodes alone
 *    leave a ~2x tail at 16 devices, so primaries use consistent
 *    hashing with bounded loads: a shard walks clockwise from its
 *    own hash and the first device still under the load cap
 *    (ceil(S/N) + primaryLoadSlack) becomes its primary; the other
 *    distinct devices met on the walk are its failover replicas.
 *
 * The chunk ranges themselves are a plain contiguous partition
 * (shardChunkRange): shard geometry must not depend on device count
 * or the scatter-gather merge could not be bit-compared across
 * fleet sizes.
 */

#ifndef CISRAM_FLEET_PLACEMENT_HH
#define CISRAM_FLEET_PLACEMENT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cisram::fleet {

/** Ring-construction parameters (defaults fit 1..64 devices). */
struct PlacementConfig
{
    /**
     * Ring points per device. More vnodes smooth the walk order
     * (and with it, which shards a cap overflow displaces); the
     * load bound itself comes from primaryLoadSlack.
     */
    unsigned virtualNodes = 160;

    /**
     * Bounded-load cap headroom: no device is primary for more than
     * ceil(S/N) + primaryLoadSlack shards. Slack 1 pins the busiest
     * device within one shard of a perfect split — the 16-device
     * speedup floor in bench_fleet_scaling depends on this.
     */
    unsigned primaryLoadSlack = 1;

    /** Hash seed for ring and shard points. */
    uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/**
 * Place `shards` shards on `devices` devices with `replicas`-way
 * replication. Returns one device list per shard, in failover
 * priority order: entry 0 is the primary, the rest are the replicas
 * a failover walks in order. Devices are distinct within a list;
 * `replicas` is clamped to the device count.
 */
std::vector<std::vector<unsigned>>
placeShards(unsigned shards, unsigned devices, unsigned replicas,
            const PlacementConfig &cfg = {});

/** One shard's contiguous slice of the global chunk space. */
struct ShardRange
{
    size_t firstChunk = 0;
    size_t numChunks = 0;
};

/**
 * Contiguous partition of `totalChunks` into `shards` ranges; the
 * first `totalChunks % shards` ranges get one extra chunk. Depends
 * only on (totalChunks, shards) — never on the device count — so
 * shard contents are identical across fleet sizes.
 */
ShardRange shardChunkRange(size_t totalChunks, unsigned shards,
                           unsigned shard);

} // namespace cisram::fleet

#endif // CISRAM_FLEET_PLACEMENT_HH
