#include "fleet/placement.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cisram::fleet {

namespace {

/** SplitMix64 finalizer (same mixing family as the fault draws). */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::vector<std::vector<unsigned>>
placeShards(unsigned shards, unsigned devices, unsigned replicas,
            const PlacementConfig &cfg)
{
    cisram_assert(shards > 0, "placeShards: no shards");
    cisram_assert(devices > 0, "placeShards: no devices");
    cisram_assert(cfg.virtualNodes > 0,
                  "placeShards: virtualNodes must be positive");
    unsigned r = std::min(replicas == 0 ? 1u : replicas, devices);

    // The ring: virtualNodes points per device, sorted by hash.
    // Ties (astronomically unlikely) break by device id so the sort
    // is a total order and the map is reproducible everywhere.
    struct Point
    {
        uint64_t hash;
        unsigned device;
    };
    std::vector<Point> ring;
    ring.reserve(static_cast<size_t>(devices) * cfg.virtualNodes);
    for (unsigned d = 0; d < devices; ++d)
        for (unsigned v = 0; v < cfg.virtualNodes; ++v)
            ring.push_back(
                {mix(mix(cfg.seed ^ d) ^ (uint64_t(v) << 32)), d});
    std::sort(ring.begin(), ring.end(),
              [](const Point &a, const Point &b) {
                  if (a.hash != b.hash)
                      return a.hash < b.hash;
                  return a.device < b.device;
              });

    // Bounded-load primary cap: N * cap >= S + N > S, so some
    // under-cap device always exists on a full ring walk.
    unsigned cap =
        (shards + devices - 1) / devices + cfg.primaryLoadSlack;
    std::vector<unsigned> primaryLoad(devices, 0);

    std::vector<std::vector<unsigned>> out(shards);
    for (unsigned s = 0; s < shards; ++s) {
        uint64_t h = mix(cfg.seed ^ 0xf1ee7u ^ (uint64_t(s) << 20));
        size_t i = std::lower_bound(
                       ring.begin(), ring.end(), h,
                       [](const Point &p, uint64_t key) {
                           return p.hash < key;
                       }) -
            ring.begin();
        // Walk clockwise collecting every distinct device until one
        // of them is under the primary cap and r are in hand.
        std::vector<unsigned> walk;
        bool have_primary = false;
        for (size_t step = 0; step < ring.size(); ++step) {
            unsigned d = ring[(i + step) % ring.size()].device;
            if (std::find(walk.begin(), walk.end(), d) != walk.end())
                continue;
            walk.push_back(d);
            have_primary = have_primary || primaryLoad[d] < cap;
            if (have_primary && walk.size() >= r)
                break;
        }
        cisram_assert(have_primary && walk.size() >= r,
                      "placeShards: ring walk found ", walk.size(),
                      " of ", r, " replicas");
        // Primary = first under-cap device on the walk; the rest
        // keep walk order as the failover priority list.
        std::vector<unsigned> &list = out[s];
        for (unsigned d : walk)
            if (list.empty() && primaryLoad[d] < cap)
                list.push_back(d);
        for (unsigned d : walk) {
            if (list.size() >= r)
                break;
            if (d != list[0])
                list.push_back(d);
        }
        ++primaryLoad[list[0]];
    }
    return out;
}

ShardRange
shardChunkRange(size_t totalChunks, unsigned shards, unsigned shard)
{
    cisram_assert(shards > 0 && shard < shards,
                  "shardChunkRange: shard index OOB");
    cisram_assert(totalChunks >= shards,
                  "shardChunkRange: fewer chunks than shards");
    size_t base = totalChunks / shards;
    size_t extra = totalChunks % shards;
    ShardRange out;
    out.numChunks = base + (shard < extra ? 1 : 0);
    out.firstChunk = shard * base + std::min<size_t>(shard, extra);
    return out;
}

} // namespace cisram::fleet
