/**
 * @file
 * Fleet-scale sharded serving: a router fronting N simulated APU
 * devices with replicated shards, scatter-gather top-k merge, and
 * failover that preserves exactly-once delivery.
 *
 * The paper characterizes one device; ROADMAP item 1 asks what the
 * serving story looks like when the corpus outgrows it. The answer
 * here:
 *
 *  - The corpus splits into S contiguous chunk-range shards
 *    (placement.hh), each staged on R devices chosen by consistent
 *    hashing. Shard geometry never depends on the device count, so
 *    results are comparable — bit-identical, in functional mode —
 *    across fleet sizes.
 *  - A query scatters to every shard's primary replica over the
 *    fabric (fabric.hh: per-link latency/bandwidth charged on the
 *    simulated clock, link_drop/link_corrupt injectable per
 *    device), is served by that device's DeviceServer (the full
 *    PR-5 recovery ladder: retry, breaker, CPU fallback,
 *    quarantine, reset + journal replay), and the per-shard top-ks
 *    merge on the router: shard-local hit ids are offset by the
 *    shard's firstChunk and re-ranked (score desc, id asc) — the
 *    same order the global index uses, so merged top-k == the
 *    unsharded answer exactly.
 *  - Failover: a device whose health ladder reaches
 *    Quarantined/Resetting — or that the bench kills outright — has
 *    its in-flight journaled queries *evacuated*: handed off in
 *    admission order and replayed on the next replica with their
 *    original admission timestamps. Journal ids are namespaced per
 *    device ((device+1) << 48 | (shard+1) << 32 | query), so the
 *    replica's journal admits the replay as a fresh id while the
 *    router's fleet-level ledger still completes the *query*
 *    exactly once. Zero drops: an admission only ever fails loudly
 *    (ResourceExhausted) when every replica refuses it.
 *
 * Latency accounting reuses the flight-recorder contract: for every
 * delivered query, (wait + shard_gather) + (failover + topk_merge)
 * re-adds bit-exactly to the reported fleet latency, where
 * shard_gather is the slowest shard's send + serve + return path.
 * QPS is queries / the busiest device's busy seconds — the same
 * makespan definition rag_service uses, one level up.
 */

#ifndef CISRAM_FLEET_FLEET_HH
#define CISRAM_FLEET_FLEET_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "apusim/apu.hh"
#include "baseline/faisslite.hh"
#include "baseline/workloads.hh"
#include "common/metrics.hh"
#include "common/status.hh"
#include "fault/fault.hh"
#include "fleet/fabric.hh"
#include "fleet/placement.hh"
#include "kernels/serving.hh"
#include "obs/flight.hh"

namespace cisram::fleet {

/** Fleet topology + per-shard serving configuration. */
struct FleetConfig
{
    unsigned devices = 4;

    /** Replication factor R: devices each shard is staged on. */
    unsigned replicas = 1;

    /** Corpus shards S (0 = two per device). */
    unsigned shards = 0;

    /**
     * Simulated cores per device the shard servers spread over
     * (round-robin). One core keeps per-device load a smooth
     * function of its shard count; the paper device has four.
     */
    unsigned coresPerDevice = 1;

    /** Build golden indexes + exact results (small corpora only). */
    bool functional = false;

    size_t topK = 5;

    /**
     * Base per-shard DeviceServer config. The router owns the
     * recovery ladder story, so health.enabled is forced on, and
     * topK / deviceIndex are overwritten per server.
     */
    kernels::ServerConfig server;

    FabricConfig fabric;
    PlacementConfig placement;

    /**
     * Router-side merge cost per candidate hit (S * topK candidates
     * per query): a handful of ns each for the heap insert on a
     * host core.
     */
    double mergeSecondsPerCandidate = 25e-9;

    /** Router flight-recorder enablement. */
    obs::FlightConfig flight;

    /**
     * Per-tenant in-flight admission quota at the router: a tenant
     * at its cap has further admissions shed loudly
     * (ResourceExhausted, reason="quota") *before* they are
     * journaled, so one tenant's burst cannot starve the fleet.
     * Tenants without an entry are unlimited.
     */
    struct TenantQuota
    {
        std::string tenant;
        uint64_t maxInFlight = 0;
    };
    std::vector<TenantQuota> quotas;
};

/**
 * Check every armed clause's `device=` scope against the actual
 * fleet size: a clause targeting a device that does not exist is an
 * InvalidArgument naming the token (a typo'd campaign must not
 * silently inject nothing). The parse-time bound (kMaxFaultDevices)
 * cannot catch this — only the router knows N.
 */
Status validateFaultPlanForFleet(const fault::FaultPlan &plan,
                                 unsigned devices);

/** One query's merged, fleet-level outcome. */
struct FleetOutcome
{
    uint64_t id = 0;
    bool ok = false;

    /** Global chunk ids of the merged top-k (functional mode). */
    std::vector<uint32_t> ids;

    /** Merged scored hits, global ids (functional mode). */
    std::vector<baseline::Hit> hits;

    double admitSeconds = 0;  ///< router arrival time
    double gatherSeconds = 0; ///< slowest shard send+serve+return
    double hostSeconds = 0;   ///< failover resends + top-k merge
    double fabricSeconds = 0; ///< total fabric charge, all shards

    /** End-to-end fleet latency: (wait + gather) + host. */
    double latencySeconds = 0;

    unsigned failovers = 0;    ///< shard re-routes this query took
    bool allFromDevice = true; ///< no shard needed the CPU fallback

    /** Tenant + SLO class the query admitted under. */
    kernels::AdmitClass cls;

    /**
     * Corpus epoch the query admitted under — the snapshot its
     * answer is consistent with, and the golden it bit-compares
     * against.
     */
    uint64_t epoch = 0;
};

/**
 * The fleet router. Single-threaded by design (determinism comes
 * from simulated clocks, like every serving layer below it); one
 * router owns its devices, servers, fabric, and ledger.
 *
 * Usage mirrors DeviceServer one level up:
 *   router.admit(id, query, arrival);
 *   for (auto &o : router.pump()) ...   // merged outcomes
 *   for (auto &o : router.drain()) ...  // flush + failover
 */
class Router
{
  public:
    Router(const baseline::RagCorpusSpec &corpus,
           uint64_t corpus_seed, FleetConfig cfg);

    /**
     * Admit one query at router-clock `arrival_seconds`: journal it
     * fleet-wide, then scatter a sub-query to every shard's first
     * healthy replica (router breaker + liveness gated, hedged to
     * the next replica on refusal). ResourceExhausted only when
     * every replica of some shard refuses — never a silent drop.
     * `search` rides with the query through every hop — scatter,
     * shard batching, failover replay — and each shard applies it
     * against its own per-shard clustering (nprobe > 0 needs
     * cfg.server.ivf.enabled).
     */
    Status admit(uint64_t id, std::vector<int16_t> query,
                 double arrival_seconds = 0.0,
                 kernels::RagSearchParams search = {},
                 kernels::AdmitClass cls = {});

    /** Serve ready batches fleet-wide; merged outcomes, id order. */
    std::vector<FleetOutcome> pump();

    /**
     * pump() for open-loop traffic: also closes out batches whose
     * oldest admission has aged past the servers'
     * BatchPolicy::maxLingerSeconds as of observed arrival clock
     * `now` (see DeviceServer::pumpUntil).
     */
    std::vector<FleetOutcome> pumpUntil(double now);

    /**
     * One shard's next corpus epoch, produced by the mutation plan
     * (load/mutation.hh): the shard's new overlay view (shared so
     * the router can keep it alive for its servers' lifetime), the
     * shard-local chunk count under that view, and the incremental
     * re-stage bytes each replica pays.
     */
    struct ShardEpochUpdate
    {
        unsigned shard = 0;
        std::shared_ptr<const baseline::CorpusEpochView> view;
        uint64_t numChunks = 0;
        uint64_t deltaBytes = 0;
    };

    /**
     * Advance the fleet to corpus epoch `new_epoch` (must be the
     * current epoch + 1). The epoch barrier is a fleet-wide drain()
     * — every query admitted under the old epoch merges against the
     * old snapshot first; those outcomes are returned. Then every
     * *live* replica of each updated shard applies its epoch-tagged
     * incremental re-stage (DeviceServer::applyMutation). A killed
     * device stays at its stale epoch forever: it can never serve
     * again (dispatch skips dead devices), so no query observes a
     * mixed snapshot. Queries admitted after this call are pinned
     * to `new_epoch`.
     */
    std::vector<FleetOutcome>
    applyMutation(uint64_t new_epoch,
                  const std::vector<ShardEpochUpdate> &updates);

    /** Corpus epoch new admissions are pinned to. */
    uint64_t corpusEpoch() const { return epoch_; }

    /** A tenant's queries currently in flight (quota accounting). */
    uint64_t tenantInFlight(const std::string &tenant) const;

    /**
     * Serve everything outstanding: drains every live device
     * (their own ladders may reset + replay internally), evacuates
     * and replays dead devices' in-flight queries on replicas, and
     * merges. On return the fleet ledger is empty — every admitted
     * query has exactly one merged outcome.
     */
    std::vector<FleetOutcome> drain();

    /**
     * Kill a device mid-stream (bench/chaos): sever its fabric
     * link, quarantine its shard servers, and evacuate + re-route
     * its in-flight journaled queries to replicas with their
     * original admission timestamps.
     */
    void killDevice(unsigned device);

    unsigned devices() const
    {
        return static_cast<unsigned>(fleet_.size());
    }
    unsigned shards() const { return shards_; }
    const std::vector<std::vector<unsigned>> &placement() const
    {
        return placement_;
    }

    /**
     * A device's busy clock: shard servers round-robined onto the
     * same core serialize (their busy clocks add); the device is as
     * busy as its busiest core.
     */
    double deviceBusySeconds(unsigned device) const;

    /** Fleet makespan: the busiest device (QPS denominator). */
    double makespanSeconds() const;

    /** Total simulated seconds charged on all fabric links. */
    double fabricBusySeconds() const;

    const Fabric &fabric() const { return fabric_; }
    const obs::FlightRecorder &flightRecorder() const
    {
        return flight_;
    }

    /** Fleet-ledger introspection (exactly-once verification). */
    size_t ledgerOutstanding() const
    {
        return ledger_.outstanding();
    }
    size_t ledgerAdmitted() const { return ledger_.admitted(); }

    /** Shard re-routes taken fleet-wide (admission + evacuation). */
    uint64_t failovers() const { return failovers_; }

    /** Queries evacuated off dead devices and replayed. */
    uint64_t evacuatedQueries() const { return evacuated_; }

    /**
     * The shard server hosting `shard` on `device`, or nullptr if
     * that replica does not live there (tests, introspection).
     */
    kernels::DeviceServer *server(unsigned device, unsigned shard);

    /**
     * Per-device served-latency histograms rolled up with
     * Histogram::merge — quantiles identical to observing the
     * pooled samples directly (pinned in test_obs).
     */
    metrics::Histogram mergedDeviceLatency() const;

    /**
     * Namespaced sub-query journal id: (device+1) << 48 |
     * (shard+1) << 32 | query. Distinct per (device, shard), so a
     * failover replay admits under a fresh id and exactly-once
     * holds per journal *and* fleet-wide.
     */
    static uint64_t subQueryId(unsigned device, unsigned shard,
                               uint64_t query_id);

  private:
    /** One shard replica resident on one device. */
    struct ShardServer
    {
        unsigned shard = 0;
        ShardRange range;
        baseline::RagCorpusSpec spec;
        std::unique_ptr<baseline::IndexFlatI16> golden;
        std::unique_ptr<kernels::DeviceServer> server;

        /**
         * The epoch overlay this replica's spec points at. Shared
         * with the mutation plan; must outlive the server (the
         * retriever holds the spec by value, view by pointer).
         */
        std::shared_ptr<const baseline::CorpusEpochView> view;
    };

    /** One simulated device and the shard replicas it hosts. */
    struct FleetDevice
    {
        std::unique_ptr<apu::ApuDevice> dev;
        std::vector<ShardServer> servers;
        bool killed = false;
    };

    /** Per-(query, shard) scatter state. */
    struct SubState
    {
        unsigned device = 0;      ///< current assignee
        unsigned nextReplica = 0; ///< failover walk position
        double arrivalSeconds = 0;
        double sendSeconds = 0;      ///< successful-send charge
        double returnSeconds = 0;    ///< result-gather charge
        double extraHostSeconds = 0; ///< failover resend charges
        unsigned failovers = 0;
        unsigned attempts = 0;
        bool done = false;
        bool fromDevice = true;
        double pathSeconds = 0; ///< send + served + return
        std::vector<baseline::Hit> hits; ///< globalized ids
    };

    struct QueryState
    {
        uint64_t id = 0;
        std::vector<int16_t> query;
        kernels::RagSearchParams search;
        kernels::AdmitClass cls;
        uint64_t epoch = 0; ///< corpus epoch pinned at admission
        double admitSeconds = 0;
        std::vector<SubState> subs;
        size_t remaining = 0;
        bool finished = false;
        bool failed = false; ///< some shard exhausted every replica
    };

    bool deviceAlive(unsigned device) const;
    ShardServer *replicaOn(unsigned device, unsigned shard);

    /**
     * Route one sub-query to the first healthy replica of `shard`,
     * starting the walk after any device it already failed on.
     * Charges sends (successful one into sendSeconds, dead-end ones
     * into extraHostSeconds) and enqueues with `admit_seconds` —
     * the *original* admission time on a failover re-dispatch. The
     * sub-query cannot reach the replica before `not_before` (the
     * kill/evacuation time): arrival ratchets past it.
     */
    Status dispatchShard(QueryState &qs, unsigned shard,
                         double admit_seconds,
                         double not_before = 0);

    /** Fold one server's served outcomes into the scatter states. */
    void collect(unsigned device,
                 std::vector<kernels::ServeOutcome> outs);

    /** Merge a fully-gathered query; completes the ledger. */
    FleetOutcome finishQuery(QueryState &qs);

    /** Finished-and-unreported queries, in admission order. */
    std::vector<FleetOutcome> reapFinished();

    /** Evacuate + re-route a dead device's in-flight queries. */
    void evacuateDevice(unsigned device);

    baseline::RagCorpusSpec corpus_;
    uint64_t corpusSeed_;
    FleetConfig cfg_;
    unsigned shards_;
    std::vector<std::vector<unsigned>> placement_;
    Fabric fabric_;
    std::vector<FleetDevice> fleet_;
    std::vector<kernels::CircuitBreaker> routerBreakers_;
    recovery::ReplayJournal<kernels::QueryPayload> ledger_;
    obs::FlightRecorder flight_;
    std::vector<QueryState> queries_; ///< admission order
    std::unordered_map<uint64_t, size_t> queryIndex_;
    uint64_t failovers_ = 0;
    uint64_t evacuated_ = 0;
    uint64_t epoch_ = 0; ///< epoch new admissions pin to
    std::unordered_map<std::string, uint64_t> tenantInFlight_;
};

} // namespace cisram::fleet

#endif // CISRAM_FLEET_FLEET_HH
