#include "fleet/fleet.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"

namespace cisram::fleet {

namespace {

/** Fixed per-message framing overhead (headers, descriptors). */
constexpr uint64_t kMsgHeaderBytes = 64;

/** Scatter message: header + the int16 query vector. */
uint64_t
queryBytes(size_t dim)
{
    return kMsgHeaderBytes + static_cast<uint64_t>(dim) * 2;
}

/** Gather message: header + top-k (id, score) pairs. */
uint64_t
resultBytes(size_t topk)
{
    return kMsgHeaderBytes + static_cast<uint64_t>(topk) * 8;
}

std::string
devLabel(unsigned device)
{
    return std::to_string(device);
}

} // namespace

Status
validateFaultPlanForFleet(const fault::FaultPlan &plan,
                          unsigned devices)
{
    for (unsigned k = 0;
         k < static_cast<unsigned>(fault::Kind::kCount); ++k) {
        const fault::Kind kind = static_cast<fault::Kind>(k);
        const fault::Clause &c = plan.clause(kind);
        if (!c.enabled || c.device < 0)
            continue;
        if (static_cast<unsigned>(c.device) >= devices) {
            return Status::invalidArgument(detail::concat(
                "fault spec clause '", fault::kindName(kind),
                "': device=", c.device, " out of range for a ",
                devices, "-device fleet"));
        }
    }
    return Status::okStatus();
}

uint64_t
Router::subQueryId(unsigned device, unsigned shard,
                   uint64_t query_id)
{
    cisram_assert(device < 0xffffu && shard < 0xffffu &&
                      query_id < (1ull << 32),
                  "subQueryId: field out of range");
    return (static_cast<uint64_t>(device) + 1) << 48 |
        (static_cast<uint64_t>(shard) + 1) << 32 | query_id;
}

Router::Router(const baseline::RagCorpusSpec &corpus,
               uint64_t corpus_seed, FleetConfig cfg)
    : corpus_(corpus), corpusSeed_(corpus_seed),
      cfg_(std::move(cfg)),
      shards_(cfg_.shards ? cfg_.shards : cfg_.devices * 2),
      placement_(placeShards(shards_, cfg_.devices, cfg_.replicas,
                             cfg_.placement)),
      fabric_(cfg_.devices, cfg_.fabric),
      flight_(0, cfg_.flight)
{
    cisram_assert(cfg_.devices > 0, "fleet needs devices");
    cisram_assert(cfg_.coresPerDevice > 0 &&
                      cfg_.coresPerDevice <= 4,
                  "coresPerDevice must be 1..4");
    cisram_assert(corpus_.numChunks >= shards_,
                  "fleet: fewer corpus chunks than shards");
    cisram_assert(corpus_.firstChunk == 0,
                  "fleet: the router shards a whole corpus");

    // The Fabric ctor armed the env fault plan; a clause scoped to
    // a device this fleet does not have is a configuration error,
    // not a no-op.
    if (const fault::FaultPlan *fp = fault::plan()) {
        Status st = validateFaultPlanForFleet(*fp, cfg_.devices);
        cisram_assert(st.ok(), "fleet: ", st.message());
    }

    routerBreakers_.reserve(cfg_.devices);
    for (unsigned d = 0; d < cfg_.devices; ++d)
        routerBreakers_.emplace_back(cfg_.server.breakerThreshold,
                                     cfg_.server.breakerCooldown);

    apu::ApuSpec spec = apu::defaultSpec();
    spec.numCores = cfg_.coresPerDevice;

    fleet_.resize(cfg_.devices);
    for (unsigned d = 0; d < cfg_.devices; ++d) {
        FleetDevice &fd = fleet_[d];
        fd.dev = std::make_unique<apu::ApuDevice>(spec);
        if (!cfg_.functional)
            for (unsigned c = 0; c < spec.numCores; ++c)
                fd.dev->core(c).setMode(apu::ExecMode::TimingOnly);

        for (unsigned s = 0; s < shards_; ++s) {
            const std::vector<unsigned> &prio = placement_[s];
            if (std::find(prio.begin(), prio.end(), d) ==
                prio.end())
                continue;

            ShardServer ss;
            ss.shard = s;
            ss.range = shardChunkRange(corpus_.numChunks, shards_,
                                       s);
            ss.spec = corpus_;
            ss.spec.corpusBytes = corpus_.corpusBytes *
                (static_cast<double>(ss.range.numChunks) /
                 static_cast<double>(corpus_.numChunks));
            ss.spec.numChunks = ss.range.numChunks;
            ss.spec.firstChunk = ss.range.firstChunk;

            if (cfg_.functional) {
                ss.golden = std::make_unique<baseline::IndexFlatI16>(
                    corpus_.dim);
                std::vector<int16_t> emb = baseline::genEmbeddings(
                    ss.spec, ss.range.firstChunk,
                    ss.range.numChunks, corpusSeed_);
                ss.golden->add(emb.data(), ss.range.numChunks);
            }

            kernels::ServerConfig scfg = cfg_.server;
            scfg.topK = cfg_.topK;
            scfg.deviceIndex = d;
            // The router's failover/evacuation story needs the
            // ladder: a killed device must quarantine, not crash.
            scfg.health.enabled = true;
            unsigned core = static_cast<unsigned>(
                                fd.servers.size()) %
                cfg_.coresPerDevice;

            ss.server = std::make_unique<kernels::DeviceServer>(
                *fd.dev, ss.spec, core, ss.golden.get(),
                corpusSeed_, scfg);
            fd.servers.push_back(std::move(ss));
        }
    }
}

bool
Router::deviceAlive(unsigned device) const
{
    return !fleet_[device].killed && !fabric_.wedged(device);
}

Router::ShardServer *
Router::replicaOn(unsigned device, unsigned shard)
{
    for (ShardServer &ss : fleet_[device].servers)
        if (ss.shard == shard)
            return &ss;
    return nullptr;
}

kernels::DeviceServer *
Router::server(unsigned device, unsigned shard)
{
    cisram_assert(device < devices(), "fleet: device index OOB");
    ShardServer *ss = replicaOn(device, shard);
    return ss ? ss->server.get() : nullptr;
}

Status
Router::dispatchShard(QueryState &qs, unsigned shard,
                      double admit_seconds, double not_before)
{
    SubState &sub = qs.subs[shard];
    const std::vector<unsigned> &prio = placement_[shard];
    auto &reg = metrics::Registry::get();
    std::string last_err = "no replica admitted it";

    auto count_failover = [&](unsigned device) {
        ++sub.failovers;
        ++failovers_;
        reg.counter("fleet.failover", {{"device", devLabel(device)}})
            .inc();
    };

    while (sub.nextReplica < prio.size()) {
        unsigned d = prio[sub.nextReplica++];

        // Locally-known dead ends cost nothing: a severed/wedged
        // link or an Open router breaker skips without a send.
        if (!deviceAlive(d)) {
            count_failover(d);
            last_err = detail::concat("device ", d, " is down");
            continue;
        }
        if (!routerBreakers_[d].allowRequest()) {
            count_failover(d);
            last_err = detail::concat("device ", d,
                                      " breaker open");
            continue;
        }

        double before = fabric_.stats(d).busySeconds;
        StatusOr<double> tr =
            fabric_.transfer(d, queryBytes(corpus_.dim));
        double charged = fabric_.stats(d).busySeconds - before;
        if (!tr.ok()) {
            routerBreakers_[d].recordFailure();
            sub.extraHostSeconds += charged;
            count_failover(d);
            last_err = tr.status().message();
            continue;
        }

        ShardServer *ss = replicaOn(d, shard);
        cisram_assert(ss != nullptr, "fleet: placement says shard ",
                      shard, " lives on device ", d,
                      " but no server is staged there");
        // Snapshot consistency: a sub-query only ever lands on a
        // replica serving exactly the epoch it admitted under. The
        // fleet-wide drain barrier in applyMutation makes this an
        // invariant; a violation is a router bug, not load.
        cisram_assert(ss->server->corpusEpoch() == qs.epoch,
                      "fleet: query #", qs.id, " admitted at epoch ",
                      qs.epoch, " but shard ", shard, " on device ",
                      d, " serves epoch ",
                      ss->server->corpusEpoch());

        double arrival =
            std::max(admit_seconds, not_before) + *tr;
        ss->server->advanceClock(arrival);
        Status est = ss->server->enqueueAt(
            subQueryId(d, shard, qs.id), qs.query, arrival,
            qs.search, qs.cls);
        if (!est.ok()) {
            // The send was spent but the replica shed it; hedge to
            // the next replica.
            routerBreakers_[d].recordFailure();
            sub.extraHostSeconds += charged;
            count_failover(d);
            last_err = est.message();
            continue;
        }

        routerBreakers_[d].recordSuccess();
        reg.counter("fleet.scatter.subqueries",
                    {{"tenant", qs.cls.tenant},
                     {"slo_class",
                      std::to_string(qs.cls.sloClass)}})
            .inc();
        sub.device = d;
        sub.arrivalSeconds = arrival;
        sub.sendSeconds = *tr;
        return Status::okStatus();
    }

    return Status::resourceExhausted(detail::concat(
        "fleet: shard ", shard, " unroutable for query #", qs.id,
        ": ", last_err));
}

Status
Router::admit(uint64_t id, std::vector<int16_t> query,
              double arrival_seconds,
              kernels::RagSearchParams search,
              kernels::AdmitClass cls)
{
    cisram_assert(query.size() == corpus_.dim,
                  "fleet: query dim mismatch");
    cisram_assert(queryIndex_.find(id) == queryIndex_.end(),
                  "fleet: duplicate admission of query #", id);
    cisram_assert(search.nprobe == 0 || cfg_.server.ivf.enabled,
                  "fleet: query #", id, " requests nprobe=",
                  search.nprobe,
                  " but the fleet's servers have no IVF clustering");

    // Per-tenant quota, checked before the ledger ever sees the
    // query: a quota shed is never journaled, so exactly-once
    // accounting stays clean (only admitted queries owe outcomes).
    for (const FleetConfig::TenantQuota &q : cfg_.quotas) {
        if (q.tenant != cls.tenant || q.maxInFlight == 0)
            continue;
        uint64_t inflight = tenantInFlight(cls.tenant);
        if (inflight >= q.maxInFlight) {
            metrics::Registry::get()
                .counter("recovery.shed",
                         {{"site", "router"},
                          {"reason", "quota"},
                          {"tenant", cls.tenant},
                          {"slo_class",
                           std::to_string(cls.sloClass)}})
                .inc();
            flight_.recordShed(id, arrival_seconds, "quota");
            return Status::resourceExhausted(detail::concat(
                "fleet: tenant '", cls.tenant, "' is at its ",
                q.maxInFlight, "-query in-flight quota, query #",
                id, " shed"));
        }
    }

    ledger_.admit(id, kernels::QueryPayload{query, search, cls},
                  arrival_seconds);
    flight_.recordAdmit(id, arrival_seconds);
    ++tenantInFlight_[cls.tenant];

    queryIndex_[id] = queries_.size();
    queries_.push_back({});
    QueryState &qs = queries_.back();
    qs.id = id;
    qs.query = std::move(query);
    qs.search = search;
    qs.cls = std::move(cls);
    qs.epoch = epoch_;
    qs.admitSeconds = arrival_seconds;
    qs.subs.resize(shards_);
    qs.remaining = shards_;

    Status first_err = Status::okStatus();
    for (unsigned s = 0; s < shards_; ++s) {
        Status st = dispatchShard(qs, s, arrival_seconds);
        if (!st.ok()) {
            // Loud failure: the query is completed (exactly once)
            // as not-ok rather than silently dropped.
            qs.failed = true;
            qs.subs[s].done = true;
            --qs.remaining;
            flight_.recordShed(id, arrival_seconds, "unroutable");
            if (first_err.ok())
                first_err = st;
        }
    }
    return first_err;
}

void
Router::collect(unsigned device,
                std::vector<kernels::ServeOutcome> outs)
{
    auto &reg = metrics::Registry::get();
    for (kernels::ServeOutcome &out : outs) {
        uint64_t qid = out.id & 0xffffffffull;
        unsigned shard =
            static_cast<unsigned>((out.id >> 32) & 0xffffu) - 1;
        unsigned dev =
            static_cast<unsigned>(out.id >> 48) - 1;
        cisram_assert(dev == device,
                      "fleet: outcome #", out.id,
                      " surfaced on the wrong device");
        auto it = queryIndex_.find(qid);
        cisram_assert(it != queryIndex_.end(),
                      "fleet: outcome for unknown query #", qid);
        QueryState &qs = queries_[it->second];
        SubState &sub = qs.subs[shard];
        cisram_assert(!sub.done, "fleet: duplicate outcome for ",
                      "query #", qid, " shard ", shard);

        double served = out.servedSeconds();

        // Gather the result back across the link. A failed return
        // transfer (severed mid-gather) loses the result — the
        // query fails over like any other in-flight loss.
        double before = fabric_.stats(device).busySeconds;
        StatusOr<double> rt =
            fabric_.transfer(device, resultBytes(cfg_.topK));
        double charged =
            fabric_.stats(device).busySeconds - before;
        if (!rt.ok()) {
            sub.extraHostSeconds += charged;
            ++sub.failovers;
            ++failovers_;
            reg.counter("fleet.failover",
                        {{"device", devLabel(device)}})
                .inc();
            Status st = dispatchShard(qs, shard, qs.admitSeconds,
                                      sub.arrivalSeconds + served);
            if (!st.ok()) {
                qs.failed = true;
                sub.done = true;
                --qs.remaining;
            }
            continue;
        }

        sub.done = true;
        --qs.remaining;
        sub.fromDevice = out.fromDevice;
        sub.attempts = std::max(sub.attempts, out.attempts);
        sub.returnSeconds = *rt;
        sub.pathSeconds = sub.sendSeconds + served + *rt;

        reg.histogram("fleet.device_served_seconds",
                      {{"device", devLabel(device)}})
            .observe(served);

        if (cfg_.functional) {
            ShardServer *ss = replicaOn(device, shard);
            sub.hits = std::move(out.run.hits);
            // Globalize through the epoch view: a base chunk maps
            // to firstChunk + local (exactly the old offset), an
            // inserted chunk to its minted global id.
            for (baseline::Hit &h : sub.hits)
                h.id = ss->spec.globalChunk(h.id);
        }
    }
}

std::vector<FleetOutcome>
Router::reapFinished()
{
    std::vector<FleetOutcome> done;
    for (QueryState &qs : queries_)
        if (!qs.finished && qs.remaining == 0)
            done.push_back(finishQuery(qs));
    return done;
}

FleetOutcome
Router::finishQuery(QueryState &qs)
{
    FleetOutcome out;
    out.id = qs.id;
    out.admitSeconds = qs.admitSeconds;
    out.cls = qs.cls;
    out.epoch = qs.epoch;

    double gather = 0;
    double extra = 0;
    unsigned attempts = 0;
    std::vector<baseline::Hit> candidates;
    for (const SubState &sub : qs.subs) {
        gather = std::max(gather, sub.pathSeconds);
        extra += sub.extraHostSeconds;
        attempts = std::max(attempts, sub.attempts);
        out.failovers += sub.failovers;
        out.allFromDevice = out.allFromDevice && sub.fromDevice;
        out.fabricSeconds += sub.sendSeconds + sub.returnSeconds +
            sub.extraHostSeconds;
        candidates.insert(candidates.end(), sub.hits.begin(),
                          sub.hits.end());
    }

    // Exact k-way merge: per-shard exact top-ks re-ranked in the
    // global index's own order (score desc, global id asc), so the
    // fleet answer is bit-identical to the unsharded one.
    std::sort(candidates.begin(), candidates.end(),
              [](const baseline::Hit &a, const baseline::Hit &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.id < b.id;
              });
    if (candidates.size() > cfg_.topK)
        candidates.resize(cfg_.topK);
    out.hits = std::move(candidates);
    out.ids.reserve(out.hits.size());
    for (const baseline::Hit &h : out.hits)
        out.ids.push_back(static_cast<uint32_t>(h.id));

    double merge = static_cast<double>(shards_) *
        static_cast<double>(cfg_.topK) *
        cfg_.mergeSecondsPerCandidate;
    double host = extra + merge;
    double latency = (0.0 + gather) + host;

    out.gatherSeconds = gather;
    out.hostSeconds = host;
    out.latencySeconds = latency;
    out.ok = !qs.failed;

    // Flight ledger: one round, reconciling bit-exactly as
    // (wait + gather) + (failover + merge) — the same float-add
    // order QueryFlight::reconciledSeconds() re-performs.
    flight_.beginRound(qs.id, qs.admitSeconds);
    for (unsigned s = 0; s < shards_; ++s) {
        const SubState &sub = qs.subs[s];
        flight_.span(qs.id, obs::Stage::ShardPath, sub.failovers,
                     qs.admitSeconds, sub.pathSeconds,
                     detail::concat("shard", s, "@dev",
                                    sub.device));
    }
    flight_.span(qs.id, obs::Stage::ShardGather, 0,
                 qs.admitSeconds, gather);
    if (extra > 0)
        flight_.span(qs.id, obs::Stage::Failover, 0,
                     qs.admitSeconds, extra);
    flight_.span(qs.id, obs::Stage::TopkMerge, 0,
                 qs.admitSeconds + gather, merge);
    obs::FlightCompletion fc;
    fc.endSeconds = qs.admitSeconds + latency;
    fc.fromDevice = out.allFromDevice;
    fc.attempts = attempts;
    fc.batchSize = shards_;
    fc.servedSeconds = latency;
    flight_.complete(qs.id, fc);

    auto &reg = metrics::Registry::get();
    reg.histogram("fleet.served_seconds").observe(latency);
    // Per-class rollup alongside the unlabeled fleet series (which
    // older baselines gate on): the SLO story needs latency broken
    // out by who bought which class.
    reg.histogram("fleet.class_served_seconds",
                  {{"tenant", qs.cls.tenant},
                   {"slo_class", std::to_string(qs.cls.sloClass)}})
        .observe(latency);
    // Merge work is modeled as shards x topK candidate inserts —
    // count exactly what the merge charge above is billed for.
    reg.counter("fleet.merge.candidates",
                {{"tenant", qs.cls.tenant},
                 {"slo_class", std::to_string(qs.cls.sloClass)}})
        .inc(static_cast<double>(shards_) *
             static_cast<double>(cfg_.topK));

    ledger_.complete(qs.id);
    auto tf = tenantInFlight_.find(qs.cls.tenant);
    if (tf != tenantInFlight_.end() && tf->second > 0)
        --tf->second;
    qs.finished = true;
    qs.query.clear();
    qs.query.shrink_to_fit();
    return out;
}

std::vector<FleetOutcome>
Router::pump()
{
    for (unsigned d = 0; d < devices(); ++d) {
        if (fleet_[d].killed)
            continue;
        for (ShardServer &ss : fleet_[d].servers)
            collect(d, ss.server->pump());
    }
    return reapFinished();
}

std::vector<FleetOutcome>
Router::pumpUntil(double now)
{
    for (unsigned d = 0; d < devices(); ++d) {
        if (fleet_[d].killed)
            continue;
        for (ShardServer &ss : fleet_[d].servers)
            collect(d, ss.server->pumpUntil(now));
    }
    return reapFinished();
}

uint64_t
Router::tenantInFlight(const std::string &tenant) const
{
    auto it = tenantInFlight_.find(tenant);
    return it == tenantInFlight_.end() ? 0 : it->second;
}

std::vector<FleetOutcome>
Router::applyMutation(uint64_t new_epoch,
                      const std::vector<ShardEpochUpdate> &updates)
{
    cisram_assert(new_epoch == epoch_ + 1,
                  "fleet: corpus epochs advance one at a time (at ",
                  epoch_, ", asked for ", new_epoch, ")");

    // Epoch barrier: a query's answer bit-compares against the
    // snapshot it was admitted under, so every in-flight query
    // finishes against the old corpus before any shard flips.
    std::vector<FleetOutcome> served = drain();

    for (const ShardEpochUpdate &u : updates) {
        cisram_assert(u.shard < shards_,
                      "fleet: mutation names shard ", u.shard,
                      " but the fleet has ", shards_);
        cisram_assert(u.view && u.view->epoch == new_epoch,
                      "fleet: shard ", u.shard,
                      " update carries the wrong epoch view");
        for (unsigned d : placement_[u.shard]) {
            // Killed devices were severed and evacuated; they can
            // never serve again, so they stay at their stale epoch
            // forever. Wedged-but-alive replicas still take the
            // update: the drain above emptied them, and resetLink
            // may bring them back into rotation later.
            if (fleet_[d].killed)
                continue;
            ShardServer *ss = replicaOn(d, u.shard);
            cisram_assert(ss, "fleet: placement lists device ", d,
                          " for shard ", u.shard,
                          " but no replica lives there");

            baseline::RagCorpusSpec nspec = ss->spec;
            nspec.numChunks = u.numChunks;
            nspec.corpusBytes = ss->spec.corpusBytes *
                (static_cast<double>(u.numChunks) /
                 static_cast<double>(ss->spec.numChunks));
            nspec.epochView = u.view.get();

            // Flip the server before retiring the old view: its
            // internal drain/re-stage must still be able to read
            // the epoch the server currently serves.
            std::vector<kernels::ServeOutcome> late =
                ss->server->applyMutation(nspec, new_epoch,
                                          u.deltaBytes);
            cisram_assert(late.empty(),
                          "fleet: shard ", u.shard, " on device ",
                          d, " served past the fleet drain");
            ss->spec = nspec;
            ss->view = u.view;
        }
    }
    epoch_ = new_epoch;
    return served;
}

std::vector<FleetOutcome>
Router::drain()
{
    size_t outstanding = 0;
    for (const QueryState &qs : queries_)
        if (!qs.finished)
            ++outstanding;

    // A pass may re-dispatch work onto a device drained earlier in
    // the same pass (failover), so iterate to a fixed point. Each
    // pass completes at least one query or moves at least one
    // sub-query one replica down its finite priority list, so
    // passes are bounded by queries x replicas.
    for (size_t pass = 0;; ++pass) {
        bool all_done = true;
        for (const QueryState &qs : queries_)
            if (qs.remaining != 0) {
                all_done = false;
                break;
            }
        if (all_done)
            break;
        cisram_assert(pass <= outstanding * (cfg_.replicas + 1u),
                      "fleet: drain did not converge");
        for (unsigned d = 0; d < devices(); ++d) {
            if (fleet_[d].killed) {
                evacuateDevice(d);
                continue;
            }
            for (ShardServer &ss : fleet_[d].servers)
                collect(d, ss.server->drain());
        }
    }
    return reapFinished();
}

void
Router::evacuateDevice(unsigned device)
{
    double kill_time = deviceBusySeconds(device);
    for (ShardServer &ss : fleet_[device].servers) {
        auto handed = ss.server->evacuate();
        for (auto &e : handed) {
            uint64_t qid = e.id & 0xffffffffull;
            auto it = queryIndex_.find(qid);
            cisram_assert(it != queryIndex_.end(),
                          "fleet: evacuated unknown query #", qid);
            QueryState &qs = queries_[it->second];
            SubState &sub = qs.subs[ss.shard];
            if (sub.done)
                continue;
            ++evacuated_;
            // The hand-off is itself a failover: the send to the
            // dead device bought nothing, so its charge moves to
            // the failover (host) account.
            ++sub.failovers;
            ++failovers_;
            metrics::Registry::get()
                .counter("fleet.failover",
                         {{"device", devLabel(device)}})
                .inc();
            sub.extraHostSeconds += sub.sendSeconds;
            sub.sendSeconds = 0;
            // Replay on the next replica with the *original*
            // admission time; the hand-off cannot arrive before
            // the kill was observed.
            Status st = dispatchShard(qs, ss.shard, e.admitSeconds,
                                      kill_time);
            if (!st.ok()) {
                cisram_warn(
                    "fleet: query #", qid, " shard ", ss.shard,
                     " lost its last replica: ", st.message());
                qs.failed = true;
                sub.done = true;
                --qs.remaining;
            }
        }
    }
}

void
Router::killDevice(unsigned device)
{
    cisram_assert(device < devices(), "fleet: device index OOB");
    FleetDevice &fd = fleet_[device];
    if (fd.killed)
        return;
    fd.killed = true;
    fabric_.sever(device);
    for (ShardServer &ss : fd.servers)
        ss.server->forceQuarantine();
    metrics::Registry::get()
        .counter("fleet.devices_killed",
                 {{"device", devLabel(device)}})
        .inc();
    evacuateDevice(device);
}

double
Router::deviceBusySeconds(unsigned device) const
{
    cisram_assert(device < devices(), "fleet: device index OOB");
    // Shard servers sharing a core serialize on it: their busy
    // clocks add. The device is as busy as its busiest core.
    const std::vector<ShardServer> &servers =
        fleet_[device].servers;
    std::vector<double> coreBusy(cfg_.coresPerDevice, 0.0);
    for (size_t i = 0; i < servers.size(); ++i)
        coreBusy[i % cfg_.coresPerDevice] +=
            servers[i].server->busySeconds();
    double t = 0;
    for (double b : coreBusy)
        t = std::max(t, b);
    return t;
}

double
Router::makespanSeconds() const
{
    double t = 0;
    for (unsigned d = 0; d < devices(); ++d)
        t = std::max(t, deviceBusySeconds(d));
    return t;
}

double
Router::fabricBusySeconds() const
{
    double t = 0;
    for (unsigned d = 0; d < devices(); ++d)
        t += fabric_.stats(d).busySeconds;
    return t;
}

metrics::Histogram
Router::mergedDeviceLatency() const
{
    auto &reg = metrics::Registry::get();
    metrics::Histogram merged;
    for (unsigned d = 0; d < devices(); ++d)
        merged.merge(
            reg.histogram("fleet.device_served_seconds",
                          {{"device", devLabel(d)}}));
    return merged;
}

} // namespace cisram::fleet
