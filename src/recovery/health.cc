#include "recovery/health.hh"

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"

namespace cisram::recovery {

const char *
coreStateName(CoreState s)
{
    switch (s) {
      case CoreState::Healthy:
        return "Healthy";
      case CoreState::Degraded:
        return "Degraded";
      case CoreState::Quarantined:
        return "Quarantined";
      case CoreState::Resetting:
        return "Resetting";
    }
    return "?";
}

HealthMonitor::HealthMonitor(unsigned core, HealthPolicy policy,
                             unsigned device)
    : core_(core), device_(device), policy_(policy)
{
    cisram_assert(policy_.windowQueries > 0,
                  "HealthPolicy.windowQueries must be positive");
    cisram_assert(policy_.degradeThreshold > 0,
                  "HealthPolicy.degradeThreshold must be positive");
    cisram_assert(
        policy_.quarantineThreshold >= policy_.degradeThreshold,
        "HealthPolicy.quarantineThreshold below degradeThreshold");
}

void
HealthMonitor::transitionTo(CoreState to)
{
    if (to == state_)
        return;
    history_.push_back({state_, to, queries_});
    auto &reg = metrics::Registry::get();
    reg.counter("recovery.transitions",
                {{"device", std::to_string(device_)},
                 {"core", std::to_string(core_)},
                 {"from", coreStateName(state_)},
                 {"to", coreStateName(to)}})
        .inc();
    reg.gauge("recovery.core_state",
              {{"device", std::to_string(device_)},
               {"core", std::to_string(core_)}})
        .set(static_cast<double>(to));
    if (trace::active()) {
        std::string name =
            std::string("recovery.") + coreStateName(to);
        trace::Tracer::get().instant(
            0, core_, name.c_str(),
            static_cast<double>(queries_));
    }
    state_ = to;
}

void
HealthMonitor::observeQueries(unsigned n)
{
    if (!policy_.enabled)
        return;
    queries_ += n;
    windowQueries_ += n;
    while (windowQueries_ >= policy_.windowQueries) {
        windowQueries_ -= policy_.windowQueries;
        bool clean = windowFaults_ == 0;
        windowFaults_ = 0;
        if (clean && state_ == CoreState::Degraded)
            transitionTo(CoreState::Healthy);
    }
}

void
HealthMonitor::observeFaults(const FaultLedgerDelta &delta)
{
    if (!policy_.enabled || state_ == CoreState::Resetting)
        return;
    unsigned n = delta.total();
    if (n == 0)
        return;
    windowFaults_ += n;
    if (windowFaults_ >= policy_.quarantineThreshold &&
        state_ != CoreState::Quarantined) {
        transitionTo(CoreState::Quarantined);
        shedCount_ = 0;
    } else if (windowFaults_ >= policy_.degradeThreshold &&
               state_ == CoreState::Healthy) {
        transitionTo(CoreState::Degraded);
    }
}

bool
HealthMonitor::observeShed()
{
    cisram_assert(state_ == CoreState::Quarantined,
                  "observeShed on a core that is ",
                  coreStateName(state_));
    ++shedCount_;
    return shedCount_ >= policy_.quarantineAdmissions;
}

void
HealthMonitor::forceQuarantine()
{
    if (!policy_.enabled || state_ == CoreState::Quarantined ||
        state_ == CoreState::Resetting)
        return;
    transitionTo(CoreState::Quarantined);
    shedCount_ = 0;
}

void
HealthMonitor::beginReset()
{
    cisram_assert(state_ == CoreState::Quarantined,
                  "beginReset on a core that is ",
                  coreStateName(state_));
    transitionTo(CoreState::Resetting);
}

void
HealthMonitor::completeReset()
{
    cisram_assert(state_ == CoreState::Resetting,
                  "completeReset on a core that is ",
                  coreStateName(state_));
    windowQueries_ = 0;
    windowFaults_ = 0;
    shedCount_ = 0;
    transitionTo(CoreState::Healthy);
}

} // namespace cisram::recovery
