/**
 * @file
 * Admission journal: exactly-once replay across a device reset.
 *
 * A device reset loses every in-flight batch on the core — the
 * queries were admitted, their results were promised, and nothing
 * on the device survives to deliver them. The journal is the host's
 * source of truth: every admission is recorded before any device
 * work happens, marked complete exactly once when its result is
 * delivered, and whatever is still pending after a reset is replayed
 * in admission order with its *original* admission timestamps —
 * which is what makes a replayed batch bit-identical to the
 * un-faulted run (the allocator hands back the same addresses, the
 * fault streams keep counting, and the queue-wait math sees the
 * same admit times).
 *
 * Single-threaded by design, like the DeviceServer shard that owns
 * it; double-complete and complete-of-unknown are programming errors
 * and die via cisram_assert.
 */

#ifndef CISRAM_RECOVERY_JOURNAL_HH
#define CISRAM_RECOVERY_JOURNAL_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace cisram::recovery {

/** One journaled admission (Payload is the query's replay state). */
template <typename Payload>
struct JournalEntry
{
    uint64_t id;
    Payload payload;
    double admitSeconds; ///< sim-clock admission time, preserved
    bool completed = false;
    bool handedOff = false; ///< ownership moved to another journal
};

/**
 * Append-only admission journal with exactly-once completion.
 */
template <typename Payload>
class ReplayJournal
{
  public:
    /** Record an admission. `id` must be new. */
    void
    admit(uint64_t id, Payload payload, double admit_seconds)
    {
        cisram_assert(find(id) == nullptr,
                      "journal: duplicate admission of query #", id);
        entries_.push_back(
            {id, std::move(payload), admit_seconds, false});
    }

    /** Mark `id` complete. Must be admitted and not yet complete. */
    void
    complete(uint64_t id)
    {
        JournalEntry<Payload> *e = find(id);
        cisram_assert(e != nullptr,
                      "journal: completing unknown query #", id);
        cisram_assert(!e->completed,
                      "journal: double completion of query #", id);
        e->completed = true;
    }

    /**
     * Evacuate every admitted-but-incomplete entry: returns copies
     * (id, payload, original admitSeconds) in admission order and
     * marks each handed off, which also completes it here —
     * exactly-once responsibility now rests with whichever journal
     * re-admits the entry (a replica device after a failover). The
     * caller must re-admit under a *different* namespaced id, or the
     * fleet-level ledger loses the one-outcome-per-query guarantee.
     */
    std::vector<JournalEntry<Payload>>
    handOffPending()
    {
        std::vector<JournalEntry<Payload>> out;
        for (auto &e : entries_) {
            if (e.completed)
                continue;
            out.push_back(e);
            e.completed = true;
            e.handedOff = true;
        }
        return out;
    }

    /** Entries handed off to another journal, lifetime. */
    size_t
    handedOff() const
    {
        size_t n = 0;
        for (const auto &e : entries_)
            if (e.handedOff)
                ++n;
        return n;
    }

    /** Admitted-but-incomplete entries, in admission order. */
    std::vector<const JournalEntry<Payload> *>
    pending() const
    {
        std::vector<const JournalEntry<Payload> *> out;
        for (const auto &e : entries_)
            if (!e.completed)
                out.push_back(&e);
        return out;
    }

    /** Number of admitted-but-incomplete entries. */
    size_t
    outstanding() const
    {
        size_t n = 0;
        for (const auto &e : entries_)
            if (!e.completed)
                ++n;
        return n;
    }

    size_t admitted() const { return entries_.size(); }

  private:
    JournalEntry<Payload> *
    find(uint64_t id)
    {
        for (auto &e : entries_)
            if (e.id == id)
                return &e;
        return nullptr;
    }

    const JournalEntry<Payload> *
    find(uint64_t id) const
    {
        return const_cast<ReplayJournal *>(this)->find(id);
    }

    std::vector<JournalEntry<Payload>> entries_;
};

} // namespace cisram::recovery

#endif // CISRAM_RECOVERY_JOURNAL_HH
