/**
 * @file
 * Per-core health watchdog: the escalation ladder above retry.
 *
 * PR 3's transient-fault machinery (retry/backoff, circuit breaker,
 * CPU fallback) has no answer to a *persistent* fault — a wedged
 * task engine keeps hanging, an accumulating DRAM word keeps
 * double-detecting, and the breaker parks traffic on the slow Xeon
 * fallback forever. The HealthMonitor closes the ladder:
 *
 *     Healthy --faults >= degradeThreshold--> Degraded
 *     Degraded --faults >= quarantineThreshold--> Quarantined
 *     Degraded --clean window--> Healthy
 *     Quarantined --quarantineAdmissions aged out--> Resetting
 *     Resetting --completeReset()--> Healthy
 *
 * Each DeviceServer owns one monitor for its core and feeds it the
 * per-batch fault ledger (task timeouts, CRC retries exhausted, ECC
 * double-detects). Everything is counted in *queries/admissions*,
 * never wall time, so transitions land on the same query for any
 * CISRAM_SIM_THREADS — the determinism contract the serial-vs-
 * threaded bit-identity tests pin.
 *
 * While Quarantined the server sheds admissions (ResourceExhausted,
 * never a silent drop); each shed ages the quarantine, and after
 * `quarantineAdmissions` sheds the monitor answers "reset now" —
 * the caller performs the gdl resetCore + re-stage + journal replay
 * and reports completeReset().
 *
 * Disabled by default (`HealthPolicy::enabled == false`): a server
 * without an explicit policy behaves exactly as before this
 * subsystem existed.
 */

#ifndef CISRAM_RECOVERY_HEALTH_HH
#define CISRAM_RECOVERY_HEALTH_HH

#include <cstdint>
#include <vector>

namespace cisram::recovery {

/** The per-core escalation states, in escalation order. */
enum class CoreState : unsigned
{
    Healthy = 0, ///< serving normally
    Degraded,    ///< faulting above the degrade threshold; watched
    Quarantined, ///< shedding admissions; aging toward a reset
    Resetting,   ///< reset + re-stage + replay in progress
};

/** Display name of a state ("Healthy", ...). */
const char *coreStateName(CoreState s);

/** Escalation thresholds, all counted in queries — never seconds. */
struct HealthPolicy
{
    /** Master switch: false leaves the server's behavior untouched. */
    bool enabled = false;

    /** Tumbling observation window, in completed queries. */
    unsigned windowQueries = 16;

    /** Faults within one window that mark the core Degraded. */
    unsigned degradeThreshold = 1;

    /** Faults within one window that quarantine the core. */
    unsigned quarantineThreshold = 3;

    /**
     * Shed admissions a quarantine must age before the monitor asks
     * for a reset (gives a transient storm a chance to clear without
     * paying the reset + re-stage cost).
     */
    unsigned quarantineAdmissions = 4;
};

/** One batch's fault ledger delta, as observed by the server. */
struct FaultLedgerDelta
{
    unsigned taskTimeouts = 0;  ///< runTaskTimeout deadline misses
    unsigned pcieExhausted = 0; ///< transfers dead after all retries
    unsigned eccDoubles = 0;    ///< uncorrectable ECC detections

    unsigned
    total() const
    {
        return taskTimeouts + pcieExhausted + eccDoubles;
    }
};

/** One recorded transition, for ledgers and tests. */
struct Transition
{
    CoreState from;
    CoreState to;
    uint64_t atQuery; ///< completed-query count when it happened
};

/**
 * The per-core state machine. Single-threaded, like the DeviceServer
 * shard that owns it; determinism comes from counting queries.
 */
class HealthMonitor
{
  public:
    /**
     * @param device Fleet device index carried on every
     *        `recovery.core_state` / `recovery.transitions` series —
     *        without it a fleet run would collapse all devices'
     *        same-numbered cores into one series. Standalone
     *        single-device use keeps the default 0.
     */
    HealthMonitor(unsigned core, HealthPolicy policy,
                  unsigned device = 0);

    CoreState state() const { return state_; }
    const HealthPolicy &policy() const { return policy_; }
    unsigned core() const { return core_; }
    unsigned device() const { return device_; }

    /**
     * Account `n` completed queries. Closing a window with zero
     * faults heals a Degraded core back to Healthy; a window with
     * faults below the degrade threshold leaves the state alone.
     */
    void observeQueries(unsigned n);

    /**
     * Account a batch's fault ledger delta. Escalates Healthy →
     * Degraded → Quarantined as the in-window fault count crosses
     * the thresholds. No-op when disabled or while Resetting.
     */
    void observeFaults(const FaultLedgerDelta &delta);

    /**
     * Account one shed admission while Quarantined. Returns true
     * when the quarantine has aged out — the caller must now perform
     * the reset (beginReset/completeReset). Returns false otherwise.
     */
    bool observeShed();

    /** Quarantine immediately, regardless of window counts. */
    void forceQuarantine();

    /** Enter Resetting (must be Quarantined). */
    void beginReset();

    /** Reset finished: back to Healthy, counters cleared. */
    void completeReset();

    /** Every transition taken, in order. */
    const std::vector<Transition> &transitions() const
    {
        return history_;
    }

    /** Faults accounted in the current window. */
    unsigned windowFaults() const { return windowFaults_; }

  private:
    void transitionTo(CoreState to);

    unsigned core_;
    unsigned device_;
    HealthPolicy policy_;
    CoreState state_ = CoreState::Healthy;
    uint64_t queries_ = 0;       ///< completed queries, lifetime
    unsigned windowQueries_ = 0; ///< queries in the current window
    unsigned windowFaults_ = 0;  ///< faults in the current window
    unsigned shedCount_ = 0;     ///< sheds in the current quarantine
    std::vector<Transition> history_;
};

} // namespace cisram::recovery

#endif // CISRAM_RECOVERY_HEALTH_HH
