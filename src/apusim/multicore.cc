#include "apusim/multicore.hh"

#include <algorithm>
#include <memory>

#include "common/metrics.hh"
#include "common/threadpool.hh"
#include "common/trace.hh"

namespace cisram::apu::detail {

MultiCoreResult
runOnAllCoresImpl(ApuDevice &dev, const CoreFn &fn)
{
    const unsigned n = dev.numCores();
    MultiCoreResult r;
    r.perCore.assign(n, 0.0);

    // Per-core observability shards. Installed unconditionally (even
    // in serial mode and with observability off) so that serial and
    // threaded runs take the identical record/merge path — the key
    // to bit-identical traces and registry snapshots.
    std::vector<std::unique_ptr<metrics::Registry>> regShards(n);
    std::vector<std::vector<trace::Event>> evShards(n);

    SimThreadPool::get().parallelFor(n, [&](size_t c) {
        regShards[c] = metrics::Registry::makeShard();
        metrics::ShardScope ms(regShards[c].get());
        trace::EventSinkScope es(&evShards[c]);
        ApuCore &core = dev.core(static_cast<unsigned>(c));
        double before = core.stats().cycles();
        fn(core, static_cast<unsigned>(c), n);
        r.perCore[c] = core.stats().cycles() - before;
    });

    // Merge in core order: the accumulation sequence — including
    // non-associative float adds — is fixed regardless of how the
    // host scheduler interleaved the workers. (Unreached when a
    // functor threw: parallelFor rethrows and the failed batch's
    // shards are discarded with this frame.)
    auto &global = metrics::Registry::global();
    auto &tracer = trace::Tracer::get();
    for (unsigned c = 0; c < n; ++c) {
        if (regShards[c])
            global.mergeFrom(*regShards[c]);
        tracer.mergeEvents(std::move(evShards[c]));
    }

    for (unsigned c = 0; c < n; ++c) {
        r.totalCycles += r.perCore[c];
        r.maxCycles = std::max(r.maxCycles, r.perCore[c]);
    }
    return r;
}

} // namespace cisram::apu::detail
