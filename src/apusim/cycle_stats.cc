#include "apusim/cycle_stats.hh"

namespace cisram::apu {

void
CycleStats::observeCharge(double start, double scaled)
{
    const char *op = trace::currentOp();
    const char *tag =
        tagStack.empty() ? nullptr : tagStack.back().c_str();
    if (trace::active()) {
        trace::Tracer::get().complete(
            tracePid, traceTid, op ? op : (tag ? tag : "charge"),
            tag ? tag : "untagged", start, scaled,
            trace::currentBytes(), repeatFactor,
            trace::currentEngines());
    }
    if (metrics::enabled() && op) {
        auto &m = metrics::Registry::get().opCounters(op);
        m.issues.inc();
        m.cycles.inc(scaled);
        double bytes = trace::currentBytes();
        if (bytes > 0)
            m.bytes.inc(bytes * repeatFactor);
    }
}

} // namespace cisram::apu
