#include "apusim/vr_file.hh"

namespace cisram::apu {

BitVector
VrFile::slicePlane(unsigned vr, unsigned slice) const
{
    cisram_assert(slice < 16, "bit-slice index OOB");
    const auto &reg = (*this)[vr];
    BitVector plane(length_);
    for (size_t i = 0; i < length_; ++i) {
        if ((reg[i] >> slice) & 1u)
            plane.set(i, true);
    }
    return plane;
}

void
VrFile::setSlicePlane(unsigned vr, unsigned slice,
                      const BitVector &plane)
{
    cisram_assert(slice < 16, "bit-slice index OOB");
    cisram_assert(plane.size() == length_, "plane length mismatch");
    auto &reg = (*this)[vr];
    uint16_t mask = static_cast<uint16_t>(1u << slice);
    for (size_t i = 0; i < length_; ++i) {
        if (plane.get(i))
            reg[i] |= mask;
        else
            reg[i] &= static_cast<uint16_t>(~mask);
    }
}

namespace {

/**
 * Transpose one 16-element block: x[j] = element j's 16 bits on
 * entry; x[s] = the block's 16 plane-s bits on return (bit j =
 * element j's slice-s bit). The transpose is an involution, so the
 * same call converts in both directions.
 */
inline void
transposeBlock(uint16_t x[16])
{
    transpose16x16(x);
}

} // namespace

void
VrFile::slicePlanes(unsigned vr, uint16_t slice_mask,
                    std::array<BitVector, 16> &out) const
{
    const auto &reg = (*this)[vr];
    for (unsigned s = 0; s < 16; ++s) {
        if (!((slice_mask >> s) & 1))
            continue;
        // Reuse the caller's buffer when the size matches (the
        // bit-proc scratch planes), sparing an allocation per op.
        if (out[s].size() == length_)
            out[s].fill(false);
        else
            out[s] = BitVector(length_);
    }

    size_t full_blocks = length_ / 16;
    uint16_t x[16];
    for (size_t blk = 0; blk < full_blocks; ++blk) {
        size_t base = blk * 16;
        for (unsigned j = 0; j < 16; ++j)
            x[j] = reg[base + j];
        transposeBlock(x);
        size_t w = base / 64;
        unsigned shift = static_cast<unsigned>(base % 64);
        for (unsigned s = 0; s < 16; ++s) {
            if (!((slice_mask >> s) & 1))
                continue;
            out[s].setWord(w, out[s].word(w) |
                                  (static_cast<uint64_t>(x[s])
                                   << shift));
        }
    }
    // Ragged tail (length not a multiple of 16): per-element.
    for (size_t i = full_blocks * 16; i < length_; ++i) {
        uint16_t v = reg[i];
        for (unsigned s = 0; s < 16; ++s)
            if (((slice_mask >> s) & 1) && ((v >> s) & 1u))
                out[s].set(i, true);
    }
}

void
VrFile::slicePlanesAnd(unsigned vr_a, unsigned vr_b,
                       uint16_t slice_mask,
                       std::array<BitVector, 16> &out) const
{
    const auto &ra = (*this)[vr_a];
    const auto &rb = (*this)[vr_b];
    for (unsigned s = 0; s < 16; ++s) {
        if (!((slice_mask >> s) & 1))
            continue;
        // Reuse the caller's buffer when the size matches (the
        // bit-proc scratch planes), sparing an allocation per op.
        if (out[s].size() == length_)
            out[s].fill(false);
        else
            out[s] = BitVector(length_);
    }

    size_t full_blocks = length_ / 16;
    uint16_t x[16];
    for (size_t blk = 0; blk < full_blocks; ++blk) {
        size_t base = blk * 16;
        for (unsigned j = 0; j < 16; ++j)
            x[j] = static_cast<uint16_t>(ra[base + j] &
                                         rb[base + j]);
        transposeBlock(x);
        size_t w = base / 64;
        unsigned shift = static_cast<unsigned>(base % 64);
        for (unsigned s = 0; s < 16; ++s) {
            if (!((slice_mask >> s) & 1))
                continue;
            out[s].setWord(w, out[s].word(w) |
                                  (static_cast<uint64_t>(x[s])
                                   << shift));
        }
    }
    for (size_t i = full_blocks * 16; i < length_; ++i) {
        uint16_t v = static_cast<uint16_t>(ra[i] & rb[i]);
        for (unsigned s = 0; s < 16; ++s)
            if (((slice_mask >> s) & 1) && ((v >> s) & 1u))
                out[s].set(i, true);
    }
}

void
VrFile::setSlicePlanes(unsigned vr, uint16_t slice_mask,
                       const std::array<BitVector, 16> &planes,
                       bool negate)
{
    auto &reg = (*this)[vr];
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            cisram_assert(planes[s].size() == length_,
                          "plane length mismatch");

    uint16_t keep = static_cast<uint16_t>(~slice_mask);
    size_t full_blocks = length_ / 16;
    uint16_t x[16];
    for (size_t blk = 0; blk < full_blocks; ++blk) {
        size_t base = blk * 16;
        size_t w = base / 64;
        unsigned shift = static_cast<unsigned>(base % 64);
        for (unsigned s = 0; s < 16; ++s) {
            uint64_t bits = ((slice_mask >> s) & 1)
                ? planes[s].word(w) >> shift
                : 0;
            x[s] = static_cast<uint16_t>(bits);
            if (negate)
                x[s] = static_cast<uint16_t>(~x[s]);
        }
        transposeBlock(x);
        for (unsigned j = 0; j < 16; ++j) {
            reg[base + j] = static_cast<uint16_t>(
                (reg[base + j] & keep) | (x[j] & slice_mask));
        }
    }
    for (size_t i = full_blocks * 16; i < length_; ++i) {
        uint16_t v = 0;
        for (unsigned s = 0; s < 16; ++s) {
            if (!((slice_mask >> s) & 1))
                continue;
            bool bit = planes[s].get(i);
            if (negate)
                bit = !bit;
            if (bit)
                v |= static_cast<uint16_t>(1u << s);
        }
        reg[i] = static_cast<uint16_t>((reg[i] & keep) |
                                       (v & slice_mask));
    }
}

} // namespace cisram::apu
