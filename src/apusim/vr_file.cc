#include "apusim/vr_file.hh"

namespace cisram::apu {

BitVector
VrFile::slicePlane(unsigned vr, unsigned slice) const
{
    cisram_assert(slice < 16, "bit-slice index OOB");
    const auto &reg = (*this)[vr];
    BitVector plane(length_);
    for (size_t i = 0; i < length_; ++i) {
        if ((reg[i] >> slice) & 1u)
            plane.set(i, true);
    }
    return plane;
}

void
VrFile::setSlicePlane(unsigned vr, unsigned slice,
                      const BitVector &plane)
{
    cisram_assert(slice < 16, "bit-slice index OOB");
    cisram_assert(plane.size() == length_, "plane length mismatch");
    auto &reg = (*this)[vr];
    uint16_t mask = static_cast<uint16_t>(1u << slice);
    for (size_t i = 0; i < length_; ++i) {
        if (plane.get(i))
            reg[i] |= mask;
        else
            reg[i] &= static_cast<uint16_t>(~mask);
    }
}

} // namespace cisram::apu
