/**
 * @file
 * The per-core vector register file.
 *
 * 24 computation-enabled vector registers of 32768 x 16-bit elements,
 * physically striped across 16 banks of 2048 elements (paper Fig. 4).
 * Word-level storage is the primary representation; the bit-slice
 * engine extracts and inserts bit planes on demand.
 */

#ifndef CISRAM_APUSIM_VR_FILE_HH
#define CISRAM_APUSIM_VR_FILE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace cisram::apu {

class VrFile
{
  public:
    VrFile(unsigned num_vrs, size_t vr_length, unsigned num_banks)
        : length_(vr_length), numBanks_(num_banks),
          bankElems_(vr_length / num_banks),
          regs(num_vrs, std::vector<uint16_t>(vr_length, 0))
    {
        cisram_assert(vr_length % num_banks == 0);
    }

    unsigned numVrs() const { return static_cast<unsigned>(regs.size()); }
    size_t length() const { return length_; }
    unsigned numBanks() const { return numBanks_; }
    size_t bankElems() const { return bankElems_; }

    std::vector<uint16_t> &
    operator[](unsigned vr)
    {
        cisram_assert(vr < regs.size(), "VR index OOB: ", vr);
        return regs[vr];
    }

    const std::vector<uint16_t> &
    operator[](unsigned vr) const
    {
        cisram_assert(vr < regs.size(), "VR index OOB: ", vr);
        return regs[vr];
    }

    /** Bank that element `i` resides in. */
    unsigned
    bankOf(size_t i) const
    {
        return static_cast<unsigned>(i / bankElems_);
    }

    /** Extract bit plane `slice` of register `vr`. */
    BitVector slicePlane(unsigned vr, unsigned slice) const;

    /** Overwrite bit plane `slice` of register `vr`. */
    void setSlicePlane(unsigned vr, unsigned slice,
                       const BitVector &plane);

    // --- Word-parallel multi-plane fast paths ---------------------
    // One sweep over the register converts between the word-major
    // element storage and the plane-major bit-slice view via 16x16
    // bit-matrix transposes (64 elements -> 16 plane-word fragments
    // per four transposes), instead of one per-bit pass per slice.
    // Bit-identical to slicePlane()/setSlicePlane() per slice; the
    // equivalence is pinned by tests/test_wordparallel.cc.

    /**
     * Extract every plane selected by `slice_mask` into `out` in one
     * sweep. Unselected entries of `out` are left untouched.
     */
    void slicePlanes(unsigned vr, uint16_t slice_mask,
                     std::array<BitVector, 16> &out) const;

    /**
     * As slicePlanes, but extracts the planes of the element-wise
     * AND of two registers (plane_s(a & b) == plane_s(a) &
     * plane_s(b), so one fused sweep replaces two extractions).
     */
    void slicePlanesAnd(unsigned vr_a, unsigned vr_b,
                        uint16_t slice_mask,
                        std::array<BitVector, 16> &out) const;

    /**
     * Overwrite every plane selected by `slice_mask` from `planes`
     * (optionally complemented) in one sweep; unselected bit
     * positions of each element are preserved.
     */
    void setSlicePlanes(unsigned vr, uint16_t slice_mask,
                        const std::array<BitVector, 16> &planes,
                        bool negate = false);

  private:
    size_t length_;
    unsigned numBanks_;
    size_t bankElems_;
    std::vector<std::vector<uint16_t>> regs;
};

} // namespace cisram::apu

#endif // CISRAM_APUSIM_VR_FILE_HH
