/**
 * @file
 * Decomposed timing parameters of the simulated APU.
 *
 * These constants are the simulator's ground truth. They are chosen so
 * that the aggregate behaviour matches the *measured* columns of the
 * paper's Tables 4 and 5, while exposing second-order structure (chunk
 * granularity, dual-engine scheduling, pipeline sync, VCU decode) that
 * the analytical framework in src/model deliberately abstracts away.
 * The residual between the two is the validation error studied in
 * Table 7.
 */

#ifndef CISRAM_APUSIM_TIMING_HH
#define CISRAM_APUSIM_TIMING_HH

#include <cstdint>
#include <cstddef>

namespace cisram::apu {

/** Cycle costs for data movement (paper Table 4, decomposed). */
struct DataMovementTiming
{
    // L4 (device DRAM) -> L3 via the control-processor path.
    double dmaL4L3PerByte = 0.19;
    uint64_t dmaL4L3Init = 41164;

    // L4 <-> L2 via the core DMA engines (aggregate per-byte rate of
    // one engine; the init covers descriptor setup).
    double dmaL4L2PerByte = 0.63;
    uint64_t dmaL4L2Init = 548;

    // L2 <-> L1: full-vector wide on-chip transfer, fixed cost.
    uint64_t dmaL2L1 = 386;

    // Extra synchronisation when the two DMA engines pipeline a full
    // VR transfer L4 <-> L1 (calibrated so the aggregate matches the
    // measured 22272 / 22186 cycles for a 64 KiB vector).
    uint64_t pipeSyncL4L1 = 694;
    uint64_t pipeSyncL1L4 = 608;

    // Programmed I/O per element.
    uint64_t pioLoadPerElem = 57;
    uint64_t pioStorePerElem = 61;

    // Indexed lookup from L3: setup plus a per-16-entry granule cost.
    // 16 entries/granule * 7.15 cycles/entry ~= 114.4; the simulator
    // charges whole granules, the framework uses the linear fit.
    uint64_t lookupInit = 629;
    uint64_t lookupPerGranule = 114;
    unsigned lookupGranule = 16;

    // VR <-> L1 load/store and element-wise copies.
    uint64_t loadVr = 29;
    uint64_t storeVr = 29;
    uint64_t cpy = 29;
    uint64_t cpySubgrp = 82;
    uint64_t cpyImm = 13;

    // Intra-VR shifts: generic per-element-step cost, and the cheap
    // intra-bank path for shifts that are multiples of 4.
    uint64_t shiftPerStep = 373;
    uint64_t shiftIntraBankBase = 8;
};

/** Cycle costs for vector computation (paper Table 5). */
struct ComputeTiming
{
    uint64_t and16 = 12;
    uint64_t or16 = 8;
    uint64_t not16 = 10;
    uint64_t xor16 = 12;
    uint64_t ashift = 15;
    uint64_t addU16 = 12;
    uint64_t addS16 = 13;
    uint64_t subU16 = 15;
    uint64_t subS16 = 16;
    uint64_t popcnt16 = 23;
    uint64_t mulU16 = 115;
    uint64_t mulS16 = 201;
    uint64_t mulF16 = 77;
    uint64_t divU16 = 664;
    uint64_t divS16 = 739;
    uint64_t eq16 = 13;
    uint64_t gtU16 = 13;
    uint64_t ltU16 = 13;
    uint64_t ltGf16 = 45;
    uint64_t geU16 = 13;
    uint64_t leU16 = 13;
    uint64_t recipU16 = 735;
    uint64_t expF16 = 40295;
    uint64_t sinFx = 761;
    uint64_t cosFx = 761;
    uint64_t countM = 239;

    // Additional element-wise ops used by kernels; costs chosen
    // consistently with the measured family above.
    uint64_t minU16 = 13;
    uint64_t maxU16 = 13;
    uint64_t selectMsk = 13;
    uint64_t srImm = 15;
    uint64_t slImm = 15;
    uint64_t createGrpIndex = 26;

    // Staged subgroup reduction (add_subgrp_s16): the dedicated
    // reduction microcode performs log2(grp/subgrp) stages. A stage
    // whose shift distance is `step` costs
    //   sgStageBase + sgStageLinear*(log2 step + 1)
    //     + sgStageMask*(log2 subgrp)^2
    // cycles: the linear part is the wider bank traversal of larger
    // shifts, the quadratic part is re-arming the lane masks that
    // protect the subgroup's surviving lanes at every mask level.
    // Summed over stages this yields the non-linear behaviour in the
    // logarithms of the sizes that Eq. 1 of the paper models.
    uint64_t sgStageBase = 110;
    uint64_t sgStageLinear = 4;
    uint64_t sgStageMask = 2;
};

/** Control-path overheads (second-order effects). */
struct ControlTiming
{
    /** VCU decode cycles charged per vector command. */
    uint64_t vcuDecode = 2;

    /** Cycles for the CP to launch / retire a DMA descriptor. */
    uint64_t dmaDescriptor = 14;
};

struct TimingParams
{
    DataMovementTiming move;
    ComputeTiming compute;
    ControlTiming control;
};

/** Default device timing (calibrated to the paper). */
const TimingParams &defaultTiming();

} // namespace cisram::apu

#endif // CISRAM_APUSIM_TIMING_HH
