/**
 * @file
 * The simulated GSI APU device and its cores.
 *
 * An ApuDevice owns the shared 16 GB device DRAM (L4) and four
 * ApuCores. Each core owns its private memory levels (L3 CP cache,
 * L2 scratchpad, L1 VMR file), its vector register file with the
 * bit-processor array, DMA/PIO engines, and a CycleStats ledger.
 *
 * Cores support two execution modes:
 *  - Functional: every operation moves/computes real data *and*
 *    charges cycles. Used by tests and small-scale runs.
 *  - TimingOnly: operations charge cycles but skip data movement.
 *    Used with CycleStats repeat scopes to time paper-scale workloads
 *    (valid because operation latency is data-independent).
 */

#ifndef CISRAM_APUSIM_APU_HH
#define CISRAM_APUSIM_APU_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "apusim/apu_spec.hh"
#include "apusim/bitproc.hh"
#include "apusim/cycle_stats.hh"
#include "apusim/memory.hh"
#include "apusim/timing.hh"
#include "apusim/vr_file.hh"

namespace cisram::apu {

class ApuDevice;

enum class ExecMode { Functional, TimingOnly };

class ApuCore
{
  public:
    ApuCore(ApuDevice &device, unsigned core_id);

    unsigned id() const { return coreId; }
    const ApuSpec &spec() const;
    const TimingParams &timing() const;
    ApuDevice &device() { return dev; }

    ExecMode mode() const { return execMode; }
    void setMode(ExecMode m) { execMode = m; }
    bool functional() const { return execMode == ExecMode::Functional; }

    // --- state ---------------------------------------------------
    VrFile &vr() { return vrs; }
    const VrFile &vr() const { return vrs; }
    VmrFile &l1() { return l1_; }
    SramBuffer &l2() { return l2_; }
    SramBuffer &l3() { return l3_; }
    BitProcArray &bitproc() { return bitproc_; }
    CycleStats &stats() { return stats_; }
    const CycleStats &stats() const { return stats_; }

    // --- DMA -----------------------------------------------------
    // All DMA moves whole 512-byte chunks; sizes are rounded up to
    // chunk granularity for timing (a second-order effect the
    // analytical framework's linear fits do not capture).

    /** L4 -> L2 contiguous DMA. */
    void dmaL4ToL2(uint64_t l4_addr, size_t l2_off, size_t bytes);

    /** L2 -> L4 contiguous DMA. */
    void dmaL2ToL4(uint64_t l4_addr, size_t l2_off, size_t bytes);

    /** L4 -> L3 contiguous DMA (control-processor path). */
    void dmaL4ToL3(uint64_t l4_addr, size_t l3_off, size_t bytes);

    /** L3 -> L4 contiguous DMA. */
    void dmaL3ToL4(uint64_t l4_addr, size_t l3_off, size_t bytes);

    /**
     * Chunk-programmed L4 -> L2 DMA: each element of `chunk_srcs`
     * names the L4 address of one 512-byte chunk placed at
     * consecutive chunk slots starting at `l2_off`. Enables the
     * strided and duplicated layout transformations of
     * Section 2.1.2 within a single transaction.
     */
    void dmaL4ToL2Chunks(const std::vector<uint64_t> &chunk_srcs,
                         size_t l2_off);

    /** L2 -> L1: move the staged full vector into VMR `vmr`. */
    void dmaL2ToL1(unsigned vmr);

    /** L1 -> L2. */
    void dmaL1ToL2(unsigned vmr);

    /** Pipelined dual-engine L4 -> L1 of one full vector. */
    void dmaL4ToL1(unsigned vmr, uint64_t l4_addr);

    /** Pipelined dual-engine L1 -> L4 of one full vector. */
    void dmaL1ToL4(uint64_t l4_addr, unsigned vmr);

    // --- PIO -----------------------------------------------------

    /**
     * PIO load: `n` elements from L4 into VR `vr` with arbitrary
     * layout (dst index = vr_start + i * vr_stride, src address =
     * l4_addr + i * l4_stride_bytes).
     */
    void pioLoad(unsigned vr, size_t vr_start, size_t vr_stride,
                 uint64_t l4_addr, int64_t l4_stride_bytes, size_t n);

    /** PIO store: `n` elements from VR `vr` to L4. */
    void pioStore(uint64_t l4_addr, int64_t l4_stride_bytes,
                  unsigned vr, size_t vr_start, size_t vr_stride,
                  size_t n);

    /**
     * Serial element retrieval from a VR via the response FIFO
     * (L3 <-> VR path, one element at a time).
     */
    uint16_t rspGet(unsigned vr, size_t idx);

    /** Parallel insertion of one element into a VR via the CP. */
    void rspSet(unsigned vr, size_t idx, uint16_t value);

    /**
     * Indexed lookup: dst[i] = table[idx[i]] where the table is a
     * `table_entries`-entry u16 array at `l3_off` in L3. Cost grows
     * with table size (Table 4).
     */
    void lookup(unsigned dst_vr, unsigned idx_vr, size_t l3_off,
                size_t table_entries);

    // --- VR <-> L1 -----------------------------------------------

    /** Load VR `vr` from VMR `vmr` (full vector). */
    void loadVr(unsigned vr, unsigned vmr);

    /** Store VR `vr` to VMR `vmr` (full vector). */
    void storeVr(unsigned vmr, unsigned vr);

    // --- bookkeeping ----------------------------------------------

    /** Charge a vector-command cost plus VCU decode overhead. */
    void
    chargeVectorOp(uint64_t cycles)
    {
        stats_.charge(cycles + timing().control.vcuDecode);
        stats_.countUop();
    }

    /** Charge raw cycles without the decode overhead. */
    void chargeRaw(uint64_t cycles) { stats_.charge(cycles); }

  private:
    /** Cycles for an n-chunk single-engine burst. */
    uint64_t chunkBurstCycles(size_t chunks, double per_byte) const;

    ApuDevice &dev;
    unsigned coreId;
    ExecMode execMode = ExecMode::Functional;

    VrFile vrs;
    VmrFile l1_;
    SramBuffer l2_;
    SramBuffer l3_;
    BitProcArray bitproc_;
    CycleStats stats_;
};

class ApuDevice
{
  public:
    explicit ApuDevice(ApuSpec spec = defaultSpec(),
                       TimingParams timing = defaultTiming());

    const ApuSpec &spec() const { return spec_; }
    const TimingParams &timing() const { return timing_; }

    unsigned numCores() const
    {
        return static_cast<unsigned>(cores.size());
    }

    /** Trace process id of this device (0 when tracing is off). */
    uint32_t tracePid() const { return tracePid_; }

    ApuCore &core(unsigned i);

    DeviceDram &l4() { return dram; }
    DramAllocator &allocator() { return alloc; }

    /** Convert device cycles to seconds. */
    double
    cyclesToSeconds(double cycles) const
    {
        return cycles * spec_.secondsPerCycle();
    }

  private:
    ApuSpec spec_;
    TimingParams timing_;
    uint32_t tracePid_ = 0;
    DeviceDram dram;
    DramAllocator alloc;
    std::vector<std::unique_ptr<ApuCore>> cores;
};

} // namespace cisram::apu

#endif // CISRAM_APUSIM_APU_HH
