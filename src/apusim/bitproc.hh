/**
 * @file
 * Bit-processor array micro-operation engine.
 *
 * Implements the microarchitectural state and operations of the
 * paper's Table 2: the per-column read latch (RL), the global
 * horizontal latches (GHL, one per bank row, OR-combining), the global
 * vertical latches (GVL, one per column, AND-combining), neighbour
 * reads (RL_N / RL_S across bit-slices, RL_E / RL_W across columns of
 * the same bank), and VR reads/writes through the read/write bit
 * lines. A 16-bit slice mask selects which bit-slices participate in
 * an operation.
 *
 * GVML operations execute at word level for speed; this engine exists
 * so microcode-level programs (e.g. the bit-serial adder in
 * src/gvml/microcode.cc) can be expressed and validated against the
 * word-level semantics, mirroring how APU programmers can build their
 * own vector abstractions from microcode (Section 2.2.2).
 */

#ifndef CISRAM_APUSIM_BITPROC_HH
#define CISRAM_APUSIM_BITPROC_HH

#include <array>
#include <cstdint>

#include "apusim/vr_file.hh"
#include "common/bitutils.hh"

namespace cisram::apu {

/** Boolean combination performed by the read logic. */
enum class BoolOp { And, Or, Xor };

/** Sources the read logic can combine with the read bit-line. */
enum class LatchSrc
{
    RL,   ///< the column's own read latch
    GHL,  ///< global horizontal latch of the column's bank row
    GVL,  ///< global vertical latch of the column
    RL_N, ///< read latch of the bit-slice above (higher slice index)
    RL_S, ///< read latch of the bit-slice below (lower slice index)
    RL_E, ///< read latch of the next column within the bank
    RL_W  ///< read latch of the previous column within the bank
};

class BitProcArray
{
  public:
    /** All 16 slices participate. */
    static constexpr uint16_t fullMask = 0xffff;

    /**
     * Requires vrs.length() == vrs.bankElems() * vrs.numBanks()
     * (guaranteed by VrFile's own divisibility assert): every bank
     * owns a full complement of columns, so the bank-edge masks and
     * the GHL broadcast ranges always address existing positions and
     * no ragged tail can arise (see maskBankEdges).
     */
    BitProcArray(VrFile &vrs);

    /** Number of micro-operations issued (for Table 6 statistics). */
    uint64_t uopCount() const { return uops; }

    /**
     * Route every operation through the retained per-bit scalar
     * reference implementation instead of the word-parallel fast
     * path. The two are bit-identical (pinned exhaustively by
     * tests/test_wordparallel.cc); the toggle exists only for those
     * equivalence tests and for debugging the fast path.
     */
    void setScalarReference(bool on) { scalarRef = on; }
    bool scalarReference() const { return scalarRef; }

    // --- Table 2 operations -------------------------------------

    /** RL = VR[vrs0]. */
    void rlFromVr(uint16_t slice_mask, unsigned vrs0);

    /** RL = VR[vrs0] & VR[vrs1] (read-wire AND of two rows). */
    void rlFromVrAndVr(uint16_t slice_mask, unsigned vrs0,
                       unsigned vrs1);

    /** RL = L for a source latch L. */
    void rlFromLatch(uint16_t slice_mask, LatchSrc src);

    /** RL = VR[vrs0] op L. */
    void rlFromVrOpLatch(uint16_t slice_mask, unsigned vrs0, BoolOp op,
                         LatchSrc src);

    /** RL op= VR[vrs0]. */
    void rlOpVr(uint16_t slice_mask, BoolOp op, unsigned vrs0);

    /** RL op= L. */
    void rlOpLatch(uint16_t slice_mask, BoolOp op, LatchSrc src);

    /** RL op= (VR[vrs0] op2 L). */
    void rlOpVrOpLatch(uint16_t slice_mask, BoolOp op, unsigned vrs0,
                       BoolOp op2, LatchSrc src);

    /** VR[vrs0] = RL via the write bit-line (or its negation). */
    void writeVrFromRl(uint16_t slice_mask, unsigned vrs0,
                       bool negate = false);

    /** Broadcast a per-slice constant into RL (CP-driven seed). */
    void rlFromImmediate(uint16_t slice_mask, bool value);

    /**
     * Latch the OR over each bank row of RL into GHL.
     * Afterwards LatchSrc::GHL reads that value back, broadcast to
     * every column of the bank.
     */
    void loadGhlFromRl(uint16_t slice_mask);

    /**
     * Latch the AND across participating slices of RL into GVL
     * (one bit per column).
     */
    void loadGvlFromRl(uint16_t slice_mask);

    // --- State inspection (tests) --------------------------------

    const BitVector &rlPlane(unsigned slice) const;
    bool ghlBit(unsigned bank, unsigned slice) const;
    const BitVector &gvl() const { return gvlState; }

  private:
    /** Resolve a latch source for `slice` into a full-width plane. */
    BitVector resolveLatch(unsigned slice, LatchSrc src) const;

    // Scalar reference bodies (the original per-bit loops), kept for
    // the equivalence tests behind setScalarReference().
    void rlFromVrScalar(uint16_t slice_mask, unsigned vrs0);
    void rlFromVrAndVrScalar(uint16_t slice_mask, unsigned vrs0,
                             unsigned vrs1);
    void rlOpVrScalar(uint16_t slice_mask, BoolOp op, unsigned vrs0);
    void rlFromVrOpLatchScalar(uint16_t slice_mask, unsigned vrs0,
                               BoolOp op, LatchSrc src);
    void rlOpVrOpLatchScalar(uint16_t slice_mask, BoolOp op,
                             unsigned vrs0, BoolOp op2, LatchSrc src);
    void writeVrFromRlScalar(uint16_t slice_mask, unsigned vrs0,
                             bool negate);
    void loadGhlFromRlScalar(uint16_t slice_mask);
    BitVector resolveGhlScalar(unsigned slice) const;
    BitVector maskBankEdgesScalar(BitVector plane,
                                  bool shifted_up) const;

    static void
    apply(BitVector &dst, BoolOp op, const BitVector &src)
    {
        switch (op) {
          case BoolOp::And:
            dst &= src;
            break;
          case BoolOp::Or:
            dst |= src;
            break;
          case BoolOp::Xor:
            dst ^= src;
            break;
        }
    }

    /** Zero the bits that crossed a bank boundary after a shift. */
    BitVector maskBankEdges(BitVector plane, bool shifted_up) const;

    VrFile &vrs;
    std::array<BitVector, 16> rlState;
    std::array<std::array<bool, 16>, 16> ghlState; // [bank][slice]
    BitVector gvlState;
    uint64_t uops = 0;
    bool scalarRef = false;

    // Precomputed per-word bank-edge keep masks: zeros at every
    // bank's first column (edgeKeepW, for west shifts) or last column
    // (edgeKeepE, for east shifts). One AND per word replaces one
    // plane.set() per bank.
    std::vector<uint64_t> edgeKeepW;
    std::vector<uint64_t> edgeKeepE;

    // Reusable plane scratch for the word-parallel op bodies (avoids
    // a fresh allocation per micro-op).
    std::array<BitVector, 16> scratch;
};

} // namespace cisram::apu

#endif // CISRAM_APUSIM_BITPROC_HH
