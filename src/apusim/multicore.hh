/**
 * @file
 * Four-core parallel execution helper.
 *
 * The device's cores are independent engines sharing only L4; a
 * data-parallel kernel shards its tiles across them and the
 * wall-clock latency is the slowest core's. This helper runs a shard
 * functor on every core — on worker threads from the simulator pool
 * (common/threadpool.hh), sized by CISRAM_SIM_THREADS — and reports
 * per-core and critical-path cycles, validating the tiles/numCores
 * accounting the timed kernels use.
 *
 * Determinism: results are bit-identical to a serial run for any
 * thread count. Per-core state (cycle ledger, register files, L1-L3)
 * is private, so cores never contend on it. Shared observability
 * (the metrics registry and the tracer) is redirected to per-core
 * shards while functors run — both in serial and threaded mode, so
 * the float accumulation order is the same path either way — and the
 * shards are merged into the globals in core order after all
 * functors return. A functor exception is captured per core and the
 * lowest-index one is rethrown on the calling thread after every
 * core has finished (shards from a failed batch are discarded).
 *
 * Functors may use the shared L4 (dev.l4()) concurrently: reads and
 * writes to *disjoint* regions are safe (the backing store uses an
 * atomic page table, see apusim/memory.hh). Writes to overlapping
 * regions are a data race in the simulated program itself, exactly
 * as they would be on the hardware.
 */

#ifndef CISRAM_APUSIM_MULTICORE_HH
#define CISRAM_APUSIM_MULTICORE_HH

#include <functional>
#include <vector>

#include "apusim/apu.hh"

namespace cisram::apu {

struct MultiCoreResult
{
    /** Critical path: the slowest core's cycles. */
    double maxCycles = 0;

    /** Sum across cores (total work). */
    double totalCycles = 0;

    std::vector<double> perCore;

    /** Load balance: max / mean (1.0 = perfectly balanced). */
    double
    imbalance() const
    {
        if (perCore.empty() || totalCycles == 0)
            return 1.0;
        return maxCycles * static_cast<double>(perCore.size()) /
            totalCycles;
    }
};

namespace detail {

using CoreFn = std::function<void(ApuCore &, unsigned, unsigned)>;

MultiCoreResult runOnAllCoresImpl(ApuDevice &dev, const CoreFn &fn);

} // namespace detail

/**
 * Run `fn(core, core_idx, num_cores)` on every core of the device,
 * in parallel when CISRAM_SIM_THREADS allows (see file comment for
 * the determinism guarantees). The functor is responsible for
 * processing its 1/num_cores share.
 */
template <typename Fn>
MultiCoreResult
runOnAllCores(ApuDevice &dev, Fn fn)
{
    return detail::runOnAllCoresImpl(dev, detail::CoreFn(fn));
}

/** Contiguous shard [begin, end) of `total` items for one core. */
struct Shard
{
    size_t begin;
    size_t end;
};

inline Shard
shardOf(size_t total, unsigned core_idx, unsigned num_cores)
{
    size_t stride = (total + num_cores - 1) / num_cores;
    size_t begin = std::min(total, core_idx * stride);
    size_t end = std::min(total, begin + stride);
    return {begin, end};
}

} // namespace cisram::apu

#endif // CISRAM_APUSIM_MULTICORE_HH
