/**
 * @file
 * Four-core execution helper.
 *
 * The device's cores are independent engines sharing only L4; a
 * data-parallel kernel shards its tiles across them and the
 * wall-clock latency is the slowest core's. This helper runs a shard
 * functor on every core (serially -- the simulator is
 * single-threaded by design) and reports per-core and critical-path
 * cycles, validating the tiles/numCores accounting the timed kernels
 * use.
 */

#ifndef CISRAM_APUSIM_MULTICORE_HH
#define CISRAM_APUSIM_MULTICORE_HH

#include <vector>

#include "apusim/apu.hh"

namespace cisram::apu {

struct MultiCoreResult
{
    /** Critical path: the slowest core's cycles. */
    double maxCycles = 0;

    /** Sum across cores (total work). */
    double totalCycles = 0;

    std::vector<double> perCore;

    /** Load balance: max / mean (1.0 = perfectly balanced). */
    double
    imbalance() const
    {
        if (perCore.empty() || totalCycles == 0)
            return 1.0;
        return maxCycles * static_cast<double>(perCore.size()) /
            totalCycles;
    }
};

/**
 * Run `fn(core, core_idx, num_cores)` on every core of the device.
 * The functor is responsible for processing its 1/num_cores share.
 */
template <typename Fn>
MultiCoreResult
runOnAllCores(ApuDevice &dev, Fn fn)
{
    MultiCoreResult r;
    for (unsigned c = 0; c < dev.numCores(); ++c) {
        ApuCore &core = dev.core(c);
        double before = core.stats().cycles();
        fn(core, c, dev.numCores());
        double cycles = core.stats().cycles() - before;
        r.perCore.push_back(cycles);
        r.totalCycles += cycles;
        r.maxCycles = std::max(r.maxCycles, cycles);
    }
    return r;
}

/** Contiguous shard [begin, end) of `total` items for one core. */
struct Shard
{
    size_t begin;
    size_t end;
};

inline Shard
shardOf(size_t total, unsigned core_idx, unsigned num_cores)
{
    size_t stride = (total + num_cores - 1) / num_cores;
    size_t begin = std::min(total, core_idx * stride);
    size_t end = std::min(total, begin + stride);
    return {begin, end};
}

} // namespace cisram::apu

#endif // CISRAM_APUSIM_MULTICORE_HH
