#include "apusim/apu.hh"

#include <cstring>

#include "common/bitutils.hh"
#include "common/metrics.hh"
#include "common/trace.hh"

namespace cisram::apu {

namespace {

/**
 * DMA-engine occupancy accounting: burst cycles keep `engines`
 * engine(s) busy. Only the burst portion occupies an engine; init
 * and descriptor overhead is control-processor time.
 */
void
noteDmaBusy(double burst_cycles, int engines, double repeat)
{
    if (!metrics::enabled())
        return;
    // Resolve per call: Registry::get() may return a per-core shard
    // inside runOnAllCores, so cached references would dangle once
    // the shard is merged and destroyed.
    auto &reg = metrics::Registry::get();
    reg.counter("apu.dma.engine_busy_cycles", {{"engine", "0"}})
        .inc(burst_cycles * repeat);
    if (engines > 1)
        reg.counter("apu.dma.engine_busy_cycles", {{"engine", "1"}})
            .inc(burst_cycles * repeat);
}

} // namespace

const ApuSpec &
defaultSpec()
{
    static const ApuSpec spec{};
    return spec;
}

const TimingParams &
defaultTiming()
{
    static const TimingParams timing{};
    return timing;
}

ApuCore::ApuCore(ApuDevice &device, unsigned core_id)
    : dev(device), coreId(core_id),
      vrs(device.spec().numVrs, device.spec().vrLength,
          device.spec().numBanks),
      l1_(device.spec().numVmrs, device.spec().vrLength),
      l2_(device.spec().l2Bytes),
      l3_(device.spec().l3Bytes),
      bitproc_(vrs)
{
    stats_.setTraceIds(device.tracePid(), core_id);
}

const ApuSpec &
ApuCore::spec() const
{
    return dev.spec();
}

const TimingParams &
ApuCore::timing() const
{
    return dev.timing();
}

uint64_t
ApuCore::chunkBurstCycles(size_t chunks, double per_byte) const
{
    // Whole-chunk granularity: a partial trailing chunk costs as much
    // as a full one. This is where the simulator diverges from the
    // framework's d/BW linear fit.
    double per_chunk = per_byte * static_cast<double>(
        spec().dmaChunkBytes);
    return static_cast<uint64_t>(chunks) *
        static_cast<uint64_t>(per_chunk + 0.5);
}

void
ApuCore::dmaL4ToL2(uint64_t l4_addr, size_t l2_off, size_t bytes)
{
    cisram_assert(l2_off + bytes <= l2_.size(), "L2 overflow");
    trace::OpScope op("apu.dmaL4ToL2",
                      static_cast<double>(bytes), 1);
    const auto &mv = timing().move;
    size_t chunks = divCeil(bytes, spec().dmaChunkBytes);
    uint64_t burst = chunkBurstCycles(chunks, mv.dmaL4L2PerByte);
    noteDmaBusy(static_cast<double>(burst), 1, stats_.repeat());
    stats_.charge(mv.dmaL4L2Init + timing().control.dmaDescriptor +
                  burst);
    if (functional()) {
        std::vector<uint8_t> buf(bytes);
        dev.l4().read(l4_addr, buf.data(), bytes);
        l2_.write(l2_off, buf.data(), bytes);
    }
}

void
ApuCore::dmaL2ToL4(uint64_t l4_addr, size_t l2_off, size_t bytes)
{
    cisram_assert(l2_off + bytes <= l2_.size(), "L2 read OOB");
    trace::OpScope op("apu.dmaL2ToL4",
                      static_cast<double>(bytes), 1);
    const auto &mv = timing().move;
    size_t chunks = divCeil(bytes, spec().dmaChunkBytes);
    uint64_t burst = chunkBurstCycles(chunks, mv.dmaL4L2PerByte);
    noteDmaBusy(static_cast<double>(burst), 1, stats_.repeat());
    stats_.charge(mv.dmaL4L2Init + timing().control.dmaDescriptor +
                  burst);
    if (functional()) {
        std::vector<uint8_t> buf(bytes);
        l2_.read(l2_off, buf.data(), bytes);
        dev.l4().write(l4_addr, buf.data(), bytes);
    }
}

void
ApuCore::dmaL4ToL3(uint64_t l4_addr, size_t l3_off, size_t bytes)
{
    cisram_assert(l3_off + bytes <= l3_.size(), "L3 overflow");
    trace::OpScope op("apu.dmaL4ToL3",
                      static_cast<double>(bytes), 1);
    const auto &mv = timing().move;
    size_t chunks = divCeil(bytes, spec().dmaChunkBytes);
    uint64_t burst = chunkBurstCycles(chunks, mv.dmaL4L3PerByte);
    noteDmaBusy(static_cast<double>(burst), 1, stats_.repeat());
    stats_.charge(mv.dmaL4L3Init + burst);
    if (functional()) {
        std::vector<uint8_t> buf(bytes);
        dev.l4().read(l4_addr, buf.data(), bytes);
        l3_.write(l3_off, buf.data(), bytes);
    }
}

void
ApuCore::dmaL3ToL4(uint64_t l4_addr, size_t l3_off, size_t bytes)
{
    cisram_assert(l3_off + bytes <= l3_.size(), "L3 read OOB");
    trace::OpScope op("apu.dmaL3ToL4",
                      static_cast<double>(bytes), 1);
    const auto &mv = timing().move;
    size_t chunks = divCeil(bytes, spec().dmaChunkBytes);
    uint64_t burst = chunkBurstCycles(chunks, mv.dmaL4L3PerByte);
    noteDmaBusy(static_cast<double>(burst), 1, stats_.repeat());
    stats_.charge(mv.dmaL4L3Init + burst);
    if (functional()) {
        std::vector<uint8_t> buf(bytes);
        l3_.read(l3_off, buf.data(), bytes);
        dev.l4().write(l4_addr, buf.data(), bytes);
    }
}

void
ApuCore::dmaL4ToL2Chunks(const std::vector<uint64_t> &chunk_srcs,
                         size_t l2_off)
{
    size_t chunk = spec().dmaChunkBytes;
    cisram_assert(l2_off + chunk_srcs.size() * chunk <= l2_.size(),
                  "L2 overflow in chunked DMA");
    trace::OpScope op("apu.dmaL4ToL2Chunks",
                      static_cast<double>(chunk_srcs.size() * chunk),
                      1);
    const auto &mv = timing().move;
    // One descriptor per transaction; source addresses are programmed
    // per chunk, so the burst cost is the same as a contiguous move.
    uint64_t burst =
        chunkBurstCycles(chunk_srcs.size(), mv.dmaL4L2PerByte);
    noteDmaBusy(static_cast<double>(burst), 1, stats_.repeat());
    stats_.charge(mv.dmaL4L2Init + timing().control.dmaDescriptor +
                  burst);
    if (functional()) {
        std::vector<uint8_t> buf(chunk);
        for (size_t i = 0; i < chunk_srcs.size(); ++i) {
            dev.l4().read(chunk_srcs[i], buf.data(), chunk);
            l2_.write(l2_off + i * chunk, buf.data(), chunk);
        }
    }
}

void
ApuCore::dmaL2ToL1(unsigned vmr)
{
    trace::OpScope op("apu.dmaL2ToL1",
                      static_cast<double>(spec().vrBytes()));
    stats_.charge(timing().move.dmaL2L1);
    if (functional()) {
        auto &slot = l1_.slot(vmr);
        l2_.read(0, slot.data(), slot.size() * 2);
    }
}

void
ApuCore::dmaL1ToL2(unsigned vmr)
{
    trace::OpScope op("apu.dmaL1ToL2",
                      static_cast<double>(spec().vrBytes()));
    stats_.charge(timing().move.dmaL2L1);
    if (functional()) {
        auto &slot = l1_.slot(vmr);
        l2_.write(0, slot.data(), slot.size() * 2);
    }
}

void
ApuCore::dmaL4ToL1(unsigned vmr, uint64_t l4_addr)
{
    const auto &mv = timing().move;
    size_t bytes = spec().vrBytes();
    trace::OpScope op("apu.dmaL4ToL1",
                      static_cast<double>(bytes), 2);
    size_t chunks = divCeil(bytes, spec().dmaChunkBytes);
    // The two DMA engines each stream half the vector; L2 staging and
    // the L2->L1 wide move are pipelined behind the stream.
    uint64_t burst =
        chunkBurstCycles(chunks / spec().dmaEnginesPerCore,
                         mv.dmaL4L2PerByte);
    noteDmaBusy(static_cast<double>(burst), 2, stats_.repeat());
    stats_.charge(mv.dmaL4L2Init + burst + mv.dmaL2L1 +
                  mv.pipeSyncL4L1);
    if (functional()) {
        auto &slot = l1_.slot(vmr);
        dev.l4().read(l4_addr, slot.data(), bytes);
    }
}

void
ApuCore::dmaL1ToL4(uint64_t l4_addr, unsigned vmr)
{
    const auto &mv = timing().move;
    size_t bytes = spec().vrBytes();
    trace::OpScope op("apu.dmaL1ToL4",
                      static_cast<double>(bytes), 2);
    size_t chunks = divCeil(bytes, spec().dmaChunkBytes);
    uint64_t burst =
        chunkBurstCycles(chunks / spec().dmaEnginesPerCore,
                         mv.dmaL4L2PerByte);
    noteDmaBusy(static_cast<double>(burst), 2, stats_.repeat());
    stats_.charge(mv.dmaL4L2Init + burst + mv.dmaL2L1 +
                  mv.pipeSyncL1L4);
    if (functional()) {
        auto &slot = l1_.slot(vmr);
        dev.l4().write(l4_addr, slot.data(), bytes);
    }
}

void
ApuCore::pioLoad(unsigned vr, size_t vr_start, size_t vr_stride,
                 uint64_t l4_addr, int64_t l4_stride_bytes, size_t n)
{
    trace::OpScope op("apu.pioLoad", static_cast<double>(n * 2));
    const auto &mv = timing().move;
    stats_.charge(timing().control.dmaDescriptor +
                  mv.pioLoadPerElem * n);
    if (functional()) {
        auto &reg = vrs[vr];
        for (size_t i = 0; i < n; ++i) {
            size_t dst = vr_start + i * vr_stride;
            cisram_assert(dst < reg.size(), "PIO load VR index OOB");
            uint64_t src = l4_addr +
                static_cast<uint64_t>(static_cast<int64_t>(i) *
                                      l4_stride_bytes);
            reg[dst] = dev.l4().readU16(src);
        }
    }
}

void
ApuCore::pioStore(uint64_t l4_addr, int64_t l4_stride_bytes,
                  unsigned vr, size_t vr_start, size_t vr_stride,
                  size_t n)
{
    trace::OpScope op("apu.pioStore", static_cast<double>(n * 2));
    const auto &mv = timing().move;
    stats_.charge(timing().control.dmaDescriptor +
                  mv.pioStorePerElem * n);
    if (functional()) {
        const auto &reg = vrs[vr];
        for (size_t i = 0; i < n; ++i) {
            size_t src = vr_start + i * vr_stride;
            cisram_assert(src < reg.size(), "PIO store VR index OOB");
            uint64_t dst = l4_addr +
                static_cast<uint64_t>(static_cast<int64_t>(i) *
                                      l4_stride_bytes);
            dev.l4().writeU16(dst, reg[src]);
        }
    }
}

uint16_t
ApuCore::rspGet(unsigned vr, size_t idx)
{
    // Serial retrieval through the response FIFO: priced like a PIO
    // store of one element.
    trace::OpScope op("apu.rspGet", 2.0);
    stats_.charge(timing().move.pioStorePerElem);
    if (functional()) {
        cisram_assert(idx < vrs.length());
        return vrs[vr][idx];
    }
    return 0;
}

void
ApuCore::rspSet(unsigned vr, size_t idx, uint16_t value)
{
    trace::OpScope op("apu.rspSet", 2.0);
    stats_.charge(timing().move.pioLoadPerElem);
    if (functional()) {
        cisram_assert(idx < vrs.length());
        vrs[vr][idx] = value;
    }
}

void
ApuCore::lookup(unsigned dst_vr, unsigned idx_vr, size_t l3_off,
                size_t table_entries)
{
    trace::OpScope op("apu.lookup");
    const auto &mv = timing().move;
    uint64_t granules = divCeil(table_entries, mv.lookupGranule);
    chargeVectorOp(mv.lookupInit + granules * mv.lookupPerGranule);
    if (functional()) {
        cisram_assert(l3_off + table_entries * 2 <= l3_.size(),
                      "lookup table exceeds L3");
        auto &dst = vrs[dst_vr];
        const auto &idx = vrs[idx_vr];
        for (size_t i = 0; i < vrs.length(); ++i) {
            size_t entry = idx[i];
            cisram_assert(entry < table_entries,
                          "lookup index OOB: ", entry, " >= ",
                          table_entries);
            dst[i] = l3_.readU16(l3_off + entry * 2);
        }
    }
}

void
ApuCore::loadVr(unsigned vr, unsigned vmr)
{
    trace::OpScope op("apu.loadVr",
                      static_cast<double>(spec().vrBytes()));
    chargeVectorOp(timing().move.loadVr);
    if (functional())
        vrs[vr] = l1_.slot(vmr);
}

void
ApuCore::storeVr(unsigned vmr, unsigned vr)
{
    trace::OpScope op("apu.storeVr",
                      static_cast<double>(spec().vrBytes()));
    chargeVectorOp(timing().move.storeVr);
    if (functional())
        l1_.slot(vmr) = vrs[vr];
}

ApuDevice::ApuDevice(ApuSpec spec, TimingParams timing)
    : spec_(spec), timing_(timing), dram(spec.l4Bytes),
      alloc(spec.l4Bytes)
{
    // Arm the observability layer from the environment
    // (CISRAM_TRACE / CISRAM_METRICS) on first device construction.
    trace::Tracer::init();
    metrics::initFromEnv();
    if (trace::active())
        tracePid_ = trace::Tracer::get().registerProcess("apu");
    for (unsigned i = 0; i < spec_.numCores; ++i)
        cores.push_back(std::make_unique<ApuCore>(*this, i));
}

ApuCore &
ApuDevice::core(unsigned i)
{
    cisram_assert(i < cores.size(), "core index OOB");
    return *cores[i];
}

} // namespace cisram::apu
