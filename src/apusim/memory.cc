#include "apusim/memory.hh"

#include <algorithm>

namespace cisram::apu {

uint8_t *
DeviceDram::pageFor(uint64_t addr, bool create) const
{
    uint64_t page = addr / pageBytes;
    auto it = pages.find(page);
    if (it != pages.end())
        return it->second.get();
    if (!create)
        return nullptr;
    auto mem = std::make_unique<uint8_t[]>(pageBytes);
    std::fill_n(mem.get(), pageBytes, 0);
    uint8_t *raw = mem.get();
    pages.emplace(page, std::move(mem));
    return raw;
}

void
DeviceDram::read(uint64_t addr, void *dst, size_t n) const
{
    cisram_assert(addr + n <= capacity_, "DRAM read OOB at ", addr);
    uint8_t *out = static_cast<uint8_t *>(dst);
    while (n > 0) {
        uint64_t off = addr % pageBytes;
        size_t chunk = std::min<size_t>(n, pageBytes - off);
        const uint8_t *page = pageFor(addr, false);
        if (page)
            std::memcpy(out, page + off, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        n -= chunk;
    }
}

void
DeviceDram::write(uint64_t addr, const void *src, size_t n)
{
    cisram_assert(addr + n <= capacity_, "DRAM write OOB at ", addr);
    const uint8_t *in = static_cast<const uint8_t *>(src);
    while (n > 0) {
        uint64_t off = addr % pageBytes;
        size_t chunk = std::min<size_t>(n, pageBytes - off);
        uint8_t *page = pageFor(addr, true);
        std::memcpy(page + off, in, chunk);
        addr += chunk;
        in += chunk;
        n -= chunk;
    }
}

} // namespace cisram::apu
