#include "apusim/memory.hh"

#include <algorithm>

#include "common/bitutils.hh"

namespace cisram::apu {

DeviceDram::DeviceDram(uint64_t capacity)
    : capacity_(capacity),
      dir_(divCeil(divCeil(capacity, pageBytes), chunkPages))
{
    for (auto &c : dir_)
        c.store(nullptr, std::memory_order_relaxed);
}

DeviceDram::~DeviceDram()
{
    for (auto &slot : dir_) {
        Chunk *c = slot.load(std::memory_order_relaxed);
        if (!c)
            continue;
        for (auto &p : c->pages)
            delete[] p.load(std::memory_order_relaxed);
        delete c;
    }
}

uint8_t *
DeviceDram::pageFor(uint64_t addr, bool create) const
{
    uint64_t page = addr / pageBytes;
    std::atomic<Chunk *> &cslot = dir_[page / chunkPages];
    Chunk *c = cslot.load(std::memory_order_acquire);
    if (!c) {
        if (!create)
            return nullptr;
        // First touch of this 256 MB span: install a zeroed chunk; a
        // racing core may win the CAS, in which case ours is dropped.
        Chunk *freshChunk = new Chunk();
        if (cslot.compare_exchange_strong(c, freshChunk,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire))
            c = freshChunk;
        else
            delete freshChunk;
    }
    std::atomic<uint8_t *> &slot = c->pages[page % chunkPages];
    uint8_t *raw = slot.load(std::memory_order_acquire);
    if (raw || !create)
        return raw;
    // First touch: allocate a zeroed page; same CAS discipline.
    uint8_t *fresh = new uint8_t[pageBytes]();
    if (slot.compare_exchange_strong(raw, fresh,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        resident_.fetch_add(1, std::memory_order_relaxed);
        return fresh;
    }
    delete[] fresh;
    return raw;
}

void
DeviceDram::read(uint64_t addr, void *dst, size_t n) const
{
    cisram_assert(addr + n <= capacity_, "DRAM read OOB at ", addr);
    uint8_t *out = static_cast<uint8_t *>(dst);
    while (n > 0) {
        uint64_t off = addr % pageBytes;
        size_t chunk = std::min<size_t>(n, pageBytes - off);
        const uint8_t *page = pageFor(addr, false);
        if (page)
            std::memcpy(out, page + off, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        n -= chunk;
    }
}

void
DeviceDram::write(uint64_t addr, const void *src, size_t n)
{
    cisram_assert(addr + n <= capacity_, "DRAM write OOB at ", addr);
    const uint8_t *in = static_cast<const uint8_t *>(src);
    while (n > 0) {
        uint64_t off = addr % pageBytes;
        size_t chunk = std::min<size_t>(n, pageBytes - off);
        uint8_t *page = pageFor(addr, true);
        std::memcpy(page + off, in, chunk);
        addr += chunk;
        in += chunk;
        n -= chunk;
    }
}

} // namespace cisram::apu
