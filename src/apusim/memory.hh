/**
 * @file
 * The APU's four-level memory hierarchy (paper Fig. 3).
 *
 * L4: 16 GB device DRAM shared by the four cores (sparse, paged
 *     backing store so paper-scale footprints don't require resident
 *     host memory).
 * L3: 1 MB control-processor cache; holds lookup tables.
 * L2: 64 KB scratchpad; DMA staging buffer for one full vector.
 * L1: 48 vector memory registers (VMRs) of one full vector each.
 */

#ifndef CISRAM_APUSIM_MEMORY_HH
#define CISRAM_APUSIM_MEMORY_HH

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "apusim/apu_spec.hh"
#include "common/logging.hh"

namespace cisram::apu {

/**
 * Sparse byte-addressable device DRAM.
 *
 * Pages are allocated on first write; reads of untouched pages return
 * zero. Addresses are device addresses (offsets into the 16 GB space).
 *
 * Thread safety: the page table is a two-level array of atomic
 * pointers (a small directory of lazily created chunks, each a fixed
 * array of page pointers), so concurrent cores may read and write
 * *disjoint* device regions without locks — a losing racer on
 * first-touch chunk or page creation just frees its copy and uses the
 * winner's. The directory keeps construction O(capacity / 256 MB)
 * instead of O(pages), which matters for timing-only runs that build
 * a 16 GB device and never touch its DRAM. Overlapping concurrent
 * writes are a race in the simulated program, as on real hardware.
 */
class DeviceDram
{
  public:
    explicit DeviceDram(uint64_t capacity);
    ~DeviceDram();

    DeviceDram(const DeviceDram &) = delete;
    DeviceDram &operator=(const DeviceDram &) = delete;

    uint64_t capacity() const { return capacity_; }

    /** Copy `n` bytes from the device address space into `dst`. */
    void read(uint64_t addr, void *dst, size_t n) const;

    /** Copy `n` bytes from `src` into the device address space. */
    void write(uint64_t addr, const void *src, size_t n);

    uint16_t
    readU16(uint64_t addr) const
    {
        uint16_t v;
        read(addr, &v, 2);
        return v;
    }

    void
    writeU16(uint64_t addr, uint16_t v)
    {
        write(addr, &v, 2);
    }

    /** Number of resident pages (for tests / footprint checks). */
    size_t
    residentPages() const
    {
        return resident_.load(std::memory_order_relaxed);
    }

    static constexpr size_t pageBytes = 64 * 1024;
    /** Page pointers per directory chunk (256 MB of address span). */
    static constexpr size_t chunkPages = 4096;

  private:
    struct Chunk
    {
        std::atomic<uint8_t *> pages[chunkPages];
    };

    uint8_t *pageFor(uint64_t addr, bool create) const;

    uint64_t capacity_;
    mutable std::vector<std::atomic<Chunk *>> dir_;
    mutable std::atomic<size_t> resident_{0};
};

/**
 * Linear allocator over the device DRAM address space with
 * exact-size block recycling.
 *
 * alloc() bumps a cursor; free() returns the block to a size-keyed
 * free list that alloc() consults first, so steady-state serving
 * loops (same-size query buffers allocated and freed per request)
 * run in constant device footprint. Live allocations are tracked so
 * GdlContext can detect leaks at teardown. All operations are
 * thread-safe (mutex; allocation is far off the simulator hot path).
 */
class DramAllocator
{
  public:
    explicit DramAllocator(uint64_t capacity) : capacity_(capacity) {}

    /** Allocate `n` bytes aligned to `align` (power of two). */
    uint64_t
    alloc(uint64_t n, uint64_t align = 512)
    {
        auto base = tryAlloc(n, align);
        cisram_assert(base.has_value(), "device DRAM exhausted: ", n,
                      " bytes requested");
        return *base;
    }

    /**
     * Allocate, reporting exhaustion as nullopt instead of dying —
     * the recoverable path behind GdlContext::tryMemAllocAligned.
     */
    std::optional<uint64_t>
    tryAlloc(uint64_t n, uint64_t align = 512)
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto range = freeBySize_.equal_range(n);
        for (auto it = range.first; it != range.second; ++it) {
            if (it->second % align == 0) {
                uint64_t base = it->second;
                freeBySize_.erase(it);
                live_.emplace(base, n);
                return base;
            }
        }
        uint64_t base = (cursor + align - 1) & ~(align - 1);
        if (base + n > capacity_)
            return std::nullopt;
        cursor = base + n;
        live_.emplace(base, n);
        return base;
    }

    /** Return a block obtained from alloc(); double-free panics. */
    void
    free(uint64_t base)
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = live_.find(base);
        cisram_assert(it != live_.end(),
                      "freeing unallocated device address ", base);
        freeBySize_.emplace(it->second, base);
        live_.erase(it);
    }

    /** Drop every allocation and recycle list; cursor back to 0. */
    void
    reset()
    {
        std::lock_guard<std::mutex> lk(mu_);
        cursor = 0;
        live_.clear();
        freeBySize_.clear();
    }

    uint64_t
    used() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return cursor;
    }

    /** Outstanding (allocated, not freed) blocks. */
    size_t
    liveCount() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return live_.size();
    }

    /** Outstanding bytes. */
    uint64_t
    liveBytes() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        uint64_t total = 0;
        for (const auto &kv : live_)
            total += kv.second;
        return total;
    }

  private:
    uint64_t capacity_;
    uint64_t cursor = 0;
    mutable std::mutex mu_;
    std::unordered_map<uint64_t, uint64_t> live_; ///< base -> size
    std::multimap<uint64_t, uint64_t> freeBySize_; ///< size -> base
};

/** Flat on-chip SRAM buffer (used for both L2 and L3). */
class SramBuffer
{
  public:
    explicit SramBuffer(size_t bytes) : data(bytes, 0) {}

    size_t size() const { return data.size(); }

    void
    read(size_t addr, void *dst, size_t n) const
    {
        cisram_assert(addr + n <= data.size(), "SRAM read OOB");
        std::memcpy(dst, data.data() + addr, n);
    }

    void
    write(size_t addr, const void *src, size_t n)
    {
        cisram_assert(addr + n <= data.size(), "SRAM write OOB");
        std::memcpy(data.data() + addr, src, n);
    }

    uint16_t
    readU16(size_t addr) const
    {
        uint16_t v;
        read(addr, &v, 2);
        return v;
    }

    void
    writeU16(size_t addr, uint16_t v)
    {
        write(addr, &v, 2);
    }

    uint8_t *raw() { return data.data(); }
    const uint8_t *raw() const { return data.data(); }

  private:
    std::vector<uint8_t> data;
};

/**
 * L1: the bank of vector memory registers backing the compute VRs.
 *
 * Transfers to/from L1 happen only at full-vector granularity
 * (Section 2.1.2), which the VMR interface enforces.
 */
class VmrFile
{
  public:
    VmrFile(unsigned num_vmrs, size_t vr_length)
        : vrLength(vr_length),
          slots(num_vmrs, std::vector<uint16_t>(vr_length, 0))
    {}

    unsigned numVmrs() const
    {
        return static_cast<unsigned>(slots.size());
    }

    size_t length() const { return vrLength; }

    std::vector<uint16_t> &
    slot(unsigned i)
    {
        cisram_assert(i < slots.size(), "VMR index OOB: ", i);
        return slots[i];
    }

    const std::vector<uint16_t> &
    slot(unsigned i) const
    {
        cisram_assert(i < slots.size(), "VMR index OOB: ", i);
        return slots[i];
    }

  private:
    size_t vrLength;
    std::vector<std::vector<uint16_t>> slots;
};

} // namespace cisram::apu

#endif // CISRAM_APUSIM_MEMORY_HH
