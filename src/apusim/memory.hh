/**
 * @file
 * The APU's four-level memory hierarchy (paper Fig. 3).
 *
 * L4: 16 GB device DRAM shared by the four cores (sparse, paged
 *     backing store so paper-scale footprints don't require resident
 *     host memory).
 * L3: 1 MB control-processor cache; holds lookup tables.
 * L2: 64 KB scratchpad; DMA staging buffer for one full vector.
 * L1: 48 vector memory registers (VMRs) of one full vector each.
 */

#ifndef CISRAM_APUSIM_MEMORY_HH
#define CISRAM_APUSIM_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "apusim/apu_spec.hh"
#include "common/logging.hh"

namespace cisram::apu {

/**
 * Sparse byte-addressable device DRAM.
 *
 * Pages are allocated on first write; reads of untouched pages return
 * zero. Addresses are device addresses (offsets into the 16 GB space).
 */
class DeviceDram
{
  public:
    explicit DeviceDram(uint64_t capacity) : capacity_(capacity) {}

    uint64_t capacity() const { return capacity_; }

    /** Copy `n` bytes from the device address space into `dst`. */
    void read(uint64_t addr, void *dst, size_t n) const;

    /** Copy `n` bytes from `src` into the device address space. */
    void write(uint64_t addr, const void *src, size_t n);

    uint16_t
    readU16(uint64_t addr) const
    {
        uint16_t v;
        read(addr, &v, 2);
        return v;
    }

    void
    writeU16(uint64_t addr, uint16_t v)
    {
        write(addr, &v, 2);
    }

    /** Number of resident pages (for tests / footprint checks). */
    size_t residentPages() const { return pages.size(); }

    static constexpr size_t pageBytes = 64 * 1024;

  private:
    uint8_t *pageFor(uint64_t addr, bool create) const;

    uint64_t capacity_;
    mutable std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>>
        pages;
};

/** Simple linear allocator over the device DRAM address space. */
class DramAllocator
{
  public:
    explicit DramAllocator(uint64_t capacity) : capacity_(capacity) {}

    /** Allocate `n` bytes aligned to `align` (power of two). */
    uint64_t
    alloc(uint64_t n, uint64_t align = 512)
    {
        uint64_t base = (cursor + align - 1) & ~(align - 1);
        cisram_assert(base + n <= capacity_, "device DRAM exhausted");
        cursor = base + n;
        return base;
    }

    void reset() { cursor = 0; }

    uint64_t used() const { return cursor; }

  private:
    uint64_t capacity_;
    uint64_t cursor = 0;
};

/** Flat on-chip SRAM buffer (used for both L2 and L3). */
class SramBuffer
{
  public:
    explicit SramBuffer(size_t bytes) : data(bytes, 0) {}

    size_t size() const { return data.size(); }

    void
    read(size_t addr, void *dst, size_t n) const
    {
        cisram_assert(addr + n <= data.size(), "SRAM read OOB");
        std::memcpy(dst, data.data() + addr, n);
    }

    void
    write(size_t addr, const void *src, size_t n)
    {
        cisram_assert(addr + n <= data.size(), "SRAM write OOB");
        std::memcpy(data.data() + addr, src, n);
    }

    uint16_t
    readU16(size_t addr) const
    {
        uint16_t v;
        read(addr, &v, 2);
        return v;
    }

    void
    writeU16(size_t addr, uint16_t v)
    {
        write(addr, &v, 2);
    }

    uint8_t *raw() { return data.data(); }
    const uint8_t *raw() const { return data.data(); }

  private:
    std::vector<uint8_t> data;
};

/**
 * L1: the bank of vector memory registers backing the compute VRs.
 *
 * Transfers to/from L1 happen only at full-vector granularity
 * (Section 2.1.2), which the VMR interface enforces.
 */
class VmrFile
{
  public:
    VmrFile(unsigned num_vmrs, size_t vr_length)
        : vrLength(vr_length),
          slots(num_vmrs, std::vector<uint16_t>(vr_length, 0))
    {}

    unsigned numVmrs() const
    {
        return static_cast<unsigned>(slots.size());
    }

    size_t length() const { return vrLength; }

    std::vector<uint16_t> &
    slot(unsigned i)
    {
        cisram_assert(i < slots.size(), "VMR index OOB: ", i);
        return slots[i];
    }

    const std::vector<uint16_t> &
    slot(unsigned i) const
    {
        cisram_assert(i < slots.size(), "VMR index OOB: ", i);
        return slots[i];
    }

  private:
    size_t vrLength;
    std::vector<std::vector<uint16_t>> slots;
};

} // namespace cisram::apu

#endif // CISRAM_APUSIM_MEMORY_HH
