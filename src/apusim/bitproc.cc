#include <utility>

#include "apusim/bitproc.hh"

namespace cisram::apu {

BitProcArray::BitProcArray(VrFile &vrs)
    : vrs(vrs), gvlState(vrs.length())
{
    // Bank geometry invariant: every bank owns exactly bankElems()
    // columns (VrFile asserts num_banks divides the length), so the
    // edge positions cleared below and the GHL broadcast ranges are
    // always in bounds — no ragged tail exists at the bank level.
    cisram_assert(vrs.length() ==
                      vrs.bankElems() * vrs.numBanks(),
                  "VR length must tile exactly into banks");
    for (auto &plane : rlState)
        plane = BitVector(vrs.length());
    for (auto &bank : ghlState)
        bank.fill(false);

    size_t words = (vrs.length() + 63) / 64;
    edgeKeepW.assign(words, ~0ull);
    edgeKeepE.assign(words, ~0ull);
    size_t step = vrs.bankElems();
    for (size_t edge = 0; edge < vrs.length(); edge += step) {
        size_t lo = edge;            // bank's first column
        size_t hi = edge + step - 1; // bank's last column
        edgeKeepW[lo / 64] &= ~(1ull << (lo % 64));
        edgeKeepE[hi / 64] &= ~(1ull << (hi % 64));
    }
}

const BitVector &
BitProcArray::rlPlane(unsigned slice) const
{
    cisram_assert(slice < 16);
    return rlState[slice];
}

bool
BitProcArray::ghlBit(unsigned bank, unsigned slice) const
{
    cisram_assert(bank < vrs.numBanks() && slice < 16);
    return ghlState[bank][slice];
}

BitVector
BitProcArray::maskBankEdgesScalar(BitVector plane,
                                  bool shifted_up) const
{
    // After shifting the whole plane by one column, the bit that
    // entered each bank from the neighbouring bank must be cleared:
    // the east/west wires do not cross bank boundaries.
    size_t step = vrs.bankElems();
    for (size_t edge = 0; edge < plane.size(); edge += step) {
        size_t pos = shifted_up ? edge : edge + step - 1;
        plane.set(pos, false);
    }
    return plane;
}

BitVector
BitProcArray::maskBankEdges(BitVector plane, bool shifted_up) const
{
    if (scalarRef)
        return maskBankEdgesScalar(std::move(plane), shifted_up);
    const auto &keep = shifted_up ? edgeKeepW : edgeKeepE;
    for (size_t w = 0; w < plane.numWords(); ++w)
        plane.setWord(w, plane.word(w) & keep[w]);
    return plane;
}

BitVector
BitProcArray::resolveGhlScalar(unsigned slice) const
{
    // Broadcast each bank's horizontal latch to its columns.
    BitVector out(vrs.length());
    size_t step = vrs.bankElems();
    for (unsigned b = 0; b < vrs.numBanks(); ++b) {
        if (!ghlState[b][slice])
            continue;
        for (size_t i = 0; i < step; ++i)
            out.set(b * step + i, true);
    }
    return out;
}

BitVector
BitProcArray::resolveLatch(unsigned slice, LatchSrc src) const
{
    switch (src) {
      case LatchSrc::RL:
        return rlState[slice];
      case LatchSrc::GVL:
        return gvlState;
      case LatchSrc::GHL: {
        if (scalarRef)
            return resolveGhlScalar(slice);
        // Broadcast each bank's horizontal latch to its columns:
        // one word-granular range fill per latched bank.
        BitVector out(vrs.length());
        size_t step = vrs.bankElems();
        for (unsigned b = 0; b < vrs.numBanks(); ++b)
            if (ghlState[b][slice])
                out.setRange(b * step, (b + 1) * step, true);
        return out;
      }
      case LatchSrc::RL_N:
        return slice + 1 < 16 ? rlState[slice + 1]
                              : BitVector(vrs.length());
      case LatchSrc::RL_S:
        return slice > 0 ? rlState[slice - 1]
                         : BitVector(vrs.length());
      case LatchSrc::RL_E:
        // East neighbour: column index + 1 within the bank, so the
        // value seen at column i comes from i + 1.
        return maskBankEdges(rlState[slice].shiftedDown(1), false);
      case LatchSrc::RL_W:
        return maskBankEdges(rlState[slice].shiftedUp(1), true);
    }
    cisram_panic("unknown latch source");
}

// --- RL <- VR reads -------------------------------------------------

void
BitProcArray::rlFromVrScalar(uint16_t slice_mask, unsigned vrs0)
{
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            rlState[s] = vrs.slicePlane(vrs0, s);
}

void
BitProcArray::rlFromVr(uint16_t slice_mask, unsigned vrs0)
{
    ++uops;
    if (scalarRef)
        rlFromVrScalar(slice_mask, vrs0);
    else
        vrs.slicePlanes(vrs0, slice_mask, rlState);
}

void
BitProcArray::rlFromVrAndVrScalar(uint16_t slice_mask, unsigned vrs0,
                                  unsigned vrs1)
{
    for (unsigned s = 0; s < 16; ++s) {
        if ((slice_mask >> s) & 1) {
            rlState[s] = vrs.slicePlane(vrs0, s);
            rlState[s] &= vrs.slicePlane(vrs1, s);
        }
    }
}

void
BitProcArray::rlFromVrAndVr(uint16_t slice_mask, unsigned vrs0,
                            unsigned vrs1)
{
    ++uops;
    if (scalarRef)
        rlFromVrAndVrScalar(slice_mask, vrs0, vrs1);
    else
        vrs.slicePlanesAnd(vrs0, vrs1, slice_mask, rlState);
}

void
BitProcArray::rlFromLatch(uint16_t slice_mask, LatchSrc src)
{
    ++uops;
    std::array<BitVector, 16> next;
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            next[s] = resolveLatch(s, src);
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            rlState[s] = std::move(next[s]);
}

void
BitProcArray::rlFromVrOpLatchScalar(uint16_t slice_mask,
                                    unsigned vrs0, BoolOp op,
                                    LatchSrc src)
{
    std::array<BitVector, 16> next;
    for (unsigned s = 0; s < 16; ++s) {
        if ((slice_mask >> s) & 1) {
            next[s] = vrs.slicePlane(vrs0, s);
            apply(next[s], op, resolveLatch(s, src));
        }
    }
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            rlState[s] = std::move(next[s]);
}

void
BitProcArray::rlFromVrOpLatch(uint16_t slice_mask, unsigned vrs0,
                              BoolOp op, LatchSrc src)
{
    ++uops;
    if (scalarRef) {
        rlFromVrOpLatchScalar(slice_mask, vrs0, op, src);
        return;
    }
    // Extract all planes in one sweep, combine with the latches
    // (which may read rlState, hence combine-before-commit), then
    // commit.
    vrs.slicePlanes(vrs0, slice_mask, scratch);
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            apply(scratch[s], op, resolveLatch(s, src));
    // Swap, not move: scratch keeps a correctly sized buffer for the
    // next op to reuse (a moved-from plane would report the right
    // size with no storage behind it).
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            std::swap(rlState[s], scratch[s]);
}

void
BitProcArray::rlOpVrScalar(uint16_t slice_mask, BoolOp op,
                           unsigned vrs0)
{
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            apply(rlState[s], op, vrs.slicePlane(vrs0, s));
}

void
BitProcArray::rlOpVr(uint16_t slice_mask, BoolOp op, unsigned vrs0)
{
    ++uops;
    if (scalarRef) {
        rlOpVrScalar(slice_mask, op, vrs0);
        return;
    }
    vrs.slicePlanes(vrs0, slice_mask, scratch);
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            apply(rlState[s], op, scratch[s]);
}

void
BitProcArray::rlOpLatch(uint16_t slice_mask, BoolOp op, LatchSrc src)
{
    ++uops;
    std::array<BitVector, 16> operands;
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            operands[s] = resolveLatch(s, src);
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            apply(rlState[s], op, operands[s]);
}

void
BitProcArray::rlOpVrOpLatchScalar(uint16_t slice_mask, BoolOp op,
                                  unsigned vrs0, BoolOp op2,
                                  LatchSrc src)
{
    std::array<BitVector, 16> operands;
    for (unsigned s = 0; s < 16; ++s) {
        if ((slice_mask >> s) & 1) {
            operands[s] = vrs.slicePlane(vrs0, s);
            apply(operands[s], op2, resolveLatch(s, src));
        }
    }
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            apply(rlState[s], op, operands[s]);
}

void
BitProcArray::rlOpVrOpLatch(uint16_t slice_mask, BoolOp op,
                            unsigned vrs0, BoolOp op2, LatchSrc src)
{
    ++uops;
    if (scalarRef) {
        rlOpVrOpLatchScalar(slice_mask, op, vrs0, op2, src);
        return;
    }
    vrs.slicePlanes(vrs0, slice_mask, scratch);
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            apply(scratch[s], op2, resolveLatch(s, src));
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            apply(rlState[s], op, scratch[s]);
}

// --- VR writes ------------------------------------------------------

void
BitProcArray::writeVrFromRlScalar(uint16_t slice_mask, unsigned vrs0,
                                  bool negate)
{
    for (unsigned s = 0; s < 16; ++s) {
        if ((slice_mask >> s) & 1) {
            if (negate) {
                BitVector plane = rlState[s];
                plane.invert();
                vrs.setSlicePlane(vrs0, s, plane);
            } else {
                vrs.setSlicePlane(vrs0, s, rlState[s]);
            }
        }
    }
}

void
BitProcArray::writeVrFromRl(uint16_t slice_mask, unsigned vrs0,
                            bool negate)
{
    ++uops;
    if (scalarRef)
        writeVrFromRlScalar(slice_mask, vrs0, negate);
    else
        vrs.setSlicePlanes(vrs0, slice_mask, rlState, negate);
}

void
BitProcArray::rlFromImmediate(uint16_t slice_mask, bool value)
{
    ++uops;
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            rlState[s].fill(value);
}

// --- Global latches -------------------------------------------------

void
BitProcArray::loadGhlFromRlScalar(uint16_t slice_mask)
{
    size_t step = vrs.bankElems();
    for (unsigned s = 0; s < 16; ++s) {
        if (!((slice_mask >> s) & 1))
            continue;
        for (unsigned b = 0; b < vrs.numBanks(); ++b) {
            bool any = false;
            for (size_t i = 0; i < step && !any; ++i)
                any = rlState[s].get(b * step + i);
            ghlState[b][s] = any;
        }
    }
}

void
BitProcArray::loadGhlFromRl(uint16_t slice_mask)
{
    ++uops;
    if (scalarRef) {
        loadGhlFromRlScalar(slice_mask);
        return;
    }
    size_t step = vrs.bankElems();
    for (unsigned s = 0; s < 16; ++s) {
        if (!((slice_mask >> s) & 1))
            continue;
        for (unsigned b = 0; b < vrs.numBanks(); ++b)
            ghlState[b][s] =
                rlState[s].anyInRange(b * step, (b + 1) * step);
    }
}

void
BitProcArray::loadGvlFromRl(uint16_t slice_mask)
{
    ++uops;
    // AND across the participating slices, per column.
    BitVector acc(vrs.length(), true);
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            acc &= rlState[s];
    gvlState = std::move(acc);
}

} // namespace cisram::apu
