#include "apusim/bitproc.hh"

namespace cisram::apu {

BitProcArray::BitProcArray(VrFile &vrs)
    : vrs(vrs), gvlState(vrs.length())
{
    for (auto &plane : rlState)
        plane = BitVector(vrs.length());
    for (auto &bank : ghlState)
        bank.fill(false);
}

const BitVector &
BitProcArray::rlPlane(unsigned slice) const
{
    cisram_assert(slice < 16);
    return rlState[slice];
}

bool
BitProcArray::ghlBit(unsigned bank, unsigned slice) const
{
    cisram_assert(bank < vrs.numBanks() && slice < 16);
    return ghlState[bank][slice];
}

BitVector
BitProcArray::maskBankEdges(BitVector plane, bool shifted_up) const
{
    // After shifting the whole plane by one column, the bit that
    // entered each bank from the neighbouring bank must be cleared:
    // the east/west wires do not cross bank boundaries.
    size_t step = vrs.bankElems();
    for (size_t edge = 0; edge < plane.size(); edge += step) {
        size_t pos = shifted_up ? edge : edge + step - 1;
        plane.set(pos, false);
    }
    return plane;
}

BitVector
BitProcArray::resolveLatch(unsigned slice, LatchSrc src) const
{
    switch (src) {
      case LatchSrc::RL:
        return rlState[slice];
      case LatchSrc::GVL:
        return gvlState;
      case LatchSrc::GHL: {
        // Broadcast each bank's horizontal latch to its columns.
        BitVector out(vrs.length());
        size_t step = vrs.bankElems();
        for (unsigned b = 0; b < vrs.numBanks(); ++b) {
            if (!ghlState[b][slice])
                continue;
            for (size_t i = 0; i < step; ++i)
                out.set(b * step + i, true);
        }
        return out;
      }
      case LatchSrc::RL_N:
        return slice + 1 < 16 ? rlState[slice + 1]
                              : BitVector(vrs.length());
      case LatchSrc::RL_S:
        return slice > 0 ? rlState[slice - 1]
                         : BitVector(vrs.length());
      case LatchSrc::RL_E:
        // East neighbour: column index + 1 within the bank, so the
        // value seen at column i comes from i + 1.
        return maskBankEdges(rlState[slice].shiftedDown(1), false);
      case LatchSrc::RL_W:
        return maskBankEdges(rlState[slice].shiftedUp(1), true);
    }
    cisram_panic("unknown latch source");
}

void
BitProcArray::rlFromVr(uint16_t slice_mask, unsigned vrs0)
{
    ++uops;
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            rlState[s] = vrs.slicePlane(vrs0, s);
}

void
BitProcArray::rlFromVrAndVr(uint16_t slice_mask, unsigned vrs0,
                            unsigned vrs1)
{
    ++uops;
    for (unsigned s = 0; s < 16; ++s) {
        if ((slice_mask >> s) & 1) {
            rlState[s] = vrs.slicePlane(vrs0, s);
            rlState[s] &= vrs.slicePlane(vrs1, s);
        }
    }
}

void
BitProcArray::rlFromLatch(uint16_t slice_mask, LatchSrc src)
{
    ++uops;
    std::array<BitVector, 16> next;
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            next[s] = resolveLatch(s, src);
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            rlState[s] = std::move(next[s]);
}

void
BitProcArray::rlFromVrOpLatch(uint16_t slice_mask, unsigned vrs0,
                              BoolOp op, LatchSrc src)
{
    ++uops;
    std::array<BitVector, 16> next;
    for (unsigned s = 0; s < 16; ++s) {
        if ((slice_mask >> s) & 1) {
            next[s] = vrs.slicePlane(vrs0, s);
            apply(next[s], op, resolveLatch(s, src));
        }
    }
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            rlState[s] = std::move(next[s]);
}

void
BitProcArray::rlOpVr(uint16_t slice_mask, BoolOp op, unsigned vrs0)
{
    ++uops;
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            apply(rlState[s], op, vrs.slicePlane(vrs0, s));
}

void
BitProcArray::rlOpLatch(uint16_t slice_mask, BoolOp op, LatchSrc src)
{
    ++uops;
    std::array<BitVector, 16> operands;
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            operands[s] = resolveLatch(s, src);
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            apply(rlState[s], op, operands[s]);
}

void
BitProcArray::rlOpVrOpLatch(uint16_t slice_mask, BoolOp op,
                            unsigned vrs0, BoolOp op2, LatchSrc src)
{
    ++uops;
    std::array<BitVector, 16> operands;
    for (unsigned s = 0; s < 16; ++s) {
        if ((slice_mask >> s) & 1) {
            operands[s] = vrs.slicePlane(vrs0, s);
            apply(operands[s], op2, resolveLatch(s, src));
        }
    }
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            apply(rlState[s], op, operands[s]);
}

void
BitProcArray::writeVrFromRl(uint16_t slice_mask, unsigned vrs0,
                            bool negate)
{
    ++uops;
    for (unsigned s = 0; s < 16; ++s) {
        if ((slice_mask >> s) & 1) {
            if (negate) {
                BitVector plane = rlState[s];
                plane.invert();
                vrs.setSlicePlane(vrs0, s, plane);
            } else {
                vrs.setSlicePlane(vrs0, s, rlState[s]);
            }
        }
    }
}

void
BitProcArray::rlFromImmediate(uint16_t slice_mask, bool value)
{
    ++uops;
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            rlState[s].fill(value);
}

void
BitProcArray::loadGhlFromRl(uint16_t slice_mask)
{
    ++uops;
    size_t step = vrs.bankElems();
    for (unsigned s = 0; s < 16; ++s) {
        if (!((slice_mask >> s) & 1))
            continue;
        for (unsigned b = 0; b < vrs.numBanks(); ++b) {
            bool any = false;
            for (size_t i = 0; i < step && !any; ++i)
                any = rlState[s].get(b * step + i);
            ghlState[b][s] = any;
        }
    }
}

void
BitProcArray::loadGvlFromRl(uint16_t slice_mask)
{
    ++uops;
    // AND across the participating slices, per column.
    BitVector acc(vrs.length(), true);
    for (unsigned s = 0; s < 16; ++s)
        if ((slice_mask >> s) & 1)
            acc &= rlState[s];
    gvlState = std::move(acc);
}

} // namespace cisram::apu
