/**
 * @file
 * Architectural constants of the simulated GSI APU (Leda-E).
 *
 * Values follow the paper (Section 2, Table 1): a four-core device at
 * 500 MHz; each core is a 32768-element, 16-bit vector engine with 24
 * computation-enabled vector registers striped over 16 physical banks
 * and 48 background vector memory registers (VMRs) forming L1.
 */

#ifndef CISRAM_APUSIM_APU_SPEC_HH
#define CISRAM_APUSIM_APU_SPEC_HH

#include <cstdint>
#include <cstddef>

namespace cisram::apu {

struct ApuSpec
{
    /** Device clock in Hz (500 MHz). */
    double clockHz = 500.0e6;

    /** APU cores per device. */
    unsigned numCores = 4;

    /** Elements per vector register. */
    size_t vrLength = 32768;

    /** Computation-enabled vector registers per core. */
    unsigned numVrs = 24;

    /** Physical SRAM banks per core. */
    unsigned numBanks = 16;

    /** Elements per bank (vrLength / numBanks). */
    size_t bankElems = 2048;

    /** Bit-slices per bank (== element width in bits). */
    unsigned numSlices = 16;

    /** L1 background registers (VMRs) per core. */
    unsigned numVmrs = 48;

    /** L2 scratchpad bytes (one full 32K x 16-bit vector). */
    size_t l2Bytes = 64 * 1024;

    /** L3 control-processor cache bytes. */
    size_t l3Bytes = 1024 * 1024;

    /** Device DRAM (L4) bytes. */
    uint64_t l4Bytes = 16ull * 1024 * 1024 * 1024;

    /** DMA transfer granularity in bytes. */
    size_t dmaChunkBytes = 512;

    /** Parallel DMA engines per core. */
    unsigned dmaEnginesPerCore = 2;

    /** Bytes of one full vector register. */
    size_t vrBytes() const { return vrLength * 2; }

    /** Seconds per cycle. */
    double secondsPerCycle() const { return 1.0 / clockHz; }
};

/** Default device specification (the paper's Leda-E). */
const ApuSpec &defaultSpec();

} // namespace cisram::apu

#endif // CISRAM_APUSIM_APU_SPEC_HH
