/**
 * @file
 * Cycle accounting with tagged regions and repeat scopes.
 *
 * Every timed event in the simulator flows through a CycleStats
 * instance. Two mechanisms support the paper's evaluation methodology:
 *
 *  - Tags attribute cycles to breakdown categories (the stages of
 *    Fig. 12 and Table 8: load LHS/RHS, VR ops, store, top-k, ...).
 *  - Repeat scopes multiply charged cycles by a tile multiplicity so
 *    that paper-scale workloads (1.5 GB inputs, 200 GB corpora) can be
 *    timed by executing one representative tile functionally and
 *    accounting for the rest, which is exact on this architecture
 *    because op latency is data-independent.
 *
 * When the observability layer is armed (CISRAM_TRACE set, or
 * metrics::setEnabled(true)), each charge additionally emits a trace
 * span and per-op counters; the disabled cost is two global bool
 * tests (see common/trace.hh and common/metrics.hh).
 */

#ifndef CISRAM_APUSIM_CYCLE_STATS_HH
#define CISRAM_APUSIM_CYCLE_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"

namespace cisram::apu {

class CycleStats
{
  public:
    /** Charge `cycles`, scaled by active repeat scopes. */
    void
    charge(uint64_t cycles)
    {
        double scaled = static_cast<double>(cycles) * repeatFactor;
        double start = total_;
        total_ += scaled;
        if (!tagStack.empty())
            tagged_[tagStack.back()] += scaled;
        if (trace::active() || metrics::enabled()) [[unlikely]]
            observeCharge(start, scaled);
    }

    /** Count one microcode instruction (scaled by repeat scopes). */
    void countUop(double n = 1.0) { uops_ += n * repeatFactor; }

    /** Total cycles charged so far. */
    double cycles() const { return total_; }

    /** Total microcode instructions issued. */
    double uops() const { return uops_; }

    /** Cycles attributed to `tag` (0 if never used). */
    double
    taggedCycles(const std::string &tag) const
    {
        auto it = tagged_.find(tag);
        return it == tagged_.end() ? 0.0 : it->second;
    }

    /** All tags with charged cycles. */
    const std::map<std::string, double> &breakdown() const
    {
        return tagged_;
    }

    /** Reset all counters (tag/repeat scopes must be closed). */
    void
    reset()
    {
        cisram_assert(tagStack.empty(),
                      "CycleStats::reset with ", tagStack.size(),
                      " open tag scope(s)");
        cisram_assert(repeatStack.empty(),
                      "CycleStats::reset with ", repeatStack.size(),
                      " open repeat scope(s)");
        total_ = 0.0;
        uops_ = 0.0;
        tagged_.clear();
    }

    void
    pushTag(std::string tag)
    {
        tagStack.push_back(std::move(tag));
    }

    void
    popTag()
    {
        cisram_assert(!tagStack.empty(),
                      "popTag without a matching pushTag");
        tagStack.pop_back();
    }

    void
    pushRepeat(double n)
    {
        repeatStack.push_back(n);
        repeatFactor *= n;
    }

    void
    popRepeat()
    {
        cisram_assert(!repeatStack.empty(),
                      "popRepeat without a matching pushRepeat");
        repeatFactor /= repeatStack.back();
        repeatStack.pop_back();
    }

    /** Current aggregate repeat multiplier. */
    double repeat() const { return repeatFactor; }

    /** Trace identity: owning device (pid) and core (tid). */
    void
    setTraceIds(uint32_t pid, uint32_t tid)
    {
        tracePid = pid;
        traceTid = tid;
    }

  private:
    /** Cold path: emit a trace span and per-op metrics. */
    void observeCharge(double start, double scaled);

    double total_ = 0.0;
    double uops_ = 0.0;
    std::map<std::string, double> tagged_;
    std::vector<std::string> tagStack;
    std::vector<double> repeatStack;
    double repeatFactor = 1.0;
    uint32_t tracePid = 0;
    uint32_t traceTid = 0;
};

/** RAII tag scope: cycles charged inside accrue to `tag`. */
class ScopedTag
{
  public:
    ScopedTag(CycleStats &stats, std::string tag) : stats_(stats)
    {
        stats_.pushTag(std::move(tag));
    }

    ~ScopedTag() { stats_.popTag(); }

    ScopedTag(const ScopedTag &) = delete;
    ScopedTag &operator=(const ScopedTag &) = delete;

  private:
    CycleStats &stats_;
};

/** RAII repeat scope: cycles charged inside are multiplied by n. */
class ScopedRepeat
{
  public:
    ScopedRepeat(CycleStats &stats, double n) : stats_(stats)
    {
        stats_.pushRepeat(n);
    }

    ~ScopedRepeat() { stats_.popRepeat(); }

    ScopedRepeat(const ScopedRepeat &) = delete;
    ScopedRepeat &operator=(const ScopedRepeat &) = delete;

  private:
    CycleStats &stats_;
};

} // namespace cisram::apu

#endif // CISRAM_APUSIM_CYCLE_STATS_HH
