/**
 * @file
 * Roofline model for compute-in-SRAM devices (paper Fig. 2).
 *
 * The compute roof is the device's peak throughput for the profiled
 * operation mix (the paper profiles 16-bit unsigned multiply and
 * accumulate); the memory roof is off-chip bandwidth times the
 * kernel's operational intensity.
 */

#ifndef CISRAM_MODEL_ROOFLINE_HH
#define CISRAM_MODEL_ROOFLINE_HH

#include <algorithm>

#include "model/cost_table.hh"

namespace cisram::model {

class Roofline
{
  public:
    /**
     * @param peak_ops_per_sec Compute roof in ops/s.
     * @param mem_bytes_per_sec Off-chip memory bandwidth in B/s.
     */
    Roofline(double peak_ops_per_sec, double mem_bytes_per_sec)
        : peak(peak_ops_per_sec), bw(mem_bytes_per_sec)
    {}

    double peakOpsPerSec() const { return peak; }
    double memBandwidth() const { return bw; }

    /** Attainable throughput (ops/s) at operational intensity oi. */
    double
    attainable(double oi) const
    {
        return std::min(peak, bw * oi);
    }

    /** OI at which the two roofs meet (the ridge point). */
    double ridge() const { return peak / bw; }

    /**
     * Compute roof for 16-bit unsigned MAC derived from the cost
     * table: every mul_u16 + add_u16 pair retires 2 ops per element
     * across all lanes of all cores.
     */
    static Roofline
    u16MacRoofline(const CostTable &t, double mem_bytes_per_sec)
    {
        double cycles_per_pair = t.mulU16 + t.addU16;
        double ops_per_sec = 2.0 *
            static_cast<double>(t.vrLength) * t.numCores * t.clockHz /
            cycles_per_pair;
        return Roofline(ops_per_sec, mem_bytes_per_sec);
    }

    /**
     * Compute roof for binary (XNOR/popcount) MAC: one xor_16 +
     * popcnt_16 + ashift + sub_s16 sequence retires 2*16 bit-ops per
     * u16 element.
     */
    static Roofline
    binaryMacRoofline(const CostTable &t, double mem_bytes_per_sec)
    {
        double cycles = t.xor16 + t.popcnt16 + t.ashift + t.subS16;
        double ops_per_sec = 2.0 * 16.0 *
            static_cast<double>(t.vrLength) * t.numCores * t.clockHz /
            cycles;
        return Roofline(ops_per_sec, mem_bytes_per_sec);
    }

  private:
    double peak;
    double bw;
};

} // namespace cisram::model

#endif // CISRAM_MODEL_ROOFLINE_HH
