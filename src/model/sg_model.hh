/**
 * @file
 * The subgroup-reduction cost model of the paper's Eq. 1.
 *
 *   T_sg_add(r, s) = p3*(log2 s)^3 + p2*(log2 s)^2 + p1*log2 s + p0
 *   p_i = alpha_i * log2 r + beta_i
 *
 * The eight coefficients (alpha_i, beta_i) are "experimentally
 * determined constants": this module fits them by ordinary least
 * squares against latencies profiled on the simulator, exactly the
 * methodology the paper prescribes for porting the framework to a
 * new device ("deriving the necessary parameters through profiling",
 * Section 3.1).
 */

#ifndef CISRAM_MODEL_SG_MODEL_HH
#define CISRAM_MODEL_SG_MODEL_HH

#include <cstddef>
#include <vector>

namespace cisram::apu {
class ApuCore;
}

namespace cisram::model {

/** One profiled observation. */
struct SgSample
{
    size_t grp;
    size_t subgrp;
    double cycles;
};

class SubgroupReductionModel
{
  public:
    /** Construct with all coefficients zero (must fit before use). */
    SubgroupReductionModel() = default;

    /**
     * Fit alpha/beta by least squares over profiled samples.
     * Requires at least 8 samples spanning multiple (r, s) pairs.
     */
    void fit(const std::vector<SgSample> &samples);

    /** Predicted cycles for add_subgrp_s16 over (grp, subgrp). */
    double predict(size_t grp, size_t subgrp) const;

    /** True once fit() has run. */
    bool fitted() const { return fitted_; }

    /** Mean absolute relative error of the fit over its samples. */
    double fitError() const { return fitError_; }

    /** Coefficients, index i in [0,3]: p_i = alpha[i]*log2 r + beta[i]. */
    double alpha(unsigned i) const { return alpha_[i]; }
    double beta(unsigned i) const { return beta_[i]; }

    /**
     * Profile the simulator over a grid of (grp, subgrp) pairs in
     * timing-only mode and return the samples (does not disturb
     * functional state).
     */
    static std::vector<SgSample> profile(apu::ApuCore &core);

    /** Convenience: profile `core` then fit. */
    void calibrate(apu::ApuCore &core);

  private:
    double alpha_[4] = {0, 0, 0, 0};
    double beta_[4] = {0, 0, 0, 0};
    bool fitted_ = false;
    double fitError_ = 0.0;
};

} // namespace cisram::model

#endif // CISRAM_MODEL_SG_MODEL_HH
