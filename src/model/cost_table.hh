/**
 * @file
 * The analytical cost table of the framework (paper Tables 4 and 5).
 *
 * These are the *analytical* models (linear fits, constants) the
 * framework uses for prediction, as distinct from the simulator's
 * decomposed ground-truth timing in src/apusim/timing.hh. Keeping the
 * two separate is what makes the Table 7 validation meaningful: the
 * framework predicts, the simulator measures, and the error is a
 * genuine output.
 *
 * All parameters are plain data so the design-space explorer can vary
 * them (Section 1: "supports architectural design space exploration
 * by enabling the tuning of key design parameters").
 */

#ifndef CISRAM_MODEL_COST_TABLE_HH
#define CISRAM_MODEL_COST_TABLE_HH

#include <cstdint>
#include <cstddef>

namespace cisram::model {

/** Analytical cost table; defaults are the paper's measured fits. */
struct CostTable
{
    // ---- Table 4: data movement (cycles) -------------------------
    double dmaL4L3PerByte = 0.19;
    double dmaL4L3Init = 41164;
    double dmaL4L2PerByte = 0.63;
    double dmaL4L2Init = 548;
    double dmaL2L1 = 386;
    double dmaL4L1 = 22272;
    double dmaL1L4 = 22186;
    double pioLdPerElem = 57;
    double pioStPerElem = 61;
    double lookupPerEntry = 7.15;
    double lookupInit = 629;
    double loadStore = 29;
    double cpy = 29;
    double cpySubgrp = 82;
    double cpyImm = 13;
    double shiftPerStep = 373;
    double shiftIntraBankBase = 8;

    // ---- Table 5: computation (cycles) ---------------------------
    double and16 = 12;
    double or16 = 8;
    double not16 = 10;
    double xor16 = 12;
    double ashift = 15;
    double addU16 = 12;
    double addS16 = 13;
    double subU16 = 15;
    double subS16 = 16;
    double popcnt16 = 23;
    double mulU16 = 115;
    double mulS16 = 201;
    double mulF16 = 77;
    double divU16 = 664;
    double divS16 = 739;
    double eq16 = 13;
    double gtU16 = 13;
    double ltU16 = 13;
    double ltGf16 = 45;
    double geU16 = 13;
    double leU16 = 13;
    double recipU16 = 735;
    double expF16 = 40295;
    double sinFx = 761;
    double cosFx = 761;
    double countM = 239;
    double minU16 = 13;
    double maxU16 = 13;
    double selectMsk = 13;
    double srImm = 15;
    double slImm = 15;
    double createGrpIndex = 26;

    // ---- architectural parameters --------------------------------
    double clockHz = 500.0e6;
    size_t vrLength = 32768;
    unsigned numCores = 4;
    unsigned numVmrs = 48;

    // ---- composite models (Section 3.2) --------------------------

    /** T_DMA = d / BW + T_init for L4 -> L2 (d in bytes). */
    double
    dmaL4L2(double bytes) const
    {
        return dmaL4L2PerByte * bytes + dmaL4L2Init;
    }

    /** T_DMA for the control-processor L4 -> L3 path. */
    double
    dmaL4L3(double bytes) const
    {
        return dmaL4L3PerByte * bytes + dmaL4L3Init;
    }

    /** T_PIO = n * T_access. */
    double pioLd(double n) const { return pioLdPerElem * n; }
    double pioSt(double n) const { return pioStPerElem * n; }

    /** T_lookup = C * sigma + T_init (sigma = table entries). */
    double
    lookup(double entries) const
    {
        return lookupPerEntry * entries + lookupInit;
    }

    /** T_shift_e: C*k generic, 8 + k/4 on the intra-bank path. */
    double
    shiftE(double k) const
    {
        if (k == 0)
            return cpy;
        double mag = k < 0 ? -k : k;
        if (static_cast<uint64_t>(mag) % 4 == 0)
            return shiftIntraBankBase + mag / 4.0;
        return shiftPerStep * mag;
    }

    /** Cycles -> seconds at the configured clock. */
    double seconds(double cycles) const { return cycles / clockHz; }
};

} // namespace cisram::model

#endif // CISRAM_MODEL_COST_TABLE_HH
