/**
 * @file
 * The analytical latency estimator (paper Section 3.4, Fig. 6).
 *
 * Mirrors the GVML/DMA call surface so an APU program can be
 * transliterated into a model program; the estimator interprets the
 * calls against the analytical cost table and reports total latency.
 * The paper implements this as a Python library; here it is a C++
 * class with the same role, plus a repeat() helper that models a loop
 * of shape-invariant iterations in O(1).
 */

#ifndef CISRAM_MODEL_LATENCY_ESTIMATOR_HH
#define CISRAM_MODEL_LATENCY_ESTIMATOR_HH

#include <functional>

#include "model/cost_table.hh"
#include "model/sg_model.hh"

namespace cisram::model {

class LatencyEstimator
{
  public:
    explicit LatencyEstimator(CostTable table = CostTable{})
        : table_(table)
    {}

    /** Access the cost table (e.g. for DSE parameter sweeps). */
    CostTable &table() { return table_; }
    const CostTable &table() const { return table_; }

    /** Install a calibrated subgroup-reduction model (Eq. 1). */
    void setSgModel(SubgroupReductionModel m) { sg = std::move(m); }
    const SubgroupReductionModel &sgModel() const { return sg; }

    // ---- accumulation --------------------------------------------

    /** Charge raw cycles (escape hatch for custom operations). */
    void charge(double cycles) { total += cycles * factor; }

    /**
     * Model `n` iterations of a shape-invariant loop body: the body
     * is evaluated once and its charges are scaled by n. Nests.
     */
    void
    repeat(double n, const std::function<void()> &body)
    {
        double saved = factor;
        factor *= n;
        body();
        factor = saved;
    }

    double cycles() const { return total; }
    double seconds() const { return table_.seconds(total); }
    double microseconds() const { return seconds() * 1e6; }
    void reset() { total = 0.0; }

    // ---- data movement (Table 4) ----------------------------------
    void fastDmaL4ToL2(double bytes) { charge(table_.dmaL4L2(bytes)); }
    void fastDmaL2ToL4(double bytes) { charge(table_.dmaL4L2(bytes)); }
    void dmaL4ToL3(double bytes) { charge(table_.dmaL4L3(bytes)); }
    void directDmaL2ToL1_32k() { charge(table_.dmaL2L1); }
    void directDmaL1ToL2_32k() { charge(table_.dmaL2L1); }
    void directDmaL4ToL1_32k() { charge(table_.dmaL4L1); }
    void directDmaL1ToL4_32k() { charge(table_.dmaL1L4); }
    void pioLd(double n) { charge(table_.pioLd(n)); }
    void pioSt(double n) { charge(table_.pioSt(n)); }
    void lookup(double entries) { charge(table_.lookup(entries)); }
    void gvmlLoad16() { charge(table_.loadStore); }
    void gvmlStore16() { charge(table_.loadStore); }
    void gvmlCpy16() { charge(table_.cpy); }
    void gvmlCpySubgrp16Grp() { charge(table_.cpySubgrp); }
    void gvmlCpyImm16() { charge(table_.cpyImm); }
    void gvmlShiftE(double k) { charge(table_.shiftE(k)); }

    // ---- computation (Table 5) ------------------------------------
    void gvmlAnd16() { charge(table_.and16); }
    void gvmlOr16() { charge(table_.or16); }
    void gvmlNot16() { charge(table_.not16); }
    void gvmlXor16() { charge(table_.xor16); }
    void gvmlAsh16() { charge(table_.ashift); }
    void gvmlAddU16() { charge(table_.addU16); }
    void gvmlAddS16() { charge(table_.addS16); }
    void gvmlSubU16() { charge(table_.subU16); }
    void gvmlSubS16() { charge(table_.subS16); }
    void gvmlPopcnt16() { charge(table_.popcnt16); }
    void gvmlMulU16() { charge(table_.mulU16); }
    void gvmlMulS16() { charge(table_.mulS16); }
    void gvmlMulF16() { charge(table_.mulF16); }
    void gvmlDivU16() { charge(table_.divU16); }
    void gvmlDivS16() { charge(table_.divS16); }
    void gvmlEq16() { charge(table_.eq16); }
    void gvmlGtU16() { charge(table_.gtU16); }
    void gvmlLtU16() { charge(table_.ltU16); }
    void gvmlLtGf16() { charge(table_.ltGf16); }
    void gvmlGeU16() { charge(table_.geU16); }
    void gvmlLeU16() { charge(table_.leU16); }
    void gvmlRecipU16() { charge(table_.recipU16); }
    void gvmlExpF16() { charge(table_.expF16); }
    void gvmlSinFx() { charge(table_.sinFx); }
    void gvmlCosFx() { charge(table_.cosFx); }
    void gvmlCountM() { charge(table_.countM); }
    void gvmlMinU16() { charge(table_.minU16); }
    void gvmlMaxU16() { charge(table_.maxU16); }
    void gvmlCpy16Msk() { charge(table_.selectMsk); }
    void gvmlCpyImm16Msk() { charge(table_.selectMsk); }
    void gvmlCpyFromMrk16() { charge(2 * table_.selectMsk); }
    void gvmlSrImm16() { charge(table_.srImm); }
    void gvmlSlImm16() { charge(table_.slImm); }
    void gvmlCreateGrpIndexU16() { charge(table_.createGrpIndex); }

    /** Hierarchical subgroup reduction, modeled by Eq. 1. */
    void
    gvmlAddSubgrpS16(size_t grp, size_t subgrp)
    {
        if (grp == subgrp) {
            gvmlCpy16();
            return;
        }
        charge(sg.predict(grp, subgrp));
    }

    /** Associative max/min search (16 refinement steps + fetch). */
    void
    gvmlMaxIndexU16()
    {
        charge(16.0 * (table_.and16 + table_.or16 + 4.0) +
               table_.pioStPerElem);
    }

  private:
    CostTable table_;
    SubgroupReductionModel sg;
    double total = 0.0;
    double factor = 1.0;
};

} // namespace cisram::model

#endif // CISRAM_MODEL_LATENCY_ESTIMATOR_HH
