#include "model/sg_model.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"
#include "gvml/gvml.hh"

namespace cisram::model {

void
SubgroupReductionModel::fit(const std::vector<SgSample> &samples)
{
    cisram_assert(samples.size() >= 8,
                  "need >= 8 samples to fit 8 coefficients");
    // Basis per sample: { ls^i, lr*ls^i } for i in 0..3, so that
    // T = sum_i (beta_i + alpha_i * lr) * ls^i.
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (const auto &s : samples) {
        double lr = std::log2(static_cast<double>(s.grp));
        double ls = std::log2(static_cast<double>(s.subgrp));
        std::vector<double> row(8);
        double p = 1.0;
        for (int i = 0; i < 4; ++i) {
            row[i] = p;          // beta_i basis
            row[4 + i] = lr * p; // alpha_i basis
            p *= ls;
        }
        x.push_back(std::move(row));
        y.push_back(s.cycles);
    }
    auto coef = leastSquares(x, y);
    for (int i = 0; i < 4; ++i) {
        beta_[i] = coef[i];
        alpha_[i] = coef[4 + i];
    }
    fitted_ = true;

    double err_sum = 0.0;
    for (const auto &s : samples) {
        double p = predict(s.grp, s.subgrp);
        err_sum += std::fabs(p - s.cycles) / s.cycles;
    }
    fitError_ = err_sum / static_cast<double>(samples.size());
}

double
SubgroupReductionModel::predict(size_t grp, size_t subgrp) const
{
    cisram_assert(fitted_, "subgroup model used before calibration");
    double lr = std::log2(static_cast<double>(grp));
    double ls = std::log2(static_cast<double>(subgrp));
    double t = 0.0;
    double p = 1.0;
    for (int i = 0; i < 4; ++i) {
        t += (alpha_[i] * lr + beta_[i]) * p;
        p *= ls;
    }
    return t;
}

std::vector<SgSample>
SubgroupReductionModel::profile(apu::ApuCore &core)
{
    gvml::Gvml g(core);
    auto saved_mode = core.mode();
    core.setMode(apu::ExecMode::TimingOnly);

    std::vector<SgSample> samples;
    for (size_t grp = 16; grp <= core.vr().length(); grp *= 4) {
        for (size_t subgrp = 1; subgrp <= grp / 2; subgrp *= 2) {
            core.stats().reset();
            g.addSubgrpS16(gvml::Vr(0), gvml::Vr(1), grp, subgrp);
            samples.push_back({grp, subgrp, core.stats().cycles()});
        }
    }
    core.stats().reset();
    core.setMode(saved_mode);
    return samples;
}

void
SubgroupReductionModel::calibrate(apu::ApuCore &core)
{
    fit(profile(core));
}

} // namespace cisram::model
