/**
 * @file
 * Design-space exploration over the analytical framework.
 *
 * The framework "supports architectural design space exploration by
 * enabling the tuning of key design parameters" (paper Section 1).
 * A DesignParameter names one knob of the CostTable; the explorer
 * sweeps knobs and evaluates an objective (typically a kernel's
 * predicted latency) at each point.
 */

#ifndef CISRAM_MODEL_DSE_HH
#define CISRAM_MODEL_DSE_HH

#include <functional>
#include <string>
#include <vector>

#include "model/cost_table.hh"

namespace cisram::model {

/** One tunable architectural knob. */
struct DesignParameter
{
    std::string name;
    std::function<void(CostTable &, double)> apply;
    std::vector<double> values;
};

/** Result of evaluating one design point. */
struct DesignPointResult
{
    double value;     ///< knob setting
    double objective; ///< objective at that setting
};

/** Result of a 2-D sweep. */
struct DesignPoint2D
{
    double a;
    double b;
    double objective;
};

class DesignSpaceExplorer
{
  public:
    using Objective = std::function<double(const CostTable &)>;

    explicit DesignSpaceExplorer(CostTable base = CostTable{})
        : base_(base)
    {}

    /** Sweep one knob, evaluating the objective at each value. */
    std::vector<DesignPointResult>
    sweep(const DesignParameter &p, const Objective &objective) const
    {
        std::vector<DesignPointResult> out;
        for (double v : p.values) {
            CostTable t = base_;
            p.apply(t, v);
            out.push_back({v, objective(t)});
        }
        return out;
    }

    /** Cartesian sweep of two knobs. */
    std::vector<DesignPoint2D>
    sweep2D(const DesignParameter &a, const DesignParameter &b,
            const Objective &objective) const
    {
        std::vector<DesignPoint2D> out;
        for (double va : a.values) {
            for (double vb : b.values) {
                CostTable t = base_;
                a.apply(t, va);
                b.apply(t, vb);
                out.push_back({va, vb, objective(t)});
            }
        }
        return out;
    }

    const CostTable &base() const { return base_; }

    // ---- standard knobs -------------------------------------------

    /** DMA L4<->L2 bandwidth scaling (1.0 = the GSI device). */
    static DesignParameter
    dmaBandwidthScale(std::vector<double> scales)
    {
        return {"dma_bandwidth_scale",
                [](CostTable &t, double s) {
                    t.dmaL4L2PerByte /= s;
                    t.dmaL4L3PerByte /= s;
                    t.dmaL4L1 = t.dmaL4L1 / s;
                    t.dmaL1L4 = t.dmaL1L4 / s;
                },
                std::move(scales)};
    }

    /** Vector register length in elements. */
    static DesignParameter
    vrLength(std::vector<double> lengths)
    {
        return {"vr_length",
                [](CostTable &t, double l) {
                    t.vrLength = static_cast<size_t>(l);
                },
                std::move(lengths)};
    }

    /** Lookup cost slope scaling (layout-engine aggressiveness). */
    static DesignParameter
    lookupCostScale(std::vector<double> scales)
    {
        return {"lookup_cost_scale",
                [](CostTable &t, double s) {
                    t.lookupPerEntry *= s;
                },
                std::move(scales)};
    }

    /** PIO per-element cost scaling. */
    static DesignParameter
    pioCostScale(std::vector<double> scales)
    {
        return {"pio_cost_scale",
                [](CostTable &t, double s) {
                    t.pioLdPerElem *= s;
                    t.pioStPerElem *= s;
                },
                std::move(scales)};
    }

  private:
    CostTable base_;
};

} // namespace cisram::model

#endif // CISRAM_MODEL_DSE_HH
