/**
 * @file
 * DRAM device configurations for the off-chip memory simulator.
 *
 * The paper models the shared off-chip memory with a simulated HBM2e
 * (16 GB, 2 ranks, 8 channels, 1.6 GHz, 380-420 GB/s peak) using
 * Ramulator 2 and DRAMPower 5.0 (Section 5.3.1). This module defines
 * equivalent configurations for our bank-state-machine simulator:
 * HBM2e for the RAG experiments and a DDR4 profile matching the
 * device's native 23.8 GB/s DRAM.
 */

#ifndef CISRAM_DRAMSIM_DRAM_CONFIG_HH
#define CISRAM_DRAMSIM_DRAM_CONFIG_HH

#include <cstdint>
#include <string>

namespace cisram::dram {

/** Row-buffer management policy. */
enum class PagePolicy
{
    Open,   ///< rows stay open; streams amortize activates
    Closed, ///< auto-precharge after every column access
};

/**
 * Timing and geometry of one DRAM configuration. All timing values
 * are in memory-controller clock cycles; the data bus is DDR (two
 * transfers per cycle).
 */
struct DramConfig
{
    std::string name;

    PagePolicy pagePolicy = PagePolicy::Open;

    // Geometry.
    unsigned channels;
    unsigned ranksPerChannel;
    unsigned banksPerRank;
    uint64_t rowBytes;       ///< row-buffer size per bank
    unsigned busBits;        ///< data bus width per channel
    unsigned burstLength;    ///< transfers per column access (BL)

    // Clocking.
    double clockHz;          ///< controller/bus clock (DDR: x2 data)

    // Core timing parameters (cycles).
    unsigned tRCD;           ///< ACT -> RD/WR
    unsigned tRP;            ///< PRE -> ACT
    unsigned tCL;            ///< RD -> first data
    unsigned tRAS;           ///< ACT -> PRE minimum
    unsigned tCCD;           ///< column-to-column (same bank group)
    unsigned tRRD;           ///< ACT -> ACT (different banks)
    unsigned tWR;            ///< write recovery
    unsigned tRFC;           ///< refresh cycle time
    unsigned tREFI;          ///< refresh interval

    /** Bytes delivered by one column access (burst). */
    uint64_t
    burstBytes() const
    {
        return static_cast<uint64_t>(busBits) / 8 * burstLength;
    }

    /** Peak bandwidth in bytes per second across all channels. */
    double
    peakBandwidth() const
    {
        // DDR: two transfers per clock.
        return static_cast<double>(busBits) / 8 * 2.0 * clockHz *
            channels;
    }

    /** tRC: full row cycle. */
    unsigned tRC() const { return tRAS + tRP; }
};

/**
 * HBM2e, 16 GB, 8 channels, 2 ranks (pseudo-channels folded into
 * ranks), 1.6 GHz. Peak bandwidth: 128 bit / 8 * 2 * 1.6e9 * 8 =
 * 409.6 GB/s, inside the paper's 380-420 GB/s window.
 */
DramConfig hbm2eConfig();

/** Device DDR4: single 64-bit channel at 1.49 GHz ~= 23.8 GB/s peak. */
DramConfig ddr4DeviceConfig();

/**
 * Per-operation energy for the power model (DRAMPower-style
 * abstraction, folded from IDD measurements into pJ per event).
 */
struct DramEnergyConfig
{
    double actPrePj;        ///< one ACT+PRE pair, per bank
    double rdBurstPj;       ///< one read burst on the bus
    double wrBurstPj;       ///< one write burst on the bus
    double refreshPj;       ///< one refresh command (all banks)
    double backgroundWatts; ///< static/background power, whole stack
};

/** HBM2e energy profile (~3.9 pJ/bit at the core, plus background). */
DramEnergyConfig hbm2eEnergyConfig();

/** DDR4 energy profile (~15 pJ/bit end-to-end). */
DramEnergyConfig ddr4EnergyConfig();

} // namespace cisram::dram

#endif // CISRAM_DRAMSIM_DRAM_CONFIG_HH
