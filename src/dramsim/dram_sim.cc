#include "dramsim/dram_sim.hh"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"
#include "fault/fault.hh"

namespace cisram::dram {

DramConfig
hbm2eConfig()
{
    DramConfig c;
    c.name = "HBM2e-16GB";
    c.channels = 8;
    c.ranksPerChannel = 2;
    c.banksPerRank = 16;
    c.rowBytes = 1024;
    c.busBits = 128;
    c.burstLength = 4;
    c.clockHz = 1.6e9;
    c.tRCD = 23;
    c.tRP = 23;
    c.tCL = 23;
    c.tRAS = 52;
    c.tCCD = 2;
    c.tRRD = 6;
    c.tWR = 26;
    c.tRFC = 416;
    c.tREFI = 6240;
    return c;
}

DramConfig
ddr4DeviceConfig()
{
    DramConfig c;
    c.name = "DDR4-device";
    c.channels = 1;
    c.ranksPerChannel = 1;
    c.banksPerRank = 16;
    c.rowBytes = 8192;
    c.busBits = 64;
    c.burstLength = 8;
    c.clockHz = 1.49e9; // 23.8 GB/s peak, matching the device DDR
    c.tRCD = 22;
    c.tRP = 22;
    c.tCL = 22;
    c.tRAS = 52;
    c.tCCD = 4;
    c.tRRD = 8;
    c.tWR = 24;
    c.tRFC = 560;
    c.tREFI = 11648;
    return c;
}

DramEnergyConfig
hbm2eEnergyConfig()
{
    // ~0.9 nJ per ACT/PRE pair, ~3.9 pJ/bit core access: a 64-byte
    // burst moves 512 bits -> ~2 nJ including I/O.
    return {900.0, 2000.0, 2100.0, 25000.0, 1.2};
}

DramEnergyConfig
ddr4EnergyConfig()
{
    // DDR4 end-to-end ~15 pJ/bit: 64-byte burst ~= 7.7 nJ.
    return {1500.0, 7700.0, 7900.0, 35000.0, 0.9};
}

DramChannel::DramChannel(const DramConfig &cfg)
    : cfg(cfg), banks(cfg.ranksPerChannel * cfg.banksPerRank)
{}

void
DramChannel::idle()
{
    for (auto &b : banks)
        b = Bank{};
    busFree = 0;
    lastAct = 0;
}

uint64_t
DramChannel::process(uint64_t bank_id, uint64_t row, bool write)
{
    cisram_assert(bank_id < banks.size(), "bank OOB");
    Bank &b = banks[bank_id];
    uint64_t occupancy = std::max<uint64_t>(1, cfg.burstLength / 2);

    uint64_t issue;
    if (b.openRow == static_cast<int64_t>(row)) {
        ++stats_.rowHits;
        issue = std::max(busFree, b.actAt + cfg.tRCD);
    } else {
        ++stats_.rowMisses;
        uint64_t act_at;
        if (b.openRow >= 0) {
            // Precharge the open row first; respect tRAS and write
            // recovery on the outgoing row.
            uint64_t pre_at =
                std::max(b.actAt + cfg.tRAS,
                         b.lastAccess + (write ? cfg.tWR : 0));
            act_at = pre_at + cfg.tRP;
        } else {
            act_at = b.lastAccess;
        }
        act_at = std::max(act_at, lastAct + cfg.tRRD);
        act_at = std::max(act_at, b.actAt + cfg.tRC());
        b.actAt = act_at;
        lastAct = act_at;
        b.openRow = static_cast<int64_t>(row);
        ++stats_.activates;
        issue = std::max(busFree, act_at + cfg.tRCD);
    }

    busFree = issue + std::max<uint64_t>(cfg.tCCD, occupancy);
    b.lastAccess = issue;
    if (cfg.pagePolicy == PagePolicy::Closed) {
        // Auto-precharge: the row closes and the bank cannot
        // re-activate before its row cycle completes.
        b.openRow = -1;
    }
    if (write)
        ++stats_.writes;
    else
        ++stats_.reads;
    return issue + cfg.tCL + occupancy;
}

namespace {

/** System serial counter: the per-system fault-draw stream id. */
std::atomic<uint64_t> g_systemSerial{0};

} // namespace

DramSystem::DramSystem(DramConfig cfg)
    : cfg(std::move(cfg)),
      eccStream_(g_systemSerial.fetch_add(1, std::memory_order_relaxed))
{
    trace::Tracer::init();
    metrics::initFromEnv();
    fault::initFromEnv();
}

namespace {

/** Decomposed physical location of one burst. */
struct Location
{
    unsigned channel;
    uint64_t bank;
    uint64_t row;
};

/**
 * Burst-interleaved, column-low mapping: consecutive bursts rotate
 * across channels; within a channel they fill a row, then move to
 * the next bank, so streams pipeline activates across banks.
 */
Location
mapAddress(const DramConfig &cfg, uint64_t addr)
{
    uint64_t burst = addr / cfg.burstBytes();
    unsigned channel = static_cast<unsigned>(burst % cfg.channels);
    uint64_t cb = burst / cfg.channels;
    uint64_t bursts_per_row = cfg.rowBytes / cfg.burstBytes();
    uint64_t total_banks =
        static_cast<uint64_t>(cfg.ranksPerChannel) * cfg.banksPerRank;
    uint64_t col_group = cb / bursts_per_row;
    uint64_t bank = col_group % total_banks;
    uint64_t row = col_group / total_banks;
    return {channel, bank, row};
}

} // namespace

DramSystem::TraceTiming
DramSystem::simulateTrace(const std::vector<Request> &reqs) const
{
    std::vector<DramChannel> channels(cfg.channels,
                                      DramChannel(cfg));
    uint64_t done = 0;
    uint64_t bytes = 0;
    for (const auto &r : reqs) {
        Location loc = mapAddress(cfg, r.addr);
        done = std::max(done, channels[loc.channel].process(
                                  loc.bank, loc.row, r.write));
        bytes += cfg.burstBytes();
    }

    TraceTiming t;
    t.perChannel.reserve(channels.size());
    t.channelBusy.reserve(channels.size());
    for (const auto &ch : channels) {
        t.delta += ch.stats();
        t.perChannel.push_back(ch.stats());
        t.channelBusy.push_back(ch.busyUntil());
    }

    // Refresh derating: each tREFI window loses tRFC cycles.
    double refresh_factor =
        1.0 + static_cast<double>(cfg.tRFC) / cfg.tREFI;
    double cycles = static_cast<double>(done) * refresh_factor;
    t.refreshes = static_cast<uint64_t>(cycles / cfg.tREFI) *
        cfg.channels;
    t.seconds = cycles / cfg.clockHz;
    t.bandwidth = t.seconds > 0
        ? static_cast<double>(bytes) / t.seconds
        : 0.0;
    return t;
}

void
DramSystem::applyTrace(const TraceTiming &t)
{
    stats_ += t.delta;
    stats_.refreshes += t.refreshes;
    lastBandwidth = t.bandwidth;
    if (metrics::enabled())
        observeTrace(t);
}

double
DramSystem::processTrace(const std::vector<Request> &reqs)
{
    TraceTiming t = simulateTrace(reqs);
    applyTrace(t);
    if (const fault::FaultPlan *fp = fault::plan()) {
        if (fp->clause(fault::Kind::DramFlip).enabled ||
            fp->clause(fault::Kind::DramFlip2).enabled)
            injectEccFaults(reqs);
    }
    return t.seconds;
}

namespace {

/** FNV-1a combine for the config fingerprint. */
uint64_t
fnv1a(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * The process-global trace-timing cache shared by every DramSystem
 * (the benches construct a fresh system per data point; the timing
 * of a range pattern depends only on the config, which the key's
 * fingerprint covers). Mutex-guarded: serving runs issue stream
 * calls from concurrent worker threads.
 */
struct GlobalTraceCache
{
    std::mutex mu;
    std::map<std::array<uint64_t, 6>,
             std::shared_ptr<const void>> entries;
};

GlobalTraceCache &
traceCache()
{
    static GlobalTraceCache cache;
    return cache;
}

} // namespace

uint64_t
DramSystem::configFingerprint()
{
    if (cfgFingerprint_ != 0)
        return cfgFingerprint_;
    uint64_t h = 14695981039346656037ull;
    h = fnv1a(h, static_cast<uint64_t>(cfg.pagePolicy));
    h = fnv1a(h, cfg.channels);
    h = fnv1a(h, cfg.ranksPerChannel);
    h = fnv1a(h, cfg.banksPerRank);
    h = fnv1a(h, cfg.rowBytes);
    h = fnv1a(h, cfg.busBits);
    h = fnv1a(h, cfg.burstLength);
    uint64_t clock_bits;
    static_assert(sizeof(clock_bits) == sizeof(cfg.clockHz), "");
    std::memcpy(&clock_bits, &cfg.clockHz, sizeof(clock_bits));
    h = fnv1a(h, clock_bits);
    h = fnv1a(h, cfg.tRCD);
    h = fnv1a(h, cfg.tRP);
    h = fnv1a(h, cfg.tCL);
    h = fnv1a(h, cfg.tRAS);
    h = fnv1a(h, cfg.tCCD);
    h = fnv1a(h, cfg.tRRD);
    h = fnv1a(h, cfg.tWR);
    h = fnv1a(h, cfg.tRFC);
    h = fnv1a(h, cfg.tREFI);
    cfgFingerprint_ = h == 0 ? 1 : h;
    return cfgFingerprint_;
}

template <typename BuildFn>
double
DramSystem::cachedRangeTrace(const std::array<uint64_t, 5> &key,
                             BuildFn build)
{
    const fault::FaultPlan *fp = fault::plan();
    bool armed = fp &&
        (fp->clause(fault::Kind::DramFlip).enabled ||
         fp->clause(fault::Kind::DramFlip2).enabled);

    std::array<uint64_t, 6> full_key{configFingerprint(), key[0],
                                     key[1], key[2], key[3], key[4]};
    GlobalTraceCache &cache = traceCache();

    std::shared_ptr<const TraceTiming> timing;
    {
        std::lock_guard<std::mutex> lock(cache.mu);
        auto it = cache.entries.find(full_key);
        if (it != cache.entries.end())
            timing = std::static_pointer_cast<const TraceTiming>(
                it->second);
    }

    if (!timing) {
        // Simulate outside the lock; a racing thread computing the
        // same key produces an identical value, so last-in wins.
        std::vector<Request> reqs;
        build(reqs);
        timing = std::make_shared<const TraceTiming>(
            simulateTrace(reqs));
        {
            std::lock_guard<std::mutex> lock(cache.mu);
            auto [it, inserted] =
                cache.entries.emplace(full_key, timing);
            if (!inserted)
                timing = std::static_pointer_cast<const TraceTiming>(
                    it->second);
        }
        applyTrace(*timing);
        if (armed)
            injectEccFaults(reqs);
        return timing->seconds;
    }

    applyTrace(*timing);
    if (armed) {
        // The ECC draw sequence is stateful (codeword serials, latent
        // set, scrub cadence): rebuild the request list so injection
        // walks the identical bursts in the identical order a fresh
        // simulation would have.
        std::vector<Request> reqs;
        build(reqs);
        injectEccFaults(reqs);
    }
    return timing->seconds;
}

void
DramSystem::injectEccFaults(const std::vector<Request> &reqs)
{
    const fault::FaultPlan *fp = fault::plan();
    // SECDED protects 8-byte codewords; a burst carries several. One
    // draw per read burst with word-scaled probability keeps the
    // expected per-codeword flip rate while staying off the critical
    // path (valid while words * p << 1, i.e. any realistic rate).
    uint64_t words = cfg.burstBytes() / 8;
    double scale = static_cast<double>(words);
    for (const auto &r : reqs) {
        if (r.write) {
            // A write re-encodes the codewords it covers, clearing
            // any latent single resident there.
            latent_.erase(r.addr);
            continue;
        }
        eccStats_.wordsChecked += words;
        scrubLo_ = std::min(scrubLo_, r.addr);
        scrubHi_ = std::max(scrubHi_, r.addr);
        uint64_t index = eccSerial_++;
        unsigned flips =
            fp->drawDramFlips(eccStream_, index, scale,
                              deviceIndex_);
        if (flips != 0) {
            auto &reg = metrics::Registry::get();
            if (flips == 1 && latent_.count(r.addr)) {
                // The new flip landed on a codeword still holding a
                // corrected-but-unrewritten single: two bad bits in
                // storage — uncorrectable. This is the aging path
                // the patrol scrubber exists to cut off.
                ++eccStats_.doubleDetected;
                reg.counter("fault.injected",
                            {{"kind", "dram_flip"}}).inc();
                reg.counter("fault.detected",
                            {{"kind", "dram_flip_latent"}}).inc();
                if (trace::active())
                    trace::Tracer::get().instant(
                        0, 0, "fault.ecc_double",
                        static_cast<double>(index));
                latent_.erase(r.addr);
                if (faultStatus_.ok()) {
                    faultStatus_ = Status::deviceFault(detail::concat(
                        "uncorrectable DRAM ECC error in codeword #",
                        index, " at device address ", r.addr,
                        ": single-bit flip landed on an unscrubbed "
                        "latent single (two bad bits in storage)"));
                }
            } else if (flips == 1) {
                ++eccStats_.singleCorrected;
                latent_.insert(r.addr);
                reg.counter("fault.injected",
                            {{"kind", "dram_flip"}}).inc();
                reg.counter("fault.corrected",
                            {{"kind", "dram_flip"}}).inc();
            } else {
                ++eccStats_.doubleDetected;
                reg.counter("fault.injected",
                            {{"kind", "dram_flip2"}}).inc();
                reg.counter("fault.detected",
                            {{"kind", "dram_flip2"}}).inc();
                if (trace::active())
                    trace::Tracer::get().instant(
                        0, 0, "fault.ecc_double",
                        static_cast<double>(index));
                if (faultStatus_.ok()) {
                    faultStatus_ = Status::deviceFault(detail::concat(
                        "uncorrectable DRAM ECC error (double bit "
                        "flip) in codeword #", index,
                        " at device address ", r.addr));
                }
            }
        }
        if (scrub_.enabled &&
            ++scrubClock_ >= scrub_.intervalReadBursts) {
            scrubClock_ = 0;
            scrubTick();
        }
    }
}

void
DramSystem::scrubTick()
{
    if (scrubLo_ > scrubHi_)
        return; // nothing demand-read yet: no region to patrol
    uint64_t bb = cfg.burstBytes();
    uint64_t corrected = 0;
    for (uint64_t i = 0; i < scrub_.burstsPerTick; ++i) {
        if (scrubCursor_ < scrubLo_ || scrubCursor_ > scrubHi_)
            scrubCursor_ = scrubLo_;
        auto it = latent_.find(scrubCursor_);
        if (it != latent_.end()) {
            // Correct-and-writeback: the codeword is clean again.
            latent_.erase(it);
            ++eccStats_.scrubCorrected;
            ++corrected;
        }
        ++eccStats_.scrubReads;
        ++stats_.reads; // scrub traffic is real traffic: energy model
        scrubCursor_ += bb;
    }
    auto &reg = metrics::Registry::get();
    reg.counter("recovery.scrub_reads")
        .inc(static_cast<double>(scrub_.burstsPerTick));
    if (corrected > 0) {
        reg.counter("recovery.scrub_corrected")
            .inc(static_cast<double>(corrected));
        // Mark the pass that cleaned a latent single: in a trace
        // these line up against fault.ecc_double instants to show
        // the scrubber racing the second flip.
        if (trace::active())
            trace::Tracer::get().instant(
                0, 0, "recovery.scrub_corrected",
                static_cast<double>(eccStats_.scrubReads));
    }
}

Status
DramSystem::takeFaultStatus()
{
    Status st = faultStatus_;
    faultStatus_ = Status::okStatus();
    return st;
}

void
DramSystem::observeTrace(const TraceTiming &t) const
{
    auto &reg = metrics::Registry::get();
    metrics::Labels dev{{"dram", cfg.name}};
    const DramStats &delta = t.delta;
    reg.counter("dram.row_hits", dev).inc(
        static_cast<double>(delta.rowHits));
    reg.counter("dram.row_misses", dev).inc(
        static_cast<double>(delta.rowMisses));
    reg.counter("dram.activates", dev).inc(
        static_cast<double>(delta.activates));
    reg.counter("dram.reads", dev).inc(
        static_cast<double>(delta.reads));
    reg.counter("dram.writes", dev).inc(
        static_cast<double>(delta.writes));
    reg.gauge("dram.last_bandwidth_bytes_per_sec", dev)
        .set(t.bandwidth);
    reg.histogram("dram.trace_seconds", dev).observe(t.seconds);
    // Per-channel utilization: bus-busy share of the trace and the
    // per-channel request mix (bank conflicts surface as misses).
    for (size_t c = 0; c < t.perChannel.size(); ++c) {
        metrics::Labels ch{{"dram", cfg.name},
                           {"channel", std::to_string(c)}};
        const DramStats &s = t.perChannel[c];
        reg.counter("dram.channel.requests", ch)
            .inc(static_cast<double>(s.reads + s.writes));
        reg.counter("dram.channel.row_misses", ch)
            .inc(static_cast<double>(s.rowMisses));
        reg.counter("dram.channel.busy_cycles", ch)
            .inc(static_cast<double>(t.channelBusy[c]));
    }
}

void
DramSystem::appendRange(std::vector<Request> &reqs, uint64_t base,
                        uint64_t bytes, bool write) const
{
    uint64_t bb = cfg.burstBytes();
    uint64_t first = base / bb;
    uint64_t last = (base + bytes + bb - 1) / bb;
    for (uint64_t b = first; b < last; ++b)
        reqs.push_back({b * bb, write});
}

namespace {

/** Cap on the simulated portion of very long streams. */
constexpr uint64_t streamSampleBytes = 64ull * 1024 * 1024;

} // namespace

double
DramSystem::streamReadSeconds(uint64_t base, uint64_t bytes)
{
    if (bytes == 0)
        return 0.0;
    // Long streams reach bandwidth steady state quickly; simulate a
    // large sample and scale the remainder at the sampled rate.
    uint64_t simulated = std::min(bytes, streamSampleBytes);
    double seconds = cachedRangeTrace(
        {0, base, simulated, 0, 0},
        [&](std::vector<Request> &reqs) {
            reqs.reserve(simulated / cfg.burstBytes() + 1);
            appendRange(reqs, base, simulated, false);
        });
    if (simulated < bytes) {
        double rate = static_cast<double>(simulated) / seconds;
        seconds += static_cast<double>(bytes - simulated) / rate;
        lastBandwidth = static_cast<double>(bytes) / seconds;
    }
    return seconds;
}

double
DramSystem::streamWriteSeconds(uint64_t base, uint64_t bytes)
{
    if (bytes == 0)
        return 0.0;
    uint64_t simulated = std::min(bytes, streamSampleBytes);
    double seconds = cachedRangeTrace(
        {1, base, simulated, 0, 0},
        [&](std::vector<Request> &reqs) {
            reqs.reserve(simulated / cfg.burstBytes() + 1);
            appendRange(reqs, base, simulated, true);
        });
    if (simulated < bytes) {
        double rate = static_cast<double>(simulated) / seconds;
        seconds += static_cast<double>(bytes - simulated) / rate;
        lastBandwidth = static_cast<double>(bytes) / seconds;
    }
    return seconds;
}

double
DramSystem::stridedReadSeconds(uint64_t base, uint64_t chunk_bytes,
                               uint64_t stride_bytes, uint64_t count)
{
    cisram_assert(stride_bytes >= chunk_bytes,
                  "stride smaller than chunk");
    // Cap the simulated chunk count the same way as streams.
    uint64_t max_chunks =
        std::max<uint64_t>(1, streamSampleBytes / chunk_bytes);
    uint64_t simulated = std::min(count, max_chunks);
    double seconds = cachedRangeTrace(
        {2, base, stride_bytes, chunk_bytes, simulated},
        [&](std::vector<Request> &reqs) {
            reqs.reserve(simulated *
                         (chunk_bytes / cfg.burstBytes() + 1));
            for (uint64_t i = 0; i < simulated; ++i)
                appendRange(reqs, base + i * stride_bytes,
                            chunk_bytes, false);
        });
    if (simulated < count) {
        double per_chunk = seconds / static_cast<double>(simulated);
        seconds += per_chunk * static_cast<double>(count - simulated);
    }
    return seconds;
}

double
DramPowerModel::dynamicEnergy(const DramStats &s) const
{
    double pj = static_cast<double>(s.activates) * e.actPrePj +
        static_cast<double>(s.reads) * e.rdBurstPj +
        static_cast<double>(s.writes) * e.wrBurstPj +
        static_cast<double>(s.refreshes) * e.refreshPj;
    return pj * 1e-12;
}

} // namespace cisram::dram
