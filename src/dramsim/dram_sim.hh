/**
 * @file
 * Bank-state-machine DRAM timing simulator ("ramulator-lite").
 *
 * Models per-bank row-buffer state, ACT/PRE/RD/WR timing constraints,
 * per-channel bus occupancy, and periodic refresh derating. Requests
 * are processed in order per channel (the FR-FCFS schedule degenerates
 * to FCFS for the streaming and strided patterns the workloads
 * generate, so in-order per channel is accurate for our use).
 */

#ifndef CISRAM_DRAMSIM_DRAM_SIM_HH
#define CISRAM_DRAMSIM_DRAM_SIM_HH

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/status.hh"
#include "dramsim/dram_config.hh"

namespace cisram::dram {

/** One burst-granularity memory request. */
struct Request
{
    uint64_t addr;
    bool write;
};

/** Aggregate counters for the power model. */
struct DramStats
{
    uint64_t activates = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t rowHits = 0;
    uint64_t rowMisses = 0;
    uint64_t refreshes = 0;

    void
    operator+=(const DramStats &o)
    {
        activates += o.activates;
        reads += o.reads;
        writes += o.writes;
        rowHits += o.rowHits;
        rowMisses += o.rowMisses;
        refreshes += o.refreshes;
    }
};

/**
 * SECDED ECC ledger: every 8-byte codeword read through the
 * controller is checked; transient single-bit flips (injected via a
 * cisram::fault plan's dram_flip clause) are corrected inline,
 * double flips (dram_flip2) are detected but uncorrectable. Only the
 * simulated portion of a sampled stream is subject to injection.
 *
 * Corrected singles are corrected *on the bus*, not in storage: the
 * bad bit stays resident (a latent single) until a patrol-scrub pass
 * rewrites the codeword or a write overwrites it. A second flip
 * landing on a still-latent codeword makes two bad bits — an
 * uncorrectable double — which is exactly the aging failure the
 * scrubber exists to prevent.
 */
struct EccStats
{
    uint64_t wordsChecked = 0;    ///< 8-byte codewords read
    uint64_t singleCorrected = 0; ///< transient flips fixed inline
    uint64_t doubleDetected = 0;  ///< uncorrectable, surfaced as Status
    uint64_t scrubReads = 0;      ///< patrol-scrub burst reads issued
    uint64_t scrubCorrected = 0;  ///< latent singles scrubbed clean

    void
    operator+=(const EccStats &o)
    {
        wordsChecked += o.wordsChecked;
        singleCorrected += o.singleCorrected;
        doubleDetected += o.doubleDetected;
        scrubReads += o.scrubReads;
        scrubCorrected += o.scrubCorrected;
    }
};

/**
 * Patrol-scrubber cadence, counted in demand read bursts so the
 * schedule is deterministic and thread-count independent (no wall
 * clock): every `intervalReadBursts` demand reads, the scrubber
 * walks `burstsPerTick` consecutive burst addresses of the observed
 * region, rewriting any latent single it passes. Scrub reads are
 * charged to the DRAM read counters (and thus the energy model);
 * they draw no faults, so the foreground fault sequence is
 * bit-identical with the scrubber on or off.
 */
struct ScrubConfig
{
    bool enabled = false;
    uint64_t intervalReadBursts = 4096; ///< demand reads per tick
    uint64_t burstsPerTick = 256;       ///< region bursts per tick
};

/** One channel's banks and bus. */
class DramChannel
{
  public:
    explicit DramChannel(const DramConfig &cfg);

    /**
     * Process one burst request; returns the cycle its data transfer
     * completes. Requests must be issued in nondecreasing program
     * order (in-order per channel).
     */
    uint64_t process(uint64_t bank_id, uint64_t row, bool write);

    uint64_t busyUntil() const { return busFree; }
    const DramStats &stats() const { return stats_; }

    /** Close all rows and reset timing state (not counters). */
    void idle();

  private:
    struct Bank
    {
        int64_t openRow = -1;
        uint64_t actAt = 0;     ///< cycle of last ACT
        uint64_t lastAccess = 0;///< cycle last column access issued
    };

    const DramConfig &cfg;
    std::vector<Bank> banks;
    uint64_t busFree = 0;
    uint64_t lastAct = 0;
    DramStats stats_;
};

/**
 * A multi-channel DRAM system with burst-interleaved address mapping.
 */
class DramSystem
{
  public:
    explicit DramSystem(DramConfig cfg);

    const DramConfig &config() const { return cfg; }

    /** Process an arbitrary request trace; returns elapsed seconds. */
    double processTrace(const std::vector<Request> &reqs);

    /**
     * Convenience: time to stream-read `bytes` starting at `base`
     * (the embedding-load pattern of the RAG experiments). Refresh
     * derating is included.
     */
    double streamReadSeconds(uint64_t base, uint64_t bytes);

    /** Time to stream-write `bytes`. */
    double streamWriteSeconds(uint64_t base, uint64_t bytes);

    /**
     * Time for a strided gather of `count` chunks of `chunk_bytes`
     * each, `stride_bytes` apart (duplicated / strided DMA layouts).
     */
    double stridedReadSeconds(uint64_t base, uint64_t chunk_bytes,
                              uint64_t stride_bytes, uint64_t count);

    /** Effective bandwidth of the last processTrace call, bytes/s. */
    double lastEffectiveBandwidth() const { return lastBandwidth; }

    const DramStats &stats() const { return stats_; }

    void
    resetStats()
    {
        stats_ = DramStats{};
        eccStats_ = EccStats{};
    }

    /** SECDED ledger (all zero unless a fault plan injects flips). */
    const EccStats &eccStats() const { return eccStats_; }

    /** Enable/configure the patrol scrubber (see ScrubConfig). */
    void setScrubConfig(const ScrubConfig &c) { scrub_ = c; }
    const ScrubConfig &scrubConfig() const { return scrub_; }

    /**
     * Fleet device owning this HBM stack, for `device=N` fault
     * clause scoping. Defaults to 0 (standalone single-device use).
     */
    void setDeviceIndex(unsigned d) { deviceIndex_ = d; }
    unsigned deviceIndex() const { return deviceIndex_; }

    /** Codewords currently holding a corrected-but-unscrubbed flip. */
    size_t latentSingles() const { return latent_.size(); }

    /**
     * Forget all latent singles — the storage was rewritten wholesale
     * (a device reset re-staged the region), not scrubbed word by
     * word, so nothing is counted as scrubCorrected.
     */
    void clearLatents() { latent_.clear(); }

    /**
     * Take (and clear) the sticky fault status. Returns the first
     * uncorrectable ECC error observed since the last take — sticky
     * so a kernel can issue several stream calls and check once.
     * OK when nothing uncorrectable happened.
     */
    Status takeFaultStatus();

  private:
    /** Append the burst requests of a contiguous range. */
    void appendRange(std::vector<Request> &reqs, uint64_t base,
                     uint64_t bytes, bool write) const;

    /**
     * Everything a processed trace contributes to the system, as a
     * pure value: elapsed seconds, effective bandwidth, the summed
     * and per-channel counter deltas, and the refresh count. The
     * bank-state simulation starts from idle channels each time, so
     * this is a pure function of (config, request trace) — which is
     * what makes the memoization below sound.
     */
    struct TraceTiming
    {
        double seconds = 0.0;
        double bandwidth = 0.0;
        DramStats delta;
        uint64_t refreshes = 0;
        std::vector<DramStats> perChannel;
        std::vector<uint64_t> channelBusy;
    };

    /** Run the bank-state machines over one trace (no side effects). */
    TraceTiming simulateTrace(const std::vector<Request> &reqs) const;

    /** Fold one trace's contribution into counters and metrics. */
    void applyTrace(const TraceTiming &t);

    /** Record one processed trace into the metrics registry. */
    void observeTrace(const TraceTiming &t) const;

    /**
     * Memoized range-pattern trace: the stream/strided helpers
     * describe their request traces by a 5-word key (kind, base,
     * geometry); repeated calls with the same key — the dominant
     * pattern in the RAG benchmarks, which re-time the same corpus
     * stream every batch and every data point — replay the cached
     * TraceTiming instead of re-simulating up to a million
     * bank-state steps. The cache is process-global (mutex-guarded)
     * and additionally keyed by a fingerprint of every
     * timing-relevant DramConfig field, so it survives the
     * fresh-DramSystem-per-point structure of the benches and
     * distinct configs never collide. Counter and metric updates
     * are identical to a fresh simulation (applyTrace replays the
     * same deltas), and when a fault plan arms DRAM flips the
     * request list is rebuilt so the stateful ECC draw sequence
     * (serials, latents, scrub cadence) advances exactly as
     * uncached; tests/test_wordparallel.cc pins both. The public
     * processTrace stays uncached (arbitrary traces).
     */
    template <typename BuildFn>
    double cachedRangeTrace(const std::array<uint64_t, 5> &key,
                            BuildFn build);

    /** Fingerprint of the timing-relevant config fields (cached). */
    uint64_t configFingerprint();

    /** Draw injected bit flips for the read bursts of one trace. */
    void injectEccFaults(const std::vector<Request> &reqs);

    /** One patrol pass over burstsPerTick addresses at the cursor. */
    void scrubTick();

    DramConfig cfg;
    DramStats stats_;
    EccStats eccStats_;
    Status faultStatus_ = Status::okStatus();
    double lastBandwidth = 0.0;
    uint64_t cfgFingerprint_ = 0; ///< 0 = not yet computed

    // Latent-error storage model: burst addresses whose codewords
    // hold a corrected-on-the-bus single that was never rewritten.
    // std::set keeps patrol order deterministic. The scrubber walks
    // the observed demand-read window [scrubLo_, scrubHi_].
    ScrubConfig scrub_;
    std::set<uint64_t> latent_;
    uint64_t scrubClock_ = 0;  ///< demand reads since last tick
    uint64_t scrubCursor_ = 0; ///< next burst address to patrol
    uint64_t scrubLo_ = ~0ull; ///< lowest read burst addr observed
    uint64_t scrubHi_ = 0;     ///< highest read burst addr observed

    // Deterministic fault-draw coordinates (see src/fault/fault.hh):
    // a per-system stream plus a running codeword serial. Instances
    // are not thread-safe (as for the timing counters), so the serial
    // advances in program order and draws are interleaving-free.
    uint64_t eccStream_;
    uint64_t eccSerial_ = 0;
    unsigned deviceIndex_ = 0; ///< fault clause `device=` scope
};

/**
 * DRAMPower-lite: converts simulator counters plus elapsed time into
 * energy per component.
 */
class DramPowerModel
{
  public:
    DramPowerModel(DramEnergyConfig energy) : e(energy) {}

    /** Dynamic energy (ACT/PRE + RD + WR + refresh) in joules. */
    double dynamicEnergy(const DramStats &s) const;

    /** Background energy over `seconds` in joules. */
    double
    backgroundEnergy(double seconds) const
    {
        return e.backgroundWatts * seconds;
    }

    /** Total energy in joules. */
    double
    totalEnergy(const DramStats &s, double seconds) const
    {
        return dynamicEnergy(s) + backgroundEnergy(seconds);
    }

  private:
    DramEnergyConfig e;
};

} // namespace cisram::dram

#endif // CISRAM_DRAMSIM_DRAM_SIM_HH
