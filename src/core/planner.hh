/**
 * @file
 * Optimization planners: cost-driven selection of the three key
 * optimizations (paper Section 4) for arbitrary kernels.
 *
 *  - Reduction mapping: spatial (intra-VR subgroup reduction +
 *    scattered PIO output) vs temporal (element-wise accumulation +
 *    contiguous DMA output).
 *  - DMA coalescing: repeated duplicated transfers vs one transfer
 *    into a reuse VR plus subgroup copies.
 *  - Broadcast layout: lookup cost under a given window span
 *    (combined with core/layout.hh span analysis).
 */

#ifndef CISRAM_CORE_PLANNER_HH
#define CISRAM_CORE_PLANNER_HH

#include <cstddef>

#include "common/logging.hh"
#include "model/cost_table.hh"
#include "model/sg_model.hh"

namespace cisram::core {

enum class ReductionMapping { Spatial, Temporal };

/**
 * Cost comparison of the two reduction mappings, normalized per
 * produced result so kernels with different tilings can compare.
 */
struct ReductionPlan
{
    /** Cycles per result: sg_add(r,1)/(l/r) + one PIO store. */
    double spatialPerResult;

    /** Cycles per result: r element-wise adds and one DMA, over l. */
    double temporalPerResult;

    ReductionMapping best;

    double
    speedup() const
    {
        return best == ReductionMapping::Temporal
            ? spatialPerResult / temporalPerResult
            : temporalPerResult / spatialPerResult;
    }
};

/**
 * Plan a length-r reduction (r must be a power of two <= l).
 *
 * Spatial: one VR holds l/r independent reductions; each pass costs
 * one hierarchical subgroup add and the l/r results come back
 * scattered, each needing a PIO store.
 *
 * Temporal: l independent accumulators are updated element-wise for
 * r steps; the l contiguous results leave via one full-VR DMA.
 */
inline ReductionPlan
planReduction(const model::CostTable &t,
              const model::SubgroupReductionModel &sg, size_t r)
{
    cisram_assert(r >= 2 && r <= t.vrLength,
                  "reduction length out of range");
    double l = static_cast<double>(t.vrLength);
    double rd = static_cast<double>(r);

    double spatial = sg.predict(r, 1) / (l / rd) + t.pioStPerElem;
    double temporal = (rd * t.addS16 + t.dmaL1L4) / l;

    ReductionPlan plan;
    plan.spatialPerResult = spatial;
    plan.temporalPerResult = temporal;
    plan.best = temporal <= spatial ? ReductionMapping::Temporal
                                    : ReductionMapping::Spatial;
    return plan;
}

/** Cost comparison for loading one reused data chunk many times. */
struct CoalescePlan
{
    /** Cycles for `reuse` separate duplicated DMA transfers. */
    double naiveCycles;

    /** Cycles for one bulk load plus `reuse` subgroup copies. */
    double coalescedCycles;

    bool coalesce;

    double
    speedup() const
    {
        return coalesce ? naiveCycles / coalescedCycles
                        : coalescedCycles / naiveCycles;
    }
};

/**
 * Plan the movement of a chunk of `chunk_bytes` that must appear,
 * duplicated across a full VR, in `reuse` successive iterations
 * (Eq. 11 vs Eq. 12).
 */
inline CoalescePlan
planDmaCoalescing(const model::CostTable &t, double chunk_bytes,
                  size_t reuse)
{
    double vr_bytes = static_cast<double>(t.vrLength) * 2.0;
    double naive = static_cast<double>(reuse) *
        (t.dmaL4L2(vr_bytes) + t.dmaL2L1 + t.loadStore);
    double bulk_loads = chunk_bytes * static_cast<double>(reuse) /
        vr_bytes;
    if (bulk_loads < 1.0)
        bulk_loads = 1.0;
    double coalesced = bulk_loads * t.dmaL4L1 +
        static_cast<double>(reuse) * (t.loadStore + t.cpySubgrp);

    CoalescePlan plan;
    plan.naiveCycles = naive;
    plan.coalescedCycles = coalesced;
    plan.coalesce = coalesced <= naive;
    return plan;
}

/** Lookup cost of `steps` broadcasts against a table of `span`. */
inline double
broadcastCost(const model::CostTable &t, size_t span, size_t steps)
{
    return static_cast<double>(steps) *
        t.lookup(static_cast<double>(span));
}

} // namespace cisram::core

#endif // CISRAM_CORE_PLANNER_HH
