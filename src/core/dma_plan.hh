/**
 * @file
 * Layout-driven DMA descriptor generation.
 *
 * The device's DMA engines take programmed 512-byte chunk source
 * addresses (Section 2.1.2: "contiguous, strided, and duplicated
 * data layout transformations"). This module bridges the layout
 * machinery to the engines: given a Graphene-style layout of chunk
 * granules, it emits the chunk-address list a single transaction
 * needs, and reports whether the pattern is contiguous (plain DMA),
 * regular (strided/duplicated DMA), or irregular (PIO territory).
 */

#ifndef CISRAM_CORE_DMA_PLAN_HH
#define CISRAM_CORE_DMA_PLAN_HH

#include <cstdint>
#include <vector>

#include "core/layout.hh"

namespace cisram::core {

/** How a chunk pattern maps onto the data-movement engines. */
enum class TransferClass
{
    Contiguous, ///< one linear burst
    Strided,    ///< regular stride: chunk-programmed DMA
    Duplicated, ///< repeated sources: chunk-programmed DMA
    Irregular,  ///< no regular structure: PIO
};

const char *transferClassName(TransferClass c);

struct DmaPlan
{
    TransferClass kind;

    /** Chunk source addresses, in destination order. */
    std::vector<uint64_t> chunkSrcs;

    size_t
    numChunks() const
    {
        return chunkSrcs.size();
    }

    /** Distinct source chunks (== numChunks unless duplicated). */
    size_t distinctChunks() const;
};

/**
 * Build the descriptor list for transferring the layout's elements
 * (in logical order) where each logical element is one 512-byte
 * chunk at `base + offset * chunk_bytes`.
 */
DmaPlan planFromLayout(const Layout &layout, uint64_t base,
                       uint64_t chunk_bytes = 512);

} // namespace cisram::core

#endif // CISRAM_CORE_DMA_PLAN_HH
