#include "core/dma_plan.hh"

#include <algorithm>
#include <unordered_set>

#include "common/logging.hh"

namespace cisram::core {

const char *
transferClassName(TransferClass c)
{
    switch (c) {
      case TransferClass::Contiguous:
        return "contiguous";
      case TransferClass::Strided:
        return "strided";
      case TransferClass::Duplicated:
        return "duplicated";
      case TransferClass::Irregular:
        return "irregular";
    }
    return "?";
}

size_t
DmaPlan::distinctChunks() const
{
    std::unordered_set<uint64_t> seen(chunkSrcs.begin(),
                                      chunkSrcs.end());
    return seen.size();
}

DmaPlan
planFromLayout(const Layout &layout, uint64_t base,
               uint64_t chunk_bytes)
{
    DmaPlan plan;
    size_t n = layout.totalElems();
    plan.chunkSrcs.reserve(n);

    std::vector<size_t> idx(layout.rank(), 0);
    for (size_t count = 0; count < n; ++count) {
        int64_t off = layout.offsetOf(idx);
        cisram_assert(off >= 0, "negative chunk offset");
        plan.chunkSrcs.push_back(
            base + static_cast<uint64_t>(off) * chunk_bytes);
        for (size_t d = layout.rank(); d-- > 0;) {
            if (++idx[d] < layout.dims()[d].size)
                break;
            idx[d] = 0;
        }
    }

    // Classify: contiguous, single-stride, duplicated, irregular.
    bool contiguous = true;
    bool strided = true;
    bool duplicated = plan.distinctChunks() < plan.numChunks();
    int64_t stride = 0;
    for (size_t i = 1; i < plan.chunkSrcs.size(); ++i) {
        int64_t d = static_cast<int64_t>(plan.chunkSrcs[i]) -
            static_cast<int64_t>(plan.chunkSrcs[i - 1]);
        if (d != static_cast<int64_t>(chunk_bytes))
            contiguous = false;
        if (i == 1)
            stride = d;
        else if (d != stride)
            strided = false;
    }
    if (plan.chunkSrcs.size() <= 1)
        plan.kind = TransferClass::Contiguous;
    else if (contiguous)
        plan.kind = TransferClass::Contiguous;
    else if (duplicated)
        plan.kind = TransferClass::Duplicated;
    else if (strided)
        plan.kind = TransferClass::Strided;
    else
        plan.kind = TransferClass::Irregular;
    return plan;
}

} // namespace cisram::core
