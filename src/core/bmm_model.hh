/**
 * @file
 * Analytical model of binary matrix multiplication on the APU
 * (paper Section 4, Eqs. 2-14).
 *
 * The motivating example: A(M, K) x B(K, N) with inputs bit-packed
 * into u16 along K. The model predicts the per-stage latency (load
 * LHS, load RHS, VR ops, store) and the operational intensity of
 * every optimization level of Fig. 12:
 *
 *   Baseline  - inner-product mapping, spatial reduction in the VR
 *   Opt1      - communication-aware reduction mapping (temporal SVP)
 *   Opt1+2    - plus coalesced DMA for the RHS (reuse VR + subgroup
 *               copy)
 *   Opt1+3    - plus broadcast-friendly LHS layout (small lookup)
 *   AllOpts   - all three
 *
 * Note on Eq. 3: applied literally (one DMA init per duplicated row
 * copy) the equation predicts a baseline LHS cost exceeding the
 * paper's own measured total; we model the duplication as the
 * device performs it - one chunk-programmed DMA transaction filling
 * a whole VR per row - which is consistent with Fig. 12.
 */

#ifndef CISRAM_CORE_BMM_MODEL_HH
#define CISRAM_CORE_BMM_MODEL_HH

#include <string>

#include "model/cost_table.hh"
#include "model/sg_model.hh"

namespace cisram::core {

/** Problem shape; kBits must be a multiple of 16. */
struct BmmShape
{
    size_t m;
    size_t n;
    size_t kBits;

    size_t kWords() const { return kBits / 16; }
};

enum class BmmVariant
{
    Baseline,
    Opt1,
    Opt1Opt2,
    Opt1Opt3,
    AllOpts,
};

const char *bmmVariantName(BmmVariant v);

/** Per-stage cycles, matching the Fig. 12 breakdown categories. */
struct StageBreakdown
{
    double ldLhs = 0;
    double ldRhs = 0;
    double vrOps = 0;
    double store = 0;

    double
    total() const
    {
        return ldLhs + ldRhs + vrOps + store;
    }
};

class BmmAnalyticalModel
{
  public:
    BmmAnalyticalModel(model::CostTable table,
                       model::SubgroupReductionModel sg)
        : t(std::move(table)), sg(std::move(sg))
    {}

    /** Predicted per-stage cycles of one variant. */
    StageBreakdown predict(const BmmShape &s, BmmVariant v) const;

    /**
     * Operational intensity in binary ops per byte of off-chip
     * traffic (Eqs. 2, 9, 13). alpha = 2 ops (xnor + accumulate)
     * per bit.
     */
    double operationalIntensity(const BmmShape &s,
                                BmmVariant v) const;

    /** Achieved throughput in ops/s given the predicted latency. */
    double opsPerSecond(const BmmShape &s, BmmVariant v) const;

    const model::CostTable &table() const { return t; }

  private:
    StageBreakdown predictBaseline(const BmmShape &s) const;
    StageBreakdown predictOpt(const BmmShape &s, bool coalesce,
                              bool bf_layout) const;

    model::CostTable t;
    model::SubgroupReductionModel sg;
};

} // namespace cisram::core

#endif // CISRAM_CORE_BMM_MODEL_HH
