/**
 * @file
 * Graphene-style data layouts and broadcast-window analysis.
 *
 * The paper expresses layouts as dimension sizes and strides
 * (Section 4.4, citing Graphene) and shows that the lookup-table size
 * needed to broadcast a window of scalars equals the span of that
 * window under the layout: a row-major layout needs a table covering
 * many rows, a broadcast-friendly layout shrinks the table to the
 * window itself (Fig. 11: 18 -> 3).
 */

#ifndef CISRAM_CORE_LAYOUT_HH
#define CISRAM_CORE_LAYOUT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cisram::core {

/** One layout dimension: iterate `size` times with `stride`. */
struct Dim
{
    size_t size;
    int64_t stride;
};

/**
 * An affine layout: logical index (i0, i1, ... ) maps to storage
 * offset sum(i_d * stride_d). Dimensions are outermost-first.
 */
class Layout
{
  public:
    Layout() = default;
    explicit Layout(std::vector<Dim> dims) : dims_(std::move(dims)) {}

    /** Row-major layout of the given logical shape. */
    static Layout rowMajor(const std::vector<size_t> &shape);

    /** Column-major layout of the given logical shape. */
    static Layout columnMajor(const std::vector<size_t> &shape);

    const std::vector<Dim> &dims() const { return dims_; }
    size_t rank() const { return dims_.size(); }

    /** Number of logical elements. */
    size_t totalElems() const;

    /** Storage offset of a logical index. */
    int64_t offsetOf(const std::vector<size_t> &idx) const;

    /** Layout with two dimensions exchanged. */
    Layout transposed(size_t d0, size_t d1) const;

    /**
     * True if the layout enumerates a dense contiguous range
     * [0, totalElems) (in any dimension order).
     */
    bool isContiguous() const;

    /** Render as the paper's size/stride matrix, e.g. "[(32,64)(1,1)]". */
    std::string str() const;

  private:
    std::vector<Dim> dims_;
};

/**
 * Broadcast-window analysis: a sweep broadcasts, at each outer step,
 * a window of `window` consecutive logical elements along `axis`.
 * The lookup table backing one step must be a contiguous chunk
 * covering the window's storage span.
 */
struct BroadcastSweep
{
    size_t axis;   ///< logical axis the window runs along
    size_t window; ///< scalars broadcast per step
};

/** Largest per-step lookup-table span (entries) over all steps. */
size_t maxLookupSpan(const Layout &layout, const BroadcastSweep &sweep);

/**
 * Span of one shared lookup table serving every step of the sweep
 * (table base fixed at the smallest offset touched).
 */
size_t sharedLookupSpan(const Layout &layout,
                        const BroadcastSweep &sweep);

/**
 * The broadcast-friendly transformation: reorder a 2-D layout so the
 * broadcast axis becomes innermost-contiguous, shrinking the
 * per-step lookup span to exactly the window size (Fig. 11(b)).
 */
Layout broadcastFriendly(const std::vector<size_t> &shape,
                         size_t broadcast_axis);

} // namespace cisram::core

#endif // CISRAM_CORE_LAYOUT_HH
