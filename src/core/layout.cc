#include "core/layout.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace cisram::core {

Layout
Layout::rowMajor(const std::vector<size_t> &shape)
{
    std::vector<Dim> dims(shape.size());
    int64_t stride = 1;
    for (size_t d = shape.size(); d-- > 0;) {
        dims[d] = {shape[d], stride};
        stride *= static_cast<int64_t>(shape[d]);
    }
    return Layout(std::move(dims));
}

Layout
Layout::columnMajor(const std::vector<size_t> &shape)
{
    std::vector<Dim> dims(shape.size());
    int64_t stride = 1;
    for (size_t d = 0; d < shape.size(); ++d) {
        dims[d] = {shape[d], stride};
        stride *= static_cast<int64_t>(shape[d]);
    }
    return Layout(std::move(dims));
}

size_t
Layout::totalElems() const
{
    size_t n = 1;
    for (const auto &d : dims_)
        n *= d.size;
    return n;
}

int64_t
Layout::offsetOf(const std::vector<size_t> &idx) const
{
    cisram_assert(idx.size() == dims_.size(), "index rank mismatch");
    int64_t off = 0;
    for (size_t d = 0; d < dims_.size(); ++d) {
        cisram_assert(idx[d] < dims_[d].size, "index OOB in dim ", d);
        off += static_cast<int64_t>(idx[d]) * dims_[d].stride;
    }
    return off;
}

Layout
Layout::transposed(size_t d0, size_t d1) const
{
    cisram_assert(d0 < dims_.size() && d1 < dims_.size());
    std::vector<Dim> dims = dims_;
    std::swap(dims[d0], dims[d1]);
    return Layout(std::move(dims));
}

bool
Layout::isContiguous() const
{
    // Enumerate offsets; a layout is contiguous iff the sorted
    // offsets form [0, totalElems). Layouts here are small metadata
    // objects, so enumeration is acceptable.
    size_t n = totalElems();
    std::vector<int64_t> offsets;
    offsets.reserve(n);
    std::vector<size_t> idx(dims_.size(), 0);
    for (size_t count = 0; count < n; ++count) {
        offsets.push_back(offsetOf(idx));
        for (size_t d = dims_.size(); d-- > 0;) {
            if (++idx[d] < dims_[d].size)
                break;
            idx[d] = 0;
        }
    }
    std::sort(offsets.begin(), offsets.end());
    for (size_t i = 0; i < n; ++i)
        if (offsets[i] != static_cast<int64_t>(i))
            return false;
    return true;
}

std::string
Layout::str() const
{
    std::ostringstream oss;
    oss << "[";
    for (const auto &d : dims_)
        oss << "(" << d.size << "," << d.stride << ")";
    oss << "]";
    return oss.str();
}

namespace {

/** Min and max storage offset of one broadcast window. */
std::pair<int64_t, int64_t>
windowSpan(const Layout &layout, const BroadcastSweep &sweep,
           std::vector<size_t> base)
{
    int64_t lo = INT64_MAX, hi = INT64_MIN;
    for (size_t w = 0; w < sweep.window; ++w) {
        std::vector<size_t> idx = base;
        idx[sweep.axis] += w;
        int64_t off = layout.offsetOf(idx);
        lo = std::min(lo, off);
        hi = std::max(hi, off);
    }
    return {lo, hi};
}

/** Visit the base index of every step of the sweep. */
template <typename Fn>
void
forEachStep(const Layout &layout, const BroadcastSweep &sweep, Fn fn)
{
    const auto &dims = layout.dims();
    cisram_assert(sweep.axis < dims.size(), "sweep axis OOB");
    cisram_assert(dims[sweep.axis].size % sweep.window == 0,
                  "window must divide the axis");
    std::vector<size_t> idx(dims.size(), 0);
    size_t steps = layout.totalElems() / sweep.window;
    for (size_t s = 0; s < steps; ++s) {
        fn(idx);
        // Advance: the sweep axis moves in window-sized strides,
        // other axes roll over normally.
        for (size_t d = dims.size(); d-- > 0;) {
            size_t inc = (d == sweep.axis) ? sweep.window : 1;
            idx[d] += inc;
            if (idx[d] < dims[d].size)
                break;
            idx[d] = 0;
        }
    }
}

} // namespace

size_t
maxLookupSpan(const Layout &layout, const BroadcastSweep &sweep)
{
    size_t worst = 0;
    forEachStep(layout, sweep, [&](const std::vector<size_t> &base) {
        auto [lo, hi] = windowSpan(layout, sweep, base);
        worst = std::max(worst, static_cast<size_t>(hi - lo + 1));
    });
    return worst;
}

size_t
sharedLookupSpan(const Layout &layout, const BroadcastSweep &sweep)
{
    int64_t lo = INT64_MAX, hi = INT64_MIN;
    forEachStep(layout, sweep, [&](const std::vector<size_t> &base) {
        auto [wlo, whi] = windowSpan(layout, sweep, base);
        lo = std::min(lo, wlo);
        hi = std::max(hi, whi);
    });
    return static_cast<size_t>(hi - lo + 1);
}

Layout
broadcastFriendly(const std::vector<size_t> &shape,
                  size_t broadcast_axis)
{
    cisram_assert(shape.size() == 2, "2-D layouts only");
    cisram_assert(broadcast_axis < 2);
    // Make the broadcast axis innermost-contiguous: its stride is 1,
    // the other axis strides by the broadcast extent.
    std::vector<Dim> dims(2);
    size_t other = 1 - broadcast_axis;
    dims[broadcast_axis] = {shape[broadcast_axis], 1};
    dims[other] = {shape[other],
                   static_cast<int64_t>(shape[broadcast_axis])};
    return Layout(std::move(dims));
}

} // namespace cisram::core
