#include "core/bmm_model.hh"

#include <cmath>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace cisram::core {

const char *
bmmVariantName(BmmVariant v)
{
    switch (v) {
      case BmmVariant::Baseline:
        return "baseline";
      case BmmVariant::Opt1:
        return "opt1";
      case BmmVariant::Opt1Opt2:
        return "opt1+opt2";
      case BmmVariant::Opt1Opt3:
        return "opt1+opt3";
      case BmmVariant::AllOpts:
        return "all-opts";
    }
    return "?";
}

StageBreakdown
BmmAnalyticalModel::predictBaseline(const BmmShape &s) const
{
    size_t k = s.kWords();
    size_t l = t.vrLength;
    cisram_assert(k > 0 && k <= l, "K out of range");
    double dup = std::floor(static_cast<double>(l) / k);
    double b_vrs = std::ceil(static_cast<double>(s.n) / dup);

    StageBreakdown out;
    // LHS: per row, one chunk-programmed DMA fills a VR with
    // floor(l/K) copies, staged through L2 and loaded to the VR.
    out.ldLhs = static_cast<double>(s.m) *
        (t.dmaL4L2(static_cast<double>(l) * 2) + t.dmaL2L1 +
         t.loadStore);

    // RHS: column-major B fits in L1 (Eq. 4), loaded once.
    out.ldRhs = b_vrs * t.dmaL4L1;

    // Compute: per (row, B-VR) pass: load the B VR, XOR, popcount,
    // scale, subtract, then a spatial (intra-VR) subgroup reduction
    // over each K-sized group (Eq. 6, times M).
    double per_pass = t.loadStore + t.xor16 + t.popcnt16 + t.ashift +
        t.subS16 + sg.predict(k, 1);
    out.vrOps = static_cast<double>(s.m) * b_vrs * per_pass;

    // Store: results are scattered in the VR, PIO per element
    // (Eq. 5).
    out.store = t.pioSt(static_cast<double>(s.m) * s.n);
    return out;
}

StageBreakdown
BmmAnalyticalModel::predictOpt(const BmmShape &s, bool coalesce,
                               bool bf_layout) const
{
    size_t k = s.kWords();
    size_t l = t.vrLength;
    double rpv = std::floor(static_cast<double>(l) / s.n);
    cisram_assert(rpv >= 1, "N exceeds VR length");
    double tiles = std::ceil(static_cast<double>(s.m) / rpv);

    StageBreakdown out;

    // LHS: the A tile (rpv rows x K words) is DMAed to L3 once per
    // tile, then one lookup per k broadcasts the tile's k-th column
    // of scalars across the VR (Eqs. 10 / 14). The lookup-table size
    // is the broadcast window's span: rpv*K entries for the
    // row-major layout, rpv for the broadcast-friendly one.
    double table_entries =
        bf_layout ? rpv : rpv * static_cast<double>(k);
    out.ldLhs = tiles *
        (t.dmaL4L3(rpv * static_cast<double>(k) * 2) +
         static_cast<double>(k) * t.lookup(table_entries));

    if (coalesce) {
        // RHS: B loaded once into ceil(K*N/l) reuse VMRs (Eq. 12);
        // per (tile, k) a subgroup copy replicates row k across the
        // VR, which the paper accounts as VR operations.
        double b_vrs = std::ceil(static_cast<double>(k) * s.n /
                                 static_cast<double>(l));
        out.ldRhs = b_vrs * t.dmaL4L1;
        out.vrOps += tiles * static_cast<double>(k) *
            (t.loadStore + t.cpySubgrp);
    } else {
        // RHS: per (tile, k), a chunk-duplicated DMA fills a VR with
        // floor(l/N) copies of row k (Eq. 11).
        out.ldRhs = tiles * static_cast<double>(k) *
            (t.dmaL4L2(static_cast<double>(l) * 2) + t.dmaL2L1 +
             t.loadStore);
    }

    // Compute: temporal reduction, one element-wise MAC per k
    // (Eq. 7), plus per-tile setup of the broadcast index VR.
    out.vrOps += tiles *
        (t.createGrpIndex + t.cpyImm +
         static_cast<double>(k) *
             (t.xor16 + t.popcnt16 + t.ashift + t.subS16 + t.addS16));

    // Store: contiguous results, one DMA per tile (Eq. 8).
    out.store = tiles * (t.loadStore + t.dmaL1L4);
    return out;
}

StageBreakdown
BmmAnalyticalModel::predict(const BmmShape &s, BmmVariant v) const
{
    switch (v) {
      case BmmVariant::Baseline:
        return predictBaseline(s);
      case BmmVariant::Opt1:
        return predictOpt(s, false, false);
      case BmmVariant::Opt1Opt2:
        return predictOpt(s, true, false);
      case BmmVariant::Opt1Opt3:
        return predictOpt(s, false, true);
      case BmmVariant::AllOpts:
        return predictOpt(s, true, true);
    }
    cisram_panic("unknown variant");
}

double
BmmAnalyticalModel::operationalIntensity(const BmmShape &s,
                                         BmmVariant v) const
{
    double m = static_cast<double>(s.m);
    double n = static_cast<double>(s.n);
    double k = static_cast<double>(s.kWords());
    double l = static_cast<double>(t.vrLength);
    // alpha: 2 binary ops (xnor + accumulate) per bit, 16 bits/word.
    double ops = m * n * k * 2.0 * 16.0;

    double words;
    switch (v) {
      case BmmVariant::Baseline:
        // Eq. 2: A duplicated floor(l/K) times.
        words = m * k * std::floor(l / k) + k * n + m * n;
        break;
      case BmmVariant::Opt1:
      case BmmVariant::Opt1Opt3:
        // Eq. 9: B duplicated floor(l/N) times.
        words = m * k + n * k * std::floor(l / n) + m * n;
        break;
      case BmmVariant::Opt1Opt2:
      case BmmVariant::AllOpts:
        // Eq. 13: no duplicated off-chip traffic.
        words = m * k + n * k + m * n;
        break;
      default:
        cisram_panic("unknown variant");
    }
    return ops / (words * 2.0);
}

double
BmmAnalyticalModel::opsPerSecond(const BmmShape &s,
                                 BmmVariant v) const
{
    double m = static_cast<double>(s.m);
    double n = static_cast<double>(s.n);
    double k = static_cast<double>(s.kWords());
    double ops = m * n * k * 2.0 * 16.0;
    double secs = t.seconds(predict(s, v).total());
    return ops / secs;
}

} // namespace cisram::core
