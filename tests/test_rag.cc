/**
 * @file
 * RAG retrieval kernel tests: every variant returns the exact
 * FAISS-lite top-k on small corpora; paper-scale timing reproduces
 * the Table 8 stage structure and the optimization speedups.
 */

#include <gtest/gtest.h>

#include "baseline/faisslite.hh"
#include "baseline/workloads.hh"
#include "kernels/rag.hh"
#include "kernels/rag_model.hh"
#include "common/gsifloat.hh"
#include <cmath>

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

namespace {

constexpr RagVariant allVariants[] = {
    RagVariant::NoOpt, RagVariant::Opt1, RagVariant::Opt2,
    RagVariant::Opt3, RagVariant::AllOpts,
};

std::vector<Hit>
referenceTopK(const RagCorpusSpec &spec, uint64_t seed,
              const std::vector<int16_t> &query, size_t k)
{
    auto emb = genEmbeddings(spec, 0, spec.numChunks, seed);
    IndexFlatI16 idx(spec.dim);
    idx.add(emb.data(), spec.numChunks);
    return idx.search(query.data(), k);
}

} // namespace

class RagFunctional : public ::testing::TestWithParam<RagVariant>
{
};

TEST_P(RagFunctional, TopKMatchesFaissLite)
{
    RagCorpusSpec spec{"small", 0, 2000, 368};
    auto query = genQuery(spec.dim, 31);
    auto expect = referenceTopK(spec, 17, query, 5);

    apu::ApuDevice dev;
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, spec, 5);
    auto got = retriever.retrieve(query, GetParam(), 17);

    ASSERT_EQ(got.hits.size(), expect.size())
        << ragVariantName(GetParam());
    for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(got.hits[i].id, expect[i].id) << i;
        EXPECT_FLOAT_EQ(got.hits[i].score, expect[i].score) << i;
    }
}

TEST_P(RagFunctional, MultiTileCorpus)
{
    // Spans two score VRs / super-tiles (> 32768 chunks).
    RagCorpusSpec spec{"two-tiles", 0, 40000, 368};
    auto query = genQuery(spec.dim, 32);
    auto expect = referenceTopK(spec, 18, query, 5);

    apu::ApuDevice dev;
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, spec, 5);
    auto got = retriever.retrieve(query, GetParam(), 18);

    ASSERT_EQ(got.hits.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(got.hits[i].id, expect[i].id)
            << ragVariantName(GetParam()) << " " << i;
        EXPECT_FLOAT_EQ(got.hits[i].score, expect[i].score) << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, RagFunctional, ::testing::ValuesIn(allVariants),
    [](const ::testing::TestParamInfo<RagVariant> &info) {
        std::string name = ragVariantName(info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(RagBatch, EachQueryExactAgainstSingleRetrieval)
{
    RagCorpusSpec spec{"batch", 0, 5000, 368};
    std::vector<std::vector<int16_t>> queries;
    for (size_t q = 0; q < 4; ++q)
        queries.push_back(genQuery(spec.dim, 100 + q));

    apu::ApuDevice dev;
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, spec, 5);
    auto batch = retriever.retrieveBatch(queries, 55);
    ASSERT_EQ(batch.size(), queries.size());

    for (size_t q = 0; q < queries.size(); ++q) {
        auto expect = referenceTopK(spec, 55, queries[q], 5);
        ASSERT_EQ(batch[q].hits.size(), expect.size()) << q;
        for (size_t i = 0; i < expect.size(); ++i) {
            EXPECT_EQ(batch[q].hits[i].id, expect[i].id)
                << q << "/" << i;
            EXPECT_FLOAT_EQ(batch[q].hits[i].score,
                            expect[i].score);
        }
    }
}

TEST(RagBatch, AmortizesPerQueryLatency)
{
    const auto &spec = ragCorpora()[0];
    auto run_batch = [&](size_t n) {
        apu::ApuDevice dev;
        dev.core(0).setMode(apu::ExecMode::TimingOnly);
        dram::DramSystem hbm(dram::hbm2eConfig());
        RagRetriever retriever(dev, hbm, spec, 5);
        std::vector<std::vector<int16_t>> queries(
            n, genQuery(spec.dim, 1));
        return retriever.retrieveBatch(queries, 1)[0]
            .stages.total();
    };
    double b1 = run_batch(1);
    double b8 = run_batch(8);
    EXPECT_LT(b8, b1 * 0.6); // at least 1.6x amortization
    EXPECT_GT(b8, b1 / 8.0); // but not a free lunch
}

TEST(RagBatch, RejectsOversizedBatch)
{
    const auto &spec = ragCorpora()[0];
    apu::ApuDevice dev;
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, spec, 5);
    std::vector<std::vector<int16_t>> queries(
        9, genQuery(spec.dim, 1));
    EXPECT_DEATH((void)retriever.retrieveBatch(queries, 1),
                 "batch size");
}

namespace {

RagRunResult
timedRetrieve(const RagCorpusSpec &spec, RagVariant v)
{
    apu::ApuDevice dev;
    dev.core(0).setMode(apu::ExecMode::TimingOnly);
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, spec, 5);
    auto query = genQuery(spec.dim, 1);
    return retriever.retrieve(query, v, 1);
}

} // namespace

TEST(RagTiming, Table8ShapeAt200GB)
{
    const auto &spec = ragCorpora()[2]; // 200 GB
    auto noopt = timedRetrieve(spec, RagVariant::NoOpt);
    auto all = timedRetrieve(spec, RagVariant::AllOpts);

    // Paper Table 8 at 200 GB (ms): load 8.2 -> 6.1, distance
    // 527.9 -> 74.6, topk ~1.3, return ~15 us, total 539.2 -> 84.2.
    EXPECT_NEAR(noopt.stages.loadEmbedding * 1e3, 8.2, 2.5);
    EXPECT_NEAR(all.stages.loadEmbedding * 1e3, 6.1, 2.0);
    EXPECT_GT(noopt.stages.loadEmbedding,
              all.stages.loadEmbedding);

    EXPECT_NEAR(noopt.stages.calcDistance * 1e3, 527.9, 250.0);
    EXPECT_NEAR(all.stages.calcDistance * 1e3, 74.6, 40.0);

    EXPECT_NEAR(noopt.stages.topkAggregation * 1e3, 1.3, 4.0);
    EXPECT_NEAR(all.stages.returnTopk * 1e6, 15.0, 10.0);

    // Total speedup: paper 539.2 / 84.2 = 6.4x; require 4-12x.
    double speedup = noopt.stages.total() / all.stages.total();
    EXPECT_GT(speedup, 4.0);
    EXPECT_LT(speedup, 12.0);
}

TEST(RagTiming, ScalesAcrossCorpora)
{
    // Paper: all-opts retrieval 3.9 / 20.6 / 84.2 ms.
    const double paper_ms[] = {3.9, 20.6, 84.2};
    size_t i = 0;
    double prev = 0.0;
    for (const auto &spec : ragCorpora()) {
        auto r = timedRetrieve(spec, RagVariant::AllOpts);
        double ms = r.stages.total() * 1e3;
        EXPECT_GT(ms, prev);
        EXPECT_NEAR(ms, paper_ms[i], paper_ms[i] * 0.6)
            << spec.label;
        prev = ms;
        ++i;
    }
}

TEST(RagTiming, Opt1DeliversMostOfTheGain)
{
    // Section 5.3.4: opt1 cuts 539.2 -> 86.1 ms; opt2/opt3 are
    // modest standalone but compound with opt1.
    const auto &spec = ragCorpora()[2];
    double noopt = timedRetrieve(spec, RagVariant::NoOpt)
                       .stages.total();
    double o1 = timedRetrieve(spec, RagVariant::Opt1)
                    .stages.total();
    double o2 = timedRetrieve(spec, RagVariant::Opt2)
                    .stages.total();
    double o3 = timedRetrieve(spec, RagVariant::Opt3)
                    .stages.total();
    double all = timedRetrieve(spec, RagVariant::AllOpts)
                     .stages.total();

    EXPECT_GT(noopt / o1, 4.0);           // opt1: large gain
    EXPECT_LT(noopt / o2, 1.5);           // opt2 alone: modest
    EXPECT_LT(noopt / o3, 1.1);           // opt3 alone: ~nothing
    EXPECT_LT(all, o1);                   // all opts best
    EXPECT_GT(noopt / all, 5.0);
}

TEST(RagTiming, QueryLoadSlowerWithBroadcastLayout)
{
    // Table 8: load query grows from ~10 us (no-opt) to ~62 us
    // (all-opts) because the query is staged into L3.
    const auto &spec = ragCorpora()[0];
    auto noopt = timedRetrieve(spec, RagVariant::NoOpt);
    auto all = timedRetrieve(spec, RagVariant::AllOpts);
    EXPECT_LT(noopt.stages.loadQuery * 1e6, 30.0);
    EXPECT_GT(all.stages.loadQuery * 1e6, 40.0);
    EXPECT_LT(all.stages.loadQuery * 1e6, 150.0);
}

TEST(RagTiming, ActivityForEnergyModel)
{
    const auto &spec = ragCorpora()[2];
    auto r = timedRetrieve(spec, RagVariant::AllOpts);
    EXPECT_NEAR(r.dramBytes, 2.4e9, 0.1e9);
    EXPECT_GT(r.cacheBytes, r.dramBytes);
    EXPECT_GT(r.computeSeconds, 0.0);
    EXPECT_LE(r.computeSeconds, r.stages.total());
}

TEST(RagModel, FrameworkTracksSimulatorOnDeviceStages)
{
    apu::ApuDevice cal;
    model::SubgroupReductionModel sg;
    sg.calibrate(cal.core(0));
    model::LatencyEstimator est;
    est.setSgModel(sg);

    for (const auto &spec : ragCorpora()) {
        for (auto v : {RagVariant::NoOpt, RagVariant::Opt1,
                       RagVariant::AllOpts}) {
            auto r = timedRetrieve(spec, v);
            // On-device stages only: everything but the HBM stream.
            double meas =
                (r.stages.total() - r.stages.loadEmbedding) *
                500.0e6;
            double pred = predictRagCycles(est, spec, v);
            EXPECT_NEAR(pred, meas, meas * 0.10)
                << spec.label << " " << ragVariantName(v);
        }
    }
}

namespace {

/** Host emulation of the gf16 accumulation the kernel performs. */
std::vector<Hit>
gf16ReferenceTopK(const RagCorpusSpec &spec, uint64_t seed,
                  const std::vector<int16_t> &query, size_t k)
{
    std::vector<Hit> all;
    for (size_t c = 0; c < spec.numChunks; ++c) {
        GsiFloat16 acc = GsiFloat16::fromFloat(0.0f);
        for (size_t d = 0; d < spec.dim; ++d) {
            GsiFloat16 e = GsiFloat16::fromFloat(
                static_cast<float>(embeddingValue(c, d, seed)));
            GsiFloat16 q = GsiFloat16::fromFloat(
                static_cast<float>(query[d]));
            acc = acc + e * q;
        }
        all.push_back({acc.toFloat(), c});
    }
    std::sort(all.begin(), all.end(), [](const Hit &a, const Hit &b) {
        if (a.score != b.score)
            return a.score > b.score;
        return a.id < b.id;
    });
    all.resize(std::min(k, all.size()));
    return all;
}

} // namespace

TEST(RagGf16, TopKMatchesGf16Emulation)
{
    RagCorpusSpec spec{"gf16", 0, 3000, 368};
    auto query = genQuery(spec.dim, 61);
    auto expect = gf16ReferenceTopK(spec, 62, query, 5);

    apu::ApuDevice dev;
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, spec, 5);
    auto got = retriever.retrieveGf16(query, 62);

    ASSERT_EQ(got.hits.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(got.hits[i].id, expect[i].id) << i;
        EXPECT_FLOAT_EQ(got.hits[i].score, expect[i].score) << i;
    }
}

TEST(RagGf16, CloseToExactIntegerRanking)
{
    // gf16's 9-bit mantissa rounds large dot products; the top hit
    // should still be the exact top hit on realistic data.
    RagCorpusSpec spec{"gf16b", 0, 3000, 368};
    auto query = genQuery(spec.dim, 63);
    auto exact = referenceTopK(spec, 64, query, 5);

    apu::ApuDevice dev;
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, spec, 5);
    auto got = retriever.retrieveGf16(query, 64);

    ASSERT_FALSE(got.hits.empty());
    EXPECT_EQ(got.hits[0].id, exact[0].id);
    // Rounded score within gf16 tolerance of the exact dot.
    EXPECT_NEAR(got.hits[0].score, exact[0].score,
                std::fabs(exact[0].score) * 0.02 + 8.0);
}

TEST(RagGf16, FasterDistanceThanInt16)
{
    // mul_gf16 (77) + add_gf16 vs mul_s16 (201) + add_s16: the
    // native float path wins on compute (Table 5).
    const auto &spec = ragCorpora()[2];
    apu::ApuDevice d1, d2;
    d1.core(0).setMode(apu::ExecMode::TimingOnly);
    d2.core(0).setMode(apu::ExecMode::TimingOnly);
    dram::DramSystem h1(dram::hbm2eConfig()), h2(dram::hbm2eConfig());
    RagRetriever r1(d1, h1, spec, 5), r2(d2, h2, spec, 5);
    auto q = genQuery(spec.dim, 1);
    double int_dist =
        r1.retrieve(q, RagVariant::AllOpts, 1).stages.calcDistance;
    double gf_dist = r2.retrieveGf16(q, 1).stages.calcDistance;
    EXPECT_LT(gf_dist, int_dist);
    EXPECT_GT(gf_dist, int_dist * 0.5);
}
