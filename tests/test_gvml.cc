/**
 * @file
 * GVML operation tests: every element-wise op against a scalar
 * reference (parameterized property sweep), masked ops, subgroup
 * operations, shifts, reductions, and cost accounting against the
 * paper's Table 5.
 */

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/fixedpoint.hh"
#include "common/float16.hh"
#include "common/gsifloat.hh"
#include "common/rng.hh"
#include "gvml/gvml.hh"

using namespace cisram;
using namespace cisram::apu;
using namespace cisram::gvml;

namespace {

struct EwiseCase
{
    const char *name;
    uint64_t cost; // expected Table 5 cycles (0 = unchecked)
    std::function<void(Gvml &, Vr, Vr, Vr)> run;
    std::function<uint16_t(uint16_t, uint16_t)> ref;
};

int16_t
s16(uint16_t v)
{
    return static_cast<int16_t>(v);
}

uint16_t
u16(int32_t v)
{
    return static_cast<uint16_t>(v & 0xffff);
}

const EwiseCase ewiseCases[] = {
    {"and_16", 12,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.and16(d, a, b); },
     [](uint16_t x, uint16_t y) { return u16(x & y); }},
    {"or_16", 8,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.or16(d, a, b); },
     [](uint16_t x, uint16_t y) { return u16(x | y); }},
    {"xor_16", 12,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.xor16(d, a, b); },
     [](uint16_t x, uint16_t y) { return u16(x ^ y); }},
    {"add_u16", 12,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.addU16(d, a, b); },
     [](uint16_t x, uint16_t y) { return u16(x + y); }},
    {"add_s16", 13,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.addS16(d, a, b); },
     [](uint16_t x, uint16_t y) { return u16(s16(x) + s16(y)); }},
    {"sub_u16", 15,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.subU16(d, a, b); },
     [](uint16_t x, uint16_t y) { return u16(x - y); }},
    {"sub_s16", 16,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.subS16(d, a, b); },
     [](uint16_t x, uint16_t y) { return u16(s16(x) - s16(y)); }},
    {"mul_u16", 115,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.mulU16(d, a, b); },
     [](uint16_t x, uint16_t y) {
         return u16(static_cast<int32_t>(
             (static_cast<uint32_t>(x) * y) & 0xffff));
     }},
    {"mul_s16", 201,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.mulS16(d, a, b); },
     [](uint16_t x, uint16_t y) { return u16(s16(x) * s16(y)); }},
    {"div_u16", 664,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.divU16(d, a, b); },
     [](uint16_t x, uint16_t y) {
         return y == 0 ? uint16_t(0xffff) : u16(x / y);
     }},
    {"eq_16", 13,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.eq16(d, a, b); },
     [](uint16_t x, uint16_t y) { return u16(x == y ? 1 : 0); }},
    {"gt_u16", 13,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.gtU16(d, a, b); },
     [](uint16_t x, uint16_t y) { return u16(x > y ? 1 : 0); }},
    {"lt_u16", 13,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.ltU16(d, a, b); },
     [](uint16_t x, uint16_t y) { return u16(x < y ? 1 : 0); }},
    {"ge_u16", 13,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.geU16(d, a, b); },
     [](uint16_t x, uint16_t y) { return u16(x >= y ? 1 : 0); }},
    {"le_u16", 13,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.leU16(d, a, b); },
     [](uint16_t x, uint16_t y) { return u16(x <= y ? 1 : 0); }},
    {"min_u16", 13,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.minU16(d, a, b); },
     [](uint16_t x, uint16_t y) { return u16(std::min(x, y)); }},
    {"max_u16", 13,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.maxU16(d, a, b); },
     [](uint16_t x, uint16_t y) { return u16(std::max(x, y)); }},
    {"mul_f16", 77,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.mulF16(d, a, b); },
     [](uint16_t x, uint16_t y) {
         return (Float16::fromBits(x) * Float16::fromBits(y)).bits();
     }},
    {"lt_gf16", 45,
     [](Gvml &g, Vr d, Vr a, Vr b) { g.ltGf16(d, a, b); },
     [](uint16_t x, uint16_t y) {
         return u16(GsiFloat16::fromBits(x) < GsiFloat16::fromBits(y)
                        ? 1 : 0);
     }},
};

class EwiseOps : public ::testing::TestWithParam<EwiseCase>
{
};

} // namespace

TEST_P(EwiseOps, MatchesScalarReferenceAndCost)
{
    const auto &c = GetParam();
    ApuDevice dev;
    Gvml g(dev.core(0));
    Rng rng(std::hash<std::string>{}(c.name));

    auto &a = g.data(Vr(1));
    auto &b = g.data(Vr(2));
    for (size_t i = 0; i < a.size(); ++i) {
        a[i] = rng.nextU16();
        b[i] = rng.nextU16();
    }
    // Exercise boundary values explicitly.
    a[0] = 0; b[0] = 0;
    a[1] = 0xffff; b[1] = 0xffff;
    a[2] = 0x8000; b[2] = 0x7fff;
    a[3] = 0x1234; b[3] = 0;

    dev.core(0).stats().reset();
    c.run(g, Vr(0), Vr(1), Vr(2));
    const auto &d = g.data(Vr(0));
    for (size_t i = 0; i < d.size(); ++i)
        ASSERT_EQ(d[i], c.ref(a[i], b[i]))
            << c.name << " at " << i << " a=" << a[i] << " b=" << b[i];

    if (c.cost != 0) {
        // One vector command: documented cost + VCU decode.
        uint64_t decode = dev.timing().control.vcuDecode;
        EXPECT_DOUBLE_EQ(dev.core(0).stats().cycles(),
                         static_cast<double>(c.cost + decode));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Table5, EwiseOps, ::testing::ValuesIn(ewiseCases),
    [](const ::testing::TestParamInfo<EwiseCase> &info) {
        return std::string(info.param.name);
    });

namespace {

class GvmlTest : public ::testing::Test
{
  protected:
    GvmlTest() : g(dev.core(0)) {}

    void
    fillRandom(Vr v, uint64_t seed)
    {
        Rng rng(seed);
        for (auto &x : g.data(v))
            x = rng.nextU16();
    }

    ApuDevice dev;
    Gvml g;
};

} // namespace

TEST_F(GvmlTest, UnaryOps)
{
    fillRandom(Vr(1), 2);
    g.not16(Vr(0), Vr(1));
    g.popcnt16(Vr(2), Vr(1));
    g.srImm16(Vr(3), Vr(1), 3);
    g.slImm16(Vr(4), Vr(1), 2);
    g.recipU16(Vr(5), Vr(1));
    const auto &in = g.data(Vr(1));
    for (size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(g.data(Vr(0))[i], static_cast<uint16_t>(~in[i]));
        EXPECT_EQ(g.data(Vr(2))[i], __builtin_popcount(in[i]));
        EXPECT_EQ(g.data(Vr(3))[i], in[i] >> 3);
        EXPECT_EQ(g.data(Vr(4))[i],
                  static_cast<uint16_t>(in[i] << 2));
        EXPECT_EQ(g.data(Vr(5))[i],
                  in[i] == 0 ? 0xffff : 65535 / in[i]);
    }
}

TEST_F(GvmlTest, ArithmeticShiftImmediate)
{
    auto &in = g.data(Vr(1));
    in[0] = static_cast<uint16_t>(-100);
    in[1] = 100;
    in[2] = 0x8000;
    g.ashImm16(Vr(0), Vr(1), -2);
    EXPECT_EQ(static_cast<int16_t>(g.data(Vr(0))[0]), -25);
    EXPECT_EQ(g.data(Vr(0))[1], 25);
    EXPECT_EQ(static_cast<int16_t>(g.data(Vr(0))[2]), -8192);
    g.ashImm16(Vr(0), Vr(1), 1);
    EXPECT_EQ(static_cast<int16_t>(g.data(Vr(0))[0]), -200);
    EXPECT_EQ(g.data(Vr(0))[1], 200);
}

TEST_F(GvmlTest, TrigOps)
{
    auto &phase = g.data(Vr(1));
    for (size_t i = 0; i < phase.size(); ++i)
        phase[i] = static_cast<uint16_t>(i * 2);
    g.sinFx(Vr(0), Vr(1));
    g.cosFx(Vr(2), Vr(1));
    for (size_t i = 0; i < phase.size(); i += 501) {
        EXPECT_EQ(static_cast<int16_t>(g.data(Vr(0))[i]),
                  sinFx(phase[i]));
        EXPECT_EQ(static_cast<int16_t>(g.data(Vr(2))[i]),
                  cosFx(phase[i]));
    }
}

TEST_F(GvmlTest, CopiesAndBroadcasts)
{
    fillRandom(Vr(1), 3);
    g.cpy16(Vr(0), Vr(1));
    EXPECT_EQ(g.data(Vr(0)), g.data(Vr(1)));

    g.cpyImm16(Vr(2), 0xabcd);
    for (uint16_t v : g.data(Vr(2)))
        ASSERT_EQ(v, 0xabcd);
}

TEST_F(GvmlTest, MaskedCopies)
{
    fillRandom(Vr(1), 4);
    g.cpyImm16(Vr(0), 7);
    // Mark even elements.
    auto &mark = g.data(Vr(3));
    for (size_t i = 0; i < mark.size(); ++i)
        mark[i] = (i % 2 == 0) ? 1 : 0;
    g.cpy16Msk(Vr(0), Vr(1), Vr(3));
    for (size_t i = 0; i < mark.size(); ++i)
        ASSERT_EQ(g.data(Vr(0))[i],
                  i % 2 == 0 ? g.data(Vr(1))[i] : 7);

    g.cpyImm16Msk(Vr(0), 9, Vr(3));
    for (size_t i = 0; i < mark.size(); ++i)
        ASSERT_EQ(g.data(Vr(0))[i],
                  i % 2 == 0 ? 9 : 7);
}

TEST_F(GvmlTest, MaskedArithmeticFamily)
{
    fillRandom(Vr(1), 41);
    fillRandom(Vr(2), 42);
    auto &mark = g.data(Vr(3));
    Rng rng(43);
    for (auto &m : mark)
        m = rng.next() & 1;

    struct Case
    {
        std::function<void()> run;
        std::function<uint16_t(uint16_t, uint16_t)> ref;
    } cases[] = {
        {[&] { g.addU16Msk(Vr(0), Vr(1), Vr(2), Vr(3)); },
         [](uint16_t a, uint16_t b) {
             return static_cast<uint16_t>(a + b);
         }},
        {[&] { g.subU16Msk(Vr(0), Vr(1), Vr(2), Vr(3)); },
         [](uint16_t a, uint16_t b) {
             return static_cast<uint16_t>(a - b);
         }},
        {[&] { g.mulU16Msk(Vr(0), Vr(1), Vr(2), Vr(3)); },
         [](uint16_t a, uint16_t b) {
             return static_cast<uint16_t>(
                 static_cast<uint32_t>(a) * b);
         }},
        {[&] { g.minU16Msk(Vr(0), Vr(1), Vr(2), Vr(3)); },
         [](uint16_t a, uint16_t b) { return std::min(a, b); }},
        {[&] { g.maxU16Msk(Vr(0), Vr(1), Vr(2), Vr(3)); },
         [](uint16_t a, uint16_t b) { return std::max(a, b); }},
    };
    for (auto &c : cases) {
        g.cpyImm16(Vr(0), 7777);
        c.run();
        const auto &d = g.data(Vr(0));
        const auto &a = g.data(Vr(1));
        const auto &b = g.data(Vr(2));
        for (size_t i = 0; i < d.size(); ++i)
            ASSERT_EQ(d[i],
                      mark[i] ? c.ref(a[i], b[i]) : 7777)
                << i;
    }
}

TEST_F(GvmlTest, MaskedOpCostsIncludeMaskArm)
{
    dev.core(0).stats().reset();
    g.addU16(Vr(0), Vr(1), Vr(2));
    double plain = dev.core(0).stats().cycles();
    dev.core(0).stats().reset();
    g.addU16Msk(Vr(0), Vr(1), Vr(2), Vr(3));
    double masked = dev.core(0).stats().cycles();
    EXPECT_GT(masked, plain);
    EXPECT_LT(masked, plain + 20);
}

TEST_F(GvmlTest, SubgroupBroadcast)
{
    fillRandom(Vr(1), 5);
    const size_t grp = 1024, subgrp = 128;
    g.cpySubgrp16Grp(Vr(0), Vr(1), grp, subgrp);
    const auto &src = g.data(Vr(1));
    const auto &dst = g.data(Vr(0));
    for (size_t i = 0; i < dst.size(); ++i) {
        size_t base = (i / grp) * grp;
        ASSERT_EQ(dst[i], src[base + (i - base) % subgrp]) << i;
    }
    // Cost: Table 4 cpy_subgrp = 82.
    ApuDevice d2;
    Gvml g2(d2.core(0));
    g2.cpySubgrp16Grp(Vr(0), Vr(1), grp, subgrp);
    EXPECT_DOUBLE_EQ(d2.core(0).stats().cycles(),
                     82.0 + d2.timing().control.vcuDecode);
}

TEST_F(GvmlTest, GroupIndexCreation)
{
    g.createGrpIndexU16(Vr(0), 512);
    for (size_t i = 0; i < g.length(); ++i)
        ASSERT_EQ(g.data(Vr(0))[i], i % 512);
    g.createIndexU16(Vr(1));
    for (size_t i = 0; i < g.length(); ++i)
        ASSERT_EQ(g.data(Vr(1))[i], static_cast<uint16_t>(i));
}

TEST_F(GvmlTest, ShiftTowardHeadAndTail)
{
    fillRandom(Vr(1), 6);
    const auto src = g.data(Vr(1));

    g.shiftE(Vr(0), Vr(1), 5);
    for (size_t i = 0; i + 5 < g.length(); ++i)
        ASSERT_EQ(g.data(Vr(0))[i], src[i + 5]);
    for (size_t i = g.length() - 5; i < g.length(); ++i)
        ASSERT_EQ(g.data(Vr(0))[i], 0);

    g.shiftE(Vr(0), Vr(1), -3);
    for (size_t i = 3; i < g.length(); ++i)
        ASSERT_EQ(g.data(Vr(0))[i], src[i - 3]);
    for (size_t i = 0; i < 3; ++i)
        ASSERT_EQ(g.data(Vr(0))[i], 0);
}

TEST_F(GvmlTest, ShiftCostsFollowTable4)
{
    uint64_t decode = dev.timing().control.vcuDecode;
    // Generic path: 373 k.
    dev.core(0).stats().reset();
    g.shiftE(Vr(0), Vr(1), 3);
    EXPECT_DOUBLE_EQ(dev.core(0).stats().cycles(),
                     373.0 * 3 + decode);
    // Intra-bank path for multiples of 4: 8 + k.
    dev.core(0).stats().reset();
    g.shiftE(Vr(0), Vr(1), 4 * 100);
    EXPECT_DOUBLE_EQ(dev.core(0).stats().cycles(),
                     8.0 + 100 + decode);
}

TEST_F(GvmlTest, SubgroupReductionSmallGroups)
{
    auto &src = g.data(Vr(1));
    Rng rng(8);
    for (auto &v : src)
        v = static_cast<uint16_t>(rng.nextBelow(100));

    const size_t grp = 8, subgrp = 2;
    g.addSubgrpS16(Vr(0), Vr(1), grp, subgrp);
    const auto &dst = g.data(Vr(0));
    for (size_t base = 0; base < g.length(); base += grp) {
        for (size_t pos = 0; pos < subgrp; ++pos) {
            int32_t expect = 0;
            for (size_t sg = 0; sg < grp / subgrp; ++sg)
                expect += static_cast<int16_t>(
                    src[base + sg * subgrp + pos]);
            ASSERT_EQ(static_cast<int16_t>(dst[base + pos]), expect)
                << base << "+" << pos;
        }
    }
}

TEST_F(GvmlTest, SubgroupReductionFullVr)
{
    auto &src = g.data(Vr(1));
    for (size_t i = 0; i < src.size(); ++i)
        src[i] = 1;
    // Sum the entire VR into element 0.
    g.addSubgrpS16(Vr(0), Vr(1), g.length(), 1);
    EXPECT_EQ(static_cast<int16_t>(g.data(Vr(0))[0]),
              static_cast<int16_t>(g.length())); // 32768 wraps to -32768
    EXPECT_EQ(g.data(Vr(0))[0], 0x8000);
}

TEST_F(GvmlTest, SubgroupReductionIdentityWhenEqual)
{
    fillRandom(Vr(1), 9);
    g.addSubgrpS16(Vr(0), Vr(1), 64, 64);
    EXPECT_EQ(g.data(Vr(0)), g.data(Vr(1)));
}

TEST_F(GvmlTest, CountMarked)
{
    auto &mark = g.data(Vr(1));
    size_t expect = 0;
    Rng rng(10);
    for (auto &v : mark) {
        v = (rng.next() & 3) == 0 ? 1 : 0;
        expect += v;
    }
    EXPECT_EQ(g.countM(Vr(1)), expect);
}

TEST_F(GvmlTest, MaxAndMinIndex)
{
    auto &src = g.data(Vr(1));
    Rng rng(11);
    for (auto &v : src)
        v = static_cast<uint16_t>(rng.nextBelow(50000));
    src[12345] = 65535;
    src[222] = 0;

    auto mx = g.maxIndexU16(Vr(1));
    EXPECT_EQ(mx.value, 65535);
    EXPECT_EQ(mx.index, 12345u);

    auto mn = g.minIndexU16(Vr(1));
    EXPECT_EQ(mn.value, 0);
    EXPECT_EQ(mn.index, 222u);
}

TEST_F(GvmlTest, MaxIndexReturnsFirstOccurrence)
{
    auto &src = g.data(Vr(1));
    std::fill(src.begin(), src.end(), 5);
    src[100] = 77;
    src[200] = 77;
    auto mx = g.maxIndexU16(Vr(1));
    EXPECT_EQ(mx.value, 77);
    EXPECT_EQ(mx.index, 100u);
}

TEST_F(GvmlTest, TimingOnlyModeChargesButSkips)
{
    fillRandom(Vr(1), 12);
    auto before = g.data(Vr(0));
    dev.core(0).setMode(ExecMode::TimingOnly);
    dev.core(0).stats().reset();
    g.addU16(Vr(0), Vr(1), Vr(1));
    EXPECT_GT(dev.core(0).stats().cycles(), 0.0);
    EXPECT_EQ(g.data(Vr(0)), before);
    dev.core(0).setMode(ExecMode::Functional);
}

TEST_F(GvmlTest, Float16AndGsiFloatArithmetic)
{
    Rng rng(50);
    auto &a = g.data(Vr(1));
    auto &b = g.data(Vr(2));
    std::vector<float> fa(g.length()), fb(g.length());
    for (size_t i = 0; i < g.length(); ++i) {
        fa[i] = rng.nextFloat(-50.0f, 50.0f);
        fb[i] = rng.nextFloat(-50.0f, 50.0f);
        a[i] = Float16::fromFloat(fa[i]).bits();
        b[i] = Float16::fromFloat(fb[i]).bits();
    }
    g.addF16(Vr(0), Vr(1), Vr(2));
    for (size_t i = 0; i < g.length(); i += 733) {
        Float16 expect = Float16::fromBits(a[i]) +
            Float16::fromBits(b[i]);
        ASSERT_EQ(g.data(Vr(0))[i], expect.bits()) << i;
    }

    // GSI-float multiply and add.
    for (size_t i = 0; i < g.length(); ++i) {
        a[i] = GsiFloat16::fromFloat(fa[i]).bits();
        b[i] = GsiFloat16::fromFloat(fb[i]).bits();
    }
    g.mulGf16(Vr(0), Vr(1), Vr(2));
    g.addGf16(Vr(3), Vr(1), Vr(2));
    for (size_t i = 0; i < g.length(); i += 733) {
        ASSERT_EQ(g.data(Vr(0))[i],
                  (GsiFloat16::fromBits(a[i]) *
                   GsiFloat16::fromBits(b[i]))
                      .bits());
        ASSERT_EQ(g.data(Vr(3))[i],
                  (GsiFloat16::fromBits(a[i]) +
                   GsiFloat16::fromBits(b[i]))
                      .bits());
    }
}

TEST_F(GvmlTest, OrderGf16IsMonotone)
{
    Rng rng(51);
    auto &src = g.data(Vr(1));
    for (auto &v : src)
        v = GsiFloat16::fromFloat(rng.nextFloat(-100.f, 100.f))
                .bits();
    g.orderGf16(Vr(0), Vr(1), Vr(2), Vr(3));
    const auto &ord = g.data(Vr(0));
    // Order preservation: float order == u16 key order.
    for (size_t i = 1; i < g.length(); i += 517) {
        float x = GsiFloat16::fromBits(src[i - 1]).toFloat();
        float y = GsiFloat16::fromBits(src[i]).toFloat();
        if (x < y)
            ASSERT_LT(ord[i - 1], ord[i]) << i;
        else if (x > y)
            ASSERT_GT(ord[i - 1], ord[i]) << i;
    }
}

TEST_F(GvmlTest, ExpF16)
{
    auto &in = g.data(Vr(1));
    in[0] = Float16::fromFloat(0.0f).bits();
    in[1] = Float16::fromFloat(1.0f).bits();
    in[2] = Float16::fromFloat(-2.0f).bits();
    g.expF16(Vr(0), Vr(1));
    EXPECT_NEAR(Float16::fromBits(g.data(Vr(0))[0]).toFloat(), 1.0f,
                1e-3);
    EXPECT_NEAR(Float16::fromBits(g.data(Vr(0))[1]).toFloat(),
                2.71828f, 3e-3);
    EXPECT_NEAR(Float16::fromBits(g.data(Vr(0))[2]).toFloat(),
                0.13534f, 1e-3);
}
