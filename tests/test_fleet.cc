/**
 * @file
 * Fleet-scale sharded serving: consistent-hash placement
 * (determinism, stability, balance), the deterministic fabric model
 * (charging, device-scoped faults, sticky wedges, sever/reset), and
 * the router's scatter-gather contract — merged top-k bit-identical
 * to the unsharded index across fleet sizes, and a mid-stream device
 * kill at R=2 that fails over with exactly-once delivery and zero
 * drops.
 */

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/faisslite.hh"
#include "baseline/workloads.hh"
#include "common/metrics.hh"
#include "common/status.hh"
#include "fault/fault.hh"
#include "fleet/fabric.hh"
#include "fleet/fleet.hh"
#include "fleet/placement.hh"
#include "kernels/serving.hh"
#include "recovery/health.hh"

using namespace cisram;
using namespace cisram::fleet;

namespace {

/** Disarm on scope exit so no test leaks an armed plan. */
struct PlanGuard
{
    explicit PlanGuard(const std::string &spec)
    {
        auto p = fault::FaultPlan::parse(spec);
        EXPECT_TRUE(p.ok()) << p.status().toString();
        fault::armPlan(*p);
    }
    ~PlanGuard() { fault::disarm(); }
};

/** Primary device of each shard. */
std::vector<unsigned>
primaries(const std::vector<std::vector<unsigned>> &placement)
{
    std::vector<unsigned> out;
    out.reserve(placement.size());
    for (const auto &prio : placement)
        out.push_back(prio[0]);
    return out;
}

} // namespace

// ---- consistent-hash placement ------------------------------------------

TEST(Placement, DeterministicAcrossCallsAndConfigs)
{
    auto a = placeShards(128, 8, 2);
    auto b = placeShards(128, 8, 2);
    EXPECT_EQ(a, b);

    // A pure function of (S, N, R, config): no hidden state leaks
    // between calls with other shapes.
    (void)placeShards(64, 16, 1);
    auto c = placeShards(128, 8, 2);
    EXPECT_EQ(a, c);
}

TEST(Placement, ReplicaListsAreDistinctAndClamped)
{
    auto p = placeShards(32, 8, 2);
    ASSERT_EQ(p.size(), 32u);
    for (const auto &prio : p) {
        ASSERT_EQ(prio.size(), 2u);
        EXPECT_NE(prio[0], prio[1]);
        for (unsigned d : prio)
            EXPECT_LT(d, 8u);
    }

    // R clamps to the device count; R=0 means one replica.
    for (const auto &prio : placeShards(8, 2, 5))
        EXPECT_EQ(prio.size(), 2u);
    for (const auto &prio : placeShards(8, 4, 0))
        EXPECT_EQ(prio.size(), 1u);
}

TEST(Placement, SingleDeviceHoldsEveryShard)
{
    for (const auto &prio : placeShards(128, 1, 2)) {
        ASSERT_EQ(prio.size(), 1u);
        EXPECT_EQ(prio[0], 0u);
    }
}

TEST(Placement, AddingOrRemovingOneDeviceMovesFewShards)
{
    // The consistent-hash stability contract: growing N by one may
    // move only about S/N primaries (each move is a full shard
    // re-stage over PCIe), never trigger a wholesale reshuffle.
    const unsigned S = 128;
    for (unsigned n : {4u, 8u, 15u}) {
        auto before = primaries(placeShards(S, n, 2));
        auto after = primaries(placeShards(S, n + 1, 2));
        unsigned moved = 0;
        for (unsigned s = 0; s < S; ++s)
            if (before[s] != after[s])
                ++moved;
        unsigned ceil_sn = (S + n) / (n + 1);
        EXPECT_LE(moved, ceil_sn + ceil_sn / 2 + 4)
            << "grow " << n << " -> " << n + 1 << " moved "
            << moved;
        EXPECT_GT(moved, 0u) << "the new device must take load";
    }
}

TEST(Placement, PrimaryLoadStaysNearTheMean)
{
    // QPS is set by the busiest device, so the max primary load is
    // the fleet's scaling floor. Bounded-load placement guarantees
    // it: no primary exceeds ceil(S/N) + primaryLoadSlack.
    const unsigned S = 128;
    for (unsigned n : {2u, 4u, 8u, 16u}) {
        auto prim = primaries(placeShards(S, n, 2));
        std::vector<unsigned> load(n, 0);
        for (unsigned d : prim)
            ++load[d];
        unsigned max_load =
            *std::max_element(load.begin(), load.end());
        unsigned min_load =
            *std::min_element(load.begin(), load.end());
        EXPECT_LE(max_load, (S + n - 1) / n + 1)
            << n << " devices: max " << max_load;
        EXPECT_GT(min_load, 0u)
            << n << " devices: an idle device wastes a slot";
    }
}

TEST(Placement, ChunkRangesPartitionTheCorpus)
{
    const size_t total = 1003;
    const unsigned S = 16;
    size_t next = 0;
    for (unsigned s = 0; s < S; ++s) {
        ShardRange r = shardChunkRange(total, S, s);
        EXPECT_EQ(r.firstChunk, next);
        EXPECT_GE(r.numChunks, total / S);
        EXPECT_LE(r.numChunks, total / S + 1);
        next = r.firstChunk + r.numChunks;
    }
    EXPECT_EQ(next, total);

    // Shard geometry is independent of the device count by
    // construction (no device parameter exists to vary).
}

// ---- fabric charging and fault injection --------------------------------

TEST(Fabric, CleanTransferChargesLatencyPlusBandwidth)
{
    FabricConfig cfg;
    Fabric fab(2, cfg);
    auto t = fab.transfer(0, 4096);
    ASSERT_TRUE(t.ok());
    EXPECT_DOUBLE_EQ(*t,
                     cfg.latencySeconds + 4096.0 / cfg.bytesPerSec);
    EXPECT_EQ(fab.stats(0).messages, 1u);
    EXPECT_EQ(fab.stats(0).attempts, 1u);
    EXPECT_EQ(fab.stats(0).drops, 0u);
    EXPECT_DOUBLE_EQ(fab.stats(0).busySeconds, *t);
    EXPECT_EQ(fab.stats(1).messages, 0u);
}

TEST(Fabric, DroppedAttemptChargesTheAckTimeout)
{
    PlanGuard plan("link_drop:nth=1;seed:4");
    FabricConfig cfg;
    Fabric fab(1, cfg);
    auto t = fab.transfer(0, 1024);
    ASSERT_TRUE(t.ok());
    // First attempt times out, the retransmit delivers.
    EXPECT_DOUBLE_EQ(*t, cfg.dropTimeoutSeconds +
                         cfg.latencySeconds +
                         1024.0 / cfg.bytesPerSec);
    EXPECT_EQ(fab.stats(0).drops, 1u);
    EXPECT_EQ(fab.stats(0).attempts, 2u);
    EXPECT_EQ(fab.stats(0).failures, 0u);

    // The nth counter keyed the first *message*: later messages are
    // clean.
    auto u = fab.transfer(0, 1024);
    ASSERT_TRUE(u.ok());
    EXPECT_DOUBLE_EQ(*u, cfg.latencySeconds +
                         1024.0 / cfg.bytesPerSec);
}

TEST(Fabric, DeviceScopedFaultHitsOnlyThatLink)
{
    PlanGuard plan("link_corrupt:device=1,p=1;seed:2");
    FabricConfig cfg;
    Fabric fab(3, cfg);

    EXPECT_TRUE(fab.transfer(0, 64).ok());
    EXPECT_TRUE(fab.transfer(2, 64).ok());

    auto t = fab.transfer(1, 64);
    ASSERT_FALSE(t.ok());
    EXPECT_EQ(t.status().code(), StatusCode::DataCorruption);
    EXPECT_EQ(fab.stats(1).corrupts, cfg.maxAttempts);
    EXPECT_EQ(fab.stats(1).failures, 1u);
    // Every corrupted attempt crossed the wire in full.
    EXPECT_DOUBLE_EQ(fab.stats(1).busySeconds,
                     cfg.maxAttempts *
                         (cfg.latencySeconds +
                          64.0 / cfg.bytesPerSec));
    // Non-sticky: the link is not wedged, just lossy.
    EXPECT_FALSE(fab.wedged(1));
}

TEST(Fabric, StickyDropWedgesUntilResetLink)
{
    PlanGuard plan("link_drop:nth=1,sticky=1;seed:6");
    FabricConfig cfg;
    Fabric fab(1, cfg);

    auto t = fab.transfer(0, 128);
    ASSERT_FALSE(t.ok());
    EXPECT_EQ(t.status().code(), StatusCode::Unavailable);
    EXPECT_TRUE(fab.wedged(0));
    // Every attempt after the latch dropped without a fresh draw.
    EXPECT_EQ(fab.stats(0).drops, cfg.maxAttempts);

    // Wedged: the next message fails too.
    EXPECT_FALSE(fab.transfer(0, 128).ok());

    // Link retraining (a device reset) clears the latch; the nth
    // draw was consumed long ago, so traffic flows again.
    fab.resetLink(0);
    EXPECT_FALSE(fab.wedged(0));
    EXPECT_TRUE(fab.transfer(0, 128).ok());
}

TEST(Fabric, SeveredLinkIsUnavailableUntilReset)
{
    Fabric fab(2);
    fab.sever(1);
    EXPECT_TRUE(fab.wedged(1));
    auto t = fab.transfer(1, 64);
    ASSERT_FALSE(t.ok());
    EXPECT_EQ(t.status().code(), StatusCode::Unavailable);
    EXPECT_NE(t.status().message().find("severed"),
              std::string::npos);
    EXPECT_TRUE(fab.transfer(0, 64).ok());

    fab.resetLink(1);
    EXPECT_TRUE(fab.transfer(1, 64).ok());
}

// ---- fleet-size validation of device-scoped plans -----------------------

TEST(FleetFaultValidation, RejectsClausesBeyondTheFleet)
{
    auto p =
        fault::FaultPlan::parse("link_drop:device=5,p=1;seed:1");
    ASSERT_TRUE(p.ok());
    Status st = validateFaultPlanForFleet(*p, 4);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::InvalidArgument);
    EXPECT_NE(st.message().find("link_drop"), std::string::npos);
    EXPECT_NE(st.message().find("device=5"), std::string::npos);

    EXPECT_TRUE(validateFaultPlanForFleet(*p, 6).ok());

    // Unscoped clauses pass for any fleet size.
    auto q = fault::FaultPlan::parse("pcie_corrupt:p=0.1");
    ASSERT_TRUE(q.ok());
    EXPECT_TRUE(validateFaultPlanForFleet(*q, 1).ok());
}

// ---- the router: scatter-gather correctness -----------------------------

namespace {

/** Small functional corpus shared by the router tests. */
struct FleetFixture
{
    baseline::RagCorpusSpec corpus{"fleet-unit", 0, 2048, 368};
    uint64_t seed = 4242;
    baseline::IndexFlatI16 global{368};

    FleetFixture()
    {
        auto emb = baseline::genEmbeddings(corpus, 0,
                                           corpus.numChunks, seed);
        global.add(emb.data(), corpus.numChunks);
    }

    std::vector<int16_t>
    query(int q) const
    {
        return baseline::genQuery(corpus.dim, 900 + q);
    }

    FleetConfig
    config(unsigned devices, unsigned replicas) const
    {
        FleetConfig cfg;
        cfg.devices = devices;
        cfg.replicas = replicas;
        cfg.shards = 8;
        cfg.functional = true;
        cfg.topK = 5;
        return cfg;
    }

    std::vector<uint32_t>
    golden(int q) const
    {
        auto hits = global.search(query(q).data(), 5);
        std::vector<uint32_t> ids;
        for (const auto &h : hits)
            ids.push_back(static_cast<uint32_t>(h.id));
        return ids;
    }
};

} // namespace

TEST(Router, MergedTopKMatchesTheUnshardedIndex)
{
#if defined(__SANITIZE_THREAD__)
    GTEST_SKIP() << "functional corpus pass too slow under TSan";
#endif
    FleetFixture fx;
    Router router(fx.corpus, fx.seed, fx.config(4, 2));
    EXPECT_EQ(router.shards(), 8u);
    EXPECT_EQ(router.devices(), 4u);

    const int kQueries = 8;
    for (int q = 0; q < kQueries; ++q)
        ASSERT_TRUE(
            router.admit(static_cast<uint64_t>(q + 1), fx.query(q))
                .ok());

    auto outs = router.drain();
    ASSERT_EQ(outs.size(), static_cast<size_t>(kQueries));
    EXPECT_EQ(router.ledgerOutstanding(), 0u);

    std::sort(outs.begin(), outs.end(),
              [](const FleetOutcome &a, const FleetOutcome &b) {
                  return a.id < b.id;
              });
    for (int q = 0; q < kQueries; ++q) {
        const FleetOutcome &out = outs[q];
        EXPECT_TRUE(out.ok);
        EXPECT_EQ(out.failovers, 0u);
        EXPECT_EQ(out.ids, fx.golden(q)) << "query " << q;
        // Latency re-adds from its parts bit-exactly.
        EXPECT_EQ(out.latencySeconds,
                  (0.0 + out.gatherSeconds) + out.hostSeconds);
        EXPECT_GT(out.gatherSeconds, 0.0);
        EXPECT_GT(out.fabricSeconds, 0.0);
    }
}

TEST(Router, AnswersAreBitIdenticalAcrossFleetSizes)
{
#if defined(__SANITIZE_THREAD__)
    GTEST_SKIP() << "functional corpus pass too slow under TSan";
#endif
    // Shard geometry depends only on (chunks, S), never on N — so
    // the same 8 shards merged from 1, 2, or 4 devices answer
    // identically, and all match the global index.
    FleetFixture fx;
    const int kQueries = 4;
    std::vector<std::vector<uint32_t>> byFleet;
    for (unsigned n : {1u, 2u, 4u}) {
        Router router(fx.corpus, fx.seed, fx.config(n, 1));
        for (int q = 0; q < kQueries; ++q)
            ASSERT_TRUE(router
                            .admit(static_cast<uint64_t>(q + 1),
                                   fx.query(q))
                            .ok());
        auto outs = router.drain();
        ASSERT_EQ(outs.size(), static_cast<size_t>(kQueries));
        std::sort(outs.begin(), outs.end(),
                  [](const FleetOutcome &a, const FleetOutcome &b) {
                      return a.id < b.id;
                  });
        std::vector<uint32_t> flat;
        for (const auto &o : outs)
            flat.insert(flat.end(), o.ids.begin(), o.ids.end());
        byFleet.push_back(std::move(flat));
    }
    EXPECT_EQ(byFleet[0], byFleet[1]);
    EXPECT_EQ(byFleet[0], byFleet[2]);
    for (int q = 0; q < kQueries; ++q) {
        auto want = fx.golden(q);
        std::vector<uint32_t> got(byFleet[0].begin() + q * 5,
                                  byFleet[0].begin() + q * 5 + 5);
        EXPECT_EQ(got, want) << "query " << q;
    }
}

// ---- the router: failover -----------------------------------------------

TEST(Router, KillDeviceFailsOverWithExactlyOnceDelivery)
{
#if defined(__SANITIZE_THREAD__)
    GTEST_SKIP() << "functional corpus pass too slow under TSan";
#endif
    FleetFixture fx;
    const int kWave = 8;

    // Clean reference run: same fleet shape, no kill.
    std::vector<std::vector<uint32_t>> clean;
    {
        Router router(fx.corpus, fx.seed, fx.config(4, 2));
        for (int q = 0; q < kWave; ++q)
            ASSERT_TRUE(router
                            .admit(static_cast<uint64_t>(q + 1),
                                   fx.query(q))
                            .ok());
        auto outs = router.pump();
        double t = router.makespanSeconds();
        for (int q = 0; q < kWave; ++q)
            ASSERT_TRUE(router
                            .admit(static_cast<uint64_t>(100 + q),
                                   fx.query(20 + q), t)
                            .ok());
        auto rest = router.drain();
        outs.insert(outs.end(), rest.begin(), rest.end());
        std::sort(outs.begin(), outs.end(),
                  [](const FleetOutcome &a, const FleetOutcome &b) {
                      return a.id < b.id;
                  });
        for (const auto &o : outs)
            clean.push_back(o.ids);
        ASSERT_EQ(clean.size(), 2u * kWave);
    }

    // Chaos run: admit a second wave, then kill the primary of
    // shard 0 while that wave is in flight.
    Router router(fx.corpus, fx.seed, fx.config(4, 2));
    for (int q = 0; q < kWave; ++q)
        ASSERT_TRUE(
            router.admit(static_cast<uint64_t>(q + 1), fx.query(q))
                .ok());
    auto outs = router.pump();
    double t = router.makespanSeconds();
    for (int q = 0; q < kWave; ++q)
        ASSERT_TRUE(router
                        .admit(static_cast<uint64_t>(100 + q),
                               fx.query(20 + q), t)
                        .ok());

    unsigned victim = router.placement()[0][0];
    router.killDevice(victim);
    EXPECT_GT(router.evacuatedQueries(), 0u);
    EXPECT_GT(router.failovers(), 0u);

    auto rest = router.drain();
    outs.insert(outs.end(), rest.begin(), rest.end());
    ASSERT_EQ(outs.size(), 2u * static_cast<size_t>(kWave));

    // Exactly once: the fleet ledger is empty, every outcome is ok,
    // and every answer is bit-identical to the clean run.
    EXPECT_EQ(router.ledgerOutstanding(), 0u);
    EXPECT_EQ(router.ledgerAdmitted(), 2u * kWave);
    std::sort(outs.begin(), outs.end(),
              [](const FleetOutcome &a, const FleetOutcome &b) {
                  return a.id < b.id;
              });
    std::set<uint64_t> ids;
    for (size_t i = 0; i < outs.size(); ++i) {
        EXPECT_TRUE(outs[i].ok) << "query #" << outs[i].id;
        EXPECT_TRUE(ids.insert(outs[i].id).second)
            << "duplicate outcome #" << outs[i].id;
        EXPECT_EQ(outs[i].ids, clean[i])
            << "query #" << outs[i].id;
    }

    // The dead device's journals handed their pending work off
    // rather than dropping it.
    size_t handed = 0;
    for (unsigned s = 0; s < router.shards(); ++s)
        if (auto *srv = router.server(victim, s))
            handed += srv->journalOutstanding();
    EXPECT_EQ(handed, 0u) << "evacuation must empty the journals";
}

TEST(Router, StickyLinkDropRoutesAroundTheDeadDevice)
{
#if defined(__SANITIZE_THREAD__)
    GTEST_SKIP() << "functional corpus pass too slow under TSan";
#endif
    // Device 0's link wedges on its first message; every shard that
    // prefers it must hedge to its replica, and all answers stay
    // exact.
    PlanGuard plan("link_drop:device=0,nth=1,sticky=1;seed:8");
    FleetFixture fx;
    Router router(fx.corpus, fx.seed, fx.config(2, 2));

    for (int q = 0; q < 4; ++q)
        ASSERT_TRUE(
            router.admit(static_cast<uint64_t>(q + 1), fx.query(q))
                .ok());
    auto outs = router.drain();
    ASSERT_EQ(outs.size(), 4u);
    EXPECT_GT(router.failovers(), 0u);
    std::sort(outs.begin(), outs.end(),
              [](const FleetOutcome &a, const FleetOutcome &b) {
                  return a.id < b.id;
              });
    for (int q = 0; q < 4; ++q) {
        EXPECT_TRUE(outs[q].ok);
        EXPECT_EQ(outs[q].ids, fx.golden(q)) << "query " << q;
    }
    EXPECT_TRUE(router.fabric().wedged(0));
}

// ---- namespaced journal ids ---------------------------------------------

TEST(Router, SubQueryIdsAreNamespacedPerDeviceAndShard)
{
    // The same query on two devices (a failover replay) or two
    // shards must journal under different ids, and the id can never
    // collide with a raw query id (the device field is biased +1).
    std::set<uint64_t> seen;
    for (unsigned d = 0; d < 4; ++d)
        for (unsigned s = 0; s < 8; ++s)
            for (uint64_t q : {1ull, 2ull, 0xffffffffull})
                EXPECT_TRUE(
                    seen.insert(Router::subQueryId(d, s, q)).second)
                    << "collision at d=" << d << " s=" << s;
    EXPECT_NE(Router::subQueryId(0, 0, 7), 7u);
    EXPECT_EQ(Router::subQueryId(1, 2, 7) & 0xffffffffull, 7u);
}

TEST(RouterDeathTest, OversizedSubQueryIdFieldsPanic)
{
    EXPECT_DEATH(Router::subQueryId(0, 0, 1ull << 32),
                 "out of range");
}

// ---- merged per-device histograms ---------------------------------------

TEST(Router, MergedDeviceLatencyEqualsPerDeviceRollup)
{
#if defined(__SANITIZE_THREAD__)
    GTEST_SKIP() << "functional corpus pass too slow under TSan";
#endif
    FleetFixture fx;
    Router router(fx.corpus, fx.seed, fx.config(2, 1));
    for (int q = 0; q < 4; ++q)
        ASSERT_TRUE(
            router.admit(static_cast<uint64_t>(q + 1), fx.query(q))
                .ok());
    (void)router.drain();

    metrics::Histogram merged = router.mergedDeviceLatency();
    uint64_t pooled_count = 0;
    double pooled_sum = 0;
    auto &reg = metrics::Registry::get();
    for (unsigned d = 0; d < router.devices(); ++d) {
        auto &h = reg.histogram("fleet.device_served_seconds",
                                {{"device", std::to_string(d)}});
        pooled_count += h.count();
        pooled_sum += h.sum();
    }
    EXPECT_GT(merged.count(), 0u);
    EXPECT_EQ(merged.count(), pooled_count);
    EXPECT_DOUBLE_EQ(merged.sum(), pooled_sum);
}

// ---- tenant quotas, class shedding, and labeled fleet metrics -----------

TEST(Router, TenantQuotaShedsLoudlyAndReleasesOnCompletion)
{
#if defined(__SANITIZE_THREAD__)
    GTEST_SKIP() << "functional corpus pass too slow under TSan";
#endif
    FleetFixture fx;
    FleetConfig cfg = fx.config(2, 1);
    cfg.quotas.push_back(FleetConfig::TenantQuota{"acme", 2});
    Router router(fx.corpus, fx.seed, cfg);

    auto &shed = metrics::Registry::get().counter(
        "recovery.shed", {{"site", "router"},
                          {"reason", "quota"},
                          {"tenant", "acme"},
                          {"slo_class", "1"}});
    double shed_before = shed.value();

    kernels::AdmitClass acme{"acme", 1};
    ASSERT_TRUE(router.admit(1, fx.query(0), 0.0, {}, acme).ok());
    ASSERT_TRUE(router.admit(2, fx.query(1), 0.0, {}, acme).ok());
    EXPECT_EQ(router.tenantInFlight("acme"), 2u);

    // Third in-flight query trips the cap: a loud pre-journal shed
    // (never ledgered, so it owes no outcome), labeled by tenant
    // and class.
    Status st = router.admit(3, fx.query(2), 0.0, {}, acme);
    EXPECT_EQ(st.code(), StatusCode::ResourceExhausted);
    EXPECT_EQ(shed.value() - shed_before, 1.0);

    // Other tenants are untouched by acme's quota.
    ASSERT_TRUE(router
                    .admit(4, fx.query(3), 0.0, {},
                           kernels::AdmitClass{"other", 0})
                    .ok());

    // Completion releases the slots: the quota is in-FLIGHT, not
    // cumulative, so admission after a drain succeeds.
    auto outs = router.drain();
    EXPECT_EQ(outs.size(), 3u);
    EXPECT_EQ(router.tenantInFlight("acme"), 0u);
    EXPECT_TRUE(router.admit(5, fx.query(4), 0.0, {}, acme).ok());
    (void)router.drain();
}

TEST(Router, LowestClassShedsFirstUnderOverload)
{
#if defined(__SANITIZE_THREAD__)
    GTEST_SKIP() << "functional corpus pass too slow under TSan";
#endif
    // With sloClasses=2 and a 2-deep admission queue, class 1 keeps
    // only half the depth budget: it sheds at depth 1 while class 0
    // still admits at that depth — the lowest class goes first.
    FleetFixture fx;
    FleetConfig cfg = fx.config(1, 1);
    cfg.server.admission.maxQueueDepth = 2;
    cfg.server.admission.sloClasses = 2;
    // A shed sub-query counts as a router-breaker failure (it hedges
    // to the next replica); widen the breaker so this test sees the
    // class caps, not the breaker tripping on the shed burst.
    cfg.server.breakerThreshold = 64;
    Router router(fx.corpus, fx.seed, cfg);

    auto &shed_low = metrics::Registry::get().counter(
        "recovery.shed", {{"device", "0"},
                          {"core", "0"},
                          {"reason", "depth"},
                          {"tenant", "t"},
                          {"slo_class", "1"}});
    double low_before = shed_low.value();

    kernels::AdmitClass low{"t", 1};
    kernels::AdmitClass high{"t", 0};
    ASSERT_TRUE(router.admit(1, fx.query(0), 0.0, {}, low).ok());
    // Depth 1 on every shard server: class 1's halved cap is full,
    // class 0's is not.
    EXPECT_FALSE(router.admit(2, fx.query(1), 0.0, {}, low).ok());
    EXPECT_GE(shed_low.value() - low_before, 1.0);
    ASSERT_TRUE(router.admit(3, fx.query(2), 0.0, {}, high).ok());
    // Depth 2: now even class 0 is at its full cap.
    EXPECT_FALSE(router.admit(4, fx.query(3), 0.0, {}, high).ok());
    (void)router.drain();
}

TEST(Router, ScatterMergeAndClassMetricsCarryTenantLabels)
{
#if defined(__SANITIZE_THREAD__)
    GTEST_SKIP() << "functional corpus pass too slow under TSan";
#endif
    FleetFixture fx;
    Router router(fx.corpus, fx.seed, fx.config(2, 1));

    auto &reg = metrics::Registry::get();
    metrics::Labels cls_labels{{"tenant", "acme"},
                               {"slo_class", "1"}};
    auto &scatter =
        reg.counter("fleet.scatter.subqueries", cls_labels);
    auto &merge =
        reg.counter("fleet.merge.candidates", cls_labels);
    auto &served =
        reg.histogram("fleet.class_served_seconds", cls_labels);
    auto &unlabeled = reg.histogram("fleet.served_seconds", {});
    double scatter_before = scatter.value();
    double merge_before = merge.value();
    uint64_t served_before = served.count();
    uint64_t unlabeled_before = unlabeled.count();

    ASSERT_TRUE(router
                    .admit(1, fx.query(0), 0.0, {},
                           kernels::AdmitClass{"acme", 1})
                    .ok());
    auto outs = router.drain();
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_TRUE(outs[0].ok);
    EXPECT_EQ(outs[0].cls.tenant, "acme");
    EXPECT_EQ(outs[0].cls.sloClass, 1u);

    // One sub-query per shard scattered; the merge models
    // shards * topK candidate inserts (what the merge time charge
    // bills); one per-class latency observation — all under the
    // query's own {tenant, slo_class} labels, while the unlabeled
    // fleet series keeps its old meaning.
    EXPECT_EQ(scatter.value() - scatter_before,
              static_cast<double>(router.shards()));
    EXPECT_EQ(merge.value() - merge_before,
              static_cast<double>(router.shards()) * 5.0);
    EXPECT_EQ(served.count() - served_before, 1u);
    EXPECT_EQ(unlabeled.count() - unlabeled_before, 1u);
}
