/**
 * @file
 * IVF-lite clustered index + metadata-filtered search tests.
 *
 * The load-bearing invariants:
 *  - nprobe = numLists scans the same chunk set as the exhaustive
 *    path, so all four producers (device exhaustive, device IVF,
 *    flat golden, IVF golden) must bit-compare — filtered or not.
 *  - The metadata predicate behaves identically on-device (admit
 *    plane ANDed into the match mask) and on the CPU goldens,
 *    including the edge cases: empty filter (0 survivors), all-pass
 *    mask (bit-identical to unfiltered), ragged supertile tails.
 *  - Score ties at the k boundary resolve (score desc, id asc)
 *    everywhere: flat scan, filtered scan, IVF probe selection,
 *    per-supertile device extraction, and the fleet k-way merge.
 *  - overlapHidden never exceeds loadEmbedding (or calcDistance),
 *    including IVF's short probe-restricted streams, so
 *    RagStageLatency::total()'s unclamped subtraction is safe.
 *  - Per-query search params route through batching, serving,
 *    journal replay, and fleet scatter without mixing batches.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/faisslite.hh"
#include "baseline/ivf.hh"
#include "baseline/workloads.hh"
#include "fleet/fleet.hh"
#include "kernels/rag.hh"
#include "kernels/serving.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::kernels;

/**
 * The functional corpus passes (and the bigger Lloyd builds) are an
 * order of magnitude too slow under TSan's instrumentation; the
 * host-side logic tests still run there, and the ASan copy runs the
 * whole suite. Same guard test_fleet uses.
 */
#if defined(__SANITIZE_THREAD__)
#define CISRAM_SKIP_IF_TSAN()                                        \
    GTEST_SKIP() << "functional corpus pass too slow under TSan"
#else
#define CISRAM_SKIP_IF_TSAN() (void)0
#endif

namespace {

constexpr uint64_t kSeed = 7321;

/** All eight metadata labels admitted — but not the kFilterAll
 *  sentinel, so the filtered machinery engages. */
constexpr uint16_t kAllLabels = 0x00ff;

RagCorpusSpec
clusteredSpec(const char *label, size_t chunks, size_t topics)
{
    return RagCorpusSpec{label, 0, chunks, 368, 0, topics};
}

IndexFlatI16
buildFlat(const RagCorpusSpec &spec, uint64_t seed)
{
    IndexFlatI16 idx(spec.dim);
    auto emb =
        genEmbeddings(spec, spec.firstChunk, spec.numChunks, seed);
    idx.add(emb.data(), spec.numChunks);
    return idx;
}

void
expectSameHits(const std::vector<Hit> &got,
               const std::vector<Hit> &expect, const char *what)
{
    ASSERT_EQ(got.size(), expect.size()) << what;
    for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(got[i].id, expect[i].id) << what << " rank " << i;
        EXPECT_FLOAT_EQ(got[i].score, expect[i].score)
            << what << " rank " << i;
    }
}

/** One functional device batch; fresh device per call. */
std::vector<RagRunResult>
deviceBatch(const RagCorpusSpec &spec, uint64_t seed,
            const std::vector<std::vector<int16_t>> &queries,
            size_t k, RagSearchParams search,
            const IvfClustering *ivf)
{
    apu::ApuDevice dev;
    dram::DramSystem hbm(dram::hbm2eConfig());
    RagRetriever retriever(dev, hbm, spec, k);
    RagBatchOptions opts;
    opts.search = search;
    opts.ivf = ivf;
    return retriever.retrieveBatch(queries, seed, opts);
}

} // namespace

// ---- clustering construction -------------------------------------------

TEST(IvfClusteringTest, DeterministicAndCompletePartition)
{
    auto spec = clusteredSpec("ivf-build", 5000, 6);
    IvfBuildConfig cfg{16, 2048, 4};
    auto a = IvfClustering::build(spec, kSeed, cfg);
    auto b = IvfClustering::build(spec, kSeed, cfg);

    EXPECT_EQ(a.numLists(), 16u);
    EXPECT_EQ(a.numChunks(), spec.numChunks);
    EXPECT_EQ(a.centroids(), b.centroids());
    EXPECT_EQ(a.listOffsets(), b.listOffsets());
    EXPECT_EQ(a.order(), b.order());

    // The inverted lists partition the corpus: order() is a
    // permutation, ascending within each list (the device path's
    // per-supertile tie exactness depends on this).
    EXPECT_EQ(a.listOffsets().front(), 0u);
    EXPECT_EQ(a.listOffsets().back(), spec.numChunks);
    std::vector<bool> seen(spec.numChunks, false);
    for (size_t list = 0; list < a.numLists(); ++list) {
        uint32_t prev = 0;
        for (uint64_t i = a.listOffsets()[list];
             i < a.listOffsets()[list + 1]; ++i) {
            uint32_t id = a.order()[i];
            ASSERT_LT(id, spec.numChunks);
            EXPECT_FALSE(seen[id]) << "chunk " << id << " twice";
            seen[id] = true;
            if (i > a.listOffsets()[list]) {
                EXPECT_LT(prev, id)
                    << "list " << list << " not ascending";
            }
            prev = id;
            EXPECT_EQ(a.listOf(id), list);
        }
    }
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                            [](bool s) { return s; }));
}

TEST(IvfClusteringTest, SelectProbesTieOrderAndClamp)
{
    auto spec = clusteredSpec("ivf-probes", 3000, 5);
    IvfBuildConfig cfg{8, 1024, 3};
    auto cl = IvfClustering::build(spec, kSeed, cfg);

    // A zero query ties every centroid at dot 0: probe order must
    // fall back to ascending list id (score desc, id asc).
    std::vector<int16_t> zero(spec.dim, 0);
    auto probes = cl.selectProbes(zero.data(), 3);
    ASSERT_EQ(probes.size(), 3u);
    for (uint32_t p = 0; p < 3; ++p)
        EXPECT_EQ(probes[p], p);

    // nprobe clamps to numLists; 0 selects nothing (the caller's
    // "exhaustive, don't probe" convention).
    EXPECT_EQ(cl.selectProbes(zero.data(), 99).size(),
              cl.numLists());
    EXPECT_TRUE(cl.selectProbes(zero.data(), 0).empty());

    // A real query's probes are distinct, valid, and score-ordered.
    auto q = genQueryForTopic(spec, 2, 11, kSeed);
    auto sel = cl.selectProbes(q.data(), cl.numLists());
    ASSERT_EQ(sel.size(), cl.numLists());
    for (size_t i = 1; i < sel.size(); ++i) {
        int64_t prev = cl.centroidDot(q.data(), sel[i - 1]);
        int64_t cur = cl.centroidDot(q.data(), sel[i]);
        EXPECT_TRUE(prev > cur || (prev == cur &&
                                   sel[i - 1] < sel[i]))
            << "probe order violated at " << i;
    }
}

// ---- CPU golden: nprobe = K identity, filter semantics -----------------

TEST(IvfGoldenTest, NprobeEqualsListsMatchesExhaustive)
{
    auto spec = clusteredSpec("ivf-identity", 4000, 6);
    auto flat = buildFlat(spec, kSeed);
    auto cl = IvfClustering::build(spec, kSeed,
                                   IvfBuildConfig{16, 2048, 4});
    IndexIvfI16 ivf(flat, cl, spec, kSeed);

    for (int qi = 0; qi < 4; ++qi) {
        auto q = genQueryForTopic(spec, static_cast<size_t>(qi),
                                  200 + qi, kSeed);
        auto exhaustive = flat.search(q.data(), 10);
        auto probed = ivf.search(q.data(), 10, cl.numLists());
        expectSameHits(probed, exhaustive, "unfiltered identity");

        uint16_t mask = 0x0035; // labels {0, 2, 4, 5}
        auto fex = searchFilteredFlat(flat, spec, kSeed, q.data(),
                                      10, mask);
        auto fprobed =
            ivf.search(q.data(), 10, cl.numLists(), mask);
        expectSameHits(fprobed, fex, "filtered identity");
    }
}

TEST(IvfGoldenTest, FilterMaskEdgeCases)
{
    auto spec = clusteredSpec("ivf-mask", 3000, 4);
    auto flat = buildFlat(spec, kSeed);

    auto q = genQueryForTopic(spec, 1, 77, kSeed);

    // Empty filter: zero survivors, loudly empty — not k garbage.
    EXPECT_TRUE(searchFilteredFlat(flat, spec, kSeed, q.data(), 10,
                                   0x0000)
                    .empty());

    // All-pass mask: bit-identical to the unfiltered scan.
    auto unfiltered = flat.search(q.data(), 10);
    auto allpass = searchFilteredFlat(flat, spec, kSeed, q.data(),
                                      10, kAllLabels);
    expectSameHits(allpass, unfiltered, "all-pass == unfiltered");

    // Single-label filter: every survivor carries that label, and
    // the result equals a brute-force filtered rescore.
    for (uint16_t label = 0; label < kNumChunkLabels; ++label) {
        uint16_t mask = static_cast<uint16_t>(1u << label);
        auto hits = searchFilteredFlat(flat, spec, kSeed, q.data(),
                                       10, mask);
        for (const Hit &h : hits)
            EXPECT_EQ(chunkLabel(h.id, kSeed), label);
        std::vector<Hit> brute;
        for (size_t id = 0; id < spec.numChunks; ++id)
            if (chunkLabel(id, kSeed) == label)
                hitHeapPush(brute, 10,
                            Hit{static_cast<float>(
                                    flat.dot(q.data(), id)),
                                id});
        hitFinalize(brute);
        expectSameHits(hits, brute, "single-label");
    }
}

// ---- device path: 4-way bit-compare ------------------------------------

TEST(IvfDeviceTest, NprobeKFourWayBitCompare)
{
    CISRAM_SKIP_IF_TSAN();
    auto spec = clusteredSpec("ivf-4way", 5000, 6);
    auto flat = buildFlat(spec, kSeed);
    auto cl = IvfClustering::build(spec, kSeed,
                                   IvfBuildConfig{4, 2048, 4});
    IndexIvfI16 ivf(flat, cl, spec, kSeed);

    std::vector<std::vector<int16_t>> queries;
    for (int qi = 0; qi < 3; ++qi)
        queries.push_back(genQueryForTopic(
            spec, static_cast<size_t>(qi), 300 + qi, kSeed));

    for (uint16_t mask : {kFilterAll, uint16_t(0x0029)}) {
        RagSearchParams exhaustive{0, mask};
        RagSearchParams probeAll{cl.numLists(), mask};
        auto devEx =
            deviceBatch(spec, kSeed, queries, 5, exhaustive,
                        nullptr);
        auto devIvf =
            deviceBatch(spec, kSeed, queries, 5, probeAll, &cl);
        ASSERT_EQ(devEx.size(), queries.size());
        ASSERT_EQ(devIvf.size(), queries.size());

        for (size_t qi = 0; qi < queries.size(); ++qi) {
            std::vector<Hit> golden =
                mask == kFilterAll
                    ? flat.search(queries[qi].data(), 5)
                    : searchFilteredFlat(flat, spec, kSeed,
                                         queries[qi].data(), 5,
                                         mask);
            auto goldenIvf = ivf.search(queries[qi].data(), 5,
                                        cl.numLists(), mask);
            expectSameHits(devEx[qi].hits, golden,
                           "device exhaustive vs flat golden");
            expectSameHits(devIvf[qi].hits, golden,
                           "device nprobe=K vs flat golden");
            expectSameHits(goldenIvf, golden,
                           "IVF golden vs flat golden");
        }
    }
}

TEST(IvfDeviceTest, ProbeRestrictedMatchesGoldenIvf)
{
    CISRAM_SKIP_IF_TSAN();
    // At nprobe < K the answer is probe-restricted (recall < 1 is
    // possible); the device must still bit-compare with the CPU
    // IVF golden — same probes, same filter, same ties.
    auto spec = clusteredSpec("ivf-probe2", 5000, 6);
    auto flat = buildFlat(spec, kSeed);
    auto cl = IvfClustering::build(spec, kSeed,
                                   IvfBuildConfig{6, 2048, 4});
    IndexIvfI16 ivf(flat, cl, spec, kSeed);

    std::vector<std::vector<int16_t>> queries;
    for (int qi = 0; qi < 3; ++qi)
        queries.push_back(genQueryForTopic(
            spec, static_cast<size_t>(qi + 2), 400 + qi, kSeed));

    for (uint16_t mask : {kFilterAll, uint16_t(0x0013)}) {
        RagSearchParams p{2, mask};
        auto dev = deviceBatch(spec, kSeed, queries, 5, p, &cl);
        for (size_t qi = 0; qi < queries.size(); ++qi) {
            auto golden =
                ivf.search(queries[qi].data(), 5, 2, mask);
            expectSameHits(dev[qi].hits, golden,
                           "device nprobe=2 vs IVF golden");
        }
    }
}

TEST(IvfDeviceTest, EmptyFilterYieldsNoSurvivorsOnDevice)
{
    CISRAM_SKIP_IF_TSAN();
    auto spec = clusteredSpec("ivf-empty", 3000, 4);
    auto cl = IvfClustering::build(spec, kSeed,
                                   IvfBuildConfig{4, 1024, 3});
    std::vector<std::vector<int16_t>> queries{
        genQueryForTopic(spec, 0, 500, kSeed)};

    auto devEx = deviceBatch(spec, kSeed, queries, 5,
                             RagSearchParams{0, 0x0000}, nullptr);
    EXPECT_TRUE(devEx[0].hits.empty());
    EXPECT_EQ(devEx[0].topkIdsCount, 0u);

    auto devIvf = deviceBatch(spec, kSeed, queries, 5,
                              RagSearchParams{cl.numLists(),
                                              0x0000},
                              &cl);
    EXPECT_TRUE(devIvf[0].hits.empty());
    EXPECT_EQ(devIvf[0].topkIdsCount, 0u);
}

TEST(IvfDeviceTest, AllPassMaskBitIdenticalToUnfiltered)
{
    CISRAM_SKIP_IF_TSAN();
    auto spec = clusteredSpec("ivf-allpass", 3000, 4);
    std::vector<std::vector<int16_t>> queries{
        genQueryForTopic(spec, 1, 600, kSeed),
        genQueryForTopic(spec, 3, 601, kSeed)};

    auto plain = deviceBatch(spec, kSeed, queries, 5,
                             RagSearchParams{}, nullptr);
    auto allpass =
        deviceBatch(spec, kSeed, queries, 5,
                    RagSearchParams{0, kAllLabels}, nullptr);
    for (size_t qi = 0; qi < queries.size(); ++qi)
        expectSameHits(allpass[qi].hits, plain[qi].hits,
                       "all-pass == unfiltered (device)");
}

TEST(IvfDeviceTest, FilteredRaggedSupertileBoundaries)
{
    CISRAM_SKIP_IF_TSAN();
    // Corpus sizes straddling the 32768-lane supertile boundary:
    // the ragged tail's padding lanes must never surface (their
    // biased-zero dots would outrank real negative scores), and
    // the filter must stay exact across the word/bank edge.
    for (size_t chunks :
         {size_t(32767), size_t(32768), size_t(32769)}) {
        auto spec = clusteredSpec("ivf-ragged", chunks, 5);
        auto flat = buildFlat(spec, kSeed);
        std::vector<std::vector<int16_t>> queries{
            genQueryForTopic(spec, 0, 700, kSeed)};
        uint16_t mask = 0x0021; // labels {0, 5}

        auto dev = deviceBatch(spec, kSeed, queries, 5,
                               RagSearchParams{0, mask}, nullptr);
        auto golden = searchFilteredFlat(flat, spec, kSeed,
                                         queries[0].data(), 5,
                                         mask);
        expectSameHits(dev[0].hits, golden,
                       ("ragged filtered @" +
                        std::to_string(chunks))
                           .c_str());
    }
}

// ---- score ties at the k boundary --------------------------------------

TEST(IvfTieTest, AllEqualScoresPinLowestIdsEverywhere)
{
    CISRAM_SKIP_IF_TSAN();
    // A zero query ties every chunk at dot 0. The k boundary then
    // cuts through one giant tie group, and every producer must
    // resolve it the same way: ids ascending.
    auto spec = clusteredSpec("ivf-ties", 40000, 4);
    auto flat = buildFlat(spec, kSeed);
    auto cl = IvfClustering::build(spec, kSeed,
                                   IvfBuildConfig{4, 2048, 3});
    IndexIvfI16 ivf(flat, cl, spec, kSeed);

    std::vector<int16_t> zero(spec.dim, 0);
    const size_t k = 7;
    auto expectLowest = [&](const std::vector<Hit> &hits,
                            const char *what) {
        ASSERT_EQ(hits.size(), k) << what;
        for (size_t i = 0; i < k; ++i) {
            EXPECT_EQ(hits[i].id, i) << what << " rank " << i;
            EXPECT_FLOAT_EQ(hits[i].score, 0.0f) << what;
        }
    };

    expectLowest(flat.search(zero.data(), k), "flat golden");
    expectLowest(searchFilteredFlat(flat, spec, kSeed, zero.data(),
                                    k, kAllLabels),
                 "filtered flat golden");
    expectLowest(ivf.search(zero.data(), k, cl.numLists()),
                 "IVF golden nprobe=K");

    // Device: the corpus spans two supertiles, so the boundary tie
    // crosses the per-VR extraction + CP merge path.
    std::vector<std::vector<int16_t>> queries{zero};
    auto devEx = deviceBatch(spec, kSeed, queries, k,
                             RagSearchParams{}, nullptr);
    expectLowest(devEx[0].hits, "device exhaustive");
    auto devIvf =
        deviceBatch(spec, kSeed, queries, k,
                    RagSearchParams{cl.numLists(), kFilterAll},
                    &cl);
    expectLowest(devIvf[0].hits, "device IVF nprobe=K");
}

TEST(IvfTieTest, FleetMergePinsLowestIdsOnAllEqualScores)
{
    CISRAM_SKIP_IF_TSAN();
    fleet::FleetConfig cfg;
    cfg.devices = 2;
    cfg.replicas = 1;
    cfg.shards = 4;
    cfg.functional = true;
    cfg.topK = 7;
    auto spec = clusteredSpec("ivf-fleet-ties", 2048, 4);
    fleet::Router router(spec, kSeed, cfg);

    std::vector<int16_t> zero(spec.dim, 0);
    ASSERT_TRUE(router.admit(1, zero).ok());
    auto outs = router.drain();
    ASSERT_EQ(outs.size(), 1u);
    ASSERT_EQ(outs[0].hits.size(), 7u);
    for (size_t i = 0; i < 7; ++i) {
        EXPECT_EQ(outs[0].hits[i].id, i) << "fleet rank " << i;
        EXPECT_FLOAT_EQ(outs[0].hits[i].score, 0.0f);
    }
}

// ---- overlap accounting -------------------------------------------------

TEST(IvfOverlapTest, HiddenNeverExceedsEitherOverlappedStage)
{
    CISRAM_SKIP_IF_TSAN();
    auto spec = clusteredSpec("ivf-overlap", 40000, 8);
    auto cl = IvfClustering::build(spec, kSeed,
                                   IvfBuildConfig{16, 2048, 3});
    auto query = genQueryForTopic(spec, 3, 800, kSeed);

    auto timedRun = [&](RagSearchParams search,
                        const IvfClustering *ivf) {
        apu::ApuDevice dev;
        dev.core(0).setMode(apu::ExecMode::TimingOnly);
        dram::DramSystem hbm(dram::hbm2eConfig());
        RagRetriever retriever(dev, hbm, spec, 5);
        std::vector<std::vector<int16_t>> queries{query};
        RagBatchOptions opts;
        opts.overlapStream = true;
        opts.search = search;
        opts.ivf = ivf;
        return retriever.retrieveBatch(queries, kSeed, opts)[0];
    };

    // Exhaustive, multi-supertile: hidden is bounded by both the
    // stream and the compute it overlaps, so total() stays > 0.
    auto ex = timedRun(RagSearchParams{}, nullptr);
    EXPECT_LE(ex.stages.overlapHidden, ex.stages.loadEmbedding);
    EXPECT_LE(ex.stages.overlapHidden, ex.stages.calcDistance);
    EXPECT_GT(ex.stages.total(), 0.0);

    // IVF's short probe-restricted streams: every probed list is a
    // single ragged supertile here. The bound must hold — and with
    // one supertile in flight nothing can overlap at all.
    for (size_t nprobe : {size_t(1), size_t(3), cl.numLists()}) {
        auto r =
            timedRun(RagSearchParams{nprobe, kFilterAll}, &cl);
        EXPECT_LE(r.stages.overlapHidden, r.stages.loadEmbedding)
            << "nprobe=" << nprobe;
        EXPECT_LE(r.stages.overlapHidden, r.stages.calcDistance)
            << "nprobe=" << nprobe;
        EXPECT_GT(r.stages.total(), 0.0) << "nprobe=" << nprobe;
    }
    auto probe1 = cl.selectProbes(query.data(), 1);
    ASSERT_EQ(probe1.size(), 1u);
    if (cl.listSize(probe1[0]) <= 32768) {
        // The single probed list fits one ragged supertile: nothing
        // can pipeline, so the hidden portion is exactly zero (the
        // n = 1 case of the overlapHiddenSeconds bound).
        auto one = timedRun(RagSearchParams{1, kFilterAll}, &cl);
        EXPECT_EQ(one.stages.overlapHidden, 0.0)
            << "single supertile cannot overlap";
    }

    // A probe-restricted pass streams strictly less than the
    // exhaustive one (the whole point of the coarse quantizer).
    auto two = timedRun(RagSearchParams{2, kFilterAll}, &cl);
    EXPECT_LT(two.dramBytes, ex.dramBytes);
}

// ---- batching + serving -------------------------------------------------

TEST(IvfServingTest, BatchFormerSplitsOnSearchParams)
{
    BatchFormer former(BatchPolicy{8, 16});
    RagSearchParams a{0, kFilterAll};
    RagSearchParams b{2, 0x0003};
    auto pq = [&](uint64_t id, RagSearchParams p) {
        return PendingQuery{id, std::vector<int16_t>(4, 0), 0.0,
                            p};
    };
    former.admit(pq(1, a));
    former.admit(pq(2, a));
    former.admit(pq(3, b));
    former.admit(pq(4, a));
    former.admit(pq(5, a));

    // FIFO prefixes split exactly at the param boundary; order is
    // never rearranged to pack fuller batches.
    auto b1 = former.takeBatch();
    ASSERT_EQ(b1.size(), 2u);
    EXPECT_EQ(b1[0].id, 1u);
    EXPECT_EQ(b1[1].id, 2u);
    EXPECT_TRUE(b1[0].search == a);

    auto b2 = former.takeBatch();
    ASSERT_EQ(b2.size(), 1u);
    EXPECT_EQ(b2[0].id, 3u);
    EXPECT_TRUE(b2[0].search == b);

    auto b3 = former.takeBatch();
    ASSERT_EQ(b3.size(), 2u);
    EXPECT_EQ(b3[0].id, 4u);
    EXPECT_EQ(b3[1].id, 5u);
    EXPECT_TRUE(former.empty());
}

TEST(IvfServingTest, ServerHonoursPerQueryParamsEndToEnd)
{
    CISRAM_SKIP_IF_TSAN();
    auto spec = clusteredSpec("ivf-serving", 3000, 5);
    auto flat = buildFlat(spec, kSeed);

    apu::ApuDevice dev;
    ServerConfig cfg;
    cfg.topK = 5;
    cfg.ivf.enabled = true;
    cfg.ivf.build = IvfBuildConfig{4, 1024, 3};
    cfg.batch.maxBatch = 4;
    cfg.batch.maxLingerAdmissions = 64; // hold until drain
    DeviceServer server(dev, spec, 0, &flat, kSeed, cfg);
    ASSERT_NE(server.clustering(), nullptr);
    const IvfClustering &cl = *server.clustering();
    IndexIvfI16 ivf(flat, cl, spec, kSeed);

    struct Want
    {
        uint64_t id;
        RagSearchParams p;
    };
    std::vector<Want> wants{
        {1, RagSearchParams{0, kFilterAll}},
        {2, RagSearchParams{0, kFilterAll}},
        {3, RagSearchParams{2, 0x0015}},
        {4, RagSearchParams{cl.numLists(), kFilterAll}},
        {5, RagSearchParams{0, 0x0000}}, // empty filter
    };
    std::vector<std::vector<int16_t>> qs;
    for (const Want &w : wants) {
        qs.push_back(genQueryForTopic(
            spec, static_cast<size_t>(w.id % 5), 900 + w.id,
            kSeed));
        ASSERT_TRUE(
            server.enqueue(w.id, qs.back(), w.p).ok());
    }

    auto outs = server.drain();
    ASSERT_EQ(outs.size(), wants.size());
    // Param boundaries forced at least three batches.
    EXPECT_GE(server.former().batchesFormed(), 3u);

    std::sort(outs.begin(), outs.end(),
              [](const ServeOutcome &x, const ServeOutcome &y) {
                  return x.id < y.id;
              });
    for (size_t i = 0; i < wants.size(); ++i) {
        const Want &w = wants[i];
        ASSERT_EQ(outs[i].id, w.id);
        ASSERT_TRUE(outs[i].ok);
        std::vector<Hit> expect;
        if (w.p.nprobe > 0)
            expect = ivf.search(qs[i].data(), cfg.topK,
                                w.p.nprobe, w.p.filterMask);
        else if (w.p.filterMask != kFilterAll)
            expect = searchFilteredFlat(flat, spec, kSeed,
                                        qs[i].data(), cfg.topK,
                                        w.p.filterMask);
        else
            expect = flat.search(qs[i].data(), cfg.topK);
        expectSameHits(outs[i].run.hits, expect, "serving e2e");
        ASSERT_EQ(outs[i].ids.size(), expect.size())
            << "query " << w.id;
        for (size_t r = 0; r < expect.size(); ++r)
            EXPECT_EQ(outs[i].ids[r],
                      static_cast<uint32_t>(expect[r].id));
    }
    // The empty-filter query must come back loudly empty — no
    // stale ids read out of the device buffer.
    EXPECT_TRUE(outs.back().ids.empty());
    EXPECT_TRUE(outs.back().run.hits.empty());
}

TEST(IvfServingTest, NprobeWithoutClusteringDies)
{
    auto spec = clusteredSpec("ivf-noivf", 512, 3);
    apu::ApuDevice dev;
    DeviceServer server(dev, spec, 0, nullptr, kSeed, {});
    EXPECT_DEATH((void)server.enqueue(
                     1, std::vector<int16_t>(spec.dim, 0),
                     RagSearchParams{2, kFilterAll}),
                 "IVF");
}

TEST(IvfServingTest, ParamsSurviveJournalReplayAcrossReset)
{
    CISRAM_SKIP_IF_TSAN();
    auto spec = clusteredSpec("ivf-replay", 2000, 4);
    auto flat = buildFlat(spec, kSeed);

    apu::ApuDevice dev;
    ServerConfig cfg;
    cfg.topK = 5;
    cfg.ivf.enabled = true;
    cfg.ivf.build = IvfBuildConfig{4, 1024, 3};
    cfg.health.enabled = true;
    DeviceServer server(dev, spec, 0, &flat, kSeed, cfg);
    const IvfClustering &cl = *server.clustering();
    IndexIvfI16 ivf(flat, cl, spec, kSeed);

    RagSearchParams p{2, 0x0009};
    auto q = genQueryForTopic(spec, 1, 1000, kSeed);
    ASSERT_TRUE(server.enqueue(7, q, p).ok());

    // Force the reset choreography: the journaled query replays
    // with its original params through the rebuilt retriever.
    server.forceReset();
    EXPECT_EQ(server.replayedQueries(), 1u);
    auto outs = server.drain();
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_EQ(outs[0].id, 7u);
    ASSERT_TRUE(outs[0].ok);
    auto expect = ivf.search(q.data(), cfg.topK, p.nprobe,
                             p.filterMask);
    expectSameHits(outs[0].run.hits, expect, "replayed params");
}

// ---- fleet --------------------------------------------------------------

TEST(IvfFleetTest, PerShardNprobeAllMergesToGlobalFilteredAnswer)
{
    CISRAM_SKIP_IF_TSAN();
    auto spec = clusteredSpec("ivf-fleet", 2048, 4);
    auto global = buildFlat(spec, kSeed);

    fleet::FleetConfig cfg;
    cfg.devices = 2;
    cfg.replicas = 2;
    cfg.shards = 4;
    cfg.functional = true;
    cfg.topK = 5;
    cfg.server.ivf.enabled = true;
    cfg.server.ivf.build = IvfBuildConfig{4, 512, 3};
    fleet::Router router(spec, kSeed, cfg);

    // nprobe >= every shard's list count degenerates to exhaustive
    // per shard, so the merged answer must equal the global
    // filtered scan bit-for-bit.
    RagSearchParams p{64, 0x0027};
    std::vector<std::vector<int16_t>> qs;
    for (uint64_t id = 1; id <= 6; ++id) {
        qs.push_back(genQueryForTopic(
            spec, static_cast<size_t>(id % 4), 1100 + id, kSeed));
        ASSERT_TRUE(router.admit(id, qs.back(), 0.0, p).ok());
    }

    auto outs = router.drain();
    ASSERT_EQ(outs.size(), 6u);
    EXPECT_EQ(router.ledgerOutstanding(), 0u);
    std::sort(outs.begin(), outs.end(),
              [](const fleet::FleetOutcome &a,
                 const fleet::FleetOutcome &b) {
                  return a.id < b.id;
              });
    for (size_t i = 0; i < outs.size(); ++i) {
        ASSERT_TRUE(outs[i].ok) << "query " << outs[i].id;
        auto expect = searchFilteredFlat(global, spec, kSeed,
                                         qs[i].data(), cfg.topK,
                                         p.filterMask);
        expectSameHits(outs[i].hits, expect, "fleet filtered");
    }
}

TEST(IvfFleetTest, EvacuationPreservesSearchParams)
{
    CISRAM_SKIP_IF_TSAN();
    auto spec = clusteredSpec("ivf-evac", 2048, 4);
    auto global = buildFlat(spec, kSeed);

    fleet::FleetConfig cfg;
    cfg.devices = 2;
    cfg.replicas = 2;
    cfg.shards = 4;
    cfg.functional = true;
    cfg.topK = 5;
    cfg.server.ivf.enabled = true;
    cfg.server.ivf.build = IvfBuildConfig{4, 512, 3};
    cfg.server.batch.maxLingerAdmissions = 64; // keep in-flight
    fleet::Router router(spec, kSeed, cfg);

    RagSearchParams p{64, 0x001a};
    std::vector<std::vector<int16_t>> qs;
    for (uint64_t id = 1; id <= 4; ++id) {
        qs.push_back(genQueryForTopic(
            spec, static_cast<size_t>(id % 4), 1200 + id, kSeed));
        ASSERT_TRUE(router.admit(id, qs.back(), 0.0, p).ok());
    }

    // Kill a device with the queries still queued: its sub-queries
    // evacuate and replay on replicas carrying the same params.
    router.killDevice(0);
    EXPECT_GT(router.evacuatedQueries(), 0u);

    auto outs = router.drain();
    ASSERT_EQ(outs.size(), 4u);
    std::sort(outs.begin(), outs.end(),
              [](const fleet::FleetOutcome &a,
                 const fleet::FleetOutcome &b) {
                  return a.id < b.id;
              });
    for (size_t i = 0; i < outs.size(); ++i) {
        ASSERT_TRUE(outs[i].ok) << "query " << outs[i].id;
        auto expect = searchFilteredFlat(global, spec, kSeed,
                                         qs[i].data(), cfg.topK,
                                         p.filterMask);
        expectSameHits(outs[i].hits, expect, "post-evacuation");
    }
}
