/**
 * @file
 * Top-k selection algorithm tests: both in-VR strategies agree with
 * a scalar reference across distributions and k values, and their
 * cost crossover behaves as modeled.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "kernels/topk.hh"

using namespace cisram;
using namespace cisram::baseline;
using namespace cisram::gvml;
using namespace cisram::kernels;

namespace {

std::vector<Hit>
referenceTopK(const std::vector<uint16_t> &scores, size_t k)
{
    std::vector<Hit> all;
    for (size_t i = 0; i < scores.size(); ++i)
        all.push_back({static_cast<float>(scores[i]), i});
    std::sort(all.begin(), all.end(), [](const Hit &a, const Hit &b) {
        if (a.score != b.score)
            return a.score > b.score;
        return a.id < b.id;
    });
    all.resize(std::min(k, all.size()));
    return all;
}

struct Dist
{
    const char *name;
    uint64_t seed;
    std::function<uint16_t(Rng &)> draw;
};

const Dist distributions[] = {
    {"uniform", 1,
     [](Rng &r) { return r.nextU16(); }},
    {"heavy_ties", 2,
     [](Rng &r) { return static_cast<uint16_t>(r.nextBelow(8)); }},
    {"skewed", 3,
     [](Rng &r) {
         double u = r.nextDouble();
         return static_cast<uint16_t>(u * u * 65535.0);
     }},
    {"constant", 4, [](Rng &) { return uint16_t(42); }},
};

} // namespace

class TopKAlgorithms : public ::testing::TestWithParam<size_t>
{
};

TEST_P(TopKAlgorithms, BothMatchReferenceAcrossDistributions)
{
    size_t k = GetParam();
    for (const auto &dist : distributions) {
        apu::ApuDevice dev;
        Gvml g(dev.core(0));
        Rng rng(dist.seed);
        std::vector<uint16_t> scores(g.length());
        for (auto &s : scores)
            s = dist.draw(rng);
        auto expect = referenceTopK(scores, k);

        g.data(Vr(0)) = scores;
        auto thr = topKThreshold(g, Vr(0), k, Vr(1), Vr(2), Vr(3));
        ASSERT_EQ(thr.size(), expect.size()) << dist.name;
        for (size_t i = 0; i < expect.size(); ++i) {
            ASSERT_EQ(thr[i].id, expect[i].id)
                << dist.name << " k=" << k << " i=" << i;
            ASSERT_EQ(thr[i].score, expect[i].score);
        }

        g.data(Vr(0)) = scores; // iterative destroys its input
        auto iter = topKIterative(g, Vr(0), k);
        ASSERT_EQ(iter.size(), expect.size()) << dist.name;
        for (size_t i = 0; i < expect.size(); ++i) {
            ASSERT_EQ(iter[i].id, expect[i].id)
                << dist.name << " k=" << k << " i=" << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKAlgorithms,
                         ::testing::Values(1, 5, 17, 64));

TEST(TopKCost, ThresholdWinsForLargeK)
{
    auto cost = [](bool threshold, size_t k) {
        apu::ApuDevice dev;
        dev.core(0).setMode(apu::ExecMode::TimingOnly);
        Gvml g(dev.core(0));
        dev.core(0).stats().reset();
        if (threshold)
            (void)topKThreshold(g, Vr(0), k, Vr(1), Vr(2), Vr(3));
        else
            (void)topKIterative(g, Vr(0), k);
        return dev.core(0).stats().cycles();
    };
    // Small k: iterative extraction is cheaper.
    EXPECT_LT(cost(false, 2), cost(true, 2));
    // Large k: the k-independent threshold search wins.
    EXPECT_LT(cost(true, 64), cost(false, 64));
    // Threshold search cost is nearly flat in k.
    EXPECT_LT(cost(true, 64), cost(true, 1) * 2.0);
}
